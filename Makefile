GO ?= go

# Packages with the concurrency-heavy machinery; they get a dedicated
# race-detector tier in `make check`.
RACE_PKGS := ./internal/core/... ./internal/wire/... ./internal/server/...

.PHONY: all build test race check bench vet fmt

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

fmt:
	$(GO) fmt ./...

# check is the CI gate: tier-1 build+tests, vet, and the race tier over
# the client/wire/server packages.
check: build test vet race

# bench runs the write-path benchmarks and records the results in
# BENCH_writepath.json (see bench.sh).
bench:
	./bench.sh
