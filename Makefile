GO ?= go

# Packages with the concurrency-heavy machinery; they get a dedicated
# race-detector tier in `make check`.
RACE_PKGS := ./internal/core/... ./internal/wire/... ./internal/server/... ./internal/storage/... ./internal/transport/... ./internal/telemetry/... ./internal/recman/... ./internal/locallog/... ./internal/loadassign/... ./internal/retention/...

.PHONY: all build test race check bench vet fmt crashaudit soak

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

fmt:
	$(GO) fmt ./...

# crashaudit kills the client (or its servers) at every registered
# crash point, recovers, and audits the Section 3.1 invariants — a
# deterministic sweep of all points plus randomized crash/recover
# iterations under a lossy network (see DESIGN.md, "Crash-point map").
# Long soaks: make crashaudit CRASHAUDIT_ITERS=5000
CRASHAUDIT_ITERS ?= 200
crashaudit:
	$(GO) run ./cmd/crashaudit -iters $(CRASHAUDIT_ITERS)

# soak runs the full-scale Section 5.3 log-space soak: a simulated
# week of ET1 with periodic sharp checkpoints over segmented stores
# and background compactors; the hot-segment disk footprint must
# plateau. (The plain test suite runs a miniature version of the same
# test.)
soak:
	DISTLOG_SOAK=1 $(GO) test ./internal/recman/ -run TestSoakET1WeekDiskPlateau -v -timeout 30m -count=1

# check is the CI gate: tier-1 build+tests, vet, the race tier over the
# client/wire/server packages, and the crash-point audit.
check: build test vet race crashaudit

# bench runs the write-path and read-path benchmarks and records the
# results in BENCH_writepath.json and BENCH_readpath.json (see bench.sh).
bench:
	./bench.sh
