#!/bin/sh
# bench.sh — run the write-path and read-path benchmarks and record the
# results as JSON in BENCH_writepath.json and BENCH_readpath.json.
#
# Write path (BENCH_writepath.json):
#   BenchmarkWritePathAllocs        allocation budget for WriteLog+Force
#   BenchmarkWritePathAllocsTelemetry  same budget with telemetry armed
#   BenchmarkTelemetryOverhead      enabled-vs-disabled force-path ablation
#                                   (enabled case reports p50-ns/p99-ns force
#                                   latency from the live histogram)
#   BenchmarkForceLogMemnet         end-to-end forced append, N=2
#   BenchmarkParallelForce          N=3 fan-out under 1ms one-way latency
#   BenchmarkGroupCommit            concurrent committers coalescing rounds
#   BenchmarkGroupCommitTransactions  same, through the public Engine API
#   BenchmarkUDPRecvAllocs          allocation budget for the pooled UDP
#                                   receive path (send+recv+release)
#   BenchmarkMultiClientForce       aggregate forces/s across 1/4/8/16
#                                   concurrent clients, FileStore and
#                                   modelled DiskStore (server-side group
#                                   force scaling)
#   BenchmarkStreamingWrite         single-client sustained records/s on a
#                                   200µs-latency memnet: synchronous
#                                   force-rounds baseline vs the streaming
#                                   write pipeline (sliding send window)
#   BenchmarkAggregateForce         aggregate forces/s at 16 vs 64 clients
#                                   on the same 200µs memnet + modelled
#                                   disks (population-scale pipelining)
#   BenchmarkMigrationUnderET1Load  server-kill-under-ET1-load scenario:
#                                   migrate-µs is the latency from a node
#                                   draining to the client's write set
#                                   fully re-anchored on healthy servers
#                                   while transactions keep committing
#   BenchmarkForceUnderCompaction   force p50/p99 over segmented stores
#                                   with the background compactor off vs
#                                   on (latency-paced reclamation must
#                                   not blow the force tail)
#   BenchmarkStreamScaling          ET1-shaped commits/s with the client's
#                                   log spread over K=1/2/4 parallel
#                                   streams (fixed worker pool; K force
#                                   pipelines against the same servers)
#
# Read path (BENCH_readpath.json):
#   BenchmarkRecoveryScan           full-log recovery-style scan over a
#                                   memnet with non-zero latency: one
#                                   ReadRecord round trip per LSN vs the
#                                   streaming cursor (read-ahead window,
#                                   multi-record packets, holder fan-out)
#   BenchmarkArchiveLookupAcrossVolumes  cold-tier point reads when the
#                                   archive stream is cut into many
#                                   rotating volumes and every lookup
#                                   routes through the forest to the
#                                   right file
#   BenchmarkParallelRecovery       restart recovery of the same ET1
#                                   history on one stream vs four: K
#                                   prefetching cursors merged by
#                                   dependency vector vs one scan
set -eu

cd "$(dirname "$0")"

# POSIX sh has no pipefail, so collect each run's output and check its
# exit status before touching the output file. run() appends to $RAW,
# which each section points at a fresh temp file.
run() {
	if ! go test "$@" ${BENCHTIME:+-benchtime "$BENCHTIME"} >>"$RAW" 2>&1; then
		cat "$RAW" >&2
		echo "bench.sh: benchmark run failed; $OUT left untouched" >&2
		exit 1
	fi
}

# Convert `go test -bench` lines in $RAW into a JSON array in $OUT.
# Fields beyond the standard ns/op, B/op, allocs/op (e.g. rounds/force,
# recs/s) are kept as extra metric pairs.
to_json() {
	awk '
	BEGIN { print "[" ; n = 0 }
	/^Benchmark/ {
		if (n++) print ","
		printf "  {\"name\": \"%s\", \"iterations\": %s", $1, $2
		for (i = 3; i < NF; i += 2) {
			unit = $(i + 1)
			gsub(/"/, "", unit)
			printf ", \"%s\": %s", unit, $i
		}
		printf "}"
	}
	END { print "\n]" }
	' "$RAW" >"$OUT"
	echo "wrote $OUT"
}

RAW1=$(mktemp)
RAW2=$(mktemp)
trap 'rm -f "$RAW1" "$RAW2"' EXIT

# --- write path ------------------------------------------------------
OUT=BENCH_writepath.json
RAW=$RAW1
run ./internal/core/ -run '^$' -benchmem \
	-bench 'BenchmarkWritePathAllocs|BenchmarkTelemetryOverhead|BenchmarkForceLogMemnet|BenchmarkParallelForce|BenchmarkGroupCommit$'
run ./internal/transport/ -run '^$' -benchmem -bench 'BenchmarkUDPRecvAllocs'
run . -run '^$' -benchmem -bench 'BenchmarkGroupCommitTransactions|BenchmarkMultiClientForce|BenchmarkStreamingWrite|BenchmarkAggregateForce|BenchmarkMigrationUnderET1Load|BenchmarkForceUnderCompaction|BenchmarkStreamScaling'
cat "$RAW"
to_json

# --- read path -------------------------------------------------------
OUT=BENCH_readpath.json
RAW=$RAW2
run . -run '^$' -bench 'BenchmarkRecoveryScan|BenchmarkParallelRecovery'
run ./internal/retention/ -run '^$' -bench 'BenchmarkArchiveLookupAcrossVolumes'
cat "$RAW"
to_json
