#!/bin/sh
# bench.sh — run the write-path benchmarks and record the results as
# JSON in BENCH_writepath.json.
#
# Covers the perf work on the client write path:
#   BenchmarkWritePathAllocs        allocation budget for WriteLog+Force
#   BenchmarkWritePathAllocsTelemetry  same budget with telemetry armed
#   BenchmarkTelemetryOverhead      enabled-vs-disabled force-path ablation
#                                   (enabled case reports p50-ns/p99-ns force
#                                   latency from the live histogram)
#   BenchmarkForceLogMemnet         end-to-end forced append, N=2
#   BenchmarkParallelForce          N=3 fan-out under 1ms one-way latency
#   BenchmarkGroupCommit            concurrent committers coalescing rounds
#   BenchmarkGroupCommitTransactions  same, through the public Engine API
#   BenchmarkUDPRecvAllocs          allocation budget for the pooled UDP
#                                   receive path (send+recv+release)
#   BenchmarkMultiClientForce       aggregate forces/s across 1/4/8/16
#                                   concurrent clients, FileStore and
#                                   modelled DiskStore (server-side group
#                                   force scaling)
set -eu

cd "$(dirname "$0")"

OUT=BENCH_writepath.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# POSIX sh has no pipefail, so collect each run's output and check its
# exit status before touching $OUT.
run() {
	if ! go test "$@" ${BENCHTIME:+-benchtime "$BENCHTIME"} >>"$RAW" 2>&1; then
		cat "$RAW" >&2
		echo "bench.sh: benchmark run failed; $OUT left untouched" >&2
		exit 1
	fi
}
run ./internal/core/ -run '^$' -benchmem \
	-bench 'BenchmarkWritePathAllocs|BenchmarkTelemetryOverhead|BenchmarkForceLogMemnet|BenchmarkParallelForce|BenchmarkGroupCommit$'
run ./internal/transport/ -run '^$' -benchmem -bench 'BenchmarkUDPRecvAllocs'
run . -run '^$' -benchmem -bench 'BenchmarkGroupCommitTransactions|BenchmarkMultiClientForce'
cat "$RAW"

# Convert `go test -bench` lines into a JSON array. Fields beyond the
# standard ns/op, B/op, allocs/op (e.g. rounds/force) are kept as extra
# metric pairs.
awk '
BEGIN { print "[" ; n = 0 }
/^Benchmark/ {
	if (n++) print ","
	printf "  {\"name\": \"%s\", \"iterations\": %s", $1, $2
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		gsub(/"/, "", unit)
		printf ", \"%s\": %s", unit, $i
	}
	printf "}"
}
END { print "\n]" }
' "$RAW" >"$OUT"

echo "wrote $OUT"
