// Package distlog_test holds the experiment harness: one benchmark or
// test per table and figure of the paper's evaluation (see DESIGN.md
// for the index, EXPERIMENTS.md for recorded results), plus
// integration tests of the public API.
package distlog_test

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distlog"
	"distlog/internal/capacity"
	"distlog/internal/disk"
	"distlog/internal/nvram"
	"distlog/internal/storage"
)

// ---------------------------------------------------------------------------
// Public API integration.

func TestPublicAPIRoundTrip(t *testing.T) {
	cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	l, err := cluster.OpenClient(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.ForceLog([]byte("through the public API"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := l.ReadLog(lsn)
	if err != nil || string(data) != "through the public API" {
		t.Fatalf("ReadLog = %q, %v", data, err)
	}
	if _, err := l.ReadLog(lsn + 1); !errors.Is(err, distlog.ErrBeyondEnd) {
		t.Fatalf("beyond end: %v", err)
	}
}

func TestPublicAPIEngine(t *testing.T) {
	cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	l, err := cluster.OpenClient(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	stable := distlog.NewStableStore()
	e, err := distlog.OpenEngine(l, stable, distlog.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gen := distlog.NewET1(distlog.ET1Scale{Branches: 2, Tellers: 20, Accounts: 200}, 1)
	for i := 0; i < 20; i++ {
		if _, err := distlog.ApplyET1(e, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	l.Close() // crash

	l2, err := cluster.OpenClient(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	e2, err := distlog.OpenEngine(l2, stable, distlog.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Get("history/count"); got != 20 {
		t.Fatalf("history/count = %d after recovery", got)
	}
}

func TestPublicAPIOverUDP(t *testing.T) {
	// The same protocol over real sockets: three UDP servers with
	// file-backed stores, one UDP client.
	var servers []string
	for i := 0; i < 3; i++ {
		store, err := distlog.OpenFileStore(fmt.Sprintf("%s/server-%d.log", t.TempDir(), i))
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		ep, err := distlog.ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := distlog.NewServer(distlog.ServerConfig{
			Name:     ep.Addr(),
			Store:    store,
			Endpoint: ep,
			Epochs:   distlog.NewMemEpochHost(),
		})
		srv.Start()
		defer srv.Stop()
		servers = append(servers, ep.Addr())
	}
	cep, err := distlog.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l, err := distlog.Open(distlog.ClientConfig{
		ClientID:    1,
		Servers:     servers,
		N:           2,
		Endpoint:    cep,
		CallTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var lsns []distlog.LSN
	for i := 0; i < 10; i++ {
		lsn, err := l.WriteLog([]byte(fmt.Sprintf("udp-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	for i, lsn := range lsns {
		data, err := l.ReadLog(lsn)
		if err != nil || string(data) != fmt.Sprintf("udp-%d", i) {
			t.Fatalf("ReadLog(%d) = %q, %v", lsn, data, err)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 3.4 — availability of replicated logs.

func TestFigure34Values(t *testing.T) {
	// The three headline numbers the paper reads off the figure.
	c52 := distlog.AvailabilityConfig{M: 5, N: 2, P: 0.05}
	if got := distlog.ClientInitAvailability(c52); math.Abs(got-0.977) > 0.002 {
		t.Errorf("ClientInit(M=5,N=2) = %.4f, paper: ~0.98", got)
	}
	if got := distlog.WriteLogAvailability(c52); got < 0.9999 {
		t.Errorf("WriteLog(M=5,N=2) = %.6f, paper: ~always available", got)
	}
	c53 := distlog.AvailabilityConfig{M: 5, N: 3, P: 0.05}
	if got := distlog.WriteLogAvailability(c53); math.Abs(got-0.999) > 0.001 {
		t.Errorf("WriteLog(M=5,N=3) = %.4f, paper: ~0.999", got)
	}
	pts := distlog.Figure34(0.05, 8)
	if len(pts) == 0 {
		t.Fatal("empty Figure 3.4 series")
	}
}

func BenchmarkAvailabilityFigure34(b *testing.B) {
	for i := 0; i < b.N; i++ {
		distlog.Figure34(0.05, 8)
	}
}

// ---------------------------------------------------------------------------
// Section 4.1 — capacity analysis.

func TestCapacityPaperNumbers(t *testing.T) {
	r := distlog.AnalyzeCapacity(distlog.PaperCapacityParams())
	if r.RequestsPerServer < 150 || r.RequestsPerServer > 190 {
		t.Errorf("RPCs/server = %.0f, paper: ~170", r.RequestsPerServer)
	}
	if r.BytesPerServerPerDay < 9e9 || r.BytesPerServerPerDay > 11e9 {
		t.Errorf("bytes/day = %.2e, paper: ~1e10", r.BytesPerServerPerDay)
	}
}

func BenchmarkCapacitySimulationSec41(b *testing.B) {
	p := capacity.PaperParams()
	for i := 0; i < b.N; i++ {
		rep := capacity.Simulate(p, 5*time.Second)
		if i == 0 {
			b.ReportMetric(rep.RequestsPerServer, "req/s/server")
			b.ReportMetric(rep.DiskUtil*100, "disk%")
			b.ReportMetric(float64(rep.MeanForceLatency.Microseconds()), "force-µs(sim)")
		}
	}
}

// ---------------------------------------------------------------------------
// Section 5.6 — remote logging vs local logging elapsed time.
//
// The paper (April 1986 measurement): "remote logging to virtual
// memory on two remote servers used less than twice the elapsed time
// required for local logging to a single disk."

func measureLocal(t testing.TB, mirrors, writes int) time.Duration {
	dir := t.TempDir()
	l, err := distlog.OpenLocalLog(dir, mirrors)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	data := make([]byte, 100)
	start := time.Now()
	for i := 0; i < writes; i++ {
		if _, err := l.ForceLog(data); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

func measureRemote(t testing.TB, n, writes int) time.Duration {
	cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	l, err := cluster.OpenClient(1, n)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	data := make([]byte, 100)
	if _, err := l.ForceLog(data); err != nil { // warm the path
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < writes; i++ {
		if _, err := l.ForceLog(data); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

func TestRemoteUnderTwiceLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	const writes = 300
	// Median of several interleaved rounds for stability.
	ratios := make([]float64, 0, 5)
	for round := 0; round < 5; round++ {
		local := measureLocal(t, 1, writes)
		remote := measureRemote(t, 2, writes)
		ratios = append(ratios, remote.Seconds()/local.Seconds())
	}
	// median
	for i := range ratios {
		for j := i + 1; j < len(ratios); j++ {
			if ratios[j] < ratios[i] {
				ratios[i], ratios[j] = ratios[j], ratios[i]
			}
		}
	}
	median := ratios[len(ratios)/2]
	t.Logf("remote(2 servers, memory) / local(1 disk, fsync) elapsed ratio: %.2f (all: %.2f)", median, ratios)
	if median >= 2.0 {
		t.Errorf("ratio %.2f: paper reports remote logging under twice local", median)
	}
}

func BenchmarkRemoteVsLocalLogging(b *testing.B) {
	b.Run("local-1disk", func(b *testing.B) {
		dir := b.TempDir()
		l, err := distlog.OpenLocalLog(dir, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		data := make([]byte, 100)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.ForceLog(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("local-2disks-duplexed", func(b *testing.B) {
		dir := b.TempDir()
		l, err := distlog.OpenLocalLog(dir, 2)
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		data := make([]byte, 100)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.ForceLog(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remote-2servers-file", func(b *testing.B) {
		// The durable variant: remote servers with fsync-backed stores.
		net := distlog.NewNetwork(1)
		names := []string{"f1", "f2", "f3"}
		for _, name := range names {
			store, err := distlog.OpenFileStore(fmt.Sprintf("%s/%s.log", b.TempDir(), name))
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			srv := distlog.NewServer(distlog.ServerConfig{
				Name:     name,
				Store:    store,
				Endpoint: net.Endpoint(name),
				Epochs:   distlog.NewMemEpochHost(),
			})
			srv.Start()
			defer srv.Stop()
		}
		l, err := distlog.Open(distlog.ClientConfig{
			ClientID:    1,
			Servers:     names,
			N:           2,
			Endpoint:    net.Endpoint("bench-client-file"),
			CallTimeout: time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		data := make([]byte, 100)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.ForceLog(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1, 2, 3} {
		n := n
		b.Run(fmt.Sprintf("remote-%dservers-memory", n), func(b *testing.B) {
			cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3})
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			l, err := cluster.OpenClient(1, n)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			data := make([]byte, 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.ForceLog(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiClientForce measures aggregate forced-write throughput
// as the client population grows — the workload the server's
// per-session write pipeline and group force exist for. Each client
// has its own session and write set (M=3, N=2, rotated by ClientID);
// all share three servers over the same kind of store. forces/s is the
// aggregate across clients: with coalescing, it should grow well past
// the single-client rate instead of serializing on the store force.
func BenchmarkMultiClientForce(b *testing.B) {
	for _, kind := range []string{"file", "disk"} {
		for _, clients := range []int{1, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", kind, clients), func(b *testing.B) {
				runAggregateForce(b, kind, clients, 0)
			})
		}
	}
}

// runAggregateForce drives ForceLog from `clients` concurrent sessions
// against three servers over `kind` stores, sharing one iteration
// budget, and reports aggregate forces/s. A non-zero delay puts that
// much constant one-way latency on every link (applied after setup so
// opens and handshakes stay fast).
func runAggregateForce(b *testing.B, kind string, clients int, delay time.Duration) {
	net := distlog.NewNetwork(1)
	names := []string{"mcf1", "mcf2", "mcf3"}
	for _, name := range names {
		var store distlog.Store
		switch kind {
		case "file":
			s, err := distlog.OpenFileStore(fmt.Sprintf("%s/%s.log", b.TempDir(), name))
			if err != nil {
				b.Fatal(err)
			}
			store = s
		case "disk":
			s, _, _, err := distlog.NewModelledStore(distlog.DefaultDiskGeometry(), 4)
			if err != nil {
				b.Fatal(err)
			}
			store = s
		}
		defer store.Close()
		srv := distlog.NewServer(distlog.ServerConfig{
			Name:     name,
			Store:    store,
			Endpoint: net.Endpoint(name),
			Epochs:   distlog.NewMemEpochHost(),
		})
		srv.Start()
		defer srv.Stop()
	}
	logs := make([]*distlog.Client, clients)
	for i := range logs {
		l, err := distlog.Open(distlog.ClientConfig{
			ClientID:    distlog.ClientID(i + 1),
			Servers:     names,
			N:           2,
			Endpoint:    net.Endpoint(fmt.Sprintf("mcf-client-%d", i)),
			CallTimeout: 2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		logs[i] = l
	}
	data := make([]byte, 100)
	if delay > 0 {
		net.SetFaults(distlog.Faults{FixedDelay: delay})
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(l *distlog.Client) {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if _, err := l.ForceLog(data); err != nil {
					b.Error(err)
					return
				}
			}
		}(logs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "forces/s")
}

// BenchmarkAggregateForce is the Section 4.1 capacity question at
// population scale: a log server is sized for ~50 concurrent clients,
// so aggregate forced-write throughput must hold up — not collapse —
// as the population grows past the point where sessions outnumber
// cores. It runs on the same 200µs-latency memnet as
// BenchmarkStreamingWrite: with real round trips each force spends
// most of its life in flight, so independent clients should pipeline
// and 64 clients must not regress against 16. Disk-modelled stores
// make the store force the contended resource; server-side group
// force (ForceGroup) plus the per-session acker are what keep 64
// clients from serializing 64 fsyncs.
func BenchmarkAggregateForce(b *testing.B) {
	for _, clients := range []int{16, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			runAggregateForce(b, "disk", clients, 200*time.Microsecond)
		})
	}
}

// BenchmarkStreamingWrite measures the tentpole trade of Section 4.2's
// streaming write protocol on a network where latency is real (200µs
// each way, the paper's LAN regime): a single client pushing plain
// WriteLog records as fast as the protocol allows.
//
//   - forced-rounds: the pre-streaming write path (DisableWriteStream)
//     where nothing is transmitted until a force round flushes the
//     buffer and each δ-bound wait is a full round trip.
//   - streaming: the sliding-window pipeline — frames transmitted
//     continuously under WriteWindow, servers acking stability in the
//     background, δ satisfied without synchronous rounds.
//
// The streaming rate should exceed the forced-round rate several times
// over; the gap is the round-trip stalls the window removes.
func BenchmarkStreamingWrite(b *testing.B) {
	run := func(b *testing.B, tune func(cfg *distlog.ClientConfig)) {
		cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3})
		if err != nil {
			b.Fatal(err)
		}
		defer cluster.Close()
		cfg := distlog.ClientConfig{
			ClientID:    1,
			Servers:     cluster.Servers(),
			N:           2,
			Endpoint:    cluster.Network().Endpoint("stream-bench-client"),
			CallTimeout: 2 * time.Second,
		}
		tune(&cfg)
		l, err := distlog.Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		data := make([]byte, 256)
		if _, err := l.ForceLog(data); err != nil { // warm the path
			b.Fatal(err)
		}
		// Latency goes in after the handshake so setup cost stays out of
		// the measurement; every measured packet pays it.
		cluster.Network().SetFaults(distlog.Faults{FixedDelay: 200 * time.Microsecond})
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := l.WriteLog(data); err != nil {
				b.Fatal(err)
			}
		}
		if err := l.Force(); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		b.StopTimer()
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "recs/s")
	}
	b.Run("forced-rounds", func(b *testing.B) {
		run(b, func(cfg *distlog.ClientConfig) {
			cfg.DisableWriteStream = true
			cfg.Delta = 16
		})
	})
	b.Run("streaming", func(b *testing.B) {
		run(b, func(cfg *distlog.ClientConfig) {
			cfg.Delta = 1024
			cfg.WriteWindow = 32
		})
	})
}

// BenchmarkReplicationFactor is the N=2 vs N=3 trade of Section 3.2:
// write latency and message cost against availability.
func BenchmarkReplicationFactor(b *testing.B) {
	for _, n := range []int{2, 3} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 5})
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			l, err := cluster.OpenClient(1, n)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			data := make([]byte, 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.ForceLog(data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(distlog.WriteLogAvailability(distlog.AvailabilityConfig{M: 5, N: n, P: 0.05}), "writeAvail")
		})
	}
}

// ---------------------------------------------------------------------------
// Group commit: concurrent transactions committing through one engine
// share force rounds, so protocol rounds per commit drop well below
// one. rounds/force is the coalescing ratio (1.0 = no sharing).
func BenchmarkGroupCommitTransactions(b *testing.B) {
	cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	l, err := cluster.OpenClient(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	e, err := distlog.OpenEngine(l, distlog.NewStableStore(), distlog.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	f0, r0, _, _ := e.ForceRoundStats()
	// Commits are I/O-bound waits; oversubscribe so they overlap even
	// on one CPU.
	b.SetParallelism(8)
	b.ResetTimer()
	var worker atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		key := fmt.Sprintf("acct-%d", worker.Add(1))
		for pb.Next() {
			txn := e.Begin()
			if _, err := txn.Add(key, 1); err != nil {
				b.Error(err)
				return
			}
			if err := txn.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if f1, r1, _, ok := e.ForceRoundStats(); ok && f1 > f0 {
		b.ReportMetric(float64(r1-r0)/float64(f1-f0), "rounds/force")
	}
}

// ---------------------------------------------------------------------------
// Grouping ablation (Section 4.1's 7x RPC reduction): the same seven
// 100-byte records per transaction sent grouped-with-one-force versus
// one force per record.
func BenchmarkGroupingAblation(b *testing.B) {
	run := func(b *testing.B, grouped bool) {
		cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer cluster.Close()
		l, err := cluster.OpenClient(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		data := make([]byte, 100)
		before := cluster.ServerStatsFor("logserver-1").PacketsReceived
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if grouped {
				for r := 0; r < 6; r++ {
					if _, err := l.WriteLog(data); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := l.ForceLog(data); err != nil {
					b.Fatal(err)
				}
			} else {
				for r := 0; r < 7; r++ {
					if _, err := l.ForceLog(data); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.StopTimer()
		after := cluster.ServerStatsFor("logserver-1").PacketsReceived
		b.ReportMetric(float64(after-before)/float64(b.N), "pkts/txn")
	}
	b.Run("grouped", func(b *testing.B) { run(b, true) })
	b.Run("ungrouped", func(b *testing.B) { run(b, false) })
}

// ---------------------------------------------------------------------------
// NVRAM ablation (Sections 4.1/5.1): simulated disk time consumed per
// forced record with the track-at-a-time NVRAM design versus forcing
// each record to disk individually.
func BenchmarkNVRAMAblation(b *testing.B) {
	b.Run("nvram-track-buffer", func(b *testing.B) {
		g := disk.DefaultGeometry()
		var disks []*disk.Disk
		newStore := func() storage.Store {
			d, err := disk.New(g)
			if err != nil {
				b.Fatal(err)
			}
			disks = append(disks, d)
			store, err := storage.NewDiskStore(d, nvram.New(4*g.TrackSize))
			if err != nil {
				b.Fatal(err)
			}
			return store
		}
		store := newStore()
		defer func() { store.Close() }()
		data := make([]byte, 100)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := distlog.Record{LSN: distlog.LSN(i + 1), Epoch: 1, Present: true, Data: data}
			err := store.Append(1, rec)
			if errors.Is(err, storage.ErrDiskFull) {
				// The modelled platter filled: swap in a fresh volume.
				store.Close()
				store = newStore()
				err = store.Append(1, rec)
			}
			if err != nil {
				b.Fatal(err)
			}
			if err := store.Force(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		var busy time.Duration
		for _, d := range disks {
			busy += d.Stats().BusyTime
		}
		b.ReportMetric(float64(busy.Microseconds())/float64(b.N), "diskµs(sim)/force")
	})
	b.Run("no-nvram-track-per-force", func(b *testing.B) {
		// Without a non-volatile buffer every force must reach the
		// platter: one track write per force.
		g := disk.DefaultGeometry()
		d, err := disk.New(g)
		if err != nil {
			b.Fatal(err)
		}
		data := make([]byte, 100)
		var busy time.Duration
		n := g.NumTracks()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc, err := d.WriteTrack(i%n, data)
			if err != nil {
				b.Fatal(err)
			}
			busy += svc
		}
		b.StopTimer()
		b.ReportMetric(float64(busy.Microseconds())/float64(max(b.N, 1)), "diskµs(sim)/force")
	})
}

// ---------------------------------------------------------------------------
// Interleave ablation (Section 4.3): one sequential stream for all
// clients versus a per-client file layout that seeks between regions.
func BenchmarkInterleaveAblation(b *testing.B) {
	const clients = 5
	g := disk.DefaultGeometry()
	track := make([]byte, g.TrackSize)
	b.Run("interleaved-sequential", func(b *testing.B) {
		d, err := disk.New(g)
		if err != nil {
			b.Fatal(err)
		}
		var busy time.Duration
		n := g.NumTracks()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc, err := d.WriteTrack(i%n, track) // all clients share one stream
			if err != nil {
				b.Fatal(err)
			}
			busy += svc
		}
		b.StopTimer()
		b.ReportMetric(float64(busy.Microseconds())/float64(max(b.N, 1)), "diskµs(sim)/track")
	})
	b.Run("per-client-files", func(b *testing.B) {
		d, err := disk.New(g)
		if err != nil {
			b.Fatal(err)
		}
		// Each client's file lives in its own disk region; round-robin
		// writes seek between regions.
		region := g.NumTracks() / clients
		next := make([]int, clients)
		var busy time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := i % clients
			trk := c*region + next[c]%region
			next[c]++
			svc, err := d.WriteTrack(trk, track)
			if err != nil {
				b.Fatal(err)
			}
			busy += svc
		}
		b.StopTimer()
		b.ReportMetric(float64(busy.Microseconds())/float64(max(b.N, 1)), "diskµs(sim)/track")
	})
}

// ---------------------------------------------------------------------------
// Read path: recovery-scan throughput. A recovery manager replays the
// whole log at restart; the streaming cursor pipelines that scan
// (read-ahead window, multi-record stream packets, holder fan-out)
// where the per-record path pays one network round trip per LSN. Run
// over a memnet with non-zero latency so round trips cost real time —
// the regime the cursor exists for. Each iteration opens a fresh
// client, as restart recovery would (and so the client read cache
// cannot serve the per-record baseline across iterations).
func BenchmarkRecoveryScan(b *testing.B) {
	const records = 1024
	cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	seedClient, err := cluster.OpenClient(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 64)
	for i := 0; i < records; i++ {
		if _, err := seedClient.WriteLog(data); err != nil {
			b.Fatal(err)
		}
		if i%32 == 31 {
			if err := seedClient.Force(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := seedClient.Force(); err != nil {
		b.Fatal(err)
	}
	seedClient.Close()
	cluster.Network().SetFaults(distlog.Faults{FixedDelay: 200 * time.Microsecond})

	openFresh := func(b *testing.B) *distlog.Client {
		b.Helper()
		l, err := cluster.OpenClient(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		return l
	}

	b.Run("per-record", func(b *testing.B) {
		scanned := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l := openFresh(b)
			end := l.EndOfLog()
			for lsn := distlog.LSN(1); lsn <= end; lsn++ {
				if _, err := l.ReadRecord(lsn); err != nil {
					b.Fatal(err)
				}
				scanned++
			}
			l.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(scanned)/b.Elapsed().Seconds(), "recs/s")
	})
	b.Run("cursor", func(b *testing.B) {
		scanned := 0
		var streams uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l := openFresh(b)
			end := l.EndOfLog()
			cur, err := l.OpenCursor(1, distlog.Forward)
			if err != nil {
				b.Fatal(err)
			}
			for lsn := distlog.LSN(1); lsn <= end; lsn++ {
				rec, err := cur.Next()
				if err != nil {
					b.Fatal(err)
				}
				if rec.LSN != lsn {
					b.Fatalf("got LSN %d, want %d", rec.LSN, lsn)
				}
				scanned++
			}
			cur.Close()
			streams += l.Stats().CursorStreams
			l.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(scanned)/b.Elapsed().Seconds(), "recs/s")
		b.ReportMetric(float64(streams)/float64(b.N), "streams/scan")
	})
}

// ---------------------------------------------------------------------------
// Parallel multi-stream logging: ET1-shaped commit throughput as the
// client's log is spread over K streams. A single stream admits one
// force round at a time — commits across the engine's concurrent
// transactions coalesce into it, but the round pipeline is depth one
// and every commit eats at least a full round trip of queueing. K
// streams run K independent force pipelines against the same servers
// (transactions are assigned round-robin, commit records carry
// dependency vectors), so with the worker pool held fixed the rounds
// overlap and commits/s should scale well past the K=1 rate.
//
// Each worker runs DebitCredit transactions against its own bank
// partition rather than ApplyET1: ET1's shared history/count row is a
// global lock point under strict 2PL, and lock-serialized commits
// measure commit latency, not log throughput, at every K.
func BenchmarkStreamScaling(b *testing.B) {
	const workers = 8
	for _, k := range []int{1, 2, 4} {
		k := k
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3, Streams: k})
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			l, err := cluster.OpenClient(1, 2)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			e, err := distlog.OpenEngine(l, distlog.NewStableStore(), distlog.EngineOptions{})
			if err != nil {
				b.Fatal(err)
			}
			scale := distlog.DefaultET1Scale()
			gens := make([]*distlog.ET1Generator, workers)
			for i := range gens {
				gens[i] = distlog.NewET1(scale, int64(i+1))
			}
			et1Shaped := func(w int, txn distlog.ET1Txn) error {
				t := e.Begin()
				if _, err := t.Add(fmt.Sprintf("w%d/branch/%d", w, txn.Branch), txn.Delta); err != nil {
					return err
				}
				if _, err := t.Add(fmt.Sprintf("w%d/teller/%d", w, txn.Teller), txn.Delta); err != nil {
					return err
				}
				if _, err := t.Add(fmt.Sprintf("w%d/account/%d", w, txn.Account), txn.Delta); err != nil {
					return err
				}
				if _, err := t.Add(fmt.Sprintf("w%d/history", w), 1); err != nil {
					return err
				}
				return t.Commit()
			}
			// Warm the path, then add the LAN round trip every commit pays.
			if err := et1Shaped(0, gens[0].Next()); err != nil {
				b.Fatal(err)
			}
			cluster.Network().SetFaults(distlog.Faults{FixedDelay: 200 * time.Microsecond})
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			start := time.Now()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if err := et1Shaped(w, gens[w].Next()); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "txns/s")
		})
	}
}

// BenchmarkParallelRecovery measures restart recovery of the same ET1
// history logged on one stream versus four. Both scans run over a
// 200µs-latency memnet; the single-stream recovery is one prefetching
// cursor, the multi-stream recovery opens K cursors through the same
// prefetch engine and merges them by dependency vector — K read
// pipelines in flight instead of one.
func BenchmarkParallelRecovery(b *testing.B) {
	const txns = 500
	for _, k := range []int{1, 4} {
		k := k
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3, Streams: k})
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			stable := distlog.NewStableStore()
			l, err := cluster.OpenClient(1, 2)
			if err != nil {
				b.Fatal(err)
			}
			e, err := distlog.OpenEngine(l, stable, distlog.EngineOptions{})
			if err != nil {
				b.Fatal(err)
			}
			gen := distlog.NewET1(distlog.DefaultET1Scale(), 17)
			for i := 0; i < txns; i++ {
				if _, err := distlog.ApplyET1(e, gen.Next()); err != nil {
					b.Fatal(err)
				}
			}
			l.Close() // crash: recovery replays the whole history
			dirty := stable.Snapshot()
			cluster.Network().SetFaults(distlog.Faults{FixedDelay: 200 * time.Microsecond})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				restored := distlog.NewStableStore()
				for key, v := range dirty {
					restored.Set(key, v)
				}
				l2, err := cluster.OpenClient(1, 2)
				if err != nil {
					b.Fatal(err)
				}
				e2, err := distlog.OpenEngine(l2, restored, distlog.EngineOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if got := e2.Stats().RecoveredWinners; got != txns {
					b.Fatalf("recovered %d winners, want %d", got, txns)
				}
				l2.Close()
			}
			b.StopTimer()
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)*1e3, "recovery-ms")
		})
	}
}

// TestSpaceManagementEndToEnd exercises the Section 5.3 pipeline: the
// transaction engine checkpoints, the replicated log truncates its
// prefix on every server, and restart recovery replays only the short
// suffix.
func TestSpaceManagementEndToEnd(t *testing.T) {
	cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	l, err := cluster.OpenClient(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	stable := distlog.NewStableStore()
	e, err := distlog.OpenEngine(l, stable, distlog.EngineOptions{
		CheckpointEvery:      25,
		TruncateOnCheckpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := distlog.NewET1(distlog.ET1Scale{Branches: 2, Tellers: 20, Accounts: 200}, 9)
	for i := 0; i < 100; i++ {
		if _, err := distlog.ApplyET1(e, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if l.Truncated() == 0 {
		t.Fatal("no truncation happened")
	}
	// Server-side interval lists are clipped.
	for _, name := range cluster.Servers() {
		ivs := cluster.Store(name).Intervals(1)
		if len(ivs) > 0 && ivs[0].Low < l.Truncated()/2 {
			t.Fatalf("%s retains a long prefix: %v (truncated at %d)", name, ivs[:1], l.Truncated())
		}
	}
	l.Close() // crash

	l2, err := cluster.OpenClient(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	e2, err := distlog.OpenEngine(l2, stable, distlog.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Get("history/count"); got != 100 {
		t.Fatalf("history/count = %d after recovery with truncated log", got)
	}
}

// TestModelledClusterEndToEnd runs the full pipeline over the paper's
// modelled hardware: each log server stores its stream in battery-
// backed NVRAM drained track-at-a-time to a simulated logging disk.
func TestModelledClusterEndToEnd(t *testing.T) {
	cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3, Modelled: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	l, err := cluster.OpenClient(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []distlog.LSN
	for i := 0; i < 200; i++ {
		lsn, err := l.WriteLog([]byte(fmt.Sprintf("modelled-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
		if i%10 == 9 {
			if err := l.Force(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	for i, lsn := range lsns {
		data, err := l.ReadLog(lsn)
		if err != nil || string(data) != fmt.Sprintf("modelled-%d", i) {
			t.Fatalf("ReadLog(%d) = %q, %v", lsn, data, err)
		}
	}
	// Restart survives with the modelled store too.
	l.Close()
	l2, err := cluster.OpenClient(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.ReadLog(lsns[0]); err != nil {
		t.Fatalf("ReadLog after restart: %v", err)
	}
}

// BenchmarkForceUnderCompaction measures what background segment
// compaction costs the foreground force path (Section 5.3: space
// management must never interfere with logging). Three servers run
// over segmented stores with a cold archive tier; the client
// force-appends 100-byte records, checkpointing every 200 forces so
// truncation keeps freeing segments for the compactor to reclaim. The
// compactor=off case is the baseline; compactor=on adds a
// latency-paced compactor per server. p50-ns/p99-ns are the client's
// observed per-force latencies — the acceptance bar is p99 within a
// few percent of the baseline.
func BenchmarkForceUnderCompaction(b *testing.B) {
	for _, compacting := range []bool{false, true} {
		name := "compactor=off"
		if compacting {
			name = "compactor=on"
		}
		b.Run(name, func(b *testing.B) {
			net := distlog.NewNetwork(1)
			names := []string{"fc1", "fc2", "fc3"}
			reg := distlog.NewTelemetry()
			for _, srvName := range names {
				arch, err := distlog.OpenArchive(fmt.Sprintf("%s/%s-arch", b.TempDir(), srvName), distlog.ArchiveOptions{})
				if err != nil {
					b.Fatal(err)
				}
				defer arch.Close()
				seg, err := distlog.OpenSegStore(fmt.Sprintf("%s/%s", b.TempDir(), srvName), distlog.SegOptions{
					SegmentBytes: 32 << 10,
					Archive:      arch,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer seg.Close()
				if compacting {
					comp := distlog.NewCompactor(distlog.CompactorConfig{
						Store:          seg,
						Interval:       time.Millisecond,
						Backoff:        25 * time.Millisecond,
						ForceHist:      reg.Histogram("storage.seg.force_latency_ns"),
						ForceP99Budget: uint64(2 * time.Millisecond),
					})
					defer comp.Stop()
				}
				srv := distlog.NewServer(distlog.ServerConfig{
					Name:     srvName,
					Store:    storage.Instrument(seg, reg, "seg"),
					Endpoint: net.Endpoint(srvName),
					Epochs:   distlog.NewMemEpochHost(),
				})
				srv.Start()
				defer srv.Stop()
			}
			l, err := distlog.Open(distlog.ClientConfig{
				ClientID:    1,
				Servers:     names,
				N:           2,
				Endpoint:    net.Endpoint("fc-client"),
				CallTimeout: 2 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()

			data := make([]byte, 100)
			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, err := l.ForceLog(data); err != nil {
					b.Fatal(err)
				}
				lat = append(lat, time.Since(start))
				if (i+1)%200 == 0 {
					if _, err := l.Checkpoint(nil); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			if len(lat) > 0 {
				b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
				b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
			}
		})
	}
}
