package distlog

import (
	"fmt"
	"time"

	"distlog/internal/loadassign"
	"distlog/internal/server"
	"distlog/internal/storage"
	"distlog/internal/telemetry"
	"distlog/internal/transport"
)

// Cluster is a convenience harness: M in-process log servers on an
// in-memory network, with stable state that survives StopServer /
// StartServer cycles. The examples, the benchmarks, and many tests
// are built on it; production deployments run cmd/logserverd over UDP
// instead.
type Cluster struct {
	net         *transport.Network
	names       []string
	stores      map[string]storage.Store
	epochs      map[string]*server.MemEpochHost
	servers     map[string]*server.Server
	telemetry   *telemetry.Registry
	modelled    bool
	queueDepth  int
	sessionIdle time.Duration
	streams     int
}

// ClusterOptions configures NewCluster.
type ClusterOptions struct {
	// Servers is M, the number of log server nodes. Zero means 3.
	Servers int
	// Seed fixes the network's fault randomness. Zero means 1.
	Seed int64
	// Modelled, when true, backs each server with the simulated
	// NVRAM+disk store instead of plain memory.
	Modelled bool
	// QueueDepth and SessionIdle tune each server's write pipeline:
	// the per-session queue bound and the idle-session eviction
	// horizon. Zero takes the server defaults.
	QueueDepth  int
	SessionIdle time.Duration
	// Streams is K, the number of parallel logging streams each
	// OpenClient log runs (see ClientConfig.Streams). Zero means 1,
	// the classic single-stream client.
	Streams int
	// Telemetry, when non-nil, receives metrics (and trace events, if
	// enabled on the registry) from every server, client, and the
	// network of this cluster — the whole-process view a single-machine
	// deployment would have.
	Telemetry *telemetry.Registry
}

// Validate rejects nonsensical option values and fills the documented
// defaults in place. NewCluster calls it; it is exported so callers
// building options programmatically can check them early.
func (o *ClusterOptions) Validate() error {
	if o.Servers < 0 {
		return fmt.Errorf("distlog: ClusterOptions.Servers %d is negative", o.Servers)
	}
	if o.QueueDepth < 0 {
		return fmt.Errorf("distlog: ClusterOptions.QueueDepth %d is negative", o.QueueDepth)
	}
	if o.SessionIdle < 0 {
		return fmt.Errorf("distlog: ClusterOptions.SessionIdle %v is negative", o.SessionIdle)
	}
	if o.Streams < 0 {
		return fmt.Errorf("distlog: ClusterOptions.Streams %d is negative", o.Streams)
	}
	if o.Servers == 0 {
		o.Servers = 3
	}
	if o.Streams == 0 {
		o.Streams = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// NewCluster starts M log servers.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		net:         transport.NewNetwork(opts.Seed),
		stores:      make(map[string]storage.Store),
		epochs:      make(map[string]*server.MemEpochHost),
		servers:     make(map[string]*server.Server),
		telemetry:   opts.Telemetry,
		modelled:    opts.Modelled,
		queueDepth:  opts.QueueDepth,
		sessionIdle: opts.SessionIdle,
		streams:     opts.Streams,
	}
	c.net.SetTelemetry(opts.Telemetry)
	for i := 0; i < opts.Servers; i++ {
		if err := c.AddServer(fmt.Sprintf("logserver-%d", i+1)); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// AddServer provisions a brand-new server node (fresh store, fresh
// epoch host) and starts it — a server joining the cluster. The new
// address becomes visible through Servers(); running clients adopt it
// when the rebalancer (or an explicit Migrate) moves a write set there.
func (c *Cluster) AddServer(name string) error {
	if _, ok := c.stores[name]; ok {
		return fmt.Errorf("distlog: server %s already exists", name)
	}
	if c.modelled {
		s, _, _, err := NewModelledStore(DefaultDiskGeometry(), 4)
		if err != nil {
			return err
		}
		c.stores[name] = s
	} else {
		c.stores[name] = storage.NewMemStore()
	}
	c.epochs[name] = server.NewMemEpochHost()
	c.names = append(c.names, name)
	c.StartServer(name)
	return nil
}

// LeaveServer puts the named server into administrative drain: it
// answers every write and force with a Redirect hint while reads,
// interval lists, and epoch requests keep working, so clients can
// migrate off before StopServer takes the node down for good. It
// reports whether the server was running.
func (c *Cluster) LeaveServer(name string) bool {
	srv := c.servers[name]
	if srv == nil {
		return false
	}
	srv.Leave()
	return true
}

// Servers returns the server names (addresses on the cluster network).
func (c *Cluster) Servers() []string { return append([]string(nil), c.names...) }

// Network returns the cluster's in-memory network, for fault
// injection.
func (c *Cluster) Network() *Network { return c.net }

// Store returns the named server's store (for inspection in tests and
// examples).
func (c *Cluster) Store(name string) Store { return c.stores[name] }

// ServerStatsFor returns the named server's counters (zero when the
// server is stopped).
func (c *Cluster) ServerStatsFor(name string) ServerStats {
	if s := c.servers[name]; s != nil {
		return s.Stats()
	}
	return ServerStats{}
}

// StartServer (re)starts the named server over its existing durable
// state, like a node reboot.
func (c *Cluster) StartServer(name string) {
	if _, ok := c.servers[name]; ok {
		return
	}
	srv := server.New(server.Config{
		Name:        name,
		Store:       c.stores[name],
		Endpoint:    c.net.Endpoint(name),
		Epochs:      c.epochs[name],
		QueueDepth:  c.queueDepth,
		SessionIdle: c.sessionIdle,
		Telemetry:   c.telemetry,
	})
	srv.Start()
	c.servers[name] = srv
}

// StopServer halts the named server (it stops answering; its stable
// storage is retained).
func (c *Cluster) StopServer(name string) {
	if srv := c.servers[name]; srv != nil {
		srv.Stop()
		delete(c.servers, name)
	}
}

// OpenClient opens a replicated log over the cluster with the given
// client identity and replication factor. The log runs
// ClusterOptions.Streams parallel streams.
func (c *Cluster) OpenClient(id ClientID, n int) (*Client, error) {
	return Open(ClientConfig{
		ClientID:    id,
		Servers:     c.Servers(),
		N:           n,
		Streams:     c.streams,
		Endpoint:    c.net.Endpoint(fmt.Sprintf("client-%d", id)),
		CallTimeout: 200 * time.Millisecond,
		Telemetry:   c.telemetry,
	})
}

// NewRebalancer wires the load-assignment controller to this cluster:
// Snapshot assembles per-server liveness, drain state, and the session
// load gauge plus each client's current write set; Move executes
// decisions through the matching client's Migrate. Call Step on the
// result after membership changes (or on a timer). A nil Policy means
// rendezvous placement — the same ranking clients use at
// initialization, so only clients whose write set lost a member move.
func (c *Cluster) NewRebalancer(n int, clients ...*Client) *Rebalancer {
	return &loadassign.Controller{
		N: n,
		Snapshot: func() (loadassign.View, error) {
			var v loadassign.View
			for _, name := range c.names {
				sl := loadassign.ServerLoad{Addr: name}
				if srv := c.servers[name]; srv != nil {
					st := srv.Stats()
					sl.Up = true
					sl.Sessions = st.Sessions
					sl.Leaving = st.Leaving
				}
				if ur, ok := c.stores[name].(storage.UsageReporter); ok {
					sl.ArchiveReclaimable = ur.Usage().ArchiveReclaimableBytes
				}
				v.Servers = append(v.Servers, sl)
			}
			for _, cl := range clients {
				v.Clients = append(v.Clients, loadassign.ClientLoad{
					ID:       uint64(cl.ClientID()),
					WriteSet: cl.WriteSet(),
				})
			}
			return v, nil
		},
		Move: func(d loadassign.Decision) error {
			for _, cl := range clients {
				if uint64(cl.ClientID()) == d.ClientID {
					return cl.Migrate(d.Target)
				}
			}
			return fmt.Errorf("distlog: no client %d to migrate", d.ClientID)
		},
	}
}

// Close stops every server.
func (c *Cluster) Close() {
	for name := range c.servers {
		c.StopServer(name)
	}
	for _, st := range c.stores {
		st.Close()
	}
}
