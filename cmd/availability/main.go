// Command availability regenerates Figure 3.4 of the paper: the
// availability of replicated logs for WriteLog operations and client
// initialization as log servers are added, for dual- and triple-copy
// logs, plus the Appendix I identifier-generator availability.
//
// Usage:
//
//	availability [-p 0.05] [-maxm 8] [-idgen]
package main

import (
	"flag"
	"fmt"

	"distlog/internal/availability"
)

func main() {
	p := flag.Float64("p", 0.05, "probability an individual server is unavailable")
	maxM := flag.Int("maxm", 8, "largest number of log servers M to tabulate")
	idg := flag.Bool("idgen", false, "also print replicated identifier generator availability")
	flag.Parse()

	fmt.Printf("Figure 3.4 — Availability of Replicated Logs (p = %g, server availability %.2f)\n\n", *p, 1-*p)
	fmt.Println("  N  M   WriteLog     ClientInit   ReadRecord")
	pts := availability.Figure34(*p, *maxM)
	lastN := 0
	for _, pt := range pts {
		if pt.N != lastN {
			if lastN != 0 {
				fmt.Println()
			}
			lastN = pt.N
		}
		fmt.Printf("  %d  %d   %.6f     %.6f     %.6f\n", pt.N, pt.M, pt.WriteLog, pt.ClientInit, pt.ReadRecord)
	}

	single := availability.Config{M: 1, N: 1, P: *p}
	fmt.Printf("\nsingle log server (all operations): %.6f\n", availability.WriteLog(single))

	if *idg {
		fmt.Println("\nAppendix I — Replicated identifier generator availability")
		fmt.Println("  reps  availability")
		for _, n := range []int{1, 2, 3, 4, 5, 7} {
			fmt.Printf("  %4d  %.6f\n", n, availability.IDGenerator(n, *p))
		}
	}
}
