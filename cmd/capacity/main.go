// Command capacity regenerates the Section 4.1 capacity analysis: the
// message rates, CPU and disk utilizations, network load, and daily
// log volume of the paper's 500 TPS target load, in closed form and by
// discrete-event simulation. The -ungrouped flag shows the per-record
// RPC configuration the paper rejects.
//
// Usage:
//
//	capacity [-clients 50] [-tps 10] [-servers 6] [-n 2] [-mips 3.5]
//	         [-ungrouped] [-multicast] [-fastdisk] [-sim 30s]
package main

import (
	"flag"
	"fmt"
	"time"

	"distlog/internal/capacity"
)

func main() {
	p := capacity.PaperParams()
	flag.IntVar(&p.Clients, "clients", p.Clients, "number of client nodes")
	tps := flag.Float64("tps", p.TPSPerClient, "ET1 transactions per second per client")
	flag.IntVar(&p.Servers, "servers", p.Servers, "number of log servers (M)")
	flag.IntVar(&p.Copies, "n", p.Copies, "copies per record (N)")
	mips := flag.Float64("mips", p.ServerMIPS, "server processor speed, MIPS")
	ungrouped := flag.Bool("ungrouped", false, "one RPC per log record (no grouping)")
	flag.BoolVar(&p.Multicast, "multicast", false, "send log data once via multicast")
	fastdisk := flag.Bool("fastdisk", false, "use the faster disk profile")
	simDur := flag.Duration("sim", 30*time.Second, "discrete-event simulation length (0 = skip)")
	flag.Parse()

	p.TPSPerClient = *tps
	p.ServerMIPS = *mips
	p.Grouping = !*ungrouped
	if *fastdisk {
		p.Disk = capacity.FastDisk()
	}

	mode := "grouped writes (the paper's design)"
	if *ungrouped {
		mode = "one RPC per record (rejected in Section 4.1)"
	}
	fmt.Printf("Section 4.1 capacity analysis — %s\n", mode)
	fmt.Printf("%d clients x %.0f TPS, %d records/txn, %d B/txn, M=%d, N=%d, %.1f MIPS, disk %s\n\n",
		p.Clients, p.TPSPerClient, p.RecordsPerTxn, p.BytesPerTxn, p.Servers, p.Copies, p.ServerMIPS, p.Disk.Name)

	fmt.Println("closed form:")
	fmt.Println(capacity.Analyze(p))

	if *simDur > 0 {
		fmt.Println("\ndiscrete-event simulation:")
		fmt.Println(capacity.Simulate(p, *simDur))
	}
}
