// Command crashaudit runs the crash-point injection audit of the
// Section 3.1.2 recovery procedure: a deterministic sweep that kills
// the client (or its servers) at every registered faultpoint in turn,
// followed by randomized crash/recover iterations under a lossy
// network. Every run reboots the cluster over its surviving stores,
// opens a new client incarnation, and audits the Section 3.1
// invariants. Exit status is non-zero on the first violation or
// coverage hole.
//
// The short form (the `make crashaudit` CI gate) is the defaults:
//
//	crashaudit                 # sweep + 200 randomized iterations
//
// Long soak runs scale the iteration count and loosen the network:
//
//	crashaudit -iters 5000 -seed 7 -drop 0.05 -delay 5ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"distlog/internal/crashaudit"
	"distlog/internal/transport"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "seed for fault schedules and scenario choices")
		iters     = flag.Int("iters", 200, "randomized crash/recover scenarios (0 disables)")
		sweep     = flag.Bool("sweep", true, "run the deterministic per-point sweep first")
		servers   = flag.Int("servers", 3, "log servers (M)")
		n         = flag.Int("n", 2, "copies per record (N)")
		delta     = flag.Int("delta", 4, "δ: maximum outstanding records")
		drop      = flag.Float64("drop", 0.02, "packet drop probability for randomized runs")
		dup       = flag.Float64("dup", 0.02, "packet duplication probability for randomized runs")
		delay     = flag.Duration("delay", 2*time.Millisecond, "maximum random delivery delay for randomized runs")
		segmented = flag.Bool("segmented", true, "also sweep with segmented (compacting) stores")
		verbose   = flag.Bool("v", false, "log each run")
	)
	flag.Parse()

	opts := crashaudit.Options{
		Seed:    *seed,
		Servers: *servers,
		N:       *n,
		Delta:   *delta,
	}
	if *verbose {
		opts.Logf = log.Printf
	}

	start := time.Now()
	runs, cycles := 0, 0
	if *sweep {
		rep, err := crashaudit.Sweep(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashaudit:", err)
			os.Exit(1)
		}
		runs += rep.Runs
		cycles += rep.Recoveries
		fmt.Printf("sweep: %d runs, %d crash/recover cycles, all %d points fired\n",
			rep.Runs, rep.Recoveries, len(rep.Fired))
	}
	if *sweep && *segmented {
		// The compacted-store recovery sweep: the same per-point kill
		// schedule, but every server runs a segmented store with a cold
		// archive tier and the workload checkpoints and compacts, so
		// recovery reboots over manifests, sealed segments, and archived
		// records rather than flat stores.
		so := opts
		so.Segmented = true
		rep, err := crashaudit.Sweep(so)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashaudit (segmented):", err)
			os.Exit(1)
		}
		runs += rep.Runs
		cycles += rep.Recoveries
		fmt.Printf("segmented sweep: %d runs, %d crash/recover cycles, all %d points fired\n",
			rep.Runs, rep.Recoveries, len(rep.Fired))
	}
	if *iters > 0 {
		ro := opts
		ro.Faults = transport.Faults{DropProb: *drop, DupProb: *dup, MaxDelay: *delay}
		rep, err := crashaudit.Randomized(ro, *iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashaudit:", err)
			os.Exit(1)
		}
		runs += rep.Runs
		cycles += rep.Recoveries
		fired := 0
		for _, hits := range rep.Fired {
			fired += len(hits)
		}
		fmt.Printf("randomized: %d runs, %d crash/recover cycles, %d triggers fired\n",
			rep.Runs, rep.Recoveries, fired)
	}
	fmt.Printf("crashaudit: ok — %d runs, %d crash/recover cycles in %v\n",
		runs, cycles, time.Since(start).Round(time.Millisecond))
}
