// Command et1load drives the paper's target workload — many client
// nodes running ET1 transactions against a shared set of in-process
// log servers — and reports per-server request rates and client
// latencies, the measured counterpart of the Section 4.1 analysis.
//
// Usage:
//
//	et1load [-clients 10] [-servers 6] [-n 2] [-txns 100] [-split] [-streams 1]
//
// (The paper's full 50x10 TPS point is CPU-bound in a single process;
// the defaults keep a laptop run under a few seconds while preserving
// the shape. Scale up with the flags.)
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"distlog"
	"distlog/internal/workload"
)

func main() {
	nClients := flag.Int("clients", 10, "number of client nodes")
	nServers := flag.Int("servers", 6, "number of log servers (M)")
	n := flag.Int("n", 2, "copies per record (N)")
	txns := flag.Int("txns", 100, "ET1 transactions per client")
	split := flag.Bool("split", false, "enable log record splitting/caching")
	streams := flag.Int("streams", 1, "parallel logging streams per client (K)")
	flag.Parse()

	cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: *nServers, Streams: *streams})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var totalTxns int
	var totalLatency time.Duration
	start := time.Now()

	for c := 1; c <= *nClients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			l, err := cluster.OpenClient(distlog.ClientID(id), *n)
			if err != nil {
				log.Printf("client %d: %v", id, err)
				return
			}
			defer l.Close()
			engine, err := distlog.OpenEngine(l, distlog.NewStableStore(), distlog.EngineOptions{Split: *split})
			if err != nil {
				log.Printf("client %d: %v", id, err)
				return
			}
			gen := distlog.NewET1(distlog.DefaultET1Scale(), int64(id))
			for i := 0; i < *txns; i++ {
				t0 := time.Now()
				if _, err := distlog.ApplyET1(engine, gen.Next()); err != nil {
					log.Printf("client %d txn %d: %v", id, i, err)
					return
				}
				mu.Lock()
				totalTxns++
				totalLatency += time.Since(t0)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("%d clients x %d ET1 transactions, M=%d, N=%d, K=%d, split=%v\n\n",
		*nClients, *txns, *nServers, *n, *streams, *split)
	fmt.Printf("completed:      %d transactions in %v (%.0f TPS)\n",
		totalTxns, elapsed.Round(time.Millisecond), float64(totalTxns)/elapsed.Seconds())
	if totalTxns > 0 {
		fmt.Printf("mean latency:   %v per transaction\n", (totalLatency / time.Duration(totalTxns)).Round(time.Microsecond))
	}
	fmt.Printf("\nper-server load:\n")
	for _, name := range cluster.Servers() {
		s := cluster.ServerStatsFor(name)
		fmt.Printf("  %-14s packets=%6d records=%6d forces=%5d (%.0f forces/s)\n",
			name, s.PacketsReceived, s.RecordsWritten, s.Forces, float64(s.Forces)/elapsed.Seconds())
	}
	_ = workload.TargetClients // the paper's full-scale point, documented in EXPERIMENTS.md
}
