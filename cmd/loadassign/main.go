// Command loadassign runs the Section 5.4 experiment: it compares
// decentralized load-assignment strategies (static client-derived
// offsets, random choice) against the coordinated least-loaded ideal,
// under server failures, reporting load fairness and how often clients
// switch servers (each switch starts a new interval on a log server).
//
// Usage:
//
//	loadassign [-clients 50] [-servers 6] [-n 2] [-rounds 1000]
//	           [-fail 0.01] [-repair 0.2] [-seed 1]
package main

import (
	"flag"
	"fmt"

	"distlog/internal/loadassign"
)

func main() {
	p := loadassign.DefaultParams()
	flag.IntVar(&p.Clients, "clients", p.Clients, "number of client nodes")
	flag.IntVar(&p.Servers, "servers", p.Servers, "number of log servers (M)")
	flag.IntVar(&p.Copies, "n", p.Copies, "copies per record (N)")
	flag.IntVar(&p.Rounds, "rounds", p.Rounds, "simulation rounds")
	flag.Float64Var(&p.FailProb, "fail", p.FailProb, "per-round server failure probability")
	flag.Float64Var(&p.RepairProb, "repair", p.RepairProb, "per-round server repair probability")
	flag.Int64Var(&p.Seed, "seed", p.Seed, "random seed")
	flag.Parse()

	fmt.Printf("Section 5.4 load assignment experiment: %d clients, M=%d, N=%d, %d rounds, fail %.3f / repair %.2f\n\n",
		p.Clients, p.Servers, p.Copies, p.Rounds, p.FailProb, p.RepairProb)
	for _, r := range loadassign.Compare(p) {
		fmt.Println(" ", r)
	}
	fmt.Println("\nimbalance: mean of (busiest server load / ideal even load); 1.0 is perfect.")
	fmt.Println("switches start new intervals on servers; frequent switching lengthens interval lists.")
}
