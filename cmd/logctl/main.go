// Command logctl is a client for log servers started with logserverd:
// it opens (recovering) a replicated log over UDP and appends, reads,
// or inspects it.
//
// Usage:
//
//	logctl -servers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 \
//	       -client 1 -n 2 [-streams 4] <command>
//
// Commands:
//
//	append <text...>   force-append each argument as one record
//	read <lsn>         print one record
//	scan               print every readable record
//	status             print end-of-log, epoch, and write set (plus a
//	                   line per stream when -streams > 1)
//	migrate <a,b,...>  move the write set to the given N servers (live
//	                   write-set migration; pair with logserverd SIGHUP
//	                   drain to retire a node without losing a record)
//	truncate <lsn>     discard records below lsn on every server (§5.3)
//	checkpoint [text]  write and force a checkpoint record, advance the
//	                   truncation point past everything before it, and
//	                   report it to the servers (fire-and-forget §5.3)
//	stats <host:port>  fetch and render a server's telemetry snapshot
//	                   (the address of its logserverd -metrics listener)
//	du <host:port>     print a server's log disk usage: live,
//	                   reclaimable, and archived bytes, segment counts
//	archive verify <dir>
//	                   walk an archive directory offline: frame
//	                   checksums, volume chain continuity, and
//	                   forest/overlay consistency against the manifest
//	                   floors; exits non-zero on any violation
//	archive export <dir> [base]
//	                   dump the records of one archive volume (by base
//	                   offset) or of every volume, offline
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"distlog/internal/core"
	"distlog/internal/record"
	"distlog/internal/retention"
	"distlog/internal/telemetry"
	"distlog/internal/transport"
)

// runDU implements `logctl du`: render the disk-usage gauges a
// segmented logserverd exports.
func runDU(addr string) {
	snap := fetchSnapshot(addr)
	names := []string{"live_bytes", "reclaimable_bytes", "archived_bytes", "archive_reclaimable", "segments", "sealed_segments"}
	found := false
	for _, n := range names {
		if v, ok := snap.Gauges["storage.disk."+n]; ok {
			fmt.Printf("%-18s %d\n", n+":", v)
			found = true
		}
	}
	if !found {
		log.Fatalf("no storage.disk.* gauges at %s (server too old, or usage not yet sampled)", addr)
	}
}

// fetchSnapshot fetches the JSON telemetry snapshot a logserverd
// -metrics listener serves.
func fetchSnapshot(addr string) telemetry.Snapshot {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/") + "/metrics"
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("fetching %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("fetching %s: %s", url, resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatalf("decoding snapshot: %v", err)
	}
	return snap
}

// runArchive implements `logctl archive verify|export`: offline walks
// of an archive directory that need no running server (and must not
// race one — both only read).
func runArchive(args []string) {
	if len(args) < 2 {
		log.Fatal("usage: logctl archive verify <dir> | archive export <dir> [base]")
	}
	dir := args[1]
	switch args[0] {
	case "verify":
		rep, err := retention.VerifyArchiveDir(dir)
		if err != nil {
			log.Fatalf("archive verify: %v", err)
		}
		rep.Render(os.Stdout)
		if len(rep.Issues) > 0 {
			os.Exit(1)
		}
	case "export":
		base := int64(-1)
		if len(args) > 2 {
			b, err := strconv.ParseInt(args[2], 10, 64)
			if err != nil {
				log.Fatalf("bad volume base: %v", err)
			}
			base = b
		}
		if err := retention.ExportArchiveDir(os.Stdout, dir, base); err != nil {
			log.Fatalf("archive export: %v", err)
		}
	default:
		log.Fatalf("unknown archive subcommand %q", args[0])
	}
}

// runStats implements `logctl stats`: fetch the JSON snapshot a
// logserverd -metrics listener serves and render it. It needs no
// replicated log (and so no UDP servers) — just the HTTP endpoint.
func runStats(addr string) {
	snap := fetchSnapshot(addr)
	snap.Render(os.Stdout)
	renderStreamCounters(snap)
}

// renderStreamCounters summarizes the client.streams.<i>.* families of
// a multi-stream client as one line per stream — the operator's view
// of how load divides across the K streams. Silent when the snapshot
// holds none (a server, or a single-stream client).
func renderStreamCounters(snap telemetry.Snapshot) {
	type row struct{ writes, forces, commits uint64 }
	rows := make(map[int]*row)
	for name, v := range snap.Counters {
		rest, ok := strings.CutPrefix(name, "client.streams.")
		if !ok {
			continue
		}
		dot := strings.IndexByte(rest, '.')
		if dot < 0 {
			continue
		}
		idx, err := strconv.Atoi(rest[:dot])
		if err != nil {
			continue
		}
		r := rows[idx]
		if r == nil {
			r = &row{}
			rows[idx] = r
		}
		switch rest[dot+1:] {
		case "writes":
			r.writes = v
		case "forces":
			r.forces = v
		case "commits":
			r.commits = v
		}
	}
	if len(rows) == 0 {
		return
	}
	idxs := make([]int, 0, len(rows))
	for i := range rows {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	fmt.Printf("\nper-stream:\n")
	for _, i := range idxs {
		r := rows[i]
		fmt.Printf("  stream %-3d writes=%-8d forces=%-8d commits=%d\n", i, r.writes, r.forces, r.commits)
	}
}

func main() {
	serversFlag := flag.String("servers", "127.0.0.1:7700", "comma-separated log server addresses (M)")
	clientID := flag.Uint64("client", 1, "client identifier")
	n := flag.Int("n", 1, "copies per record (N)")
	streams := flag.Int("streams", 1, "parallel logging streams (K); commands act on stream 0")
	timeout := flag.Duration("timeout", time.Second, "per-call timeout")
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: logctl [flags] append|read|scan|status|migrate|truncate|checkpoint|stats|du|archive ...")
	}

	if flag.Arg(0) == "stats" {
		if flag.NArg() != 2 {
			log.Fatal("usage: logctl stats <host:port of -metrics listener>")
		}
		runStats(flag.Arg(1))
		return
	}
	if flag.Arg(0) == "du" {
		if flag.NArg() != 2 {
			log.Fatal("usage: logctl du <host:port of -metrics listener>")
		}
		runDU(flag.Arg(1))
		return
	}
	if flag.Arg(0) == "archive" {
		runArchive(flag.Args()[1:])
		return
	}

	ep, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		log.Fatalf("binding: %v", err)
	}
	l, err := core.Open(core.Config{
		ClientID:    record.ClientID(*clientID),
		Servers:     strings.Split(*serversFlag, ","),
		N:           *n,
		Streams:     *streams,
		Endpoint:    ep,
		CallTimeout: *timeout,
	})
	if err != nil {
		log.Fatalf("opening replicated log: %v", err)
	}
	defer l.Close()

	switch cmd := flag.Arg(0); cmd {
	case "append":
		for _, text := range flag.Args()[1:] {
			lsn, err := l.ForceLog([]byte(text))
			if err != nil {
				log.Fatalf("append: %v", err)
			}
			fmt.Printf("LSN %d <- %q\n", lsn, text)
		}
	case "read":
		if flag.NArg() != 2 {
			log.Fatal("usage: logctl read <lsn>")
		}
		lsn, err := strconv.ParseUint(flag.Arg(1), 10, 64)
		if err != nil {
			log.Fatalf("bad LSN: %v", err)
		}
		data, err := l.ReadLog(record.LSN(lsn))
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		fmt.Printf("LSN %d = %q\n", lsn, data)
	case "scan":
		if l.EndOfLog() == 0 {
			break
		}
		cur, err := l.OpenCursor(1, core.Forward)
		if err != nil {
			log.Fatalf("scan: %v", err)
		}
		defer cur.Close()
		for {
			rec, err := cur.Next()
			if errors.Is(err, core.ErrBeyondEnd) {
				break
			}
			if err != nil {
				log.Fatalf("scan: %v", err)
			}
			if rec.Present {
				fmt.Printf("LSN %d = %q\n", rec.LSN, rec.Data)
			} else {
				fmt.Printf("LSN %d (not present)\n", rec.LSN)
			}
		}
	case "status":
		fmt.Printf("end of log: %d\n", l.EndOfLog())
		fmt.Printf("epoch:      %d\n", l.Epoch())
		fmt.Printf("write set:  %v\n", l.WriteSet())
		if l.Streams() > 1 {
			for i := 0; i < l.Streams(); i++ {
				s := l.Stream(i)
				fmt.Printf("stream %d:   end of log %d, epoch %d\n", i, s.EndOfLog(), s.Epoch())
			}
		}
	case "migrate":
		if flag.NArg() != 2 {
			log.Fatal("usage: logctl migrate <addr1,addr2,...> (exactly N addresses)")
		}
		target := strings.Split(flag.Arg(1), ",")
		if err := l.Migrate(target); err != nil {
			log.Fatalf("migrate: %v", err)
		}
		fmt.Printf("write set:  %v\n", l.WriteSet())
		fmt.Printf("epoch:      %d\n", l.Epoch())
	case "truncate":
		if flag.NArg() != 2 {
			log.Fatal("usage: logctl truncate <lsn>")
		}
		lsn, err := strconv.ParseUint(flag.Arg(1), 10, 64)
		if err != nil {
			log.Fatalf("bad LSN: %v", err)
		}
		if err := l.TruncatePrefix(record.LSN(lsn)); err != nil {
			log.Fatalf("truncate: %v", err)
		}
		fmt.Printf("truncated below %d (effective point: %d)\n", lsn, l.Truncated())
	case "checkpoint":
		data := []byte(strings.Join(flag.Args()[1:], " "))
		if len(data) == 0 {
			data = []byte("checkpoint")
		}
		lsn, err := l.Checkpoint(data)
		if err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		fmt.Printf("checkpoint record: LSN %d\n", lsn)
		fmt.Printf("truncation point:  %d\n", l.Truncated())
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
