// Command logserverd runs a standalone log server over UDP with a
// durable file-backed store, suitable for multi-process deployments of
// the distributed logging service.
//
// Usage:
//
//	logserverd -listen 127.0.0.1:7700 -data /var/lib/distlog/server1.log \
//	           -metrics 127.0.0.1:7780
//
// With -segment-bytes the store is segmented (Section 5.3 log space
// management): -data names a directory of fixed-size append segments,
// truncation-point advances reclaim whole segments, and a background
// compactor migrates cold fully-stable segments into the write-once
// archive tier named by -archive, pacing itself off the force-latency
// histogram so reclamation never blows the force p99 (-compact-budget).
// Disk usage (live, reclaimable, and archived bytes; segment counts)
// is exported through the -metrics listener — `logctl du` renders it.
//
// The -metrics listener serves the telemetry registry: a JSON snapshot
// at /metrics (and /), a human-readable page at /debug/telemetry, and
// the recent LSN-lifecycle trace at /debug/trace. `logctl stats`
// fetches and renders the JSON snapshot.
//
// Stop with SIGINT/SIGTERM; the store is synced and closed cleanly
// (though the design tolerates unclean death: the stream's torn tail
// is discarded on the next start, and nothing acknowledged is ever in
// the tail).
//
// SIGHUP puts the server into administrative drain (leave): every
// write and force is answered with a Redirect hint while reads,
// interval lists, and epoch requests keep working, so clients migrate
// their write sets elsewhere (see `logctl migrate`) before a final
// SIGTERM takes the node down for good.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distlog/internal/retention"
	"distlog/internal/server"
	"distlog/internal/storage"
	"distlog/internal/telemetry"
	"distlog/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7700", "UDP address to serve on")
	data := flag.String("data", "distlog-server.log", "path of the log stream file")
	stats := flag.Duration("stats", time.Minute, "statistics reporting interval (0 = silent)")
	metrics := flag.String("metrics", "", "HTTP address serving /metrics JSON and /debug/telemetry (empty = off)")
	traceCap := flag.Int("trace", 4096, "LSN-lifecycle trace ring capacity (0 = tracing off)")
	queueDepth := flag.Int("queue-depth", 0, "per-session message queue bound (0 = default)")
	sessionIdle := flag.Duration("session-idle", 0, "evict sessions idle this long (0 = default, <0 = never)")
	segmentBytes := flag.Int64("segment-bytes", 0, "segmented store: segment capacity in bytes, -data is a directory (0 = flat file store)")
	archiveDir := flag.String("archive", "", "segmented store: directory of the write-once archive tier (empty = reclaim dead segments only)")
	archiveVolumeBytes := flag.Int64("archive-volume-bytes", 0, "archive volume capacity in bytes; full volumes below every client's truncation floor are retired wholesale (0 = 64 MiB)")
	compactInterval := flag.Duration("compact-interval", time.Second, "pause between background compaction attempts")
	compactBudget := flag.Duration("compact-budget", 5*time.Millisecond, "force p99 above which compaction backs off (0 = unpaced)")
	flag.Parse()

	reg := telemetry.NewRegistry()
	if *traceCap > 0 {
		reg.EnableTrace(*traceCap)
	}

	var (
		store     storage.Store
		usage     storage.UsageReporter
		arch      *retention.Archive
		compactor *retention.Compactor
		backend   = "file"
	)
	if *segmentBytes > 0 {
		backend = "seg"
		if *archiveDir != "" {
			a, err := retention.OpenArchive(*archiveDir, retention.ArchiveOptions{VolumeBytes: *archiveVolumeBytes})
			if err != nil {
				log.Fatalf("opening archive: %v", err)
			}
			arch = a
		}
		var archTier storage.ArchiveTier
		if arch != nil {
			archTier = arch
		}
		seg, err := storage.OpenSegStore(*data, storage.SegOptions{
			SegmentBytes: *segmentBytes,
			Archive:      archTier,
		})
		if err != nil {
			log.Fatalf("opening segmented store: %v", err)
		}
		store, usage = seg, seg
		cfg := retention.CompactorConfig{
			Store:          seg,
			Interval:       *compactInterval,
			ForceHist:      reg.Histogram("storage.seg.force_latency_ns"),
			ForceP99Budget: uint64(*compactBudget),
			OnError:        func(err error) { log.Printf("compaction: %v", err) },
		}
		if arch != nil {
			cfg.Retire = arch
		}
		compactor = retention.NewCompactor(cfg)
	} else {
		fs, err := storage.OpenFileStore(*data)
		if err != nil {
			log.Fatalf("opening store: %v", err)
		}
		store, usage = fs, fs
	}
	ep, err := transport.ListenUDP(*listen)
	if err != nil {
		log.Fatalf("listening: %v", err)
	}
	srv := server.New(server.Config{
		Name:        *listen,
		Store:       storage.Instrument(store, reg, backend),
		Endpoint:    transport.Instrument(ep, reg, "net.udp"),
		Epochs:      server.NewMemEpochHost(),
		QueueDepth:  *queueDepth,
		SessionIdle: *sessionIdle,
		Telemetry:   reg,
	})
	srv.Start()
	log.Printf("log server on %s, store %s (%s), clients %v", ep.Addr(), *data, backend, store.Clients())

	// Export disk usage through the registry so /metrics (and `logctl
	// du`) can report how much log space is live, reclaimable, and
	// archived.
	usageStop := make(chan struct{})
	go func() {
		g := func(name string) *telemetry.Gauge { return reg.Gauge("storage.disk." + name) }
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			u := usage.Usage()
			g("live_bytes").Set(u.LiveBytes)
			g("reclaimable_bytes").Set(u.ReclaimableBytes)
			g("archived_bytes").Set(u.ArchivedBytes)
			g("archive_reclaimable").Set(u.ArchiveReclaimableBytes)
			g("segments").Set(int64(u.Segments))
			g("sealed_segments").Set(int64(u.SealedSegments))
			select {
			case <-usageStop:
				return
			case <-tick.C:
			}
		}
	}()

	if *metrics != "" {
		go func() {
			log.Printf("telemetry on http://%s/metrics", *metrics)
			if err := http.ListenAndServe(*metrics, telemetry.Handler(reg)); err != nil {
				log.Printf("telemetry listener: %v", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	drain := make(chan os.Signal, 1)
	signal.Notify(drain, syscall.SIGHUP)
	go func() {
		for range drain {
			srv.Leave()
			log.Printf("SIGHUP: administrative drain — writes draw Redirect, reads keep working; SIGTERM once clients have migrated")
		}
	}()
	if *stats > 0 {
		go func() {
			// Report from the registry snapshot, and stay silent across
			// intervals where nothing moved — an idle server should not
			// fill its log with identical lines.
			last := reg.Snapshot()
			for range time.Tick(*stats) {
				snap := reg.Snapshot()
				if snap.Equal(last) {
					continue
				}
				last = snap
				log.Printf("packets=%d records=%d forces=%d nacks=%d sheds=%d reads=%d sessions=%d",
					snap.Counters["server.packets_received"],
					snap.Counters["server.records_appended"],
					snap.Counters["server.forces"],
					snap.Counters["server.nacks_sent"],
					snap.Counters["server.sheds"],
					snap.Counters["server.reads_served"],
					snap.Gauges["server.sessions"])
				if h, ok := snap.Histograms["server.force.latency_ns"]; ok && h.Count > 0 {
					log.Printf("force latency: n=%d mean=%s p50=%s p99=%s",
						h.Count, time.Duration(h.Mean()),
						time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.99)))
				}
			}
		}()
	}
	<-stop
	srv.Stop()
	close(usageStop)
	if compactor != nil {
		compactor.Stop()
	}
	if err := store.Close(); err != nil {
		log.Fatalf("closing store: %v", err)
	}
	if arch != nil {
		if err := arch.Close(); err != nil {
			log.Fatalf("closing archive: %v", err)
		}
	}
	fmt.Println("log server stopped")
}
