// Command logserverd runs a standalone log server over UDP with a
// durable file-backed store, suitable for multi-process deployments of
// the distributed logging service.
//
// Usage:
//
//	logserverd -listen 127.0.0.1:7700 -data /var/lib/distlog/server1.log
//
// Stop with SIGINT/SIGTERM; the store is synced and closed cleanly
// (though the design tolerates unclean death: the stream's torn tail
// is discarded on the next start, and nothing acknowledged is ever in
// the tail).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distlog/internal/server"
	"distlog/internal/storage"
	"distlog/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7700", "UDP address to serve on")
	data := flag.String("data", "distlog-server.log", "path of the log stream file")
	stats := flag.Duration("stats", time.Minute, "statistics reporting interval (0 = silent)")
	flag.Parse()

	store, err := storage.OpenFileStore(*data)
	if err != nil {
		log.Fatalf("opening store: %v", err)
	}
	ep, err := transport.ListenUDP(*listen)
	if err != nil {
		log.Fatalf("listening: %v", err)
	}
	srv := server.New(server.Config{
		Name:     *listen,
		Store:    store,
		Endpoint: ep,
		Epochs:   server.NewMemEpochHost(),
	})
	srv.Start()
	log.Printf("log server on %s, store %s, clients %v", ep.Addr(), *data, store.Clients())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				s := srv.Stats()
				log.Printf("packets=%d records=%d forces=%d nacks=%d reads=%d",
					s.PacketsReceived, s.RecordsWritten, s.Forces, s.MissingIntervals, s.ReadsServed)
			}
		}()
	}
	<-stop
	srv.Stop()
	if err := store.Close(); err != nil {
		log.Fatalf("closing store: %v", err)
	}
	fmt.Println("log server stopped")
}
