// Package distlog is a Go implementation of the distributed logging
// service of Daniels, Spector & Thompson, "Distributed Logging for
// Transaction Processing" (SIGMOD 1987): transaction-processing nodes
// write their recovery logs to shared log server nodes, with each
// record replicated on N of M servers by a single-client quorum
// consensus algorithm that uses epoch numbers and present flags to
// make crash-interrupted writes appear atomic.
//
// The package re-exports the system's public surface:
//
//   - Open / Client — the replicated log (WriteLog, ForceLog, ReadLog,
//     EndOfLog) with client initialization and crash recovery.
//   - NewServer / Server — a log server node over a pluggable Store
//     (memory, NVRAM+disk model, or ordinary files).
//   - Transports — an in-memory fault-injecting network and UDP.
//   - Engine — a write-ahead-logging transaction engine (the client
//     side recovery manager) that runs over a replicated log or a
//     local duplexed-disk log.
//   - Availability and capacity models reproducing the paper's
//     analysis (Figure 3.4, Section 4.1).
//
// See examples/ for runnable walkthroughs and DESIGN.md for the map
// from paper sections to packages.
package distlog

import (
	"net/http"

	"distlog/internal/availability"
	"distlog/internal/capacity"
	"distlog/internal/core"
	"distlog/internal/disk"
	"distlog/internal/idgen"
	"distlog/internal/loadassign"
	"distlog/internal/locallog"
	"distlog/internal/nvram"
	"distlog/internal/recman"
	"distlog/internal/record"
	"distlog/internal/retention"
	"distlog/internal/server"
	"distlog/internal/splitlog"
	"distlog/internal/storage"
	"distlog/internal/telemetry"
	"distlog/internal/transport"
	"distlog/internal/workload"
)

// Core vocabulary.
type (
	// LSN is a log sequence number: records in a replicated log are
	// identified by increasing LSNs.
	LSN = record.LSN
	// Epoch numbers distinguish records written in different client
	// crash epochs.
	Epoch = record.Epoch
	// ClientID identifies the single client node owning a replicated
	// log.
	ClientID = record.ClientID
	// Record is a log record with its LSN, epoch, and present flag.
	Record = record.Record
	// Interval is one consecutive sequence of records on a log server.
	Interval = record.Interval
	// StreamDep is one dependency-vector entry on a commit-class
	// record of a multi-stream log: "stream Stream had published
	// through LSN High when this record was appended".
	StreamDep = record.StreamDep
)

// Client side (the paper's primary contribution).
type (
	// Client is a replicated log handle.
	Client = core.ReplicatedLog
	// ClientConfig configures Open.
	ClientConfig = core.Config
	// ClientStats counts client protocol activity.
	ClientStats = core.Stats
	// Cursor streams log records in one direction with pipelined
	// prefetch; see Client.OpenCursor.
	Cursor = core.Cursor
	// Direction selects a cursor's scan direction.
	Direction = core.Direction
	// Stream is one independent logging stream of a multi-stream
	// client; see Client.Stream and ClientConfig.Streams.
	Stream = core.Stream
	// MergedCursor scans all streams of a multi-stream client as one
	// dependency-ordered sequence; see Client.OpenMergedCursor.
	MergedCursor = core.MergedCursor
	// StreamRecord is a MergedCursor record tagged with its stream.
	StreamRecord = core.StreamRecord
)

// Cursor scan directions.
const (
	// Forward scans toward the end of the log.
	Forward = core.Forward
	// Backward scans toward LSN 1.
	Backward = core.Backward
)

// Open dials the configured log servers, runs client initialization
// and crash recovery (Section 3.1.2), and returns a usable replicated
// log.
func Open(cfg ClientConfig) (*Client, error) { return core.Open(cfg) }

// Client-side errors.
var (
	ErrNotPresent  = core.ErrNotPresent
	ErrBeyondEnd   = core.ErrBeyondEnd
	ErrUnavailable = core.ErrUnavailable
	ErrInitQuorum  = core.ErrInitQuorum
	ErrClosed      = core.ErrClosed
)

// Server side.
type (
	// Server is a log server node.
	Server = server.Server
	// ServerConfig configures NewServer.
	ServerConfig = server.Config
	// ServerStats counts server activity.
	ServerStats = server.Stats
	// EpochHost hosts epoch-generator state representatives.
	EpochHost = server.EpochHost
	// MemEpochHost is the in-memory EpochHost implementation.
	MemEpochHost = server.MemEpochHost
)

// NewServer creates a log server; call Start on the result.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// NewMemEpochHost returns an in-memory epoch representative host.
func NewMemEpochHost() *MemEpochHost { return server.NewMemEpochHost() }

// Stores.
type (
	// Store is the log server storage abstraction.
	Store = storage.Store
	// DiskGeometry describes a simulated logging disk.
	DiskGeometry = disk.Geometry
	// Disk is the simulated track-addressed logging disk.
	Disk = disk.Disk
	// NVRAM is the battery-backed staging memory fronting a Disk.
	NVRAM = nvram.NVRAM
)

// NewMemStore returns a volatile in-memory store.
func NewMemStore() Store { return storage.NewMemStore() }

// OpenFileStore opens a durable store on an ordinary file.
func OpenFileStore(path string) (Store, error) { return storage.OpenFileStore(path) }

// NewModelledStore returns a store over a simulated track disk fronted
// by battery-backed NVRAM sized to nvramTracks tracks, along with the
// devices (which survive simulated power failures and can be passed to
// a future NewDiskStoreOver call).
func NewModelledStore(g DiskGeometry, nvramTracks int) (Store, *Disk, *NVRAM, error) {
	d, err := disk.New(g)
	if err != nil {
		return nil, nil, nil, err
	}
	nv := nvram.New(nvramTracks * g.TrackSize)
	s, err := storage.NewDiskStore(d, nv)
	if err != nil {
		return nil, nil, nil, err
	}
	return s, d, nv, nil
}

// NewDiskStoreOver reopens a store over existing devices (a server
// node reboot).
func NewDiskStoreOver(d *Disk, nv *NVRAM) (Store, error) {
	return storage.NewDiskStore(d, nv)
}

// Log space management (Section 5.3).
type (
	// SegStore is the segmented durable store: fixed-size append
	// segments, whole-segment reclamation, archive-tier compaction.
	SegStore = storage.SegStore
	// SegOptions configures OpenSegStore.
	SegOptions = storage.SegOptions
	// ArchiveTier is the write-once cold tier compaction migrates
	// fully-stable segments into.
	ArchiveTier = storage.ArchiveTier
	// StoreUsage reports a store's disk footprint.
	StoreUsage = storage.Usage
	// Archive is the file-backed ArchiveTier implementation (append
	// forest per client over fixed-size rotating volumes).
	Archive = retention.Archive
	// ArchiveOptions configures OpenArchive (volume capacity).
	ArchiveOptions = retention.ArchiveOptions
	// Compactor reclaims segments in the background, paced off the
	// force-latency histogram.
	Compactor = retention.Compactor
	// CompactorConfig configures NewCompactor.
	CompactorConfig = retention.CompactorConfig
)

// OpenSegStore opens (or recovers) a segmented store rooted at dir.
func OpenSegStore(dir string, opts SegOptions) (*SegStore, error) {
	return storage.OpenSegStore(dir, opts)
}

// OpenArchive opens (or recovers) a write-once archive tier at dir.
func OpenArchive(dir string, opts ArchiveOptions) (*Archive, error) {
	return retention.OpenArchive(dir, opts)
}

// NewCompactor starts a background compactor; Stop shuts it down.
func NewCompactor(cfg CompactorConfig) *Compactor { return retention.NewCompactor(cfg) }

// DefaultDiskGeometry returns the slow-disk model used in the paper's
// capacity analysis.
func DefaultDiskGeometry() DiskGeometry { return disk.DefaultGeometry() }

// Transports.
type (
	// Endpoint is a datagram network attachment.
	Endpoint = transport.Endpoint
	// Network is the in-memory fault-injecting network.
	Network = transport.Network
	// Faults configures drop/duplicate/corrupt/delay injection.
	Faults = transport.Faults
	// UDPEndpoint is a datagram endpoint on a real UDP socket.
	UDPEndpoint = transport.UDPEndpoint
	// DualEndpoint binds two independent networks into one endpoint
	// with automatic failover.
	DualEndpoint = transport.DualEndpoint
)

// NewNetwork returns an in-memory network with deterministic faults.
func NewNetwork(seed int64) *Network { return transport.NewNetwork(seed) }

// Observability (metrics + LSN-lifecycle tracing).
type (
	// Telemetry is a per-process registry of metric families and an
	// optional event trace; pass one in ClientConfig/ServerConfig/
	// ClusterOptions to observe the corresponding component.
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time view of every instrument.
	TelemetrySnapshot = telemetry.Snapshot
	// TraceEvent is one LSN-lifecycle occurrence from the event trace.
	TraceEvent = telemetry.Event
)

// NewTelemetry returns an empty telemetry registry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// TelemetryHandler serves a registry over HTTP: /metrics (JSON),
// /debug/telemetry (text), /debug/trace (the recent event timeline).
func TelemetryHandler(r *Telemetry) http.Handler { return telemetry.Handler(r) }

// ListenUDP opens a UDP endpoint ("host:port", ":0" for ephemeral).
func ListenUDP(addr string) (*UDPEndpoint, error) { return transport.ListenUDP(addr) }

// NewDualEndpoint binds interfaces on two independent networks into
// one endpoint — the Section 2 arrangement ("two complete networks,
// including two network interfaces in each processing node"). The
// client fails over between them automatically when one LAN dies.
func NewDualEndpoint(a, b Endpoint) *DualEndpoint {
	return transport.NewDualEndpoint(a, b)
}

// Load-assignment control plane (write-set migration).
type (
	// Rebalancer is the live load-assignment controller; build one
	// with Cluster.NewRebalancer (or assemble Snapshot/Move by hand
	// for a real deployment) and call Step.
	Rebalancer = loadassign.Controller
	// RebalancePolicy decides which clients migrate where.
	RebalancePolicy = loadassign.Policy
	// RendezvousPolicy is the default policy: rendezvous placement,
	// moving only clients whose write set lost a member.
	RendezvousPolicy = loadassign.RendezvousPolicy
	// HeadroomPolicy places displaced clients on the servers with the
	// most reclaimable archive headroom.
	HeadroomPolicy = loadassign.HeadroomPolicy
	// LoadView is one control-plane snapshot of servers and clients.
	LoadView = loadassign.View
	// ServerLoad describes one server in a LoadView.
	ServerLoad = loadassign.ServerLoad
	// ClientLoad describes one client in a LoadView.
	ClientLoad = loadassign.ClientLoad
	// MigrationDecision directs one client to a new write set.
	MigrationDecision = loadassign.Decision
)

// Recovery manager (transaction engine substrate).
type (
	// Engine is a WAL transaction engine over a recovery log.
	Engine = recman.Engine
	// EngineOptions configures OpenEngine.
	EngineOptions = recman.Options
	// Txn is one transaction.
	Txn = recman.Txn
	// RecoveryLog is what the engine needs from a log; *Client and
	// *LocalLog both satisfy it.
	RecoveryLog = recman.Log
	// StableStore models the database's non-volatile page storage.
	StableStore = recman.StableStore
	// SplitCache is the volatile undo-component cache behind
	// EngineOptions.Split (Section 5.2 log record splitting): undo
	// values stay in memory and reach the log only when their page is
	// about to be cleaned.
	SplitCache = splitlog.Cache
	// SplitAppender is what a SplitCache logs spilled undo components
	// through; *Client and *LocalLog both satisfy it.
	SplitAppender = splitlog.Appender
	// SplitStats counts a SplitCache's activity.
	SplitStats = splitlog.Stats
)

// NewSplitCache returns an empty undo cache spilling to log. The
// engine builds its own when EngineOptions.Split is set; a standalone
// cache serves resource managers with their own logging discipline.
func NewSplitCache(log SplitAppender) *SplitCache { return splitlog.New(log) }

// OpenEngine recovers the database state and returns a ready engine.
func OpenEngine(log RecoveryLog, stable *StableStore, opts EngineOptions) (*Engine, error) {
	return recman.Open(log, stable, opts)
}

// NewStableStore returns an empty stable store.
func NewStableStore() *StableStore { return recman.NewStableStore() }

// ApplyET1 runs one ET1 (DebitCredit) transaction on the engine.
func ApplyET1(e *Engine, txn workload.ET1Txn) (int64, error) { return recman.ApplyET1(e, txn) }

// Local duplexed-disk baseline (what the paper replaces).
type LocalLog = locallog.Log

// OpenLocalLog opens a local log with the given number of mirror files
// in dir (1 = single disk, 2 = duplexed).
func OpenLocalLog(dir string, mirrors int) (*LocalLog, error) { return locallog.Open(dir, mirrors) }

// Epoch generator (Appendix I).
type (
	// IDGenerator is a replicated increasing unique identifier
	// generator.
	IDGenerator = idgen.Generator
	// Representative stores one copy of generator state.
	Representative = idgen.Representative
)

// NewIDGenerator returns a generator over the representatives.
func NewIDGenerator(reps ...Representative) (*IDGenerator, error) { return idgen.New(reps...) }

// Analysis models.
type (
	// AvailabilityConfig is an (M, N, p) replicated log configuration.
	AvailabilityConfig = availability.Config
	// AvailabilityPoint is one Figure 3.4 data point.
	AvailabilityPoint = availability.Point
	// CapacityParams configures the Section 4.1 analysis.
	CapacityParams = capacity.Params
	// CapacityReport is its closed-form result.
	CapacityReport = capacity.Report
	// ET1Txn is one generated DebitCredit transaction.
	ET1Txn = workload.ET1Txn
	// ET1Scale sizes the ET1 bank.
	ET1Scale = workload.ET1Scale
	// ET1Generator generates a reproducible ET1 transaction stream.
	ET1Generator = workload.ET1Generator
	// LongTxnGenerator generates the Section 2 workstation workload:
	// long design transactions with savepoints and partial rollbacks.
	LongTxnGenerator = workload.LongTxnGenerator
	// LongTxnOp is one operation of a long design transaction.
	LongTxnOp = workload.LongTxnOp
)

// WriteLogAvailability returns P(WriteLog available) for the config.
func WriteLogAvailability(c AvailabilityConfig) float64 { return availability.WriteLog(c) }

// ClientInitAvailability returns P(client initialization available).
func ClientInitAvailability(c AvailabilityConfig) float64 { return availability.ClientInit(c) }

// Figure34 computes the paper's Figure 3.4 series.
func Figure34(p float64, maxM int) []AvailabilityPoint { return availability.Figure34(p, maxM) }

// AnalyzeCapacity runs the Section 4.1 closed-form analysis.
func AnalyzeCapacity(p CapacityParams) CapacityReport { return capacity.Analyze(p) }

// PaperCapacityParams returns the paper's 500 TPS target configuration.
func PaperCapacityParams() CapacityParams { return capacity.PaperParams() }

// NewET1 returns a reproducible ET1 transaction generator.
func NewET1(scale ET1Scale, seed int64) *ET1Generator { return workload.NewET1(scale, seed) }

// DefaultET1Scale returns a laptop-sized ET1 bank.
func DefaultET1Scale() ET1Scale { return workload.DefaultScale() }

// NewLongTxn returns a reproducible long-transaction generator over
// keyspace keys.
func NewLongTxn(keys int, seed int64) *LongTxnGenerator { return workload.NewLongTxn(keys, seed) }
