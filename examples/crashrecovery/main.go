// Crashrecovery walks through Figures 3.1, 3.2 and 3.3 of the paper:
// it seeds three log servers with the exact states of Figure 3.1/3.2
// (including the partially written record 10 on server 3), then runs
// client initialization with server 3 down and prints the resulting
// server states, which match Figure 3.3.
//
//	go run ./examples/crashrecovery
package main

import (
	"errors"
	"fmt"
	"log"

	"distlog"
)

func main() {
	net := distlog.NewNetwork(1)
	names := []string{"server-1", "server-2", "server-3"}
	stores := map[string]distlog.Store{}
	epochs := map[string]*distlog.MemEpochHost{}
	servers := map[string]*distlog.Server{}
	start := func(name string) {
		srv := distlog.NewServer(distlog.ServerConfig{
			Name: name, Store: stores[name], Endpoint: net.Endpoint(name), Epochs: epochs[name],
		})
		srv.Start()
		servers[name] = srv
	}
	for _, n := range names {
		stores[n] = distlog.NewMemStore()
		epochs[n] = distlog.NewMemEpochHost()
	}

	// Seed the Figure 3.2 state: epochs 1 and 3, record 4 not present,
	// record 10 partially written (server 3 only).
	pr := func(lsn distlog.LSN, e distlog.Epoch) distlog.Record {
		return distlog.Record{LSN: lsn, Epoch: e, Present: true, Data: []byte(fmt.Sprintf("data<%d,%d>", lsn, e))}
	}
	np := func(lsn distlog.LSN, e distlog.Epoch) distlog.Record {
		return distlog.Record{LSN: lsn, Epoch: e, Present: false}
	}
	seed := func(name string, recs ...distlog.Record) {
		for _, r := range recs {
			if err := stores[name].Append(1, r); err != nil {
				log.Fatalf("seeding %s: %v", name, err)
			}
		}
	}
	seed("server-1", pr(1, 1), pr(2, 1), pr(3, 1), pr(3, 3), np(4, 3), pr(5, 3), pr(6, 3), pr(7, 3), pr(8, 3), pr(9, 3))
	seed("server-2", pr(1, 1), pr(2, 1), pr(3, 1), pr(6, 3), pr(7, 3))
	seed("server-3", pr(3, 3), np(4, 3), pr(5, 3), pr(8, 3), pr(9, 3), pr(10, 3))
	// The epoch generator has issued up to 3.
	for _, n := range names {
		if err := epochs[n].Rep(1).WriteState(3); err != nil {
			log.Fatal(err)
		}
	}

	dump := func(title string) {
		fmt.Println(title)
		for _, n := range names {
			fmt.Printf("  %s: %v\n", n, stores[n].Intervals(1))
		}
		fmt.Println()
	}
	dump("Figure 3.2 — three log servers with record 10 partially written:")

	// Server 3 is unavailable during the client's restart (only
	// servers 1 and 2 start), exactly the paper's Figure 3.3 scenario.
	start("server-1")
	start("server-2")
	defer func() {
		for _, srv := range servers {
			srv.Stop()
		}
	}()

	l, err := distlog.Open(distlog.ClientConfig{
		ClientID: 1,
		Servers:  names,
		N:        2,
		Delta:    1, // the paper's walkthrough assumes one doubtful record
		Endpoint: net.Endpoint("client"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Printf("client initialized with servers 1 and 2: new epoch %d, end of log %d\n\n", l.Epoch(), l.EndOfLog())

	dump("Figure 3.3 — after the crash recovery procedure:")

	// The replicated log's contents are now settled; a forward cursor
	// streams them in packet-sized batches.
	cur, err := l.OpenCursor(1, distlog.Forward)
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()
	for {
		rec, err := cur.Next()
		if errors.Is(err, distlog.ErrBeyondEnd) {
			break
		}
		if err != nil {
			log.Fatalf("cursor: %v", err)
		}
		if rec.Present {
			fmt.Printf("  record %d  = %q\n", rec.LSN, rec.Data)
		} else {
			fmt.Printf("  record %d  = not present\n", rec.LSN)
		}
	}
	fmt.Println("\nrecord 10 (server 3's partial write) is gone and can never resurface:")
	fmt.Println("the epoch-4 not-present marker on servers 1 and 2 outvotes it in any")
	fmt.Println("future merge of interval lists, even once server 3 returns.")
}
