// Et1bank runs a bank under the ET1 (DebitCredit) workload with its
// recovery log replicated on three log servers and spread over four
// parallel logging streams, then crashes the bank mid-flight and
// recovers it — a dependency-ordered merged replay across the streams
// — verifying that every committed transaction survived and the money
// balances.
//
//	go run ./examples/et1bank
package main

import (
	"errors"
	"fmt"
	"log"

	"distlog"
)

func main() {
	// Streams: 4 gives every client of this cluster K=4 independent
	// logging streams: four LSN sequences, four send windows, four
	// force pipelines against the same three servers.
	cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3, Streams: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// The bank's stable storage (its data "disk") survives crashes.
	stable := distlog.NewStableStore()
	scale := distlog.ET1Scale{Branches: 5, Tellers: 50, Accounts: 500}

	// First life: open the replicated log, run transactions. The
	// engine detects the K streams and logs each transaction on stream
	// (id mod K); commit records carry a dependency vector over the
	// sibling streams.
	l, err := cluster.OpenClient(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := distlog.OpenEngine(l, stable, distlog.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	gen := distlog.NewET1(scale, 42)
	const committed = 200
	for i := 0; i < committed; i++ {
		if _, err := distlog.ApplyET1(engine, gen.Next()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("committed %d ET1 transactions (history count %d)\n", committed, engine.Get("history/count"))
	fmt.Printf("engine wrote %d log records in %d bytes across %d streams:\n",
		engine.Stats().LogRecords, engine.Stats().LogBytes, l.Streams())
	for i := 0; i < l.Streams(); i++ {
		fmt.Printf("  stream %d: %d records\n", i, l.Stream(i).EndOfLog())
	}

	// One more transaction starts but the node dies before committing.
	t := engine.Begin()
	if _, err := t.Add("account/7", 1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nan in-flight transaction moves $1,000,000... and the node crashes")
	l.Close() // the crash: unforced log records are lost with the node

	// Second life: reopen the replicated log (running crash recovery
	// on all four streams) and then the engine, whose transaction
	// recovery scans the streams in parallel and replays them as one
	// dependency-ordered merge.
	l2, err := cluster.OpenClient(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer l2.Close()
	engine2, err := distlog.OpenEngine(l2, stable, distlog.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovered: %d winner transactions replayed, %d losers rolled back\n",
		engine2.Stats().RecoveredWinners, engine2.Stats().RecoveredLosers)

	// The same merged view the recovery manager replayed is available
	// to any reader: one dependency-ordered sequence over all streams.
	mc, err := l2.OpenMergedCursor()
	if err != nil {
		log.Fatal(err)
	}
	merged := 0
	for {
		if _, err := mc.Next(); err != nil {
			if errors.Is(err, distlog.ErrBeyondEnd) {
				break
			}
			log.Fatal(err)
		}
		merged++
	}
	mc.Close()
	fmt.Printf("merged cursor: %d records in dependency order\n", merged)

	if got := engine2.Get("history/count"); got != committed {
		log.Fatalf("history count %d after recovery, want %d", got, committed)
	}
	if got := engine2.Get("account/7"); got >= 1_000_000 {
		log.Fatalf("the uncommitted million leaked into account/7: %d", got)
	}

	// The conservation law: branches, tellers and accounts moved in
	// lockstep.
	var branches, tellers, accounts int64
	for b := 0; b < scale.Branches; b++ {
		branches += engine2.Get(fmt.Sprintf("branch/%d", b))
	}
	for tl := 0; tl < scale.Tellers; tl++ {
		tellers += engine2.Get(fmt.Sprintf("teller/%d", tl))
	}
	for a := 0; a < scale.Accounts; a++ {
		accounts += engine2.Get(fmt.Sprintf("account/%d", a))
	}
	fmt.Printf("conservation: branches %+d, tellers %+d, accounts %+d\n", branches, tellers, accounts)
	if branches != tellers || tellers != accounts {
		log.Fatal("the money does not balance!")
	}
	fmt.Println("\nall committed transactions survived; the in-flight one vanished atomically")
}
