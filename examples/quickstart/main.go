// Quickstart: start three in-process log servers, open a dual-copy
// replicated log, write and force records, read them back, then
// restart the client and watch crash recovery run.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"distlog"
)

func main() {
	// Three log servers (M = 3) on an in-memory network.
	cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A replicated log with each record on two servers (N = 2).
	l, err := cluster.OpenClient(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened replicated log: epoch %d, write set %v\n", l.Epoch(), l.WriteSet())

	// WriteLog buffers and groups records; Force makes them stable on
	// both servers. ForceLog does both for a single record.
	var lsns []distlog.LSN
	for i := 1; i <= 5; i++ {
		lsn, err := l.WriteLog([]byte(fmt.Sprintf("record number %d", i)))
		if err != nil {
			log.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Force(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forced records %d..%d\n", lsns[0], lsns[len(lsns)-1])

	for _, lsn := range lsns {
		data, err := l.ReadLog(lsn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  LSN %d = %q\n", lsn, data)
	}

	// A record written but never forced is not yet stable...
	unforced, err := l.WriteLog([]byte("i was never forced"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote (unforced) LSN %d, then the client crashes...\n", unforced)

	// ...and the client "crashes". Reopening runs the Section 3.1.2
	// initialization: interval lists are merged from at least M-N+1
	// servers, a fresh epoch is drawn, and the doubtful tail is
	// rewritten so every record's fate is settled forever.
	l.Close()
	l2, err := cluster.OpenClient(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer l2.Close()
	fmt.Printf("recovered: epoch %d, end of log %d\n", l2.Epoch(), l2.EndOfLog())

	for _, lsn := range lsns {
		data, err := l2.ReadLog(lsn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  LSN %d survived: %q\n", lsn, data)
	}
	if _, err := l2.ReadLog(unforced); errors.Is(err, distlog.ErrNotPresent) {
		fmt.Printf("  LSN %d is consistently gone (not present), as a crashed write must be\n", unforced)
	} else {
		fmt.Printf("  LSN %d unexpectedly: %v\n", unforced, err)
	}
}
