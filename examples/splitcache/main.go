// Splitcache demonstrates the Section 5.2 optimization: log records
// are split into redo and undo components; redo components stream to
// the log servers while undo components stay cached at the client.
// Transactions that commit never log their undo data (log volume
// saved), and transactions that abort roll back from the local cache
// without a single log-server read.
//
//	go run ./examples/splitcache
package main

import (
	"fmt"
	"log"

	"distlog"
)

func run(split bool, abortEvery int) (logBytes uint64, abortReads uint64, cacheAborts uint64, saved uint64) {
	cluster, err := distlog.NewCluster(distlog.ClusterOptions{Servers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	l, err := cluster.OpenClient(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	engine, err := distlog.OpenEngine(l, distlog.NewStableStore(), distlog.EngineOptions{Split: split})
	if err != nil {
		log.Fatal(err)
	}
	gen := distlog.NewET1(distlog.ET1Scale{Branches: 3, Tellers: 30, Accounts: 300}, 7)
	for i := 0; i < 150; i++ {
		txn := gen.Next()
		if abortEvery > 0 && i%abortEvery == abortEvery-1 {
			// Run the updates by hand and abort.
			t := engine.Begin()
			for _, key := range txn.Keys() {
				if _, err := t.Add(key, txn.Delta); err != nil {
					log.Fatal(err)
				}
			}
			if err := t.Abort(); err != nil {
				log.Fatal(err)
			}
			continue
		}
		if _, err := distlog.ApplyET1(engine, txn); err != nil {
			log.Fatal(err)
		}
	}
	s := engine.Stats()
	ss := engine.SplitStats()
	return s.LogBytes, s.AbortLogReads, s.AbortsFromCache, ss.UndoBytesSaved
}

func main() {
	const abortEvery = 10

	fmt.Println("the same ET1-with-aborts workload, both ways:")
	combBytes, combReads, _, _ := run(false, abortEvery)
	fmt.Printf("\ncombined records:  %7d log bytes, %3d undo values read back from log servers on aborts\n",
		combBytes, combReads)

	splitBytes, _, cacheAborts, saved := run(true, abortEvery)
	fmt.Printf("split + cached:    %7d log bytes, %3d aborts served entirely from the client cache\n",
		splitBytes, cacheAborts)

	fmt.Printf("\nlog volume saved by splitting: %d bytes (%.1f%%); undo bytes never logged: %d\n",
		combBytes-splitBytes, 100*float64(combBytes-splitBytes)/float64(combBytes), saved)
	fmt.Println("\n(The paper, Section 5.2: splitting helps most for transactions that")
	fmt.Println("commit before their pages are cleaned; cached undo components also")
	fmt.Println("speed up aborts and relieve disk arm contention on the log servers.)")
}
