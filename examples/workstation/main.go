// Workstation models the paper's Section 2 environment: a personal
// workstation running long design-database transactions with frequent
// savepoints, logging to shared log servers over two redundant
// networks. Mid-transaction, the primary LAN fails — and the work
// continues over the second network without the application noticing.
//
//	go run ./examples/workstation
package main

import (
	"fmt"
	"log"

	"distlog"
)

func main() {
	// Two complete networks; every node has an interface on each.
	net1 := distlog.NewNetwork(1)
	net2 := distlog.NewNetwork(2)
	names := []string{"logsrv-1", "logsrv-2", "logsrv-3"}
	for _, name := range names {
		srv := distlog.NewServer(distlog.ServerConfig{
			Name:     name,
			Store:    distlog.NewMemStore(),
			Endpoint: distlog.NewDualEndpoint(net1.Endpoint(name), net2.Endpoint(name)),
			Epochs:   distlog.NewMemEpochHost(),
		})
		srv.Start()
		defer srv.Stop()
	}

	dual := distlog.NewDualEndpoint(net1.Endpoint("workstation"), net2.Endpoint("workstation"))
	l, err := distlog.Open(distlog.ClientConfig{
		ClientID: 7,
		Servers:  names,
		N:        2,
		Endpoint: dual,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Printf("workstation logging to %v over two networks\n", l.WriteSet())

	// The design database, with record splitting on: undo components
	// stay cached locally, so the frequent partial rollbacks of a
	// designer's session never touch the log servers.
	engine, err := distlog.OpenEngine(l, distlog.NewStableStore(), distlog.EngineOptions{Split: true})
	if err != nil {
		log.Fatal(err)
	}

	gen := distlog.NewLongTxn(200, 11)
	for session := 1; session <= 3; session++ {
		txn := engine.Begin()
		var savepoints []int
		updates, rollbacks := 0, 0
		for _, op := range gen.Next(150) {
			switch op.Kind {
			case "update":
				if _, err := txn.Add(op.Key, op.Delta); err != nil {
					log.Fatal(err)
				}
				updates++
			case "savepoint":
				savepoints = append(savepoints, txn.Savepoint())
			case "rollback":
				if err := txn.RollbackTo(savepoints[op.Target]); err != nil {
					log.Fatal(err)
				}
				savepoints = savepoints[:op.Target]
				rollbacks++
			}
		}
		if session == 2 {
			// The primary LAN dies mid-session.
			fmt.Println("\n*** network 1 fails during design session 2 ***")
			net1.SetFaults(distlog.Faults{DropProb: 1})
		}
		if err := txn.Commit(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("design session %d committed: %d updates, %d partial rollbacks (network %d)\n",
			session, updates, rollbacks, dual.Preferred()+1)
	}

	stats := engine.Stats()
	split := engine.SplitStats()
	fmt.Printf("\nlogged %d records (%d bytes); %d undo components never left the workstation (%d bytes saved)\n",
		stats.LogRecords, stats.LogBytes, split.UndoDropped, split.UndoBytesSaved)
}
