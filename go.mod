module distlog

go 1.22
