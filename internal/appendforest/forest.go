// Package appendforest implements the append-forest of Section 4.3 of
// "Distributed Logging for Transaction Processing" (SIGMOD 1987): an
// index structure that supports constant-time appends on append-only
// storage and logarithmic searches, provided keys are appended in
// strictly increasing order.
//
// A complete append forest (2^n - 1 nodes) is a binary search tree in
// which (1) the key of the root of any subtree is greater than all its
// descendants' keys, and (2) all keys in the right subtree of any node
// are greater than all keys in the left subtree. An incomplete append
// forest is a forest of complete trees of height <= n in which only
// the two smallest trees may share a height. Every tree root carries a
// "forest pointer" linking it to the root of the next tree to its
// left, so all nodes remain reachable from the most recently appended
// node (the forest root). Searches follow the chain of forest pointers
// until a tree that could contain the key is found and then perform
// ordinary binary-tree search, giving O(log n) pointer traversals.
//
// Nodes are never modified after being written, so the structure can
// live on write-once (optical) storage: an append writes exactly one
// new node whose child and forest pointers refer to already-written
// nodes.
package appendforest

import (
	"errors"
	"fmt"
)

// nilPos marks an absent child or forest pointer.
const nilPos = int32(-1)

// node is one append-forest node. In the intended application each
// page-sized node indexes a range of log sequence numbers; the generic
// Forest stores one payload per key.
type node[P any] struct {
	key     uint64 // also the maximum key of the subtree rooted here
	min     uint64 // minimum key of the subtree rooted here
	payload P
	left    int32
	right   int32
	forest  int32
	height  uint8
}

// Forest is an append-only search structure over strictly increasing
// uint64 keys. The zero value is an empty forest ready for use.
type Forest[P any] struct {
	nodes []node[P]
	// roots tracks the root position of every tree in the forest,
	// leftmost first. It is derivable from the forest pointers and is
	// kept only to make appends O(1) without re-deriving heights.
	roots []int32
}

// ErrKeyOrder is returned when a key is appended out of order.
var ErrKeyOrder = errors.New("appendforest: keys must be strictly increasing")

// Len returns the number of nodes (appended keys).
func (f *Forest[P]) Len() int { return len(f.nodes) }

// NumTrees returns the number of complete trees currently in the
// forest. A forest with n nodes contains at most ceil(log2(n+1))+1
// trees.
func (f *Forest[P]) NumTrees() int { return len(f.roots) }

// Max returns the largest key appended, and false when empty.
func (f *Forest[P]) Max() (uint64, bool) {
	if len(f.nodes) == 0 {
		return 0, false
	}
	return f.nodes[len(f.nodes)-1].key, true
}

// Min returns the smallest key appended, and false when empty.
func (f *Forest[P]) Min() (uint64, bool) {
	if len(f.nodes) == 0 {
		return 0, false
	}
	return f.nodes[f.roots[0]].min, true
}

// Append adds key with its payload. Keys must be strictly increasing;
// otherwise ErrKeyOrder is returned. Append performs O(1) work: it
// writes exactly one node.
func (f *Forest[P]) Append(key uint64, payload P) error {
	if n := len(f.nodes); n > 0 && key <= f.nodes[n-1].key {
		return fmt.Errorf("%w: %d after %d", ErrKeyOrder, key, f.nodes[n-1].key)
	}
	pos := int32(len(f.nodes))
	nd := node[P]{key: key, min: key, payload: payload, left: nilPos, right: nilPos, forest: nilPos}

	nr := len(f.roots)
	if nr >= 2 && f.nodes[f.roots[nr-1]].height == f.nodes[f.roots[nr-2]].height {
		// The two smallest trees share a height: the new node becomes
		// the root of a tree one taller, with them as its sons.
		nd.left = f.roots[nr-2]
		nd.right = f.roots[nr-1]
		nd.min = f.nodes[nd.left].min
		nd.height = f.nodes[nd.right].height + 1
		if nr >= 3 {
			nd.forest = f.roots[nr-3]
		}
		f.roots = f.roots[:nr-2]
	} else if nr >= 1 {
		// New singleton tree linked to the tree on its left.
		nd.forest = f.roots[nr-1]
	}
	f.nodes = append(f.nodes, nd)
	f.roots = append(f.roots, pos)
	return nil
}

// Lookup returns the payload stored for key. It follows forest
// pointers from the most recent node until it reaches the tree that
// may contain the key, then binary-searches that tree.
func (f *Forest[P]) Lookup(key uint64) (P, bool) {
	var zero P
	if len(f.nodes) == 0 {
		return zero, false
	}
	cur := int32(len(f.nodes) - 1) // forest root: most recent append
	if key > f.nodes[cur].key {
		return zero, false
	}
	// Each tree root holds the maximum key of its tree, so the target
	// tree is the leftmost one whose root key is >= key.
	for f.nodes[cur].forest != nilPos && f.nodes[f.nodes[cur].forest].key >= key {
		cur = f.nodes[cur].forest
	}
	// Binary-tree search. Property 1 makes every subtree's root its own
	// maximum, so comparing against the left child's key decides the
	// branch.
	for cur != nilPos {
		n := &f.nodes[cur]
		switch {
		case key == n.key:
			return n.payload, true
		case key > n.key || key < n.min:
			return zero, false
		case key <= f.nodes[n.left].key:
			cur = n.left
		default:
			cur = n.right
		}
	}
	return zero, false
}

// Floor returns the largest appended key <= key with its payload, and
// false when all keys exceed key. It is the primary operation when
// each node indexes a range of LSNs keyed by the range's start.
func (f *Forest[P]) Floor(key uint64) (uint64, P, bool) {
	var zero P
	if len(f.nodes) == 0 {
		return 0, zero, false
	}
	// Rightmost tree whose minimum is <= key contains the floor.
	cur := int32(len(f.nodes) - 1)
	for cur != nilPos && f.nodes[cur].min > key {
		cur = f.nodes[cur].forest
	}
	if cur == nilPos {
		return 0, zero, false
	}
	for {
		n := &f.nodes[cur]
		if n.key <= key {
			// Root is the subtree maximum, hence the floor here.
			return n.key, n.payload, true
		}
		// n.min <= key < n.key, so cur is internal and the floor is in
		// a child. Keys in the right subtree all exceed keys in the
		// left, so prefer the right subtree when it reaches low enough.
		if f.nodes[n.right].min <= key {
			cur = n.right
		} else {
			cur = n.left
		}
	}
}

// Ceiling returns the smallest appended key >= key with its payload,
// and false when all keys are below key.
func (f *Forest[P]) Ceiling(key uint64) (uint64, P, bool) {
	var zero P
	if len(f.nodes) == 0 {
		return 0, zero, false
	}
	cur := int32(len(f.nodes) - 1)
	if key > f.nodes[cur].key {
		return 0, zero, false
	}
	// Leftmost tree whose maximum (root key) is >= key contains the
	// ceiling: trees to its left are entirely smaller.
	for f.nodes[cur].forest != nilPos && f.nodes[f.nodes[cur].forest].key >= key {
		cur = f.nodes[cur].forest
	}
	for {
		n := &f.nodes[cur]
		if n.min >= key {
			// The whole subtree qualifies; its minimum is the answer.
			for f.nodes[cur].left != nilPos {
				cur = f.nodes[cur].left
			}
			m := &f.nodes[cur]
			return m.key, m.payload, true
		}
		// n.min < key <= n.key, so cur is internal.
		if f.nodes[n.left].key >= key {
			cur = n.left
		} else if f.nodes[n.right].key >= key {
			cur = n.right
		} else {
			// Only the root itself qualifies.
			return n.key, n.payload, true
		}
	}
}

// Ascend calls fn for every (key, payload) in ascending key order,
// stopping early if fn returns false.
func (f *Forest[P]) Ascend(fn func(key uint64, payload P) bool) {
	if len(f.nodes) == 0 {
		return
	}
	for _, r := range f.roots {
		if !f.ascendTree(r, fn) {
			return
		}
	}
}

func (f *Forest[P]) ascendTree(pos int32, fn func(uint64, P) bool) bool {
	// Order within a tree: left subtree, right subtree, then the root
	// (the root is the subtree's maximum key).
	if pos == nilPos {
		return true
	}
	n := &f.nodes[pos]
	if n.left != nilPos {
		if !f.ascendTree(n.left, fn) {
			return false
		}
		if !f.ascendTree(n.right, fn) {
			return false
		}
	}
	return fn(n.key, n.payload)
}

// CheckInvariants validates the structural invariants from the paper
// and returns a descriptive error when one is violated. Intended for
// tests.
func (f *Forest[P]) CheckInvariants() error {
	if len(f.nodes) == 0 {
		return nil
	}
	// 1. The forest-pointer chain from the global root reaches every
	// tree; root keys increase left-to-right; heights do not increase
	// left-to-right and only the two smallest (rightmost) trees may
	// share a height.
	var chain []int32
	for cur := int32(len(f.nodes) - 1); cur != nilPos; cur = f.nodes[cur].forest {
		chain = append(chain, cur) // rightmost first
	}
	if len(chain) != len(f.roots) {
		return fmt.Errorf("appendforest: forest chain has %d trees, roots slice has %d", len(chain), len(f.roots))
	}
	for i := range chain {
		if chain[i] != f.roots[len(f.roots)-1-i] {
			return fmt.Errorf("appendforest: forest chain disagrees with roots slice")
		}
	}
	for i := 0; i+1 < len(chain); i++ {
		right, left := chain[i], chain[i+1]
		if f.nodes[left].key >= f.nodes[right].key {
			return fmt.Errorf("appendforest: tree root keys not increasing left-to-right")
		}
		hr, hl := f.nodes[right].height, f.nodes[left].height
		if hl < hr {
			return fmt.Errorf("appendforest: taller tree to the right of a shorter one")
		}
		if hl == hr && i != 0 {
			return fmt.Errorf("appendforest: equal-height trees that are not the two smallest")
		}
	}
	// 2. Each tree is complete and satisfies the two search properties.
	total := 0
	for _, r := range f.roots {
		n, err := f.checkTree(r)
		if err != nil {
			return err
		}
		total += n
	}
	if total != len(f.nodes) {
		return fmt.Errorf("appendforest: %d nodes reachable, %d stored", total, len(f.nodes))
	}
	return nil
}

func (f *Forest[P]) checkTree(pos int32) (int, error) {
	n := &f.nodes[pos]
	if (n.left == nilPos) != (n.right == nilPos) {
		return 0, fmt.Errorf("appendforest: node %d has exactly one child", pos)
	}
	if n.left == nilPos {
		if n.height != 0 {
			return 0, fmt.Errorf("appendforest: leaf with height %d", n.height)
		}
		if n.min != n.key {
			return 0, fmt.Errorf("appendforest: leaf min %d != key %d", n.min, n.key)
		}
		return 1, nil
	}
	l, r := &f.nodes[n.left], &f.nodes[n.right]
	if l.height != n.height-1 || r.height != n.height-1 {
		return 0, fmt.Errorf("appendforest: node %d children heights %d/%d, want %d", pos, l.height, r.height, n.height-1)
	}
	// Property 1: root greater than all descendants (children are their
	// own subtree maxima, so comparing them suffices). Property 2: all
	// right-subtree keys greater than all left-subtree keys.
	if l.key >= n.key || r.key >= n.key {
		return 0, fmt.Errorf("appendforest: node %d key %d not greater than children %d/%d", pos, n.key, l.key, r.key)
	}
	if l.key >= r.min {
		return 0, fmt.Errorf("appendforest: left subtree max %d >= right subtree min %d", l.key, r.min)
	}
	if n.min != l.min {
		return 0, fmt.Errorf("appendforest: node %d min %d != left subtree min %d", pos, n.min, l.min)
	}
	nl, err := f.checkTree(n.left)
	if err != nil {
		return 0, err
	}
	nr, err := f.checkTree(n.right)
	if err != nil {
		return 0, err
	}
	if nl != nr {
		return 0, fmt.Errorf("appendforest: node %d subtree sizes differ: %d vs %d", pos, nl, nr)
	}
	return 1 + nl + nr, nil
}

// TreeHeights returns the heights of the forest's trees left-to-right,
// for tests that verify the Figure 4-3 construction.
func (f *Forest[P]) TreeHeights() []int {
	hs := make([]int, 0, len(f.roots))
	for _, r := range f.roots {
		hs = append(hs, int(f.nodes[r].height))
	}
	return hs
}
