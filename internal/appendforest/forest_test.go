package appendforest

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func mustAppend(t *testing.T, f *Forest[int], keys ...uint64) {
	t.Helper()
	for _, k := range keys {
		if err := f.Append(k, int(k)*10); err != nil {
			t.Fatalf("Append(%d): %v", k, err)
		}
	}
}

func TestEmptyForest(t *testing.T) {
	var f Forest[int]
	if f.Len() != 0 || f.NumTrees() != 0 {
		t.Fatal("zero forest not empty")
	}
	if _, ok := f.Max(); ok {
		t.Error("Max on empty returned ok")
	}
	if _, ok := f.Lookup(1); ok {
		t.Error("Lookup on empty returned ok")
	}
	if _, _, ok := f.Floor(1); ok {
		t.Error("Floor on empty returned ok")
	}
	if _, _, ok := f.Ceiling(1); ok {
		t.Error("Ceiling on empty returned ok")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestFigure43ElevenNodes reconstructs the paper's Figure 4-3 example:
// an eleven-node append forest consists of a 7-node tree (height 2,
// rooted at key 7), a 3-node tree (height 1, rooted at key 10), and a
// singleton (key 11). The paper then narrates appends of keys 12, 13,
// and 14; we check the forest shapes after each.
func TestFigure43ElevenNodes(t *testing.T) {
	var f Forest[int]
	for k := uint64(1); k <= 11; k++ {
		mustAppend(t, &f, k)
	}
	if got, want := f.TreeHeights(), []int{2, 1, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("11 nodes: tree heights %v, want %v", got, want)
	}
	// "A new root with key 12 would be appended with a forest pointer
	// linking it to the node with key 11."
	mustAppend(t, &f, 12)
	if got, want := f.TreeHeights(), []int{2, 1, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("12 nodes: tree heights %v, want %v", got, want)
	}
	// "An additional node with key 13 would have height 1, the nodes
	// with keys 11 and 12 as its left and right sons, and a forest
	// pointer linking it to the tree rooted at the node with key 10."
	mustAppend(t, &f, 13)
	if got, want := f.TreeHeights(), []int{2, 1, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("13 nodes: tree heights %v, want %v", got, want)
	}
	n13 := f.nodes[len(f.nodes)-1]
	if f.nodes[n13.left].key != 11 || f.nodes[n13.right].key != 12 {
		t.Errorf("node 13 sons: %d/%d, want 11/12", f.nodes[n13.left].key, f.nodes[n13.right].key)
	}
	if f.nodes[n13.forest].key != 10 {
		t.Errorf("node 13 forest pointer to key %d, want 10", f.nodes[n13.forest].key)
	}
	// "Another node with key 14 could then be added with the nodes with
	// keys 10 and 13 as sons, and a forest pointer pointing to the node
	// with key 7."
	mustAppend(t, &f, 14)
	if got, want := f.TreeHeights(), []int{2, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("14 nodes: tree heights %v, want %v", got, want)
	}
	n14 := f.nodes[len(f.nodes)-1]
	if f.nodes[n14.left].key != 10 || f.nodes[n14.right].key != 13 {
		t.Errorf("node 14 sons: %d/%d, want 10/13", f.nodes[n14.left].key, f.nodes[n14.right].key)
	}
	if f.nodes[n14.forest].key != 7 {
		t.Errorf("node 14 forest pointer to key %d, want 7", f.nodes[n14.forest].key)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteForestIsSingleTree(t *testing.T) {
	// 2^n - 1 consecutive appends must yield exactly one complete tree.
	for _, n := range []int{1, 3, 7, 15, 31, 63, 127} {
		var f Forest[int]
		for k := 1; k <= n; k++ {
			mustAppend(t, &f, uint64(k))
		}
		if f.NumTrees() != 1 {
			t.Errorf("n=%d: %d trees, want 1", n, f.NumTrees())
		}
		wantH := int(math.Log2(float64(n+1))) - 1
		if got := f.TreeHeights()[0]; got != wantH {
			t.Errorf("n=%d: height %d, want %d", n, got, wantH)
		}
	}
}

func TestAppendRejectsNonIncreasing(t *testing.T) {
	var f Forest[int]
	mustAppend(t, &f, 5)
	if err := f.Append(5, 0); err == nil {
		t.Error("duplicate key accepted")
	}
	if err := f.Append(4, 0); err == nil {
		t.Error("smaller key accepted")
	}
	mustAppend(t, &f, 6) // still usable after rejected appends
}

func TestLookupAllKeys(t *testing.T) {
	var f Forest[int]
	const n = 1000
	for k := uint64(1); k <= n; k++ {
		mustAppend(t, &f, k*3) // sparse keys
	}
	for k := uint64(1); k <= n; k++ {
		v, ok := f.Lookup(k * 3)
		if !ok || v != int(k*3)*10 {
			t.Fatalf("Lookup(%d) = %d,%v", k*3, v, ok)
		}
		if _, ok := f.Lookup(k*3 - 1); ok {
			t.Fatalf("Lookup(%d) found a missing key", k*3-1)
		}
	}
	if _, ok := f.Lookup(n*3 + 1); ok {
		t.Error("Lookup beyond max found a key")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAtEverySize(t *testing.T) {
	var f Forest[int]
	for k := uint64(1); k <= 300; k++ {
		mustAppend(t, &f, k)
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("after %d appends: %v", k, err)
		}
	}
}

func TestNumTreesLogarithmic(t *testing.T) {
	var f Forest[int]
	for k := uint64(1); k <= 4096; k++ {
		mustAppend(t, &f, k)
		limit := int(math.Ceil(math.Log2(float64(k+1)))) + 1
		if got := f.NumTrees(); got > limit {
			t.Fatalf("n=%d: %d trees exceeds log bound %d", k, got, limit)
		}
	}
}

func TestFloorCeilingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var f Forest[int]
	var keys []uint64
	next := uint64(0)
	for i := 0; i < 500; i++ {
		next += 1 + uint64(rng.Intn(5))
		keys = append(keys, next)
		if err := f.Append(next, int(next)); err != nil {
			t.Fatal(err)
		}
	}
	for probe := uint64(0); probe <= next+3; probe++ {
		var wantFloor, wantCeil uint64
		haveFloor, haveCeil := false, false
		for _, k := range keys {
			if k <= probe && (!haveFloor || k > wantFloor) {
				wantFloor, haveFloor = k, true
			}
			if k >= probe && (!haveCeil || k < wantCeil) {
				wantCeil, haveCeil = k, true
			}
		}
		gotK, gotV, ok := f.Floor(probe)
		if ok != haveFloor || (ok && gotK != wantFloor) {
			t.Fatalf("Floor(%d) = %d,%v want %d,%v", probe, gotK, ok, wantFloor, haveFloor)
		}
		if ok && gotV != int(wantFloor) {
			t.Fatalf("Floor(%d) payload %d, want %d", probe, gotV, wantFloor)
		}
		gotK, gotV, ok = f.Ceiling(probe)
		if ok != haveCeil || (ok && gotK != wantCeil) {
			t.Fatalf("Ceiling(%d) = %d,%v want %d,%v", probe, gotK, ok, wantCeil, haveCeil)
		}
		if ok && gotV != int(wantCeil) {
			t.Fatalf("Ceiling(%d) payload %d, want %d", probe, gotV, wantCeil)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	var f Forest[int]
	var want []uint64
	for k := uint64(2); k <= 200; k += 2 {
		mustAppend(t, &f, k)
		want = append(want, k)
	}
	var got []uint64
	f.Ascend(func(k uint64, v int) bool {
		got = append(got, k)
		if v != int(k)*10 {
			t.Fatalf("payload for %d is %d", k, v)
		}
		return true
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Ascend order %v, want %v", got, want)
	}
	// Early stop.
	got = got[:0]
	f.Ascend(func(k uint64, v int) bool {
		got = append(got, k)
		return len(got) < 5
	})
	if len(got) != 5 || !reflect.DeepEqual(got, want[:5]) {
		t.Fatalf("early-stopped Ascend got %v", got)
	}
}

func TestMinMax(t *testing.T) {
	var f Forest[int]
	mustAppend(t, &f, 10, 20, 30)
	if min, ok := f.Min(); !ok || min != 10 {
		t.Errorf("Min = %d,%v", min, ok)
	}
	if max, ok := f.Max(); !ok || max != 30 {
		t.Errorf("Max = %d,%v", max, ok)
	}
}

func TestSearchCostLogarithmic(t *testing.T) {
	// Count pointer traversals via an instrumented walk and compare to
	// the O(log n) bound the paper claims. Rather than instrumenting
	// Lookup we bound NumTrees + tallest height, which dominates a
	// search's traversals.
	var f Forest[int]
	const n = 1 << 14
	for k := uint64(1); k <= n; k++ {
		mustAppend(t, &f, k)
	}
	maxH := 0
	for _, h := range f.TreeHeights() {
		if h > maxH {
			maxH = h
		}
	}
	bound := f.NumTrees() + maxH
	if bound > 2*int(math.Log2(n))+2 {
		t.Fatalf("search cost bound %d exceeds 2*log2(n)+2 = %d", bound, 2*int(math.Log2(n))+2)
	}
}

func TestRangeForestBasic(t *testing.T) {
	rf := NewRangeForest(4)
	for lsn := uint64(1); lsn <= 100; lsn++ {
		if err := rf.Append(lsn, int64(lsn)*100); err != nil {
			t.Fatal(err)
		}
	}
	if rf.Len() != 100 {
		t.Fatalf("Len = %d", rf.Len())
	}
	for lsn := uint64(1); lsn <= 100; lsn++ {
		ptr, ok := rf.Lookup(lsn)
		if !ok || ptr != int64(lsn)*100 {
			t.Fatalf("Lookup(%d) = %d,%v", lsn, ptr, ok)
		}
	}
	if _, ok := rf.Lookup(0); ok {
		t.Error("Lookup(0) found")
	}
	if _, ok := rf.Lookup(101); ok {
		t.Error("Lookup(101) found")
	}
}

func TestRangeForestGaps(t *testing.T) {
	rf := NewRangeForest(8)
	// Two dense runs with a gap, as when a client switches servers.
	for lsn := uint64(1); lsn <= 10; lsn++ {
		if err := rf.Append(lsn, int64(lsn)); err != nil {
			t.Fatal(err)
		}
	}
	for lsn := uint64(50); lsn <= 60; lsn++ {
		if err := rf.Append(lsn, int64(lsn)); err != nil {
			t.Fatal(err)
		}
	}
	for lsn := uint64(1); lsn <= 10; lsn++ {
		if ptr, ok := rf.Lookup(lsn); !ok || ptr != int64(lsn) {
			t.Fatalf("Lookup(%d) = %d,%v", lsn, ptr, ok)
		}
	}
	for lsn := uint64(11); lsn < 50; lsn++ {
		if _, ok := rf.Lookup(lsn); ok {
			t.Fatalf("Lookup(%d) found inside gap", lsn)
		}
	}
	for lsn := uint64(50); lsn <= 60; lsn++ {
		if ptr, ok := rf.Lookup(lsn); !ok || ptr != int64(lsn) {
			t.Fatalf("Lookup(%d) = %d,%v", lsn, ptr, ok)
		}
	}
}

func TestRangeForestRejectsRegression(t *testing.T) {
	rf := NewRangeForest(4)
	if err := rf.Append(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := rf.Append(5, 0); err == nil {
		t.Error("duplicate accepted")
	}
	if err := rf.Append(3, 0); err == nil {
		t.Error("regression accepted")
	}
	// Regression against sealed pages too.
	rf2 := NewRangeForest(2)
	for lsn := uint64(1); lsn <= 4; lsn++ {
		if err := rf2.Append(lsn, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := rf2.Append(2, 0); err == nil {
		t.Error("regression into sealed page accepted")
	}
}

func TestRangeForestDefaultPageSize(t *testing.T) {
	rf := NewRangeForest(0)
	if rf.pageSize != DefaultPageSize {
		t.Fatalf("pageSize = %d", rf.pageSize)
	}
}

func TestRangeForestManyRecordsPerNode(t *testing.T) {
	// The paper: "each page sized node of the tree can index one
	// thousand or more records." With the default page size, 10k
	// records need only ~10 sealed nodes.
	rf := NewRangeForest(DefaultPageSize)
	for lsn := uint64(1); lsn <= 10*DefaultPageSize; lsn++ {
		if err := rf.Append(lsn, int64(lsn)); err != nil {
			t.Fatal(err)
		}
	}
	if got := rf.NumNodes(); got != 10 {
		t.Fatalf("NumNodes = %d, want 10", got)
	}
}

func BenchmarkForestAppend(b *testing.B) {
	var f Forest[int64]
	for i := 0; i < b.N; i++ {
		if err := f.Append(uint64(i+1), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestLookup(b *testing.B) {
	var f Forest[int64]
	const n = 1 << 20
	for i := uint64(1); i <= n; i++ {
		if err := f.Append(i, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := f.Lookup(uint64(rng.Intn(n)) + 1); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkRangeForestLookup(b *testing.B) {
	rf := NewRangeForest(DefaultPageSize)
	const n = 1 << 20
	for i := uint64(1); i <= n; i++ {
		if err := rf.Append(i, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rf.Lookup(uint64(rng.Intn(n)) + 1); !ok {
			b.Fatal("missing key")
		}
	}
}

// BenchmarkForestVsScan quantifies the ablation in DESIGN.md: append-
// forest lookups vs a linear scan of an interval-ordered slice, at a
// size where the difference matters.
func BenchmarkForestVsScan(b *testing.B) {
	const n = 1 << 16
	b.Run("forest", func(b *testing.B) {
		var f Forest[int64]
		for i := uint64(1); i <= n; i++ {
			_ = f.Append(i, int64(i))
		}
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Lookup(uint64(rng.Intn(n)) + 1)
		}
	})
	b.Run("scan", func(b *testing.B) {
		type kv struct {
			k uint64
			v int64
		}
		s := make([]kv, n)
		for i := range s {
			s[i] = kv{uint64(i + 1), int64(i)}
		}
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := uint64(rng.Intn(n)) + 1
			for j := range s {
				if s[j].k == key {
					break
				}
			}
		}
	})
}
