package appendforest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// PersistentForest is the append-forest in the representation Section
// 4.3 designs it for: every node is written once to append-only
// storage (modelling write-once optical disks) and never modified —
// an append emits exactly one fixed-size node whose child and forest
// pointers refer to previously written positions. Searches read
// O(log n) nodes from the store.
//
// On reopen the structure is recovered by scanning the node log and
// replaying the forest's merge rule, which is fully determined by the
// node heights.
type PersistentForest struct {
	store  NodeStore
	count  int64
	roots  []int64 // positions of tree roots, leftmost first
	maxKey uint64
}

// NodeStore is the append-only storage for encoded nodes. Nodes are
// exactly NodeSize bytes.
type NodeStore interface {
	// AppendNode writes one encoded node and returns its position
	// (ordinal index).
	AppendNode(buf []byte) (pos int64, err error)
	// ReadNode fills buf with the node at pos.
	ReadNode(pos int64, buf []byte) error
	// Count returns the number of stored nodes.
	Count() (int64, error)
}

// NodeSize is the fixed encoded node size:
// key(8) min(8) payload(8) left(8) right(8) forest(8) height(1).
const NodeSize = 8*6 + 1

const nilPersist = int64(-1)

type pnode struct {
	key     uint64
	min     uint64
	payload int64
	left    int64
	right   int64
	forest  int64
	height  uint8
}

func (n *pnode) encode(buf []byte) {
	binary.BigEndian.PutUint64(buf[0:], n.key)
	binary.BigEndian.PutUint64(buf[8:], n.min)
	binary.BigEndian.PutUint64(buf[16:], uint64(n.payload))
	binary.BigEndian.PutUint64(buf[24:], uint64(n.left))
	binary.BigEndian.PutUint64(buf[32:], uint64(n.right))
	binary.BigEndian.PutUint64(buf[40:], uint64(n.forest))
	buf[48] = n.height
}

func decodePNode(buf []byte) pnode {
	return pnode{
		key:     binary.BigEndian.Uint64(buf[0:]),
		min:     binary.BigEndian.Uint64(buf[8:]),
		payload: int64(binary.BigEndian.Uint64(buf[16:])),
		left:    int64(binary.BigEndian.Uint64(buf[24:])),
		right:   int64(binary.BigEndian.Uint64(buf[32:])),
		forest:  int64(binary.BigEndian.Uint64(buf[40:])),
		height:  buf[48],
	}
}

// OpenPersistent opens (or recovers) a persistent forest over the
// store: existing nodes are scanned and the root stack replayed.
func OpenPersistent(store NodeStore) (*PersistentForest, error) {
	f := &PersistentForest{store: store}
	n, err := store.Count()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, NodeSize)
	for pos := int64(0); pos < n; pos++ {
		if err := store.ReadNode(pos, buf); err != nil {
			return nil, err
		}
		nd := decodePNode(buf)
		if nd.key <= f.maxKey && pos > 0 {
			return nil, fmt.Errorf("appendforest: node %d key %d not increasing", pos, nd.key)
		}
		// Replay the merge rule: a node of height h > 0 absorbed the
		// two rightmost roots as its sons.
		if nd.height > 0 {
			if len(f.roots) < 2 {
				return nil, fmt.Errorf("appendforest: node %d height %d with %d roots", pos, nd.height, len(f.roots))
			}
			f.roots = f.roots[:len(f.roots)-2]
		}
		f.roots = append(f.roots, pos)
		f.maxKey = nd.key
	}
	f.count = n
	return f, nil
}

// Len returns the number of appended keys.
func (f *PersistentForest) Len() int64 { return f.count }

// MaxKey returns the largest appended key (zero when the forest is
// empty — check Len first if zero is a valid key).
func (f *PersistentForest) MaxKey() uint64 { return f.maxKey }

// Scan calls fn for every appended (key, payload) pair in append
// order, reading the node log sequentially: each append wrote exactly
// one node, so the node sequence is the key sequence.
func (f *PersistentForest) Scan(fn func(key uint64, payload int64) error) error {
	buf := make([]byte, NodeSize)
	for pos := int64(0); pos < f.count; pos++ {
		if err := f.store.ReadNode(pos, buf); err != nil {
			return err
		}
		nd := decodePNode(buf)
		if err := fn(nd.key, nd.payload); err != nil {
			return err
		}
	}
	return nil
}

// Append adds key with a payload, writing exactly one node.
func (f *PersistentForest) Append(key uint64, payload int64) error {
	if f.count > 0 && key <= f.maxKey {
		return fmt.Errorf("%w: %d after %d", ErrKeyOrder, key, f.maxKey)
	}
	nd := pnode{key: key, min: key, payload: payload, left: nilPersist, right: nilPersist, forest: nilPersist}
	var buf [NodeSize]byte
	nr := len(f.roots)
	if nr >= 2 {
		left, err := f.read(f.roots[nr-2])
		if err != nil {
			return err
		}
		right, err := f.read(f.roots[nr-1])
		if err != nil {
			return err
		}
		if left.height == right.height {
			nd.left = f.roots[nr-2]
			nd.right = f.roots[nr-1]
			nd.min = left.min
			nd.height = right.height + 1
			if nr >= 3 {
				nd.forest = f.roots[nr-3]
			}
			f.roots = f.roots[:nr-2]
		} else {
			nd.forest = f.roots[nr-1]
		}
	} else if nr == 1 {
		nd.forest = f.roots[0]
	}
	nd.encode(buf[:])
	pos, err := f.store.AppendNode(buf[:])
	if err != nil {
		return err
	}
	f.roots = append(f.roots, pos)
	f.count++
	f.maxKey = key
	return nil
}

func (f *PersistentForest) read(pos int64) (pnode, error) {
	var buf [NodeSize]byte
	if err := f.store.ReadNode(pos, buf[:]); err != nil {
		return pnode{}, err
	}
	return decodePNode(buf[:]), nil
}

// Lookup returns the payload for key, reading O(log n) nodes.
func (f *PersistentForest) Lookup(key uint64) (int64, bool, error) {
	if f.count == 0 || key > f.maxKey {
		return 0, false, nil
	}
	pos := f.roots[len(f.roots)-1]
	cur, err := f.read(pos)
	if err != nil {
		return 0, false, err
	}
	// Walk forest pointers to the leftmost tree whose max >= key.
	for cur.forest != nilPersist {
		prev, err := f.read(cur.forest)
		if err != nil {
			return 0, false, err
		}
		if prev.key < key {
			break
		}
		cur = prev
	}
	// Binary-tree descent.
	for {
		switch {
		case key == cur.key:
			return cur.payload, true, nil
		case key > cur.key || key < cur.min:
			return 0, false, nil
		default:
			left, err := f.read(cur.left)
			if err != nil {
				return 0, false, err
			}
			if key <= left.key {
				cur = left
			} else {
				cur, err = f.read(cur.right)
				if err != nil {
					return 0, false, err
				}
			}
		}
	}
}

// MemNodeStore keeps nodes in memory (tests, and volatile caching of a
// WORM volume).
type MemNodeStore struct {
	nodes [][]byte
}

// AppendNode implements NodeStore.
func (m *MemNodeStore) AppendNode(buf []byte) (int64, error) {
	cp := make([]byte, len(buf))
	copy(cp, buf)
	m.nodes = append(m.nodes, cp)
	return int64(len(m.nodes) - 1), nil
}

// ReadNode implements NodeStore.
func (m *MemNodeStore) ReadNode(pos int64, buf []byte) error {
	if pos < 0 || pos >= int64(len(m.nodes)) {
		return fmt.Errorf("appendforest: node %d out of range", pos)
	}
	copy(buf, m.nodes[pos])
	return nil
}

// Count implements NodeStore.
func (m *MemNodeStore) Count() (int64, error) { return int64(len(m.nodes)), nil }

// FileNodeStore stores nodes in a file, append-only — a write-once
// volume in the limit (nothing is ever overwritten).
type FileNodeStore struct {
	f    *os.File
	next int64
}

// OpenFileNodeStore opens (creating if needed) a node file.
func OpenFileNodeStore(path string) (*FileNodeStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size()%NodeSize != 0 {
		// A torn node append (crash mid-write): discard the partial
		// tail — its node was never linked from anywhere.
		if err := f.Truncate(info.Size() - info.Size()%NodeSize); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &FileNodeStore{f: f, next: info.Size() / NodeSize}, nil
}

// AppendNode implements NodeStore.
func (s *FileNodeStore) AppendNode(buf []byte) (int64, error) {
	if len(buf) != NodeSize {
		return 0, errors.New("appendforest: bad node size")
	}
	pos := s.next
	if _, err := s.f.WriteAt(buf, pos*NodeSize); err != nil {
		return 0, err
	}
	s.next++
	return pos, nil
}

// ReadNode implements NodeStore.
func (s *FileNodeStore) ReadNode(pos int64, buf []byte) error {
	if pos < 0 || pos >= s.next {
		return fmt.Errorf("appendforest: node %d out of range", pos)
	}
	_, err := s.f.ReadAt(buf[:NodeSize], pos*NodeSize)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// Count implements NodeStore.
func (s *FileNodeStore) Count() (int64, error) { return s.next, nil }

// Sync flushes the node file.
func (s *FileNodeStore) Sync() error { return s.f.Sync() }

// Close closes the node file.
func (s *FileNodeStore) Close() error { return s.f.Close() }
