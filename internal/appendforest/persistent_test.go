package appendforest

import (
	"os"
	"path/filepath"
	"testing"
)

func stores(t *testing.T) map[string]func(t *testing.T) NodeStore {
	return map[string]func(t *testing.T) NodeStore{
		"mem": func(t *testing.T) NodeStore { return &MemNodeStore{} },
		"file": func(t *testing.T) NodeStore {
			s, err := OpenFileNodeStore(filepath.Join(t.TempDir(), "nodes"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return s
		},
	}
}

func TestPersistentAppendLookup(t *testing.T) {
	for name, mk := range stores(t) {
		t.Run(name, func(t *testing.T) {
			f, err := OpenPersistent(mk(t))
			if err != nil {
				t.Fatal(err)
			}
			const n = 500
			for k := uint64(1); k <= n; k++ {
				if err := f.Append(k*2, int64(k*100)); err != nil {
					t.Fatal(err)
				}
			}
			if f.Len() != n {
				t.Fatalf("Len = %d", f.Len())
			}
			for k := uint64(1); k <= n; k++ {
				v, ok, err := f.Lookup(k * 2)
				if err != nil || !ok || v != int64(k*100) {
					t.Fatalf("Lookup(%d) = %d,%v,%v", k*2, v, ok, err)
				}
				if _, ok, _ := f.Lookup(k*2 - 1); ok {
					t.Fatalf("Lookup(%d) found a missing key", k*2-1)
				}
			}
			if _, ok, _ := f.Lookup(n*2 + 2); ok {
				t.Fatal("lookup beyond max found")
			}
		})
	}
}

func TestPersistentRejectsNonIncreasing(t *testing.T) {
	f, err := OpenPersistent(&MemNodeStore{})
	if err != nil {
		t.Fatal(err)
	}
	f.Append(5, 0)
	if err := f.Append(5, 0); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := f.Append(4, 0); err == nil {
		t.Fatal("regression accepted")
	}
}

func TestPersistentWriteOnceDiscipline(t *testing.T) {
	// The write-once property: appends never rewrite an existing node.
	store := &onceStore{}
	f, err := OpenPersistent(store)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		if err := f.Append(k, int64(k)); err != nil {
			t.Fatal(err)
		}
	}
	if store.rewrites != 0 {
		t.Fatalf("%d rewrites on write-once storage", store.rewrites)
	}
	if store.appends != 200 {
		t.Fatalf("appends = %d, want exactly one node per key", store.appends)
	}
}

type onceStore struct {
	MemNodeStore
	appends  int
	rewrites int
}

func (s *onceStore) AppendNode(buf []byte) (int64, error) {
	s.appends++
	return s.MemNodeStore.AppendNode(buf)
}

func TestPersistentRecoveryFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nodes")
	store, err := OpenFileNodeStore(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenPersistent(store)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 300; k++ {
		if err := f.Append(k*3, int64(k)); err != nil {
			t.Fatal(err)
		}
	}
	store.Sync()
	store.Close()

	store2, err := OpenFileNodeStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	f2, err := OpenPersistent(store2)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Len() != 300 {
		t.Fatalf("Len after reopen = %d", f2.Len())
	}
	for k := uint64(1); k <= 300; k++ {
		v, ok, err := f2.Lookup(k * 3)
		if err != nil || !ok || v != int64(k) {
			t.Fatalf("Lookup(%d) after reopen = %d,%v,%v", k*3, v, ok, err)
		}
	}
	// Appends continue where they left off.
	if err := f2.Append(1000, 42); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := f2.Lookup(1000)
	if !ok || v != 42 {
		t.Fatalf("Lookup(1000) = %d,%v", v, ok)
	}
}

func TestPersistentTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nodes")
	store, err := OpenFileNodeStore(path)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := OpenPersistent(store)
	for k := uint64(1); k <= 10; k++ {
		f.Append(k, int64(k))
	}
	store.Close()
	// Crash mid-node-write: a partial node at the tail.
	file, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	file.Write(make([]byte, NodeSize/2))
	file.Close()

	store2, err := OpenFileNodeStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	f2, err := OpenPersistent(store2)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Len() != 10 {
		t.Fatalf("Len = %d after torn tail", f2.Len())
	}
	for k := uint64(1); k <= 10; k++ {
		if _, ok, _ := f2.Lookup(k); !ok {
			t.Fatalf("Lookup(%d) lost", k)
		}
	}
}

// TestPersistentMatchesInMemory cross-checks the persistent forest
// against the in-memory implementation over the same key sequence.
func TestPersistentMatchesInMemory(t *testing.T) {
	var mem Forest[int64]
	pf, err := OpenPersistent(&MemNodeStore{})
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(0)
	for i := 0; i < 1000; i++ {
		key += 1 + uint64(i%7)
		if err := mem.Append(key, int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := pf.Append(key, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for probe := uint64(0); probe <= key+2; probe++ {
		mv, mok := mem.Lookup(probe)
		pv, pok, err := pf.Lookup(probe)
		if err != nil {
			t.Fatal(err)
		}
		if mok != pok || (mok && mv != pv) {
			t.Fatalf("Lookup(%d): mem %d,%v vs persistent %d,%v", probe, mv, mok, pv, pok)
		}
	}
}

func BenchmarkPersistentLookupFile(b *testing.B) {
	store, err := OpenFileNodeStore(filepath.Join(b.TempDir(), "nodes"))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	f, err := OpenPersistent(store)
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 16
	for k := uint64(1); k <= n; k++ {
		if err := f.Append(k, int64(k)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := f.Lookup(uint64(i%n) + 1); !ok || err != nil {
			b.Fatal("missing key")
		}
	}
}
