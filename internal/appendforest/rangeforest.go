package appendforest

import "fmt"

// RangeForest is the append-forest as used by a log server to index
// one client's records (Section 4.3): each page-sized node covers a
// range of log sequence numbers and holds a pointer (here: a caller
// supplied value, typically a byte offset into the log stream) for
// every record in the range. With a page-sized node indexing a
// thousand or more records, the forest stays shallow even for logs
// spread over gigabytes of disk.
//
// Ranges must be appended in increasing, non-overlapping LSN order;
// gaps between ranges are allowed (gaps arise when a client switches
// log servers).
type RangeForest struct {
	forest Forest[rangePage]
	// pending accumulates pointers until a page fills.
	pendingLow  uint64
	pendingPtrs []int64
	pageSize    int
	count       int
}

type rangePage struct {
	low  uint64
	ptrs []int64
}

// DefaultPageSize is the number of record pointers per index node. The
// paper estimates one thousand or more records per page-sized node.
const DefaultPageSize = 1024

// NewRangeForest returns a RangeForest whose index nodes each hold
// pageSize record pointers. pageSize <= 0 selects DefaultPageSize.
func NewRangeForest(pageSize int) *RangeForest {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &RangeForest{pageSize: pageSize}
}

// Len returns the number of record pointers stored.
func (rf *RangeForest) Len() int { return rf.count }

// NumNodes returns the number of full index nodes written so far
// (excluding the open page).
func (rf *RangeForest) NumNodes() int { return rf.forest.Len() }

// Append records that lsn's record lives at ptr. LSNs must be strictly
// increasing.
func (rf *RangeForest) Append(lsn uint64, ptr int64) error {
	if len(rf.pendingPtrs) > 0 {
		last := rf.pendingLow + uint64(len(rf.pendingPtrs)) - 1
		if lsn <= last {
			return fmt.Errorf("%w: %d after %d", ErrKeyOrder, lsn, last)
		}
		if lsn != last+1 {
			// Gap: seal the open page early so each node covers one
			// dense range.
			if err := rf.seal(); err != nil {
				return err
			}
		}
	} else if max, ok := rf.forest.Max(); ok && lsn <= max {
		return fmt.Errorf("%w: %d after %d", ErrKeyOrder, lsn, max)
	}
	if len(rf.pendingPtrs) == 0 {
		rf.pendingLow = lsn
	}
	rf.pendingPtrs = append(rf.pendingPtrs, ptr)
	rf.count++
	if len(rf.pendingPtrs) >= rf.pageSize {
		return rf.seal()
	}
	return nil
}

func (rf *RangeForest) seal() error {
	if len(rf.pendingPtrs) == 0 {
		return nil
	}
	high := rf.pendingLow + uint64(len(rf.pendingPtrs)) - 1
	page := rangePage{low: rf.pendingLow, ptrs: rf.pendingPtrs}
	rf.pendingPtrs = nil
	return rf.forest.Append(high, page)
}

// Lookup returns the pointer stored for lsn.
func (rf *RangeForest) Lookup(lsn uint64) (int64, bool) {
	// Check the open page first: readers most often chase the tail.
	if n := len(rf.pendingPtrs); n > 0 {
		if lsn >= rf.pendingLow && lsn < rf.pendingLow+uint64(n) {
			return rf.pendingPtrs[lsn-rf.pendingLow], true
		}
		if lsn >= rf.pendingLow {
			return 0, false
		}
	}
	// The sealed node covering lsn is the one with the smallest
	// high-key >= lsn.
	_, page, ok := rf.forest.Ceiling(lsn)
	if !ok || lsn < page.low {
		return 0, false
	}
	return page.ptrs[lsn-page.low], true
}
