// Package availability implements the closed-form availability model
// of Section 3.2 and Appendix I of "Distributed Logging for
// Transaction Processing" (SIGMOD 1987).
//
// A replicated log uses M log servers with each record written to N of
// them. Assuming servers fail independently and are unavailable with
// probability p:
//
//   - WriteLog is available when at most M-N servers are down
//     (N of them must be up to accept the record).
//   - Client initialization is available when at most N-1 servers are
//     down (M-N+1 interval lists are needed to cover every record).
//   - Reading a particular record is available with probability
//     1 - p^N (some one of its N holders must be up).
//   - A replicated identifier generator with R state representatives
//     is available when at most floor((R-1)/2) are down.
package availability

import (
	"fmt"
	"math"
)

// Config describes a replicated log configuration.
type Config struct {
	M int     // number of log server nodes
	N int     // copies per record
	P float64 // probability an individual server is unavailable
}

// Validate reports whether the configuration is meaningful.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("availability: N = %d, want >= 1", c.N)
	}
	if c.M < c.N {
		return fmt.Errorf("availability: M = %d < N = %d", c.M, c.N)
	}
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("availability: p = %g outside [0,1]", c.P)
	}
	return nil
}

// atMostDown returns the probability that at most k of m independent
// servers are simultaneously unavailable: sum_{i=0..k} C(m,i) p^i (1-p)^(m-i).
func atMostDown(m, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= m {
		return 1
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += binomial(m, i) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(m-i))
	}
	if sum > 1 {
		sum = 1 // guard accumulated rounding
	}
	return sum
}

// binomial returns C(n, k) as a float64.
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

// WriteLog returns the probability that the replicated log is
// available for WriteLog operations: at most M-N servers down.
func WriteLog(c Config) float64 {
	return atMostDown(c.M, c.M-c.N, c.P)
}

// ClientInit returns the probability that the replicated log is
// available for client initialization: at most N-1 servers down, so
// that M-N+1 interval lists can be gathered.
func ClientInit(c Config) float64 {
	return atMostDown(c.M, c.N-1, c.P)
}

// ReadRecord returns the probability that a particular log record can
// be read: one of its N holders must be up, i.e. 1 - p^N.
func ReadRecord(c Config) float64 {
	return 1 - math.Pow(c.P, float64(c.N))
}

// IDGenerator returns the probability that a replicated increasing
// unique identifier generator with reps state representatives is
// available (Appendix I): at most floor((reps-1)/2) down.
func IDGenerator(reps int, p float64) float64 {
	return atMostDown(reps, (reps-1)/2, p)
}

// Point is one (M, N) configuration's availability figures, as plotted
// in Figure 3.4 of the paper.
type Point struct {
	M          int
	N          int
	WriteLog   float64
	ClientInit float64
	ReadRecord float64
}

// Figure34 computes the two series plotted in Figure 3.4: WriteLog and
// client-initialization availability as servers are added, for the
// replication factors the paper considers practical (N = 2 and N = 3),
// with individual server availability 1-p. The paper uses p = 0.05.
func Figure34(p float64, maxM int) []Point {
	var pts []Point
	for _, n := range []int{2, 3} {
		for m := n; m <= maxM; m++ {
			c := Config{M: m, N: n, P: p}
			pts = append(pts, Point{
				M:          m,
				N:          n,
				WriteLog:   WriteLog(c),
				ClientInit: ClientInit(c),
				ReadRecord: ReadRecord(c),
			})
		}
	}
	return pts
}
