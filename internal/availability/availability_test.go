package availability

import (
	"math"
	"testing"
	"testing/quick"
)

const p05 = 0.05 // the paper's Figure 3.4 assumes p = 0.05

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.6f, want %.6f (±%.6f)", name, got, want, tol)
	}
}

func TestValidate(t *testing.T) {
	good := Config{M: 5, N: 2, P: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{M: 1, N: 2, P: 0.05},
		{M: 3, N: 0, P: 0.05},
		{M: 3, N: 2, P: -0.1},
		{M: 3, N: 2, P: 1.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", bad)
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 1, 5}, {5, 2, 10}, {5, 5, 1},
		{10, 3, 120}, {0, 0, 1}, {4, 5, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

// TestFigure34PaperClaims checks every numeric claim the paper makes
// around Figure 3.4.
func TestFigure34PaperClaims(t *testing.T) {
	// "In the case used as an example above, four of the five log
	// servers must be available for client initialization. This occurs
	// with a probability of about 0.98."
	within(t, "ClientInit(M=5,N=2)", ClientInit(Config{M: 5, N: 2, P: p05}), 0.977, 0.001)

	// "For WriteLog operations to be unavailable in this model, at
	// least four of the five servers must be down ... such failures
	// will hardly ever render WriteLog operations unavailable."
	if w := WriteLog(Config{M: 5, N: 2, P: p05}); w < 0.9999 {
		t.Errorf("WriteLog(M=5,N=2) = %.6f, want > 0.9999", w)
	}

	// "With five log servers and triple copy replicated logs,
	// availability for both normal processing (WriteLog) and client
	// initialization is about 0.999."
	within(t, "WriteLog(M=5,N=3)", WriteLog(Config{M: 5, N: 3, P: p05}), 0.9988, 0.0005)
	within(t, "ClientInit(M=5,N=3)", ClientInit(Config{M: 5, N: 3, P: p05}), 0.9988, 0.0005)

	// "If only a single server were used, then ReadLog, WriteLog and
	// client initialization would be available with probability 0.95."
	single := Config{M: 1, N: 1, P: p05}
	within(t, "WriteLog(single)", WriteLog(single), 0.95, 1e-9)
	within(t, "ClientInit(single)", ClientInit(single), 0.95, 1e-9)
	within(t, "ReadRecord(single)", ReadRecord(single), 0.95, 1e-9)

	// "With dual copy replicated logs, 0.95 or better availability for
	// client initialization would be achieved using up to M = 7 log
	// servers" — and no further.
	if a := ClientInit(Config{M: 7, N: 2, P: p05}); a < 0.95 {
		t.Errorf("ClientInit(M=7,N=2) = %.6f, want >= 0.95", a)
	}
	if a := ClientInit(Config{M: 8, N: 2, P: p05}); a >= 0.95 {
		t.Errorf("ClientInit(M=8,N=2) = %.6f, want < 0.95", a)
	}
}

func TestWriteLogMonotonicInM(t *testing.T) {
	// "As log servers are added (M is increased), WriteLog availability
	// approaches unity very quickly."
	for _, n := range []int{2, 3} {
		prev := 0.0
		for m := n; m <= 10; m++ {
			w := WriteLog(Config{M: m, N: n, P: p05})
			if w < prev {
				t.Errorf("WriteLog N=%d decreased at M=%d: %.6f < %.6f", n, m, w, prev)
			}
			prev = w
		}
		if prev < 0.999999 {
			t.Errorf("WriteLog N=%d at M=10 = %.7f, want ~1", n, prev)
		}
	}
}

func TestClientInitMonotonicDecreasingInM(t *testing.T) {
	// "Client initialization availability decreases as log servers are
	// added, because almost all servers must be available to form a
	// quorum."
	for _, n := range []int{2, 3} {
		prev := 1.1
		for m := n; m <= 10; m++ {
			a := ClientInit(Config{M: m, N: n, P: p05})
			if a > prev {
				t.Errorf("ClientInit N=%d increased at M=%d: %.6f > %.6f", n, m, a, prev)
			}
			prev = a
		}
	}
}

func TestReadRecord(t *testing.T) {
	within(t, "ReadRecord N=2", ReadRecord(Config{M: 5, N: 2, P: p05}), 1-0.0025, 1e-12)
	within(t, "ReadRecord N=3", ReadRecord(Config{M: 5, N: 3, P: p05}), 1-0.000125, 1e-12)
}

func TestTradeoffNarrowing(t *testing.T) {
	// The paper frames M as a trade between WriteLog availability
	// (better with more servers) and client-init availability (worse).
	// At fixed N, WriteLog(M+1) >= WriteLog(M) and
	// ClientInit(M+1) <= ClientInit(M) — verified above — and N=3
	// dominates N=2 for client init at the same M.
	for m := 3; m <= 8; m++ {
		n2 := ClientInit(Config{M: m, N: 2, P: p05})
		n3 := ClientInit(Config{M: m, N: 3, P: p05})
		if n3 < n2 {
			t.Errorf("M=%d: ClientInit N=3 (%.6f) < N=2 (%.6f)", m, n3, n2)
		}
	}
}

func TestIDGenerator(t *testing.T) {
	// Appendix I: availability is P(at most floor((N-1)/2) reps down).
	within(t, "IDGenerator(1)", IDGenerator(1, p05), 0.95, 1e-12)
	// 3 reps tolerate 1 failure: 0.95^3 + 3*0.05*0.95^2.
	within(t, "IDGenerator(3)", IDGenerator(3, p05), 0.992750, 1e-6)
	// 5 reps tolerate 2 failures.
	want5 := math.Pow(.95, 5) + 5*.05*math.Pow(.95, 4) + 10*.0025*math.Pow(.95, 3)
	within(t, "IDGenerator(5)", IDGenerator(5, p05), want5, 1e-12)
	// Even numbers of reps add no fault tolerance over the odd below.
	if IDGenerator(4, p05) > IDGenerator(3, p05) {
		t.Error("4 reps should not beat 3 (same failures tolerated, more nodes)")
	}
}

// TestIDGeneratorDoesNotLimitClientInit verifies the paper's footnote:
// "typical configurations will require fewer representatives than log
// servers for client initialization. Thus the availability of the
// replicated ... generator does not limit the availability of
// replicated logs." With 3 reps hosted among M=5, N=2 servers, the
// generator's availability exceeds client-init availability.
func TestIDGeneratorDoesNotLimitClientInit(t *testing.T) {
	gen := IDGenerator(3, p05)
	init := ClientInit(Config{M: 5, N: 2, P: p05})
	if gen < init {
		t.Errorf("IDGenerator(3) = %.6f below ClientInit = %.6f", gen, init)
	}
}

func TestFigure34Series(t *testing.T) {
	pts := Figure34(p05, 8)
	// N=2 yields M=2..8 (7 points), N=3 yields M=3..8 (6 points).
	if len(pts) != 13 {
		t.Fatalf("Figure34 returned %d points, want 13", len(pts))
	}
	for _, pt := range pts {
		if pt.WriteLog < 0 || pt.WriteLog > 1 || pt.ClientInit < 0 || pt.ClientInit > 1 {
			t.Errorf("point %+v outside [0,1]", pt)
		}
		// At M == N, WriteLog needs all N servers up and ClientInit
		// needs any one of them (quorum M-N+1 = 1).
		if pt.M == pt.N {
			if math.Abs(pt.WriteLog-math.Pow(1-p05, float64(pt.N))) > 1e-12 {
				t.Errorf("M=N=%d: WriteLog %.6f != (1-p)^N", pt.M, pt.WriteLog)
			}
			if math.Abs(pt.ClientInit-(1-math.Pow(p05, float64(pt.N)))) > 1e-12 {
				t.Errorf("M=N=%d: ClientInit %.6f != 1-p^N", pt.M, pt.ClientInit)
			}
		}
		// Duality: WriteLog(M,N) == ClientInit(M, M-N+1).
		dual := ClientInit(Config{M: pt.M, N: pt.M - pt.N + 1, P: p05})
		if math.Abs(pt.WriteLog-dual) > 1e-12 {
			t.Errorf("M=%d,N=%d: WriteLog %.6f != dual ClientInit %.6f", pt.M, pt.N, pt.WriteLog, dual)
		}
	}
}

// TestAvailabilityProbabilityProperties: outputs are probabilities for
// random configurations, p=0 gives 1, p=1 gives 0 (for M>N cases it
// still requires N up, so 0 unless N=0).
func TestAvailabilityProbabilityProperties(t *testing.T) {
	f := func(m8, n8 uint8, pRaw uint16) bool {
		n := int(n8%3) + 1
		m := n + int(m8%6)
		p := float64(pRaw) / 65535.0
		c := Config{M: m, N: n, P: p}
		for _, v := range []float64{WriteLog(c), ClientInit(c), ReadRecord(c)} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	perfect := Config{M: 5, N: 2, P: 0}
	if WriteLog(perfect) != 1 || ClientInit(perfect) != 1 || ReadRecord(perfect) != 1 {
		t.Error("p=0 should give availability 1")
	}
	dead := Config{M: 5, N: 2, P: 1}
	if WriteLog(dead) != 0 || ClientInit(dead) != 0 || ReadRecord(dead) != 0 {
		t.Errorf("p=1 should give availability 0: %g %g %g", WriteLog(dead), ClientInit(dead), ReadRecord(dead))
	}
}

// TestMonteCarloAgreement cross-checks the closed forms against a
// simple Monte Carlo simulation of independent server failures.
func TestMonteCarloAgreement(t *testing.T) {
	c := Config{M: 5, N: 2, P: 0.2} // larger p for faster convergence
	const trials = 200000
	rng := newLCG(12345)
	var writeOK, initOK, readOK int
	for i := 0; i < trials; i++ {
		down := 0
		holderDown := 0
		for s := 0; s < c.M; s++ {
			if rng.float64() < c.P {
				down++
				if s < c.N {
					holderDown++ // the record's holders are any N servers
				}
			}
		}
		if down <= c.M-c.N {
			writeOK++
		}
		if down <= c.N-1 {
			initOK++
		}
		if holderDown < c.N {
			readOK++
		}
	}
	within(t, "MC WriteLog", float64(writeOK)/trials, WriteLog(c), 0.005)
	within(t, "MC ClientInit", float64(initOK)/trials, ClientInit(c), 0.005)
	within(t, "MC ReadRecord", float64(readOK)/trials, ReadRecord(c), 0.005)
}

// lcg is a tiny deterministic generator so the Monte Carlo test does
// not depend on math/rand's generator evolution.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }

func (l *lcg) float64() float64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return float64(l.s>>11) / float64(1<<53)
}

func BenchmarkFigure34(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Figure34(p05, 8)
	}
}
