// Package capacity reproduces the log server capacity analysis of
// Section 4.1: given the paper's target load — fifty client nodes each
// running ten local ET1 transactions per second against six log
// servers with dual-copy logging — it derives the message rates, CPU
// and disk utilizations, network load, and daily log volume the paper
// reports, both in closed form (mirroring the paper's own arithmetic)
// and by discrete-event simulation of the full pipeline.
package capacity

import (
	"fmt"
	"time"

	"distlog/internal/workload"
)

// DiskProfile describes the logging disk for the analysis.
type DiskProfile struct {
	Name              string
	RPM               int
	TrackSize         int // bytes
	TracksPerCylinder int
	SeekTime          time.Duration // single-cylinder advance
}

// SlowDisk is the "slow disk with small tracks" of the paper's 50%
// utilization remark.
func SlowDisk() DiskProfile {
	return DiskProfile{Name: "slow/small-tracks", RPM: 2400, TrackSize: 8 * 1024, TracksPerCylinder: 4, SeekTime: 5 * time.Millisecond}
}

// FastDisk is a contemporary better disk for comparison.
func FastDisk() DiskProfile {
	return DiskProfile{Name: "fast/large-tracks", RPM: 3600, TrackSize: 15 * 1024, TracksPerCylinder: 4, SeekTime: 3 * time.Millisecond}
}

// Params describes the analyzed system. The zero value is not useful;
// start from PaperParams.
type Params struct {
	Clients       int
	TPSPerClient  float64
	RecordsPerTxn int
	BytesPerTxn   int
	ForcesPerTxn  int
	Servers       int
	Copies        int // N

	// Grouping: when false, every log record is its own RPC; when
	// true, records are grouped until the force (the design the paper
	// advocates).
	Grouping bool

	// Costs (Section 4.1's budget figures).
	ServerMIPS           float64
	InstrPerPacket       int // network + RPC handling per packet
	InstrPerMessage      int // log record processing + copy to NVRAM
	InstrPerTrack        int // track write initiation
	PacketOverhead       int // header bytes per packet on the wire
	Multicast            bool
	Disk                 DiskProfile
	NetworkBandwidthMbps float64 // for the saturation check
}

// PaperParams returns the paper's target configuration.
func PaperParams() Params {
	return Params{
		Clients:              workload.TargetClients,
		TPSPerClient:         workload.TargetClientTPS,
		RecordsPerTxn:        workload.ET1RecordsPerTxn,
		BytesPerTxn:          workload.ET1BytesPerTxn,
		ForcesPerTxn:         workload.ET1ForcesPerTxn,
		Servers:              workload.TargetServers,
		Copies:               workload.TargetCopies,
		Grouping:             true,
		ServerMIPS:           3.5, // "processor speeds of at least a few MIPS"
		InstrPerPacket:       1000,
		InstrPerMessage:      2000,
		InstrPerTrack:        2000,
		PacketOverhead:       50,
		Disk:                 SlowDisk(),
		NetworkBandwidthMbps: 10,
	}
}

// Report carries the analysis results. All rates are per second.
type Report struct {
	AggregateTPS float64

	// Per-server message and request rates.
	RequestsPerServer float64 // incoming request packets
	MessagesPerServer float64 // incoming + outgoing packets

	// Network, whole system.
	NetworkBitsPerSec float64
	NetworkSaturated  bool

	// Per-server resource utilizations, 0..1.
	CommCPU              float64
	LogCPU               float64
	DiskUtil             float64
	TrackWritesPerServer float64

	// Log volume.
	BytesPerServerPerSec float64
	BytesPerServerPerDay float64
}

// Analyze derives the report in closed form, following the paper's own
// arithmetic.
func Analyze(p Params) Report {
	var r Report
	r.AggregateTPS = float64(p.Clients) * p.TPSPerClient

	// Request rate: with grouping, one request per force; without, one
	// per record. Each request is replicated to Copies servers.
	reqPerTxn := float64(p.RecordsPerTxn)
	if p.Grouping {
		reqPerTxn = float64(p.ForcesPerTxn)
	}
	totalRequests := r.AggregateTPS * reqPerTxn * float64(p.Copies)
	r.RequestsPerServer = totalRequests / float64(p.Servers)
	// Every request generates a reply (the ForceLog ack / RPC reply).
	r.MessagesPerServer = 2 * r.RequestsPerServer

	// Network: log data to Copies servers plus packet overheads both
	// ways. Multicast sends the data once instead of Copies times.
	dataCopies := float64(p.Copies)
	if p.Multicast {
		dataCopies = 1
	}
	dataBits := r.AggregateTPS * float64(p.BytesPerTxn) * dataCopies * 8
	overheadBits := totalRequests * 2 * float64(p.PacketOverhead) * 8
	r.NetworkBitsPerSec = dataBits + overheadBits
	r.NetworkSaturated = r.NetworkBitsPerSec > p.NetworkBandwidthMbps*1e6

	// CPU: communication handling, then log processing + track writes.
	instrPerSec := p.ServerMIPS * 1e6
	r.CommCPU = r.MessagesPerServer * float64(p.InstrPerPacket) / instrPerSec

	r.BytesPerServerPerSec = r.AggregateTPS * float64(p.BytesPerTxn) * float64(p.Copies) / float64(p.Servers)
	r.BytesPerServerPerDay = r.BytesPerServerPerSec * 86400
	r.TrackWritesPerServer = r.BytesPerServerPerSec / float64(p.Disk.TrackSize)
	logInstr := r.RequestsPerServer*float64(p.InstrPerMessage) + r.TrackWritesPerServer*float64(p.InstrPerTrack)
	r.LogCPU = logInstr / instrPerSec

	// Disk: each buffered track write costs a transfer revolution, an
	// average half-revolution of positioning, and an amortized seek
	// when the stream crosses a cylinder.
	rev := time.Duration(int64(time.Minute) / int64(p.Disk.RPM))
	seekShare := time.Duration(int64(p.Disk.SeekTime) / int64(p.Disk.TracksPerCylinder))
	svc := rev + rev/2 + seekShare
	r.DiskUtil = r.TrackWritesPerServer * svc.Seconds()
	return r
}

// String renders the report as the rows the paper states.
func (r Report) String() string {
	sat := "no"
	if r.NetworkSaturated {
		sat = "YES"
	}
	return fmt.Sprintf(
		"aggregate load:        %8.0f TPS\n"+
			"requests/server:       %8.0f /s\n"+
			"messages/server:       %8.0f /s (in+out)\n"+
			"network load:          %8.2f Mbit/s (single network saturated: %s)\n"+
			"comm CPU/server:       %8.1f %%\n"+
			"log CPU/server:        %8.1f %%\n"+
			"track writes/server:   %8.1f /s\n"+
			"disk utilization:      %8.1f %%\n"+
			"log volume/server:     %8.2f GB/day",
		r.AggregateTPS,
		r.RequestsPerServer,
		r.MessagesPerServer,
		r.NetworkBitsPerSec/1e6, sat,
		r.CommCPU*100,
		r.LogCPU*100,
		r.TrackWritesPerServer,
		r.DiskUtil*100,
		r.BytesPerServerPerDay/1e9,
	)
}
