package capacity

import (
	"testing"
	"time"
)

// TestCapacityAnalysisPaperNumbers checks every quantitative claim in
// Section 4.1 against the closed-form model.
func TestCapacityAnalysisPaperNumbers(t *testing.T) {
	p := PaperParams()

	// "If each log record were written to log servers with individual
	// remote procedure calls each log server would have to process
	// about 2400 incoming or outgoing messages per second."
	ungrouped := p
	ungrouped.Grouping = false
	r := Analyze(ungrouped)
	if r.MessagesPerServer < 2200 || r.MessagesPerServer > 2600 {
		t.Errorf("ungrouped messages/server = %.0f, paper says ~2400", r.MessagesPerServer)
	}

	// "grouping log records until they need to be forced reduces the
	// number of RPCs by a factor of seven. Still, each server must
	// process about 170 RPCs per second."
	grouped := Analyze(p)
	if grouped.RequestsPerServer < 150 || grouped.RequestsPerServer > 190 {
		t.Errorf("grouped RPCs/server = %.0f, paper says ~170", grouped.RequestsPerServer)
	}
	if factor := r.RequestsPerServer / grouped.RequestsPerServer; factor < 6.5 || factor > 7.5 {
		t.Errorf("grouping factor = %.1f, paper says 7", factor)
	}

	// "Fifty client nodes, each using two log servers, will generate
	// around seven million total bits per second of network traffic."
	if grouped.NetworkBitsPerSec < 5.5e6 || grouped.NetworkBitsPerSec > 8.5e6 {
		t.Errorf("network = %.2f Mbit/s, paper says ~7", grouped.NetworkBitsPerSec/1e6)
	}
	// "With the use of multicast, this amount would be approximately
	// halved."
	mc := p
	mc.Multicast = true
	rmc := Analyze(mc)
	ratio := rmc.NetworkBitsPerSec / grouped.NetworkBitsPerSec
	if ratio < 0.45 || ratio > 0.65 {
		t.Errorf("multicast ratio = %.2f, paper says ~0.5", ratio)
	}
	// "This load could saturate many local area networks" (10 Mbit/s
	// networks of the day ran near half capacity already; two are
	// needed for availability and together carry it).
	if grouped.NetworkBitsPerSec > 10e6 {
		t.Errorf("network model exceeds even a single 10 Mbit LAN: %.2f", grouped.NetworkBitsPerSec/1e6)
	}

	// "communication processing will consume less than ten percent of
	// log server CPU capacity."
	if grouped.CommCPU >= 0.10 {
		t.Errorf("comm CPU = %.1f%%, paper says < 10%%", grouped.CommCPU*100)
	}

	// "only ten to twenty percent of a log server's CPU capacity will
	// be used for writing log records to non volatile storage."
	if grouped.LogCPU < 0.05 || grouped.LogCPU > 0.20 {
		t.Errorf("log CPU = %.1f%%, paper says 10-20%%", grouped.LogCPU*100)
	}

	// "Disk utilization will be higher close to fifty percent for slow
	// disks with small tracks."
	if grouped.DiskUtil < 0.35 || grouped.DiskUtil > 0.65 {
		t.Errorf("disk util = %.1f%%, paper says ~50%%", grouped.DiskUtil*100)
	}

	// "approximately ten billion bytes of log data will be written to
	// each log server per day."
	if grouped.BytesPerServerPerDay < 9e9 || grouped.BytesPerServerPerDay > 11e9 {
		t.Errorf("bytes/server/day = %.2e, paper says ~1e10", grouped.BytesPerServerPerDay)
	}
}

func TestAnalyzeFastDiskLowerUtilization(t *testing.T) {
	p := PaperParams()
	slow := Analyze(p)
	p.Disk = FastDisk()
	fast := Analyze(p)
	if fast.DiskUtil >= slow.DiskUtil {
		t.Errorf("fast disk util %.2f >= slow %.2f", fast.DiskUtil, slow.DiskUtil)
	}
}

func TestAnalyzeScalesLinearly(t *testing.T) {
	p := PaperParams()
	base := Analyze(p)
	p.Clients *= 2
	double := Analyze(p)
	if double.RequestsPerServer < base.RequestsPerServer*1.9 {
		t.Errorf("requests did not scale: %.0f vs %.0f", double.RequestsPerServer, base.RequestsPerServer)
	}
	if double.BytesPerServerPerDay < base.BytesPerServerPerDay*1.9 {
		t.Errorf("volume did not scale")
	}
}

func TestReportString(t *testing.T) {
	s := Analyze(PaperParams()).String()
	if len(s) == 0 {
		t.Fatal("empty report")
	}
}

// TestSimulationMatchesAnalysis cross-validates the discrete-event
// model against the closed form within tolerance.
func TestSimulationMatchesAnalysis(t *testing.T) {
	p := PaperParams()
	an := Analyze(p)
	simRep := Simulate(p, 20*time.Second)

	within := func(name string, got, want, tol float64) {
		t.Helper()
		if want == 0 {
			return
		}
		if got < want*(1-tol) || got > want*(1+tol) {
			t.Errorf("%s: simulated %.3f vs analytic %.3f (tol %.0f%%)", name, got, want, tol*100)
		}
	}
	within("requests/server", simRep.RequestsPerServer, an.RequestsPerServer, 0.15)
	within("comm CPU", simRep.CommCPU, an.CommCPU, 0.25)
	within("disk util", simRep.DiskUtil, an.DiskUtil, 0.25)
	if simRep.TxnsCompleted == 0 {
		t.Fatal("no transactions completed")
	}
	wantTPS := float64(p.Clients) * p.TPSPerClient
	gotTPS := float64(simRep.TxnsCompleted) / simRep.Duration.Seconds()
	within("TPS", gotTPS, wantTPS, 0.10)
	// The design point: force latency stays in the low milliseconds
	// because nothing waits for a disk revolution.
	if simRep.MeanForceLatency > 20*time.Millisecond {
		t.Errorf("mean force latency %v: NVRAM buffering should keep this low", simRep.MeanForceLatency)
	}
}

// TestSimulationUngroupedOverloadsCPU shows the bottleneck the paper
// identifies: without grouping, per-record RPCs push the servers far
// beyond the grouped configuration.
func TestSimulationUngroupedOverloadsCPU(t *testing.T) {
	p := PaperParams()
	grouped := Simulate(p, 10*time.Second)
	p.Grouping = false
	ungrouped := Simulate(p, 10*time.Second)
	if ungrouped.CommCPU < grouped.CommCPU*4 {
		t.Errorf("ungrouped comm CPU %.1f%% vs grouped %.1f%%: expected ~7x", ungrouped.CommCPU*100, grouped.CommCPU*100)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	p := PaperParams()
	for i := 0; i < b.N; i++ {
		Analyze(p)
	}
}

func BenchmarkCapacitySimulation(b *testing.B) {
	p := PaperParams()
	for i := 0; i < b.N; i++ {
		Simulate(p, time.Second)
	}
}
