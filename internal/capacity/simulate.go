package capacity

import (
	"fmt"
	"time"

	"distlog/internal/sim"
)

// SimReport is the measured counterpart of Report, produced by running
// the load through a discrete-event model of the whole pipeline:
// client force messages cross a shared network, occupy the server CPU,
// land in the NVRAM staging buffer, and drain to the disk a track at a
// time.
type SimReport struct {
	Duration          time.Duration
	TxnsCompleted     uint64
	RequestsPerServer float64
	CommCPU           float64 // mean across servers
	LogCPU            float64
	DiskUtil          float64
	NetworkUtil       float64
	MeanForceLatency  time.Duration
	MaxForceLatency   time.Duration
}

// Simulate runs the load for the given simulated duration.
func Simulate(p Params, duration time.Duration) SimReport {
	s := sim.New()

	network := s.NewResource("network")
	type serverState struct {
		commCPU *sim.Resource
		logCPU  *sim.Resource
		disk    *sim.Resource
		nvram   int
	}
	servers := make([]*serverState, p.Servers)
	for i := range servers {
		servers[i] = &serverState{
			commCPU: s.NewResource(fmt.Sprintf("comm-cpu-%d", i)),
			logCPU:  s.NewResource(fmt.Sprintf("log-cpu-%d", i)),
			disk:    s.NewResource(fmt.Sprintf("disk-%d", i)),
		}
	}

	instr := func(n int) time.Duration {
		return time.Duration(float64(n) / (p.ServerMIPS * 1e6) * float64(time.Second))
	}
	rev := time.Duration(int64(time.Minute) / int64(p.Disk.RPM))
	seekShare := time.Duration(int64(p.Disk.SeekTime) / int64(p.Disk.TracksPerCylinder))
	trackSvc := rev + rev/2 + seekShare

	msgsPerForce := 1
	if !p.Grouping {
		msgsPerForce = p.RecordsPerTxn
	}
	netSvc := func(bytes int) time.Duration {
		return time.Duration(float64(bytes*8) / (p.NetworkBandwidthMbps * 1e6) * float64(time.Second))
	}
	dataSvc := netSvc(p.BytesPerTxn/msgsPerForce + p.PacketOverhead)
	ackSvc := netSvc(p.PacketOverhead)

	var (
		txns         uint64
		totalLatency time.Duration
		maxLatency   time.Duration
	)

	// Each client targets Copies servers assigned round-robin and
	// submits a force every 1/TPS seconds, phase-shifted so arrivals
	// spread evenly.
	interval := time.Duration(float64(time.Second) / p.TPSPerClient)
	for c := 0; c < p.Clients; c++ {
		c := c
		targets := make([]*serverState, p.Copies)
		for k := 0; k < p.Copies; k++ {
			targets[k] = servers[(c*p.Copies+k)%p.Servers]
		}
		phase := time.Duration(int64(interval) * int64(c) / int64(p.Clients))
		var tick func()
		tick = func() {
			start := s.Now()
			remaining := len(targets) * msgsPerForce
			done := func() {
				remaining--
				if remaining == 0 {
					lat := s.Now() - start
					txns++
					totalLatency += lat
					if lat > maxLatency {
						maxLatency = lat
					}
				}
			}
			for _, srv := range targets {
				srv := srv
				for m := 0; m < msgsPerForce; m++ {
					network.Use(dataSvc, func() {
						srv.commCPU.Use(instr(p.InstrPerPacket), func() {
							srv.logCPU.Use(instr(p.InstrPerMessage), func() {
								srv.nvram += p.BytesPerTxn / msgsPerForce
								for srv.nvram >= p.Disk.TrackSize {
									srv.nvram -= p.Disk.TrackSize
									srv.logCPU.Use(instr(p.InstrPerTrack), nil)
									srv.disk.Use(trackSvc, nil)
								}
								// Ack back across the network: packet
								// handling on the server CPU, then the
								// small acknowledgment packet.
								srv.commCPU.Use(instr(p.InstrPerPacket), func() {
									network.Use(ackSvc, done)
								})
							})
						})
					})
				}
			}
			s.After(interval, tick)
		}
		s.At(phase, tick)
	}

	s.RunUntil(duration)

	rep := SimReport{Duration: duration, TxnsCompleted: txns}
	if txns > 0 {
		rep.MeanForceLatency = totalLatency / time.Duration(txns)
		rep.MaxForceLatency = maxLatency
	}
	var comm, logc, disk float64
	var served uint64
	for _, srv := range servers {
		comm += srv.commCPU.Utilization()
		logc += srv.logCPU.Utilization()
		disk += srv.disk.Utilization()
		served += srv.commCPU.Served()
	}
	n := float64(p.Servers)
	rep.CommCPU = comm / n
	rep.LogCPU = logc / n
	rep.DiskUtil = disk / n
	rep.NetworkUtil = network.Utilization()
	// The comm CPU serves each request twice (packet in, ack out).
	rep.RequestsPerServer = float64(served) / 2 / n / duration.Seconds()
	return rep
}

// String renders the simulation report.
func (r SimReport) String() string {
	return fmt.Sprintf(
		"simulated:             %8v\n"+
			"transactions:          %8d (%.0f TPS)\n"+
			"requests/server:       %8.0f /s\n"+
			"comm CPU/server:       %8.1f %%\n"+
			"log CPU/server:        %8.1f %%\n"+
			"disk utilization:      %8.1f %%\n"+
			"network utilization:   %8.1f %%\n"+
			"force latency:         %8v mean, %v max",
		r.Duration,
		r.TxnsCompleted, float64(r.TxnsCompleted)/r.Duration.Seconds(),
		r.RequestsPerServer,
		r.CommCPU*100,
		r.LogCPU*100,
		r.DiskUtil*100,
		r.NetworkUtil*100,
		r.MeanForceLatency, r.MaxForceLatency,
	)
}
