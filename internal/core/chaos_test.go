package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"distlog/internal/record"
	"distlog/internal/transport"
)

// TestChaosModelBased drives a replicated log through hundreds of
// random operations — writes, forces, reads, client crashes, server
// outages, network faults, truncation — and checks every observable
// against a reference model of the paper's contract:
//
//   - a record whose Force returned is durable and keeps its data
//     forever (unless explicitly truncated);
//   - a record whose write was interrupted by a crash may surface as
//     present-with-its-data or as not-present, but the first answer
//     observed after the crash is the answer forever;
//   - truncated records read as not-present;
//   - LSNs are strictly increasing and never reused across crashes.
func TestChaosModelBased(t *testing.T) {
	steps := 400
	if testing.Short() {
		steps = 100
	}
	for _, seed := range []int64{1, 7, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Deliberately not parallel: each run owns its own cluster,
			// but three clusters' worth of streamers, ackers, and fault
			// timers contending for the CPU turns tight call timeouts
			// into spurious failures on small (single-core CI) machines.
			chaosRun(t, seed, steps)
		})
	}
}

type chaosOutcome struct {
	present bool
	data    string
}

func chaosRun(t *testing.T, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	c := newCluster(t, "s1", "s2", "s3")

	committed := map[record.LSN]string{} // forced: durable forever
	uncertain := map[record.LSN]string{} // written, client crashed before force
	pinned := map[record.LSN]chaosOutcome{}
	var pending []record.LSN // written this life, not yet forced
	pendingData := map[record.LSN]string{}
	var downServer string // at most one server down at a time
	var truncated record.LSN
	var maxLSN record.LSN

	open := func() *ReplicatedLog {
		// Reopening requires M-N+1 = 2 servers; one may be down. With
		// drop faults active, any one of recovery's dozens of
		// synchronous calls can exhaust its retries — a ~percent-level
		// lottery per open that a long chaos run would eventually lose —
		// so recovery itself is retried, exactly as a real recovering
		// client facing a lossy network would keep trying.
		var lastErr error
		for attempt := 0; attempt < 8; attempt++ {
			l, err := c.openClient(1, 2, func(cfg *Config) {
				cfg.Delta = 8
				cfg.CallTimeout = 40 * time.Millisecond
			})
			if err == nil {
				return l
			}
			lastErr = err
		}
		t.Fatalf("recovery did not complete in 8 attempts: %v", lastErr)
		return nil
	}
	l := open()
	defer func() { l.Close() }()

	readAndCheck := func(lsn record.LSN) {
		data, err := l.ReadLog(lsn)
		if lsn < truncated {
			// Truncation is best-effort space management: a server that
			// was unreachable when the prefix was discarded may still
			// serve the original record after a restart. The answer must
			// be the original data or not-present — never anything else.
			if err == nil {
				if want, ok := committed[lsn]; ok && string(data) != want {
					t.Fatalf("ReadLog(%d) below truncation = %q, original was %q", lsn, data, want)
				}
				return
			}
			if errors.Is(err, ErrNotPresent) || errors.Is(err, ErrUnavailable) {
				return
			}
			t.Fatalf("ReadLog(%d) below truncation: %v", lsn, err)
		}
		switch {
		case err == nil:
			if want, ok := committed[lsn]; ok {
				if string(data) != want {
					t.Fatalf("ReadLog(%d) = %q, committed as %q", lsn, data, want)
				}
				return
			}
			if want, ok := pendingData[lsn]; ok {
				if string(data) != want {
					t.Fatalf("ReadLog(%d) = %q, pending as %q", lsn, data, want)
				}
				return
			}
			if want, ok := uncertain[lsn]; ok {
				// First observation pins the outcome.
				if pin, ok := pinned[lsn]; ok {
					if !pin.present || pin.data != string(data) {
						t.Fatalf("ReadLog(%d) = %q, pinned outcome %+v", lsn, data, pin)
					}
				} else {
					if string(data) != want {
						t.Fatalf("ReadLog(%d) = %q, uncertain write was %q", lsn, data, want)
					}
					pinned[lsn] = chaosOutcome{present: true, data: string(data)}
				}
				return
			}
			t.Fatalf("ReadLog(%d) returned %q for an LSN the model never wrote", lsn, data)
		case errors.Is(err, ErrNotPresent):
			if _, ok := committed[lsn]; ok && lsn >= truncated {
				t.Fatalf("committed record %d reported not present", lsn)
			}
			if _, ok := pendingData[lsn]; ok {
				t.Fatalf("pending record %d of the live client reported not present", lsn)
			}
			if _, ok := uncertain[lsn]; ok && lsn >= truncated {
				if pin, ok := pinned[lsn]; ok {
					if pin.present {
						t.Fatalf("record %d flip-flopped: pinned present, now not present", lsn)
					}
				} else {
					pinned[lsn] = chaosOutcome{present: false}
				}
			}
		case errors.Is(err, ErrBeyondEnd):
			if lsn <= maxLSN && lsn >= truncated {
				// The log's end can only move past writes we made; a
				// written LSN must never be beyond the end... except
				// LSNs the recovery procedure skipped are impossible
				// here since maxLSN tracks our writes.
				t.Fatalf("ReadLog(%d) beyond end, but maxLSN is %d", lsn, maxLSN)
			}
		case errors.Is(err, ErrUnavailable):
			// Acceptable while a holder is down; no model update.
		default:
			t.Fatalf("ReadLog(%d): %v", lsn, err)
		}
	}

	randomKnownLSN := func() (record.LSN, bool) {
		var all []record.LSN
		for lsn := range committed {
			all = append(all, lsn)
		}
		for lsn := range uncertain {
			all = append(all, lsn)
		}
		all = append(all, pending...)
		if len(all) == 0 {
			return 0, false
		}
		return all[rng.Intn(len(all))], true
	}

	for step := 0; step < steps; step++ {
		switch r := rng.Float64(); {
		case r < 0.40: // write
			data := fmt.Sprintf("seed%d-step%d", seed, step)
			lsn, err := l.WriteLog([]byte(data))
			if err != nil {
				// A δ-triggered implicit force can fail transiently
				// while servers are down or the network is lossy; no
				// LSN was assigned and the client remains usable.
				if errors.Is(err, ErrUnavailable) {
					continue
				}
				t.Fatalf("step %d: WriteLog: %v", step, err)
			}
			if lsn <= maxLSN {
				t.Fatalf("step %d: LSN %d reused (max %d)", step, lsn, maxLSN)
			}
			maxLSN = lsn
			pending = append(pending, lsn)
			pendingData[lsn] = data
			// δ-bounded implicit forces may have made older pending
			// records durable; the model is conservative and treats
			// them as uncertain until an explicit Force.
		case r < 0.55: // force
			if err := l.Force(); err != nil {
				// Transient unavailability: the records stay
				// outstanding and a later force retries them.
				if errors.Is(err, ErrUnavailable) {
					continue
				}
				t.Fatalf("step %d: Force: %v", step, err)
			}
			for _, lsn := range pending {
				committed[lsn] = pendingData[lsn]
				delete(pendingData, lsn)
			}
			pending = pending[:0]
		case r < 0.80: // read
			if lsn, ok := randomKnownLSN(); ok {
				readAndCheck(lsn)
			}
		case r < 0.88: // client crash + recovery
			l.Close()
			for _, lsn := range pending {
				uncertain[lsn] = pendingData[lsn]
				delete(pendingData, lsn)
			}
			pending = pending[:0]
			l = open()
			if eol := l.EndOfLog(); eol < maxLSN {
				t.Fatalf("step %d: EndOfLog %d below last written %d", step, eol, maxLSN)
			} else {
				maxLSN = eol // recovery's not-present markers consumed LSNs
			}
		case r < 0.94: // toggle a server
			if downServer == "" {
				downServer = c.names[rng.Intn(len(c.names))]
				c.stop(downServer)
			} else {
				c.start(downServer)
				downServer = ""
			}
		case r < 0.97: // toggle network faults
			if rng.Intn(2) == 0 {
				c.net.SetFaults(transport.Faults{DropProb: 0.10, DupProb: 0.05})
			} else {
				c.net.SetFaults(transport.Faults{})
			}
		default: // truncate a prefix
			if maxLSN > 16 {
				cut := record.LSN(rng.Int63n(int64(maxLSN)))
				if err := l.TruncatePrefix(cut); err != nil && !errors.Is(err, ErrUnavailable) {
					t.Fatalf("step %d: TruncatePrefix(%d): %v", step, cut, err)
				}
				if got := l.Truncated(); got > truncated {
					truncated = got
				}
			}
		}
	}

	// Settle: clear faults, restart any down server, force, and sweep.
	c.net.SetFaults(transport.Faults{})
	if downServer != "" {
		c.start(downServer)
	}
	var ferr error
	for attempt := 0; attempt < 3; attempt++ {
		if ferr = l.Force(); ferr == nil {
			break
		}
	}
	if ferr != nil {
		t.Fatalf("final force: %v", ferr)
	}
	for _, lsn := range pending {
		committed[lsn] = pendingData[lsn]
	}
	for lsn, want := range committed {
		if lsn < truncated {
			continue
		}
		data, err := l.ReadLog(lsn)
		if err != nil || string(data) != want {
			t.Fatalf("final sweep: ReadLog(%d) = %q, %v; want %q", lsn, data, err, want)
		}
	}
	// One more restart: every pinned outcome must hold.
	l.Close()
	l = open()
	for lsn, pin := range pinned {
		if lsn < truncated || lsn < l.Truncated() {
			continue
		}
		data, err := l.ReadLog(lsn)
		switch {
		case err == nil:
			if !pin.present || pin.data != string(data) {
				t.Fatalf("after final restart: ReadLog(%d) = %q, pinned %+v", lsn, data, pin)
			}
		case errors.Is(err, ErrNotPresent):
			if pin.present {
				t.Fatalf("after final restart: record %d vanished; pinned %+v", lsn, pin)
			}
		default:
			t.Fatalf("after final restart: ReadLog(%d): %v", lsn, err)
		}
	}
}
