package core

import (
	"distlog/internal/record"
	"distlog/internal/wire"
)

// Checkpoint implements the Section 5.3 checkpoint protocol in one
// call: write a checkpoint record (data is the recovery manager's
// checkpoint payload — typically a marker, the dirty-page state
// itself usually lives elsewhere), force it stable, and advance the
// truncation point past everything before it, since recovery now
// replays from the checkpoint record onward.
//
// The truncation-point advance is reported to the servers with
// fire-and-forget TTruncatePoint messages rather than the synchronous
// TTruncateReq: reclamation is a space optimization, so a checkpoint
// must not fail just because a log server is down — a server that
// misses the report reclaims at the next checkpoint. The point is
// clamped exactly as in TruncatePrefix (the δ-record tail and
// outstanding records are always retained).
//
// Returns the checkpoint record's LSN: the position recovery replay
// is bounded by.
func (l *ReplicatedLog) Checkpoint(data []byte) (record.LSN, error) {
	lsn, err := l.ForceLog(data)
	if err != nil {
		return 0, err
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return lsn, nil
	}
	before := lsn
	limit := l.nextLSN - record.LSN(l.cfg.Delta)
	if len(l.outstanding) > 0 && l.outstanding[0].LSN < limit {
		limit = l.outstanding[0].LSN
	}
	if before > limit {
		before = limit
	}
	if before <= l.truncated || before <= 1 {
		l.mu.Unlock()
		l.m.checkpoints.Add(1)
		return lsn, nil
	}
	l.truncated = before
	l.readCache.removeBelow(before)
	servers := append([]string(nil), l.cfg.Servers...)
	l.mu.Unlock()

	payload := (&wire.LSNPayload{LSN: before}).Encode()
	for _, addr := range servers {
		sess, err := l.dial(addr)
		if err != nil {
			continue // fire-and-forget: the server reclaims later
		}
		sess.peer.Send(wire.TTruncatePoint, 0, payload)
	}
	l.m.checkpoints.Add(1)
	return lsn, nil
}
