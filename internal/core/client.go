// Package core implements the paper's primary contribution: the
// replicated log of Section 3 — an append-only sequence of records
// identified by increasing LSNs, replicated on N of M log server
// nodes by a specialized single-client quorum consensus algorithm.
//
// WriteLog operations buffer and group records (Section 4.1's seven-
// fold RPC reduction), stream them asynchronously, and complete on
// Force when N servers have acknowledged. ReadLog operations use the
// interval lists merged at initialization — the one-time vote — to
// read from a single server. Client initialization implements the
// crash-recovery procedure of Section 3.1.2: merge interval lists from
// at least M-N+1 servers, obtain a fresh epoch from the replicated
// identifier generator, re-copy the doubtful tail of δ records under
// the new epoch, write δ not-present records after it, and atomically
// install the copies.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distlog/internal/faultpoint"
	"distlog/internal/idgen"
	"distlog/internal/loadassign"
	"distlog/internal/record"
	"distlog/internal/telemetry"
	"distlog/internal/transport"
	"distlog/internal/wire"
)

// Public errors.
var (
	// ErrNotPresent is signaled when the requested record is marked not
	// present (it was superseded by crash recovery).
	ErrNotPresent = errors.New("core: log record not present")
	// ErrBeyondEnd is signaled when the requested LSN is beyond the end
	// of the log.
	ErrBeyondEnd = errors.New("core: LSN beyond end of log")
	// ErrUnavailable is returned when no server holding the record (or
	// accepting writes) can be reached.
	ErrUnavailable = errors.New("core: no log server available")
	// ErrInitQuorum is returned when fewer than M-N+1 servers answered
	// IntervalList during initialization.
	ErrInitQuorum = errors.New("core: cannot gather M-N+1 interval lists")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("core: replicated log closed")
)

// Config configures a ReplicatedLog.
type Config struct {
	// ClientID identifies this transaction-processing node. A
	// replicated log has exactly one client.
	ClientID record.ClientID
	// Servers are the M log server addresses.
	Servers []string
	// N is the number of servers each record is written to (2 or 3 in
	// practice, per Section 3.2).
	N int
	// Delta (δ) bounds the number of records that may be partially
	// written when the client crashes: the client never has more than
	// Delta unacknowledged records outstanding. Default 16.
	Delta int
	// Endpoint is the client's network attachment.
	Endpoint transport.Endpoint
	// CallTimeout bounds each synchronous call attempt and each force
	// acknowledgment wait. Default 250ms.
	CallTimeout time.Duration
	// Retries is how many times lost calls and forces are retried
	// before the server is presumed failed. Default 3.
	Retries int
	// FlushBatch is the number of buffered records that triggers an
	// asynchronous WriteLog message before any force. Zero disables the
	// opportunistic flush (records stream on Force; a packet-sized batch
	// is still computed per message).
	FlushBatch int
	// WriteWindow is the sliding send window of the streaming write
	// protocol (Section 4.2, Figure 4.1): how many record frames may be
	// in flight — sent but not yet covered by the server's cumulative
	// appended acknowledgment — per write-set server. The effective
	// window is halved on congestion signals (TBusy NACKs, timeouts)
	// and ramps back additively. Default 32.
	WriteWindow int
	// FlushInterval is the streamer's adaptive-packing deadline: a
	// buffered record is transmitted no later than this after it was
	// written, even if its frame is not yet full. Default 200µs.
	FlushInterval time.Duration
	// DisableWriteStream turns the background streaming pipeline off:
	// records then reach the servers only through opportunistic
	// FlushBatch flushes and force rounds (the pre-streaming write
	// path), and the δ bound triggers synchronous forces.
	DisableWriteStream bool
	// OnError, when set, is invoked (once per error episode, on its own
	// goroutine) when the asynchronous write pipeline records a failure
	// — the health callback counterpart of Err. A subsequent successful
	// Force clears the episode.
	OnError func(error)
	// Window is the moving-window flow-control allocation granted to
	// each server. Zero means wire.DefaultWindow (512 packets).
	Window uint64
	// OverAllocPause is how long a sender pauses before exceeding its
	// allocation. Zero means wire.DefaultOverAllocPause (2s).
	OverAllocPause time.Duration
	// ReadAhead is the cursor prefetch window: how many range-fetch
	// tasks an open cursor keeps in flight ahead of the consumer.
	// Default 8.
	ReadAhead int
	// ScanSpan is how many LSNs one cursor fetch task covers; tasks are
	// additionally clamped at holder-segment boundaries so each task
	// has a single holder set. Default 128.
	ScanSpan int
	// StreamPackets is the reply-packet budget a cursor attaches to each
	// ReadStream request (the server clamps it to its own maximum).
	// Default 4.
	StreamPackets int
	// Streams is K, the number of independent log streams this client
	// writes (parallel multi-stream logging). Each stream owns its own
	// LSN sequence, send window, and per-server sessions, all sharing
	// the one Endpoint; commit-class records written through
	// Stream.WriteCommit carry a dependency vector over the other
	// streams so recovery can replay the streams in parallel and merge
	// by dependency. Zero means 1 (the classic single-stream log);
	// every Log method then behaves exactly as before. Values above 1
	// require ClientID < 2^56 (the top byte derives per-stream
	// identities).
	Streams int
	// ConnID overrides the connection incarnation identifier (tests);
	// 0 derives one from the clock and a process-wide counter.
	ConnID uint64
	// EpochReps overrides where epoch numbers come from. Nil uses the
	// representatives hosted on the log servers themselves.
	EpochReps []idgen.Representative
	// Telemetry receives the client's metrics (and, if the registry has
	// tracing enabled, its LSN-lifecycle events). Nil directs metrics to
	// a private registry so Stats() keeps working; per-operation cost is
	// identical either way.
	Telemetry *telemetry.Registry
}

// Validate checks the configuration and fills in the documented
// defaults for zero-valued fields. Open calls it; callers building
// configurations programmatically may call it early to surface errors
// before dialing anything. Nonsensical values — negative depths,
// timeouts, or windows — are rejected rather than silently defaulted.
func (c *Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("core: N = %d", c.N)
	}
	if len(c.Servers) < c.N {
		return fmt.Errorf("core: %d servers < N = %d", len(c.Servers), c.N)
	}
	if c.Endpoint == nil {
		return fmt.Errorf("core: no endpoint")
	}
	switch {
	case c.Delta < 0:
		return fmt.Errorf("core: negative Delta %d", c.Delta)
	case c.CallTimeout < 0:
		return fmt.Errorf("core: negative CallTimeout %v", c.CallTimeout)
	case c.Retries < 0:
		return fmt.Errorf("core: negative Retries %d", c.Retries)
	case c.FlushBatch < 0:
		return fmt.Errorf("core: negative FlushBatch %d", c.FlushBatch)
	case c.WriteWindow < 0:
		return fmt.Errorf("core: negative WriteWindow %d", c.WriteWindow)
	case c.FlushInterval < 0:
		return fmt.Errorf("core: negative FlushInterval %v", c.FlushInterval)
	case c.OverAllocPause < 0:
		return fmt.Errorf("core: negative OverAllocPause %v", c.OverAllocPause)
	case c.ReadAhead < 0:
		return fmt.Errorf("core: negative ReadAhead %d", c.ReadAhead)
	case c.ScanSpan < 0:
		return fmt.Errorf("core: negative ScanSpan %d", c.ScanSpan)
	case c.StreamPackets < 0:
		return fmt.Errorf("core: negative StreamPackets %d", c.StreamPackets)
	case c.Streams < 0:
		return fmt.Errorf("core: negative Streams %d", c.Streams)
	}
	if c.Streams == 0 {
		c.Streams = 1
	}
	if c.Streams > maxStreams {
		return fmt.Errorf("core: Streams %d exceeds maximum %d", c.Streams, maxStreams)
	}
	if c.Streams > 1 && uint64(c.ClientID) >= 1<<56 {
		return fmt.Errorf("core: ClientID %d too large for multi-stream derivation (needs the top byte)", c.ClientID)
	}
	if c.Delta == 0 {
		c.Delta = 16
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 250 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.WriteWindow == 0 {
		c.WriteWindow = 32
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 200 * time.Microsecond
	}
	if c.ReadAhead == 0 {
		c.ReadAhead = 8
	}
	if c.ScanSpan == 0 {
		c.ScanSpan = 128
	}
	if c.StreamPackets == 0 {
		c.StreamPackets = 4
	}
	return nil
}

var connIDCounter atomic.Uint64

// Stats is a snapshot of client-side protocol activity. It is a view
// over the telemetry counters (see metrics.go); the counters are
// incremented under the log's mutex, so a Stats snapshot is exact and
// internally consistent.
type Stats struct {
	Writes          uint64
	Forces          uint64 // Force calls (including δ-triggered implicit forces)
	ForceRounds     uint64 // protocol rounds actually executed (≤ Forces)
	GroupCommits    uint64 // Force calls satisfied by riding another caller's round
	Reads           uint64
	ReadCacheHits   uint64
	ReadCacheMisses uint64 // reads that went to a server (or synthesized a marker)
	Failovers       uint64
	Migrations      uint64 // completed write-set migrations (see Migrate)
	Resends         uint64
	// Cursor activity. These are incremented by concurrent prefetch
	// tasks (off the client mutex), so they are monotone but not
	// transactionally consistent with the write-path counters above.
	CursorStreams  uint64 // ReadStream requests issued
	StreamRestarts uint64 // mid-stream holder switches after an abnormal stream end
	PrefetchHits   uint64 // cursor advanced onto a task that had already completed
	PrefetchWaits  uint64 // cursor had to block on an in-flight task
	// Streaming-write activity (see sendwindow.go). Incremented off the
	// client mutex like the cursor family: monotone, not transactionally
	// consistent with the write-path counters.
	StreamFrames   uint64 // record frames sent by the streamer goroutine
	StreamBusy     uint64 // TBusy congestion NACKs received
	StreamBackoffs uint64 // multiplicative window decreases (Busy or timeout)
	StreamTimeouts uint64 // retransmission timeouts detected by the streamer
}

// ReplicatedLog is a replicated log handle. It is safe for concurrent
// use by the goroutines of its single owning client node.
type ReplicatedLog struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	writeSet []string
	epoch    record.Epoch
	nextLSN  record.LSN
	// outstanding holds every record not yet acknowledged by all
	// write-set servers, in LSN order. Its length never exceeds Delta.
	outstanding []record.Record
	holders     *holders
	readCache   *readCache
	truncated   record.LSN // records below were discarded via TruncatePrefix
	m           *clientMetrics
	closed      bool
	// writeCond wakes δ-bounded writers when background release (or a
	// force round) shrinks the outstanding buffer.
	writeCond *sync.Cond
	// asyncErr is the sticky first error of the asynchronous write
	// pipeline (streamer sends, opportunistic flushes); see Err. A
	// successful Force clears it.
	asyncErr error
	// Group-commit state (see forceround.go): the round whose
	// acknowledgment waits are in flight, and the single queued round
	// that callers beyond curRound's target coalesce onto. Rounds are
	// serialized, so one scratch waiter set and wait group are reused
	// across every round instead of being allocated per force.
	curRound     *forceRound
	nextRound    *forceRound
	roundWaiters []roundWaiter
	roundWG      sync.WaitGroup

	// Write-set migration state (see migrate.go). migrateMu serializes
	// Migrate calls against each other; migrating — set under l.mu —
	// holds new force rounds at the Force entry gate while the in-flight
	// ones drain and the set is swapped.
	migrateMu sync.Mutex
	migrating bool

	// Streamer wakeup and shutdown (see sendwindow.go). streamKick is
	// 1-buffered: a pending kick covers any number of new ones.
	// roundActive mirrors curRound != nil for lock-free readers: while a
	// force round is in flight its acknowledgments need not wake the
	// streamer (the round releases the buffer itself and kicks once at
	// completion), which keeps the forced-write fast path free of
	// per-ack goroutine wakeups.
	// streamForcing overrides that suppression while any session has a
	// pending force point: a window-capped force depends on mid-round
	// acks clocking the remaining frames out, so those acks must kick.
	// Set under l.mu when a force point is planted, cleared by the
	// streamer once no session has one pending.
	streamKick    chan struct{}
	streamQuit    chan struct{}
	roundActive   atomic.Bool
	streamForcing atomic.Bool

	pumpWG sync.WaitGroup

	// Multi-stream state (see streams.go). On a parent (stream 0) of a
	// K-stream log, streams[0] == l and streams[1..K-1] are the child
	// per-stream logs, and childByID routes received packets to them by
	// their derived ClientIDs; on a child, parent points back and shared
	// marks that the endpoint and pump belong to the parent. lastLSN
	// publishes the stream's highest assigned LSN for dependency-vector
	// stamping (read lock-free by the other streams' WriteCommit).
	streams   []*ReplicatedLog
	childByID map[record.ClientID]*ReplicatedLog
	parent    *ReplicatedLog
	streamIdx int
	shared    bool
	lastLSN   atomic.Uint64
}

// Open dials the log servers, runs the client initialization and
// crash-recovery procedure of Section 3.1.2, and returns a usable log.
// With cfg.Streams = K > 1 it additionally opens K-1 child per-stream
// logs (each running its own Section 3.1.2 recovery under a derived
// ClientID) sharing the one endpoint; see streams.go.
func Open(cfg Config) (*ReplicatedLog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ConnID == 0 {
		cfg.ConnID = uint64(time.Now().UnixNano())<<8 | (connIDCounter.Add(1) & 0xFF)
	}
	l := newLog(cfg, "")
	l.pumpWG.Add(1)
	go l.pump()
	if !cfg.DisableWriteStream {
		l.pumpWG.Add(1)
		go l.streamer()
	}

	// Stream 0 (the parent) and the K-1 children recover concurrently:
	// the children are registered for packet routing first, then all K
	// initializations proceed at once, so a K-stream open costs one
	// stream's round trips, not K of them.
	childDone := make(chan error, 1)
	if cfg.Streams > 1 {
		l.registerStreams()
		go func() { childDone <- l.initializeStreams() }()
	} else {
		childDone <- nil
	}
	err := l.initialize()
	childErr := <-childDone
	if err == nil {
		err = childErr
	}
	if err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// newLog constructs a ReplicatedLog without starting its goroutines or
// running recovery. nodeSuffix distinguishes per-stream metrics nodes.
func newLog(cfg Config, nodeSuffix string) *ReplicatedLog {
	l := &ReplicatedLog{
		cfg:        cfg,
		sessions:   make(map[string]*session),
		readCache:  newReadCache(readCacheCap),
		m:          newClientMetrics(cfg.Telemetry, cfg.Endpoint.Addr()+nodeSuffix),
		streamKick: make(chan struct{}, 1),
		streamQuit: make(chan struct{}),
	}
	l.writeCond = sync.NewCond(&l.mu)
	return l
}

// pump is the receive loop: it demultiplexes packets to sessions. On a
// multi-stream parent it first routes by the packet's ClientID — server
// replies echo the client identity of the session they answer, so a
// packet for a child stream's derived identity is handed to that child
// log's session table.
func (l *ReplicatedLog) pump() {
	defer l.pumpWG.Done()
	for {
		raw, err := l.cfg.Endpoint.Recv(0)
		if err != nil {
			return
		}
		pkt, err := wire.Decode(raw.Data)
		if err != nil {
			continue // corrupt: end-to-end check drops it
		}
		target := l
		if pkt.ClientID != l.cfg.ClientID {
			l.mu.Lock()
			target = l.childByID[pkt.ClientID]
			l.mu.Unlock()
			if target == nil {
				continue
			}
		}
		target.mu.Lock()
		sess := target.sessions[raw.From]
		target.mu.Unlock()
		if sess != nil {
			sess.deliver(&pkt)
		}
	}
}

// dial returns the session for addr, creating and handshaking it if
// needed. A session that was reset is re-dialed with a fresh
// incarnation. Concurrent dialers of one address share a single
// handshake: the goroutine that created the session runs it, everyone
// else blocks on the session's ready gate — a caller is never handed a
// session whose handshake is still in flight (it would stream records
// on an unestablished peer) or about to fail and be deleted.
func (l *ReplicatedLog) dial(addr string) (*session, error) {
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return nil, ErrClosed
		}
		if sess := l.sessions[addr]; sess != nil {
			l.mu.Unlock()
			<-sess.ready // handshake settled, one way or the other
			sess.mu.Lock()
			usable := sess.hsErr == nil && !sess.reset && !sess.closed
			sess.mu.Unlock()
			if usable {
				return sess, nil
			}
			// Dead (reset, closed, or failed handshake): retire it and
			// retry with a fresh incarnation. Remove only the session we
			// inspected — a concurrent dialer may have replaced it
			// already.
			l.mu.Lock()
			if l.sessions[addr] == sess {
				delete(l.sessions, addr)
			}
			l.mu.Unlock()
			continue
		}
		connID := l.cfg.ConnID + connIDCounter.Add(1)
		sess := newSession(l.cfg.Endpoint, addr, l.cfg.ClientID, connID,
			l.cfg.Window, l.cfg.OverAllocPause, l.cfg.CallTimeout, l.cfg.Retries)
		if flipper, ok := l.cfg.Endpoint.(interface{ Flip() }); ok {
			sess.onRetry = flipper.Flip
		}
		// Window and wakeups are wired before the session is published:
		// deliver reads the callbacks without sess.mu.
		sess.win = sendWindow{cwnd: l.cfg.WriteWindow, max: l.cfg.WriteWindow}
		if !l.cfg.DisableWriteStream {
			sess.onAck = l.streamAckEvent
			sess.onBusy = l.streamBusyEvent
		}
		l.sessions[addr] = sess
		l.mu.Unlock()

		err := sess.handshake()
		sess.mu.Lock()
		sess.hsErr = err
		sess.mu.Unlock()
		close(sess.ready)
		if err != nil {
			l.mu.Lock()
			if l.sessions[addr] == sess {
				delete(l.sessions, addr)
			}
			l.mu.Unlock()
			sess.close()
			return nil, err
		}
		l.reportFloor(sess)
		return sess, nil
	}
}

// reportFloor re-asserts the client's truncation point on a freshly
// established session. TTruncatePoint is fire-and-forget: a server
// that was down (or rebooting) when Checkpoint reported the point
// missed it, and without this it would hold — and archive — dead
// records until the next checkpoint happens to run. Sent on every
// (re)handshake, the floor survives any pattern of server reboots.
func (l *ReplicatedLog) reportFloor(sess *session) {
	l.mu.Lock()
	floor := l.truncated
	l.mu.Unlock()
	if floor <= 1 {
		return
	}
	sess.peer.Send(wire.TTruncatePoint, 0, (&wire.LSNPayload{LSN: floor}).Encode())
}

// initialize runs the Section 3.1.2 client initialization.
func (l *ReplicatedLog) initialize() error {
	// 1. Gather interval lists from at least M-N+1 servers.
	need := len(l.cfg.Servers) - l.cfg.N + 1
	lists := make(map[string][]record.Interval)
	var live []*session
	for _, addr := range l.cfg.Servers {
		sess, err := l.dial(addr)
		if err != nil {
			continue
		}
		resp, err := sess.call(wire.TIntervalListReq, (&wire.IntervalListPayload{}).Encode())
		if err != nil {
			continue
		}
		p, err := wire.DecodeIntervalListPayload(resp.Payload)
		if err != nil {
			continue
		}
		lists[addr] = p.Intervals
		live = append(live, sess)
	}
	if len(lists) < need {
		return fmt.Errorf("%w: have %d, need %d", ErrInitQuorum, len(lists), need)
	}
	merged := record.Merge(lists)

	// 2. Obtain a new epoch number, higher than any used before.
	reps := l.cfg.EpochReps
	if reps == nil {
		for _, addr := range l.cfg.Servers {
			reps = append(reps, &remoteRep{log: l, addr: addr})
		}
	}
	gen, err := idgen.New(reps...)
	if err != nil {
		return err
	}
	epoch, err := gen.NewID()
	if err != nil {
		return fmt.Errorf("core: obtaining new epoch: %w", err)
	}

	l.mu.Lock()
	l.holders = newHolders(merged)
	l.epoch = record.Epoch(epoch)
	l.mu.Unlock()

	// 3. Choose the write set: N live servers ranked by rendezvous
	// hashing over the (client, server) pair, so a population of
	// clients spreads its load across the M servers (the simple
	// decentralized assignment Section 5.4 anticipates) and a
	// membership change re-maps only the clients of the changed server.
	// The ranking is shared with the loadassign simulation and the live
	// rebalancer, so all three agree on where a client belongs.
	if len(live) < l.cfg.N {
		return fmt.Errorf("%w: only %d servers reachable, need N=%d", ErrUnavailable, len(live), l.cfg.N)
	}
	liveAddrs := make([]string, len(live))
	for i, sess := range live {
		liveAddrs[i] = sess.addr
	}
	writeSet := loadassign.Pick(uint64(l.cfg.ClientID), l.cfg.N, liveAddrs)

	// 4. Crash recovery: the most recent δ records are doubtful (the
	// previous incarnation may have partially written any of them).
	// Copy each under the new epoch — substituting a not-present marker
	// for positions never completed — then write δ not-present records
	// above the old end of log, and install everything atomically.
	high := merged.High()
	delta := record.LSN(l.cfg.Delta)
	copyLow := record.LSN(1)
	if high > delta {
		copyLow = high - delta + 1
	}
	var staged []record.Record
	for lsn := copyLow; lsn <= high; lsn++ {
		if merged.Covered(lsn) {
			rec, err := l.fetchRecord(lsn, merged.Servers(lsn), merged.EpochAt(lsn))
			if err != nil {
				return fmt.Errorf("core: recovery read of LSN %d: %w", lsn, err)
			}
			rec.Epoch = l.epoch
			staged = append(staged, rec)
		} else {
			staged = append(staged, record.Record{LSN: lsn, Epoch: l.epoch, Present: false})
		}
	}
	for lsn := high + 1; lsn <= high+delta; lsn++ {
		staged = append(staged, record.Record{LSN: lsn, Epoch: l.epoch, Present: false})
	}

	for _, addr := range writeSet {
		sess, err := l.dial(addr)
		if err != nil {
			return fmt.Errorf("core: recovery dial %s: %w", addr, err)
		}
		if err := l.sendCopies(sess, staged); err != nil {
			return fmt.Errorf("core: CopyLog to %s: %w", addr, err)
		}
		faultpoint.Hit(FPInitCopied)
		installPayload := (&wire.InstallPayload{Epoch: l.epoch}).Encode()
		if _, err := sess.call(wire.TInstallCopiesReq, installPayload); err != nil {
			return fmt.Errorf("core: InstallCopies on %s: %w", addr, err)
		}
		faultpoint.Hit(FPInitInstalled)
	}

	l.mu.Lock()
	l.writeSet = writeSet
	if len(staged) > 0 {
		l.holders.add(l.epoch, staged[0].LSN, staged[len(staged)-1].LSN, writeSet)
	}
	l.nextLSN = high + delta + 1
	l.lastLSN.Store(uint64(high + delta))
	l.mu.Unlock()
	return nil
}

// sendCopies streams staged recovery records to one server in packet-
// sized CopyLog calls. The record-aware call path keeps the frame
// version honest when re-copied records carry dependency vectors.
func (l *ReplicatedLog) sendCopies(sess *session, staged []record.Record) error {
	for len(staged) > 0 {
		n := wire.FitRecords(staged)
		if n == 0 {
			return fmt.Errorf("core: recovery record too large for a packet")
		}
		if _, err := sess.callRecords(wire.TCopyLogReq, l.epoch, staged[:n]); err != nil {
			return err
		}
		staged = staged[n:]
	}
	return nil
}

// fetchRecord reads one record, trying each holder (and verifying the
// returned epoch so a stale lower-epoch copy is never accepted).
func (l *ReplicatedLog) fetchRecord(lsn record.LSN, servers []string, wantEpoch record.Epoch) (record.Record, error) {
	for _, addr := range servers {
		sess, err := l.dial(addr)
		if err != nil {
			continue
		}
		req := wire.LSNPayload{LSN: lsn}
		resp, err := sess.call(wire.TReadForwardReq, req.Encode())
		if err != nil {
			continue
		}
		p, err := wire.DecodeRecordsPayload(resp.Payload)
		if err != nil || len(p.Records) == 0 {
			continue
		}
		for _, rec := range p.Records {
			if rec.LSN == lsn && rec.Epoch >= wantEpoch {
				return rec, nil
			}
		}
	}
	return record.Record{}, fmt.Errorf("%w: LSN %d on %v", ErrUnavailable, lsn, servers)
}

// Epoch returns the epoch number of this client incarnation.
func (l *ReplicatedLog) Epoch() record.Epoch {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// EndOfLog returns the LSN of the most recently written log record
// (Section 3.1). Not-present markers written by recovery count as
// records; readers skip them via ErrNotPresent.
func (l *ReplicatedLog) EndOfLog() record.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// ClientID returns the identity this log writes under.
func (l *ReplicatedLog) ClientID() record.ClientID { return l.cfg.ClientID }

// WriteSet returns the addresses currently receiving this log's
// records.
func (l *ReplicatedLog) WriteSet() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.writeSet))
	copy(out, l.writeSet)
	return out
}

// Stats returns a snapshot of client counters.
func (l *ReplicatedLog) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m.statsLocked()
}

// Err reports the health of the asynchronous write pipeline: the first
// error recorded by a background send (streamer frame, opportunistic
// flush) since the last successful Force, or nil. The pipeline keeps
// retrying after an error — a non-nil Err means durability progress is
// in doubt, not that the log is dead — and a Force that completes
// clears the episode, because its acknowledgments subsume everything
// the background path was trying to do.
func (l *ReplicatedLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.asyncErr
}

// noteAsyncErrLocked records a background write failure: the first
// error of an episode sticks for Err and fires the OnError health
// callback on its own goroutine (never under l.mu). Caller holds l.mu.
func (l *ReplicatedLog) noteAsyncErrLocked(err error) {
	if err == nil || l.asyncErr != nil {
		return
	}
	l.asyncErr = err
	if cb := l.cfg.OnError; cb != nil {
		go cb(err)
	}
}

// WriteLog appends a record to the replicated log and returns its LSN.
// The record is buffered — grouped with its neighbours into a single
// network message — and becomes stable on the next Force (or when the
// group is implicitly forced because δ records are outstanding).
//
// The log retains data (without copying) until the record has been
// acknowledged by all N servers; the caller must not modify the slice
// after the call.
func (l *ReplicatedLog) WriteLog(data []byte) (record.LSN, error) {
	return l.writeLog(data, nil, true)
}

// writeLog appends one record. kick wakes the streaming pipeline for
// the new record; ForceLog passes false — its own synchronous Force
// flushes the buffer immediately, and waking the streamer to hold a
// partial frame that the force will have transmitted by the time the
// flush deadline fires is pure overhead on the forced-write path.
// deps, when non-nil, is the dependency vector stamped on the record
// (Stream.WriteCommit); ordinary writes pass nil.
func (l *ReplicatedLog) writeLog(data []byte, deps []record.StreamDep, kick bool) (record.LSN, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	// δ-bound: never let more than Delta records be outstanding. The
	// check must be a loop — Force releases l.mu, and by the time it is
	// re-acquired other writers may have refilled the buffer to Delta
	// again; appending after a plain `if` would let concurrent writers
	// push past δ and void the recovery guarantee (recovery re-copies
	// only the last δ records).
	for len(l.outstanding) >= l.cfg.Delta {
		if !l.cfg.DisableWriteStream {
			// Streaming: the pipeline is already pushing the buffer
			// toward stability, so wait for background release to bring
			// it under δ. Fall back to a force round — whose waiters own
			// retry, NACK service, and failover — if release stalls for
			// a full call timeout (e.g. a write-set server went quiet).
			l.kickStream()
			if l.waitReleaseLocked(time.Now().Add(l.cfg.CallTimeout)) {
				if l.closed {
					l.mu.Unlock()
					return 0, ErrClosed
				}
				continue
			}
		}
		l.mu.Unlock()
		if err := l.Force(); err != nil {
			return 0, err
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return 0, ErrClosed
		}
	}
	lsn := l.nextLSN
	l.nextLSN++
	rec := record.Record{LSN: lsn, Epoch: l.epoch, Present: true, Data: data, Deps: deps}
	l.outstanding = append(l.outstanding, rec)
	l.lastLSN.Store(uint64(lsn))
	l.m.writes.Add(1)
	if l.m.sWrites != nil {
		l.m.sWrites.Add(1)
	}
	l.m.trace.Emit(telemetry.EvWrite, l.m.node, uint64(lsn), uint64(l.epoch), 0)
	if l.cfg.FlushBatch > 0 && len(l.outstanding) >= l.cfg.FlushBatch {
		// Opportunistic batch flush. The append itself has succeeded —
		// the LSN is assigned and the record buffered — so a transport
		// hiccup here is not the caller's failure: the next Force
		// retransmits the stream, and the error is surfaced through the
		// asynchronous channel (Err / OnError) meanwhile.
		if err := l.flushLocked(false); err != nil {
			l.noteAsyncErrLocked(err)
		}
	}
	l.mu.Unlock()
	if kick && !l.cfg.DisableWriteStream {
		l.kickStream()
	}
	return lsn, nil
}

// ForceLog appends a record and forces the log through it, returning
// when the record is stable on N servers (the paper's forced write).
func (l *ReplicatedLog) ForceLog(data []byte) (record.LSN, error) {
	lsn, err := l.writeLog(data, nil, false)
	if err != nil {
		return 0, err
	}
	return lsn, l.Force()
}

// flushLocked streams outstanding records not yet sent to each write-
// set server as asynchronous WriteLog messages. Caller holds l.mu.
func (l *ReplicatedLog) flushLocked(force bool) error {
	for _, addr := range l.writeSet {
		sess := l.sessions[addr]
		if sess == nil {
			continue
		}
		if err := l.sendStreamLocked(sess, force); err != nil {
			return err
		}
	}
	return nil
}

// sendStreamLocked flushes the records beyond sess.sentHigh toward one
// server. In streaming mode a force does not burst the buffer past the
// send window — that is how a large force used to shed its own frames
// off the server's queue and collapse the AIMD window. Instead it
// plants the session's force point (the tail LSN the force must cover)
// and runs one windowed pass: the streamer transmits the remainder as
// acknowledgments open the window, stamping the frame that covers the
// point as a ForceLog — or a bare ForcePoint when the tail is already
// streamed (Section 4.2: forcing an already-streamed log is a mark,
// not a data transfer). Caller holds l.mu.
func (l *ReplicatedLog) sendStreamLocked(sess *session, force bool) error {
	if l.cfg.DisableWriteStream {
		return l.sendBurstLocked(sess, force)
	}
	if force && len(l.outstanding) > 0 {
		target := l.outstanding[len(l.outstanding)-1].LSN
		sess.mu.Lock()
		if target > sess.forcePoint {
			sess.forcePoint = target
		}
		sess.mu.Unlock()
		// Mid-round acks must keep clocking frames out now: the round
		// completes only after the windowed pipeline drains to the point.
		l.streamForcing.Store(true)
	}
	_, err := l.streamFramesLocked(sess, true)
	return err
}

// sendBurstLocked is the non-streaming flush (DisableWriteStream):
// send every unsent record immediately, the final frame as a ForceLog
// when forcing. Without a streamer goroutine there is no ack-clocked
// pipeline to finish a capped send, so this path ignores the window.
func (l *ReplicatedLog) sendBurstLocked(sess *session, force bool) error {
	sess.mu.Lock()
	sentHigh := sess.sentHigh
	sess.mu.Unlock()

	// outstanding holds consecutive LSNs in order, so the unsent suffix
	// is index arithmetic on the send cursor — no per-flush rescan or
	// rebuilt slice.
	var toSend []record.Record
	if n := len(l.outstanding); n > 0 {
		first := l.outstanding[0].LSN
		switch {
		case sentHigh < first:
			toSend = l.outstanding
		case sentHigh < l.outstanding[n-1].LSN:
			toSend = l.outstanding[int(sentHigh-first)+1:]
		}
	}
	if len(toSend) == 0 {
		if !force || len(l.outstanding) == 0 {
			return nil
		}
		target := l.outstanding[len(l.outstanding)-1].LSN
		fp := wire.LSNPayload{LSN: target}
		if _, err := sess.peer.Send(wire.TForcePoint, 0, fp.Encode()); err != nil {
			return err
		}
		return nil
	}
	for len(toSend) > 0 {
		n := wire.FitRecords(toSend)
		if n == 0 {
			return fmt.Errorf("core: record %d too large for a packet", toSend[0].LSN)
		}
		batch := toSend[:n]
		toSend = toSend[n:]
		t := wire.TWriteLog
		if force && len(toSend) == 0 {
			t = wire.TForceLog
		}
		// Emit the flush before the packet leaves: on an in-memory
		// network the server may append (and emit) before a post-send
		// emission would run, which would invert the flush→append order
		// the trace guarantees.
		l.m.trace.Emit(telemetry.EvFlush, sess.addr,
			uint64(batch[len(batch)-1].LSN), uint64(l.epoch), uint64(len(batch)))
		if _, err := sess.peer.SendRecords(t, 0, l.epoch, batch); err != nil {
			return err
		}
		if t == wire.TWriteLog {
			faultpoint.Hit(FPStreamAfterSend)
		}
		last := batch[len(batch)-1].LSN
		bytes := 0
		for i := range batch {
			bytes += len(batch[i].Data)
		}
		sess.mu.Lock()
		if last > sess.sentHigh {
			sess.sentHigh = last
		}
		// Register the frame so the timeout detector sees forced traffic
		// too; without the streamer the cwnd limit is not consulted.
		sess.win.onSent(last, bytes, time.Now())
		sess.mu.Unlock()
	}
	return nil
}

// Force is implemented in forceround.go: concurrent callers coalesce
// onto shared force rounds (group commit) and each round waits for its
// N server acknowledgments in parallel.

// awaitServer waits until the given server acknowledges target,
// retransmitting on NACK or timeout, and ultimately failing over.
func (l *ReplicatedLog) awaitServer(addr string, target record.LSN) error {
	for attempt := 0; attempt <= l.cfg.Retries; attempt++ {
		l.mu.Lock()
		sess := l.sessions[addr]
		l.mu.Unlock()
		if sess == nil {
			break
		}
		acked, nacked, err := sess.waitAck(target, time.Now().Add(l.cfg.CallTimeout))
		if acked {
			l.m.waiterAcks.Add(1)
			return nil
		}
		if err != nil {
			if errors.Is(err, ErrServerReset) {
				// The server is alive — it answered with a reset — but
				// dropped our session (restart, or idle-janitor eviction
				// raced a reconnect). Re-dial it and replay before
				// abandoning it to failover: a freshly migrated-to server
				// must not be deserted over one evicted session.
				if fresh, derr := l.dial(addr); derr == nil {
					l.mu.Lock()
					l.m.resends.Add(1)
					fresh.mu.Lock()
					fresh.win.clear()
					fresh.sentHigh = 0 // resend everything outstanding
					fresh.mu.Unlock()
					sendErr := l.sendStreamLocked(fresh, true)
					l.mu.Unlock()
					if sendErr == nil {
						continue
					}
				}
			}
			break // closed, or the re-dial failed: fail over
		}
		if nacked {
			l.m.waiterNacks.Add(1)
			if err := l.serviceMissing(sess); err != nil {
				break
			}
			attempt-- // a NACK is progress, not a timeout
			continue
		}
		// Timeout: retransmit the stream with a trailing ForceLog; a
		// dual-network endpoint fails over to its second network first.
		l.m.waiterTimeouts.Add(1)
		l.m.trace.Emit(telemetry.EvRetry, addr, uint64(target), 0, uint64(attempt+1))
		if sess.onRetry != nil {
			sess.onRetry()
		}
		l.mu.Lock()
		l.m.resends.Add(1)
		sess.mu.Lock()
		sess.win.backoff() // a lost frame is a congestion signal too
		sess.win.clear()
		sess.sentHigh = 0 // resend everything outstanding
		sess.mu.Unlock()
		l.m.streamBackoffs.Add(1)
		err = l.sendStreamLocked(sess, true)
		l.mu.Unlock()
		if err != nil {
			break
		}
	}
	return l.failover(addr, target)
}

// serviceMissing answers a server's MissingInterval NACKs by resending
// from the lowest missing LSN (the records are still in the
// outstanding buffer — that is what δ guarantees) or, if the missing
// records were already released, starting a new interval.
func (l *ReplicatedLog) serviceMissing(sess *session) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.serviceMissingLocked(sess)
}

// serviceMissingLocked is serviceMissing under l.mu; the streamer
// calls it directly from its pipeline pass.
func (l *ReplicatedLog) serviceMissingLocked(sess *session) error {
	nacks := sess.takeMissing()
	if len(nacks) == 0 {
		return nil
	}
	low := nacks[0].Low
	for _, n := range nacks[1:] {
		if n.Low < low {
			low = n.Low
		}
	}
	l.m.resends.Add(1)
	l.m.trace.Emit(telemetry.EvNack, sess.addr, uint64(low), uint64(l.epoch), uint64(len(nacks)))
	if len(l.outstanding) == 0 || low < l.outstanding[0].LSN {
		// The missing records were acknowledged by the full write set
		// and released (this server wasn't in it, or lost state): tell
		// it to start a new interval at our next record.
		start := l.nextLSN
		if len(l.outstanding) > 0 {
			start = l.outstanding[0].LSN
		}
		ni := wire.NewIntervalPayload{Epoch: l.epoch, StartingLSN: start}
		if _, err := sess.peer.Send(wire.TNewInterval, 0, ni.Encode()); err != nil {
			return err
		}
		sess.mu.Lock()
		sess.win.clear() // the rewound frames will be re-registered
		sess.sentHigh = start - 1
		sess.mu.Unlock()
	} else {
		sess.mu.Lock()
		sess.win.clear()
		sess.sentHigh = low - 1
		sess.mu.Unlock()
	}
	return l.sendStreamLocked(sess, true)
}

// failover replaces a failed write-set server with a spare, replaying
// the outstanding records to it ("a client can switch servers when
// necessary").
func (l *ReplicatedLog) failover(failed string, target record.LSN) error {
	l.mu.Lock()
	inSet := false
	for _, a := range l.writeSet {
		if a == failed {
			inSet = true
		}
	}
	if !inSet {
		l.mu.Unlock()
		return nil // already replaced by a concurrent force
	}
	var candidates []string
	for _, addr := range l.cfg.Servers {
		used := false
		for _, w := range l.writeSet {
			if w == addr {
				used = true
			}
		}
		if !used {
			candidates = append(candidates, addr)
		}
	}
	// The failed server itself is the last resort: it may simply have
	// restarted (its store is intact) and a fresh handshake revives it.
	candidates = append(candidates, failed)
	l.mu.Unlock()

	for _, addr := range candidates {
		sess, err := l.dial(addr)
		if err != nil {
			continue
		}
		l.mu.Lock()
		// Tell the replacement where the stream resumes, then replay
		// every outstanding record.
		start := l.nextLSN
		if len(l.outstanding) > 0 {
			start = l.outstanding[0].LSN
		}
		ni := wire.NewIntervalPayload{Epoch: l.epoch, StartingLSN: start}
		if _, err := sess.peer.Send(wire.TNewInterval, 0, ni.Encode()); err != nil {
			l.mu.Unlock()
			continue
		}
		sess.mu.Lock()
		sess.sentHigh = start - 1
		sess.mu.Unlock()
		if err := l.sendStreamLocked(sess, true); err != nil {
			l.mu.Unlock()
			continue
		}
		l.mu.Unlock()

		acked, _, _ := sess.waitAck(target, time.Now().Add(l.cfg.CallTimeout))
		if !acked && target > 0 {
			// Give the spare one full retry round before moving on.
			acked, _, _ = sess.waitAck(target, time.Now().Add(l.cfg.CallTimeout))
		}
		if !acked && len(l.outstandingSnapshot()) > 0 {
			continue
		}

		l.mu.Lock()
		// Parallel waiters can fail over concurrently: by now another
		// waiter may have replaced failed already, or claimed this very
		// spare for a different failed server. Re-check before install.
		stillFailed, taken := false, false
		for _, a := range l.writeSet {
			if a == failed {
				stillFailed = true
			}
			if a == addr && addr != failed {
				taken = true
			}
		}
		if !stillFailed {
			l.mu.Unlock()
			return nil
		}
		if taken {
			l.mu.Unlock()
			continue
		}
		faultpoint.Hit(FPFailoverBeforeSwap)
		for i, a := range l.writeSet {
			if a == failed {
				l.writeSet[i] = addr
			}
		}
		l.m.failovers.Add(1)
		l.m.trace.Emit(telemetry.EvFailover, failed, uint64(target), uint64(l.epoch), 0)
		l.mu.Unlock()
		return nil
	}
	return fmt.Errorf("%w: no spare server could take over from %s", ErrUnavailable, failed)
}

func (l *ReplicatedLog) outstandingSnapshot() []record.Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]record.Record(nil), l.outstanding...)
}

// TruncatePrefix implements the Section 5.3 space-management function:
// after the client's recovery manager has checkpointed (or dumped), it
// declares records below before unnecessary and the log servers
// discard them. The point is clamped so the δ-record crash-recovery
// tail and all outstanding records are always retained. Truncation is
// best-effort per server; a server that misses it merely keeps extra
// data.
func (l *ReplicatedLog) TruncatePrefix(before record.LSN) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	limit := l.nextLSN - record.LSN(l.cfg.Delta)
	if len(l.outstanding) > 0 && l.outstanding[0].LSN < limit {
		limit = l.outstanding[0].LSN
	}
	if before > limit {
		before = limit
	}
	if before <= l.truncated || before <= 1 {
		l.mu.Unlock()
		return nil
	}
	l.truncated = before
	l.readCache.removeBelow(before)
	servers := append([]string(nil), l.cfg.Servers...)
	l.mu.Unlock()

	payload := (&wire.LSNPayload{LSN: before}).Encode()
	ok := 0
	var firstErr error
	for _, addr := range servers {
		sess, err := l.dial(addr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if _, err := sess.call(wire.TTruncateReq, payload); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok++
	}
	if ok == 0 {
		return fmt.Errorf("%w: truncate reached no server: %v", ErrUnavailable, firstErr)
	}
	return nil
}

// Truncated returns the lowest LSN still readable (0 when nothing was
// truncated).
func (l *ReplicatedLog) Truncated() record.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// ReadRecord returns the full record (including the present flag) for
// lsn. Most callers want ReadLog; the recovery manager uses ReadRecord
// to skip not-present markers during scans.
func (l *ReplicatedLog) ReadRecord(lsn record.LSN) (record.Record, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return record.Record{}, ErrClosed
	}
	if lsn == 0 || lsn >= l.nextLSN {
		l.mu.Unlock()
		return record.Record{}, fmt.Errorf("%w: %d (end of log %d)", ErrBeyondEnd, lsn, l.nextLSN-1)
	}
	if lsn < l.truncated {
		// Discarded by space management: report not-present, the same
		// answer any future incarnation will compute from the clipped
		// interval lists.
		l.mu.Unlock()
		return record.Record{LSN: lsn, Present: false}, nil
	}
	// Unacknowledged records are served locally.
	for _, rec := range l.outstanding {
		if rec.LSN == lsn {
			l.mu.Unlock()
			return rec.Clone(), nil
		}
	}
	if rec, ok := l.readCache.get(lsn); ok {
		l.m.readCacheHits.Add(1)
		l.m.reads.Add(1)
		l.mu.Unlock()
		return rec.Clone(), nil
	}
	l.m.readCacheMisses.Add(1)
	servers := l.holders.serversFor(lsn)
	wantEpoch := l.holders.epochFor(lsn)
	l.m.reads.Add(1)
	covered := l.holders.covered(lsn)
	l.mu.Unlock()

	if !covered {
		// Within the log's range but on no server: a position that was
		// never completed and not re-written by recovery (cannot happen
		// below the δ window); report it as a not-present record so
		// scans can skip it uniformly.
		return record.Record{LSN: lsn, Present: false}, nil
	}
	// One-record streaming fetch: the same path (and the same holder
	// failover) a cursor uses, so a single ReadRecord costs exactly one
	// request and one reply chunk.
	recs, err := l.fetchRange(lsn, lsn, Forward, servers, wantEpoch, 0)
	if err != nil {
		return record.Record{}, err
	}
	rec := recs[0]
	l.mu.Lock()
	l.cacheRecord(rec)
	l.mu.Unlock()
	return rec, nil
}

func (l *ReplicatedLog) cacheRecord(rec record.Record) {
	l.readCache.put(rec)
}

// ReadRecordsBackward returns a batch of records with descending LSNs
// starting at from, fetched with a single ReadLogBackward call to one
// holder (Section 4.2: read replies pack as many consecutive records
// as fit one packet). The batch ends where the serving holder's
// records end or where a stale copy would have been returned; callers
// scanning further continue from the last LSN minus one. The batch
// always contains the record at from on success.
func (l *ReplicatedLog) ReadRecordsBackward(from record.LSN) ([]record.Record, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if from == 0 || from >= l.nextLSN {
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: %d (end of log %d)", ErrBeyondEnd, from, l.nextLSN-1)
	}
	if from < l.truncated {
		l.mu.Unlock()
		return []record.Record{{LSN: from, Present: false}}, nil
	}
	// Outstanding (unacknowledged) records are local; serve the head
	// record directly rather than mixing buffered and remote batches.
	for _, rec := range l.outstanding {
		if rec.LSN == from {
			l.mu.Unlock()
			return []record.Record{rec.Clone()}, nil
		}
	}
	servers := l.holders.serversFor(from)
	covered := l.holders.covered(from)
	l.mu.Unlock()

	if !covered {
		return []record.Record{{LSN: from, Present: false}}, nil
	}
	req := (&wire.LSNPayload{LSN: from}).Encode()
	var firstErr error
	for _, addr := range servers {
		sess, err := l.dial(addr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		resp, err := sess.call(wire.TReadBackwardReq, req)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		p, err := wire.DecodeRecordsPayload(resp.Payload)
		if err != nil || len(p.Records) == 0 || p.Records[0].LSN != from {
			continue
		}
		// Keep the descending prefix whose epochs match the client's
		// view; a stale lower-epoch copy ends the batch.
		l.mu.Lock()
		var out []record.Record
		next := from
		for _, rec := range p.Records {
			if rec.LSN != next || rec.LSN < l.truncated || rec.Epoch < l.holders.epochFor(rec.LSN) {
				break
			}
			out = append(out, rec)
			l.cacheRecord(rec)
			next = rec.LSN - 1
		}
		l.m.reads.Add(uint64(len(out)))
		l.mu.Unlock()
		if len(out) > 0 {
			return out, nil
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("%w: LSN %d on %v", ErrUnavailable, from, servers)
	}
	return nil, firstErr
}

// ReadLog returns the data of the record with the given LSN (Section
// 3.1). It signals ErrBeyondEnd past the end of the log and
// ErrNotPresent for records superseded by recovery.
func (l *ReplicatedLog) ReadLog(lsn record.LSN) ([]byte, error) {
	rec, err := l.ReadRecord(lsn)
	if err != nil {
		return nil, err
	}
	if !rec.Present {
		return nil, fmt.Errorf("%w: LSN %d", ErrNotPresent, lsn)
	}
	return rec.Data, nil
}

// Close releases the client's network resources. Buffered records that
// were never forced are not stable and are discarded — exactly the
// contract a crash would impose.
func (l *ReplicatedLog) Close() error {
	// Child per-stream logs go first: they share this log's endpoint and
	// pump, so they must be quiesced while routing still works.
	l.mu.Lock()
	children := l.streams
	l.mu.Unlock()
	for _, c := range children {
		if c != nil && c != l {
			c.Close()
		}
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.writeCond.Broadcast()
	close(l.streamQuit)
	sessions := make([]*session, 0, len(l.sessions))
	for _, s := range l.sessions {
		sessions = append(sessions, s)
	}
	l.mu.Unlock()
	for _, s := range sessions {
		s.close()
	}
	if !l.shared {
		l.cfg.Endpoint.Close()
	}
	l.pumpWG.Wait()
	return nil
}

// remoteRep adapts a log server's hosted epoch representative to the
// idgen.Representative interface.
type remoteRep struct {
	log  *ReplicatedLog
	addr string
}

// ReadState implements idgen.Representative.
func (r *remoteRep) ReadState() (uint64, error) {
	sess, err := r.log.dial(r.addr)
	if err != nil {
		return 0, err
	}
	resp, err := sess.call(wire.TEpochReadReq, (&wire.EpochValuePayload{}).Encode())
	if err != nil {
		return 0, err
	}
	p, err := wire.DecodeEpochValuePayload(resp.Payload)
	if err != nil {
		return 0, err
	}
	return p.Value, nil
}

// WriteState implements idgen.Representative.
func (r *remoteRep) WriteState(v uint64) error {
	sess, err := r.log.dial(r.addr)
	if err != nil {
		return err
	}
	_, err = sess.call(wire.TEpochWriteReq, (&wire.EpochValuePayload{Value: v}).Encode())
	return err
}
