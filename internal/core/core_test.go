package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"distlog/internal/record"
	"distlog/internal/server"
	"distlog/internal/storage"
	"distlog/internal/transport"
)

// cluster is a test rig: M log servers over MemStores on a memnet.
type cluster struct {
	t       *testing.T
	net     *transport.Network
	names   []string
	stores  map[string]storage.Store
	epochs  map[string]*server.MemEpochHost
	servers map[string]*server.Server
}

func newCluster(t *testing.T, names ...string) *cluster {
	t.Helper()
	c := &cluster{
		t:       t,
		net:     transport.NewNetwork(42),
		names:   names,
		stores:  make(map[string]storage.Store),
		epochs:  make(map[string]*server.MemEpochHost),
		servers: make(map[string]*server.Server),
	}
	for _, name := range names {
		c.stores[name] = storage.NewMemStore()
		c.epochs[name] = server.NewMemEpochHost()
		c.start(name)
	}
	t.Cleanup(c.shutdown)
	return c
}

// start launches (or relaunches) the named server over its existing
// store and epoch host — a node reboot keeps its stable storage.
func (c *cluster) start(name string) {
	c.t.Helper()
	srv := server.New(server.Config{
		Name:     name,
		Store:    c.stores[name],
		Endpoint: c.net.Endpoint(name),
		Epochs:   c.epochs[name],
	})
	srv.Start()
	c.servers[name] = srv
}

// stop halts the named server (node down: it stops answering).
func (c *cluster) stop(name string) {
	c.t.Helper()
	if srv := c.servers[name]; srv != nil {
		srv.Stop()
		delete(c.servers, name)
	}
}

func (c *cluster) shutdown() {
	for name, srv := range c.servers {
		srv.Stop()
		delete(c.servers, name)
	}
}

// seedEpoch sets every server-hosted epoch representative for the
// client to v, as if the generator had already issued v.
func (c *cluster) seedEpoch(client record.ClientID, v uint64) {
	c.t.Helper()
	for _, name := range c.names {
		if err := c.epochs[name].Rep(client).WriteState(v); err != nil {
			c.t.Fatal(err)
		}
	}
}

// openClient opens a replicated log over the cluster. Each call uses a
// fresh client endpoint registration (a restart of the same node).
func (c *cluster) openClient(id record.ClientID, n int, mutate ...func(*Config)) (*ReplicatedLog, error) {
	cfg := Config{
		ClientID:    id,
		Servers:     append([]string(nil), c.names...),
		N:           n,
		Delta:       4,
		Endpoint:    c.net.Endpoint(fmt.Sprintf("client-%d", id)),
		CallTimeout: 100 * time.Millisecond,
		Retries:     2,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	return Open(cfg)
}

func mustOpen(t *testing.T, c *cluster, id record.ClientID, n int, mutate ...func(*Config)) *ReplicatedLog {
	t.Helper()
	l, err := c.openClient(id, n, mutate...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestWriteForceReadRoundTrip(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()

	base := l.EndOfLog()
	var lsns []record.LSN
	for i := 0; i < 20; i++ {
		lsn, err := l.WriteLog([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// Consecutive calls return increasing, consecutive LSNs.
	for i, lsn := range lsns {
		if lsn != base+record.LSN(i+1) {
			t.Fatalf("lsn[%d] = %d, want %d", i, lsn, base+record.LSN(i+1))
		}
	}
	for i, lsn := range lsns {
		data, err := l.ReadLog(lsn)
		if err != nil {
			t.Fatalf("ReadLog(%d): %v", lsn, err)
		}
		if string(data) != fmt.Sprintf("record-%d", i) {
			t.Fatalf("ReadLog(%d) = %q", lsn, data)
		}
	}
	if l.EndOfLog() != lsns[len(lsns)-1] {
		t.Fatalf("EndOfLog = %d", l.EndOfLog())
	}
}

func TestRecordsReplicatedOnNServers(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()

	lsn, err := l.ForceLog([]byte("replicated"))
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the write set (2 servers) stores the record.
	count := 0
	for _, name := range c.names {
		if _, err := c.stores[name].Read(1, lsn); err == nil {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("record on %d servers, want 2", count)
	}
}

func TestReadBeyondEndAndNotPresent(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()

	if _, err := l.ReadLog(l.EndOfLog() + 1); !errors.Is(err, ErrBeyondEnd) {
		t.Fatalf("beyond end: %v", err)
	}
	if _, err := l.ReadLog(0); !errors.Is(err, ErrBeyondEnd) {
		t.Fatalf("LSN 0: %v", err)
	}
	// The δ not-present markers written by initialization (LSNs 1..δ on
	// a fresh log) read as not present.
	if _, err := l.ReadLog(1); !errors.Is(err, ErrNotPresent) {
		t.Fatalf("marker: %v", err)
	}
}

func TestEpochIncreasesAcrossRestarts(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l1 := mustOpen(t, c, 1, 2)
	e1 := l1.Epoch()
	l1.Close()
	l2 := mustOpen(t, c, 1, 2)
	defer l2.Close()
	if l2.Epoch() <= e1 {
		t.Fatalf("epoch %d after restart, was %d", l2.Epoch(), e1)
	}
}

func TestRestartRecoversForcedRecords(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l1 := mustOpen(t, c, 1, 2)
	var lsns []record.LSN
	for i := 0; i < 10; i++ {
		lsn, err := l1.WriteLog([]byte(fmt.Sprintf("durable-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l1.Force(); err != nil {
		t.Fatal(err)
	}
	l1.Close() // crash

	l2 := mustOpen(t, c, 1, 2)
	defer l2.Close()
	for i, lsn := range lsns {
		data, err := l2.ReadLog(lsn)
		if err != nil {
			t.Fatalf("ReadLog(%d) after restart: %v", lsn, err)
		}
		if string(data) != fmt.Sprintf("durable-%d", i) {
			t.Fatalf("ReadLog(%d) = %q", lsn, data)
		}
	}
	// EndOfLog moved past the old end by δ markers.
	if l2.EndOfLog() <= lsns[len(lsns)-1] {
		t.Fatalf("EndOfLog = %d", l2.EndOfLog())
	}
}

func TestUnforcedRecordsConsistentlyAbsentAfterCrash(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l1 := mustOpen(t, c, 1, 2)
	forced, err := l1.ForceLog([]byte("forced"))
	if err != nil {
		t.Fatal(err)
	}
	// Written but never forced: may be partially on servers.
	unforcedLSN, err := l1.WriteLog([]byte("unforced"))
	if err != nil {
		t.Fatal(err)
	}
	l1.Close() // crash before Force

	l2 := mustOpen(t, c, 1, 2)
	defer l2.Close()
	if _, err := l2.ReadLog(forced); err != nil {
		t.Fatalf("forced record lost: %v", err)
	}
	// The unforced record must read as not-present (superseded by the
	// recovery's new-epoch rewrite) — and must stay that way across yet
	// another restart ("all reports are consistent").
	if _, err := l2.ReadLog(unforcedLSN); !errors.Is(err, ErrNotPresent) {
		t.Fatalf("unforced record: %v", err)
	}
	l2.Close()
	l3 := mustOpen(t, c, 1, 2)
	defer l3.Close()
	if _, err := l3.ReadLog(unforcedLSN); !errors.Is(err, ErrNotPresent) {
		t.Fatalf("unforced record after second restart: %v", err)
	}
}

// TestFigure31Reads seeds the three stores exactly as Figure 3.1 and
// verifies the client reads the replicated log the paper defines:
// records (<1,1>..<2,1>), (<3,3>), (<5,3>..<9,3>), with 4 not present.
func TestFigure31Reads(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	seed := func(name string, recs ...record.Record) {
		for _, r := range recs {
			if err := c.stores[name].Append(1, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	pr := func(lsn record.LSN, epoch record.Epoch) record.Record {
		return record.Record{LSN: lsn, Epoch: epoch, Present: true, Data: []byte(fmt.Sprintf("<%d,%d>", lsn, epoch))}
	}
	np := func(lsn record.LSN, epoch record.Epoch) record.Record {
		return record.Record{LSN: lsn, Epoch: epoch, Present: false}
	}
	seed("s1", pr(1, 1), pr(2, 1), pr(3, 1), pr(3, 3), np(4, 3), pr(5, 3), pr(6, 3), pr(7, 3), pr(8, 3), pr(9, 3))
	seed("s2", pr(1, 1), pr(2, 1), pr(3, 1), pr(6, 3), pr(7, 3))
	seed("s3", pr(3, 3), np(4, 3), pr(5, 3), pr(8, 3), pr(9, 3))
	c.seedEpoch(1, 3)

	l := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 1 })
	defer l.Close()
	if l.Epoch() != 4 {
		t.Fatalf("epoch = %d, want 4", l.Epoch())
	}
	// Every record of the replicated log reads correctly; LSN 3 returns
	// the epoch-3 copy.
	wantEpoch := map[record.LSN]record.Epoch{1: 1, 2: 1, 3: 3, 5: 3, 6: 3, 7: 3, 8: 3}
	for lsn, epoch := range wantEpoch {
		rec, err := l.ReadRecord(lsn)
		if err != nil {
			t.Fatalf("ReadRecord(%d): %v", lsn, err)
		}
		if rec.Epoch != epoch || !rec.Present {
			t.Fatalf("ReadRecord(%d) = %v, want epoch %d", lsn, rec, epoch)
		}
		if string(rec.Data) != fmt.Sprintf("<%d,%d>", lsn, epoch) {
			t.Fatalf("ReadRecord(%d) data = %q", lsn, rec.Data)
		}
	}
	// Record 4 is not present.
	if _, err := l.ReadLog(4); !errors.Is(err, ErrNotPresent) {
		t.Fatalf("ReadLog(4): %v", err)
	}
	// Record 9 was the doubtful tail record (δ=1): it was re-copied at
	// epoch 4 and must still read with its data.
	rec, err := l.ReadRecord(9)
	if err != nil || !rec.Present || string(rec.Data) != "<9,3>" {
		t.Fatalf("ReadRecord(9) = %v, %v", rec, err)
	}
	if rec.Epoch != 4 {
		t.Fatalf("ReadRecord(9).Epoch = %d, want 4 (recovery copy)", rec.Epoch)
	}
	// LSN 10 is the not-present marker; 11 is the first fresh LSN.
	if _, err := l.ReadLog(10); !errors.Is(err, ErrNotPresent) {
		t.Fatalf("ReadLog(10): %v", err)
	}
	if l.EndOfLog() != 10 {
		t.Fatalf("EndOfLog = %d, want 10", l.EndOfLog())
	}
	lsn, err := l.WriteLog([]byte("fresh"))
	if err != nil || lsn != 11 {
		t.Fatalf("first fresh write: %d, %v", lsn, err)
	}
}

// TestFigure32PartialWriteRecovery seeds the Figure 3.2 state (record
// 10 on server 3 only) and runs recovery with server 3 down, which is
// the paper's Figure 3.3 walkthrough: the client must install record 9
// at epoch 4 and a not-present record 10 at epoch 4 on servers 1 and
// 2, so the partially written record 10 can never resurface.
func TestFigure32PartialWriteRecovery(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	seed := func(name string, recs ...record.Record) {
		for _, r := range recs {
			if err := c.stores[name].Append(1, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	pr := func(lsn record.LSN, epoch record.Epoch) record.Record {
		return record.Record{LSN: lsn, Epoch: epoch, Present: true, Data: []byte(fmt.Sprintf("<%d,%d>", lsn, epoch))}
	}
	np := func(lsn record.LSN, epoch record.Epoch) record.Record {
		return record.Record{LSN: lsn, Epoch: epoch, Present: false}
	}
	seed("s1", pr(1, 1), pr(2, 1), pr(3, 1), pr(3, 3), np(4, 3), pr(5, 3), pr(6, 3), pr(7, 3), pr(8, 3), pr(9, 3))
	seed("s2", pr(1, 1), pr(2, 1), pr(3, 1), pr(6, 3), pr(7, 3))
	seed("s3", pr(3, 3), np(4, 3), pr(5, 3), pr(8, 3), pr(9, 3), pr(10, 3)) // 10 partially written
	c.seedEpoch(1, 3)
	c.stop("s3")

	l := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 1 })
	if l.Epoch() != 4 {
		t.Fatalf("epoch = %d, want 4", l.Epoch())
	}
	// The merged view (servers 1, 2) ends at 9; record 10 was partially
	// written and must not be part of the log.
	if _, err := l.ReadLog(10); !errors.Is(err, ErrNotPresent) {
		t.Fatalf("ReadLog(10): %v", err)
	}
	// Server-side state matches Figure 3.3: servers 1 and 2 hold
	// <9,4> present and <10,4> not present.
	for _, name := range []string{"s1", "s2"} {
		r9, err := c.stores[name].Read(1, 9)
		if err != nil || r9.Epoch != 4 || !r9.Present {
			t.Fatalf("%s record 9 = %v, %v", name, r9, err)
		}
		r10, err := c.stores[name].Read(1, 10)
		if err != nil || r10.Epoch != 4 || r10.Present {
			t.Fatalf("%s record 10 = %v, %v", name, r10, err)
		}
	}
	l.Close()

	// Server 3 comes back; a later restart merges all three lists. The
	// epoch-4 not-present marker must shadow server 3's stale epoch-3
	// copy of record 10 — reports stay consistent.
	c.start("s3")
	l2 := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 1 })
	defer l2.Close()
	if _, err := l2.ReadLog(10); !errors.Is(err, ErrNotPresent) {
		t.Fatalf("ReadLog(10) after server 3 returns: %v", err)
	}
	rec, err := l2.ReadRecord(9)
	if err != nil || !rec.Present || string(rec.Data) != "<9,3>" {
		t.Fatalf("ReadRecord(9) = %v, %v", rec, err)
	}
}

func TestWriteFailoverToSpareServer(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()

	if _, err := l.ForceLog([]byte("before")); err != nil {
		t.Fatal(err)
	}
	ws := l.WriteSet()
	c.stop(ws[1]) // kill one write-set member

	lsn, err := l.ForceLog([]byte("after-failover"))
	if err != nil {
		t.Fatalf("ForceLog after server failure: %v", err)
	}
	if got := l.Stats().Failovers; got == 0 {
		t.Fatal("no failover recorded")
	}
	// The record is on two live servers.
	count := 0
	for _, name := range c.names {
		if name == ws[1] {
			continue
		}
		if _, err := c.stores[name].Read(1, lsn); err == nil {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("record on %d live servers, want 2", count)
	}
	if data, err := l.ReadLog(lsn); err != nil || string(data) != "after-failover" {
		t.Fatalf("ReadLog = %q, %v", data, err)
	}
}

func TestWriteUnavailableWhenTooManyServersDown(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()
	c.stop("s2")
	c.stop("s3")
	// Only one server remains: N=2 cannot be satisfied.
	_, err := l.ForceLog([]byte("doomed"))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ForceLog = %v, want ErrUnavailable", err)
	}
}

func TestInitQuorumFailure(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	// M-N+1 = 2 interval lists needed; leave only one server up.
	c.stop("s2")
	c.stop("s3")
	_, err := c.openClient(1, 2)
	if !errors.Is(err, ErrInitQuorum) {
		t.Fatalf("Open = %v, want ErrInitQuorum", err)
	}
}

func TestInitSucceedsWithOneServerDown(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l1 := mustOpen(t, c, 1, 2)
	if _, err := l1.ForceLog([]byte("x")); err != nil {
		t.Fatal(err)
	}
	l1.Close()
	// Any single server may be down: M-N+1 = 2 of 3 suffice.
	c.stop("s1")
	l2 := mustOpen(t, c, 1, 2)
	defer l2.Close()
}

func TestReadFailsOverToOtherHolder(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()
	lsn, err := l.ForceLog([]byte("resilient"))
	if err != nil {
		t.Fatal(err)
	}
	ws := l.WriteSet()
	c.stop(ws[0]) // first holder down; read must use the second
	data, err := l.ReadLog(lsn)
	if err != nil || string(data) != "resilient" {
		t.Fatalf("ReadLog = %q, %v", data, err)
	}
}

func TestLossyNetwork(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()
	// 15% loss + occasional duplication on every link.
	c.net.SetFaults(transport.Faults{DropProb: 0.15, DupProb: 0.1})
	var lsns []record.LSN
	for i := 0; i < 30; i++ {
		lsn, err := l.WriteLog([]byte(fmt.Sprintf("lossy-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
		if i%5 == 4 {
			if err := l.Force(); err != nil {
				t.Fatalf("Force under loss: %v", err)
			}
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	c.net.SetFaults(transport.Faults{})
	for i, lsn := range lsns {
		data, err := l.ReadLog(lsn)
		if err != nil || string(data) != fmt.Sprintf("lossy-%d", i) {
			t.Fatalf("ReadLog(%d) = %q, %v", lsn, data, err)
		}
	}
	// Duplicated packets must not duplicate records in any store.
	for _, name := range l.WriteSet() {
		ivs := c.stores[name].Intervals(1)
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Low <= ivs[i-1].High && ivs[i].Epoch == ivs[i-1].Epoch {
				t.Fatalf("%s has overlapping intervals: %v", name, ivs)
			}
		}
	}
}

func TestCorruptedPacketsRejected(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()
	c.net.SetFaults(transport.Faults{CorruptProb: 0.2})
	for i := 0; i < 10; i++ {
		if _, err := l.WriteLog([]byte("checked")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatalf("Force under corruption: %v", err)
	}
}

func TestDeltaBoundsOutstanding(t *testing.T) {
	// The δ invariant — never more than Delta records outstanding — has
	// two enforcement mechanisms: with the write stream on (default),
	// background release keeps the buffer under δ without synchronous
	// forces; with it off, the client forces on its own every δ records.
	deltaRun := func(t *testing.T, mutate func(*Config)) *ReplicatedLog {
		c := newCluster(t, "s1", "s2", "s3")
		l := mustOpen(t, c, 1, 2, mutate)
		t.Cleanup(func() { l.Close() })
		for i := 0; i < 20; i++ {
			if _, err := l.WriteLog([]byte("bounded")); err != nil {
				t.Fatal(err)
			}
			l.mu.Lock()
			n := len(l.outstanding)
			l.mu.Unlock()
			if n > 4 {
				t.Fatalf("outstanding = %d exceeds δ = 4", n)
			}
		}
		return l
	}
	t.Run("streamed", func(t *testing.T) {
		l := deltaRun(t, func(cfg *Config) { cfg.Delta = 4 })
		if got := l.Stats().StreamFrames; got == 0 {
			t.Fatal("write stream on, but no frames were streamed")
		}
	})
	t.Run("forced", func(t *testing.T) {
		l := deltaRun(t, func(cfg *Config) { cfg.Delta = 4; cfg.DisableWriteStream = true })
		if got := l.Stats().Forces; got < 4 {
			t.Fatalf("implicit forces = %d, want >= 4", got)
		}
	})
}

func TestGroupingReducesMessages(t *testing.T) {
	// The Section 4.1 claim: grouping log records until a force cuts
	// per-record messages by ~7x for ET1. Write 7 records + 1 force and
	// count server packets.
	c := newCluster(t, "s1", "s2")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 16 })
	defer l.Close()
	before := c.servers["s1"].Stats().PacketsReceived
	for txn := 0; txn < 10; txn++ {
		for i := 0; i < 6; i++ {
			if _, err := l.WriteLog(make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := l.ForceLog(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	after := c.servers["s1"].Stats().PacketsReceived
	perTxn := float64(after-before) / 10
	if perTxn > 2.5 {
		t.Fatalf("%.1f packets per 7-record transaction; grouping is not happening", perTxn)
	}
}

func TestServerRestartMidStream(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()
	if _, err := l.ForceLog([]byte("one")); err != nil {
		t.Fatal(err)
	}
	ws := l.WriteSet()
	// Bounce a write-set server: its store survives, its session state
	// does not. The client's next force must still complete (Rst →
	// re-dial, or failover — either is correct).
	c.stop(ws[0])
	c.start(ws[0])
	lsn, err := l.ForceLog([]byte("two"))
	if err != nil {
		t.Fatalf("ForceLog after server bounce: %v", err)
	}
	if data, err := l.ReadLog(lsn); err != nil || string(data) != "two" {
		t.Fatalf("ReadLog = %q, %v", data, err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	// The replicated log has one client node but that node may run
	// many transaction goroutines.
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 64 })
	defer l.Close()
	const goroutines = 8
	const per = 20
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < per; i++ {
				if _, err := l.WriteLog([]byte("concurrent")); err != nil {
					errs <- err
					return
				}
			}
			errs <- l.Force()
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// All LSNs distinct and consecutive: EndOfLog advanced by exactly
	// goroutines*per.
	stats := l.Stats()
	if stats.Writes != goroutines*per {
		t.Fatalf("writes = %d", stats.Writes)
	}
}

func TestTwoClientsShareServers(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l1 := mustOpen(t, c, 1, 2)
	defer l1.Close()
	l2 := mustOpen(t, c, 2, 2)
	defer l2.Close()

	lsn1, err := l1.ForceLog([]byte("client-1"))
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l2.ForceLog([]byte("client-2"))
	if err != nil {
		t.Fatal(err)
	}
	if d, err := l1.ReadLog(lsn1); err != nil || string(d) != "client-1" {
		t.Fatalf("client 1 read: %q, %v", d, err)
	}
	if d, err := l2.ReadLog(lsn2); err != nil || string(d) != "client-2" {
		t.Fatalf("client 2 read: %q, %v", d, err)
	}
}

func TestOverloadedServerIsAvoided(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()
	ws := l.WriteSet()
	// Make one write-set server shed all writes. The client times out
	// and takes its logging elsewhere, per Section 4.2.
	overloaded := ws[0]
	c.stop(overloaded)
	c.start(overloaded)
	srv := c.servers[overloaded]
	_ = srv
	c.stop(overloaded)
	shedding := server.New(server.Config{
		Name:       overloaded,
		Store:      c.stores[overloaded],
		Endpoint:   c.net.Endpoint(overloaded),
		Epochs:     c.epochs[overloaded],
		Overloaded: func() bool { return true },
	})
	shedding.Start()
	defer shedding.Stop()

	if _, err := l.ForceLog([]byte("rerouted")); err != nil {
		t.Fatalf("ForceLog with shedding server: %v", err)
	}
	if shed := shedding.Stats().Shed; shed == 0 {
		t.Log("note: client failed over before sending to the shedding server")
	}
}

func BenchmarkForceLogMemnet(b *testing.B) {
	net := transport.NewNetwork(1)
	names := []string{"s1", "s2", "s3"}
	for _, name := range names {
		srv := server.New(server.Config{
			Name:     name,
			Store:    storage.NewMemStore(),
			Endpoint: net.Endpoint(name),
			Epochs:   server.NewMemEpochHost(),
		})
		srv.Start()
		defer srv.Stop()
	}
	l, err := Open(Config{
		ClientID:    1,
		Servers:     names,
		N:           2,
		Delta:       64,
		Endpoint:    net.Endpoint("bench-client"),
		CallTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	data := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.ForceLog(data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReadRecordsBackward(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()
	var lsns []record.LSN
	for i := 0; i < 20; i++ {
		lsn, err := l.WriteLog([]byte(fmt.Sprintf("b%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	from := lsns[len(lsns)-1]
	recs, err := l.ReadRecordsBackward(from)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("backward batch of %d records; packing failed", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != from-record.LSN(i) {
			t.Fatalf("batch[%d].LSN = %d, want %d", i, rec.LSN, from-record.LSN(i))
		}
		// Below the 20 written records lie the initialization's δ
		// not-present markers; everything above them is present.
		if rec.LSN >= lsns[0] && !rec.Present {
			t.Fatalf("batch[%d] (LSN %d) not present", i, rec.LSN)
		}
	}
	// A full backward scan via batches reaches the δ markers and then
	// LSN 1 territory.
	seen := 0
	cursor := from
	for cursor >= 1 {
		batch, err := l.ReadRecordsBackward(cursor)
		if err != nil {
			t.Fatalf("ReadRecordsBackward(%d): %v", cursor, err)
		}
		seen += len(batch)
		last := batch[len(batch)-1].LSN
		if last == 1 {
			break
		}
		cursor = last - 1
	}
	if seen < 20 {
		t.Fatalf("backward scan saw %d records", seen)
	}
	// Beyond end rejected.
	if _, err := l.ReadRecordsBackward(l.EndOfLog() + 1); !errors.Is(err, ErrBeyondEnd) {
		t.Fatalf("beyond end: %v", err)
	}
	// Unacknowledged head served locally.
	lsn, err := l.WriteLog([]byte("unforced"))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := l.ReadRecordsBackward(lsn)
	if err != nil || len(batch) != 1 || string(batch[0].Data) != "unforced" {
		t.Fatalf("buffered head: %v, %v", batch, err)
	}
}

func TestReadRecordsBackwardSkipsStaleCopies(t *testing.T) {
	// Figure 3.3 state: server 3 has stale epoch-3 copies of records 9
	// and 10. A backward read served by server 3 must not leak them.
	c := newCluster(t, "s1", "s2", "s3")
	seed := func(name string, recs ...record.Record) {
		for _, r := range recs {
			if err := c.stores[name].Append(1, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	pr := func(lsn record.LSN, epoch record.Epoch) record.Record {
		return record.Record{LSN: lsn, Epoch: epoch, Present: true, Data: []byte(fmt.Sprintf("<%d,%d>", lsn, epoch))}
	}
	np := func(lsn record.LSN, epoch record.Epoch) record.Record {
		return record.Record{LSN: lsn, Epoch: epoch, Present: false}
	}
	seed("s1", pr(1, 1), pr(2, 1), pr(3, 1), pr(3, 3), np(4, 3), pr(5, 3), pr(6, 3), pr(7, 3), pr(8, 3), pr(9, 3))
	seed("s2", pr(1, 1), pr(2, 1), pr(3, 1), pr(6, 3), pr(7, 3))
	seed("s3", pr(3, 3), np(4, 3), pr(5, 3), pr(8, 3), pr(9, 3), pr(10, 3)) // 10 partially written
	c.seedEpoch(1, 3)
	// Recovery runs without server 3 (the Figure 3.3 walkthrough):
	// record 9 is re-copied at epoch 4, record 10 installed not-present.
	c.stop("s3")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 1 })
	defer l.Close()
	c.start("s3") // the stale epoch-3 copies of 9 and 10 are back online

	// Backward batches never leak server 3's stale copies: record 10
	// reads not-present at epoch 4 and record 9 carries epoch 4.
	recs, err := l.ReadRecordsBackward(10)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].LSN != 10 || recs[0].Present || recs[0].Epoch != 4 {
		t.Fatalf("ReadRecordsBackward(10)[0] = %v, want not-present at epoch 4", recs[0])
	}
	recs, err = l.ReadRecordsBackward(9)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Epoch != 4 || !recs[0].Present || string(recs[0].Data) != "<9,3>" {
		t.Fatalf("ReadRecordsBackward(9)[0] = %v, want recovered copy at epoch 4", recs[0])
	}
}

// TestDualNetworkSurvivesLANFailure is Section 2's two-network
// arrangement end to end: every node has interfaces on two memnets;
// when the first network dies mid-stream, the client's retransmission
// timeout flips its dual endpoint to the second network and logging
// continues without interruption.
func TestDualNetworkSurvivesLANFailure(t *testing.T) {
	net1 := transport.NewNetwork(1)
	net2 := transport.NewNetwork(2)
	names := []string{"s1", "s2", "s3"}
	var servers []*server.Server
	stores := make(map[string]storage.Store)
	for _, name := range names {
		st := storage.NewMemStore()
		stores[name] = st
		srv := server.New(server.Config{
			Name:     name,
			Store:    st,
			Endpoint: transport.NewDualEndpoint(net1.Endpoint(name), net2.Endpoint(name)),
			Epochs:   server.NewMemEpochHost(),
		})
		srv.Start()
		servers = append(servers, srv)
	}
	defer func() {
		for _, srv := range servers {
			srv.Stop()
		}
	}()

	cep := transport.NewDualEndpoint(net1.Endpoint("client"), net2.Endpoint("client"))
	l, err := Open(Config{
		ClientID:    1,
		Servers:     names,
		N:           2,
		Endpoint:    cep,
		CallTimeout: 60 * time.Millisecond,
		Retries:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	before, err := l.ForceLog([]byte("on network 1"))
	if err != nil {
		t.Fatal(err)
	}
	// The primary LAN fails completely.
	net1.SetFaults(transport.Faults{DropProb: 1})

	after, err := l.ForceLog([]byte("on network 2"))
	if err != nil {
		t.Fatalf("ForceLog after network 1 death: %v", err)
	}
	for _, lsn := range []record.LSN{before, after} {
		if _, err := l.ReadLog(lsn); err != nil {
			t.Fatalf("ReadLog(%d) after LAN failover: %v", lsn, err)
		}
	}
	if cep.Preferred() != 1 {
		t.Errorf("client still prefers the dead network")
	}
	// And back: network 1 heals, network 2 dies.
	net1.SetFaults(transport.Faults{})
	net2.SetFaults(transport.Faults{DropProb: 1})
	if _, err := l.ForceLog([]byte("back on network 1")); err != nil {
		t.Fatalf("ForceLog after flipping back: %v", err)
	}
}
