package core_test

import (
	"testing"

	"distlog/internal/crashaudit"
	"distlog/internal/faultpoint"
)

// TestCrashPointSweep kills the client — or its log servers — at every
// registered crash point in turn, escalating the per-point hit count,
// and audits the Section 3.1 invariants after each recovery: every
// force-acknowledged record survives with its data, the doubtful
// window is bounded by δ, doubtful outcomes never flip once observed,
// and epochs strictly increase. The sweep itself fails if any
// registered point never fires — a crash point the workload cannot
// reach is a coverage hole, not a pass.
//
// The test lives in package core_test (not core) because the harness
// imports core; it is in this directory so `go test ./internal/core`
// always exercises the crash audit alongside the client's unit tests.
func TestCrashPointSweep(t *testing.T) {
	opts := crashaudit.Options{Seed: 1}
	if testing.Verbose() {
		opts.Logf = t.Logf
	}
	rep, err := crashaudit.Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, point := range faultpoint.Points() {
		if len(rep.Fired[point]) == 0 {
			t.Errorf("registered crash point %s never fired", point)
		}
	}
	t.Logf("sweep: %d runs, %d crash/recover cycles, %d points covered",
		rep.Runs, rep.Recoveries, len(rep.Fired))
}

// TestCrashAuditRandomized replays the crash scenario under a lossy,
// duplicating, reordering network with randomly drawn crash points and
// hit counts. The long (200+ cycle) version runs via cmd/crashaudit in
// `make crashaudit`; this keeps a seeded slice of it in plain `go
// test`.
func TestCrashAuditRandomized(t *testing.T) {
	iters := 40
	if testing.Short() {
		iters = 8
	}
	opts := crashaudit.Options{Seed: 2}
	if testing.Verbose() {
		opts.Logf = t.Logf
	}
	rep, err := crashaudit.Randomized(opts, iters)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("randomized: %d runs, %d crash/recover cycles", rep.Runs, rep.Recoveries)
}
