package core

import (
	"fmt"
	"time"

	"distlog/internal/record"
)

// Direction selects a cursor's scan direction.
type Direction int8

// Scan directions.
const (
	// Forward scans toward the end of the log (ascending LSNs).
	Forward Direction = 0
	// Backward scans toward LSN 1 (descending LSNs) — the order a
	// recovery manager's undo pass wants.
	Backward Direction = 1
)

func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Cursor streams log records in one direction. Next returns every
// position the log covers — not-present markers included, with
// Present == false — so scans skip superseded positions uniformly,
// exactly as a ReadRecord loop would. A cursor is not safe for
// concurrent use; open one per scanning goroutine.
//
// Behind Next sits a pipelined fetch engine: the cursor keeps a window
// of range-fetch tasks in flight (Config.ReadAhead), each covering up
// to Config.ScanSpan LSNs of a single holder segment, fanned out across
// the holder set and failing over to another holder mid-stream on
// timeout. A consumer that processes records slower than the network
// delivers them therefore never waits on a round trip.
type Cursor interface {
	// Next returns the record at the cursor position and advances. At
	// the end of the scan (past the end of the log, or below LSN 1) it
	// returns ErrBeyondEnd.
	Next() (record.Record, error)
	// Seek repositions the cursor to lsn, keeping its direction.
	// In-flight prefetch for the old position is discarded.
	Seek(lsn record.LSN) error
	// Close releases the cursor. Next and Seek fail afterwards.
	Close() error
}

// OpenCursor returns a streaming cursor positioned on from, scanning in
// dir. The position must be within the log (1 through EndOfLog), as for
// ReadRecord. ReadLog/ReadRecord remain the one-record compatibility
// surface over the same fetch engine.
func (l *ReplicatedLog) OpenCursor(from record.LSN, dir Direction) (Cursor, error) {
	if dir != Forward && dir != Backward {
		return nil, fmt.Errorf("core: invalid cursor direction %d", int8(dir))
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if from == 0 || from >= l.nextLSN {
		end := l.nextLSN - 1
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: %d (end of log %d)", ErrBeyondEnd, from, end)
	}
	l.mu.Unlock()
	c := &streamCursor{
		l:      l,
		dir:    dir,
		pos:    from,
		carve:  from,
		opened: time.Now(),
	}
	c.mu.Lock()
	c.refillLocked()
	c.mu.Unlock()
	return c, nil
}
