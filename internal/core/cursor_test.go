package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"distlog/internal/record"
	"distlog/internal/transport"
)

// writeForced appends count records through l, forcing every batch, and
// returns the payload written per LSN.
func writeForced(t *testing.T, l *ReplicatedLog, count int) map[record.LSN][]byte {
	t.Helper()
	written := make(map[record.LSN][]byte)
	for i := 0; i < count; i++ {
		data := []byte(fmt.Sprintf("payload-%d", i))
		lsn, err := l.WriteLog(data)
		if err != nil {
			t.Fatal(err)
		}
		written[lsn] = data
		if (i+1)%10 == 0 {
			if err := l.Force(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	return written
}

func TestCursorForwardScanAndSeek(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()

	written := writeForced(t, l, 60)
	end := l.EndOfLog()

	cur, err := l.OpenCursor(1, Forward)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for want := record.LSN(1); want <= end; want++ {
		rec, err := cur.Next()
		if err != nil {
			t.Fatalf("Next at %d: %v", want, err)
		}
		if rec.LSN != want {
			t.Fatalf("got LSN %d, want %d", rec.LSN, want)
		}
		if data, ok := written[want]; ok {
			if !rec.Present || string(rec.Data) != string(data) {
				t.Fatalf("LSN %d = %v, want %q", want, rec, data)
			}
		} else if rec.Present {
			t.Fatalf("LSN %d present, expected a marker", want)
		}
	}
	if _, err := cur.Next(); !errors.Is(err, ErrBeyondEnd) {
		t.Fatalf("Next past end = %v, want ErrBeyondEnd", err)
	}

	// Seek back into the middle and rescan a stretch.
	mid := end / 2
	if err := cur.Seek(mid); err != nil {
		t.Fatal(err)
	}
	for want := mid; want < mid+10 && want <= end; want++ {
		rec, err := cur.Next()
		if err != nil {
			t.Fatalf("Next after Seek at %d: %v", want, err)
		}
		if rec.LSN != want {
			t.Fatalf("after Seek got LSN %d, want %d", rec.LSN, want)
		}
	}
	if err := cur.Seek(0); !errors.Is(err, ErrBeyondEnd) {
		t.Fatalf("Seek(0) = %v, want ErrBeyondEnd", err)
	}

	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next after Close = %v, want ErrClosed", err)
	}

	st := l.Stats()
	if st.CursorStreams == 0 {
		t.Fatal("no cursor streams recorded")
	}
	if st.PrefetchHits+st.PrefetchWaits == 0 {
		t.Fatal("no prefetch outcomes recorded")
	}
}

// TestCursorBackwardLossyMidStreamFailover runs the recovery manager's
// scan shape — a backward cursor from the end of the log — over a
// network that drops, duplicates, and reorders packets, and stops one
// write-set holder partway through the scan. The cursor must fail over
// to the surviving holder and deliver every position exactly once, in
// order, with the written payloads: no gaps, no duplicates.
func TestCursorBackwardLossyMidStreamFailover(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()

	written := writeForced(t, l, 120)
	end := l.EndOfLog()
	ws := l.WriteSet()

	c.net.SetFaults(transport.Faults{
		DropProb: 0.10,
		DupProb:  0.10,
		MaxDelay: 2 * time.Millisecond, // random delay => reordering
	})
	defer c.net.SetFaults(transport.Faults{})

	cur, err := l.OpenCursor(end, Backward)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	stopAt := end - end/3 // stop a holder a third of the way down
	for want := end; want >= 1; want-- {
		if want == stopAt {
			c.stop(ws[0])
		}
		rec, err := cur.Next()
		if err != nil {
			t.Fatalf("Next at %d: %v", want, err)
		}
		if rec.LSN != want {
			t.Fatalf("got LSN %d, want %d (gap or duplicate)", rec.LSN, want)
		}
		if data, ok := written[want]; ok {
			if !rec.Present || string(rec.Data) != string(data) {
				t.Fatalf("LSN %d = %v, want %q", want, rec, data)
			}
		} else if rec.Present {
			t.Fatalf("LSN %d present, expected a marker", want)
		}
	}
	if _, err := cur.Next(); !errors.Is(err, ErrBeyondEnd) {
		t.Fatalf("Next below LSN 1 = %v, want ErrBeyondEnd", err)
	}

	st := l.Stats()
	if st.CursorStreams == 0 {
		t.Fatal("no cursor streams recorded")
	}
	t.Logf("streams=%d restarts=%d prefetch hits=%d waits=%d",
		st.CursorStreams, st.StreamRestarts, st.PrefetchHits, st.PrefetchWaits)
}

// TestCursorServesOutstandingAndTruncated checks the local task paths:
// unacknowledged records come from the client's buffer, truncated
// positions come back as markers, without any server round trip.
func TestCursorServesOutstandingAndTruncated(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()

	written := writeForced(t, l, 40)
	// Leave a couple of records unforced (outstanding).
	for i := 0; i < 2; i++ {
		data := []byte(fmt.Sprintf("tail-%d", i))
		lsn, err := l.WriteLog(data)
		if err != nil {
			t.Fatal(err)
		}
		written[lsn] = data
	}
	end := l.EndOfLog()

	// Truncate a prefix; those positions must scan as markers.
	if err := l.TruncatePrefix(10); err != nil {
		t.Fatal(err)
	}

	cur, err := l.OpenCursor(1, Forward)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for want := record.LSN(1); want <= end; want++ {
		rec, err := cur.Next()
		if err != nil {
			t.Fatalf("Next at %d: %v", want, err)
		}
		if rec.LSN != want {
			t.Fatalf("got LSN %d, want %d", rec.LSN, want)
		}
		switch {
		case want < 10:
			if rec.Present {
				t.Fatalf("truncated LSN %d still present", want)
			}
		default:
			if data, ok := written[want]; ok && (!rec.Present || string(rec.Data) != string(data)) {
				t.Fatalf("LSN %d = %v, want %q", want, rec, data)
			}
		}
	}
}
