package core

import "distlog/internal/faultpoint"

// Crash points of the client's Section 3.1.2 protocol steps. Each
// marks a place where the paper's recovery argument must hold if the
// client dies: the crashaudit harness (internal/crashaudit) kills the
// client at every one of them in turn and audits the next incarnation.
// See DESIGN.md, "Crash-point map", for the step each interrupts.
//
// Callbacks armed on these points run on the client's own goroutines,
// in some cases with internal locks held; they must not call back into
// the ReplicatedLog (closing the client's transport endpoint is the
// intended crash model).
const (
	// FPInitCopied interrupts initialization after the doubtful tail
	// has been streamed to one write-set server with CopyLog but before
	// that server's InstallCopies: staged copies exist, none committed.
	FPInitCopied = "client.init.copied"
	// FPInitInstalled interrupts initialization after InstallCopies
	// committed on one write-set server but before the next server was
	// reached: the multi-server install is torn.
	FPInitInstalled = "client.init.installed"
	// FPForceBeforeFlush interrupts a force round after its target LSN
	// is fixed but before any record is flushed.
	FPForceBeforeFlush = "client.force.before-flush"
	// FPForceAfterFlush interrupts a force round after the stream (and
	// trailing ForceLog) went out but before any acknowledgment wait.
	FPForceAfterFlush = "client.force.after-flush"
	// FPForceWaiterDone interrupts a force round between per-server
	// acknowledgment completions: some servers have acked the target,
	// the round has not released the outstanding buffer.
	FPForceWaiterDone = "client.force.waiter-done"
	// FPFailoverBeforeSwap interrupts failover after the spare has been
	// caught up but before it replaces the failed server in the write
	// set.
	FPFailoverBeforeSwap = "client.failover.before-swap"
	// FPCursorMidStream interrupts the cursor read path as each reply
	// chunk is accepted — a client dying partway through a streamed
	// recovery scan. It fires on every streaming read (single-record
	// ReadRecord included), so the crashaudit sweep reaches it from both
	// scans and point reads.
	FPCursorMidStream = "core.cursor.mid-stream"
	// FPStreamAfterSend interrupts the asynchronous write pipeline just
	// after a plain (unforced) record frame left for a server: the
	// client dies with records streamed but never forced — exactly the
	// partially-written tail the δ re-copy of recovery must cover. It
	// fires from both async senders (the streamer goroutine and the
	// opportunistic FlushBatch flush).
	FPStreamAfterSend = "client.stream.after-send"
	// FPMigrateBeforeAnchor interrupts a write-set migration after the
	// fresh epoch was obtained but before any new server was anchored
	// with NewInterval: the migration is invisible, the old write set
	// still holds everything acknowledged.
	FPMigrateBeforeAnchor = "client.migrate.before-anchor"
	// FPMigrateAfterAnchor interrupts a write-set migration after every
	// new server was anchored and the write set swapped, but before the
	// closing force drained the outstanding buffer onto the new set:
	// acknowledged records live only on the old servers, unacknowledged
	// ones only in the client buffer — recovery must lose neither.
	FPMigrateAfterAnchor = "client.migrate.after-anchor"
	// FPCommitVector interrupts Stream.WriteCommit between reading the
	// sibling streams' high-LSN dependency vector and appending the
	// commit record that carries it: the client dies holding a vector
	// that names records which may themselves never become stable —
	// recovery must treat the missing commit as unwritten and the
	// vector must never order anything after a record that is gone.
	FPCommitVector = "client.stream.commit-vector"
	// FPMergeBeforeApply interrupts the dependency-ordered merge of a
	// multi-stream scan as each record is yielded but before the caller
	// applies it — a client dying partway through a merged recovery
	// replay. Recovery of the recovery must reproduce the same
	// dependency-consistent prefix.
	FPMergeBeforeApply = "recman.merge.before-apply"
)

var _ = faultpoint.Register(
	FPInitCopied,
	FPInitInstalled,
	FPForceBeforeFlush,
	FPForceAfterFlush,
	FPForceWaiterDone,
	FPFailoverBeforeSwap,
	FPCursorMidStream,
	FPStreamAfterSend,
	FPMigrateBeforeAnchor,
	FPMigrateAfterAnchor,
	FPCommitVector,
	FPMergeBeforeApply,
)
