package core

import (
	"testing"
	"time"

	"distlog/internal/record"
)

// TestFloorReReportedOnReconnect is the regression test for a lost
// truncation report: TTruncatePoint is fire-and-forget, so a server
// that is down when Checkpoint reports the floor misses it — and
// before the fix it held (and archived) the dead prefix until the
// *next* checkpoint happened to run. The client must re-assert its
// floor whenever it (re)establishes a session.
func TestFloorReReportedOnReconnect(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()

	writeForced(t, l, 30)
	ws := l.WriteSet()
	if len(ws) == 0 {
		t.Fatal("no write set")
	}
	victim := ws[0]

	// The victim goes down holding the client's full prefix; the
	// checkpoint's floor report to it lands on a dead endpoint.
	c.stop(victim)
	if _, err := l.Checkpoint([]byte("ckpt")); err != nil {
		t.Fatalf("checkpoint with a write-set member down: %v", err)
	}
	floor := l.Truncated()
	if floor <= 1 {
		t.Fatalf("checkpoint did not advance the truncation point (floor %d)", floor)
	}

	// Reboot the victim over its surviving store and bring the client
	// back to it: migrating onto the node forces fresh sessions. The
	// first attempts may race the reboot (the stale session must be
	// reset and re-dialed), so retry briefly.
	c.start(victim)
	target := []string{victim}
	for _, name := range l.WriteSet() {
		if name != victim && len(target) < 2 {
			target = append(target, name)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := l.Migrate(target); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("migrating back onto the rebooted server: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The re-established session must have re-reported the floor: the
	// victim's store drops the prefix without waiting for another
	// checkpoint. (Truncate clamps to keep the last record, so a store
	// whose stream ends below the floor settles at its own last key.)
	st := c.stores[victim]
	want := floor
	if last, _ := st.LastKey(1); last < want {
		want = last
	}
	for {
		ivs := st.Intervals(record.ClientID(1))
		if len(ivs) == 0 || ivs[0].Low >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebooted server still advertises LSN %d below the floor %d: the reconnect never re-reported the truncation point", ivs[0].Low, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
