package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"distlog/internal/record"
	"distlog/internal/server"
	"distlog/internal/storage"
	"distlog/internal/transport"
)

// benchCluster starts M servers on a memnet and opens one client —
// the standalone rig benchmarks use (the *testing.T cluster helper
// can't serve benchmarks).
func benchCluster(tb testing.TB, m, n int, faults transport.Faults, mutate ...func(*Config)) *ReplicatedLog {
	tb.Helper()
	net := transport.NewNetwork(1)
	var names []string
	for i := 1; i <= m; i++ {
		name := fmt.Sprintf("s%d", i)
		names = append(names, name)
		srv := server.New(server.Config{
			Name:     name,
			Store:    storage.NewMemStore(),
			Endpoint: net.Endpoint(name),
			Epochs:   server.NewMemEpochHost(),
		})
		srv.Start()
		tb.Cleanup(srv.Stop)
	}
	cfg := Config{
		ClientID:    1,
		Servers:     names,
		N:           n,
		Delta:       64,
		Endpoint:    net.Endpoint("bench-client"),
		CallTimeout: 2 * time.Second,
	}
	for _, mut := range mutate {
		mut(&cfg)
	}
	// Faults only apply to the running log, not to open/recovery.
	l, err := Open(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { l.Close() })
	net.SetFaults(faults)
	return l
}

// TestParallelForceLatency checks the tentpole claim: with N=3 and a
// fixed one-way network latency, a force round completes in about one
// round trip — the three acknowledgment waits run concurrently — and
// nowhere near the three round trips a serial protocol would need.
func TestParallelForceLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const oneWay = 10 * time.Millisecond
	const rtt = 2 * oneWay
	l := benchCluster(t, 3, 3, transport.Faults{FixedDelay: oneWay})

	// Warm up sessions and the write path.
	if _, err := l.ForceLog([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	var worst time.Duration
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := l.ForceLog([]byte("timed")); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	// Budget: 1.5× a single round trip (generous scheduling slack).
	// A serial wait per server would need at least 3 round trips.
	if limit := rtt + rtt/2; worst > limit {
		t.Fatalf("worst force latency %v exceeds %v (single RTT %v, serial ≈ %v)",
			worst, limit, rtt, 3*rtt)
	}
}

// TestGroupCommitCoalesces drives concurrent committers and checks
// that Force calls share protocol rounds: fewer rounds than calls, and
// at least one caller rode another's round.
func TestGroupCommitCoalesces(t *testing.T) {
	l := benchCluster(t, 3, 2, transport.Faults{FixedDelay: 2 * time.Millisecond})

	const writers = 8
	const perWriter = 10
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.ForceLog([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	forces, rounds, grouped := l.ForceRoundStats()
	if forces < writers*perWriter {
		t.Fatalf("Forces = %d, want ≥ %d", forces, writers*perWriter)
	}
	if rounds >= forces {
		t.Fatalf("ForceRounds = %d not below Forces = %d: no coalescing", rounds, forces)
	}
	if grouped == 0 {
		t.Fatal("GroupCommits = 0: no caller rode a shared round")
	}
	if st := l.Stats(); st.ForceRounds != rounds || st.GroupCommits != grouped {
		t.Fatalf("Stats disagree with ForceRoundStats: %+v vs (%d, %d)", st, rounds, grouped)
	}
}

// TestFailoverDuringParallelForce kills one write-set server mid-force
// and checks that the waits on the other servers complete, the round
// finishes via a spare, and the holders table routes reads correctly
// afterwards.
func TestFailoverDuringParallelForce(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3", "s4")
	l := mustOpen(t, c, 1, 3)
	defer l.Close()

	// Establish a healthy baseline round.
	if _, err := l.ForceLog([]byte("healthy")); err != nil {
		t.Fatal(err)
	}
	set := l.WriteSet()
	if len(set) != 3 {
		t.Fatalf("write set %v", set)
	}
	victim := set[1]
	client := l.cfg.Endpoint.Addr()

	// The victim goes silent in both directions: its waiter times out
	// and fails over while the other two waiters proceed.
	c.net.SetLinkFaults(client, victim, transport.Faults{DropProb: 1})
	c.net.SetLinkFaults(victim, client, transport.Faults{DropProb: 1})

	var lsns []record.LSN
	for i := 0; i < 5; i++ {
		lsn, err := l.WriteLog([]byte(fmt.Sprintf("after-kill-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Force(); err != nil {
		t.Fatalf("Force with dead write-set server: %v", err)
	}

	if st := l.Stats(); st.Failovers == 0 {
		t.Fatalf("no failover recorded: %+v", st)
	}
	after := l.WriteSet()
	for _, a := range after {
		if a == victim {
			t.Fatalf("victim %s still in write set %v", victim, after)
		}
	}
	if len(after) != 3 {
		t.Fatalf("write set %v after failover", after)
	}
	// The holders table must route reads to the surviving set.
	for i, lsn := range lsns {
		data, err := l.ReadLog(lsn)
		if err != nil {
			t.Fatalf("ReadLog(%d): %v", lsn, err)
		}
		if want := fmt.Sprintf("after-kill-%d", i); string(data) != want {
			t.Fatalf("ReadLog(%d) = %q, want %q", lsn, data, want)
		}
	}
}

// TestConcurrentClientTorture interleaves writes, forces, and reads
// from many goroutines over a lossy, reordering network, then crashes
// the client and verifies every committed record survived recovery.
func TestConcurrentClientTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test")
	}
	c := newCluster(t, "s1", "s2", "s3", "s4")
	c.net.SetFaults(transport.Faults{
		DropProb:   0.02,
		DupProb:    0.02,
		MaxDelay:   200 * time.Microsecond,
		FixedDelay: 100 * time.Microsecond,
	})
	l := mustOpen(t, c, 1, 2, func(cfg *Config) {
		cfg.Delta = 32
		cfg.CallTimeout = 150 * time.Millisecond
		cfg.Retries = 4
	})

	const goroutines = 6
	const ops = 30
	type commit struct {
		lsn  record.LSN
		data string
	}
	var mu sync.Mutex
	var committed []commit

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var pendingLocal []commit
			var lastLSN record.LSN
			for i := 0; i < ops; i++ {
				data := fmt.Sprintf("g%d-op%d", g, i)
				lsn, err := l.WriteLog([]byte(data))
				if err != nil {
					if errors.Is(err, ErrUnavailable) {
						continue // transient: chaos may briefly exhaust servers
					}
					t.Errorf("g%d WriteLog: %v", g, err)
					return
				}
				if lsn <= lastLSN {
					t.Errorf("g%d: LSN %d not above previous %d", g, lsn, lastLSN)
					return
				}
				lastLSN = lsn
				pendingLocal = append(pendingLocal, commit{lsn, data})
				if i%3 == 2 {
					if err := l.Force(); err != nil {
						if errors.Is(err, ErrUnavailable) {
							continue
						}
						t.Errorf("g%d Force: %v", g, err)
						return
					}
					// A successful force commits every record this
					// goroutine wrote before it.
					mu.Lock()
					committed = append(committed, pendingLocal...)
					mu.Unlock()
					pendingLocal = pendingLocal[:0]
					// Read back one of our committed records mid-run.
					if rec, err := l.ReadRecord(lastLSN); err == nil {
						if !rec.Present || string(rec.Data) != data {
							t.Errorf("g%d ReadRecord(%d) = %+v, want %q", g, lastLSN, rec, data)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// LSNs are unique across goroutines.
	seen := make(map[record.LSN]string)
	for _, cm := range committed {
		if prev, dup := seen[cm.lsn]; dup {
			t.Fatalf("LSN %d assigned twice: %q and %q", cm.lsn, prev, cm.data)
		}
		seen[cm.lsn] = cm.data
	}
	st := l.Stats()
	if st.ForceRounds >= st.Forces {
		t.Fatalf("ForceRounds = %d not below Forces = %d: concurrent forces never coalesced",
			st.ForceRounds, st.Forces)
	}

	// Crash: close without flushing, heal the network, recover.
	l.Close()
	c.net.SetFaults(transport.Faults{})
	l2 := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 32 })
	defer l2.Close()
	for _, cm := range committed {
		rec, err := l2.ReadRecord(cm.lsn)
		if err != nil {
			t.Fatalf("after recovery ReadRecord(%d): %v", cm.lsn, err)
		}
		if !rec.Present || string(rec.Data) != cm.data {
			t.Fatalf("after recovery LSN %d = %+v, want data %q", cm.lsn, rec, cm.data)
		}
	}
}

// writePathAllocBudget is the hard per-op allocation ceiling for one
// ForceLog round trip (client and servers together) on the N=2 memnet
// rig: half the 46 allocs/op the pre-change write path spent.
const writePathAllocBudget = 23

// TestWritePathAllocBudget pins the allocation-free wire path with a
// hard budget; a regression that re-introduces per-packet copies or
// per-flush slice rebuilds fails this test long before it shows up in
// a profile.
func TestWritePathAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	l := benchCluster(t, 3, 2, transport.Faults{})
	if _, err := l.ForceLog([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 100)
	avg := testing.AllocsPerRun(300, func() {
		if _, err := l.ForceLog(data); err != nil {
			t.Fatal(err)
		}
	})
	if avg > writePathAllocBudget {
		t.Fatalf("write path allocates %.1f objects/op, budget %d", avg, writePathAllocBudget)
	}
}

// BenchmarkWritePathAllocs measures the full WriteLog+Force round trip
// (client, memnet, and both servers) and enforces the same hard
// allocation budget as TestWritePathAllocBudget.
func BenchmarkWritePathAllocs(b *testing.B) {
	l := benchCluster(b, 3, 2, transport.Faults{})
	if _, err := l.ForceLog([]byte("warm")); err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 100)
	var m0, m1 runtime.MemStats
	b.ReportAllocs()
	b.ResetTimer()
	runtime.ReadMemStats(&m0)
	for i := 0; i < b.N; i++ {
		if _, err := l.ForceLog(data); err != nil {
			b.Fatal(err)
		}
	}
	runtime.ReadMemStats(&m1)
	b.StopTimer()
	// The budget is a steady-state per-op ceiling: only enforce it once
	// there are enough iterations to amortize one-time lazy allocations
	// (map growth, timer pools), which otherwise land entirely on the
	// framework's sizing probe at b.N=1.
	if perOp := float64(m1.Mallocs-m0.Mallocs) / float64(b.N); b.N >= 100 && perOp > writePathAllocBudget {
		b.Fatalf("write path allocates %.1f objects/op, budget %d", perOp, writePathAllocBudget)
	}
}

// BenchmarkParallelForce measures a full force round against N=3
// servers over a memnet with 1ms one-way latency: the parallel fan-out
// keeps it near one 2ms round trip rather than three.
func BenchmarkParallelForce(b *testing.B) {
	l := benchCluster(b, 3, 3, transport.Faults{FixedDelay: time.Millisecond})
	data := make([]byte, 100)
	if _, err := l.ForceLog(data); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.ForceLog(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupCommit measures concurrent committers sharing force
// rounds and reports how many protocol rounds each force cost.
func BenchmarkGroupCommit(b *testing.B) {
	l := benchCluster(b, 3, 2, transport.Faults{FixedDelay: 100 * time.Microsecond})
	if _, err := l.ForceLog([]byte("warm")); err != nil {
		b.Fatal(err)
	}
	f0, r0, _ := l.ForceRoundStats()
	// Force waits are I/O-bound: run many committers per CPU so rounds
	// overlap even on a single-core machine.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		data := make([]byte, 100)
		for pb.Next() {
			if _, err := l.ForceLog(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	f1, r1, _ := l.ForceRoundStats()
	if forces := f1 - f0; forces > 0 {
		b.ReportMetric(float64(r1-r0)/float64(forces), "rounds/force")
	}
}
