package core

import (
	"sync"
	"time"

	"distlog/internal/faultpoint"
	"distlog/internal/record"
	"distlog/internal/telemetry"
)

// Group commit. A Force call does not necessarily run its own protocol
// round: rounds are shared. Every round has one leader — the goroutine
// that flushes the stream and fans out the acknowledgment waits — and
// any number of followers that block on the round's completion.
//
//   - A caller whose records are covered by the in-flight round's
//     target LSN simply waits for that round.
//   - A caller beyond the in-flight target queues the *next* round.
//     The first such caller becomes its leader (it waits for the
//     current round, then runs); later ones ride along as followers.
//
// Coalescing preserves the paper's Section 3.1 semantics because a
// follower returns success only after a round whose target covers its
// records completed the same N-server acknowledgment protocol an
// individual Force would have run; the only observable difference is
// fewer ForceLog packets (see DESIGN.md, "Beyond the paper").
type forceRound struct {
	target record.LSN
	done   chan struct{}
	err    error // valid after done is closed
}

// Force makes every record written so far stable on N log servers. It
// retries lost messages, services MissingInterval NACKs, and fails
// over to spare servers when a write-set member stops responding.
// Concurrent callers coalesce onto shared force rounds (group commit),
// and within a round the N acknowledgment waits run in parallel, so
// round latency is the slowest server's round trip, not the sum.
func (l *ReplicatedLog) Force() error {
	var lead *forceRound // a queued round this caller must lead
	l.mu.Lock()
	// A write-set migration drains the in-flight and queued rounds, then
	// swaps the set; a new round starting concurrently could release
	// records with the wrong holder set. Entrants wait at this gate —
	// only here, so rounds already queued can drain — and proceed on the
	// post-migration write set.
	for l.migrating && !l.closed {
		l.writeCond.Wait()
	}
	if l.closed {
		// Rejected calls are not protocol activity: they must not count
		// as Forces, or the Forces ≥ ForceRounds + GroupCommits
		// invariant drifts on every post-Close call.
		l.mu.Unlock()
		return ErrClosed
	}
	l.m.forces.Add(1)
	if l.m.sForces != nil {
		l.m.sForces.Add(1)
	}
	for {
		if l.closed {
			if lead != nil {
				// Wake any followers that queued behind us.
				if l.nextRound == lead {
					l.nextRound = nil
				}
				lead.err = ErrClosed
				close(lead.done)
			}
			l.mu.Unlock()
			return ErrClosed
		}
		if lead == nil && len(l.outstanding) == 0 {
			// Everything written so far has already been confirmed on N
			// servers (possibly by a round another caller led, or by the
			// streamer's background release) — which also ends any
			// asynchronous error episode: nothing unstable remains.
			l.asyncErr = nil
			l.mu.Unlock()
			return nil
		}
		if cur := l.curRound; cur != nil {
			if lead == nil && cur.target >= l.outstanding[len(l.outstanding)-1].LSN {
				// The in-flight round covers all our records: ride it.
				l.m.groupCommits.Add(1)
				l.mu.Unlock()
				<-cur.done
				return cur.err
			}
			if l.nextRound == nil {
				lead = &forceRound{done: make(chan struct{})}
				l.nextRound = lead
			}
			if l.nextRound != lead {
				// The next round already has a leader; ride it — its
				// target is fixed only when it starts, so it will cover
				// every record outstanding now, including ours.
				r := l.nextRound
				l.m.groupCommits.Add(1)
				l.mu.Unlock()
				<-r.done
				return r.err
			}
			// We lead the next round: wait our turn, then re-check.
			l.mu.Unlock()
			<-cur.done
			l.mu.Lock()
			continue
		}
		// No round in flight. While a queued round exists only its
		// leader may start one, so a newcomer racing the promotion
		// joins as a follower instead.
		if l.nextRound != nil && l.nextRound != lead {
			r := l.nextRound
			l.m.groupCommits.Add(1)
			l.mu.Unlock()
			<-r.done
			return r.err
		}
		if lead == nil {
			lead = &forceRound{done: make(chan struct{})}
		}
		if l.nextRound == lead {
			l.nextRound = nil
		}
		if len(l.outstanding) == 0 {
			// The previous round confirmed everything (it covered our
			// followers' records too); complete trivially.
			l.asyncErr = nil
			close(lead.done)
			l.mu.Unlock()
			return nil
		}
		l.curRound = lead
		return l.leadRoundLocked(lead)
	}
}

// roundWaiter is the per-server state of one force round's parallel
// fan-out. Waiters live in the log's reused scratch slice; go'ing the
// run method directly (rather than a closure) keeps the fan-out free
// of per-round heap allocations.
type roundWaiter struct {
	l      *ReplicatedLog
	addr   string
	target record.LSN
	err    error
}

func (w *roundWaiter) run(wg *sync.WaitGroup) {
	defer wg.Done()
	w.wait()
}

// wait performs the acknowledgment wait for one server of the round.
func (w *roundWaiter) wait() {
	w.err = w.l.awaitServer(w.addr, w.target)
	faultpoint.Hit(FPForceWaiterDone)
}

// leadRoundLocked runs one force round: flush the stream with a
// trailing ForceLog, then wait for all N write-set acknowledgments in
// parallel. One waiter goroutine per server keeps per-server retry,
// NACK service, and failover independent: a server failing over never
// stalls or aborts the waits on the others. Called with l.mu held and
// l.curRound == r; returns with l.mu released and the round completed.
func (l *ReplicatedLog) leadRoundLocked(r *forceRound) error {
	started := time.Now()
	r.target = l.outstanding[len(l.outstanding)-1].LSN
	l.roundActive.Store(true)
	l.m.forceRounds.Add(1)
	faultpoint.Hit(FPForceBeforeFlush)
	err := l.flushLocked(true)
	faultpoint.Hit(FPForceAfterFlush)
	if cap(l.roundWaiters) < len(l.writeSet) {
		l.roundWaiters = make([]roundWaiter, len(l.writeSet))
	}
	waiters := l.roundWaiters[:len(l.writeSet)]
	for i, addr := range l.writeSet {
		waiters[i] = roundWaiter{l: l, addr: addr, target: r.target}
	}
	l.mu.Unlock()

	if err == nil {
		// The leader's goroutine doubles as the first waiter, so a
		// round spawns N-1 goroutines, not N.
		l.roundWG.Add(len(waiters) - 1)
		for i := 1; i < len(waiters); i++ {
			go waiters[i].run(&l.roundWG)
		}
		waiters[0].wait()
		l.roundWG.Wait()
		for i := range waiters {
			if waiters[i].err != nil {
				err = waiters[i].err
				break
			}
		}
	}

	l.mu.Lock()
	if err == nil {
		// All N acknowledged through the target. The streamer's
		// background release may have beaten us to (part of) the buffer;
		// releaseThroughLocked is idempotent over the already-released
		// prefix, and the round's latency is observed either way so a
		// force round always accounts for exactly one latency sample.
		l.releaseThroughLocked(r.target)
		l.m.forceLatency.Observe(uint64(time.Since(started)))
		// The round's acknowledgments subsume whatever the background
		// pipeline was struggling with: the error episode is over.
		l.asyncErr = nil
	}
	if l.curRound == r {
		l.curRound = nil
	}
	l.roundActive.Store(false)
	// Catch up on whatever the suppressed per-ack kicks would have done:
	// one wakeup covers releases and sends for records that arrived (or
	// acks that landed) while the round was in flight.
	kick := !l.cfg.DisableWriteStream && len(l.outstanding) > 0
	r.err = err
	close(r.done)
	l.mu.Unlock()
	if kick {
		l.kickStream()
	}
	return err
}

// releaseThroughLocked releases every outstanding record with LSN ≤
// target: the full write set has confirmed them stable, so the
// interval's holders are recorded, the buffer shrinks, and δ-bounded
// writers are woken. Shared by force rounds and the streamer's
// background release (sendwindow.go); a no-op over an already-released
// prefix. Caller holds l.mu. Returns how many records were released.
func (l *ReplicatedLog) releaseThroughLocked(target record.LSN) int {
	if len(l.outstanding) == 0 {
		return 0
	}
	first := l.outstanding[0].LSN
	if target < first {
		return 0
	}
	// Holders are recorded per epoch run, not with the log's current
	// epoch: after a write-set migration the buffer can hold records
	// stamped under the pre-migration epoch ahead of post-migration
	// ones, and claiming the new epoch for old-epoch copies would make
	// them unreadable (reads reject copies below the holder's epoch).
	for i := 0; i < len(l.outstanding) && l.outstanding[i].LSN <= target; {
		j := i
		for j+1 < len(l.outstanding) && l.outstanding[j+1].LSN <= target &&
			l.outstanding[j+1].Epoch == l.outstanding[i].Epoch {
			j++
		}
		l.holders.add(l.outstanding[i].Epoch, l.outstanding[i].LSN, l.outstanding[j].LSN, l.writeSet)
		i = j + 1
	}
	keep := l.outstanding[:0]
	released := 0
	for _, rec := range l.outstanding {
		if rec.LSN > target {
			keep = append(keep, rec)
		} else {
			released++
		}
	}
	l.outstanding = keep
	l.m.recordsPerRound.Observe(uint64(released))
	l.m.trace.Emit(telemetry.EvStable, l.m.node,
		uint64(target), uint64(l.epoch), uint64(released))
	l.writeCond.Broadcast()
	return released
}

// ForceRoundStats reports force coalescing: Force calls, protocol
// rounds actually executed, and calls that rode a shared round. Under
// concurrent committers rounds < forces — the group-commit win.
func (l *ReplicatedLog) ForceRoundStats() (forces, rounds, groupCommits uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.m.statsLocked()
	return s.Forces, s.ForceRounds, s.GroupCommits
}
