package core

import "distlog/internal/record"

// holders tracks which servers store each log record: the merged
// interval lists gathered at initialization, overlaid by the intervals
// written (and fully acknowledged) during this epoch. This cache is
// what lets every ReadLog be served by a single ServerReadLog call
// (Section 3.1.2: the voting for all reads happens once, at client
// initialization).
type holders struct {
	merged *record.MergedList
	live   []liveEntry
}

type liveEntry struct {
	iv      record.Interval
	servers []string
}

func newHolders(merged *record.MergedList) *holders {
	return &holders{merged: merged}
}

// add records that servers now hold [low, high] at the given epoch.
func (h *holders) add(epoch record.Epoch, low, high record.LSN, servers []string) {
	if n := len(h.live); n > 0 {
		last := &h.live[n-1]
		if last.iv.Epoch == epoch && last.iv.High+1 == low && equalStrings(last.servers, servers) {
			last.iv.High = high
			return
		}
	}
	cp := make([]string, len(servers))
	copy(cp, servers)
	h.live = append(h.live, liveEntry{iv: record.Interval{Epoch: epoch, Low: low, High: high}, servers: cp})
}

// serversFor returns the servers known to hold the winning copy of
// lsn. Live entries are searched newest-first (they carry the highest
// epochs), then the merged initialization view.
func (h *holders) serversFor(lsn record.LSN) []string {
	for i := len(h.live) - 1; i >= 0; i-- {
		if h.live[i].iv.Contains(lsn) {
			return h.live[i].servers
		}
	}
	return h.merged.Servers(lsn)
}

// epochFor returns the epoch of the winning copy of lsn, or 0 when the
// record is unknown.
func (h *holders) epochFor(lsn record.LSN) record.Epoch {
	for i := len(h.live) - 1; i >= 0; i-- {
		if h.live[i].iv.Contains(lsn) {
			return h.live[i].iv.Epoch
		}
	}
	return h.merged.EpochAt(lsn)
}

// covered reports whether any server is known to hold lsn.
func (h *holders) covered(lsn record.LSN) bool {
	return h.epochFor(lsn) != 0
}

// segment returns the maximal interval around lsn whose every LSN
// resolves to the same holder set and epoch as lsn itself, with that
// holder set — the unit a cursor fetch task can cover with one server
// choice. ok is false when no server holds lsn. Live entries are
// non-overlapping (the write path appends strictly increasing acked
// intervals), but they shadow the merged initialization view, so a
// merged segment is clipped against every live entry before being
// returned.
func (h *holders) segment(lsn record.LSN) (record.Interval, []string, bool) {
	for i := len(h.live) - 1; i >= 0; i-- {
		if h.live[i].iv.Contains(lsn) {
			return h.live[i].iv, h.live[i].servers, true
		}
	}
	iv, servers, ok := h.merged.Segment(lsn)
	if !ok {
		return record.Interval{}, nil, false
	}
	for _, le := range h.live {
		o := le.iv
		if o.High < lsn && o.High+1 > iv.Low {
			iv.Low = o.High + 1
		}
		if o.Low > lsn && o.Low-1 < iv.High {
			iv.High = o.Low - 1
		}
	}
	return iv, servers, true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
