package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"distlog/internal/record"
	"distlog/internal/transport"
)

func TestHoldersMergedOnly(t *testing.T) {
	merged := record.Merge(map[string][]record.Interval{
		"s1": {{Epoch: 1, Low: 1, High: 5}},
		"s2": {{Epoch: 1, Low: 1, High: 5}},
	})
	h := newHolders(merged)
	if got := h.serversFor(3); !reflect.DeepEqual(got, []string{"s1", "s2"}) {
		t.Fatalf("serversFor(3) = %v", got)
	}
	if h.epochFor(3) != 1 {
		t.Fatalf("epochFor(3) = %d", h.epochFor(3))
	}
	if h.covered(6) {
		t.Fatal("LSN 6 covered")
	}
}

func TestHoldersLiveOverridesMerged(t *testing.T) {
	merged := record.Merge(map[string][]record.Interval{
		"s1": {{Epoch: 1, Low: 1, High: 10}},
		"s2": {{Epoch: 1, Low: 1, High: 10}},
	})
	h := newHolders(merged)
	// Recovery re-copied 9..10 at epoch 2 onto s2+s3.
	h.add(2, 9, 10, []string{"s2", "s3"})
	if got := h.serversFor(9); !reflect.DeepEqual(got, []string{"s2", "s3"}) {
		t.Fatalf("serversFor(9) = %v", got)
	}
	if h.epochFor(9) != 2 {
		t.Fatalf("epochFor(9) = %d", h.epochFor(9))
	}
	// Below the live entry the merged view still answers.
	if got := h.serversFor(8); !reflect.DeepEqual(got, []string{"s1", "s2"}) {
		t.Fatalf("serversFor(8) = %v", got)
	}
}

func TestHoldersAddCoalescesContiguous(t *testing.T) {
	h := newHolders(record.Merge(nil))
	h.add(1, 1, 5, []string{"a", "b"})
	h.add(1, 6, 9, []string{"a", "b"}) // same epoch, contiguous, same servers
	if len(h.live) != 1 || h.live[0].iv.High != 9 {
		t.Fatalf("live = %+v", h.live)
	}
	h.add(1, 10, 12, []string{"a", "c"}) // different servers: new entry
	if len(h.live) != 2 {
		t.Fatalf("live = %+v", h.live)
	}
	h.add(1, 20, 22, []string{"a", "c"}) // gap: new entry
	if len(h.live) != 3 {
		t.Fatalf("live = %+v", h.live)
	}
}

func TestHoldersNewestLiveEntryWins(t *testing.T) {
	h := newHolders(record.Merge(nil))
	h.add(2, 5, 9, []string{"a", "b"})
	h.add(3, 7, 9, []string{"b", "c"}) // re-copied at a higher epoch
	if h.epochFor(8) != 3 {
		t.Fatalf("epochFor(8) = %d", h.epochFor(8))
	}
	if got := h.serversFor(8); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("serversFor(8) = %v", got)
	}
	if h.epochFor(6) != 2 {
		t.Fatalf("epochFor(6) = %d", h.epochFor(6))
	}
}

func TestHoldersAddCopiesServerSlice(t *testing.T) {
	h := newHolders(record.Merge(nil))
	servers := []string{"a", "b"}
	h.add(1, 1, 1, servers)
	servers[0] = "mutated"
	if h.serversFor(1)[0] != "a" {
		t.Fatal("holders alias the caller's slice")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no N", Config{Servers: []string{"a", "b"}}},
		{"too few servers", Config{N: 3, Servers: []string{"a", "b"}}},
		{"no endpoint", Config{N: 1, Servers: []string{"a"}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Open(c.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{N: 1, Servers: []string{"a"}, Endpoint: dummyEndpoint{}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Delta != 16 || cfg.CallTimeout == 0 || cfg.Retries == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	if cfg.ReadAhead != 8 || cfg.ScanSpan == 0 || cfg.StreamPackets == 0 {
		t.Fatalf("cursor defaults not filled: %+v", cfg)
	}
}

type dummyEndpoint struct{}

func (dummyEndpoint) Send(string, []byte) error { return nil }
func (dummyEndpoint) Recv(time.Duration) (transport.Packet, error) {
	return transport.Packet{}, errDummy
}
func (dummyEndpoint) Addr() string { return "dummy" }
func (dummyEndpoint) Close() error { return nil }

var errDummy = errors.New("dummy endpoint")
