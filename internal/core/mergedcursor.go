package core

import (
	"errors"
	"fmt"

	"distlog/internal/faultpoint"
	"distlog/internal/record"
)

// StreamRecord is one record of a multi-stream log tagged with the
// stream it came from. LSNs are per-stream; the pair (Stream, LSN) is
// the record's global identity.
type StreamRecord struct {
	Stream int
	record.Record
}

// MergedCursor yields the records of all K streams as one sequence in
// dependency order: a record carrying a dependency vector is yielded
// only after, for every entry (j, h), stream j has been drained through
// h — or through its recovered end of log, when the vector names LSNs
// past it (the commit that observed them died before they became
// stable, so dependency (j, h) is satisfied by everything of stream j
// that survived). Within one stream records come out in LSN order.
// Invariant checkers (availability probes, crashaudit) use it to see
// the one ordered view the single-stream log used to give them; the
// recovery manager drives its parallel replay off the same merge so
// the audited order is the applied order.
//
// The merge is deterministic: among the streams whose head records are
// unblocked, the lowest stream index is yielded first. Like Cursor, a
// MergedCursor is not safe for concurrent use.
type MergedCursor struct {
	logs   []*ReplicatedLog
	curs   []Cursor
	heads  []*record.Record
	fin    []bool       // stream's cursor exhausted (heads[i] may still be pending)
	prog   []record.LSN // highest LSN yielded per stream
	closed bool
}

// OpenMergedCursor opens a dependency-ordered merged scan over every
// stream of the log, from each stream's start. On a single-stream log
// it degenerates to the stream's own order.
func (l *ReplicatedLog) OpenMergedCursor() (*MergedCursor, error) {
	logs := l.streamLogs()
	mc := &MergedCursor{
		logs:  logs,
		curs:  make([]Cursor, len(logs)),
		heads: make([]*record.Record, len(logs)),
		fin:   make([]bool, len(logs)),
		prog:  make([]record.LSN, len(logs)),
	}
	for i, sl := range logs {
		if sl.EndOfLog() == 0 {
			mc.fin[i] = true
			continue
		}
		cur, err := sl.OpenCursor(1, Forward)
		if err != nil {
			mc.Close()
			return nil, fmt.Errorf("core: merged cursor stream %d: %w", i, err)
		}
		mc.curs[i] = cur
	}
	return mc, nil
}

// Next returns the next record in dependency order. At the end of the
// merged scan — every stream drained — it returns ErrBeyondEnd.
func (mc *MergedCursor) Next() (StreamRecord, error) {
	if mc.closed {
		return StreamRecord{}, ErrClosed
	}
	// Fill the head slots: one pending record per undrained stream.
	for i := range mc.logs {
		if mc.heads[i] != nil || mc.fin[i] {
			continue
		}
		rec, err := mc.curs[i].Next()
		if err != nil {
			if errors.Is(err, ErrBeyondEnd) {
				mc.fin[i] = true
				continue
			}
			return StreamRecord{}, fmt.Errorf("core: merged cursor stream %d: %w", i, err)
		}
		r := rec
		mc.heads[i] = &r
	}
	pick := -1
	for i := range mc.heads {
		if mc.heads[i] == nil {
			continue
		}
		if mc.depsSatisfied(mc.heads[i].Deps) {
			pick = i
			break
		}
	}
	if pick < 0 {
		// All heads blocked. Genuine vectors cannot cycle (each is read
		// before its own record is appended), but a vector written by a
		// crashed commit may name sibling LSNs that recovery replaced
		// with not-present markers of a higher epoch; rather than wedge
		// the scan, fall back to the deterministic stream order.
		for i := range mc.heads {
			if mc.heads[i] != nil {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return StreamRecord{}, fmt.Errorf("%w: merged scan complete", ErrBeyondEnd)
	}
	rec := *mc.heads[pick]
	mc.heads[pick] = nil
	mc.prog[pick] = rec.LSN
	// A consumer dying between this yield and its apply is the
	// "recman.merge.before-apply" crash point: the next incarnation's
	// merge must reproduce the same dependency-consistent prefix.
	faultpoint.Hit(FPMergeBeforeApply)
	return StreamRecord{Stream: pick, Record: rec}, nil
}

// depsSatisfied reports whether every dependency-vector entry is
// covered by the merge progress: stream j drained through min(h,
// end-of-stream). Entries naming unknown streams (a narrower K than the
// writer used) are ignored rather than wedging the scan.
func (mc *MergedCursor) depsSatisfied(deps []record.StreamDep) bool {
	for _, d := range deps {
		j := int(d.Stream)
		if j < 0 || j >= len(mc.logs) {
			continue
		}
		if mc.prog[j] >= d.High {
			continue
		}
		if mc.fin[j] && mc.heads[j] == nil {
			// Stream j fully drained below the named LSN: the dependency
			// points past j's recovered end, so it is satisfied by the
			// surviving prefix.
			continue
		}
		return false
	}
	return true
}

// Close releases every underlying stream cursor.
func (mc *MergedCursor) Close() error {
	if mc.closed {
		return nil
	}
	mc.closed = true
	for _, c := range mc.curs {
		if c != nil {
			c.Close()
		}
	}
	return nil
}
