package core

import (
	"fmt"

	"distlog/internal/telemetry"
)

// Client metric names. A process that installs a shared Registry sees
// these families aggregated across every client it hosts.
const (
	mWrites          = "client.writes"
	mForces          = "client.forces"
	mForceRounds     = "client.force_rounds"
	mGroupCommits    = "client.group_commits"
	mReads           = "client.reads"
	mReadCacheHits   = "client.read_cache_hits"
	mReadCacheMisses = "client.read_cache_misses"
	mFailovers       = "client.failovers"
	mMigrations      = "client.migrations"
	mCheckpoints     = "client.checkpoints"
	mResends         = "client.resends"
	mWaiterAcks      = "client.force.acks"
	mWaiterNacks     = "client.force.nacks"
	mWaiterTimeouts  = "client.force.timeouts"
	mForceLatency    = "client.force.latency_ns"
	mRecordsPerRound = "client.force.records_per_round"
	mCursorStreams   = "client.cursor.streams"
	mStreamRestarts  = "client.cursor.stream_restarts"
	mPrefetchHits    = "client.cursor.prefetch_hits"
	mPrefetchWaits   = "client.cursor.prefetch_waits"
	mWindowOccupancy = "client.cursor.window_occupancy"
	mScanLatency     = "client.cursor.scan_latency_ns"
	mStreamFrames    = "client.stream.frames"
	mStreamBusy      = "client.stream.busy"
	mStreamBackoffs  = "client.stream.backoffs"
	mStreamTimeouts  = "client.stream.timeouts"
	mStreamCwnd      = "client.stream.cwnd"
	mStreamOccupancy = "client.stream.window_occupancy"
	mStreamInflight  = "client.stream.inflight_bytes"
)

// clientMetrics is the client's single source of protocol counters.
// The legacy Stats()/ForceRoundStats() APIs are snapshot views over
// these instruments — there is exactly one set of counters, so the two
// APIs can never disagree (they once kept parallel fields).
//
// When no Registry is configured the client installs a private one:
// Stats() must keep working, and counters are two atomic adds either
// way. The trace handle is nil unless the caller's registry enabled
// tracing, so the LSN-lifecycle emissions cost one branch when off.
type clientMetrics struct {
	node  string
	trace *telemetry.Trace

	writes          *telemetry.Counter
	forces          *telemetry.Counter
	forceRounds     *telemetry.Counter
	groupCommits    *telemetry.Counter
	reads           *telemetry.Counter
	readCacheHits   *telemetry.Counter
	readCacheMisses *telemetry.Counter
	failovers       *telemetry.Counter
	migrations      *telemetry.Counter
	checkpoints     *telemetry.Counter
	resends         *telemetry.Counter

	waiterAcks     *telemetry.Counter
	waiterNacks    *telemetry.Counter
	waiterTimeouts *telemetry.Counter

	// Cursor instruments. Unlike the Stats-visible write-path counters
	// these are incremented off l.mu (prefetch tasks run concurrently),
	// so their Stats view is monotone but not transactionally consistent
	// with the rest of a snapshot.
	cursorStreams  *telemetry.Counter
	streamRestarts *telemetry.Counter
	prefetchHits   *telemetry.Counter
	prefetchWaits  *telemetry.Counter

	// Streaming-write instruments. Like the cursor family these are
	// touched off l.mu (the TBusy callback runs on the receive pump, the
	// streamer samples after dropping the session lock), so they are
	// monotone but not transactionally consistent with the write-path
	// counters.
	streamFrames   *telemetry.Counter
	streamBusy     *telemetry.Counter
	streamBackoffs *telemetry.Counter
	streamTimeouts *telemetry.Counter

	// Per-stream counters of a multi-stream log. Nil on a single-stream
	// log; on stream i of K they are the client.streams.<i>.* families,
	// incremented alongside the aggregates above so an operator can see
	// how load divides across the K streams.
	sWrites  *telemetry.Counter
	sForces  *telemetry.Counter
	sCommits *telemetry.Counter

	forceLatency    *telemetry.Histogram
	recordsPerRound *telemetry.Histogram
	// windowOccupancy samples the number of in-flight prefetch tasks at
	// each cursor refill; scanLatency is the lifetime of each cursor
	// from open to close.
	windowOccupancy *telemetry.Histogram
	scanLatency     *telemetry.Histogram
	// streamCwnd samples the AIMD window after each frame send;
	// streamOccupancy the frames then in flight; streamInflightBytes the
	// unacknowledged payload bytes — together the congestion picture.
	streamCwnd          *telemetry.Histogram
	streamOccupancy     *telemetry.Histogram
	streamInflightBytes *telemetry.Histogram
}

func newClientMetrics(reg *telemetry.Registry, node string) *clientMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &clientMetrics{
		node:            node,
		trace:           reg.Trace(),
		writes:          reg.Counter(mWrites),
		forces:          reg.Counter(mForces),
		forceRounds:     reg.Counter(mForceRounds),
		groupCommits:    reg.Counter(mGroupCommits),
		reads:           reg.Counter(mReads),
		readCacheHits:   reg.Counter(mReadCacheHits),
		readCacheMisses: reg.Counter(mReadCacheMisses),
		failovers:       reg.Counter(mFailovers),
		migrations:      reg.Counter(mMigrations),
		checkpoints:     reg.Counter(mCheckpoints),
		resends:         reg.Counter(mResends),
		waiterAcks:      reg.Counter(mWaiterAcks),
		waiterNacks:     reg.Counter(mWaiterNacks),
		waiterTimeouts:  reg.Counter(mWaiterTimeouts),
		cursorStreams:   reg.Counter(mCursorStreams),
		streamRestarts:  reg.Counter(mStreamRestarts),
		prefetchHits:    reg.Counter(mPrefetchHits),
		prefetchWaits:   reg.Counter(mPrefetchWaits),
		streamFrames:    reg.Counter(mStreamFrames),
		streamBusy:      reg.Counter(mStreamBusy),
		streamBackoffs:  reg.Counter(mStreamBackoffs),
		streamTimeouts:  reg.Counter(mStreamTimeouts),
		forceLatency:    reg.Histogram(mForceLatency),
		recordsPerRound: reg.Histogram(mRecordsPerRound),
		windowOccupancy: reg.Histogram(mWindowOccupancy),
		scanLatency:     reg.Histogram(mScanLatency),

		streamCwnd:          reg.Histogram(mStreamCwnd),
		streamOccupancy:     reg.Histogram(mStreamOccupancy),
		streamInflightBytes: reg.Histogram(mStreamInflight),
	}
}

// enableStreamCounters registers the client.streams.<i>.* families for
// stream i of a multi-stream log. Called once, before the log is
// usable, so readers of the fields never race the assignment.
func (m *clientMetrics) enableStreamCounters(reg *telemetry.Registry, i int) {
	if reg == nil {
		return
	}
	m.sWrites = reg.Counter(fmt.Sprintf("client.streams.%d.writes", i))
	m.sForces = reg.Counter(fmt.Sprintf("client.streams.%d.forces", i))
	m.sCommits = reg.Counter(fmt.Sprintf("client.streams.%d.commits", i))
}

// statsLocked snapshots the Stats view. The Stats-visible counters are
// only ever incremented under l.mu, so a caller holding l.mu reads an
// exact, mutually consistent snapshot (e.g. Forces ≥ ForceRounds +
// GroupCommits always holds within one snapshot).
func (m *clientMetrics) statsLocked() Stats {
	return Stats{
		Writes:          m.writes.Value(),
		Forces:          m.forces.Value(),
		ForceRounds:     m.forceRounds.Value(),
		GroupCommits:    m.groupCommits.Value(),
		Reads:           m.reads.Value(),
		ReadCacheHits:   m.readCacheHits.Value(),
		ReadCacheMisses: m.readCacheMisses.Value(),
		Failovers:       m.failovers.Value(),
		Migrations:      m.migrations.Value(),
		Resends:         m.resends.Value(),
		CursorStreams:   m.cursorStreams.Value(),
		StreamRestarts:  m.streamRestarts.Value(),
		PrefetchHits:    m.prefetchHits.Value(),
		PrefetchWaits:   m.prefetchWaits.Value(),
		StreamFrames:    m.streamFrames.Value(),
		StreamBusy:      m.streamBusy.Value(),
		StreamBackoffs:  m.streamBackoffs.Value(),
		StreamTimeouts:  m.streamTimeouts.Value(),
	}
}
