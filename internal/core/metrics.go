package core

import (
	"distlog/internal/telemetry"
)

// Client metric names. A process that installs a shared Registry sees
// these families aggregated across every client it hosts.
const (
	mWrites          = "client.writes"
	mForces          = "client.forces"
	mForceRounds     = "client.force_rounds"
	mGroupCommits    = "client.group_commits"
	mReads           = "client.reads"
	mReadCacheHits   = "client.read_cache_hits"
	mFailovers       = "client.failovers"
	mResends         = "client.resends"
	mWaiterAcks      = "client.force.acks"
	mWaiterNacks     = "client.force.nacks"
	mWaiterTimeouts  = "client.force.timeouts"
	mForceLatency    = "client.force.latency_ns"
	mRecordsPerRound = "client.force.records_per_round"
)

// clientMetrics is the client's single source of protocol counters.
// The legacy Stats()/ForceRoundStats() APIs are snapshot views over
// these instruments — there is exactly one set of counters, so the two
// APIs can never disagree (they once kept parallel fields).
//
// When no Registry is configured the client installs a private one:
// Stats() must keep working, and counters are two atomic adds either
// way. The trace handle is nil unless the caller's registry enabled
// tracing, so the LSN-lifecycle emissions cost one branch when off.
type clientMetrics struct {
	node  string
	trace *telemetry.Trace

	writes        *telemetry.Counter
	forces        *telemetry.Counter
	forceRounds   *telemetry.Counter
	groupCommits  *telemetry.Counter
	reads         *telemetry.Counter
	readCacheHits *telemetry.Counter
	failovers     *telemetry.Counter
	resends       *telemetry.Counter

	waiterAcks     *telemetry.Counter
	waiterNacks    *telemetry.Counter
	waiterTimeouts *telemetry.Counter

	forceLatency    *telemetry.Histogram
	recordsPerRound *telemetry.Histogram
}

func newClientMetrics(reg *telemetry.Registry, node string) *clientMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &clientMetrics{
		node:            node,
		trace:           reg.Trace(),
		writes:          reg.Counter(mWrites),
		forces:          reg.Counter(mForces),
		forceRounds:     reg.Counter(mForceRounds),
		groupCommits:    reg.Counter(mGroupCommits),
		reads:           reg.Counter(mReads),
		readCacheHits:   reg.Counter(mReadCacheHits),
		failovers:       reg.Counter(mFailovers),
		resends:         reg.Counter(mResends),
		waiterAcks:      reg.Counter(mWaiterAcks),
		waiterNacks:     reg.Counter(mWaiterNacks),
		waiterTimeouts:  reg.Counter(mWaiterTimeouts),
		forceLatency:    reg.Histogram(mForceLatency),
		recordsPerRound: reg.Histogram(mRecordsPerRound),
	}
}

// statsLocked snapshots the Stats view. The Stats-visible counters are
// only ever incremented under l.mu, so a caller holding l.mu reads an
// exact, mutually consistent snapshot (e.g. Forces ≥ ForceRounds +
// GroupCommits always holds within one snapshot).
func (m *clientMetrics) statsLocked() Stats {
	return Stats{
		Writes:        m.writes.Value(),
		Forces:        m.forces.Value(),
		ForceRounds:   m.forceRounds.Value(),
		GroupCommits:  m.groupCommits.Value(),
		Reads:         m.reads.Value(),
		ReadCacheHits: m.readCacheHits.Value(),
		Failovers:     m.failovers.Value(),
		Resends:       m.resends.Value(),
	}
}
