package core

import (
	"fmt"

	"distlog/internal/faultpoint"
	"distlog/internal/idgen"
	"distlog/internal/record"
	"distlog/internal/telemetry"
	"distlog/internal/wire"
)

// Migrate moves the log's write set to newSet — exactly N servers, not
// necessarily drawn from the configured M (a freshly joined server is
// a valid target) — without losing any acknowledged record and without
// stalling readers. It is the online counterpart of the initialization
// write-set choice: the rebalancer calls it when a server leaves or
// the load-assignment controller decides this client should move.
//
// The protocol reuses the machinery crash recovery already validates:
//
//  1. Obtain a fresh epoch from the replicated identifier generator,
//     so records written after the migration supersede any stale copy
//     a partially-reached old server might still produce.
//  2. Anchor every new server with NewInterval at the first LSN it
//     will receive (the head of the outstanding buffer, or the next
//     LSN when nothing is outstanding) and rewind the per-server send
//     cursor so the streamer replays the buffer there.
//  3. Swap the write set and epoch atomically under the client mutex,
//     after draining the in-flight and queued force rounds — a round
//     completing across the swap would record holders against the
//     wrong server set.
//  4. Run one closing force that drains the outstanding buffer onto
//     the new set; it returns only after all N new servers
//     acknowledged, which is the zero-loss invariant: every record
//     acknowledged before the migration has its holders recorded on
//     the old set, every later one completes on the new set, and the
//     records in between stay in the outstanding buffer until the
//     closing force confirms them.
//
// Records already in the outstanding buffer keep their original epoch
// stamps; releaseThroughLocked records holders per epoch run, so reads
// of a pre-migration record still check the epoch it was written
// under. The old interval needs no explicit close: the old servers
// simply stop receiving records, and their interval lists end where
// the stream left them.
//
// Concurrent WriteLog/Force calls are safe: writes buffer as usual
// (the streamer redirects them after the swap), and forces either ride
// a round that completes on the old set before the swap or wait at the
// entry gate and run on the new set.
func (l *ReplicatedLog) Migrate(newSet []string) error {
	if len(newSet) != l.cfg.N {
		return fmt.Errorf("core: migrate to %d servers, want N=%d", len(newSet), l.cfg.N)
	}
	seen := make(map[string]bool, len(newSet))
	for _, addr := range newSet {
		if seen[addr] {
			return fmt.Errorf("core: duplicate migration target %s", addr)
		}
		seen[addr] = true
	}

	l.migrateMu.Lock()
	defer l.migrateMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	same := len(newSet) == len(l.writeSet)
	for _, addr := range newSet {
		found := false
		for _, w := range l.writeSet {
			if w == addr {
				found = true
			}
		}
		same = same && found
	}
	l.mu.Unlock()
	if same {
		return nil // already there
	}

	// 1. Fresh epoch. Same representative quorum as initialization; the
	// leaving server (if any) still answers epoch reads while draining.
	reps := l.cfg.EpochReps
	if reps == nil {
		for _, addr := range l.cfg.Servers {
			reps = append(reps, &remoteRep{log: l, addr: addr})
		}
	}
	gen, err := idgen.New(reps...)
	if err != nil {
		return fmt.Errorf("core: migrate epoch quorum: %w", err)
	}
	epoch, err := gen.NewID()
	if err != nil {
		return fmt.Errorf("core: migrate epoch: %w", err)
	}
	newEpoch := record.Epoch(epoch)

	faultpoint.Hit(FPMigrateBeforeAnchor)

	// Dial every target before touching any client state: an
	// unreachable target aborts the migration with the old set intact.
	targets := make([]*session, len(newSet))
	for i, addr := range newSet {
		sess, err := l.dial(addr)
		if err != nil {
			return fmt.Errorf("core: migrate dial %s: %w", addr, err)
		}
		targets[i] = sess
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	// Hold new force rounds at the gate and drain the ones in flight.
	// Waiting on the round object's done channel works across a queued
	// round's promotion to current: the object is reused.
	l.migrating = true
	for {
		round := l.curRound
		if round == nil {
			round = l.nextRound
		}
		if round == nil {
			break
		}
		l.mu.Unlock()
		<-round.done
		l.mu.Lock()
		if l.closed {
			l.migrating = false
			l.writeCond.Broadcast()
			l.mu.Unlock()
			return ErrClosed
		}
	}

	// 2. Anchor the new servers where the replayed stream will start.
	start := l.nextLSN
	if len(l.outstanding) > 0 {
		start = l.outstanding[0].LSN
	}
	ni := wire.NewIntervalPayload{Epoch: newEpoch, StartingLSN: start}
	for _, sess := range targets {
		if _, err := sess.peer.Send(wire.TNewInterval, 0, ni.Encode()); err != nil {
			// Nothing swapped yet: the old write set is fully intact, and
			// an anchored-but-abandoned target holds no records.
			l.migrating = false
			l.writeCond.Broadcast()
			l.mu.Unlock()
			return fmt.Errorf("core: migrate anchor %s: %w", sess.addr, err)
		}
		sess.mu.Lock()
		sess.win.clear() // rewound frames will be re-registered
		sess.sentHigh = start - 1
		sess.mu.Unlock()
	}

	// 3. Swap. From here on the streamer and every new force round talk
	// to the new set under the new epoch.
	l.writeSet = append(l.writeSet[:0:0], newSet...)
	l.epoch = newEpoch
	l.m.migrations.Add(1)
	l.m.trace.Emit(telemetry.EvMigrate, l.m.node, uint64(start), uint64(newEpoch), 0)
	faultpoint.Hit(FPMigrateAfterAnchor)
	l.migrating = false
	l.writeCond.Broadcast()
	drain := len(l.outstanding) > 0
	l.mu.Unlock()

	// 4. Closing force: every record the old set left unconfirmed must
	// be stable on all N new servers before the migration reports
	// success.
	if drain {
		if err := l.Force(); err != nil {
			return fmt.Errorf("core: migrate closing force: %w", err)
		}
	}
	return nil
}
