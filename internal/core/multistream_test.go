package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"distlog/internal/record"
	"distlog/internal/telemetry"
)

// openStreamed opens a K-stream log over the cluster.
func openStreamed(t *testing.T, c *cluster, id record.ClientID, n, k int, mutate ...func(*Config)) *ReplicatedLog {
	t.Helper()
	mutate = append([]func(*Config){func(cfg *Config) { cfg.Streams = k }}, mutate...)
	return mustOpen(t, c, id, n, mutate...)
}

// drainMerged scans a merged cursor to the end, returning (stream, LSN)
// pairs for the present records in yield order (client initialization
// leaves δ not-present markers at the head of each fresh stream).
func drainMerged(t *testing.T, l *ReplicatedLog) [][2]uint64 {
	t.Helper()
	mc, err := l.OpenMergedCursor()
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	var out [][2]uint64
	for {
		sr, err := mc.Next()
		if errors.Is(err, ErrBeyondEnd) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if sr.Present {
			out = append(out, [2]uint64{uint64(sr.Stream), uint64(sr.LSN)})
		}
	}
}

func TestStreamsIndependentLSNSequences(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := openStreamed(t, c, 1, 2, 3)
	defer l.Close()

	if got := l.Streams(); got != 3 {
		t.Fatalf("Streams() = %d, want 3", got)
	}
	// Each stream numbers its own records independently of what the
	// siblings wrote: writing i+1 records to stream i advances only its
	// own sequence.
	base := make([]record.LSN, l.Streams())
	for i := 0; i < l.Streams(); i++ {
		base[i] = l.Stream(i).EndOfLog()
	}
	for i := 0; i < l.Streams(); i++ {
		s := l.Stream(i)
		for j := 1; j <= i+1; j++ {
			lsn, err := s.ForceLog([]byte(fmt.Sprintf("s%d-%d", i, j)))
			if err != nil {
				t.Fatal(err)
			}
			if lsn != base[i]+record.LSN(j) {
				t.Fatalf("stream %d write %d got LSN %d, want %d", i, j, lsn, base[i]+record.LSN(j))
			}
		}
	}
	for i := 0; i < l.Streams(); i++ {
		s := l.Stream(i)
		if got, want := s.EndOfLog(), base[i]+record.LSN(i+1); got != want {
			t.Fatalf("stream %d end of log %d, want %d", i, got, want)
		}
		for j := 1; j <= i+1; j++ {
			rec, err := s.ReadRecord(base[i] + record.LSN(j))
			if err != nil {
				t.Fatal(err)
			}
			if want := fmt.Sprintf("s%d-%d", i, j); string(rec.Data) != want {
				t.Fatalf("stream %d LSN %d = %q, want %q", i, j, rec.Data, want)
			}
		}
	}
	// The single-stream methods are stream 0: the aliasing every
	// pre-streams caller relies on.
	if got, want := l.EndOfLog(), l.Stream(0).EndOfLog(); got != want {
		t.Fatalf("log end %d != stream 0 end %d", got, want)
	}
}

func TestSingleStreamLogHasStreamZero(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()
	if got := l.Streams(); got != 1 {
		t.Fatalf("Streams() = %d, want 1", got)
	}
	lsn, err := l.Stream(0).ForceLog([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.EndOfLog(); got != lsn {
		t.Fatalf("end of log %d, want %d", got, lsn)
	}
	// The merged cursor degenerates to the stream's own order.
	if got := drainMerged(t, l); len(got) != 1 || got[0] != [2]uint64{0, uint64(lsn)} {
		t.Fatalf("merged scan = %v", got)
	}
}

// TestMergedCursorDependencyOrder writes three records on stream 1 and
// then a commit on stream 0 that observed them: despite stream 0's
// lower index, the merge must hold the commit back until stream 1 is
// drained through the vector.
func TestMergedCursorDependencyOrder(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := openStreamed(t, c, 1, 2, 2)
	defer l.Close()
	s0, s1 := l.Stream(0), l.Stream(1)
	b0, b1 := s0.EndOfLog(), s1.EndOfLog()

	for j := 0; j < 3; j++ {
		if _, err := s1.WriteLog([]byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	commitLSN, err := s0.WriteCommit([]byte("commit"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Force(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Force(); err != nil {
		t.Fatal(err)
	}

	// The commit record carries the vector it was stamped with.
	rec, err := s0.ReadRecord(commitLSN)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Deps) != 1 || rec.Deps[0] != (record.StreamDep{Stream: 1, High: b1 + 3}) {
		t.Fatalf("commit deps = %v, want [{1 %d}]", rec.Deps, b1+3)
	}

	want := [][2]uint64{
		{1, uint64(b1 + 1)}, {1, uint64(b1 + 2)}, {1, uint64(b1 + 3)},
		{0, uint64(b0 + 1)},
	}
	got := drainMerged(t, l)
	if len(got) != len(want) {
		t.Fatalf("merged scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged scan = %v, want %v", got, want)
		}
	}
}

// TestMergedCursorDepBeyondEnd writes a commit whose vector names a
// sibling LSN that never became stable (the Section 3.1 pattern: the
// observed records died with the crash). The dependency is satisfied by
// the sibling's surviving prefix — the scan must not wedge.
func TestMergedCursorDepBeyondEnd(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := openStreamed(t, c, 1, 2, 2)
	defer l.Close()
	b0, b1 := l.Stream(0).EndOfLog(), l.Stream(1).EndOfLog()

	for j := 0; j < 2; j++ {
		if _, err := l.Stream(1).WriteLog([]byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	// Fabricate the post-crash shape directly: a vector naming stream 1
	// far past the two records that survive.
	if _, err := l.writeLog([]byte("commit"), []record.StreamDep{{Stream: 1, High: b1 + 100}}, true); err != nil {
		t.Fatal(err)
	}
	if err := l.Stream(0).Force(); err != nil {
		t.Fatal(err)
	}
	if err := l.Stream(1).Force(); err != nil {
		t.Fatal(err)
	}

	want := [][2]uint64{
		{1, uint64(b1 + 1)}, {1, uint64(b1 + 2)},
		{0, uint64(b0 + 1)},
	}
	got := drainMerged(t, l)
	if len(got) != len(want) {
		t.Fatalf("merged scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged scan = %v, want %v", got, want)
		}
	}
}

// TestMergedCursorDeterministic interleaves writes and commits across
// three streams and scans twice: the merge must yield the identical
// sequence both times (recovery audits depend on the replayed order
// being reproducible).
func TestMergedCursorDeterministic(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := openStreamed(t, c, 1, 2, 3)
	defer l.Close()

	for round := 0; round < 5; round++ {
		for i := 0; i < l.Streams(); i++ {
			s := l.Stream(i)
			if _, err := s.WriteLog([]byte("u")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.WriteCommit([]byte("c")); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < l.Streams(); i++ {
		if err := l.Stream(i).Force(); err != nil {
			t.Fatal(err)
		}
	}

	first := drainMerged(t, l)
	second := drainMerged(t, l)
	if len(first) != 30 {
		t.Fatalf("merged scan yielded %d records, want 30", len(first))
	}
	if len(first) != len(second) {
		t.Fatalf("scans diverge: %d vs %d records", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("scans diverge at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

// TestStreamForcePointIsolation is the satellite-2 regression guard:
// per-stream force points must not share one session slot. Each child
// log owns distinct session objects against the same servers, so a
// force planted on one stream can never clobber another's; this pins
// that structure and exercises concurrent per-stream forces.
func TestStreamForcePointIsolation(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	reg := telemetry.NewRegistry()
	l := openStreamed(t, c, 1, 2, 3, func(cfg *Config) { cfg.Telemetry = reg })
	defer l.Close()

	// Structural half: the K stream logs hold pairwise-distinct session
	// objects for every server they share — distinct force-point slots
	// by construction.
	sessions := make(map[*session]int)
	for i, sl := range l.streamLogs() {
		sl.mu.Lock()
		for addr, sess := range sl.sessions {
			if prev, dup := sessions[sess]; dup {
				sl.mu.Unlock()
				t.Fatalf("streams %d and %d share the session for %s", prev, i, addr)
			}
			sessions[sess] = i
		}
		sl.mu.Unlock()
	}

	// Behavioral half: concurrent per-stream write+force traffic, then
	// per-stream counters that account each stream's own forces only.
	base := make([]record.LSN, l.Streams())
	for i := range base {
		base[i] = l.Stream(i).EndOfLog()
	}
	const perStream = 10
	var wg sync.WaitGroup
	errs := make([]error, l.Streams())
	for i := 0; i < l.Streams(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := l.Stream(i)
			for j := 0; j < perStream; j++ {
				if _, err := s.WriteLog([]byte("r")); err != nil {
					errs[i] = err
					return
				}
				if err := s.Force(); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}
	snap := reg.Snapshot()
	for i := 0; i < l.Streams(); i++ {
		name := fmt.Sprintf("client.streams.%d.forces", i)
		if got := snap.Counters[name]; got != perStream {
			t.Fatalf("%s = %d, want %d", name, got, perStream)
		}
		name = fmt.Sprintf("client.streams.%d.writes", i)
		if got := snap.Counters[name]; got != perStream {
			t.Fatalf("%s = %d, want %d", name, got, perStream)
		}
	}
	for i := 0; i < l.Streams(); i++ {
		if got, want := l.Stream(i).EndOfLog(), base[i]+perStream; got != want {
			t.Fatalf("stream %d end of log %d, want %d", i, got, want)
		}
	}
}
