package core

import (
	"fmt"
	"sync"
	"time"

	"distlog/internal/faultpoint"
	"distlog/internal/record"
	"distlog/internal/wire"
)

// streamCursor is the Cursor implementation: a window of range-fetch
// tasks kept in flight ahead of the consumer. Each task covers up to
// Config.ScanSpan consecutive LSNs of one holder segment; remote tasks
// run on their own goroutine and stream their range from a holder,
// local tasks (outstanding records, truncated or uncovered positions)
// are materialized inline. Tasks are consumed strictly in scan order,
// so the window never reorders records — it only overlaps their
// network round trips.
type streamCursor struct {
	l   *ReplicatedLog
	dir Direction

	mu  sync.Mutex
	pos record.LSN // LSN the next Next() must return
	// carve is the first LSN not yet covered by a queued task: the next
	// task starts here. 0 means a backward scan has carved past LSN 1.
	carve   record.LSN
	buf     []record.Record // records of the task being consumed
	bufIdx  int
	tasks   []*fetchTask // queued tasks, scan order
	taskSeq int          // rotates the first holder tried per task
	closed  bool
	opened  time.Time
}

// fetchTask is one unit of the read-ahead window. from..to are in scan
// order (to < from on a backward scan). Local tasks carry their records
// at carve time and have a nil done channel; remote tasks are filled in
// by runFetch and signal done.
type fetchTask struct {
	from, to record.LSN
	dir      Direction
	local    bool
	servers  []string
	epoch    record.Epoch
	rot      int
	done     chan struct{}
	recs     []record.Record
	err      error
}

// step returns the scan-order successor of lsn; 0 when a backward scan
// steps below LSN 1.
func (c *streamCursor) step(lsn record.LSN) record.LSN {
	if c.dir == Forward {
		return lsn + 1
	}
	if lsn <= 1 {
		return 0
	}
	return lsn - 1
}

// refillLocked tops the task window up to Config.ReadAhead, carving
// tasks forward from c.carve. Called with c.mu held; takes l.mu inside
// (lock order: cursor.mu before l.mu, never the reverse).
func (c *streamCursor) refillLocked() {
	for len(c.tasks) < c.l.cfg.ReadAhead {
		t := c.carveTask(c.carve)
		if t == nil {
			break // end of scan, or log end on a forward scan (re-checked next refill)
		}
		c.tasks = append(c.tasks, t)
		c.carve = c.step(t.to)
		if t.local {
			continue
		}
		t.done = make(chan struct{})
		t.rot = c.taskSeq
		c.taskSeq++
		go c.l.runFetch(t)
	}
	c.l.m.windowOccupancy.Observe(uint64(len(c.tasks)))
}

// carveTask classifies the scan position start and cuts one task
// there, consulting the log's state under l.mu. It returns nil when
// nothing can be carved now: the scan is exhausted, or a forward scan
// has caught up with the end of the log (new writes may extend it
// before the next refill).
func (c *streamCursor) carveTask(start record.LSN) *fetchTask {
	l := c.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return &fetchTask{from: start, to: start, dir: c.dir, local: true, err: ErrClosed}
	}
	if start == 0 || (c.dir == Forward && start >= l.nextLSN) {
		return nil
	}
	span := l.cfg.ScanSpan
	var outLow, outHigh record.LSN
	if len(l.outstanding) > 0 {
		outLow = l.outstanding[0].LSN
		outHigh = l.outstanding[len(l.outstanding)-1].LSN
	}
	inOutstanding := func(lsn record.LSN) bool {
		return outLow != 0 && outLow <= lsn && lsn <= outHigh
	}
	if inOutstanding(start) {
		// Unacknowledged records are served from the client's own
		// buffer; outstanding holds consecutive LSNs starting at outLow.
		t := &fetchTask{from: start, to: start, dir: c.dir, local: true}
		for lsn, n := start, 0; n < span && inOutstanding(lsn); n++ {
			t.recs = append(t.recs, l.outstanding[int(lsn-outLow)].Clone())
			t.to = lsn
			lsn = c.step(lsn)
			if lsn == 0 {
				break
			}
		}
		return t
	}
	if start >= l.truncated && l.holders.covered(start) {
		// Remote range: clip to the holder segment, the span, the log
		// end, and (backward) the truncation point.
		iv, servers, _ := l.holders.segment(start)
		t := &fetchTask{from: start, to: start, dir: c.dir, servers: servers, epoch: iv.Epoch}
		if c.dir == Forward {
			to := start + record.LSN(span) - 1
			if to > iv.High {
				to = iv.High
			}
			if to >= l.nextLSN {
				to = l.nextLSN - 1
			}
			if outLow != 0 && outLow <= to {
				to = outLow - 1
			}
			t.to = to
		} else {
			to := record.LSN(1)
			if start > record.LSN(span) {
				to = start - record.LSN(span) + 1
			}
			if to < iv.Low {
				to = iv.Low
			}
			if to < l.truncated {
				to = l.truncated
			}
			t.to = to
		}
		return t
	}
	// Truncated or uncovered positions: materialize not-present markers
	// locally, the same answer ReadRecord gives for them.
	t := &fetchTask{from: start, to: start, dir: c.dir, local: true}
	for lsn, n := start, 0; n < span && lsn != 0; n++ {
		if c.dir == Forward && lsn >= l.nextLSN {
			break
		}
		if inOutstanding(lsn) || (lsn >= l.truncated && l.holders.covered(lsn)) {
			break
		}
		t.recs = append(t.recs, record.Record{LSN: lsn, Present: false})
		t.to = lsn
		lsn = c.step(lsn)
	}
	return t
}

// runFetch executes one remote task on its own goroutine.
func (l *ReplicatedLog) runFetch(t *fetchTask) {
	t.recs, t.err = l.fetchRange(t.from, t.to, t.dir, t.servers, t.epoch, t.rot)
	close(t.done)
}

func (c *streamCursor) Next() (record.Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return record.Record{}, ErrClosed
		}
		if c.bufIdx < len(c.buf) {
			rec := c.buf[c.bufIdx]
			c.bufIdx++
			if rec.LSN != c.pos {
				return record.Record{}, fmt.Errorf("core: cursor out of sequence: got LSN %d, want %d", rec.LSN, c.pos)
			}
			c.pos = c.step(c.pos)
			c.refillLocked()
			c.l.m.reads.Add(1)
			return rec, nil
		}
		if len(c.tasks) == 0 {
			c.refillLocked()
			if len(c.tasks) == 0 {
				c.l.mu.Lock()
				end := c.l.nextLSN - 1
				c.l.mu.Unlock()
				return record.Record{}, fmt.Errorf("%w: %d (end of log %d)", ErrBeyondEnd, c.pos, end)
			}
			continue
		}
		t := c.tasks[0]
		c.tasks = c.tasks[1:]
		if !t.local {
			select {
			case <-t.done:
				c.l.m.prefetchHits.Add(1)
			default:
				// The consumer outran the window: block, off the cursor
				// lock. Cursors are single-consumer, so nothing else
				// mutates cursor state while we wait.
				c.l.m.prefetchWaits.Add(1)
				c.mu.Unlock()
				<-t.done
				c.mu.Lock()
			}
		}
		if t.err != nil {
			return record.Record{}, t.err
		}
		c.buf, c.bufIdx = t.recs, 0
	}
}

func (c *streamCursor) Seek(lsn record.LSN) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	l := c.l
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if lsn == 0 || lsn >= l.nextLSN {
		end := l.nextLSN - 1
		l.mu.Unlock()
		return fmt.Errorf("%w: %d (end of log %d)", ErrBeyondEnd, lsn, end)
	}
	l.mu.Unlock()
	// In-flight remote fetches for the old position finish on their own
	// goroutines and are discarded with the task window.
	c.pos, c.carve = lsn, lsn
	c.buf, c.bufIdx = nil, 0
	c.tasks = nil
	c.refillLocked()
	return nil
}

func (c *streamCursor) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.buf, c.tasks = nil, nil
	c.l.m.scanLatency.Observe(uint64(time.Since(c.opened).Nanoseconds()))
	return nil
}

// fetchRange reads the consecutive LSNs from..to (scan order given by
// dir) from the holder set, streaming from one server at a time and
// failing over to the next on timeout, sequence break, or stale-epoch
// data — resuming mid-range from wherever the last stream stopped. rot
// rotates which holder is tried first so concurrent tasks of one
// cursor fan out across the set. Results never populate the read cache
// (a scan would evict the point-read working set).
func (l *ReplicatedLog) fetchRange(from, to record.LSN, dir Direction, servers []string, wantEpoch record.Epoch, rot int) ([]record.Record, error) {
	forward := dir == Forward
	total := int(to - from + 1)
	if !forward {
		total = int(from - to + 1)
	}
	out := make([]record.Record, 0, total)
	pos := from
	srvIdx, zeroRuns := 0, 0
	// Each failed attempt with no progress counts toward zeroRuns; any
	// progress resets it, so the loop terminates after at most
	// (Retries+1)*len(servers) fruitless attempts per position.
	for len(out) < total {
		if len(servers) == 0 {
			return nil, fmt.Errorf("%w: LSNs %d..%d", ErrUnavailable, pos, to)
		}
		addr := servers[(rot+srvIdx)%len(servers)]
		recs, complete, err := l.streamRange(addr, pos, to, dir, wantEpoch)
		out = append(out, recs...)
		if len(recs) > 0 {
			zeroRuns = 0
			if forward {
				pos += record.LSN(len(recs))
			} else {
				pos -= record.LSN(len(recs))
			}
		}
		if err == nil && !complete && len(recs) > 0 {
			// The server exhausted its packet budget mid-range; continue
			// the same server with a fresh request. Not a restart.
			continue
		}
		if complete {
			break
		}
		// Timeout, sequence break, stale epoch, or an empty stream:
		// restart against the next holder.
		l.m.streamRestarts.Add(1)
		srvIdx++
		if len(recs) == 0 {
			zeroRuns++
		}
		if zeroRuns > (l.cfg.Retries+1)*len(servers) {
			// Every holder failed repeatedly on pos. One legitimate way:
			// the span was truncated after the task was carved. Serve
			// what truncation dictates and keep going past it.
			l.mu.Lock()
			trunc := l.truncated
			l.mu.Unlock()
			progressed := false
			for len(out) < total && pos < trunc && pos >= 1 {
				out = append(out, record.Record{LSN: pos, Present: false})
				if forward {
					pos++
				} else {
					pos--
				}
				progressed = true
			}
			if progressed {
				zeroRuns = 0
				continue
			}
			return nil, fmt.Errorf("%w: LSNs %d..%d on %v", ErrUnavailable, pos, to, servers)
		}
	}
	return out, nil
}

// streamRange opens one ReadStream against addr and consumes its reply
// chunks, validating LSN sequence and epoch per record. It returns the
// prefix of valid records received, complete == true when the server's
// final chunk landed exactly at to, and a non-nil error only for
// transport-level failures (timeout, dead session, server error
// reply). complete == false with err == nil means the stream stopped
// early — packet budget exhausted (caller continues same server) or a
// protocol anomaly (caller fails over).
func (l *ReplicatedLog) streamRange(addr string, from, to record.LSN, dir Direction, wantEpoch record.Epoch) ([]record.Record, bool, error) {
	forward := dir == Forward
	sess, err := l.dial(addr)
	if err != nil {
		return nil, false, err
	}
	req := wire.ReadStreamPayload{From: from, To: to, MaxPackets: uint8(l.cfg.StreamPackets)}
	if forward {
		req.Dir = wire.StreamForward
	} else {
		req.Dir = wire.StreamBackward
	}
	seq, ch, err := sess.openStream(&req)
	if err != nil {
		return nil, false, err
	}
	defer sess.closeStream(seq)
	l.m.cursorStreams.Add(1)

	var out []record.Record
	next := from
	var nextIdx uint16
	// The transport reorders datagrams, and a multi-packet reply sent
	// back-to-back reorders routinely — that must not look like loss.
	// Out-of-order chunks wait here until their predecessors arrive;
	// only the inter-chunk timeout (true loss) triggers failover.
	reordered := make(map[uint16]*wire.StreamChunk)
	timer := time.NewTimer(l.callTimeoutFor())
	defer timer.Stop()
	for {
		select {
		case pkt, ok := <-ch:
			if !ok {
				return out, false, ErrSessionClosed
			}
			if pkt.Type == wire.TErrResp {
				ep, derr := wire.DecodeErrPayload(pkt.Payload)
				if derr != nil {
					return out, false, derr
				}
				return out, false, &RemoteError{Code: ep.Code, Message: ep.Message}
			}
			if pkt.Type != wire.TReadStreamData {
				continue
			}
			chunk, derr := wire.DecodeStreamChunk(pkt.Payload)
			if derr != nil {
				return out, false, nil // corrupt chunk: fail over
			}
			if chunk.Index < nextIdx {
				continue // duplicate delivery
			}
			if chunk.Index > nextIdx {
				reordered[chunk.Index] = chunk // early arrival; keep waiting
				continue
			}
			for {
				nextIdx++
				faultpoint.Hit(FPCursorMidStream)
				for _, rec := range chunk.Records {
					if rec.LSN != next || rec.Epoch < wantEpoch {
						// Sequence break or stale lower-epoch copy: keep the
						// valid prefix, let the caller try another holder.
						return out, false, nil
					}
					out = append(out, rec)
					if forward {
						next++
					} else {
						next--
					}
				}
				if chunk.Done {
					complete := (forward && next == to+1) || (!forward && next == to-1)
					return out, complete, nil
				}
				c, ok := reordered[nextIdx]
				if !ok {
					break
				}
				delete(reordered, nextIdx)
				chunk = c
			}
			// Re-arm the inter-chunk timeout.
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(l.callTimeoutFor())
		case <-timer.C:
			return out, false, fmt.Errorf("%w: read stream from %s at LSN %d", ErrCallTimeout, addr, next)
		}
	}
}

// callTimeoutFor returns the per-chunk stream timeout.
func (l *ReplicatedLog) callTimeoutFor() time.Duration {
	return l.cfg.CallTimeout
}
