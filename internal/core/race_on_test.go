//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation-
// budget tests skip themselves under it (instrumentation allocates).
const raceEnabled = true
