package core

import "distlog/internal/record"

// readCacheCap bounds the client read cache. The previous
// implementation kept an unbounded map and wiped it wholesale at this
// size, guaranteeing a cold cache right in the middle of any scan
// longer than the capacity; the clock cache below evicts one entry at a
// time instead.
const readCacheCap = 4096

// readCache is a bounded LSN→record cache with clock (second-chance)
// eviction: each hit sets the slot's reference bit, and the eviction
// hand sweeps the slots clearing bits until it finds one unreferenced
// since its last pass. Hot records therefore survive a scan streaming
// through, while scan-only records recycle after one revolution.
// Callers synchronize access (the client uses l.mu, like the map it
// replaces).
type readCache struct {
	capacity int
	index    map[record.LSN]int
	slots    []readCacheSlot
	hand     int
}

type readCacheSlot struct {
	rec record.Record
	ref bool
}

func newReadCache(capacity int) *readCache {
	return &readCache{
		capacity: capacity,
		index:    make(map[record.LSN]int, capacity),
	}
}

// get returns the cached record for lsn, marking it recently used.
func (c *readCache) get(lsn record.LSN) (record.Record, bool) {
	i, ok := c.index[lsn]
	if !ok {
		return record.Record{}, false
	}
	c.slots[i].ref = true
	return c.slots[i].rec, true
}

// put inserts or refreshes the record, evicting one entry if full.
func (c *readCache) put(rec record.Record) {
	if i, ok := c.index[rec.LSN]; ok {
		c.slots[i] = readCacheSlot{rec: rec, ref: true}
		return
	}
	if len(c.slots) < c.capacity {
		c.index[rec.LSN] = len(c.slots)
		c.slots = append(c.slots, readCacheSlot{rec: rec, ref: true})
		return
	}
	for {
		s := &c.slots[c.hand]
		if !s.ref {
			delete(c.index, s.rec.LSN)
			c.index[rec.LSN] = c.hand
			*s = readCacheSlot{rec: rec, ref: true}
			c.hand = (c.hand + 1) % len(c.slots)
			return
		}
		s.ref = false
		c.hand = (c.hand + 1) % len(c.slots)
	}
}

// removeBelow drops every cached record with an LSN below lsn
// (TruncatePrefix). Vacated slots are reused in place: they become
// unreferenced holes the clock hand reclaims before evicting anything
// live.
func (c *readCache) removeBelow(lsn record.LSN) {
	for i := range c.slots {
		s := &c.slots[i]
		if s.rec.LSN != 0 && s.rec.LSN < lsn {
			delete(c.index, s.rec.LSN)
			*s = readCacheSlot{}
		}
	}
}

// len returns the number of cached records.
func (c *readCache) len() int { return len(c.index) }
