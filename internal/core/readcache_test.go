package core

import (
	"testing"

	"distlog/internal/record"
)

func crec(lsn record.LSN) record.Record {
	return record.Record{LSN: lsn, Epoch: 1, Present: true, Data: []byte{byte(lsn)}}
}

func TestReadCacheClockEviction(t *testing.T) {
	c := newReadCache(4)
	for lsn := record.LSN(1); lsn <= 4; lsn++ {
		c.put(crec(lsn))
	}
	if c.len() != 4 {
		t.Fatalf("len = %d, want 4", c.len())
	}
	// Overflow: the cache must stay bounded and evict exactly one entry
	// per insertion — not wipe wholesale like the map it replaced.
	for lsn := record.LSN(5); lsn <= 20; lsn++ {
		c.put(crec(lsn))
		if c.len() != 4 {
			t.Fatalf("len = %d after put(%d), want 4", c.len(), lsn)
		}
		if _, ok := c.get(lsn); !ok {
			t.Fatalf("just-inserted %d missing", lsn)
		}
	}
}

func TestReadCacheSecondChance(t *testing.T) {
	c := newReadCache(4)
	for lsn := record.LSN(1); lsn <= 4; lsn++ {
		c.put(crec(lsn))
	}
	// One full hand revolution clears all reference bits...
	c.put(crec(5))
	// ...then keep LSN 2 hot while streaming 6..12 through: the hot
	// entry's bit is re-set before the hand returns, so it survives.
	for lsn := record.LSN(6); lsn <= 12; lsn++ {
		if _, ok := c.get(2); !ok {
			t.Fatalf("hot entry 2 evicted before put(%d)", lsn)
		}
		c.put(crec(lsn))
	}
	if _, ok := c.get(2); !ok {
		t.Fatal("hot entry 2 evicted by streaming inserts")
	}
}

func TestReadCacheRemoveBelow(t *testing.T) {
	c := newReadCache(8)
	for lsn := record.LSN(1); lsn <= 8; lsn++ {
		c.put(crec(lsn))
	}
	c.removeBelow(5)
	if c.len() != 4 {
		t.Fatalf("len = %d after removeBelow(5), want 4", c.len())
	}
	for lsn := record.LSN(1); lsn <= 4; lsn++ {
		if _, ok := c.get(lsn); ok {
			t.Fatalf("truncated LSN %d still cached", lsn)
		}
	}
	for lsn := record.LSN(5); lsn <= 8; lsn++ {
		if _, ok := c.get(lsn); !ok {
			t.Fatalf("retained LSN %d missing", lsn)
		}
	}
	// The vacated slots must be reusable without growing the cache.
	for lsn := record.LSN(9); lsn <= 12; lsn++ {
		c.put(crec(lsn))
	}
	if c.len() != 8 {
		t.Fatalf("len = %d after refilling holes, want 8", c.len())
	}
}

func TestReadCacheUpdateInPlace(t *testing.T) {
	c := newReadCache(2)
	c.put(crec(1))
	newer := record.Record{LSN: 1, Epoch: 2, Present: true, Data: []byte("new")}
	c.put(newer)
	if c.len() != 1 {
		t.Fatalf("len = %d after refresh, want 1", c.len())
	}
	got, ok := c.get(1)
	if !ok || got.Epoch != 2 || string(got.Data) != "new" {
		t.Fatalf("get(1) = %v %v, want the refreshed record", got, ok)
	}
}
