package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"distlog/internal/transport"
	"distlog/internal/wire"
)

// TestWriteLogDeltaBoundUnderConcurrency pins the δ invariant that the
// Section 3.1.2 recovery argument depends on: the client never has
// more than Delta unacknowledged records outstanding, even with many
// concurrent writers. The pre-fix code checked the bound with an `if`
// that was not re-checked after the implicit Force released and
// re-acquired the lock, so concurrent writers could all pass the check
// and push the buffer past δ — recovery would then re-copy too short a
// doubtful tail.
func TestWriteLogDeltaBoundUnderConcurrency(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	// A little network latency widens the window between the δ check
	// and the append: force rounds take milliseconds, so writers pile
	// up at the bound.
	c.net.SetFaults(transport.Faults{FixedDelay: 2 * time.Millisecond})
	const delta = 4
	l := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = delta })
	defer l.Close()

	checkBound := func() {
		l.mu.Lock()
		n := len(l.outstanding)
		l.mu.Unlock()
		if n > delta {
			t.Errorf("outstanding = %d records, exceeds Delta = %d", n, delta)
		}
	}

	done := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				checkBound()
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	const writers, perWriter = 12, 15
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.WriteLog([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				checkBound()
			}
		}()
	}
	wg.Wait()
	close(done)
	samplerWG.Wait()

	if err := l.Force(); err != nil {
		t.Fatalf("final force: %v", err)
	}
}

// TestDialConcurrentHandshake pins the dial race: a second caller must
// never be handed a session whose handshake is still in flight — on
// the pre-fix code its very first call failed with ErrNotEstablished
// because records hit the wire before the three-way handshake
// completed.
func TestDialConcurrentHandshake(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	// Delay makes each handshake take ≥ 2 one-way latencies, widening
	// the race window between the two dialers.
	c.net.SetFaults(transport.Faults{FixedDelay: 3 * time.Millisecond})
	l := mustOpen(t, c, 1, 2)
	defer l.Close()

	for iter := 0; iter < 10; iter++ {
		// Retire the existing session so the next dial must handshake
		// from scratch.
		l.mu.Lock()
		old := l.sessions["s1"]
		delete(l.sessions, "s1")
		l.mu.Unlock()
		if old != nil {
			old.close()
		}

		var wg sync.WaitGroup
		errs := make([]error, 2)
		for g := 0; g < 2; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				if g == 1 {
					// Let the first dialer start the handshake so the
					// second joins it mid-flight.
					time.Sleep(time.Millisecond)
				}
				sess, err := l.dial("s1")
				if err != nil {
					errs[g] = fmt.Errorf("dial: %w", err)
					return
				}
				if !sess.peer.Established() {
					errs[g] = errors.New("dial returned an unestablished session")
					return
				}
				if _, err := sess.call(wire.TIntervalListReq, (&wire.IntervalListPayload{}).Encode()); err != nil {
					errs[g] = fmt.Errorf("call on dialed session: %w", err)
				}
			}()
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				t.Fatalf("iter %d, dialer %d: %v", iter, g, err)
			}
		}
	}
}

// TestForceStatsConsistentAfterClose pins the stats fix: a Force call
// rejected with ErrClosed is not protocol activity and must not bump
// the Forces counter, keeping Forces ≥ ForceRounds + GroupCommits an
// invariant.
func TestForceStatsConsistentAfterClose(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)

	for i := 0; i < 3; i++ {
		if _, err := l.WriteLog([]byte("r")); err != nil {
			t.Fatal(err)
		}
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	if before.Forces < before.ForceRounds+before.GroupCommits {
		t.Fatalf("invariant broken while open: %+v", before)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Force(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Force after Close = %v, want ErrClosed", err)
		}
	}
	after := l.Stats()
	if after.Forces != before.Forces || after.ForceRounds != before.ForceRounds || after.GroupCommits != before.GroupCommits {
		t.Fatalf("ErrClosed forces changed stats: before %+v, after %+v", before, after)
	}
}
