package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"distlog/internal/record"
	"distlog/internal/retention"
	"distlog/internal/server"
	"distlog/internal/storage"
)

// newSegCluster builds the cluster rig over segmented stores with a
// cold archive tier instead of MemStores: tiny segments so a short
// workload seals several, and compaction has something to migrate.
func newSegCluster(t *testing.T, segBytes int64, names ...string) *cluster {
	t.Helper()
	c := newCluster(t)
	dir := t.TempDir()
	for _, name := range names {
		arch, err := retention.OpenArchive(filepath.Join(dir, name, "archive"), retention.ArchiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := storage.OpenSegStore(filepath.Join(dir, name, "segs"), storage.SegOptions{
			SegmentBytes: segBytes,
			Archive:      arch,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close(); arch.Close() })
		c.names = append(c.names, name)
		c.stores[name] = st
		c.epochs[name] = server.NewMemEpochHost()
		c.start(name)
	}
	return c
}

// compactToArchive drains compaction on every store, migrating all
// sealed segments (their live records included) into the archive tier.
func compactToArchive(t *testing.T, c *cluster) (migrated int) {
	t.Helper()
	for name, st := range c.stores {
		ss := st.(*storage.SegStore)
		for {
			ok, err := ss.CompactOnce()
			if err != nil {
				t.Fatalf("CompactOnce on %s: %v", name, err)
			}
			if !ok {
				break
			}
			migrated++
		}
	}
	return migrated
}

// TestCursorSpansHotColdBoundary is the archive round trip under the
// cursor API: records are written through the replicated log, migrated
// into the write-once archive tier by compaction, and then read back —
// forward and backward — through cursors whose stream crosses the
// hot/cold boundary without the client noticing.
func TestCursorSpansHotColdBoundary(t *testing.T) {
	c := newSegCluster(t, 256, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()

	written := writeForced(t, l, 80)
	end := l.EndOfLog()

	// Everything is forced, so every sealed segment is fully stable and
	// compaction must migrate all of them, leaving only the active
	// segment hot. 256-byte segments over 80 records guarantees seals.
	if migrated := compactToArchive(t, c); migrated == 0 {
		t.Fatal("no segments migrated to the archive: segments never sealed")
	}
	archiving := 0
	for _, st := range c.stores {
		if st.(*storage.SegStore).Usage().ArchivedBytes > 0 {
			archiving++
		}
	}
	if archiving < 2 {
		t.Fatalf("only %d stores archived records, want every write-set member (N=2)", archiving)
	}

	// Forward scan from the cold start of the log across the boundary
	// into the hot tail.
	cur, err := l.OpenCursor(1, Forward)
	if err != nil {
		t.Fatal(err)
	}
	for want := record.LSN(1); want <= end; want++ {
		rec, err := cur.Next()
		if err != nil {
			t.Fatalf("forward Next at %d: %v", want, err)
		}
		if rec.LSN != want {
			t.Fatalf("forward got LSN %d, want %d", rec.LSN, want)
		}
		if data, ok := written[want]; ok && (!rec.Present || string(rec.Data) != string(data)) {
			t.Fatalf("forward LSN %d = %v, want %q", want, rec, data)
		}
	}
	cur.Close()

	// Backward scan — the recovery manager's shape — from the hot end
	// down across the boundary into archived territory.
	cur, err = l.OpenCursor(end, Backward)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for want := end; want >= 1; want-- {
		rec, err := cur.Next()
		if err != nil {
			t.Fatalf("backward Next at %d: %v", want, err)
		}
		if rec.LSN != want {
			t.Fatalf("backward got LSN %d, want %d", rec.LSN, want)
		}
		if data, ok := written[want]; ok && (!rec.Present || string(rec.Data) != string(data)) {
			t.Fatalf("backward LSN %d = %v, want %q", want, rec, data)
		}
	}
	if _, err := cur.Next(); !errors.Is(err, ErrBeyondEnd) {
		t.Fatalf("backward Next below 1 = %v, want ErrBeyondEnd", err)
	}
}

// TestCheckpointTruncatesServersAndReclaimsSegments drives the full
// Section 5.3 loop: Checkpoint writes and forces a checkpoint record,
// advances the client truncation point, and reports it to the servers
// (fire-and-forget TTruncatePoint); compaction then reclaims the
// truncated segments outright instead of archiving their records.
func TestCheckpointTruncatesServersAndReclaimsSegments(t *testing.T) {
	c := newSegCluster(t, 256, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2)
	defer l.Close()

	writeForced(t, l, 60)

	ckptLSN, err := l.Checkpoint([]byte("ckpt-state"))
	if err != nil {
		t.Fatal(err)
	}
	floor := l.Truncated()
	if floor <= 1 {
		t.Fatalf("checkpoint did not advance the truncation point (floor %d)", floor)
	}
	if ckptLSN < floor {
		t.Fatalf("checkpoint record %d below the truncation point %d: replay bound lost", ckptLSN, floor)
	}

	// The truncation reports are fire-and-forget datagrams; writing and
	// forcing another batch afterwards guarantees the servers have long
	// since drained them (the memnet delivers in order per pair).
	for i := 0; i < 5; i++ {
		if _, err := l.WriteLog([]byte(fmt.Sprintf("after-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}

	compactToArchive(t, c)
	for name, st := range c.stores {
		ss := st.(*storage.SegStore)
		// The servers that hold this client's records must have seen the
		// truncation report and dropped the prefix.
		ivs := ss.Intervals(1)
		if len(ivs) == 0 {
			continue // not a write-set member
		}
		if first := ivs[0].Low; first < floor {
			t.Fatalf("store %s still advertises LSN %d below the reported truncation point %d", name, first, floor)
		}
	}

	// The checkpoint record itself and everything after it still reads.
	if _, err := l.ReadLog(ckptLSN); err != nil {
		t.Fatalf("checkpoint record unreadable: %v", err)
	}
}
