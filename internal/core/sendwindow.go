package core

import (
	"fmt"
	"time"

	"distlog/internal/faultpoint"
	"distlog/internal/record"
	"distlog/internal/telemetry"
	"distlog/internal/wire"
)

// The streaming write protocol (Section 4.2, Figure 4.1). WriteLog
// only buffers; a per-log streamer goroutine packs buffered records
// into frames adaptively — a frame is sent the moment it is full, and
// a partial frame no later than FlushInterval after its first record —
// and transmits continuously under a sliding per-server send window.
// Server acknowledgments carry two cumulative marks: the appended
// high-water mark advances the window edge (the frame left the
// network and entered the server's store), and the stable mark — which
// only moves when a server-side force that started after the append
// completed — releases the outstanding buffer once every write-set
// server has published it. Force degenerates to "stamp the force point,
// wait for stability to cross it": when the tail has already been
// streamed it sends a ForcePoint instead of re-sending records.
//
// Congestion control is AIMD: a TBusy NACK (the server shed a write)
// or a retransmission timeout halves the effective window; each ack
// that makes progress widens it by one, back up to WriteWindow.

// sendWindow is the client half of the sliding-window flow control:
// the frames sent but not yet covered by the server's cumulative
// appended mark, and the AIMD-adjusted limit on how many may be in
// flight. Guarded by the owning session's mutex.
type sendWindow struct {
	cwnd int // effective window (frames); halved on congestion, min 1
	max  int // Config.WriteWindow: the ceiling cwnd ramps back to

	inflight []frameInFlight // FIFO, oldest first
	bytes    int             // record payload bytes currently in flight
}

// frameInFlight is one unacknowledged record frame.
type frameInFlight struct {
	lastLSN record.LSN // highest LSN the frame carries
	bytes   int
	sentAt  time.Time
}

// open reports whether another frame may be sent now.
func (w *sendWindow) open() bool { return len(w.inflight) < w.cwnd }

// onSent records one transmitted frame.
func (w *sendWindow) onSent(last record.LSN, bytes int, at time.Time) {
	w.inflight = append(w.inflight, frameInFlight{lastLSN: last, bytes: bytes, sentAt: at})
	w.bytes += bytes
}

// ackThrough pops every frame covered by the server's cumulative
// appended mark and returns how many the ack retired.
func (w *sendWindow) ackThrough(appended record.LSN) int {
	n := 0
	for n < len(w.inflight) && w.inflight[n].lastLSN <= appended {
		w.bytes -= w.inflight[n].bytes
		n++
	}
	if n > 0 {
		w.inflight = w.inflight[:copy(w.inflight, w.inflight[n:])]
	}
	return n
}

// oldest returns the send time of the oldest unacknowledged frame.
func (w *sendWindow) oldest() (time.Time, bool) {
	if len(w.inflight) == 0 {
		return time.Time{}, false
	}
	return w.inflight[0].sentAt, true
}

// backoff is the multiplicative decrease: halve the window, floor 1.
func (w *sendWindow) backoff() {
	if w.cwnd > 1 {
		w.cwnd /= 2
	}
}

// widen is the additive increase: one more frame, up to the ceiling.
func (w *sendWindow) widen() {
	if w.cwnd < w.max {
		w.cwnd++
	}
}

// clear drops the in-flight bookkeeping (the send cursor was rewound;
// the retransmission re-registers whatever it sends).
func (w *sendWindow) clear() {
	w.inflight = w.inflight[:0]
	w.bytes = 0
}

// kickStream wakes the streamer goroutine without blocking; a pending
// kick already covers this one. Safe to call with or without l.mu.
func (l *ReplicatedLog) kickStream() {
	select {
	case l.streamKick <- struct{}{}:
	default:
	}
}

// streamAckEvent is the session's acknowledgment callback. While a
// force round is in flight the ack is the round's business — the round
// releases the buffer itself and kicks the streamer once when it
// completes — so the forced-write path pays no per-ack wakeups. The
// exception is a pending force point: a window-capped force relies on
// each ack clocking the next frames out, so those acks must kick or
// the round would deadlock behind a closed window. The race with a
// round starting or ending around the flag reads is benign: a skipped
// kick is covered by the round's completion kick, a spurious one by
// the streamer finding nothing to do.
func (l *ReplicatedLog) streamAckEvent() {
	if l.roundActive.Load() && !l.streamForcing.Load() {
		return
	}
	l.kickStream()
}

// streamBusyEvent is the session's TBusy callback: count the
// congestion NACK and let the streamer retransmit under the halved
// window. Stream counters are incremented off l.mu (like the cursor
// family), so they are monotone but not transactionally consistent
// with the write-path counters.
func (l *ReplicatedLog) streamBusyEvent() {
	l.m.streamBusy.Add(1)
	l.m.streamBackoffs.Add(1)
	l.kickStream()
}

// streamer is the per-log send pipeline: woken by WriteLog appends and
// by server acknowledgments, it packs and transmits frames under each
// session's send window. The timer is armed only while work is truly
// pending — at the flush deadline when a partial frame is held back,
// at the retransmission deadline while frames are in flight — so an
// idle log costs no wakeups, and a log merely waiting for acks wakes
// at the RTO, not at the (thousands-per-second) flush cadence.
func (l *ReplicatedLog) streamer() {
	defer l.pumpWG.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var timerC <-chan time.Time
	var armedAt time.Time // when the armed timer fires; meaningless if timerC is nil
	for {
		deadline := false
		select {
		case <-l.streamQuit:
			return
		case <-l.streamKick:
		case <-timerC:
			timerC = nil
			deadline = true
		}
		wait := l.streamStep(deadline)
		switch {
		case wait > 0:
			// Re-arm only to pull the wakeup earlier: pushing it back on
			// every kick would let a steady ack stream starve the flush
			// deadline of a held-back partial frame.
			target := time.Now().Add(wait)
			if timerC == nil || target.Before(armedAt) {
				if timerC != nil && !timer.Stop() {
					<-timer.C
				}
				timer.Reset(wait)
				timerC = timer.C
				armedAt = target
			}
		case timerC != nil:
			if !timer.Stop() {
				<-timer.C
			}
			timerC = nil
		}
	}
}

// streamStep runs one pass of the pipeline: release records the write
// set has acknowledged stable, then service NACKs, retransmission
// timeouts, and the windowed send for each server. deadline marks a
// timer wakeup, which licenses sending a partial frame. Returns how
// soon the streamer needs an unprompted wakeup (0: none — everything
// sent and acknowledged, any new work will arrive with a kick).
func (l *ReplicatedLog) streamStep(deadline bool) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0
	}
	l.releaseStableLocked()
	var wait time.Duration
	forcing := false
	sooner := func(d time.Duration) {
		if d < l.cfg.FlushInterval {
			d = l.cfg.FlushInterval
		}
		if wait == 0 || d < wait {
			wait = d
		}
	}
	for _, addr := range l.writeSet {
		sess := l.sessions[addr]
		if sess == nil {
			continue
		}
		// Loss handling runs only between force rounds: an in-flight
		// round's waiters own retry, NACK service, and failover for
		// their target, and the streamer must not race their rewinds.
		if l.curRound == nil {
			sess.mu.Lock()
			if at, ok := sess.win.oldest(); ok && time.Since(at) > l.cfg.CallTimeout {
				// Retransmission timeout: presume everything past the
				// appended mark lost, halve the window, rewind, resend.
				sess.win.backoff()
				sess.win.clear()
				if sess.appendedHigh < sess.sentHigh {
					sess.sentHigh = sess.appendedHigh
				}
				rewound := sess.sentHigh
				sess.mu.Unlock()
				l.m.streamTimeouts.Add(1)
				l.m.streamBackoffs.Add(1)
				l.m.trace.Emit(telemetry.EvRetry, sess.addr, uint64(rewound), uint64(l.epoch), 0)
			} else {
				sess.mu.Unlock()
			}
			if err := l.serviceMissingLocked(sess); err != nil {
				l.noteAsyncErrLocked(err)
			}
		}
		held, err := l.streamFramesLocked(sess, deadline)
		if err != nil {
			l.noteAsyncErrLocked(err)
		}
		sess.mu.Lock()
		if sess.forcePoint != 0 {
			forcing = true
		}
		oldestAt, oldestOk := sess.win.oldest()
		sess.mu.Unlock()
		if held {
			sooner(l.cfg.FlushInterval)
			continue
		}
		// Nothing held for the flush deadline; if frames are in flight
		// the next unprompted deadline is their retransmission timeout
		// (acks arrive with their own kicks).
		if oldestOk {
			sooner(time.Until(oldestAt.Add(l.cfg.CallTimeout)))
		}
	}
	// Keep mid-round ack kicks enabled only while some session still has
	// a force point to carry; consistent because force points are
	// planted (sendStreamLocked) and drained (above) under l.mu.
	l.streamForcing.Store(forcing)
	return wait
}

// streamFramesLocked sends unsent outstanding records to one server
// under its send window: full frames immediately, a trailing partial
// frame only once the flush deadline has passed (adaptive packing —
// fill the frame or hit the deadline, whichever comes first). A
// pending force point rides the same windowed stream: the frame that
// covers it goes out as a ForceLog (a bare ForcePoint if the tail was
// already streamed), partials are not held while one is pending, and
// the send never exceeds the window — force traffic obeys the same
// flow control as everything else. Caller holds l.mu. Reports whether
// a partial frame was held back for the flush deadline (data waiting
// behind a closed window is not "held": the ack that reopens the
// window carries its own kick, and a lost ack is the retransmission
// timeout's business).
func (l *ReplicatedLog) streamFramesLocked(sess *session, deadline bool) (bool, error) {
	for {
		sess.mu.Lock()
		winOpen := sess.win.open()
		sentHigh := sess.sentHigh
		fp := sess.forcePoint
		sess.mu.Unlock()

		var toSend []record.Record
		if n := len(l.outstanding); n > 0 {
			first := l.outstanding[0].LSN
			switch {
			case sentHigh < first:
				toSend = l.outstanding
			case sentHigh < l.outstanding[n-1].LSN:
				toSend = l.outstanding[int(sentHigh-first)+1:]
			}
		}
		if len(toSend) == 0 {
			if fp != 0 {
				// The tail is already streamed: stamp the force position
				// without re-sending any records. A lost stamp is the
				// force waiter's timeout to notice; it rewinds and the
				// resent tail carries the force as a ForceLog instead.
				pay := wire.LSNPayload{LSN: fp}
				if _, err := sess.peer.Send(wire.TForcePoint, 0, pay.Encode()); err != nil {
					return false, err
				}
				sess.mu.Lock()
				if sess.forcePoint == fp {
					sess.forcePoint = 0
				}
				sess.mu.Unlock()
			}
			return false, nil
		}
		if !winOpen {
			return false, nil
		}
		n := wire.FitRecords(toSend)
		if n == 0 {
			return false, fmt.Errorf("core: record %d too large for a packet", toSend[0].LSN)
		}
		if n == len(toSend) && !deadline && fp == 0 {
			// Partial frame: hold it back until the flush deadline in
			// the hope that more records arrive to fill it. Never while
			// a force point is pending — the force is waiting on it.
			return true, nil
		}
		batch := toSend[:n]
		last := batch[n-1].LSN
		t := wire.TWriteLog
		if fp != 0 && last >= fp {
			// This frame carries the force point: make it a ForceLog so
			// a single forced write still costs a single packet.
			t = wire.TForceLog
		}
		bytes := 0
		for i := range batch {
			bytes += len(batch[i].Data)
		}
		l.m.trace.Emit(telemetry.EvFlush, sess.addr,
			uint64(last), uint64(l.epoch), uint64(n))
		if _, err := sess.peer.SendRecords(t, 0, l.epoch, batch); err != nil {
			return true, err
		}
		if t == wire.TWriteLog {
			faultpoint.Hit(FPStreamAfterSend)
		}
		sess.mu.Lock()
		if last > sess.sentHigh {
			sess.sentHigh = last
		}
		if t == wire.TForceLog && sess.forcePoint == fp {
			sess.forcePoint = 0
		}
		sess.win.onSent(last, bytes, time.Now())
		occ, cw, fly := len(sess.win.inflight), sess.win.cwnd, sess.win.bytes
		sess.mu.Unlock()
		l.m.streamFrames.Add(1)
		l.m.streamOccupancy.Observe(uint64(occ))
		l.m.streamCwnd.Observe(uint64(cw))
		l.m.streamInflightBytes.Observe(uint64(fly))
	}
}

// releaseStableLocked advances the client's stability edge without a
// force round: the minimum cumulative stable mark across the write set
// releases the outstanding prefix it covers. Sound because a server
// never publishes a stable mark unless a store force that started
// after the covered appends completed (the acker invariant), so the
// minimum across all N servers is exactly the Section 3.1 guarantee a
// force round would have established. Caller holds l.mu.
func (l *ReplicatedLog) releaseStableLocked() {
	if len(l.outstanding) == 0 || len(l.writeSet) == 0 {
		return
	}
	var min record.LSN
	for i, addr := range l.writeSet {
		sess := l.sessions[addr]
		if sess == nil {
			return
		}
		sess.mu.Lock()
		a := sess.ackedHigh
		sess.mu.Unlock()
		if i == 0 || a < min {
			min = a
		}
	}
	l.releaseThroughLocked(min)
}

// waitReleaseLocked blocks a δ-bounded writer until background release
// drops the outstanding buffer below Delta, the deadline passes, or
// the log closes. Caller holds l.mu; returns whether the bound cleared.
func (l *ReplicatedLog) waitReleaseLocked(deadline time.Time) bool {
	var timer *time.Timer
	for len(l.outstanding) >= l.cfg.Delta && !l.closed {
		if !time.Now().Before(deadline) {
			return false
		}
		if timer == nil {
			timer = time.AfterFunc(time.Until(deadline), func() {
				l.mu.Lock()
				l.writeCond.Broadcast()
				l.mu.Unlock()
			})
			defer timer.Stop()
		}
		l.writeCond.Wait()
	}
	return len(l.outstanding) < l.cfg.Delta
}
