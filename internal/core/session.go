package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"distlog/internal/record"
	"distlog/internal/transport"
	"distlog/internal/wire"
)

// Session errors.
var (
	// ErrCallTimeout is returned when a synchronous call exhausts its
	// retries without a response.
	ErrCallTimeout = errors.New("core: call timed out")
	// ErrSessionClosed is returned after the session is shut down.
	ErrSessionClosed = errors.New("core: session closed")
	// ErrServerReset is returned when the server answered with Rst (it
	// lost the connection state); the caller should re-dial.
	ErrServerReset = errors.New("core: server reset the connection")
	// ErrServerLeaving is returned when the server answered a write with
	// a Redirect drain hint: it is administratively leaving and will not
	// accept writes again. The caller should migrate, not retry.
	ErrServerLeaving = errors.New("core: server is leaving (redirected)")
)

// RemoteError is a server-reported call failure (TErrResp).
type RemoteError struct {
	Code    uint16
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("core: server error %d: %s", e.Code, e.Message)
}

// IsNotStored reports whether err is the server's "record not stored"
// answer.
func IsNotStored(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.CodeNotStored
}

// IsTooLarge reports whether err is the server's "record stored but
// too large for one reply packet" answer. Unlike CodeNotStored, the
// server does hold the record.
func IsTooLarge(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.CodeTooLarge
}

// session is the client's connection to one log server: handshake,
// synchronous calls with retry, asynchronous write streaming, and the
// acknowledgment state fed by the receive pump.
type session struct {
	addr string
	peer *wire.Peer

	callTimeout time.Duration
	retries     int

	// onRetry, when set, runs before each retransmission after a
	// timeout — the hook a dual-network endpoint uses to fail over to
	// its second network (Section 2's two-LAN arrangement).
	onRetry func()

	// onAck and onBusy are the streaming write pipeline's wakeups,
	// invoked (without s.mu held) after a write acknowledgment or a
	// TBusy congestion NACK is absorbed. Both are set before the
	// session is published to the log's session map and never change,
	// so deliver may read them without the lock.
	onAck  func()
	onBusy func()

	// ready is closed by the dialing goroutine once handshake() has
	// settled; hsErr (valid after ready) holds its result. Concurrent
	// dialers of the same address block on ready instead of being
	// handed a session whose handshake is still in flight.
	ready chan struct{}

	mu        sync.Mutex
	cond      *sync.Cond
	hsErr     error      // handshake result; valid once ready is closed
	ackedHigh record.LSN // highest stable LSN acknowledged (NewHighLSN)
	// appendedHigh is the highest LSN the server reports appended (the
	// second field of a streamed write ack): the retransmission rewind
	// point — everything above it is presumed lost on a timeout.
	appendedHigh record.LSN
	sentHigh     record.LSN // highest LSN sent in this connection's stream
	// win is the sliding send window of the streaming write protocol
	// (see sendwindow.go), guarded by s.mu like the cursors above.
	win sendWindow
	// forcePoint is the LSN through which a pending force wants the
	// stream stamped: the streamer sends the frame covering it as a
	// ForceLog (or a bare ForcePoint when the tail is already streamed)
	// and clears it. Forces never bypass the send window — they mark
	// where the force lands and let the windowed pipeline carry it.
	forcePoint record.LSN
	pending    map[uint64]chan *wire.Packet
	// streams are multi-shot sinks for TReadStreamData chunks, keyed by
	// the request Seq like pending. Unlike pending entries they survive
	// multiple deliveries; deliver sends non-blocking under mu (the
	// channel is sized for the largest reply a request can provoke, so
	// drops only happen on protocol violations) and close/Rst close them
	// under the same mu, so a send can never race a close.
	streams map[uint64]chan *wire.Packet
	missing []wire.IntervalPayload // MissingInterval NACKs awaiting service
	reset   bool                   // server sent Rst: connection is dead
	// redirected records a TRedirect drain hint: the server is leaving
	// and will never accept this session's writes again. Unlike reset
	// the connection stays usable for reads.
	redirected bool
	closed     bool
}

func newSession(ep transport.Endpoint, addr string, clientID record.ClientID, connID uint64, window uint64, pause, callTimeout time.Duration, retries int) *session {
	s := &session{
		addr:        addr,
		peer:        wire.NewPeer(ep, addr, clientID, connID, window, pause),
		callTimeout: callTimeout,
		retries:     retries,
		ready:       make(chan struct{}),
		pending:     make(map[uint64]chan *wire.Packet),
		streams:     make(map[uint64]chan *wire.Packet),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// handshake performs the client side of the three-way handshake: send
// Syn, await SynAck (via the receive pump), send Ack.
func (s *session) handshake() error {
	for attempt := 0; attempt <= s.retries; attempt++ {
		ch := make(chan *wire.Packet, 1)
		seq, err := s.peer.Send(wire.TSyn, 0, nil)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.pending[seq] = ch
		s.mu.Unlock()

		timer := time.NewTimer(s.callTimeout)
		select {
		case pkt, ok := <-ch:
			timer.Stop()
			if ok && pkt.Type == wire.TSynAck {
				s.peer.SetEstablished()
				s.peer.Send(wire.TAck, pkt.Seq, nil)
				return nil
			}
		case <-timer.C:
			s.mu.Lock()
			delete(s.pending, seq)
			s.mu.Unlock()
			if s.onRetry != nil {
				s.onRetry()
			}
		}
	}
	return fmt.Errorf("%w: handshake with %s", ErrCallTimeout, s.addr)
}

// deliver routes one packet from the receive pump into the session.
func (s *session) deliver(pkt *wire.Packet) {
	if pkt.Type == wire.TRst {
		s.mu.Lock()
		s.reset = true
		for seq, ch := range s.pending {
			close(ch)
			delete(s.pending, seq)
		}
		for seq, ch := range s.streams {
			close(ch)
			delete(s.streams, seq)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	if !s.peer.Observe(pkt) {
		return
	}
	switch {
	case pkt.Type == wire.TSynAck || pkt.RespTo != 0:
		s.mu.Lock()
		ch, ok := s.pending[pkt.RespTo]
		if ok {
			delete(s.pending, pkt.RespTo)
		}
		if !ok {
			// Not a one-shot call: a stream chunk, or an error reply to
			// a stream request. Sent non-blocking while holding mu — see
			// the streams field comment for why this cannot race a close.
			if sch, sok := s.streams[pkt.RespTo]; sok {
				cp := *pkt
				select {
				case sch <- &cp:
				default:
				}
			}
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		// Copy the packet so the pump's stack-allocated value never
		// escapes: only the infrequent RPC-response path pays a heap
		// allocation, keeping streamed acks allocation-free.
		cp := *pkt
		ch <- &cp
	case pkt.Type == wire.TNewHighLSN:
		// Decoded inline: the streamed-ack path runs continuously under
		// load and must not allocate. A legacy 8-byte ack carries only
		// the stable mark (stable == appended); the 16-byte streaming
		// encoding adds the appended high-water mark that advances the
		// send window.
		var stable, appended record.LSN
		switch len(pkt.Payload) {
		case 8:
			stable = record.LSN(binary.BigEndian.Uint64(pkt.Payload))
			appended = stable
		case 16:
			stable = record.LSN(binary.BigEndian.Uint64(pkt.Payload[:8]))
			appended = record.LSN(binary.BigEndian.Uint64(pkt.Payload[8:]))
		default:
			return
		}
		s.mu.Lock()
		if stable > s.ackedHigh {
			s.ackedHigh = stable
		}
		if appended > s.appendedHigh {
			s.appendedHigh = appended
		}
		if s.win.ackThrough(appended) > 0 {
			// Progress under the current window: additive ramp-up.
			s.win.widen()
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		if s.onAck != nil {
			s.onAck()
		}
	case pkt.Type == wire.TBusy:
		// Congestion NACK: the server shed one of our write messages.
		// Halve the effective window and rewind the send cursor to the
		// appended mark — everything past it may have been shed — so the
		// streamer retransmits under the reduced window.
		s.mu.Lock()
		s.win.backoff()
		s.win.clear()
		if s.appendedHigh < s.sentHigh {
			s.sentHigh = s.appendedHigh
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		if s.onBusy != nil {
			s.onBusy()
		}
	case pkt.Type == wire.TRedirect:
		// Drain hint: the server is leaving. Wake the force waiters so
		// they move this session's writes elsewhere now instead of
		// timing out first; reads continue to work.
		s.mu.Lock()
		s.redirected = true
		s.cond.Broadcast()
		s.mu.Unlock()
	case pkt.Type == wire.TMissingInterval:
		p, err := wire.DecodeIntervalPayload(pkt.Payload)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.missing = append(s.missing, *p)
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// call performs one synchronous RPC with retries. Operations are
// idempotent, so retrying after a lost request or reply is safe.
func (s *session) call(t wire.Type, payload []byte) (*wire.Packet, error) {
	return s.callWith(t, payload, 0, nil)
}

// callRecords performs a synchronous RPC whose request embeds grouped
// records (epoch + record list encoded directly into the frame). Going
// through the peer's record-aware framer lets the envelope version
// reflect the records' needs: a dep-vectored recovery copy travels
// under the bumped wire version instead of hiding inside a base-version
// frame an old server would misjudge as safe.
func (s *session) callRecords(t wire.Type, epoch record.Epoch, recs []record.Record) (*wire.Packet, error) {
	return s.callWith(t, nil, epoch, recs)
}

// callWith sends through the record-aware framer when recs is non-nil
// and the plain payload framer otherwise. The two sends are spelled as
// a branch rather than a captured closure: call sits on the hot write
// path and must not allocate.
func (s *session) callWith(t wire.Type, payload []byte, epoch record.Epoch, recs []record.Record) (*wire.Packet, error) {
	for attempt := 0; attempt <= s.retries; attempt++ {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrSessionClosed
		}
		if s.reset {
			s.mu.Unlock()
			return nil, ErrServerReset
		}
		s.mu.Unlock()

		var seq uint64
		var err error
		if recs != nil {
			seq, err = s.peer.SendRecords(t, 0, epoch, recs)
		} else {
			seq, err = s.peer.Send(t, 0, payload)
		}
		if err != nil {
			return nil, err
		}
		ch := make(chan *wire.Packet, 1)
		s.mu.Lock()
		s.pending[seq] = ch
		s.mu.Unlock()

		timer := time.NewTimer(s.callTimeout)
		select {
		case pkt, ok := <-ch:
			timer.Stop()
			if !ok {
				// Channel closed by Rst or session shutdown.
				s.mu.Lock()
				reset := s.reset
				s.mu.Unlock()
				if reset {
					return nil, ErrServerReset
				}
				return nil, ErrSessionClosed
			}
			if pkt.Type == wire.TErrResp {
				ep, err := wire.DecodeErrPayload(pkt.Payload)
				if err != nil {
					return nil, err
				}
				return nil, &RemoteError{Code: ep.Code, Message: ep.Message}
			}
			return pkt, nil
		case <-timer.C:
			s.mu.Lock()
			delete(s.pending, seq)
			s.mu.Unlock()
			// Lost request or reply: retry (operations are idempotent);
			// a dual-network endpoint fails over first.
			if s.onRetry != nil {
				s.onRetry()
			}
		}
	}
	return nil, fmt.Errorf("%w: %s to %s", ErrCallTimeout, t, s.addr)
}

// openStream sends a ReadStream request and registers a multi-shot
// sink for its reply chunks. The caller consumes packets from the
// channel (nil delivery never happens; a closed channel means the
// session died) and must closeStream when finished.
func (s *session) openStream(req *wire.ReadStreamPayload) (uint64, chan *wire.Packet, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, nil, ErrSessionClosed
	}
	if s.reset {
		s.mu.Unlock()
		return 0, nil, ErrServerReset
	}
	s.mu.Unlock()

	seq, err := s.peer.Send(wire.TReadStreamReq, 0, req.Encode())
	if err != nil {
		return 0, nil, err
	}
	// Sized for the largest reply one request can provoke (the chunk
	// budget plus an error reply), so the non-blocking deliver never
	// drops a legitimate chunk.
	ch := make(chan *wire.Packet, 64)
	s.mu.Lock()
	if s.closed || s.reset {
		s.mu.Unlock()
		return 0, nil, ErrSessionClosed
	}
	s.streams[seq] = ch
	s.mu.Unlock()
	return seq, ch, nil
}

// closeStream unregisters a stream sink. Chunks still in flight are
// dropped by deliver once the entry is gone.
func (s *session) closeStream(seq uint64) {
	s.mu.Lock()
	if ch, ok := s.streams[seq]; ok {
		delete(s.streams, seq)
		close(ch)
	}
	s.mu.Unlock()
}

// takeMissing removes and returns any queued MissingInterval NACKs.
func (s *session) takeMissing() []wire.IntervalPayload {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.missing
	s.missing = nil
	return m
}

// waitAck blocks until the server has acknowledged lsn, the deadline
// passes, a MissingInterval arrives (the caller must service it), or
// the session dies.
func (s *session) waitAck(lsn record.LSN, deadline time.Time) (acked bool, nacked bool, err error) {
	var timer *time.Timer
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		switch {
		case s.ackedHigh >= lsn:
			return true, false, nil
		case len(s.missing) > 0:
			return false, true, nil
		case s.closed:
			return false, false, ErrSessionClosed
		case s.reset:
			return false, false, ErrServerReset
		case s.redirected:
			return false, false, ErrServerLeaving
		case !time.Now().Before(deadline):
			return false, false, nil
		}
		if timer == nil {
			// The timer only wakes the cond wait at the deadline; the
			// fast path — ack already arrived — never allocates it.
			timer = time.AfterFunc(time.Until(deadline), func() {
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			})
			defer timer.Stop()
		}
		s.cond.Wait()
	}
}

// close shuts the session down locally.
func (s *session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for seq, ch := range s.pending {
		close(ch)
		delete(s.pending, seq)
	}
	for seq, ch := range s.streams {
		close(ch)
		delete(s.streams, seq)
	}
	s.cond.Broadcast()
}
