package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distlog/internal/record"
	"distlog/internal/server"
	"distlog/internal/storage"
	"distlog/internal/transport"
)

// Adversarial tests of the streaming write protocol (sendwindow.go):
// the pipeline must survive loss, duplication, reordering, and holder
// failure without stalling permanently — and, the Section 3.1 side of
// the coin, without ever releasing (acking to the application) a
// record that skipped a gap on its way to stability.

// streamPayload builds a record body big enough that a handful fill a
// frame, so the tests exercise multi-frame windows, not just the
// trailing partial frame.
func streamPayload(i int) []byte {
	data := make([]byte, 256)
	copy(data, fmt.Sprintf("stream-record-%05d", i))
	return data
}

// writeAndVerifyUnderFaults drives writes through an already-faulty
// network, forces the tail, clears the faults, and verifies every
// record end to end. Verification is the gap-skip check: a record the
// client released without full write-set coverage would have vanished
// with the faults.
func writeAndVerifyUnderFaults(t *testing.T, c *cluster, l *ReplicatedLog, writes int) {
	t.Helper()
	lsns := make(map[record.LSN]int, writes)
	for i := 0; i < writes; i++ {
		lsn, err := l.WriteLog(streamPayload(i))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		lsns[lsn] = i
		if i%32 == 31 {
			if err := l.Force(); err != nil {
				t.Fatalf("interim force at %d: %v", i, err)
			}
		}
	}
	if err := l.Force(); err != nil {
		t.Fatalf("final force: %v", err)
	}
	c.net.SetFaults(transport.Faults{})
	for lsn, i := range lsns {
		data, err := l.ReadLog(lsn)
		if err != nil {
			t.Fatalf("ReadLog(%d) after faults: %v", lsn, err)
		}
		if want := string(streamPayload(i)); string(data) != want {
			t.Fatalf("ReadLog(%d) = %q, want record %d", lsn, data[:20], i)
		}
	}
}

// TestStreamingUnderLoss drops 15% of all packets: frames vanish, acks
// vanish, NACKs vanish. The retransmission timeout and the cumulative
// acks must keep the stream moving, and nothing may be released early.
func TestStreamingUnderLoss(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) {
		cfg.Delta = 32
		cfg.CallTimeout = 50 * time.Millisecond
	})
	defer l.Close()
	c.net.SetFaults(transport.Faults{DropProb: 0.15})
	writeAndVerifyUnderFaults(t, c, l, 160)
}

// TestStreamingUnderDupAndReorder duplicates 20% of packets and delays
// deliveries by up to 2ms, so frames overtake each other and cumulative
// acks arrive out of order. Duplicated frames must be absorbed
// idempotently (full-overlap retransmissions draw a repeated ack, not a
// double append) and reordered frames must be NACKed and resent, never
// acked across the gap.
func TestStreamingUnderDupAndReorder(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) {
		cfg.Delta = 32
		cfg.CallTimeout = 50 * time.Millisecond
	})
	defer l.Close()
	c.net.SetFaults(transport.Faults{DupProb: 0.20, MaxDelay: 2 * time.Millisecond})
	writeAndVerifyUnderFaults(t, c, l, 160)
}

// TestStreamingHolderFailsMidStream kills a write-set server in the
// middle of an active stream. The client must neither stall (the force
// fails over to a spare) nor lose a record (everything written remains
// readable afterwards).
func TestStreamingHolderFailsMidStream(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) {
		cfg.Delta = 32
		cfg.CallTimeout = 50 * time.Millisecond
	})
	defer l.Close()

	lsns := make(map[record.LSN]int)
	for i := 0; i < 40; i++ {
		lsn, err := l.WriteLog(streamPayload(i))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		lsns[lsn] = i
	}
	// Kill one current holder mid-stream, then keep writing through it.
	victim := l.WriteSet()[0]
	c.stop(victim)
	for i := 40; i < 80; i++ {
		lsn, err := l.WriteLog(streamPayload(i))
		if err != nil {
			t.Fatalf("write %d after holder failure: %v", i, err)
		}
		lsns[lsn] = i
	}
	if err := l.Force(); err != nil {
		t.Fatalf("force across holder failure: %v", err)
	}
	for _, a := range l.WriteSet() {
		if a == victim {
			t.Fatalf("failed holder %s still in write set %v", victim, l.WriteSet())
		}
	}
	for lsn, i := range lsns {
		data, err := l.ReadLog(lsn)
		if err != nil {
			t.Fatalf("ReadLog(%d): %v", lsn, err)
		}
		if want := string(streamPayload(i)); string(data) != want {
			t.Fatalf("ReadLog(%d) corrupt after failover", lsn)
		}
	}
}

// TestBackgroundReleaseWithoutForce is the protocol's reason to exist:
// on a healthy network a stream of plain writes drains to stability —
// and survives a client restart — without the application ever calling
// Force. The servers' continuous stability acks alone must release the
// buffer.
func TestBackgroundReleaseWithoutForce(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) {
		cfg.Delta = 16
		cfg.CallTimeout = 2 * time.Second // keep the δ fallback force out of the picture
	})
	lsns := make(map[record.LSN]int)
	for i := 0; i < 64; i++ {
		lsn, err := l.WriteLog(streamPayload(i))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		lsns[lsn] = i
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		n := len(l.outstanding)
		l.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("outstanding stuck at %d without a force", n)
		}
		time.Sleep(time.Millisecond)
	}
	s := l.Stats()
	if s.ForceRounds != 0 {
		t.Fatalf("background release ran %d force rounds, want 0", s.ForceRounds)
	}
	if s.StreamFrames == 0 {
		t.Fatal("no frames streamed")
	}
	// The released records must be durable, not just acked: a client
	// restart (recovery re-copies only the last δ) must find them.
	l.Close()
	l = mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 16 })
	defer l.Close()
	for lsn, i := range lsns {
		data, err := l.ReadLog(lsn)
		if err != nil {
			t.Fatalf("ReadLog(%d) after restart: %v", lsn, err)
		}
		if want := string(streamPayload(i)); string(data) != want {
			t.Fatalf("ReadLog(%d) corrupt after restart", lsn)
		}
	}
}

// TestBusyNACKShrinksWindow overloads a server so it sheds writes with
// TBusy, and checks the client's AIMD response: the effective window
// collapses, the stream keeps retrying, and once the overload clears
// everything becomes stable with no record lost.
func TestBusyNACKShrinksWindow(t *testing.T) {
	net := transport.NewNetwork(42)
	store := storage.NewMemStore()
	var overloaded atomic.Bool
	srv := server.New(server.Config{
		Name:       "s1",
		Store:      store,
		Endpoint:   net.Endpoint("s1"),
		Epochs:     server.NewMemEpochHost(),
		Overloaded: func() bool { return overloaded.Load() },
	})
	srv.Start()
	defer srv.Stop()

	l, err := Open(Config{
		ClientID:    1,
		Servers:     []string{"s1"},
		N:           1,
		Delta:       64,
		Endpoint:    net.Endpoint("client-1"),
		CallTimeout: 50 * time.Millisecond,
		Retries:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	overloaded.Store(true)
	var lsns []record.LSN
	for i := 0; i < 24; i++ {
		lsn, err := l.WriteLog(streamPayload(i))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		lsns = append(lsns, lsn)
	}
	deadline := time.Now().Add(3 * time.Second)
	for l.Stats().StreamBusy == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server shed writes but no Busy NACK reached the window")
		}
		time.Sleep(time.Millisecond)
	}
	overloaded.Store(false)
	if err := l.Force(); err != nil {
		t.Fatalf("force after overload cleared: %v", err)
	}
	s := l.Stats()
	if s.StreamBackoffs == 0 {
		t.Fatal("Busy NACKs arrived but the window never backed off")
	}
	for i, lsn := range lsns {
		data, err := l.ReadLog(lsn)
		if err != nil {
			t.Fatalf("ReadLog(%d): %v", lsn, err)
		}
		if want := string(streamPayload(i)); string(data) != want {
			t.Fatalf("ReadLog(%d) corrupt after overload", lsn)
		}
	}
}

// TestErrSurfacesAsyncFailure pins the per-log error surface: a
// background send failure must show up in Err() and fire the OnError
// health callback — the old write path swallowed these — and a
// subsequent successful Force must clear the episode.
func TestErrSurfacesAsyncFailure(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	errCh := make(chan error, 4)
	l := mustOpen(t, c, 1, 2, func(cfg *Config) {
		cfg.OnError = func(err error) { errCh <- err }
	})
	defer l.Close()

	if _, err := l.ForceLog([]byte("healthy")); err != nil {
		t.Fatal(err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("healthy log reports Err %v", err)
	}

	// Clearing: a recorded episode ends at the next successful Force.
	injected := errors.New("injected episode")
	l.mu.Lock()
	l.noteAsyncErrLocked(injected)
	l.mu.Unlock()
	if err := l.Err(); !errors.Is(err, injected) {
		t.Fatalf("Err = %v, want injected episode", err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, injected) {
			t.Fatalf("OnError got %v, want injected episode", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnError callback never fired")
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("Err = %v after successful Force, want nil", err)
	}

	// A real failure: cut the client's transport out from under the
	// pipeline. The next buffered write's background send must record
	// an episode rather than vanish.
	if _, err := l.WriteLog([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	l.cfg.Endpoint.Close()
	l.kickStream()
	deadline := time.Now().Add(3 * time.Second)
	for l.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background send failure never surfaced in Err")
		}
		l.kickStream()
		time.Sleep(time.Millisecond)
	}
}

// TestMigrationRacesStreamAndForce migrates the write set repeatedly
// while a writer goroutine streams records and forces concurrently —
// the interleaving live rebalancing creates. The invariant under
// audit is ack-then-lose: every record covered by a Force that
// returned nil must stay readable afterwards, no matter which side of
// a migration swap its frames landed on. A force racing a migration
// may only complete on the old interval, complete on the new one, or
// surface an error — it may never acknowledge a record that then
// vanishes. Duplication and delay keep frames overtaking the
// migration's per-session rewinds.
func TestMigrationRacesStreamAndForce(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3", "s4")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) {
		cfg.Delta = 32
		cfg.CallTimeout = 100 * time.Millisecond
	})
	defer l.Close()
	c.net.SetFaults(transport.Faults{DupProb: 0.10, MaxDelay: time.Millisecond})

	type rec struct {
		lsn record.LSN
		i   int
	}
	var (
		mu    sync.Mutex
		acked []rec
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var pending []rec
		for i := 0; i < 240; i++ {
			lsn, err := l.WriteLog(streamPayload(i))
			if err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			pending = append(pending, rec{lsn, i})
			if len(pending) >= 8 {
				if err := l.Force(); err != nil {
					// Allowed: the race surfaced as an error; the records
					// stay pending and the next force covers them.
					continue
				}
				mu.Lock()
				acked = append(acked, pending...)
				mu.Unlock()
				pending = pending[:0]
			}
		}
		if err := l.Force(); err == nil {
			mu.Lock()
			acked = append(acked, pending...)
			mu.Unlock()
		}
	}()

	// Rotate the write set for as long as the writer runs.
	sets := [][]string{{"s3", "s4"}, {"s1", "s2"}, {"s2", "s4"}, {"s1", "s3"}}
	migrations := 0
loop:
	for i := 0; ; i++ {
		select {
		case <-done:
			break loop
		default:
		}
		if err := l.Migrate(sets[i%len(sets)]); err != nil {
			t.Fatalf("migrate %d: %v", i, err)
		}
		migrations++
		time.Sleep(2 * time.Millisecond)
	}
	if migrations < 2 {
		t.Fatalf("only %d migrations raced the stream; want several", migrations)
	}

	// Heal the network and verify: everything acknowledged must read
	// back intact, and the log must still be healthy and usable.
	c.net.SetFaults(transport.Faults{})
	if err := l.Force(); err != nil {
		t.Fatalf("final force: %v", err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("Err after successful force: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no force ever succeeded during the race")
	}
	for _, r := range acked {
		data, err := l.ReadLog(r.lsn)
		if err != nil {
			t.Fatalf("acked record %d (LSN %d) lost after migrations: %v", r.i, r.lsn, err)
		}
		if want := string(streamPayload(r.i)); string(data) != want {
			t.Fatalf("acked record %d (LSN %d) corrupt after migrations", r.i, r.lsn)
		}
	}
}
