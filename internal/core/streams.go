package core

import (
	"fmt"
	"sync"

	"distlog/internal/faultpoint"
	"distlog/internal/record"
)

// Parallel multi-stream logging (Taurus-style). A log opened with
// Config.Streams = K > 1 is K independent replicated logs — each with
// its own LSN sequence, epoch, send window, outstanding buffer, and
// per-server sessions — multiplexed over the one transport endpoint.
// Stream i writes under the derived identity ClientID | i<<56, so the
// servers keep per-stream session state (acker marks, interval lists,
// epoch representatives) with no new protocol: to a server a stream is
// just another client.
//
// Ordering across streams is recovered from dependency vectors, not a
// total order: a commit-class record appended with Stream.WriteCommit
// is stamped with each sibling stream's highest assigned LSN at append
// time. Recovery replays the K streams in parallel and merges by those
// vectors (OpenMergedCursor): a commit is applied only after every
// sibling prefix it observed. Records written with plain WriteLog carry
// no vector and impose no cross-stream order — the transaction layer
// orders them through the commit records that cover them.
//
// The dependency-vector invariant: a vector entry (j, h) is read from
// stream j's published high-LSN *before* the commit record is appended,
// so the dependency graph over commit records is acyclic and dependency
// order extends every per-stream LSN order.

// maxStreams bounds Config.Streams. The derived-identity scheme spends
// the ClientID's top byte on the stream index.
const maxStreams = 255

// StreamClientID returns the derived identity stream i of a K-stream
// log writes under. Stream 0 is the base ClientID itself, so a
// single-stream log is bit-for-bit the classic one.
func StreamClientID(base record.ClientID, i int) record.ClientID {
	if i == 0 {
		return base
	}
	return base | record.ClientID(uint64(i)<<56)
}

// registerStreams creates and registers the K-1 child per-stream logs
// of a multi-stream parent. Called from Open once the parent's receive
// pump is running — children are registered for packet routing before
// they dial, so their handshakes ride that pump — and before any
// initialization, the parent's included, so child recovery can overlap
// it.
func (l *ReplicatedLog) registerStreams() {
	k := l.cfg.Streams
	l.mu.Lock()
	l.childByID = make(map[record.ClientID]*ReplicatedLog)
	l.streams = make([]*ReplicatedLog, k)
	l.streams[0] = l
	l.mu.Unlock()
	l.m.enableStreamCounters(l.cfg.Telemetry, 0)
	for i := 1; i < k; i++ {
		ccfg := l.cfg
		ccfg.ClientID = StreamClientID(l.cfg.ClientID, i)
		ccfg.Streams = 1
		c := newLog(ccfg, fmt.Sprintf("#s%d", i))
		c.parent = l
		c.streamIdx = i
		c.shared = true
		c.m.enableStreamCounters(ccfg.Telemetry, i)
		l.mu.Lock()
		l.childByID[ccfg.ClientID] = c
		l.streams[i] = c
		l.mu.Unlock()
		if !ccfg.DisableWriteStream {
			c.pumpWG.Add(1)
			go c.streamer()
		}
	}
}

// initializeStreams runs the K-1 children's Section 3.1.2
// initializations concurrently: each costs several round trips against
// the servers, and the children share nothing but the transport, so
// restart latency stays flat in K instead of growing linearly. The
// streams are independent replicated logs — each recovers its own tail
// under its own epoch — which is what makes the concurrency sound.
func (l *ReplicatedLog) initializeStreams() error {
	children := l.streamLogs()[1:]
	errs := make([]error, len(children))
	var wg sync.WaitGroup
	for idx := range children {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			if err := children[idx].initialize(); err != nil {
				errs[idx] = fmt.Errorf("core: opening stream %d: %w", idx+1, err)
			}
		}(idx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Streams returns K, the number of parallel streams this log writes.
func (l *ReplicatedLog) Streams() int {
	if l.parent != nil {
		return l.parent.Streams()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.streams) == 0 {
		return 1
	}
	return len(l.streams)
}

// Stream returns the handle for stream i. Stream 0 is the log itself —
// every single-stream Log method is an exact alias for it — so
// Stream(0) is valid on any log, including one opened without the
// Streams option.
func (l *ReplicatedLog) Stream(i int) *Stream {
	root := l
	if l.parent != nil {
		root = l.parent
	}
	root.mu.Lock()
	streams := root.streams
	root.mu.Unlock()
	if len(streams) == 0 {
		if i != 0 {
			panic(fmt.Sprintf("core: Stream(%d) on a single-stream log", i))
		}
		return &Stream{log: root, idx: 0}
	}
	if i < 0 || i >= len(streams) {
		panic(fmt.Sprintf("core: Stream(%d) out of range [0,%d)", i, len(streams)))
	}
	return &Stream{log: streams[i], idx: i}
}

// streamLogs returns the per-stream logs in index order (just the log
// itself for a single-stream log).
func (l *ReplicatedLog) streamLogs() []*ReplicatedLog {
	root := l
	if l.parent != nil {
		root = l.parent
	}
	root.mu.Lock()
	defer root.mu.Unlock()
	if len(root.streams) == 0 {
		return []*ReplicatedLog{root}
	}
	return root.streams
}

// depVector reads the dependency vector for a commit on stream self:
// every sibling stream's highest assigned LSN, skipping streams that
// have written nothing. The reads are lock-free snapshots of published
// highs; each is necessarily ≤ the sibling's high at any later moment,
// which is the direction the invariant needs.
func (l *ReplicatedLog) depVector(self int) []record.StreamDep {
	logs := l.streamLogs()
	if len(logs) <= 1 {
		return nil
	}
	deps := make([]record.StreamDep, 0, len(logs)-1)
	for i, s := range logs {
		if i == self || s == nil {
			continue
		}
		if h := s.lastLSN.Load(); h > 0 {
			deps = append(deps, record.StreamDep{Stream: uint32(i), High: record.LSN(h)})
		}
	}
	return deps
}

// Stream is the handle for one stream of a (possibly multi-stream)
// replicated log. Every method maps onto the stream's own replicated
// log, so per-stream operations never contend on another stream's
// locks; WriteCommit is the one cross-stream operation, and it reads
// only lock-free published LSN highs from the siblings.
type Stream struct {
	log *ReplicatedLog
	idx int
}

// Index returns the stream's index within its log (0..K-1).
func (s *Stream) Index() int { return s.idx }

// Log exposes the stream's underlying replicated log. The returned log
// is a full single-stream client (cursors, checkpoints, stats); callers
// must not Close it — the parent log owns its lifecycle.
func (s *Stream) Log() *ReplicatedLog { return s.log }

// WriteLog appends a record to this stream and returns its LSN in the
// stream's own LSN sequence.
func (s *Stream) WriteLog(data []byte) (record.LSN, error) {
	return s.log.WriteLog(data)
}

// ForceLog appends a record to this stream and forces the stream
// through it.
func (s *Stream) ForceLog(data []byte) (record.LSN, error) {
	return s.log.ForceLog(data)
}

// Force makes every record written to this stream stable on its N
// servers. Other streams are unaffected: a transaction that must be
// durable forces only the streams it wrote.
func (s *Stream) Force() error { return s.log.Force() }

// WriteCommit appends a commit-class record: one stamped with the
// dependency vector of every sibling stream's current high LSN, so
// dependency-ordered recovery replays it after the sibling prefixes it
// could have observed. On a single-stream log it degenerates to
// WriteLog. The record is buffered like any write; pair it with Force
// (or use ForceCommit) for the durable commit point.
func (s *Stream) WriteCommit(data []byte) (record.LSN, error) {
	deps := s.log.depVector(s.idx)
	// A crash here holds a vector naming records that may never become
	// stable; the commit record itself is not yet written, so recovery
	// must see a log without it.
	faultpoint.Hit(FPCommitVector)
	lsn, err := s.log.writeLog(data, deps, true)
	if err == nil && s.log.m.sCommits != nil {
		s.log.m.sCommits.Add(1)
	}
	return lsn, err
}

// ForceCommit appends a commit-class record and forces the stream
// through it: the multi-stream forced commit point.
func (s *Stream) ForceCommit(data []byte) (record.LSN, error) {
	lsn, err := s.WriteCommit(data)
	if err != nil {
		return 0, err
	}
	return lsn, s.log.Force()
}

// Checkpoint writes a checkpoint record to this stream and advances the
// stream's truncation point (Section 5.3), exactly as Log.Checkpoint
// does for a single-stream log.
func (s *Stream) Checkpoint(data []byte) (record.LSN, error) {
	return s.log.Checkpoint(data)
}

// TruncatePrefix advances the stream's truncation point.
func (s *Stream) TruncatePrefix(before record.LSN) error {
	return s.log.TruncatePrefix(before)
}

// EndOfLog returns the stream's most recently written LSN.
func (s *Stream) EndOfLog() record.LSN { return s.log.EndOfLog() }

// Epoch returns the stream's current epoch.
func (s *Stream) Epoch() record.Epoch { return s.log.Epoch() }

// ClientID returns the derived identity the stream writes under.
func (s *Stream) ClientID() record.ClientID { return s.log.ClientID() }

// ReadRecord reads one record from the stream.
func (s *Stream) ReadRecord(lsn record.LSN) (record.Record, error) {
	return s.log.ReadRecord(lsn)
}

// OpenCursor opens a prefetching cursor over the stream's own records.
func (s *Stream) OpenCursor(from record.LSN, dir Direction) (Cursor, error) {
	return s.log.OpenCursor(from, dir)
}

// Err reports the stream's asynchronous write-pipeline health.
func (s *Stream) Err() error { return s.log.Err() }

// Stats returns the stream's counter snapshot.
func (s *Stream) Stats() Stats { return s.log.Stats() }
