package core

import (
	"runtime"
	"testing"
	"time"

	"distlog/internal/transport"
)

// BenchmarkWritePathAllocsTelemetry is BenchmarkWritePathAllocs with
// the full telemetry stack armed — shared registry, trace ring, memnet
// counters, storage instrumentation — enforcing the SAME allocation
// budget: observability must be allocation-free on the write path.
func BenchmarkWritePathAllocsTelemetry(b *testing.B) {
	l, _ := telemetryCluster(b, 3, 2)
	if _, err := l.ForceLog([]byte("warm")); err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 100)
	var m0, m1 runtime.MemStats
	b.ReportAllocs()
	b.ResetTimer()
	runtime.ReadMemStats(&m0)
	for i := 0; i < b.N; i++ {
		if _, err := l.ForceLog(data); err != nil {
			b.Fatal(err)
		}
	}
	runtime.ReadMemStats(&m1)
	b.StopTimer()
	// Steady-state ceiling only: at b.N=1 (the framework's sizing
	// probe) one-time lazy allocations can't amortize and the check
	// would fire on noise.
	if perOp := float64(m1.Mallocs-m0.Mallocs) / float64(b.N); b.N >= 100 && perOp > writePathAllocBudget {
		b.Fatalf("write path with telemetry allocates %.1f objects/op, budget %d", perOp, writePathAllocBudget)
	}
}

// BenchmarkTelemetryOverhead ablates the telemetry subsystem on the
// force path: the disabled case is a stock cluster (no registry
// installed anywhere — every component runs on its nil-or-private
// handles), the enabled case arms the registry, trace, memnet, and
// storage instrumentation. The two sub-benchmark ns/op values are the
// ≤ ~5% overhead acceptance check; the disabled case also re-asserts
// the allocation budget, proving disabled telemetry adds zero allocs.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, l *ReplicatedLog, checkAllocs bool) {
		if _, err := l.ForceLog([]byte("warm")); err != nil {
			b.Fatal(err)
		}
		data := make([]byte, 100)
		var m0, m1 runtime.MemStats
		b.ReportAllocs()
		b.ResetTimer()
		runtime.ReadMemStats(&m0)
		for i := 0; i < b.N; i++ {
			if _, err := l.ForceLog(data); err != nil {
				b.Fatal(err)
			}
		}
		runtime.ReadMemStats(&m1)
		b.StopTimer()
		if perOp := float64(m1.Mallocs-m0.Mallocs) / float64(b.N); checkAllocs && b.N >= 100 && perOp > writePathAllocBudget {
			b.Fatalf("disabled telemetry allocates %.1f objects/op, budget %d", perOp, writePathAllocBudget)
		}
	}
	b.Run("disabled", func(b *testing.B) {
		l := benchCluster(b, 3, 2, transport.Faults{})
		run(b, l, true)
	})
	b.Run("enabled", func(b *testing.B) {
		l, reg := telemetryCluster(b, 3, 2)
		run(b, l, false)
		if h, ok := reg.Snapshot().Histograms["client.force.latency_ns"]; ok && h.Count > 0 {
			b.ReportMetric(float64(time.Duration(h.Quantile(0.50)).Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(time.Duration(h.Quantile(0.99)).Nanoseconds()), "p99-ns")
		}
	})
}
