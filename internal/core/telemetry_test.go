package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"distlog/internal/record"
	"distlog/internal/server"
	"distlog/internal/storage"
	"distlog/internal/telemetry"
	"distlog/internal/transport"
)

// telemetryCluster starts m servers and a client that all share one
// registry (with tracing enabled), so the trace interleaves client and
// server LSN-lifecycle events the way a single-process deployment
// would see them.
func telemetryCluster(t testing.TB, m, n int) (*ReplicatedLog, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.EnableTrace(4096)
	net := transport.NewNetwork(11)
	net.SetTelemetry(reg)
	var names []string
	for i := 1; i <= m; i++ {
		name := fmt.Sprintf("s%d", i)
		names = append(names, name)
		srv := server.New(server.Config{
			Name:      name,
			Store:     storage.Instrument(storage.NewMemStore(), reg, "mem"),
			Endpoint:  net.Endpoint(name),
			Epochs:    server.NewMemEpochHost(),
			Telemetry: reg,
		})
		srv.Start()
		t.Cleanup(srv.Stop)
	}
	l, err := Open(Config{
		ClientID:    1,
		Servers:     names,
		N:           n,
		Endpoint:    net.Endpoint("client"),
		CallTimeout: 2 * time.Second,
		Telemetry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, reg
}

// TestTraceReconstructsForceRound is the subsystem's acceptance test:
// a single forced WriteLog on a 3-server cluster must be fully
// reconstructable from the trace — write, then per server flush before
// append before force before ack, then stable after every ack — with
// consistent LSN and epoch tags throughout.
func TestTraceReconstructsForceRound(t *testing.T) {
	l, reg := telemetryCluster(t, 3, 3)

	lsn, err := l.ForceLog([]byte("the forced record"))
	if err != nil {
		t.Fatal(err)
	}
	epoch := uint64(l.Epoch())
	servers := l.WriteSet()
	if len(servers) != 3 {
		t.Fatalf("write set = %v", servers)
	}

	// Index this LSN's lifecycle events: kind+node -> seq.
	type key struct {
		kind telemetry.Kind
		node string
	}
	seq := make(map[key]uint64)
	var writeSeq, stableSeq uint64
	for _, ev := range reg.Trace().Events() {
		if ev.LSN != uint64(lsn) {
			continue
		}
		if ev.Epoch != epoch {
			t.Fatalf("event %v has epoch %d, client epoch %d", ev, ev.Epoch, epoch)
		}
		switch ev.Kind {
		case telemetry.EvWrite:
			writeSeq = ev.Seq
		case telemetry.EvStable:
			stableSeq = ev.Seq
		default:
			seq[key{ev.Kind, ev.Node}] = ev.Seq
		}
	}
	if writeSeq == 0 {
		t.Fatalf("no EvWrite for lsn %d", lsn)
	}
	if stableSeq == 0 {
		t.Fatalf("no EvStable for lsn %d", lsn)
	}
	for _, s := range servers {
		flush := seq[key{telemetry.EvFlush, s}]
		app := seq[key{telemetry.EvAppend, s}]
		force := seq[key{telemetry.EvForce, s}]
		ack := seq[key{telemetry.EvAck, s}]
		if flush == 0 || app == 0 || force == 0 || ack == 0 {
			t.Fatalf("server %s missing lifecycle events: flush=%d append=%d force=%d ack=%d\n%s",
				s, flush, app, force, ack, telemetry.FormatEvents(reg.Trace().Events()))
		}
		if !(writeSeq < flush && flush < app && app < force && force < ack && ack < stableSeq) {
			t.Fatalf("server %s out of order: write=%d flush=%d append=%d force=%d ack=%d stable=%d\n%s",
				s, writeSeq, flush, app, force, ack, stableSeq,
				telemetry.FormatEvents(reg.Trace().Events()))
		}
	}

	// The registry's aggregate counters corroborate the round: one
	// client round, three server forces, three acks.
	snap := reg.Snapshot()
	if got := snap.Counters["client.force_rounds"]; got != 1 {
		t.Fatalf("client.force_rounds = %d, want 1", got)
	}
	if got := snap.Counters["server.forces"]; got != 3 {
		t.Fatalf("server.forces = %d, want 3", got)
	}
	if got := snap.Counters["server.acks_sent"]; got != 3 {
		t.Fatalf("server.acks_sent = %d, want 3", got)
	}
	if h := snap.Histograms["client.force.latency_ns"]; h.Count != 1 {
		t.Fatalf("client.force.latency_ns count = %d, want 1", h.Count)
	}
	if h := snap.Histograms["storage.mem.force_latency_ns"]; h.Count != 3 {
		t.Fatalf("storage.mem.force_latency_ns count = %d, want 3", h.Count)
	}
	if snap.Counters["net.mem.packets"] == 0 {
		t.Fatalf("memnet telemetry saw no packets")
	}
}

// TestStatsForceRoundStatsConsistent drives concurrent forces while
// sampling both legacy stats APIs. Since both are views over the same
// registry counters read under l.mu, every snapshot must satisfy
// Forces ≥ ForceRounds + GroupCommits, and the two APIs must agree
// exactly once the writers quiesce.
func TestStatsForceRoundStatsConsistent(t *testing.T) {
	l, _ := telemetryCluster(t, 3, 2)

	const writers = 4
	const perWriter = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.ForceLog([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("force: %v", err)
					return
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()

	for sampling := true; sampling; {
		select {
		case <-stop:
			sampling = false
		default:
		}
		s := l.Stats()
		if s.Forces < s.ForceRounds+s.GroupCommits {
			t.Fatalf("inconsistent snapshot: Forces=%d < ForceRounds=%d + GroupCommits=%d",
				s.Forces, s.ForceRounds, s.GroupCommits)
		}
		forces, rounds, gc := l.ForceRoundStats()
		if forces < rounds+gc {
			t.Fatalf("inconsistent ForceRoundStats: %d < %d + %d", forces, rounds, gc)
		}
	}

	s := l.Stats()
	forces, rounds, gc := l.ForceRoundStats()
	if s.Forces != forces || s.ForceRounds != rounds || s.GroupCommits != gc {
		t.Fatalf("APIs disagree after quiesce: Stats=%+v ForceRoundStats=(%d,%d,%d)",
			s, forces, rounds, gc)
	}
	if forces != writers*perWriter {
		t.Fatalf("forces = %d, want %d", forces, writers*perWriter)
	}
	if rounds+gc > forces || rounds == 0 {
		t.Fatalf("rounds=%d gc=%d forces=%d", rounds, gc, forces)
	}
}

// TestClientPrivateRegistry checks the no-telemetry configuration: a
// client opened without a Registry still counts Stats correctly and
// emits no trace events anywhere.
func TestClientPrivateRegistry(t *testing.T) {
	net := transport.NewNetwork(3)
	for _, name := range []string{"a", "b"} {
		srv := server.New(server.Config{
			Name:     name,
			Store:    storage.NewMemStore(),
			Endpoint: net.Endpoint(name),
			Epochs:   server.NewMemEpochHost(),
		})
		srv.Start()
		t.Cleanup(srv.Stop)
	}
	l, err := Open(Config{
		ClientID:    9,
		Servers:     []string{"a", "b"},
		N:           2,
		Endpoint:    net.Endpoint("client"),
		CallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.ForceLog([]byte("x")); err != nil {
		t.Fatal(err)
	}
	s := l.Stats()
	if s.Writes != 1 || s.Forces != 1 || s.ForceRounds != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if l.m.trace != nil {
		t.Fatalf("private registry must not have tracing enabled")
	}
}

// TestSharedRegistryMetricNames pins the metric families the exposure
// layer (logserverd -metrics, logctl stats) depends on.
func TestSharedRegistryMetricNames(t *testing.T) {
	l, reg := telemetryCluster(t, 3, 2)
	if _, err := l.ForceLog([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadLog(l.EndOfLog()); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"client.writes", "client.forces", "client.force_rounds",
		"client.group_commits", "client.reads", "client.read_cache_hits",
		"client.failovers", "client.resends", "client.force.acks",
		"client.force.nacks", "client.force.timeouts",
		"server.packets_received", "server.packets_dropped",
		"server.records_appended", "server.forces", "server.acks_sent",
		"server.nacks_sent", "server.reads_served", "server.sheds",
		"net.mem.packets", "net.mem.bytes", "net.mem.drops",
		"storage.mem.appends", "storage.mem.bytes_appended", "storage.mem.forces",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q missing from shared registry", name)
		}
	}
	for _, name := range []string{
		"client.force.latency_ns", "client.force.records_per_round",
		"server.force.latency_ns", "server.append_to_force_ns",
		"storage.mem.force_latency_ns",
	} {
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("histogram %q missing from shared registry", name)
		}
	}
	if _, ok := snap.Gauges["server.sessions"]; !ok {
		t.Errorf("gauge server.sessions missing")
	}
	if record.LSN(snap.Counters["client.writes"]) == 0 {
		t.Errorf("client.writes did not count")
	}
}
