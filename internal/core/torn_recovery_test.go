package core

import (
	"errors"
	"fmt"
	"testing"

	"distlog/internal/faultpoint"
	"distlog/internal/record"
	"distlog/internal/transport"
)

// TestTornRecoveryConverges drives the exact tear Section 3.1.2's
// two-phase install exists for: a recovering incarnation that dies
// after streaming its doubtful tail to one server with CopyLog but
// before any InstallCopies commits. The orphaned staged copies carry a
// real epoch (5 here) that was durably consumed from the generator —
// yet none of them may ever become part of the log, the next
// incarnation must take a higher epoch, and a stale lower-epoch copy
// left behind on a server that missed a later recovery must never be
// surfaced by a read (the merge keeps only highest-epoch holders, and
// fetchRecord re-checks the epoch of every record it accepts).
func TestTornRecoveryConverges(t *testing.T) {
	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)

	c := newCluster(t, "s1", "s2", "s3")
	const id = record.ClientID(3) // offset 0: write set s1, s2

	// Incarnation 1: commit a prefix.
	l1 := mustOpen(t, c, id, 2)
	committed := make(map[record.LSN]string)
	for i := 0; i < 6; i++ {
		data := fmt.Sprintf("torn-%d", i)
		lsn, err := l1.WriteLog([]byte(data))
		if err != nil {
			t.Fatal(err)
		}
		committed[lsn] = data
	}
	if err := l1.Force(); err != nil {
		t.Fatal(err)
	}
	e1 := l1.Epoch()
	high := l1.EndOfLog()
	l1.Close()

	// A write for high+1 reached s1 just before the client died: a
	// present epoch-1 record with no second copy anywhere.
	phantom := high + 1
	if err := c.stores["s1"].Append(id, record.Record{
		LSN: phantom, Epoch: e1, Present: true, Data: []byte("phantom"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.stores["s1"].Force(); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2 recovers at epoch 5 and is torn mid-install: the
	// doubtful tail (including the phantom, re-copied under epoch 5)
	// has been staged on the first write-set server when the client
	// dies, so no InstallCopies ever commits the stage.
	c.seedEpoch(id, 4)
	var ep2 transport.Endpoint
	faultpoint.Arm(FPInitCopied, 1, func() { ep2.Close() })
	if _, err := c.openClient(id, 2, func(cfg *Config) { ep2 = cfg.Endpoint }); err == nil {
		t.Fatal("torn Open unexpectedly succeeded")
	}
	faultpoint.Disarm(FPInitCopied)
	if !faultpoint.Fired(FPInitCopied) {
		t.Fatal("crash point client.init.copied never fired")
	}

	// Incarnation 3 recovers without s1: its quorum is s2+s3, so the
	// phantom is uncovered and resolves not-present, and the tail is
	// re-copied under the new epoch onto s2 and s3 only.
	c.stop("s1")
	l3 := mustOpen(t, c, id, 2)
	if got := l3.Epoch(); got <= 5 {
		t.Fatalf("epoch %d: must exceed the torn incarnation's 5", got)
	}
	audit := func(l *ReplicatedLog, when string) {
		t.Helper()
		for lsn, want := range committed {
			data, err := l.ReadLog(lsn)
			if err != nil || string(data) != want {
				t.Fatalf("%s: ReadLog(%d) = %q, %v, want %q", when, lsn, data, err, want)
			}
		}
		if _, err := l.ReadLog(phantom); !errors.Is(err, ErrNotPresent) {
			t.Fatalf("%s: phantom LSN %d: %v, want ErrNotPresent", when, phantom, err)
		}
	}
	audit(l3, "after torn recovery")

	// The recovered log is fully usable: commit through it, pushing
	// the end of log past the phantom so later recoveries leave s1's
	// stale epoch-1 copy in place rather than re-copying over it.
	for i := 0; i < 6; i++ {
		data := fmt.Sprintf("post-%d", i)
		lsn, err := l3.WriteLog([]byte(data))
		if err != nil {
			t.Fatal(err)
		}
		committed[lsn] = data
	}
	if err := l3.Force(); err != nil {
		t.Fatal(err)
	}
	audit(l3, "after post-recovery writes")
	l3.Close()

	// Incarnation 4 recovers with s1 back. s1 still reports the
	// phantom as a present epoch-1 record in its interval list, and
	// still holds the orphaned epoch-5 stage; the merge's
	// highest-epoch-wins sweep (backstopped by fetchRecord's
	// rec.Epoch >= wantEpoch check) must keep both out of the log, so
	// the not-present outcome sticks.
	c.start("s1")
	l4 := mustOpen(t, c, id, 2)
	defer l4.Close()
	audit(l4, "after s1 rejoins")
}
