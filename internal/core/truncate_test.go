package core

import (
	"errors"
	"fmt"
	"testing"

	"distlog/internal/record"
)

func TestTruncatePrefix(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 2 })
	defer l.Close()

	var lsns []record.LSN
	for i := 0; i < 30; i++ {
		lsn, err := l.WriteLog([]byte(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	cut := lsns[19] // discard the first 19 records
	if err := l.TruncatePrefix(cut); err != nil {
		t.Fatal(err)
	}
	if l.Truncated() != cut {
		t.Fatalf("Truncated = %d, want %d", l.Truncated(), cut)
	}
	// Below the cut: consistently not present.
	for _, lsn := range lsns[:19] {
		if _, err := l.ReadLog(lsn); !errors.Is(err, ErrNotPresent) {
			t.Fatalf("ReadLog(%d) = %v, want not present", lsn, err)
		}
	}
	// At and above the cut: still readable.
	for i, lsn := range lsns[19:] {
		data, err := l.ReadLog(lsn)
		if err != nil || string(data) != fmt.Sprintf("r%d", i+19) {
			t.Fatalf("ReadLog(%d) = %q, %v", lsn, data, err)
		}
	}
	// The server stores really discarded the prefix.
	for _, name := range l.WriteSet() {
		ivs := c.stores[name].Intervals(1)
		if len(ivs) == 0 || ivs[0].Low < cut {
			t.Fatalf("%s intervals not clipped: %v", name, ivs)
		}
	}
}

func TestTruncatePrefixClampsToRecoveryTail(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 4 })
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.WriteLog([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	end := l.EndOfLog()
	// Asking to truncate everything clamps to EndOfLog - δ so the
	// crash-recovery tail survives.
	if err := l.TruncatePrefix(end + 1); err != nil {
		t.Fatal(err)
	}
	want := end - record.LSN(4) + 1 // keep the δ = 4 records [end-δ+1, end]
	if got := l.Truncated(); got != want {
		t.Fatalf("Truncated = %d, want clamp at %d", got, want)
	}
	for lsn := want; lsn <= end; lsn++ {
		if _, err := l.ReadLog(lsn); err != nil {
			t.Fatalf("recovery-tail record %d unreadable: %v", lsn, err)
		}
	}
}

func TestTruncateSurvivesClientRestart(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 2 })
	var lsns []record.LSN
	for i := 0; i < 20; i++ {
		lsn, err := l.WriteLog([]byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncatePrefix(lsns[10]); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2 := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 2 })
	defer l2.Close()
	// The truncated prefix reads as not present for the new
	// incarnation (its merged interval lists are clipped).
	for _, lsn := range lsns[:10] {
		if _, err := l2.ReadLog(lsn); !errors.Is(err, ErrNotPresent) {
			t.Fatalf("ReadLog(%d) after restart = %v", lsn, err)
		}
	}
	for i, lsn := range lsns[10:] {
		data, err := l2.ReadLog(lsn)
		if err != nil || string(data) != fmt.Sprintf("v%d", i+10) {
			t.Fatalf("ReadLog(%d) after restart = %q, %v", lsn, data, err)
		}
	}
	// No LSN reuse: new writes continue above the old end.
	lsn, err := l2.WriteLog([]byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= lsns[len(lsns)-1] {
		t.Fatalf("fresh LSN %d reuses old space (last was %d)", lsn, lsns[len(lsns)-1])
	}
}

func TestTruncateWithServerDown(t *testing.T) {
	c := newCluster(t, "s1", "s2", "s3")
	l := mustOpen(t, c, 1, 2, func(cfg *Config) { cfg.Delta = 2 })
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.WriteLog([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// One server is down: truncation is best-effort and still succeeds.
	down := c.names[2]
	c.stop(down)
	if err := l.TruncatePrefix(5); err != nil {
		t.Fatalf("TruncatePrefix with one server down: %v", err)
	}
}
