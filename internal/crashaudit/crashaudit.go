// Package crashaudit drives the crash-point audit of the Section 3.1.2
// recovery procedure. It runs a write/force workload against a memnet
// cluster, kills the client — or its log servers — at a chosen
// faultpoint pass, reboots every server over its surviving store, opens
// a new client incarnation, and hands it to sim.CrashChecker, which
// audits the Section 3.1 guarantees (acknowledged records durable, the
// doubtful window bounded by δ, doubtful outcomes stable, epochs
// strictly increasing).
//
// Sweep walks every registered crash point in turn, escalating the
// per-point hit count until a trigger no longer fires; Randomized
// replays the same scenario under a lossy network with random points,
// hit counts, and seeds. Both are exposed through the core package's
// tests and the crashaudit command.
package crashaudit

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"distlog/internal/core"
	"distlog/internal/faultpoint"
	"distlog/internal/record"
	"distlog/internal/retention"
	"distlog/internal/server"
	"distlog/internal/sim"
	"distlog/internal/storage"
	"distlog/internal/telemetry"
	"distlog/internal/transport"
)

const clientID = record.ClientID(7)

// segSegmentBytes is the segment capacity of the segmented-rig stores:
// small enough that the audit workload (a few dozen short records)
// seals several segments, so the retention crash points are reached.
const segSegmentBytes = 200

// segVolumeBytes is the archive volume capacity of the segmented-rig
// archives: roughly two data frames, so compaction rotates (seals)
// volumes and truncation-floor advances retire them within the audit
// workload, reaching the retention.volume.* crash points.
const segVolumeBytes = 96

// traceDump is how many of the dying incarnation's trace events are
// appended to a failure report — enough to cover the last force round
// on every server plus the retries leading into the crash.
const traceDump = 32

// errInjected is the storage failure injected at error-returning
// faultpoints (storage.install.partial).
var errInjected = errors.New("crashaudit: injected storage fault")

// Options configures one audit scenario.
type Options struct {
	// Seed fixes the memnet fault schedule (and, for Randomized, the
	// point/hit-count choices) so failures replay identically.
	Seed int64
	// Servers is M, N the copies per record, Delta the δ bound.
	Servers int
	N       int
	Delta   int
	// CallTimeout and Retries are the client's; the defaults are small
	// so crash scenarios fail over quickly.
	CallTimeout time.Duration
	Retries     int
	// Faults, when non-zero, misbehaves the network during workload
	// phases (never during the post-crash audit, which must observe the
	// log, not the network).
	Faults transport.Faults
	// MaxHits caps Sweep's per-point hit-count escalation.
	MaxHits uint64
	// Segmented backs every server with a storage.SegStore (tiny
	// segments, a retention.Archive cold tier) instead of a MemStore,
	// and the workload adds checkpoint + compaction steps: the
	// compacted-store recovery sweep. RunPoint turns it on
	// automatically for the retention.* crash points, which are only
	// reachable on a segmented store.
	Segmented bool
	// Logf, when set, receives one line per run.
	Logf func(format string, args ...interface{})

	// forceDelay, when non-zero, slows every server's store force (see
	// slowForce). RunPoint sets it for the group-force handoff point.
	forceDelay time.Duration
}

func (o *Options) fillDefaults() {
	if o.Servers == 0 {
		o.Servers = 3
	}
	if o.N == 0 {
		o.N = 2
	}
	if o.Delta == 0 {
		o.Delta = 4
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 20 * time.Millisecond
		if o.Segmented {
			// Segmented stores fsync for real (segment seals, manifest
			// replaces, archive publishes), so a single staging call can
			// legitimately outlast the memnet-tuned timeout on a loaded
			// machine.
			o.CallTimeout = 150 * time.Millisecond
		}
	}
	if o.Retries == 0 {
		o.Retries = 1
	}
	if o.MaxHits == 0 {
		o.MaxHits = 4
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
}

// Report summarizes a Sweep or Randomized pass.
type Report struct {
	Runs       int                 // crash scenarios executed
	Recoveries int                 // crash/recover cycles audited
	Fired      map[string][]uint64 // per point: hit counts whose trigger fired
}

// slowForce widens the force window: the group-force handoff point
// can only be reached while one store force is in flight and another
// session is waiting, so the scenario that audits it stretches every
// underlying force by a few milliseconds.
type slowForce struct {
	storage.Store
	delay time.Duration
}

func (s *slowForce) Force() error {
	time.Sleep(s.delay)
	return s.Store.Force()
}

// rig is the cluster under audit: M log servers over MemStores on one
// memnet. Stores and epoch hosts survive server restarts — a reboot
// keeps its stable storage, exactly the paper's failure model.
type rig struct {
	net        *transport.Network
	names      []string
	stores     map[string]storage.Store
	forceDelay time.Duration // non-zero: servers see slowForce-wrapped stores
	epochs     map[string]*server.MemEpochHost

	// Segmented mode: stores are SegStores under dir, each with its
	// own archive; restartAll reopens them from disk so recovery
	// exercises the manifest + segment replay path.
	segmented bool
	dir       string
	archives  map[string]*retention.Archive

	// reg collects LSN-lifecycle trace events from every node in the
	// scenario; when an audit fails, the tail of the trace shows what
	// was in flight when the armed point killed the incarnation.
	reg *telemetry.Registry

	mu      sync.Mutex
	servers map[string]*server.Server
	seps    map[string]transport.Endpoint
}

func newRig(o Options) (*rig, error) {
	reg := telemetry.NewRegistry()
	reg.EnableTrace(1024)
	r := &rig{
		net:        transport.NewNetwork(o.Seed),
		stores:     make(map[string]storage.Store),
		forceDelay: o.forceDelay,
		epochs:     make(map[string]*server.MemEpochHost),
		segmented:  o.Segmented,
		reg:        reg,
		servers:    make(map[string]*server.Server),
		seps:       make(map[string]transport.Endpoint),
	}
	if r.segmented {
		dir, err := os.MkdirTemp("", "crashaudit-seg")
		if err != nil {
			return nil, err
		}
		r.dir = dir
		r.archives = make(map[string]*retention.Archive)
	}
	r.net.SetTelemetry(reg)
	for i := 0; i < o.Servers; i++ {
		name := fmt.Sprintf("ls%d", i+1)
		r.names = append(r.names, name)
		if r.segmented {
			if err := r.openSegStore(name); err != nil {
				r.stopAll()
				return nil, err
			}
		} else {
			r.stores[name] = storage.NewMemStore()
		}
		r.epochs[name] = server.NewMemEpochHost()
		r.start(name)
	}
	return r, nil
}

// openSegStore (re)opens one server's segmented store and archive from
// its on-disk state.
func (r *rig) openSegStore(name string) error {
	arch, err := retention.OpenArchive(filepath.Join(r.dir, name, "archive"), retention.ArchiveOptions{VolumeBytes: segVolumeBytes})
	if err != nil {
		return err
	}
	st, err := storage.OpenSegStore(filepath.Join(r.dir, name, "segs"), storage.SegOptions{
		SegmentBytes: segSegmentBytes,
		Archive:      arch,
	})
	if err != nil {
		arch.Close()
		return err
	}
	r.archives[name] = arch
	r.stores[name] = st
	return nil
}

func (r *rig) start(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.startLocked(name)
}

func (r *rig) startLocked(name string) {
	ep := r.net.Endpoint(name)
	st := r.stores[name]
	if r.forceDelay > 0 {
		st = &slowForce{Store: st, delay: r.forceDelay}
	}
	srv := server.New(server.Config{
		Name:      name,
		Store:     st,
		Endpoint:  ep,
		Epochs:    r.epochs[name],
		Telemetry: r.reg,
	})
	srv.Start()
	r.servers[name] = srv
	r.seps[name] = ep
}

// stop halts one server gracefully (endpoint closed, receive loop
// joined). Safe only from the harness goroutine.
func (r *rig) stop(name string) {
	r.mu.Lock()
	srv := r.servers[name]
	r.servers[name] = nil
	r.mu.Unlock()
	if srv != nil {
		srv.Stop()
	}
}

// crashServers closes every live server endpoint without joining the
// receive loops: it runs as a faultpoint callback on a server's own
// goroutine, where Stop would deadlock waiting for the very loop that
// is executing the callback.
func (r *rig) crashServers() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ep := range r.seps {
		ep.Close()
	}
}

// restartAll reboots every server over its surviving store. In
// segmented mode the store itself is closed and reopened from disk —
// a real server reboot — so the manifest, stray-segment cleanup, and
// segment replay paths run under audit.
func (r *rig) restartAll() error {
	for _, name := range r.names {
		r.stop(name)
		if r.segmented {
			r.stores[name].Close()
			r.archives[name].Close()
			if err := r.openSegStore(name); err != nil {
				return fmt.Errorf("crashaudit: reopening segmented store %s: %w", name, err)
			}
		}
		r.start(name)
	}
	return nil
}

// checkpointAndCompact is the segmented-mode workload step: the client
// checkpoints (advancing its truncation point, reported to every
// server fire-and-forget) and compaction then reclaims and archives the
// segments the truncation freed — reaching the segment-seal,
// archive-publish and segment-delete crash points. Skipped once the
// armed point has fired: the dying incarnation must not keep issuing
// calls.
func (r *rig) checkpointAndCompact(l *core.ReplicatedLog, chk *sim.CrashChecker, pointName string) {
	if !r.segmented || faultpoint.Fired(pointName) {
		return
	}
	lsn, err := l.Checkpoint([]byte("ckpt"))
	if err != nil || faultpoint.Fired(pointName) {
		return
	}
	chk.Wrote(lsn, []byte("ckpt"))
	chk.Forced()
	chk.Truncated(l.Truncated())
	r.waitFloorApplied(l.Truncated(), pointName)
	r.compactAll()
	r.retireAll()
}

// waitFloorApplied polls until every store holding the audited
// client's records has applied the truncation floor the checkpoint
// just reported. The report is fire-and-forget (§5.3), so without
// this bound the synchronous compactAll/retireAll below race the
// report datagrams and the archive's retirement decisions become
// schedule-dependent. Bails early once the armed point fires — the
// dying incarnation's floors may legitimately never land.
func (r *rig) waitFloorApplied(floor record.LSN, pointName string) {
	if floor <= 1 {
		return
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) && !faultpoint.Fired(pointName) {
		applied := true
		for _, st := range r.stores {
			cs, ok := st.(*storage.SegStore)
			if !ok {
				continue
			}
			// Truncate clamps so the last record always survives; a
			// store whose stream ends below the floor is done once its
			// first interval starts at its own last key.
			want := floor
			if last, _ := cs.LastKey(clientID); last < want {
				want = last
			}
			if ivs := cs.Intervals(clientID); len(ivs) > 0 && ivs[0].Low < want {
				applied = false
				break
			}
		}
		if applied {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// retireAll drives archive volume retirement to exhaustion on every
// server — the rig's synchronous stand-in for the compactor's
// retirement pass, so the volume-seal and volume-retire points are
// reached deterministically. Errors are expected when a retention
// point is armed; the post-recovery reopen converges.
func (r *rig) retireAll() {
	if !r.segmented {
		return
	}
	for _, a := range r.archives {
		for {
			ok, err := a.RetireOnce()
			if err != nil || !ok {
				break
			}
		}
	}
}

// compactAll drives segment compaction to exhaustion on every store —
// the rig's synchronous stand-in for the background compactor, so the
// archive-publish and segment-delete points are reached
// deterministically. Errors are expected: an armed retention point
// injects them, and the next pass (or the post-recovery reopen)
// converges.
func (r *rig) compactAll() {
	if !r.segmented {
		return
	}
	for _, st := range r.stores {
		cs, ok := st.(*storage.SegStore)
		if !ok {
			continue
		}
		for {
			ok, err := cs.CompactOnce()
			if err != nil || !ok {
				break
			}
		}
	}
}

func (r *rig) stopAll() {
	for _, name := range r.names {
		r.stop(name)
	}
	if r.segmented {
		for _, st := range r.stores {
			st.Close()
		}
		for _, a := range r.archives {
			a.Close()
		}
		os.RemoveAll(r.dir)
	}
}

// clientEndpoint returns the client node's network attachment. After a
// crash closed the previous one, the same name yields a fresh endpoint
// — the new incarnation at the old address.
func (r *rig) clientEndpoint() transport.Endpoint {
	return r.net.Endpoint("client")
}

func openLog(r *rig, o Options, ep transport.Endpoint) (*core.ReplicatedLog, error) {
	return core.Open(core.Config{
		ClientID:    clientID,
		Servers:     append([]string(nil), r.names...),
		N:           o.N,
		Delta:       o.Delta,
		Endpoint:    ep,
		CallTimeout: o.CallTimeout,
		Retries:     o.Retries,
		FlushBatch:  2, // stream early so a crash can strand a partially sent tail
		Streams:     2, // multi-stream: every open also recovers stream 1
		Telemetry:   r.reg,
	})
}

// Crash kinds: which node the armed trigger takes down.
const (
	kindClient  = iota // close the client endpoint
	kindServers        // close every server endpoint
	kindInject         // inject a storage error (no node dies)
)

func kindOf(point string) int {
	switch {
	case strings.HasPrefix(point, "client."), strings.HasPrefix(point, "core."):
		return kindClient
	case point == storage.FPInstallPartial,
		point == storage.FPArchivePublish,
		point == storage.FPSegmentDelete,
		point == retention.FPVolumeSeal,
		point == retention.FPVolumeRetire:
		return kindInject
	default:
		return kindServers
	}
}

// worker drives writes and forces, feeding the checker only operations
// that succeeded. Once the armed point fires the incarnation is dead —
// stopped() — and remaining operations are skipped.
type worker struct {
	l       *core.ReplicatedLog
	chk     *sim.CrashChecker
	stopped func() bool
	n       int
}

func (w *worker) write(count int, tag string) {
	for i := 0; i < count; i++ {
		if w.stopped != nil && w.stopped() {
			return
		}
		w.n++
		data := []byte(fmt.Sprintf("%s-%d", tag, w.n))
		if lsn, err := w.l.WriteLog(data); err == nil {
			w.chk.Wrote(lsn, data)
		}
	}
}

// scan runs a short backward cursor scan over the log's tail, the read
// a recovery manager performs. Errors are ignored — with the armed
// point killing a node mid-stream, a failed scan is the very scenario
// under audit; the invariant checks happen in the next incarnation.
func (w *worker) scan() {
	if w.stopped != nil && w.stopped() {
		return
	}
	end := w.l.EndOfLog()
	if end == 0 {
		return
	}
	cur, err := w.l.OpenCursor(end, core.Backward)
	if err != nil {
		return
	}
	for i := 0; i < 6; i++ {
		if _, err := cur.Next(); err != nil {
			break
		}
	}
	cur.Close()
}

func (w *worker) force() {
	if w.stopped != nil && w.stopped() {
		return
	}
	if err := w.l.Force(); err == nil {
		w.chk.Forced()
	}
}

// multiStream drives the second log stream: plain writes, a
// dependency-vectored commit (client.stream.commit-vector fires between
// the vector read and the append), a force, and a merged
// dependency-ordered scan over both streams
// (recman.merge.before-apply fires as each merged record is yielded).
// Stream-1 LSNs live in their own sequence, so they are not fed to the
// checker — it audits stream 0; stream 1's own durability is enforced
// by its own Section 3.1.2 recovery at every reopen.
func (w *worker) multiStream() {
	if w.stopped != nil && w.stopped() {
		return
	}
	s1 := w.l.Stream(1)
	w.n++
	s1.WriteLog([]byte(fmt.Sprintf("s1-%d", w.n)))
	s1.WriteCommit([]byte(fmt.Sprintf("s1-commit-%d", w.n)))
	if w.stopped != nil && w.stopped() {
		return
	}
	s1.Force()
	mc, err := w.l.OpenMergedCursor()
	if err != nil {
		return
	}
	for i := 0; i < 8; i++ {
		if _, err := mc.Next(); err != nil {
			break
		}
	}
	mc.Close()
}

// runAuxForcer opens an extra client (its own ClientID, hence its own
// write-set rotation) and loops write+force until stopped or the armed
// point fires. Its acknowledgments are not audited — it exists to keep
// server force groups busy so the main workload's forces coalesce.
func runAuxForcer(r *rig, o Options, id record.ClientID, pointName string, stop chan struct{}, done *sync.WaitGroup) {
	defer done.Done()
	ep := r.net.Endpoint(fmt.Sprintf("aux%d", id))
	defer ep.Close()
	al, err := core.Open(core.Config{
		ClientID:    id,
		Servers:     append([]string(nil), r.names...),
		N:           o.N,
		Delta:       o.Delta,
		Endpoint:    ep,
		CallTimeout: o.CallTimeout,
		Retries:     o.Retries,
		Telemetry:   r.reg,
	})
	if err != nil {
		return
	}
	defer al.Close()
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		if faultpoint.Fired(pointName) {
			return
		}
		al.WriteLog([]byte(fmt.Sprintf("aux%d-%d", id, i)))
		al.Force()
	}
}

// RunPoint executes one crash scenario: an unarmed incarnation leaves
// a doubtful tail, a second incarnation runs recovery and a workload
// with the named point armed to crash on its n-th pass, then the
// cluster reboots and fresh incarnations are audited against the
// Section 3.1 invariants. It reports whether the trigger fired (a hit
// count beyond what the workload reaches leaves it unfired; the
// scenario still ends with a clean recovery audit) and the first
// invariant violation found.
func RunPoint(o Options, pointName string, hitN uint64) (fired bool, err error) {
	if strings.HasPrefix(pointName, "retention.") {
		// The retention points only exist on a segmented store. Set
		// this before the defaults so the segmented timeout applies,
		// and floor a caller-supplied memnet-tuned timeout the same
		// way (Sweep fills defaults once for all points).
		o.Segmented = true
		if o.CallTimeout != 0 && o.CallTimeout < 150*time.Millisecond {
			o.CallTimeout = 150 * time.Millisecond
		}
		if o.Delta < 12 {
			// A wider doubtful window keeps more of the post-checkpoint
			// tail live: the records surviving each truncation span
			// several sealed 200-byte segments, so compaction reliably
			// archives frames — and the tiny archive volumes rotate and
			// retire — at hit 1 of every retention.volume.* point.
			o.Delta = 12
		}
	}
	o.fillDefaults()
	faultpoint.Reset()
	defer faultpoint.Reset()

	if pointName == server.FPForceBetweenCoalesced {
		// The handoff between coalesced force rounds only runs while
		// one store force is in flight and another session waits on it;
		// stretch every force so the auxiliary forcers below overlap.
		o.forceDelay = 2 * time.Millisecond
	}
	r, err := newRig(o)
	if err != nil {
		return false, fmt.Errorf("crashaudit: rig setup: %w", err)
	}
	defer r.stopAll()
	chk := sim.NewCrashChecker(o.Delta)

	// Incarnation 1: clean workload ending in an unforced tail, then an
	// abrupt crash — recovery always has doubtful records to resolve.
	ep1 := r.clientEndpoint()
	l1, err := openLog(r, o, ep1)
	if err != nil {
		return false, fmt.Errorf("crashaudit: first open: %w", err)
	}
	if err := chk.Audit(l1); err != nil {
		l1.Close()
		return false, err
	}
	r.net.SetFaults(o.Faults)
	w1 := &worker{l: l1, chk: chk}
	w1.write(5, "pre")
	w1.force()
	w1.write(3, "tail")
	r.net.SetFaults(transport.Faults{})
	ep1.Close()
	l1.Close()
	chk.Crashed()

	// Incarnation 2 runs with the point armed: recovery and workload
	// both pass through crash points, and the n-th pass kills the
	// corresponding node mid-protocol.
	ep2 := r.clientEndpoint()
	switch kindOf(pointName) {
	case kindClient:
		faultpoint.Arm(pointName, hitN, func() { ep2.Close() })
	case kindServers:
		faultpoint.Arm(pointName, hitN, r.crashServers)
	case kindInject:
		faultpoint.ArmErr(pointName, hitN, errInjected)
	}
	l2, err := openLog(r, o, ep2)
	if err == nil {
		// Open survived (the trigger fires later, or not at all).
		r.net.SetFaults(o.Faults)

		// The group-force handoff needs concurrent forces on one
		// server, which the serial workload never produces: for that
		// point only, background forcer clients hammer ForceLog (their
		// write sets overlap each other's and the main client's) so
		// coalesced rounds — and the handoff between them — occur.
		var auxStop chan struct{}
		var auxDone sync.WaitGroup
		if pointName == server.FPForceBetweenCoalesced {
			auxStop = make(chan struct{})
			for i := 1; i <= 2; i++ {
				auxDone.Add(1)
				go runAuxForcer(r, o, clientID+record.ClientID(i), pointName, auxStop, &auxDone)
			}
		}

		w2 := &worker{l: l2, chk: chk, stopped: func() bool { return faultpoint.Fired(pointName) }}
		w2.write(3, "w2a")
		w2.force()
		w2.scan()
		w2.multiStream()
		r.checkpointAndCompact(l2, chk, pointName)
		// Migrate the write set onto the spare server with an unforced
		// tail outstanding: the tail must drain onto the new interval via
		// the closing force, or — when the armed point is one of the
		// client.migrate.* points — be resolved as doubtful by the next
		// incarnation's recovery.
		w2.write(2, "w2m")
		if !faultpoint.Fired(pointName) {
			if ws := l2.WriteSet(); len(ws) == o.N {
				inSet := make(map[string]bool, len(ws))
				for _, m := range ws {
					inSet[m] = true
				}
				target := append([]string(nil), ws[1:]...)
				for _, name := range r.names {
					if !inSet[name] {
						target = append(target, name)
						break
					}
				}
				if len(target) == o.N {
					if err := l2.Migrate(target); err == nil {
						// The closing force confirmed everything written
						// so far on the new set.
						chk.Forced()
					}
				}
			}
		}
		if !faultpoint.Fired(pointName) {
			// Take a write-set member down mid-stream so the force path
			// exercises retry and failover (client.failover.before-swap
			// fires here), then bring it back.
			if ws := l2.WriteSet(); len(ws) > 0 {
				victim := ws[0]
				r.stop(victim)
				w2.write(2, "w2b")
				w2.force()
				r.start(victim)
			}
		}
		w2.write(3, "w2c")
		w2.force()
		w2.scan()
		r.checkpointAndCompact(l2, chk, pointName)
		w2.write(2, "w2d") // unforced tail again
		r.net.SetFaults(transport.Faults{})
		if auxStop != nil {
			close(auxStop)
			auxDone.Wait()
		}
		ep2.Close()
		l2.Close()
	}
	chk.Crashed()
	fired = faultpoint.Fired(pointName)
	faultpoint.Disarm(pointName)

	// Snapshot the dying incarnation's last trace events now, before
	// recovery overwrites the ring: every failure report below carries
	// this timeline so a violation shows what each node was doing when
	// the armed point fired.
	dying := r.reg.Trace().Tail(traceDump)
	fail := func(err error, context string) error {
		return fmt.Errorf("crashaudit: %s, crash at %s (hit %d): %w\ndying incarnation's last %d trace events:\n%s",
			context, pointName, hitN, err, len(dying), telemetry.FormatEvents(dying))
	}

	// Recovery: heal the network, reboot every server over its
	// surviving store, and audit a fresh incarnation.
	if err := r.restartAll(); err != nil {
		return fired, fail(err, "server reboot")
	}
	ep3 := r.clientEndpoint()
	l3, err := openLog(r, o, ep3)
	if err != nil {
		return fired, fail(err, "recovery open")
	}
	if err := chk.Audit(l3); err != nil {
		l3.Close()
		return fired, fail(err, "recovery audit")
	}
	// The recovered log must be fully usable: commit through it on the
	// healthy cluster, and re-audit with the new records acknowledged.
	w3 := &worker{l: l3, chk: chk}
	w3.write(4, "post")
	if err := l3.Force(); err != nil {
		l3.Close()
		return fired, fail(err, "post-recovery force")
	}
	chk.Forced()
	if err := chk.Audit(l3); err != nil {
		l3.Close()
		return fired, fail(err, "post-recovery audit")
	}

	// One more clean crash/reboot cycle: the audited state must survive
	// a recovery that had nothing to repair.
	ep3.Close()
	l3.Close()
	chk.Crashed()
	if err := r.restartAll(); err != nil {
		return fired, fail(err, "final server reboot")
	}
	l4, err := openLog(r, o, r.clientEndpoint())
	if err != nil {
		return fired, fail(err, "final open")
	}
	defer l4.Close()
	if err := chk.Audit(l4); err != nil {
		return fired, fail(err, "final incarnation audit")
	}
	if r.segmented {
		// The surviving cold tier must also pass the offline verifier —
		// the same walk `logctl archive verify` performs: frame
		// checksums, volume chain continuity, and forest/overlay
		// consistency against the manifest floors.
		for _, name := range r.names {
			rep, verr := retention.VerifyArchiveDir(filepath.Join(r.dir, name, "archive"))
			if verr != nil {
				return fired, fail(verr, "archive verify "+name)
			}
			if len(rep.Issues) > 0 {
				return fired, fail(fmt.Errorf("%d issues, first: %s", len(rep.Issues), rep.Issues[0].String()), "archive verify "+name)
			}
		}
	}
	return fired, nil
}

// Sweep arms every registered crash point in turn, escalating the hit
// count until a run completes without the trigger firing. A registered
// point that never fires is a coverage hole — the workload does not
// reach the protocol step it guards — and fails the sweep. Sweep runs
// on a fault-free network so every run is deterministic up to
// goroutine scheduling.
func Sweep(o Options) (*Report, error) {
	o.fillDefaults()
	o.Faults = transport.Faults{}
	rep := &Report{Fired: make(map[string][]uint64)}
	for _, pointName := range faultpoint.Points() {
		for hitN := uint64(1); hitN <= o.MaxHits; hitN++ {
			fired, err := RunPoint(o, pointName, hitN)
			rep.Runs++
			rep.Recoveries += 3
			if err != nil {
				return rep, err
			}
			if !fired {
				break
			}
			rep.Fired[pointName] = append(rep.Fired[pointName], hitN)
			o.Logf("crashaudit: %-28s hit %d: recovered clean", pointName, hitN)
		}
		if len(rep.Fired[pointName]) == 0 {
			return rep, fmt.Errorf("crashaudit: point %s never fired: the workload does not reach it", pointName)
		}
	}
	return rep, nil
}

// Randomized replays the crash scenario iters times under a lossy,
// reordering network, with the point, hit count, and fault schedule
// drawn from o.Seed. Every iteration must recover clean; firing is
// opportunistic (a deep hit count may go unreached).
func Randomized(o Options, iters int) (*Report, error) {
	o.fillDefaults()
	if o.Faults == (transport.Faults{}) {
		o.Faults = transport.Faults{DropProb: 0.02, DupProb: 0.02, MaxDelay: 2 * time.Millisecond}
	}
	rng := rand.New(rand.NewSource(o.Seed))
	points := faultpoint.Points()
	rep := &Report{Fired: make(map[string][]uint64)}
	for i := 0; i < iters; i++ {
		pointName := points[rng.Intn(len(points))]
		hitN := uint64(1 + rng.Intn(3))
		ro := o
		ro.Seed = rng.Int63()
		fired, err := RunPoint(ro, pointName, hitN)
		rep.Runs++
		rep.Recoveries += 3
		if err != nil {
			return rep, fmt.Errorf("crashaudit: iteration %d (point %s, hit %d, seed %d): %w", i, pointName, hitN, ro.Seed, err)
		}
		if fired {
			rep.Fired[pointName] = append(rep.Fired[pointName], hitN)
		}
		o.Logf("crashaudit: iter %3d %-28s hit %d fired=%v", i, pointName, hitN, fired)
	}
	return rep, nil
}
