// Package disk models the magnetic logging disks of Section 4.1: a
// track-oriented device with explicit seek and rotational timing. The
// log server writes its interleaved log stream to the disk one track
// at a time (the paper's central design point: with a low-latency
// non-volatile buffer in front of it, the disk never pays a rotational
// latency per log force).
//
// The model is functional as well as timed: track contents are stored
// in memory and survive simulated power failures, so recovery code
// paths can be exercised, while every operation also reports the
// simulated service time used by the capacity experiments.
package disk

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Geometry describes a disk. The defaults model the "slow disk with
// small tracks" of the paper's capacity analysis: a mid-1980s drive
// turning at 3600 RPM with roughly 15 KB tracks.
type Geometry struct {
	Cylinders         int
	TracksPerCylinder int
	TrackSize         int // bytes per track
	RPM               int
	// Seek timing: a settle cost plus a per-cylinder component, capped
	// at MaxSeek. A zero-distance seek is free.
	SeekSettle time.Duration
	SeekPerCyl time.Duration
	MaxSeek    time.Duration
}

// DefaultGeometry returns the slow-disk model used throughout the
// capacity experiments: 3600 RPM (16.7 ms/revolution), 15 KB tracks,
// ~900 MB total.
func DefaultGeometry() Geometry {
	return Geometry{
		Cylinders:         1200,
		TracksPerCylinder: 4,
		TrackSize:         15 * 1024,
		RPM:               3600,
		SeekSettle:        3 * time.Millisecond,
		SeekPerCyl:        30 * time.Microsecond,
		MaxSeek:           40 * time.Millisecond,
	}
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Cylinders <= 0 || g.TracksPerCylinder <= 0 || g.TrackSize <= 0 || g.RPM <= 0 {
		return fmt.Errorf("disk: non-positive geometry field: %+v", g)
	}
	return nil
}

// NumTracks returns the total number of tracks.
func (g Geometry) NumTracks() int { return g.Cylinders * g.TracksPerCylinder }

// Capacity returns total bytes.
func (g Geometry) Capacity() int64 { return int64(g.NumTracks()) * int64(g.TrackSize) }

// RevolutionTime returns the time for one full platter revolution.
func (g Geometry) RevolutionTime() time.Duration {
	return time.Duration(int64(time.Minute) / int64(g.RPM))
}

// seekTime returns the time to move the arm across dist cylinders.
func (g Geometry) seekTime(dist int) time.Duration {
	if dist == 0 {
		return 0
	}
	if dist < 0 {
		dist = -dist
	}
	t := g.SeekSettle + time.Duration(dist)*g.SeekPerCyl
	if g.MaxSeek > 0 && t > g.MaxSeek {
		t = g.MaxSeek
	}
	return t
}

// Stats accumulates device activity for utilization reports.
type Stats struct {
	TrackWrites  uint64
	TrackReads   uint64
	Seeks        uint64
	BytesWritten uint64
	BytesRead    uint64
	BusyTime     time.Duration
	SeekTime     time.Duration
	RotationTime time.Duration
	TransferTime time.Duration
}

// Errors returned by Disk operations.
var (
	ErrTrackRange = errors.New("disk: track number out of range")
	ErrTrackSize  = errors.New("disk: data exceeds track size")
	ErrTornWrite  = errors.New("disk: track contains a torn write")
)

// Disk is a simulated track-oriented disk. It is safe for concurrent
// use. Contents survive Crash (disks are non-volatile); only the
// in-flight write at the instant of a crash may be torn when torn
// writes are enabled.
type Disk struct {
	geom Geometry

	mu     sync.Mutex
	tracks [][]byte
	torn   []bool
	curCyl int
	stats  Stats
}

// New returns a disk with the given geometry.
func New(g Geometry) (*Disk, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Disk{
		geom:   g,
		tracks: make([][]byte, g.NumTracks()),
		torn:   make([]bool, g.NumTracks()),
	}, nil
}

// Geometry returns the disk's geometry.
func (d *Disk) Geometry() Geometry { return d.geom }

func (d *Disk) cylOf(track int) int { return track / d.geom.TracksPerCylinder }

// WriteTrack replaces the contents of the given track and returns the
// simulated service time: seek (if the arm moved) + rotational latency
// to reach the index point + one revolution of transfer. Writing to
// the track following the previous operation's track on the same
// cylinder costs no seek, which is why the log stream is laid out
// sequentially.
func (d *Disk) WriteTrack(track int, data []byte) (time.Duration, error) {
	if track < 0 || track >= d.geom.NumTracks() {
		return 0, fmt.Errorf("%w: %d", ErrTrackRange, track)
	}
	if len(data) > d.geom.TrackSize {
		return 0, fmt.Errorf("%w: %d > %d", ErrTrackSize, len(data), d.geom.TrackSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	svc := d.position(track)
	// A full-track write takes one revolution and needs no additional
	// rotational positioning: writing starts wherever the head is and
	// wraps (the whole track is replaced).
	rev := d.geom.RevolutionTime()
	svc += rev
	d.stats.TransferTime += rev

	stored := make([]byte, len(data))
	copy(stored, data)
	d.tracks[track] = stored
	d.torn[track] = false
	d.stats.TrackWrites++
	d.stats.BytesWritten += uint64(len(data))
	d.stats.BusyTime += svc
	return svc, nil
}

// ReadTrack returns a copy of the track's contents and the simulated
// service time: seek + average rotational latency (half a revolution)
// + one revolution of transfer. Reading a never-written track returns
// a nil slice; reading a torn track returns ErrTornWrite.
func (d *Disk) ReadTrack(track int) ([]byte, time.Duration, error) {
	if track < 0 || track >= d.geom.NumTracks() {
		return nil, 0, fmt.Errorf("%w: %d", ErrTrackRange, track)
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	svc := d.position(track)
	rev := d.geom.RevolutionTime()
	svc += rev/2 + rev
	d.stats.RotationTime += rev / 2
	d.stats.TransferTime += rev

	d.stats.TrackReads++
	d.stats.BusyTime += svc
	if d.torn[track] {
		return nil, svc, ErrTornWrite
	}
	var out []byte
	if t := d.tracks[track]; t != nil {
		out = make([]byte, len(t))
		copy(out, t)
		d.stats.BytesRead += uint64(len(t))
	}
	return out, svc, nil
}

// position moves the arm to the track's cylinder, accumulating seek
// statistics, and returns the seek time.
func (d *Disk) position(track int) time.Duration {
	cyl := d.cylOf(track)
	st := d.geom.seekTime(cyl - d.curCyl)
	if st > 0 {
		d.stats.Seeks++
		d.stats.SeekTime += st
	}
	d.curCyl = cyl
	return st
}

// Crash simulates a power failure. Disk contents are retained. When
// inFlight >= 0, that track is marked torn to model a write that was
// under way when power was lost; subsequent reads of it fail until it
// is rewritten.
func (d *Disk) Crash(inFlight int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if inFlight >= 0 && inFlight < len(d.torn) {
		d.torn[inFlight] = true
	}
}

// Stats returns a copy of the accumulated statistics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the accumulated statistics (used between benchmark
// phases).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}
