package disk

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func newTestDisk(t *testing.T) *Disk {
	t.Helper()
	d, err := New(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultGeometry()
	bad.TrackSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero track size accepted")
	}
	if _, err := New(bad); err == nil {
		t.Error("New accepted invalid geometry")
	}
}

func TestGeometryDerived(t *testing.T) {
	g := DefaultGeometry()
	if g.NumTracks() != g.Cylinders*g.TracksPerCylinder {
		t.Error("NumTracks")
	}
	if g.Capacity() != int64(g.NumTracks())*int64(g.TrackSize) {
		t.Error("Capacity")
	}
	// 3600 RPM => 16.666 ms/rev.
	if rt := g.RevolutionTime(); rt != time.Minute/3600 {
		t.Errorf("RevolutionTime = %v", rt)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newTestDisk(t)
	data := bytes.Repeat([]byte{0xAB}, 100)
	if _, err := d.WriteTrack(7, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.ReadTrack(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	// Unwritten track reads as nil.
	got, _, err = d.ReadTrack(8)
	if err != nil || got != nil {
		t.Fatalf("unwritten track: %v, %v", got, err)
	}
}

func TestWriteTrackCopiesData(t *testing.T) {
	d := newTestDisk(t)
	data := []byte{1, 2, 3}
	if _, err := d.WriteTrack(0, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	got, _, _ := d.ReadTrack(0)
	if got[0] != 1 {
		t.Fatal("disk aliases caller's buffer")
	}
	got[1] = 99
	again, _, _ := d.ReadTrack(0)
	if again[1] != 2 {
		t.Fatal("disk hands out aliased track contents")
	}
}

func TestBounds(t *testing.T) {
	d := newTestDisk(t)
	if _, err := d.WriteTrack(-1, nil); !errors.Is(err, ErrTrackRange) {
		t.Errorf("negative track: %v", err)
	}
	if _, err := d.WriteTrack(d.Geometry().NumTracks(), nil); !errors.Is(err, ErrTrackRange) {
		t.Errorf("track beyond end: %v", err)
	}
	if _, _, err := d.ReadTrack(1 << 30); !errors.Is(err, ErrTrackRange) {
		t.Errorf("read beyond end: %v", err)
	}
	big := make([]byte, d.Geometry().TrackSize+1)
	if _, err := d.WriteTrack(0, big); !errors.Is(err, ErrTrackSize) {
		t.Errorf("oversized write: %v", err)
	}
}

func TestSequentialWritesAvoidSeeks(t *testing.T) {
	// Writing tracks in order within one cylinder must cost no seek
	// time after the first positioning; that is the rationale for the
	// interleaved sequential log stream (Section 4.3).
	d := newTestDisk(t)
	g := d.Geometry()
	data := make([]byte, g.TrackSize)
	for trk := 0; trk < g.TracksPerCylinder; trk++ {
		if _, err := d.WriteTrack(trk, data); err != nil {
			t.Fatal(err)
		}
	}
	if s := d.Stats(); s.Seeks != 0 {
		t.Fatalf("Seeks = %d, want 0 (arm starts at cylinder 0)", s.Seeks)
	}
	// Next cylinder costs exactly one 1-cylinder seek.
	if _, err := d.WriteTrack(g.TracksPerCylinder, data); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Seeks != 1 {
		t.Fatalf("Seeks = %d, want 1", s.Seeks)
	}
	if want := g.SeekSettle + g.SeekPerCyl; s.SeekTime != want {
		t.Fatalf("SeekTime = %v, want %v", s.SeekTime, want)
	}
}

func TestSeekTimeModel(t *testing.T) {
	g := DefaultGeometry()
	if st := g.seekTime(0); st != 0 {
		t.Errorf("zero-distance seek costs %v", st)
	}
	if g.seekTime(5) != g.seekTime(-5) {
		t.Error("seek time not symmetric")
	}
	if g.seekTime(2) <= g.seekTime(1) {
		t.Error("seek time not increasing with distance")
	}
	if st := g.seekTime(1 << 20); st != g.MaxSeek {
		t.Errorf("long seek %v, want capped at %v", st, g.MaxSeek)
	}
}

func TestWriteTrackServiceTime(t *testing.T) {
	// A track write with no arm movement costs exactly one revolution.
	d := newTestDisk(t)
	g := d.Geometry()
	svc, err := d.WriteTrack(0, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if svc != g.RevolutionTime() {
		t.Fatalf("service = %v, want one revolution %v", svc, g.RevolutionTime())
	}
	// A read costs seek + half a revolution (average latency) + one
	// revolution of transfer.
	_, svc, err = d.ReadTrack(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := g.RevolutionTime() + g.RevolutionTime()/2; svc != want {
		t.Fatalf("read service = %v, want %v", svc, want)
	}
}

func TestCrashRetainsData(t *testing.T) {
	d := newTestDisk(t)
	if _, err := d.WriteTrack(3, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	d.Crash(-1)
	got, _, err := d.ReadTrack(3)
	if err != nil || string(got) != "durable" {
		t.Fatalf("after crash: %q, %v", got, err)
	}
}

func TestCrashTornWrite(t *testing.T) {
	d := newTestDisk(t)
	if _, err := d.WriteTrack(3, []byte("half")); err != nil {
		t.Fatal(err)
	}
	d.Crash(3)
	if _, _, err := d.ReadTrack(3); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("torn track read: %v, want ErrTornWrite", err)
	}
	// Rewriting heals the track.
	if _, err := d.WriteTrack(3, []byte("whole")); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.ReadTrack(3)
	if err != nil || string(got) != "whole" {
		t.Fatalf("healed track: %q, %v", got, err)
	}
}

func TestStatsAccumulation(t *testing.T) {
	d := newTestDisk(t)
	d.WriteTrack(0, make([]byte, 1000))
	d.WriteTrack(100, make([]byte, 500))
	d.ReadTrack(0)
	s := d.Stats()
	if s.TrackWrites != 2 || s.TrackReads != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.BytesWritten != 1500 {
		t.Fatalf("BytesWritten = %d", s.BytesWritten)
	}
	if s.BytesRead != 1000 {
		t.Fatalf("BytesRead = %d", s.BytesRead)
	}
	if s.BusyTime != s.SeekTime+s.RotationTime+s.TransferTime {
		t.Fatalf("BusyTime %v != seek %v + rot %v + xfer %v", s.BusyTime, s.SeekTime, s.RotationTime, s.TransferTime)
	}
	d.ResetStats()
	if s := d.Stats(); s.TrackWrites != 0 || s.BusyTime != 0 {
		t.Fatal("ResetStats did not zero")
	}
}

// TestTrackRateCeiling verifies the capacity-analysis premise: a 3600
// RPM disk can complete at most ~60 sequential track writes per second
// (one revolution each), so forcing 170 individual requests per second
// without a buffer is infeasible, while 170 records/s grouped into
// tracks is comfortable.
func TestTrackRateCeiling(t *testing.T) {
	g := DefaultGeometry()
	perSecond := time.Second / g.RevolutionTime()
	if perSecond != 60 {
		t.Fatalf("sequential track writes/s = %d, want 60", perSecond)
	}
}

func BenchmarkWriteTrack(b *testing.B) {
	d, err := New(DefaultGeometry())
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, d.Geometry().TrackSize)
	n := d.Geometry().NumTracks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.WriteTrack(i%n, data); err != nil {
			b.Fatal(err)
		}
	}
}
