// Package faultpoint provides named crash-point injection for testing
// the Section 3.1.2 recovery guarantees. Code under test marks the
// protocol steps where a crash must leave the log recoverable with
// Hit (or HitErr, for points that can also inject an error return);
// a test harness arms a point with a per-hit-count trigger and a
// callback that models the crash — typically closing the crashed
// node's network endpoint so nothing after the point escapes.
//
// The registry is process-global because the points are compiled into
// production packages (client, server, storage) and armed from test
// binaries and the crashaudit command. When nothing is armed and
// tracking is off, Hit costs a single atomic load — the packages pay
// nothing in production.
//
// Typical use:
//
//	// package under test, at the protocol step:
//	faultpoint.Hit("client.force.after-flush")
//
//	// harness:
//	faultpoint.Arm("client.force.after-flush", 2, func() { ep.Close() })
//	... drive workload; the second pass through the point "crashes" ...
//	if !faultpoint.Fired("client.force.after-flush") { ... }
package faultpoint

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// point is one registered trigger point.
type point struct {
	hits      uint64 // passes observed while the registry was active
	armed     bool
	triggerAt uint64 // absolute hit count at which the trigger fires
	fired     bool   // the armed trigger has fired since the last Arm
	fn        func() // crash callback (Arm)
	err       error  // injected error (ArmErr)
}

var reg = struct {
	// active is non-zero while any point is armed or tracking is on;
	// the disarmed fast path of Hit is one load of this counter.
	active atomic.Int64

	mu       sync.Mutex
	points   map[string]*point
	tracking bool
}{points: make(map[string]*point)}

// Register declares trigger points. Packages register the points they
// hit from an init function; arming an unregistered name panics, so
// typos in harnesses fail loudly. Registering an existing name is a
// no-op, and the return value exists so packages can register from a
// package-level var declaration.
func Register(names ...string) struct{} {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, name := range names {
		if _, ok := reg.points[name]; !ok {
			reg.points[name] = &point{}
		}
	}
	return struct{}{}
}

// Points returns the sorted names of every registered point.
func Points() []string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make([]string, 0, len(reg.points))
	for name := range reg.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Hit marks one pass through the named point. While the registry is
// inactive (nothing armed, tracking off) it returns after a single
// atomic load. An armed trigger fires on its configured pass: the
// callback runs (outside the registry lock) exactly once.
func Hit(name string) {
	if reg.active.Load() == 0 {
		return
	}
	if fn := hitSlow(name); fn != nil {
		fn()
	}
}

// HitErr is Hit for points that inject failures: a point armed with
// ArmErr makes HitErr return the injected error on the trigger pass;
// otherwise (including plain Arm) it behaves like Hit and returns nil.
func HitErr(name string) error {
	if reg.active.Load() == 0 {
		return nil
	}
	fn, err := hitErrSlow(name)
	if fn != nil {
		fn()
	}
	return err
}

func hitSlow(name string) func() {
	fn, _ := hitErrSlow(name)
	return fn
}

// hitErrSlow counts the pass and consumes the trigger when it is due,
// returning the callback (run by the caller, outside the lock) and the
// injected error.
func hitErrSlow(name string) (func(), error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	p := reg.points[name]
	if p == nil {
		// A hit on an unregistered name is a bug in the instrumented
		// package; registering it here keeps counting sane, and the
		// coverage check in harnesses (which iterates Points) will
		// still see it.
		p = &point{}
		reg.points[name] = p
	}
	p.hits++
	if !p.armed || p.hits != p.triggerAt {
		return nil, nil
	}
	p.armed = false
	p.fired = true
	reg.active.Add(-1)
	return p.fn, p.err
}

// Arm sets the named point to run fn on its n-th pass from now
// (n >= 1). The trigger is one-shot: it disarms as it fires. Arming an
// already-armed point replaces the previous trigger. The name must
// have been registered.
func Arm(name string, n uint64, fn func()) {
	arm(name, n, fn, nil)
}

// ArmErr sets the named point to make HitErr return err on its n-th
// pass from now. One-shot, like Arm.
func ArmErr(name string, n uint64, err error) {
	arm(name, n, nil, err)
}

func arm(name string, n uint64, fn func(), err error) {
	if n == 0 {
		n = 1
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	p := reg.points[name]
	if p == nil {
		panic(fmt.Sprintf("faultpoint: arming unregistered point %q", name))
	}
	if !p.armed {
		reg.active.Add(1)
	}
	p.armed = true
	p.fired = false
	p.triggerAt = p.hits + n
	p.fn = fn
	p.err = err
}

// Disarm cancels the named point's trigger, if armed.
func Disarm(name string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if p := reg.points[name]; p != nil && p.armed {
		p.armed = false
		p.fn = nil
		p.err = nil
		reg.active.Add(-1)
	}
}

// Fired reports whether the named point's most recent trigger has
// fired.
func Fired(name string) bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	p := reg.points[name]
	return p != nil && p.fired
}

// Hits returns the number of passes through the named point observed
// while the registry was active.
func Hits(name string) uint64 {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if p := reg.points[name]; p != nil {
		return p.hits
	}
	return 0
}

// SetTracking turns hit counting on or off independently of arming,
// so a harness can measure which points a workload passes through
// before deciding where to inject crashes.
func SetTracking(on bool) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if on == reg.tracking {
		return
	}
	reg.tracking = on
	if on {
		reg.active.Add(1)
	} else {
		reg.active.Add(-1)
	}
}

// Reset disarms every point, zeroes all hit counters and fired flags,
// and turns tracking off. Harnesses call it between runs.
func Reset() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, p := range reg.points {
		if p.armed {
			reg.active.Add(-1)
		}
		*p = point{}
	}
	if reg.tracking {
		reg.tracking = false
		reg.active.Add(-1)
	}
}
