package faultpoint

import (
	"errors"
	"sync"
	"testing"
)

// Every test resets the global registry; they cannot run in parallel
// with each other, which the testing package already guarantees for
// non-Parallel tests in one package.

func TestDisarmedHitIsInert(t *testing.T) {
	Reset()
	Register("t.inert")
	Hit("t.inert") // must not count: registry inactive
	if got := Hits("t.inert"); got != 0 {
		t.Fatalf("inactive Hit counted: %d", got)
	}
	if err := HitErr("t.inert"); err != nil {
		t.Fatalf("inactive HitErr: %v", err)
	}
}

func TestArmFiresOnNthHit(t *testing.T) {
	Reset()
	Register("t.nth")
	fired := 0
	Arm("t.nth", 3, func() { fired++ })
	for i := 0; i < 5; i++ {
		Hit("t.nth")
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1 (on the 3rd hit)", fired)
	}
	if !Fired("t.nth") {
		t.Fatal("Fired = false after trigger")
	}
	// Hits counted only while active: 3 until the one-shot disarmed.
	if got := Hits("t.nth"); got != 3 {
		t.Fatalf("Hits = %d, want 3 (counting stops when the one-shot disarms)", got)
	}
}

func TestArmErrInjects(t *testing.T) {
	Reset()
	Register("t.err")
	boom := errors.New("boom")
	ArmErr("t.err", 2, boom)
	if err := HitErr("t.err"); err != nil {
		t.Fatalf("hit 1: %v", err)
	}
	if err := HitErr("t.err"); !errors.Is(err, boom) {
		t.Fatalf("hit 2: %v, want boom", err)
	}
	if err := HitErr("t.err"); err != nil {
		t.Fatalf("hit 3 (disarmed): %v", err)
	}
}

func TestRearmReplacesTrigger(t *testing.T) {
	Reset()
	Register("t.rearm")
	a, b := 0, 0
	Arm("t.rearm", 5, func() { a++ })
	Arm("t.rearm", 1, func() { b++ })
	Hit("t.rearm")
	if a != 0 || b != 1 {
		t.Fatalf("a=%d b=%d, want 0,1", a, b)
	}
}

func TestDisarm(t *testing.T) {
	Reset()
	Register("t.disarm")
	Arm("t.disarm", 1, func() { t.Fatal("fired after Disarm") })
	Disarm("t.disarm")
	Hit("t.disarm")
	if Fired("t.disarm") {
		t.Fatal("Fired after Disarm")
	}
}

func TestTrackingCountsWithoutArming(t *testing.T) {
	Reset()
	Register("t.track")
	SetTracking(true)
	Hit("t.track")
	Hit("t.track")
	SetTracking(false)
	Hit("t.track") // inactive again
	if got := Hits("t.track"); got != 2 {
		t.Fatalf("Hits = %d, want 2", got)
	}
}

func TestArmUnregisteredPanics(t *testing.T) {
	Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("Arm on unregistered point did not panic")
		}
	}()
	Arm("t.never-registered", 1, func() {})
}

func TestConcurrentHitsFireOnce(t *testing.T) {
	Reset()
	Register("t.conc")
	var fired sync.Map
	var n int
	var mu sync.Mutex
	Arm("t.conc", 10, func() {
		mu.Lock()
		n++
		mu.Unlock()
		fired.Store("x", true)
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Hit("t.conc")
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if n != 1 {
		t.Fatalf("trigger fired %d times under concurrency", n)
	}
}

func TestPointsSorted(t *testing.T) {
	Reset()
	Register("t.b", "t.a")
	pts := Points()
	for i := 1; i < len(pts); i++ {
		if pts[i-1] >= pts[i] {
			t.Fatalf("Points not sorted: %v", pts)
		}
	}
}
