// Package idgen implements the replicated increasing unique identifier
// generator of Appendix I of "Distributed Logging for Transaction
// Processing" (SIGMOD 1987). The generator issues the epoch numbers
// that the replicated log uses to distinguish records written in
// different client crash epochs.
//
// The generator's state — a single integer — is replicated on R state
// representatives, each providing atomic Read and Write of its copy.
// NewID reads ceil((R+1)/2) representatives, writes a value higher
// than any read to ceil(R/2) representatives, and returns the value
// written. Because every read quorum intersects every earlier write
// quorum, identifiers are strictly increasing across invocations, even
// across client crashes; a crash between the read and write phases can
// at worst cause values to be skipped.
//
// Only a single client process may use a given generator at one time
// (the same restriction the replicated log itself carries).
package idgen

import (
	"errors"
	"fmt"
	"sync"
)

// Representative stores one copy of the generator state and provides
// operations that are atomic at that representative. Representatives
// normally live on log server nodes; this package provides local
// implementations, and the server/wire packages provide a remote one.
type Representative interface {
	// ReadState returns the representative's current value. A
	// never-written representative returns 0.
	ReadState() (uint64, error)
	// WriteState durably replaces the representative's value.
	WriteState(v uint64) error
}

// Errors returned by the generator.
var (
	ErrNoReps      = errors.New("idgen: generator has no representatives")
	ErrReadQuorum  = errors.New("idgen: could not read a quorum of representatives")
	ErrWriteQuorum = errors.New("idgen: could not write a quorum of representatives")
)

// Generator is a replicated increasing unique identifier generator.
type Generator struct {
	mu   sync.Mutex
	reps []Representative
}

// New returns a generator over the given representatives.
func New(reps ...Representative) (*Generator, error) {
	if len(reps) == 0 {
		return nil, ErrNoReps
	}
	return &Generator{reps: reps}, nil
}

// ReadQuorum returns the number of representatives NewID must read:
// ceil((R+1)/2).
func (g *Generator) ReadQuorum() int { return (len(g.reps) + 2) / 2 }

// WriteQuorum returns the number of representatives NewID must write:
// ceil(R/2).
func (g *Generator) WriteQuorum() int { return (len(g.reps) + 1) / 2 }

// NewID returns an identifier strictly greater than any identifier
// previously returned by this generator (across all prior lifetimes of
// the client). It fails when a read or write quorum cannot be reached,
// leaving the generator unchanged or partially advanced; a failed
// NewID never hands out an identifier.
func (g *Generator) NewID() (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()

	// Phase 1: read ceil((R+1)/2) representatives.
	var (
		max      uint64
		readOK   int
		firstErr error
	)
	for _, r := range g.reps {
		v, err := r.ReadState()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		readOK++
		if v > max {
			max = v
		}
		if readOK == g.ReadQuorum() {
			break
		}
	}
	if readOK < g.ReadQuorum() {
		return 0, quorumError(ErrReadQuorum, readOK, g.ReadQuorum(), firstErr)
	}

	// Phase 2: write a higher value to ceil(R/2) representatives. Any
	// overlapping assignment of reads and writes may be used, so we
	// simply try all representatives until enough writes succeed.
	next := max + 1
	writeOK := 0
	firstErr = nil
	for _, r := range g.reps {
		if err := r.WriteState(next); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		writeOK++
		if writeOK == g.WriteQuorum() {
			break
		}
	}
	if writeOK < g.WriteQuorum() {
		return 0, quorumError(ErrWriteQuorum, writeOK, g.WriteQuorum(), firstErr)
	}
	return next, nil
}

// quorumError wraps both the quorum sentinel and the first underlying
// cause so callers can test for either with errors.Is.
func quorumError(sentinel error, got, need int, cause error) error {
	if cause == nil {
		return fmt.Errorf("%w: %d of %d needed", sentinel, got, need)
	}
	return fmt.Errorf("%w: %d of %d needed: %w", sentinel, got, need, cause)
}

// MemRep is an in-memory representative, for tests and single-process
// deployments. Its state survives as long as the Go object does, which
// models a representative's non-volatile storage when the harness
// keeps the object across simulated crashes.
type MemRep struct {
	mu   sync.Mutex
	v    uint64
	fail error // when non-nil, all operations fail with this error
}

// NewMemRep returns an in-memory representative holding 0.
func NewMemRep() *MemRep { return &MemRep{} }

// ReadState implements Representative.
func (m *MemRep) ReadState() (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return 0, m.fail
	}
	return m.v, nil
}

// WriteState implements Representative.
func (m *MemRep) WriteState(v uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return m.fail
	}
	m.v = v
	return nil
}

// SetFailure makes subsequent operations fail with err (nil restores
// service), for availability tests.
func (m *MemRep) SetFailure(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fail = err
}

// Value returns the stored state, bypassing failure injection.
func (m *MemRep) Value() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.v
}
