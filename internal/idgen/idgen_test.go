package idgen

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"distlog/internal/nvram"
)

var errDown = errors.New("representative down")

func memGen(t *testing.T, n int) (*Generator, []*MemRep) {
	t.Helper()
	reps := make([]*MemRep, n)
	ifaces := make([]Representative, n)
	for i := range reps {
		reps[i] = NewMemRep()
		ifaces[i] = reps[i]
	}
	g, err := New(ifaces...)
	if err != nil {
		t.Fatal(err)
	}
	return g, reps
}

func TestNewRequiresReps(t *testing.T) {
	if _, err := New(); !errors.Is(err, ErrNoReps) {
		t.Fatalf("New() = %v", err)
	}
}

func TestQuorumSizes(t *testing.T) {
	cases := []struct{ reps, read, write int }{
		{1, 1, 1},
		{2, 2, 1}, // ceil(3/2)=2, ceil(2/2)=1
		{3, 2, 2},
		{4, 3, 2},
		{5, 3, 3},
		{7, 4, 4},
	}
	for _, c := range cases {
		g, _ := memGen(t, c.reps)
		if g.ReadQuorum() != c.read {
			t.Errorf("R=%d: ReadQuorum = %d, want %d", c.reps, g.ReadQuorum(), c.read)
		}
		if g.WriteQuorum() != c.write {
			t.Errorf("R=%d: WriteQuorum = %d, want %d", c.reps, g.WriteQuorum(), c.write)
		}
		// Intersection: read + write quorums together exceed R, so any
		// read quorum sees every earlier write.
		if g.ReadQuorum()+g.WriteQuorum() <= c.reps {
			t.Errorf("R=%d: quorums do not intersect", c.reps)
		}
	}
}

func TestStrictlyIncreasing(t *testing.T) {
	g, _ := memGen(t, 3)
	var prev uint64
	for i := 0; i < 100; i++ {
		id, err := g.NewID()
		if err != nil {
			t.Fatal(err)
		}
		if id <= prev {
			t.Fatalf("id %d not greater than previous %d", id, prev)
		}
		prev = id
	}
}

func TestSurvivesMinorityFailure(t *testing.T) {
	g, reps := memGen(t, 3)
	id1, err := g.NewID()
	if err != nil {
		t.Fatal(err)
	}
	reps[0].SetFailure(errDown) // one of three down: still available
	id2, err := g.NewID()
	if err != nil {
		t.Fatal(err)
	}
	if id2 <= id1 {
		t.Fatalf("id2 %d <= id1 %d", id2, id1)
	}
	// Recovery of the stale representative must not regress the
	// sequence: its old value is simply outvoted.
	reps[0].SetFailure(nil)
	id3, err := g.NewID()
	if err != nil {
		t.Fatal(err)
	}
	if id3 <= id2 {
		t.Fatalf("id3 %d <= id2 %d after rep recovery", id3, id2)
	}
}

func TestMajorityFailureUnavailable(t *testing.T) {
	g, reps := memGen(t, 3)
	reps[0].SetFailure(errDown)
	reps[1].SetFailure(errDown)
	if _, err := g.NewID(); !errors.Is(err, ErrReadQuorum) {
		t.Fatalf("NewID with majority down: %v", err)
	}
	// The underlying cause is surfaced.
	if _, err := g.NewID(); !errors.Is(err, errDown) {
		t.Fatalf("cause not wrapped: %v", err)
	}
}

func TestWriteQuorumFailure(t *testing.T) {
	// Reads succeed everywhere but writes fail on 2 of 3: write quorum
	// (2) unreachable.
	reps := []*failingWriteRep{{}, {fail: true}, {fail: true}}
	ifaces := make([]Representative, len(reps))
	for i := range reps {
		ifaces[i] = reps[i]
	}
	g, err := New(ifaces...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.NewID(); !errors.Is(err, ErrWriteQuorum) {
		t.Fatalf("NewID = %v", err)
	}
}

type failingWriteRep struct {
	v    uint64
	fail bool
}

func (r *failingWriteRep) ReadState() (uint64, error) { return r.v, nil }
func (r *failingWriteRep) WriteState(v uint64) error {
	if r.fail {
		return errDown
	}
	r.v = v
	return nil
}

// TestIncreasingAcrossPartialWrites models the Appendix I scenario: a
// crash interrupts NewID after a partial write; values may be skipped
// but never reissued or decreased.
func TestIncreasingAcrossPartialWrites(t *testing.T) {
	g, reps := memGen(t, 3)
	for i := 0; i < 5; i++ {
		if _, err := g.NewID(); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-NewID: a value was written to one rep only
	// (less than the write quorum of 2). We fake it by writing directly.
	interrupted := reps[0].Value() + 1
	if err := reps[0].WriteState(interrupted); err != nil {
		t.Fatal(err)
	}
	// The "restarted client" runs NewID again; the result must exceed
	// the partially written value, because any read quorum (2 of 3)
	// includes rep 0 or sees a value that, +1, may collide... The read
	// quorum must include at least one of the two reps written by the
	// last complete NewID, and rep 0 holds the highest value overall;
	// with 3 reps the read quorum of 2 is guaranteed to see max>=
	// interrupted-1, so the new id is >= interrupted. To be safe the
	// algorithm must never return a value <= a previously *returned*
	// id; interrupted was never returned, so equality with it is
	// acceptable but regression below id5 is not.
	id5 := reps[1].Value() // last successfully written value
	id6, err := g.NewID()
	if err != nil {
		t.Fatal(err)
	}
	if id6 <= id5 {
		t.Fatalf("id after partial write %d <= last issued %d", id6, id5)
	}
}

func TestFileRep(t *testing.T) {
	dir := t.TempDir()
	rep := NewFileRep(filepath.Join(dir, "state"))
	v, err := rep.ReadState()
	if err != nil || v != 0 {
		t.Fatalf("fresh file rep: %d, %v", v, err)
	}
	if err := rep.WriteState(42); err != nil {
		t.Fatal(err)
	}
	v, err = rep.ReadState()
	if err != nil || v != 42 {
		t.Fatalf("after write: %d, %v", v, err)
	}
	// A new object over the same path sees the state (restart).
	rep2 := NewFileRep(filepath.Join(dir, "state"))
	v, err = rep2.ReadState()
	if err != nil || v != 42 {
		t.Fatalf("after reopen: %d, %v", v, err)
	}
}

func TestFileRepGenerator(t *testing.T) {
	dir := t.TempDir()
	reps := make([]Representative, 3)
	for i := range reps {
		reps[i] = NewFileRep(filepath.Join(dir, fmt.Sprintf("rep%d", i)))
	}
	g, err := New(reps...)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i := 0; i < 10; i++ {
		id, err := g.NewID()
		if err != nil {
			t.Fatal(err)
		}
		if id <= prev {
			t.Fatalf("id %d <= %d", id, prev)
		}
		prev = id
	}
	// Simulate client restart: rebuild generator over the same files.
	reps2 := make([]Representative, 3)
	for i := range reps2 {
		reps2[i] = NewFileRep(filepath.Join(dir, fmt.Sprintf("rep%d", i)))
	}
	g2, err := New(reps2...)
	if err != nil {
		t.Fatal(err)
	}
	id, err := g2.NewID()
	if err != nil {
		t.Fatal(err)
	}
	if id <= prev {
		t.Fatalf("id %d after restart <= %d", id, prev)
	}
}

func TestNVRAMRep(t *testing.T) {
	mem := nvram.New(0)
	rep := NewNVRAMRep(mem, "epoch")
	v, err := rep.ReadState()
	if err != nil || v != 0 {
		t.Fatalf("fresh: %d, %v", v, err)
	}
	if err := rep.WriteState(7); err != nil {
		t.Fatal(err)
	}
	// Survives a power failure.
	mem.Crash()
	mem.Restart()
	v, err = rep.ReadState()
	if err != nil || v != 7 {
		t.Fatalf("after crash: %d, %v", v, err)
	}
}

func TestNVRAMRepGenerator(t *testing.T) {
	mems := []*nvram.NVRAM{nvram.New(0), nvram.New(0), nvram.New(0)}
	reps := make([]Representative, 3)
	for i, m := range mems {
		reps[i] = NewNVRAMRep(m, "epoch")
	}
	g, err := New(reps...)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := g.NewID()
	if err != nil {
		t.Fatal(err)
	}
	// One server loses power: generator still available, and when it
	// returns, ids continue increasing.
	mems[2].Crash()
	id2, err := g.NewID()
	if err != nil {
		t.Fatal(err)
	}
	mems[2].Restart()
	id3, err := g.NewID()
	if err != nil {
		t.Fatal(err)
	}
	if !(id1 < id2 && id2 < id3) {
		t.Fatalf("ids not increasing: %d %d %d", id1, id2, id3)
	}
}

func TestSingleRep(t *testing.T) {
	g, _ := memGen(t, 1)
	id1, err := g.NewID()
	if err != nil || id1 != 1 {
		t.Fatalf("first id: %d, %v", id1, err)
	}
	id2, err := g.NewID()
	if err != nil || id2 != 2 {
		t.Fatalf("second id: %d, %v", id2, err)
	}
}

func BenchmarkNewID(b *testing.B) {
	reps := []Representative{NewMemRep(), NewMemRep(), NewMemRep()}
	g, err := New(reps...)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.NewID(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFileRepCorruptStateFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state")
	if err := os.WriteFile(path, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := NewFileRep(path)
	if _, err := rep.ReadState(); err == nil {
		t.Fatal("corrupt state file accepted")
	}
}

func TestNVRAMRepCorruptCell(t *testing.T) {
	mem := nvram.New(0)
	if _, err := mem.WriteCell("epoch", 0, []byte("bad")); err != nil {
		t.Fatal(err)
	}
	rep := NewNVRAMRep(mem, "epoch")
	if _, err := rep.ReadState(); err == nil {
		t.Fatal("corrupt cell accepted")
	}
}

func TestNVRAMRepPowerFailureDuringUse(t *testing.T) {
	mem := nvram.New(0)
	rep := NewNVRAMRep(mem, "epoch")
	if err := rep.WriteState(5); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	if _, err := rep.ReadState(); err == nil {
		t.Fatal("read succeeded while powered off")
	}
	if err := rep.WriteState(6); err == nil {
		t.Fatal("write succeeded while powered off")
	}
	mem.Restart()
	v, err := rep.ReadState()
	if err != nil || v != 5 {
		t.Fatalf("after restart: %d, %v", v, err)
	}
}
