package idgen

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"distlog/internal/nvram"
)

// FileRep is a representative whose state lives in a file, made atomic
// with the write-temp-then-rename idiom. It models a representative on
// a node with ordinary non-volatile storage.
type FileRep struct {
	path string
}

// NewFileRep returns a representative stored at path. The file is
// created on first write; a missing file reads as state 0.
func NewFileRep(path string) *FileRep { return &FileRep{path: path} }

// ReadState implements Representative.
func (f *FileRep) ReadState() (uint64, error) {
	data, err := os.ReadFile(f.path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(data) != 8 {
		return 0, fmt.Errorf("idgen: state file %s has %d bytes, want 8", f.path, len(data))
	}
	return binary.BigEndian.Uint64(data), nil
}

// WriteState implements Representative.
func (f *FileRep) WriteState(v uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	dir := filepath.Dir(f.path)
	tmp, err := os.CreateTemp(dir, ".idgen-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf[:]); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, f.path)
}

// NVRAMRep is a representative stored in a guarded cell of a log
// server's non-volatile memory — the deployment the paper describes
// ("representatives of a replicated identifier generator's state will
// normally be implemented on log server nodes").
type NVRAMRep struct {
	mem  *nvram.NVRAM
	cell string
}

// NewNVRAMRep returns a representative stored in the named cell.
func NewNVRAMRep(mem *nvram.NVRAM, cell string) *NVRAMRep {
	return &NVRAMRep{mem: mem, cell: cell}
}

// ReadState implements Representative.
func (r *NVRAMRep) ReadState() (uint64, error) {
	v, _, err := r.mem.ReadCell(r.cell)
	if err != nil {
		return 0, err
	}
	if v == nil {
		return 0, nil
	}
	if len(v) != 8 {
		return 0, fmt.Errorf("idgen: cell %q holds %d bytes, want 8", r.cell, len(v))
	}
	return binary.BigEndian.Uint64(v), nil
}

// WriteState implements Representative. The guarded-update discipline
// requires presenting the current version; a concurrent writer would
// be detected, satisfying the single-client assumption defensively.
func (r *NVRAMRep) WriteState(v uint64) error {
	_, ver, err := r.mem.ReadCell(r.cell)
	if err != nil {
		return err
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	_, err = r.mem.WriteCell(r.cell, ver, buf[:])
	return err
}
