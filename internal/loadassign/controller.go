package loadassign

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file is the live half of the package: the Section 5.4 strategies
// the simulation compares, turned into a control plane that watches
// real per-server load and issues write-set migration decisions. The
// offline simulation and the live controller share one ranking
// implementation (RankKeys), so a client's initialization choice, the
// simulation's predictions, and the rebalancer's decisions all agree
// about where a client belongs.

// SessionGaugePrefix is the telemetry gauge family the log servers
// export for per-node load: "server.sessions.<node>" is the live
// session count of one server, the load signal a View is built from
// when several servers share one telemetry registry.
const SessionGaugePrefix = "server.sessions."

// ServerLoad describes one log server in a View.
type ServerLoad struct {
	Addr string
	// Sessions is the server's live session count (its load gauge).
	Sessions int64
	// Up is false when the server is unreachable or stopped.
	Up bool
	// Leaving is true when the server is administratively draining:
	// still up for reads, but no longer a valid write-set member.
	Leaving bool
	// ArchiveReclaimable is the server's storage.disk.archive_reclaimable
	// gauge: archive bytes a retirement pass could free right now. A
	// high value means the node has disk headroom it can claw back on
	// demand; HeadroomPolicy prefers such nodes for displaced clients.
	ArchiveReclaimable int64
}

// Available reports whether the server may appear in a write set.
func (s ServerLoad) Available() bool { return s.Up && !s.Leaving }

// ClientLoad describes one client in a View.
type ClientLoad struct {
	ID       uint64
	WriteSet []string
}

// View is a consistent snapshot of the fleet for one control decision.
type View struct {
	Servers []ServerLoad
	Clients []ClientLoad
}

// available returns the addresses a write set may use.
func (v View) available() []string {
	out := make([]string, 0, len(v.Servers))
	for _, s := range v.Servers {
		if s.Available() {
			out = append(out, s.Addr)
		}
	}
	return out
}

// Decision directs one client to migrate its write set.
type Decision struct {
	ClientID uint64
	Target   []string
}

// Policy turns a View into migration decisions. Policies must be
// conservative: a client whose write set is fully available should not
// be moved unless the policy exists to rebalance load, because every
// migration starts a new interval on N servers.
type Policy interface {
	Name() string
	Decide(v View, n int) []Decision
}

// RendezvousPolicy is the default control-plane policy: each client
// belongs on the n highest-ranked available servers under the same
// rendezvous hashing the client used at initialization (Pick), so the
// policy only ever moves clients whose current set lost a member —
// exactly the clients a membership change affects.
type RendezvousPolicy struct{}

// Name implements Policy.
func (RendezvousPolicy) Name() string { return "rendezvous" }

// Decide implements Policy.
func (RendezvousPolicy) Decide(v View, n int) []Decision {
	avail := v.available()
	if len(avail) < n {
		return nil // nowhere to move anyone
	}
	ok := make(map[string]bool, len(avail))
	for _, a := range avail {
		ok[a] = true
	}
	var out []Decision
	for _, c := range v.Clients {
		healthy := len(c.WriteSet) == n
		for _, addr := range c.WriteSet {
			if !ok[addr] {
				healthy = false
			}
		}
		if healthy {
			continue
		}
		target := Pick(c.ID, n, avail)
		if !sameSet(target, c.WriteSet) {
			out = append(out, Decision{ClientID: c.ID, Target: target})
		}
	}
	return out
}

// HeadroomPolicy moves the same clients RendezvousPolicy would — only
// those whose write set lost a member — but places them by disk
// headroom instead of pure rendezvous rank: displaced clients land on
// the available servers with the most reclaimable archive space
// (Section 5.3: a node whose cold tier can still shed retired volumes
// absorbs new write load safely; a node pinned by lagging truncation
// floors should not also be handed fresh streams). Ties break by
// session count, then rendezvous rank, so decisions stay deterministic
// and degrade to rendezvous placement when no node reports headroom.
type HeadroomPolicy struct{}

// Name implements Policy.
func (HeadroomPolicy) Name() string { return "archive-headroom" }

// Decide implements Policy.
func (HeadroomPolicy) Decide(v View, n int) []Decision {
	var avail []ServerLoad
	ok := make(map[string]bool)
	for _, s := range v.Servers {
		if s.Available() {
			avail = append(avail, s)
			ok[s.Addr] = true
		}
	}
	if len(avail) < n {
		return nil
	}
	var out []Decision
	for _, c := range v.Clients {
		healthy := len(c.WriteSet) == n
		for _, addr := range c.WriteSet {
			if !ok[addr] {
				healthy = false
			}
		}
		if healthy {
			continue
		}
		ranked := append([]ServerLoad(nil), avail...)
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].ArchiveReclaimable != ranked[j].ArchiveReclaimable {
				return ranked[i].ArchiveReclaimable > ranked[j].ArchiveReclaimable
			}
			if ranked[i].Sessions != ranked[j].Sessions {
				return ranked[i].Sessions < ranked[j].Sessions
			}
			si := hrwScore(c.ID, HashAddr(ranked[i].Addr))
			sj := hrwScore(c.ID, HashAddr(ranked[j].Addr))
			if si != sj {
				return si > sj
			}
			return ranked[i].Addr < ranked[j].Addr
		})
		target := make([]string, 0, n)
		for _, s := range ranked[:n] {
			target = append(target, s.Addr)
		}
		if !sameSet(target, c.WriteSet) {
			out = append(out, Decision{ClientID: c.ID, Target: target})
		}
	}
	return out
}

// StrategyPolicy adapts an offline Strategy to the live control plane,
// for strategies that use coordinated knowledge (LeastLoaded places
// displaced clients on the emptiest servers). Server identity is the
// position in View.Servers, so the View must enumerate the fleet in a
// stable order for stability-sensitive strategies; the per-server load
// passed to Choose is the session gauge. Like RendezvousPolicy it only
// moves clients whose write set lost a member.
type StrategyPolicy struct {
	Strategy Strategy
	// Seed feeds randomized strategies; decisions for one view are
	// deterministic given the seed.
	Seed int64
}

// Name implements Policy.
func (p StrategyPolicy) Name() string { return "live-" + p.Strategy.Name() }

// Decide implements Policy.
func (p StrategyPolicy) Decide(v View, n int) []Decision {
	var upIdx []int
	var load []int
	byAddr := make(map[string]bool)
	addrOf := make(map[int]string, len(v.Servers))
	for i, s := range v.Servers {
		addrOf[i] = s.Addr
		if s.Available() {
			upIdx = append(upIdx, i)
			load = append(load, int(s.Sessions))
			byAddr[s.Addr] = true
		}
	}
	if len(upIdx) < n {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var out []Decision
	for _, c := range v.Clients {
		healthy := len(c.WriteSet) == n
		for _, addr := range c.WriteSet {
			if !byAddr[addr] {
				healthy = false
			}
		}
		if healthy {
			continue
		}
		chosen := p.Strategy.Choose(rng, int(c.ID), n, upIdx, load)
		target := make([]string, 0, n)
		for _, idx := range chosen {
			target = append(target, addrOf[idx])
		}
		if !sameSet(target, c.WriteSet) {
			out = append(out, Decision{ClientID: c.ID, Target: target})
		}
	}
	return out
}

// sameSet reports whether two write sets contain the same addresses
// (order-insensitive: member order does not matter to the protocol).
func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Controller is the live rebalancer: on each Step it snapshots a View,
// asks the Policy for decisions, and executes them through Move (the
// cluster façade's hook into core's Migrate). It holds no state of its
// own — every Step decides from a fresh view, so a failed migration is
// simply retried on the next tick if the policy still wants it.
type Controller struct {
	// N is the write-set size decisions must produce.
	N int
	// Policy decides; nil means RendezvousPolicy.
	Policy Policy
	// Snapshot produces the current View.
	Snapshot func() (View, error)
	// Move executes one migration decision.
	Move func(Decision) error
}

// Step runs one control round: snapshot, decide, execute. It returns
// how many migrations were executed; the first execution error aborts
// the remaining decisions (the next Step re-decides from fresh state).
func (c *Controller) Step() (int, error) {
	if c.Snapshot == nil || c.Move == nil {
		return 0, fmt.Errorf("loadassign: controller needs Snapshot and Move")
	}
	pol := c.Policy
	if pol == nil {
		pol = RendezvousPolicy{}
	}
	view, err := c.Snapshot()
	if err != nil {
		return 0, err
	}
	moved := 0
	for _, d := range pol.Decide(view, c.N) {
		if err := c.Move(d); err != nil {
			return moved, fmt.Errorf("loadassign: migrating client %d: %w", d.ClientID, err)
		}
		moved++
	}
	return moved, nil
}
