package loadassign

import (
	"sort"
	"testing"
)

// view builds a 4-server View with one client whose write set is ws.
func headroomView(ws []string, reclaim map[string]int64, down ...string) View {
	dead := make(map[string]bool)
	for _, d := range down {
		dead[d] = true
	}
	var v View
	for _, addr := range []string{"a", "b", "c", "d"} {
		v.Servers = append(v.Servers, ServerLoad{
			Addr:               addr,
			Up:                 !dead[addr],
			ArchiveReclaimable: reclaim[addr],
		})
	}
	v.Clients = append(v.Clients, ClientLoad{ID: 1, WriteSet: ws})
	return v
}

// TestHeadroomPolicyMovesOnlyUnhealthyClients: like the rendezvous
// policy, a client whose write set is fully available stays put — the
// headroom signal changes *where* a displaced client lands, never
// *whether* a healthy one moves.
func TestHeadroomPolicyMovesOnlyUnhealthyClients(t *testing.T) {
	v := headroomView([]string{"a", "b"}, map[string]int64{"c": 1 << 30, "d": 1 << 30})
	if got := (HeadroomPolicy{}).Decide(v, 2); len(got) != 0 {
		t.Fatalf("healthy client moved toward headroom: %v", got)
	}
}

// TestHeadroomPolicyPrefersReclaimableServers: a displaced client lands
// on the available servers with the most reclaimable archive bytes.
func TestHeadroomPolicyPrefersReclaimableServers(t *testing.T) {
	// "a" is down, so the client (write set {a,b}) must move. "c" and
	// "d" report headroom; "b" reports none — the new set is {c,d} even
	// though keeping "b" would be the rendezvous choice.
	v := headroomView([]string{"a", "b"}, map[string]int64{"c": 4096, "d": 8192}, "a")
	got := (HeadroomPolicy{}).Decide(v, 2)
	if len(got) != 1 {
		t.Fatalf("want one decision, got %v", got)
	}
	target := append([]string(nil), got[0].Target...)
	sort.Strings(target)
	if target[0] != "c" || target[1] != "d" {
		t.Fatalf("displaced client landed on %v, want the headroom servers {c, d}", got[0].Target)
	}
}

// TestHeadroomPolicyDegradesToRendezvous: with no headroom reported
// anywhere (and equal sessions), placement falls back to the same
// rendezvous ranking clients use at initialization — deterministic,
// and identical to RendezvousPolicy's choice.
func TestHeadroomPolicyDegradesToRendezvous(t *testing.T) {
	v := headroomView([]string{"a", "b"}, nil, "a")
	want := (RendezvousPolicy{}).Decide(v, 2)
	got := (HeadroomPolicy{}).Decide(v, 2)
	if len(want) != 1 || len(got) != 1 {
		t.Fatalf("decisions: rendezvous %v, headroom %v", want, got)
	}
	ws, gs := append([]string(nil), want[0].Target...), append([]string(nil), got[0].Target...)
	sort.Strings(ws)
	sort.Strings(gs)
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("no-headroom placement %v diverged from rendezvous %v", gs, ws)
		}
	}
}

// TestHeadroomPolicyNeedsEnoughServers: fewer than n available servers
// means no decision, like every policy.
func TestHeadroomPolicyNeedsEnoughServers(t *testing.T) {
	v := headroomView([]string{"a", "b"}, map[string]int64{"c": 1}, "a", "b", "d")
	if got := (HeadroomPolicy{}).Decide(v, 2); len(got) != 0 {
		t.Fatalf("decision with only one available server: %v", got)
	}
}
