// Package loadassign performs the Section 5.4 experiment the paper
// proposes: "Presumably, simple decentralized strategies for assigning
// loads fairly can be used. The development of these strategies is
// likely to be a problem that is very amenable to analytic modeling
// and simple experimentation."
//
// The package simulates a population of clients assigning their N
// write servers among M log servers under server failures, comparing
// decentralized strategies by the measures the paper cares about:
// fairness of the offered load, how often clients switch servers (each
// switch starts a new interval, and "clients might change servers too
// frequently resulting in very long interval lists"), and how often a
// client finds no servers to write to.
package loadassign

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Strategy decides which servers a client writes to.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Choose returns n distinct server indexes from the up set (its
	// length is always >= n). load[i] is the number of clients
	// currently assigned to up[i] — available only to strategies that
	// model coordinated knowledge; decentralized strategies ignore it.
	Choose(rng *rand.Rand, clientID, n int, up []int, load []int) []int
}

// StaticOffset is the decentralized static strategy the replicated log
// client implements. It originally started at clientID mod |up| and
// took the next n servers — which re-mapped every client's write set
// whenever membership changed, because every offset is computed against
// |up|. It now ranks servers by rendezvous (highest-random-weight)
// hashing over (client, server) pairs: each client's ranking of any
// server is independent of which other servers are up, so a membership
// change moves only the clients whose own servers changed.
type StaticOffset struct{}

// Name implements Strategy.
func (StaticOffset) Name() string { return "static-offset" }

// Choose implements Strategy.
func (StaticOffset) Choose(_ *rand.Rand, clientID, n int, up []int, _ []int) []int {
	keys := make([]uint64, len(up))
	for i, srv := range up {
		keys[i] = uint64(srv)
	}
	out := make([]int, 0, n)
	for _, i := range RankKeys(uint64(clientID), n, keys) {
		out = append(out, up[i])
	}
	return out
}

// hrwScore mixes a client identity with one server key into a
// deterministic 64-bit rank (a splitmix64-style finalizer over the
// pair). Both the offline simulation and the live client rank servers
// with this one function, so their assignments agree.
func hrwScore(clientID, serverKey uint64) uint64 {
	x := (clientID+1)*0x9E3779B97F4A7C15 + serverKey*0xD1B54A32D192ED03
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// HashAddr folds a server address into a rendezvous key (FNV-1a), the
// live-client counterpart of the simulation's integer server IDs.
func HashAddr(addr string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= prime64
	}
	return h
}

// RankKeys returns the indexes of the n highest-scoring server keys
// for the client — rendezvous hashing. Scores depend only on the
// (client, server) pair, never on the candidate set, which is the
// stability property: removing or adding one server changes at most
// one member of any client's top n. Ties (only possible with
// colliding keys) break toward the lower index for determinism.
func RankKeys(clientID uint64, n int, keys []uint64) []int {
	if n > len(keys) {
		n = len(keys)
	}
	idx := make([]int, len(keys))
	scores := make([]uint64, len(keys))
	for i, k := range keys {
		idx[i] = i
		scores[i] = hrwScore(clientID, k)
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:n]
}

// Pick returns the n servers the client should write to, chosen from
// the candidate addresses by rendezvous hashing — the live-cluster
// entry point the core client and the rebalancer share with the
// simulation's StaticOffset strategy.
func Pick(clientID uint64, n int, servers []string) []string {
	keys := make([]uint64, len(servers))
	for i, s := range servers {
		keys[i] = HashAddr(s)
	}
	out := make([]string, 0, n)
	for _, i := range RankKeys(clientID, n, keys) {
		out = append(out, servers[i])
	}
	return out
}

// RandomChoice picks n distinct servers uniformly at random —
// decentralized and stateless, but re-randomizing after every failure
// causes more switching.
type RandomChoice struct{}

// Name implements Strategy.
func (RandomChoice) Name() string { return "random" }

// Choose implements Strategy.
func (RandomChoice) Choose(rng *rand.Rand, _, n int, up []int, _ []int) []int {
	perm := rng.Perm(len(up))
	out := make([]int, 0, n)
	for _, p := range perm[:n] {
		out = append(out, up[p])
	}
	return out
}

// LeastLoaded is the idealized coordinated strategy: always pick the n
// least-loaded live servers. It bounds what decentralized strategies
// could hope to achieve.
type LeastLoaded struct{}

// Name implements Strategy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Choose implements Strategy.
func (LeastLoaded) Choose(_ *rand.Rand, _, n int, up []int, load []int) []int {
	idx := make([]int, len(up))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return load[idx[a]] < load[idx[b]] })
	out := make([]int, 0, n)
	for _, i := range idx[:n] {
		out = append(out, up[i])
	}
	return out
}

// Params configures a simulation run.
type Params struct {
	Clients int
	Servers int // M
	Copies  int // N
	Rounds  int
	// FailProb is the per-round probability that an up server fails;
	// RepairProb that a down server returns.
	FailProb   float64
	RepairProb float64
	Seed       int64
}

// DefaultParams mirrors the paper's target environment.
func DefaultParams() Params {
	return Params{
		Clients:    50,
		Servers:    6,
		Copies:     2,
		Rounds:     1000,
		FailProb:   0.01,
		RepairProb: 0.2,
		Seed:       1,
	}
}

// Result reports a strategy's behaviour over the run.
type Result struct {
	Strategy string
	// Imbalance is the mean over rounds of (max server load / ideal
	// load); 1.0 is perfect fairness.
	Imbalance float64
	// SwitchesPerClient counts server switches (new intervals) per
	// client over the whole run.
	SwitchesPerClient float64
	// UnavailableRounds counts client-rounds in which fewer than N
	// servers were up.
	UnavailableRounds int
}

// Run simulates one strategy.
func Run(p Params, s Strategy) Result {
	rng := rand.New(rand.NewSource(p.Seed))
	up := make([]bool, p.Servers)
	for i := range up {
		up[i] = true
	}
	assign := make([][]int, p.Clients) // client -> server indexes
	switches := 0
	unavailable := 0
	imbalanceSum := 0.0
	rounds := 0

	for round := 0; round < p.Rounds; round++ {
		// Server failures and repairs.
		for i := range up {
			if up[i] && rng.Float64() < p.FailProb {
				up[i] = false
			} else if !up[i] && rng.Float64() < p.RepairProb {
				up[i] = true
			}
		}
		var upList []int
		for i, u := range up {
			if u {
				upList = append(upList, i)
			}
		}
		load := make([]int, p.Servers)
		if len(upList) < p.Copies {
			unavailable += p.Clients
			continue
		}
		// Each client keeps its assignment while all its servers are
		// up; otherwise it re-chooses (counting a switch per replaced
		// server).
		upLoad := make([]int, len(upList))
		for c := 0; c < p.Clients; c++ {
			ok := len(assign[c]) == p.Copies
			for _, srv := range assign[c] {
				if !up[srv] {
					ok = false
				}
			}
			if !ok {
				chosen := s.Choose(rng, c, p.Copies, upList, upLoad)
				switches += diffCount(assign[c], chosen)
				assign[c] = chosen
			}
			for _, srv := range assign[c] {
				load[srv]++
				for j, u := range upList {
					if u == srv {
						upLoad[j]++
					}
				}
			}
		}
		// Fairness this round.
		ideal := float64(p.Clients*p.Copies) / float64(len(upList))
		maxLoad := 0
		for _, srv := range upList {
			if load[srv] > maxLoad {
				maxLoad = load[srv]
			}
		}
		if ideal > 0 {
			imbalanceSum += float64(maxLoad) / ideal
			rounds++
		}
	}
	res := Result{
		Strategy:          s.Name(),
		SwitchesPerClient: float64(switches) / float64(p.Clients),
		UnavailableRounds: unavailable,
	}
	if rounds > 0 {
		res.Imbalance = imbalanceSum / float64(rounds)
	}
	return res
}

func diffCount(old, new []int) int {
	if len(old) == 0 {
		return len(new) // initial assignment: every server is a new interval
	}
	n := 0
	for _, x := range new {
		found := false
		for _, y := range old {
			if x == y {
				found = true
			}
		}
		if !found {
			n++
		}
	}
	return n
}

// Compare runs every strategy under the same parameters.
func Compare(p Params) []Result {
	return []Result{
		Run(p, StaticOffset{}),
		Run(p, RandomChoice{}),
		Run(p, LeastLoaded{}),
	}
}

// String renders the result as a report row.
func (r Result) String() string {
	return fmt.Sprintf("%-14s imbalance %.3f, switches/client %.1f, unavailable client-rounds %d",
		r.Strategy, r.Imbalance, r.SwitchesPerClient, r.UnavailableRounds)
}

// Fairness returns 1/imbalance clamped to [0,1], a convenience for
// comparisons.
func (r Result) Fairness() float64 {
	if r.Imbalance <= 0 {
		return 0
	}
	return math.Min(1, 1/r.Imbalance)
}
