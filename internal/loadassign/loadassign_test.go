package loadassign

import (
	"math/rand"
	"testing"
)

func TestStrategiesChooseDistinctLiveServers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	up := []int{0, 2, 3, 5}
	load := []int{3, 1, 2, 0}
	for _, s := range []Strategy{StaticOffset{}, RandomChoice{}, LeastLoaded{}} {
		for c := 0; c < 20; c++ {
			chosen := s.Choose(rng, c, 2, up, load)
			if len(chosen) != 2 {
				t.Fatalf("%s chose %d servers", s.Name(), len(chosen))
			}
			if chosen[0] == chosen[1] {
				t.Fatalf("%s chose duplicate servers: %v", s.Name(), chosen)
			}
			for _, srv := range chosen {
				live := false
				for _, u := range up {
					if srv == u {
						live = true
					}
				}
				if !live {
					t.Fatalf("%s chose dead server %d", s.Name(), srv)
				}
			}
		}
	}
}

func TestStaticOffsetSpreadsClients(t *testing.T) {
	// Rendezvous ranking spreads a client population across all the
	// servers: with many clients every server carries some load, and no
	// server carries a grossly outsized share.
	up := []int{0, 1, 2, 3, 4, 5}
	const clients = 300
	counts := make([]int, 6)
	for c := 0; c < clients; c++ {
		for _, srv := range (StaticOffset{}).Choose(nil, c, 2, up, nil) {
			counts[srv]++
		}
	}
	ideal := float64(clients*2) / 6
	for srv, n := range counts {
		if n == 0 {
			t.Fatalf("server %d got no clients (counts %v)", srv, counts)
		}
		if float64(n) > ideal*1.5 {
			t.Fatalf("server %d load %d > 1.5x ideal %.1f (counts %v)", srv, n, ideal, counts)
		}
	}
}

// TestStaticOffsetMembershipChangeChurn is the regression test for the
// churn bug: the old clientID%len(up) offset re-mapped every client's
// write set whenever any server failed or joined (the offset is
// computed against |up|), causing fleet-wide switches and long
// interval lists. Rendezvous ranking must move only the clients of the
// changed server: removing one server may not disturb any client whose
// write set did not contain it, and the surviving member of an
// affected client's set must be retained.
func TestStaticOffsetMembershipChangeChurn(t *testing.T) {
	const clients = 200
	all := []int{0, 1, 2, 3, 4, 5}
	s := StaticOffset{}

	before := make([][]int, clients)
	for c := 0; c < clients; c++ {
		before[c] = s.Choose(nil, c, 2, all, nil)
	}

	for _, failed := range all {
		var up []int
		for _, srv := range all {
			if srv != failed {
				up = append(up, srv)
			}
		}
		collateral := 0
		for c := 0; c < clients; c++ {
			after := s.Choose(nil, c, 2, up, nil)
			affected := contains(before[c], failed)
			switch {
			case !affected:
				// Unaffected client: its assignment must be untouched.
				if diffCount(before[c], after) != 0 {
					collateral++
				}
			default:
				// Affected client: exactly the failed member is replaced.
				if diffCount(before[c], after) != 1 {
					t.Errorf("client %d lost server %d but switched %d members (%v -> %v)",
						c, failed, diffCount(before[c], after), before[c], after)
				}
				for _, srv := range before[c] {
					if srv != failed && !contains(after, srv) {
						t.Errorf("client %d dropped surviving server %d (%v -> %v)",
							c, srv, before[c], after)
					}
				}
			}
		}
		if collateral != 0 {
			t.Errorf("removing server %d switched %d unaffected clients (want 0)", failed, collateral)
		}
	}
}

func contains(set []int, srv int) bool {
	for _, s := range set {
		if s == srv {
			return true
		}
	}
	return false
}

func TestLeastLoadedPicksLightestServers(t *testing.T) {
	up := []int{0, 1, 2}
	load := []int{9, 0, 4}
	chosen := (LeastLoaded{}).Choose(nil, 0, 2, up, load)
	if chosen[0] != 1 || chosen[1] != 2 {
		t.Fatalf("chose %v, want [1 2]", chosen)
	}
}

func TestRunNoFailuresPerfectStability(t *testing.T) {
	p := DefaultParams()
	p.FailProb = 0
	p.Rounds = 100
	for _, s := range []Strategy{StaticOffset{}, RandomChoice{}, LeastLoaded{}} {
		r := Run(p, s)
		// Only the initial assignment counts as switches.
		if r.SwitchesPerClient != float64(p.Copies) {
			t.Errorf("%s: switches/client = %.1f, want %d (initial only)", s.Name(), r.SwitchesPerClient, p.Copies)
		}
		if r.UnavailableRounds != 0 {
			t.Errorf("%s: unavailable rounds %d with no failures", s.Name(), r.UnavailableRounds)
		}
	}
}

func TestStaticOffsetFairWithoutFailures(t *testing.T) {
	p := DefaultParams()
	p.FailProb = 0
	p.Rounds = 10
	r := Run(p, StaticOffset{})
	// 50 clients x 2 copies over 6 servers: ideal 16.67 per server; the
	// offset spread puts at most ceil(100/6)+1 on any server.
	if r.Imbalance > 1.15 {
		t.Fatalf("static offset imbalance %.3f without failures", r.Imbalance)
	}
}

// TestSection54Claims checks the qualitative conclusions the paper
// anticipates: simple decentralized strategies achieve fairness close
// to the coordinated ideal, and strategies that re-randomize switch
// servers more (longer interval lists).
func TestSection54Claims(t *testing.T) {
	p := DefaultParams()
	results := Compare(p)
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Strategy] = r
	}
	static := byName["static-offset"]
	random := byName["random"]
	ideal := byName["least-loaded"]

	// Fairness: decentralized static-offset within 25% of the
	// coordinated ideal.
	if static.Imbalance > ideal.Imbalance*1.25+0.25 {
		t.Errorf("static-offset imbalance %.3f far from ideal %.3f", static.Imbalance, ideal.Imbalance)
	}
	// Switching: random re-choice switches at least as much as static
	// offset (it abandons both servers on any failure).
	if random.SwitchesPerClient < static.SwitchesPerClient {
		t.Errorf("random switches %.1f < static %.1f", random.SwitchesPerClient, static.SwitchesPerClient)
	}
	// Availability is strategy-independent (it depends only on how
	// many servers are up).
	if static.UnavailableRounds != random.UnavailableRounds || static.UnavailableRounds != ideal.UnavailableRounds {
		t.Errorf("unavailability differs across strategies: %d %d %d",
			static.UnavailableRounds, random.UnavailableRounds, ideal.UnavailableRounds)
	}
}

func TestRunDeterministic(t *testing.T) {
	p := DefaultParams()
	a := Run(p, StaticOffset{})
	b := Run(p, StaticOffset{})
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Strategy: "x", Imbalance: 2}
	if r.Fairness() != 0.5 {
		t.Fatalf("Fairness = %f", r.Fairness())
	}
	if (Result{}).Fairness() != 0 {
		t.Fatal("zero imbalance fairness")
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkLoadAssignmentComparison(b *testing.B) {
	p := DefaultParams()
	p.Rounds = 200
	for i := 0; i < b.N; i++ {
		Compare(p)
	}
}
