package locallog

import (
	"fmt"

	"distlog/internal/core"
	"distlog/internal/record"
)

// cursor implements core.Cursor over the local mirrored log. There is
// no network to pipeline, so it is a plain positional reader; it exists
// so the recovery manager's streaming scan runs identically over the
// local-disk baseline and the replicated log.
type cursor struct {
	l      *Log
	dir    core.Direction
	pos    record.LSN // next LSN to return; 0 = backward scan exhausted
	closed bool
}

// OpenCursor returns a scanning cursor positioned on from. The
// position must be within the log (1 through EndOfLog), as for
// ReadRecord.
func (l *Log) OpenCursor(from record.LSN, dir core.Direction) (core.Cursor, error) {
	if dir != core.Forward && dir != core.Backward {
		return nil, fmt.Errorf("locallog: invalid cursor direction %d", int8(dir))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if from == 0 || from >= l.nextLSN {
		return nil, fmt.Errorf("%w: %d", ErrBeyondEnd, from)
	}
	return &cursor{l: l, dir: dir, pos: from}, nil
}

func (c *cursor) Next() (record.Record, error) {
	if c.closed {
		return record.Record{}, ErrClosed
	}
	if c.pos == 0 {
		return record.Record{}, fmt.Errorf("%w: below LSN 1", ErrBeyondEnd)
	}
	rec, err := c.l.ReadRecord(c.pos)
	if err != nil {
		return record.Record{}, err
	}
	if c.dir == core.Forward {
		c.pos++
	} else {
		c.pos--
	}
	return rec, nil
}

func (c *cursor) Seek(lsn record.LSN) error {
	if c.closed {
		return ErrClosed
	}
	c.l.mu.Lock()
	defer c.l.mu.Unlock()
	if c.l.closed {
		return ErrClosed
	}
	if lsn == 0 || lsn >= c.l.nextLSN {
		return fmt.Errorf("%w: %d", ErrBeyondEnd, lsn)
	}
	c.pos = lsn
	return nil
}

func (c *cursor) Close() error {
	c.closed = true
	return nil
}
