// Package locallog implements the baseline the paper argues against:
// a recovery log written to duplexed disks attached to the processing
// node itself ("logs can be implemented with data written to duplexed
// disks on each processing node"). It exposes the same operations as
// the replicated log client so the recovery manager and the Section
// 5.6 benchmark can swap one for the other.
//
// Records are framed exactly like the server stream (CRC-checked) and
// appended to one file per mirror; a force fsyncs every mirror. On
// open, mirrors are scanned and the longest cleanly-decodable prefix
// wins — a torn tail on one mirror is healed from the other.
package locallog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"distlog/internal/record"
)

// Errors.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("locallog: closed")
	// ErrBeyondEnd is returned for reads past the end of the log.
	ErrBeyondEnd = errors.New("locallog: LSN beyond end of log")
	// ErrNotPresent mirrors the replicated log's not-present signal
	// (locally logged records are always present; this is returned only
	// for LSN 0).
	ErrNotPresent = errors.New("locallog: record not present")
)

// Log is a local write-ahead log on one or more mirrored files.
type Log struct {
	mu      sync.Mutex
	mirrors []*os.File
	index   []int64 // LSN n is at offset index[n-1] (same on all mirrors)
	tail    int64   // offset of the next append
	nextLSN record.LSN
	dirty   bool
	closed  bool
	scratch []byte
	stats   Stats
}

// Stats counts logger activity.
type Stats struct {
	Writes uint64
	Forces uint64
	Syncs  uint64 // file syncs issued (Forces × mirrors, when dirty)
}

// Open creates or opens a local log with the given number of mirror
// files in dir (1 = the single-disk configuration of the Section 5.6
// comparison, 2 = classic duplexed logging).
func Open(dir string, mirrorCount int) (*Log, error) {
	if mirrorCount < 1 {
		return nil, fmt.Errorf("locallog: mirror count %d", mirrorCount)
	}
	l := &Log{}
	for i := 0; i < mirrorCount; i++ {
		f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("mirror-%d.log", i)), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			l.Close()
			return nil, err
		}
		l.mirrors = append(l.mirrors, f)
	}
	if err := l.recover(); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// recover replays the mirrors and adopts the longest clean prefix.
func (l *Log) recover() error {
	bestLen := -1
	var bestData []byte
	for _, f := range l.mirrors {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			return err
		}
		n := cleanPrefix(data)
		if n > bestLen {
			bestLen = n
			bestData = data[:n]
		}
	}
	// Rebuild the index from the winning prefix and rewrite any mirror
	// that diverges (heal).
	l.index = l.index[:0]
	off := int64(0)
	for off < int64(len(bestData)) {
		rec, n, err := decodeFramed(bestData[off:])
		if err != nil {
			return err
		}
		l.index = append(l.index, off)
		l.nextLSN = rec.LSN
		off += int64(n)
	}
	l.nextLSN++
	if len(l.index) == 0 {
		l.nextLSN = 1
	}
	l.tail = off
	for _, f := range l.mirrors {
		if err := f.Truncate(int64(len(bestData))); err != nil {
			return err
		}
		if _, err := f.WriteAt(bestData, 0); err != nil {
			return err
		}
	}
	return nil
}

// Each record is framed as [record encoding][crc32 of the encoding],
// so a torn or corrupted tail is detected rather than mis-decoded.
const crcSize = 4

// appendFramed appends rec's framed encoding to buf.
func appendFramed(buf []byte, rec record.Record) []byte {
	start := len(buf)
	buf = rec.AppendEncode(buf)
	sum := crc32.ChecksumIEEE(buf[start:])
	return binary.BigEndian.AppendUint32(buf, sum)
}

// decodeFramed decodes one framed record from the front of buf.
func decodeFramed(buf []byte) (record.Record, int, error) {
	rec, n, err := record.DecodeRecord(buf)
	if err != nil {
		return record.Record{}, 0, err
	}
	if len(buf) < n+crcSize {
		return record.Record{}, 0, record.ErrTruncated
	}
	want := binary.BigEndian.Uint32(buf[n : n+crcSize])
	if crc32.ChecksumIEEE(buf[:n]) != want {
		return record.Record{}, 0, fmt.Errorf("locallog: record checksum mismatch")
	}
	return rec, n + crcSize, nil
}

// cleanPrefix returns the length of the longest prefix of data that
// decodes as whole, checksummed records.
func cleanPrefix(data []byte) int {
	off := 0
	for off < len(data) {
		_, n, err := decodeFramed(data[off:])
		if err != nil {
			break
		}
		off += n
	}
	return off
}

// WriteLog appends a record (buffered until the next Force) and
// returns its LSN.
func (l *Log) WriteLog(data []byte) (record.LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	lsn := l.nextLSN
	l.nextLSN++
	rec := record.Record{LSN: lsn, Epoch: 1, Present: true, Data: data}
	l.scratch = appendFramed(l.scratch[:0], rec)
	off := l.tail
	for _, f := range l.mirrors {
		if _, err := f.WriteAt(l.scratch, off); err != nil {
			return 0, err
		}
	}
	l.index = append(l.index, off)
	l.tail = off + int64(len(l.scratch))
	l.dirty = true
	l.stats.Writes++
	return lsn, nil
}

// Force makes all written records stable on every mirror.
func (l *Log) Force() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.stats.Forces++
	if !l.dirty {
		return nil
	}
	for _, f := range l.mirrors {
		if err := f.Sync(); err != nil {
			return err
		}
		l.stats.Syncs++
	}
	l.dirty = false
	return nil
}

// ForceLog appends and forces in one call.
func (l *Log) ForceLog(data []byte) (record.LSN, error) {
	lsn, err := l.WriteLog(data)
	if err != nil {
		return 0, err
	}
	return lsn, l.Force()
}

// readAt decodes the framed record at the given offset of mirror 0.
func (l *Log) readAt(off int64) (record.Record, int, error) {
	var header [21]byte // record header size
	if _, err := l.mirrors[0].ReadAt(header[:], off); err != nil {
		return record.Record{}, 0, err
	}
	// Decode length from the record header: LSN(8) Epoch(8) Flags(1) Len(4).
	n := int(uint32(header[17])<<24 | uint32(header[18])<<16 | uint32(header[19])<<8 | uint32(header[20]))
	buf := make([]byte, 21+n+crcSize)
	if _, err := l.mirrors[0].ReadAt(buf, off); err != nil {
		return record.Record{}, 0, err
	}
	return decodeFramed(buf)
}

// ReadRecord returns the record with the given LSN.
func (l *Log) ReadRecord(lsn record.LSN) (record.Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return record.Record{}, ErrClosed
	}
	if lsn == 0 {
		return record.Record{}, ErrNotPresent
	}
	if int(lsn) > len(l.index) {
		return record.Record{}, fmt.Errorf("%w: %d", ErrBeyondEnd, lsn)
	}
	rec, _, err := l.readAt(l.index[lsn-1])
	return rec, err
}

// ReadLog returns the data of the record with the given LSN.
func (l *Log) ReadLog(lsn record.LSN) ([]byte, error) {
	rec, err := l.ReadRecord(lsn)
	if err != nil {
		return nil, err
	}
	return rec.Data, nil
}

// EndOfLog returns the most recently written LSN.
func (l *Log) EndOfLog() record.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Stats returns a snapshot of counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close syncs and closes every mirror.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var errs []error
	for _, f := range l.mirrors {
		if f == nil {
			continue
		}
		if err := f.Sync(); err != nil {
			errs = append(errs, err)
		}
		if err := f.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
