package locallog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"distlog/internal/record"
)

func TestWriteForceReadRoundTrip(t *testing.T) {
	for _, mirrors := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("mirrors=%d", mirrors), func(t *testing.T) {
			l, err := Open(t.TempDir(), mirrors)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			var lsns []uint64
			for i := 0; i < 20; i++ {
				lsn, err := l.WriteLog([]byte(fmt.Sprintf("r-%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				lsns = append(lsns, uint64(lsn))
			}
			if err := l.Force(); err != nil {
				t.Fatal(err)
			}
			for i, lsn := range lsns {
				if lsn != uint64(i+1) {
					t.Fatalf("lsn[%d] = %d", i, lsn)
				}
				data, err := l.ReadLog(record.LSN(lsn))
				if err != nil || string(data) != fmt.Sprintf("r-%d", i) {
					t.Fatalf("ReadLog(%d) = %q, %v", lsn, data, err)
				}
			}
			if l.EndOfLog() != 20 {
				t.Fatalf("EndOfLog = %d", l.EndOfLog())
			}
			if _, err := l.ReadLog(21); !errors.Is(err, ErrBeyondEnd) {
				t.Fatalf("beyond end: %v", err)
			}
		})
	}
}

func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.WriteLog([]byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.EndOfLog() != 10 {
		t.Fatalf("EndOfLog after reopen = %d", l2.EndOfLog())
	}
	for i := 1; i <= 10; i++ {
		data, err := l2.ReadLog(record.LSN(i))
		if err != nil || string(data) != fmt.Sprintf("v-%d", i-1) {
			t.Fatalf("ReadLog(%d) = %q, %v", i, data, err)
		}
	}
	// Appends continue with the next LSN.
	lsn, err := l2.WriteLog([]byte("more"))
	if err != nil || lsn != 11 {
		t.Fatalf("append after reopen: %d, %v", lsn, err)
	}
}

func TestTornMirrorHealed(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.ForceLog([]byte("solid")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Crash mid-append on mirror 0: garbage tail.
	f, err := os.OpenFile(filepath.Join(dir, "mirror-0.log"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3})
	f.Close()

	l2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.EndOfLog() != 5 {
		t.Fatalf("EndOfLog = %d", l2.EndOfLog())
	}
	// Both mirrors identical again after healing.
	m0, _ := os.ReadFile(filepath.Join(dir, "mirror-0.log"))
	m1, _ := os.ReadFile(filepath.Join(dir, "mirror-1.log"))
	if string(m0) != string(m1) {
		t.Fatal("mirrors diverge after heal")
	}
}

func TestOneMirrorAheadWins(t *testing.T) {
	// A crash between the WriteAt calls can leave mirror 0 one record
	// ahead; the longer clean prefix must win (the record was not yet
	// acknowledged, but keeping it is the consistent choice since
	// mirror 0's copy is complete).
	dir := t.TempDir()
	l, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	l.ForceLog([]byte("both"))
	l.Close()
	// Manually append a whole extra record to mirror 0 only.
	l1, err := Open(dir, 1) // opens mirror-0 only
	if err != nil {
		t.Fatal(err)
	}
	l1.ForceLog([]byte("ahead"))
	l1.Close()

	l2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.EndOfLog() != 2 {
		t.Fatalf("EndOfLog = %d, want 2", l2.EndOfLog())
	}
	data, err := l2.ReadLog(2)
	if err != nil || string(data) != "ahead" {
		t.Fatalf("ReadLog(2) = %q, %v", data, err)
	}
}

func TestStatsAndForceIdempotent(t *testing.T) {
	l, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.WriteLog([]byte("x"))
	l.Force()
	l.Force() // clean: no extra syncs
	s := l.Stats()
	if s.Writes != 1 || s.Forces != 2 || s.Syncs != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestClosedErrors(t *testing.T) {
	l, err := Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.WriteLog(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteLog: %v", err)
	}
	if err := l.Force(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Force: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestBadMirrorCount(t *testing.T) {
	if _, err := Open(t.TempDir(), 0); err == nil {
		t.Fatal("mirror count 0 accepted")
	}
}
