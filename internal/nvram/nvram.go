// Package nvram models the low-latency non-volatile memory of Section
// 5.1: CMOS RAM with battery backup, interposed between the log
// server's CPU and its logging disk. Appends complete at memory speed
// (this is what makes a log force cheap), contents survive power
// failures, and full tracks of buffered log data are drained to disk
// in a single write.
//
// The package also implements the guarded-update discipline suggested
// by Needham et al. ("How to Connect Stable Memory to a Computer"):
// each region carries a version, and a writer must present the version
// it read, so a wild store by buggy software is rejected rather than
// silently corrupting stable memory.
package nvram

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by NVRAM operations.
var (
	ErrFull       = errors.New("nvram: buffer full")
	ErrStaleGuard = errors.New("nvram: guarded write presented a stale version")
	ErrPoweredOff = errors.New("nvram: device is powered off")
)

// NVRAM is a battery-backed memory region. It is divided into a log
// staging buffer (append/drain) and a set of fixed guarded cells used
// for small critical state (active interval tails, the epoch
// representative's value). The object survives a simulated server
// crash: the owning test or harness keeps the *NVRAM and hands it to
// the restarted server, modelling the battery.
type NVRAM struct {
	mu sync.Mutex

	buf       []byte
	size      int
	poweredOn bool

	cells map[string]*cell
}

type cell struct {
	version uint64
	value   []byte
}

// New returns an NVRAM with a staging buffer of size bytes.
func New(size int) *NVRAM {
	if size < 0 {
		size = 0
	}
	return &NVRAM{
		size:      size,
		buf:       make([]byte, 0, size),
		poweredOn: true,
		cells:     make(map[string]*cell),
	}
}

// Size returns the staging buffer capacity in bytes.
func (n *NVRAM) Size() int { return n.size }

// Len returns the number of staged bytes.
func (n *NVRAM) Len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.buf)
}

// Free returns the remaining staging capacity.
func (n *NVRAM) Free() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.size - len(n.buf)
}

// Append stages p. It fails with ErrFull when p does not fit; the
// caller is expected to drain a track to disk and retry.
func (n *NVRAM) Append(p []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.poweredOn {
		return ErrPoweredOff
	}
	if len(n.buf)+len(p) > n.size {
		return fmt.Errorf("%w: %d staged + %d > %d", ErrFull, len(n.buf), len(p), n.size)
	}
	n.buf = append(n.buf, p...)
	return nil
}

// Staged returns a copy of the currently staged bytes.
func (n *NVRAM) Staged() []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]byte, len(n.buf))
	copy(out, n.buf)
	return out
}

// Drain removes and returns up to max staged bytes from the front of
// the buffer (a track's worth, typically), after the caller has
// written them durably to disk.
func (n *NVRAM) Drain(max int) []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	if max < 0 || max > len(n.buf) {
		max = len(n.buf)
	}
	out := make([]byte, max)
	copy(out, n.buf[:max])
	remain := copy(n.buf, n.buf[max:])
	n.buf = n.buf[:remain]
	return out
}

// Crash simulates loss of power to the host while the battery keeps
// the memory alive: staged bytes and cells are retained. The device is
// marked off until Restart, mirroring the host being down.
func (n *NVRAM) Crash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.poweredOn = false
}

// Restart powers the device back on after a Crash.
func (n *NVRAM) Restart() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.poweredOn = true
}

// ReadCell returns the value and version of a guarded cell. A cell
// that was never written has version 0 and a nil value.
func (n *NVRAM) ReadCell(name string) (value []byte, version uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.poweredOn {
		return nil, 0, ErrPoweredOff
	}
	c := n.cells[name]
	if c == nil {
		return nil, 0, nil
	}
	out := make([]byte, len(c.value))
	copy(out, c.value)
	return out, c.version, nil
}

// WriteCell performs a guarded update of a cell: the write succeeds
// only when prevVersion matches the cell's current version, in which
// case the version advances by one. This implements the hardware check
// Needham et al. propose — each new value must have been computed from
// the previous value.
func (n *NVRAM) WriteCell(name string, prevVersion uint64, value []byte) (newVersion uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.poweredOn {
		return 0, ErrPoweredOff
	}
	c := n.cells[name]
	if c == nil {
		c = &cell{}
		n.cells[name] = c
	}
	if c.version != prevVersion {
		return 0, fmt.Errorf("%w: cell %q at version %d, caller read %d", ErrStaleGuard, name, c.version, prevVersion)
	}
	c.value = make([]byte, len(value))
	copy(c.value, value)
	c.version++
	return c.version, nil
}

// Cells returns the names of all written cells, for recovery scans.
func (n *NVRAM) Cells() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	names := make([]string, 0, len(n.cells))
	for name := range n.cells {
		names = append(names, name)
	}
	return names
}
