package nvram

import (
	"bytes"
	"errors"
	"testing"
)

func TestAppendDrain(t *testing.T) {
	n := New(10)
	if err := n.Append([]byte("abcde")); err != nil {
		t.Fatal(err)
	}
	if err := n.Append([]byte("fgh")); err != nil {
		t.Fatal(err)
	}
	if n.Len() != 8 || n.Free() != 2 {
		t.Fatalf("Len=%d Free=%d", n.Len(), n.Free())
	}
	got := n.Drain(5)
	if string(got) != "abcde" {
		t.Fatalf("Drain = %q", got)
	}
	if n.Len() != 3 {
		t.Fatalf("Len after drain = %d", n.Len())
	}
	got = n.Drain(-1) // drain all
	if string(got) != "fgh" {
		t.Fatalf("Drain all = %q", got)
	}
	if n.Len() != 0 {
		t.Fatal("buffer not empty")
	}
}

func TestAppendFull(t *testing.T) {
	n := New(4)
	if err := n.Append([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := n.Append([]byte("e")); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull append: %v", err)
	}
	// Original content intact.
	if string(n.Staged()) != "abcd" {
		t.Fatal("failed append disturbed staged data")
	}
}

func TestCrashRetainsEverything(t *testing.T) {
	n := New(100)
	if err := n.Append([]byte("staged-tail")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.WriteCell("epoch", 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	n.Crash()
	// While powered off, operations fail.
	if err := n.Append([]byte("x")); !errors.Is(err, ErrPoweredOff) {
		t.Fatalf("append while off: %v", err)
	}
	if _, _, err := n.ReadCell("epoch"); !errors.Is(err, ErrPoweredOff) {
		t.Fatalf("read while off: %v", err)
	}
	n.Restart()
	if string(n.Staged()) != "staged-tail" {
		t.Fatal("staged data lost across crash")
	}
	v, ver, err := n.ReadCell("epoch")
	if err != nil || ver != 1 || !bytes.Equal(v, []byte{9}) {
		t.Fatalf("cell after crash: %v %d %v", v, ver, err)
	}
}

func TestGuardedCellDiscipline(t *testing.T) {
	n := New(0)
	// Never-written cell reads as version 0.
	v, ver, err := n.ReadCell("x")
	if err != nil || v != nil || ver != 0 {
		t.Fatalf("fresh cell: %v %d %v", v, ver, err)
	}
	ver1, err := n.WriteCell("x", 0, []byte("a"))
	if err != nil || ver1 != 1 {
		t.Fatalf("first write: %d %v", ver1, err)
	}
	// A write presenting a stale version is rejected (the Needham
	// check): it was not computed from the current value.
	if _, err := n.WriteCell("x", 0, []byte("rogue")); !errors.Is(err, ErrStaleGuard) {
		t.Fatalf("stale write: %v", err)
	}
	v, ver, _ = n.ReadCell("x")
	if string(v) != "a" || ver != 1 {
		t.Fatalf("cell disturbed by rejected write: %q %d", v, ver)
	}
	ver2, err := n.WriteCell("x", ver, []byte("b"))
	if err != nil || ver2 != 2 {
		t.Fatalf("second write: %d %v", ver2, err)
	}
}

func TestCellIsolation(t *testing.T) {
	n := New(0)
	n.WriteCell("a", 0, []byte{1})
	n.WriteCell("b", 0, []byte{2})
	va, _, _ := n.ReadCell("a")
	vb, _, _ := n.ReadCell("b")
	if va[0] != 1 || vb[0] != 2 {
		t.Fatal("cells interfere")
	}
	names := n.Cells()
	if len(names) != 2 {
		t.Fatalf("Cells = %v", names)
	}
}

func TestReadCellCopies(t *testing.T) {
	n := New(0)
	n.WriteCell("x", 0, []byte{1, 2})
	v, ver, _ := n.ReadCell("x")
	v[0] = 99
	again, _, _ := n.ReadCell("x")
	if again[0] != 1 {
		t.Fatal("ReadCell aliases stored value")
	}
	// Writer's buffer also must not alias.
	buf := []byte{7}
	n.WriteCell("x", ver, buf)
	buf[0] = 8
	v, _, _ = n.ReadCell("x")
	if v[0] != 7 {
		t.Fatal("WriteCell aliases caller's buffer")
	}
}

func TestDrainMoreThanStaged(t *testing.T) {
	n := New(10)
	n.Append([]byte("ab"))
	got := n.Drain(100)
	if string(got) != "ab" {
		t.Fatalf("Drain = %q", got)
	}
	if len(n.Drain(5)) != 0 {
		t.Fatal("drain of empty buffer returned data")
	}
}

func TestZeroSize(t *testing.T) {
	n := New(0)
	if err := n.Append([]byte("x")); !errors.Is(err, ErrFull) {
		t.Fatalf("append to zero-size: %v", err)
	}
	n = New(-5)
	if n.Size() != 0 {
		t.Fatal("negative size not clamped")
	}
}

func BenchmarkAppendDrainTrack(b *testing.B) {
	const track = 15 * 1024
	n := New(4 * track)
	rec := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Append(rec); err != nil {
			n.Drain(track)
			if err := n.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}
