package recman

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"distlog/internal/core"
	"distlog/internal/record"
	"distlog/internal/splitlog"
)

// ErrTxnDone is returned when a finished transaction is used again.
var ErrTxnDone = errors.New("recman: transaction already committed or aborted")

// Options configures an Engine.
type Options struct {
	// Split enables the Section 5.2 log record splitting/caching
	// optimization: redo components streamed, undo components cached.
	Split bool
	// LockTimeout bounds lock waits (crude deadlock resolution).
	// Default 2s.
	LockTimeout time.Duration
	// CheckpointEvery takes a sharp checkpoint after that many commits
	// (0 = only on demand).
	CheckpointEvery int
	// TruncateOnCheckpoint additionally discards the log prefix made
	// unnecessary by each checkpoint, when the log supports truncation
	// (Section 5.3: "client recovery managers can use checkpoints ...
	// to limit the online log storage required for node recovery").
	TruncateOnCheckpoint bool
	// FullReplay makes recovery ignore checkpoint records and replay
	// the whole surviving log. It is the media-recovery mode of Section
	// 5.3: after restoring the stable store from a periodic dump, the
	// entire online log is replayed over it (redo records carry
	// absolute values, so replaying history already reflected in the
	// dump is harmless).
	FullReplay bool
}

// prefixTruncator is the optional log capability TruncateOnCheckpoint
// uses; *core.ReplicatedLog implements it.
type prefixTruncator interface {
	TruncatePrefix(before record.LSN) error
}

// checkpointWriter is the richer checkpoint capability the engine
// prefers over prefixTruncator; *core.ReplicatedLog implements it. One
// call writes and forces the checkpoint record and advances the
// truncation point, reporting it to the log servers with asynchronous
// truncation-report messages instead of a synchronous truncate RPC per
// server — a checkpoint never stalls on an unreachable server.
type checkpointWriter interface {
	Checkpoint(data []byte) (record.LSN, error)
}

// forceCoalescer is the optional log capability behind
// ForceRoundStats; *core.ReplicatedLog implements it. Concurrent
// committers share force rounds (group commit), so rounds < forces
// when commits overlap.
type forceCoalescer interface {
	ForceRoundStats() (forces, rounds, groupCommits uint64)
}

// Stats counts engine activity.
type Stats struct {
	Begins           uint64
	Commits          uint64
	Aborts           uint64
	Updates          uint64
	LogRecords       uint64
	LogBytes         uint64
	AbortLogReads    uint64 // undo values fetched from the log (combined mode)
	AbortsFromCache  uint64 // aborts served by the split cache
	Flushes          uint64
	Checkpoints      uint64
	RecoveredWinners int
	RecoveredLosers  int
}

// Engine is a WAL transaction engine over a recovery log and a stable
// store.
type Engine struct {
	log    Log
	stable *StableStore
	opts   Options

	mu       sync.Mutex
	quiesce  *sync.Cond
	cache    map[string]int64
	dirty    map[string]bool
	nextTxn  uint64
	active   int
	sinceCkp int
	stats    Stats

	locks *lockTable
	split *splitlog.Cache

	// streams is non-nil iff the log is a K > 1 multi-stream log (see
	// streams.go): transactions are then spread across the K streams and
	// recovery runs the dependency-ordered merged replay.
	streams []*core.Stream
}

// Open recovers the database state from the log and stable store and
// returns a ready engine.
func Open(log Log, stable *StableStore, opts Options) (*Engine, error) {
	if opts.LockTimeout == 0 {
		opts.LockTimeout = 2 * time.Second
	}
	e := &Engine{
		log:    log,
		stable: stable,
		opts:   opts,
		dirty:  make(map[string]bool),
		locks:  newLockTable(opts.LockTimeout),
	}
	e.quiesce = sync.NewCond(&e.mu)
	if opts.Split {
		e.split = splitlog.New(log)
	}
	e.initStreams()
	if err := e.recover(); err != nil {
		return nil, err
	}
	e.cache = stable.Snapshot()
	return e, nil
}

// Get returns a committed value outside any transaction (dirty reads
// of in-flight values are possible; use a transaction for isolation).
func (e *Engine) Get(key string) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache[key]
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ForceRoundStats reports how the underlying log coalesced the
// engine's commit forces: total Force calls, protocol rounds actually
// executed, and calls satisfied by riding another committer's round.
// ok is false when the log does not coalesce (e.g. a local test log).
func (e *Engine) ForceRoundStats() (forces, rounds, groupCommits uint64, ok bool) {
	fc, ok := e.log.(forceCoalescer)
	if !ok {
		return 0, 0, 0, false
	}
	forces, rounds, groupCommits = fc.ForceRoundStats()
	return forces, rounds, groupCommits, true
}

// SplitStats returns the split cache statistics (zero value when
// splitting is disabled).
func (e *Engine) SplitStats() splitlog.Stats {
	if e.split == nil {
		return splitlog.Stats{}
	}
	return e.split.Stats()
}

// appendLog writes one engine record to the recovery log.
func (e *Engine) appendLog(r *logRec) (record.LSN, error) {
	return e.appendVia(e.log.WriteLog, r)
}

// appendVia writes one engine record through the given append function
// (the plain log, one stream, or a stream's commit-class append).
func (e *Engine) appendVia(write func(data []byte) (record.LSN, error), r *logRec) (record.LSN, error) {
	data := r.encode()
	lsn, err := write(data)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	e.stats.LogRecords++
	e.stats.LogBytes += uint64(len(data))
	e.mu.Unlock()
	return lsn, nil
}

// Txn is one transaction.
type Txn struct {
	e      *Engine
	id     uint64
	stream int // the log stream all of this transaction's records go to
	undo   []undoEntry
	lsns   []record.LSN // combined mode: update record LSNs for abort
	done   bool
}

type undoEntry struct {
	key    string
	oldVal int64
}

// Begin starts a transaction.
func (e *Engine) Begin() *Txn {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextTxn++
	e.active++
	e.stats.Begins++
	return &Txn{e: e, id: e.nextTxn, stream: e.txnStream(e.nextTxn)}
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// Get reads a value under an exclusive lock (strict 2PL).
func (t *Txn) Get(key string) (int64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	if err := t.e.locks.acquire(t.id, key); err != nil {
		return 0, err
	}
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	return t.e.cache[key], nil
}

// Set writes a value, logging it write-ahead.
func (t *Txn) Set(key string, v int64) error { return t.update(key, v, nil) }

// SetNote writes a value with an application note carried in the log
// record (the examples use it for history lines; it also pads records
// to realistic ET1 sizes).
func (t *Txn) SetNote(key string, v int64, note []byte) error { return t.update(key, v, note) }

// Add adjusts a value by delta and returns the new value.
func (t *Txn) Add(key string, delta int64) (int64, error) {
	old, err := t.Get(key)
	if err != nil {
		return 0, err
	}
	return old + delta, t.update(key, old+delta, nil)
}

// AddNote is Add with a log note.
func (t *Txn) AddNote(key string, delta int64, note []byte) (int64, error) {
	old, err := t.Get(key)
	if err != nil {
		return 0, err
	}
	return old + delta, t.update(key, old+delta, note)
}

func (t *Txn) update(key string, newVal int64, note []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if err := t.e.locks.acquire(t.id, key); err != nil {
		return err
	}
	t.e.mu.Lock()
	oldVal := t.e.cache[key]
	t.e.mu.Unlock()

	if t.e.split != nil {
		// Split: stream the redo component now; cache the undo
		// component (logged later only if the page is cleaned first).
		redo := &logRec{op: opRedo, txn: t.id, key: key, newVal: newVal, note: note}
		lsn, err := t.e.appendTxnLog(t, redo)
		if err != nil {
			return err
		}
		t.lsns = append(t.lsns, lsn)
		undo := &logRec{op: opUndo, txn: t.id, key: key, oldVal: oldVal}
		t.e.split.Put(t.id, key, undo.encode())
	} else {
		rec := &logRec{op: opUpdate, txn: t.id, key: key, oldVal: oldVal, newVal: newVal, note: note}
		lsn, err := t.e.appendTxnLog(t, rec)
		if err != nil {
			return err
		}
		t.lsns = append(t.lsns, lsn)
	}

	t.e.mu.Lock()
	t.e.cache[key] = newVal
	t.e.dirty[key] = true
	t.e.stats.Updates++
	t.e.mu.Unlock()
	t.undo = append(t.undo, undoEntry{key: key, oldVal: oldVal})
	return nil
}

// Savepoint returns a token for partial rollback (the long-running
// workstation transactions of Section 2 use frequent savepoints).
func (t *Txn) Savepoint() int { return len(t.undo) }

// RollbackTo undoes every update made after the savepoint was taken,
// logging the compensations as ordinary updates.
func (t *Txn) RollbackTo(sp int) error {
	if t.done {
		return ErrTxnDone
	}
	if sp < 0 || sp > len(t.undo) {
		return fmt.Errorf("recman: savepoint %d out of range", sp)
	}
	entries := append([]undoEntry(nil), t.undo[sp:]...)
	for i := len(entries) - 1; i >= 0; i-- {
		if err := t.update(entries[i].key, entries[i].oldVal, nil); err != nil {
			return err
		}
	}
	t.undo = t.undo[:sp]
	return nil
}

// Commit makes the transaction durable: the commit record is the one
// forced write of the transaction (Section 4.1: "only the final commit
// record written by a local ET1 transaction must be forced").
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	if _, err := t.e.appendTxnEnder(t, &logRec{op: opCommit, txn: t.id}); err != nil {
		return err
	}
	if err := t.e.forceTxn(t); err != nil {
		return err
	}
	if t.e.split != nil {
		t.e.split.OnCommit(t.id)
	}
	t.finish(true)
	return nil
}

// Abort rolls the transaction back. With splitting enabled, undo
// components come from the local cache; otherwise they are re-read
// from the log — the remote-read cost Section 5.2 argues the cache
// eliminates.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	if t.e.split != nil {
		for _, data := range t.e.split.TakeForAbort(t.id) {
			r, err := decodeLogRec(data)
			if err != nil {
				return err
			}
			t.e.mu.Lock()
			t.e.cache[r.key] = r.oldVal
			t.e.dirty[r.key] = true
			t.e.mu.Unlock()
		}
		t.e.mu.Lock()
		t.e.stats.AbortsFromCache++
		t.e.mu.Unlock()
	} else {
		for i := len(t.lsns) - 1; i >= 0; i-- {
			rec, err := t.e.readTxnRecord(t, t.lsns[i])
			if err != nil {
				return fmt.Errorf("recman: abort read of LSN %d: %w", t.lsns[i], err)
			}
			t.e.mu.Lock()
			t.e.stats.AbortLogReads++
			t.e.mu.Unlock()
			r, err := decodeLogRec(rec.Data)
			if err != nil {
				return err
			}
			t.e.mu.Lock()
			cur := t.e.cache[r.key]
			t.e.cache[r.key] = r.oldVal
			t.e.dirty[r.key] = true
			t.e.mu.Unlock()
			// Log the compensation so redo-based recovery replays the
			// rollback in its correct position in the total order.
			clr := &logRec{op: opUpdate, txn: t.id, key: r.key, oldVal: cur, newVal: r.oldVal}
			if _, err := t.e.appendTxnLog(t, clr); err != nil {
				return err
			}
		}
	}
	if _, err := t.e.appendTxnEnder(t, &logRec{op: opAbort, txn: t.id}); err != nil {
		return err
	}
	t.finish(false)
	return nil
}

func (t *Txn) finish(committed bool) {
	t.done = true
	t.e.locks.releaseAll(t.id)
	t.e.mu.Lock()
	t.e.active--
	if committed {
		t.e.stats.Commits++
		t.e.sinceCkp++
	} else {
		t.e.stats.Aborts++
	}
	ckpt := t.e.opts.CheckpointEvery > 0 && t.e.sinceCkp >= t.e.opts.CheckpointEvery && t.e.active == 0
	t.e.quiesce.Broadcast()
	t.e.mu.Unlock()
	if ckpt {
		// Best effort; an explicit Checkpoint call reports errors.
		_ = t.e.Checkpoint()
	}
}

// FlushKey writes the key's current value to the stable store (page
// cleaning, possibly stealing an uncommitted value). The WAL rule is
// enforced: undo information reaches the log first, then the log is
// forced, then the page is written.
func (e *Engine) FlushKey(key string) error {
	if e.split != nil {
		if err := e.split.BeforeClean(key); err != nil {
			return err
		}
	}
	if err := e.forceAll(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.dirty[key] {
		return nil
	}
	e.stable.Set(key, e.cache[key])
	delete(e.dirty, key)
	e.stats.Flushes++
	return nil
}

// flushAllLocked cleans every dirty page. Caller holds e.mu.
func (e *Engine) flushAllLocked() error {
	keys := make([]string, 0, len(e.dirty))
	for k := range e.dirty {
		keys = append(keys, k)
	}
	e.mu.Unlock()
	var err error
	for _, k := range keys {
		if ferr := e.FlushKey(k); ferr != nil && err == nil {
			err = ferr
		}
	}
	e.mu.Lock()
	return err
}

// Checkpoint quiesces the engine (waits for active transactions to
// finish), cleans every dirty page, and writes a checkpoint record so
// restart recovery can begin there instead of at the head of the log
// (a Section 5.3 space-management function).
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	for e.active > 0 {
		e.quiesce.Wait()
	}
	if err := e.flushAllLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	e.sinceCkp = 0
	e.stats.Checkpoints++
	e.mu.Unlock()

	if e.streams != nil {
		return e.checkpointStreams()
	}
	if e.opts.TruncateOnCheckpoint {
		if cw, ok := e.log.(checkpointWriter); ok {
			data := (&logRec{op: opCheckpoint}).encode()
			if _, err := cw.Checkpoint(data); err != nil {
				return fmt.Errorf("recman: checkpoint: %w", err)
			}
			e.mu.Lock()
			e.stats.LogRecords++
			e.stats.LogBytes += uint64(len(data))
			e.mu.Unlock()
			return nil
		}
	}
	ckptLSN, err := e.appendLog(&logRec{op: opCheckpoint})
	if err != nil {
		return err
	}
	if err := e.log.Force(); err != nil {
		return err
	}
	if e.opts.TruncateOnCheckpoint {
		if tr, ok := e.log.(prefixTruncator); ok {
			// Everything before the checkpoint record is unnecessary
			// for node recovery. (Media recovery relies on dumps; see
			// Section 5.3.)
			if err := tr.TruncatePrefix(ckptLSN); err != nil {
				return fmt.Errorf("recman: post-checkpoint truncation: %w", err)
			}
		}
	}
	return nil
}
