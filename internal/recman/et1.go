package recman

import (
	"fmt"

	"distlog/internal/workload"
)

// note pads ET1 log records to the paper's 100-byte record size.
var et1Note = make([]byte, 64)

// ApplyET1 executes one ET1 (DebitCredit) transaction against the
// engine: update the account, teller, and branch balances, bump the
// history count, append the history detail, and record the audit key —
// six update records and one commit record, matching the paper's
// "700 bytes of log data in seven log records" with only the commit
// forced. On any error the transaction is aborted.
func ApplyET1(e *Engine, txn workload.ET1Txn) (newBalance int64, err error) {
	t := e.Begin()
	defer func() {
		if err != nil && !t.done {
			if aerr := t.Abort(); aerr != nil {
				err = fmt.Errorf("%w (abort also failed: %v)", err, aerr)
			}
		}
	}()

	keys := txn.Keys() // branch, teller, account: fixed, deadlock-free order
	if _, err = t.AddNote(keys[0], txn.Delta, et1Note); err != nil {
		return 0, err
	}
	if _, err = t.AddNote(keys[1], txn.Delta, et1Note); err != nil {
		return 0, err
	}
	newBalance, err = t.AddNote(keys[2], txn.Delta, et1Note)
	if err != nil {
		return 0, err
	}
	seq, err := t.Add("history/count", 1)
	if err != nil {
		return 0, err
	}
	if err = t.SetNote(fmt.Sprintf("history/item/%d", seq), txn.Delta, []byte(txn.HistoryLine())); err != nil {
		return 0, err
	}
	if err = t.SetNote("audit/last_account", int64(txn.Account), et1Note); err != nil {
		return 0, err
	}
	if err = t.Commit(); err != nil {
		return 0, err
	}
	return newBalance, nil
}

// BankInvariant checks the ET1 conservation law: the sum of all
// account deltas equals the branch and teller totals and the history
// count matches the number of committed transactions. It returns an
// error describing the first violation.
func BankInvariant(e *Engine, scale workload.ET1Scale) error {
	var branches, tellers, accounts int64
	e.mu.Lock()
	for k, v := range e.cache {
		switch {
		case len(k) > 7 && k[:7] == "branch/":
			branches += v
		case len(k) > 7 && k[:7] == "teller/":
			tellers += v
		case len(k) > 8 && k[:8] == "account/":
			accounts += v
		}
	}
	e.mu.Unlock()
	if branches != tellers || tellers != accounts {
		return fmt.Errorf("recman: conservation violated: branches %d, tellers %d, accounts %d", branches, tellers, accounts)
	}
	return nil
}
