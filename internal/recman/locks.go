package recman

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrLockTimeout is returned when a lock cannot be acquired within the
// engine's lock timeout (the crude deadlock resolution the paper's
// target systems also used).
var ErrLockTimeout = errors.New("recman: lock wait timed out")

// lockTable implements strict two-phase locking with exclusive
// per-key locks, reentrant for the owning transaction.
type lockTable struct {
	mu      sync.Mutex
	cond    *sync.Cond
	owners  map[string]uint64   // key -> txn
	held    map[uint64][]string // txn -> keys (release order irrelevant)
	timeout time.Duration
}

func newLockTable(timeout time.Duration) *lockTable {
	lt := &lockTable{
		owners:  make(map[string]uint64),
		held:    make(map[uint64][]string),
		timeout: timeout,
	}
	lt.cond = sync.NewCond(&lt.mu)
	return lt
}

// acquire blocks until txn holds the key's lock.
func (lt *lockTable) acquire(txn uint64, key string) error {
	deadline := time.Now().Add(lt.timeout)
	timer := time.AfterFunc(lt.timeout, func() {
		lt.mu.Lock()
		lt.cond.Broadcast()
		lt.mu.Unlock()
	})
	defer timer.Stop()

	lt.mu.Lock()
	defer lt.mu.Unlock()
	for {
		owner, taken := lt.owners[key]
		if !taken {
			lt.owners[key] = txn
			lt.held[txn] = append(lt.held[txn], key)
			return nil
		}
		if owner == txn {
			return nil // reentrant
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("%w: txn %d waiting for %q held by %d", ErrLockTimeout, txn, key, owner)
		}
		lt.cond.Wait()
	}
}

// releaseAll frees every lock txn holds (commit or abort: strict 2PL
// releases only at transaction end).
func (lt *lockTable) releaseAll(txn uint64) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for _, key := range lt.held[txn] {
		if lt.owners[key] == txn {
			delete(lt.owners, key)
		}
	}
	delete(lt.held, txn)
	lt.cond.Broadcast()
}

// heldBy reports whether txn currently owns key (tests).
func (lt *lockTable) heldBy(txn uint64, key string) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.owners[key] == txn
}
