package recman

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"distlog/internal/record"
	"distlog/internal/workload"
)

// testLog is an in-memory recovery log whose crash semantics mirror
// the replicated log: records written but never forced are lost.
type testLog struct {
	mu             sync.Mutex
	recs           []record.Record
	forced         int
	writes, forces uint64
}

func newTestLog() *testLog { return &testLog{} }

func (l *testLog) WriteLog(data []byte) (record.LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := record.LSN(len(l.recs) + 1)
	l.recs = append(l.recs, record.Record{LSN: lsn, Epoch: 1, Present: true, Data: append([]byte(nil), data...)})
	l.writes++
	return lsn, nil
}

func (l *testLog) Force() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.forced = len(l.recs)
	l.forces++
	return nil
}

func (l *testLog) ReadRecord(lsn record.LSN) (record.Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn == 0 || int(lsn) > len(l.recs) {
		return record.Record{}, fmt.Errorf("testlog: LSN %d beyond end", lsn)
	}
	return l.recs[lsn-1].Clone(), nil
}

func (l *testLog) EndOfLog() record.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return record.LSN(len(l.recs))
}

// crash discards unforced records, as a real crash would.
func (l *testLog) crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = l.recs[:l.forced]
}

func openEngine(t *testing.T, log Log, stable *StableStore, opts Options) *Engine {
	t.Helper()
	e, err := Open(log, stable, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func modes(t *testing.T, fn func(t *testing.T, opts Options)) {
	for _, split := range []bool{false, true} {
		name := "combined"
		if split {
			name = "split"
		}
		t.Run(name, func(t *testing.T) { fn(t, Options{Split: split}) })
	}
}

func TestCommitMakesValuesVisible(t *testing.T) {
	modes(t, func(t *testing.T, opts Options) {
		e := openEngine(t, newTestLog(), NewStableStore(), opts)
		txn := e.Begin()
		if err := txn.Set("a", 5); err != nil {
			t.Fatal(err)
		}
		if _, err := txn.Add("a", 2); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		if got := e.Get("a"); got != 7 {
			t.Fatalf("a = %d", got)
		}
		if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
			t.Fatalf("double commit: %v", err)
		}
	})
}

func TestAbortRollsBack(t *testing.T) {
	modes(t, func(t *testing.T, opts Options) {
		e := openEngine(t, newTestLog(), NewStableStore(), opts)
		t1 := e.Begin()
		t1.Set("a", 10)
		if err := t1.Commit(); err != nil {
			t.Fatal(err)
		}
		t2 := e.Begin()
		t2.Set("a", 99)
		t2.Set("b", 1)
		if err := t2.Abort(); err != nil {
			t.Fatal(err)
		}
		if got := e.Get("a"); got != 10 {
			t.Fatalf("a = %d after abort", got)
		}
		if got := e.Get("b"); got != 0 {
			t.Fatalf("b = %d after abort", got)
		}
		s := e.Stats()
		if opts.Split {
			if s.AbortsFromCache != 1 || s.AbortLogReads != 0 {
				t.Fatalf("split abort stats: %+v", s)
			}
		} else {
			if s.AbortLogReads != 2 {
				t.Fatalf("combined abort stats: %+v", s)
			}
		}
	})
}

func TestStrictTwoPhaseLocking(t *testing.T) {
	e := openEngine(t, newTestLog(), NewStableStore(), Options{LockTimeout: 100 * time.Millisecond})
	t1 := e.Begin()
	if _, err := t1.Get("k"); err != nil {
		t.Fatal(err)
	}
	// A second transaction blocks until t1 finishes.
	t2 := e.Begin()
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := t2.Get("k")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("t2 lock: %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("t2 acquired the lock while t1 held it")
	}
	t2.Commit()
}

func TestLockTimeout(t *testing.T) {
	e := openEngine(t, newTestLog(), NewStableStore(), Options{LockTimeout: 50 * time.Millisecond})
	t1 := e.Begin()
	t1.Set("k", 1)
	t2 := e.Begin()
	if _, err := t2.Get("k"); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("t2.Get = %v", err)
	}
	t1.Commit()
	t2.Abort()
}

func TestSavepointPartialRollback(t *testing.T) {
	modes(t, func(t *testing.T, opts Options) {
		e := openEngine(t, newTestLog(), NewStableStore(), opts)
		txn := e.Begin()
		txn.Set("a", 1)
		sp := txn.Savepoint()
		txn.Set("a", 2)
		txn.Set("b", 3)
		if err := txn.RollbackTo(sp); err != nil {
			t.Fatal(err)
		}
		txn.Set("c", 4)
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		if e.Get("a") != 1 || e.Get("b") != 0 || e.Get("c") != 4 {
			t.Fatalf("state: a=%d b=%d c=%d", e.Get("a"), e.Get("b"), e.Get("c"))
		}
	})
}

func TestSavepointOutOfRange(t *testing.T) {
	e := openEngine(t, newTestLog(), NewStableStore(), Options{})
	txn := e.Begin()
	if err := txn.RollbackTo(5); err == nil {
		t.Fatal("bogus savepoint accepted")
	}
	txn.Abort()
}

func TestCrashRecoveryCommittedSurvive(t *testing.T) {
	modes(t, func(t *testing.T, opts Options) {
		log := newTestLog()
		stable := NewStableStore()
		e := openEngine(t, log, stable, opts)
		for i := 0; i < 5; i++ {
			txn := e.Begin()
			txn.Set(fmt.Sprintf("k%d", i), int64(i*10))
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		log.crash() // nothing unforced; stable store untouched (no flushes)

		e2 := openEngine(t, log, stable, opts)
		for i := 0; i < 5; i++ {
			if got := e2.Get(fmt.Sprintf("k%d", i)); got != int64(i*10) {
				t.Fatalf("k%d = %d after recovery", i, got)
			}
		}
		if e2.Stats().RecoveredWinners != 5 {
			t.Fatalf("winners = %d", e2.Stats().RecoveredWinners)
		}
	})
}

func TestCrashRecoveryUncommittedRolledBack(t *testing.T) {
	modes(t, func(t *testing.T, opts Options) {
		log := newTestLog()
		stable := NewStableStore()
		e := openEngine(t, log, stable, opts)
		c := e.Begin()
		c.Set("committed", 1)
		if err := c.Commit(); err != nil {
			t.Fatal(err)
		}
		loser := e.Begin()
		loser.Set("committed", 99)
		loser.Set("dirty", 7)
		// Steal: clean the loser's pages to the stable store before it
		// commits — the case undo information exists for.
		if err := e.FlushKey("committed"); err != nil {
			t.Fatal(err)
		}
		if err := e.FlushKey("dirty"); err != nil {
			t.Fatal(err)
		}
		if stable.Get("committed") != 99 {
			t.Fatal("steal did not reach the stable store")
		}
		log.crash() // loser never committed

		e2 := openEngine(t, log, stable, opts)
		if got := e2.Get("committed"); got != 1 {
			t.Fatalf("committed = %d after recovery, want 1", got)
		}
		if got := e2.Get("dirty"); got != 0 {
			t.Fatalf("dirty = %d after recovery, want 0", got)
		}
		if e2.Stats().RecoveredLosers != 1 {
			t.Fatalf("losers = %d", e2.Stats().RecoveredLosers)
		}
	})
}

func TestCrashRecoveryLoserThenWinnerSameKey(t *testing.T) {
	modes(t, func(t *testing.T, opts Options) {
		log := newTestLog()
		stable := NewStableStore()
		e := openEngine(t, log, stable, opts)
		// Loser updates k, is stolen, aborts (restoring k), then a
		// winner updates k. Recovery must keep the winner's value.
		base := e.Begin()
		base.Set("k", 5)
		if err := base.Commit(); err != nil {
			t.Fatal(err)
		}
		loser := e.Begin()
		loser.Set("k", 50)
		if err := e.FlushKey("k"); err != nil {
			t.Fatal(err)
		}
		if err := loser.Abort(); err != nil {
			t.Fatal(err)
		}
		winner := e.Begin()
		winner.Set("k", 6)
		if err := winner.Commit(); err != nil {
			t.Fatal(err)
		}
		log.crash()

		e2 := openEngine(t, log, stable, opts)
		if got := e2.Get("k"); got != 6 {
			t.Fatalf("k = %d after recovery, want 6", got)
		}
	})
}

func TestCheckpointBoundsRecovery(t *testing.T) {
	modes(t, func(t *testing.T, opts Options) {
		log := newTestLog()
		stable := NewStableStore()
		e := openEngine(t, log, stable, opts)
		for i := 0; i < 10; i++ {
			txn := e.Begin()
			txn.Set(fmt.Sprintf("k%d", i), int64(i))
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		txn := e.Begin()
		txn.Set("after", 42)
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		log.crash()

		e2 := openEngine(t, log, stable, opts)
		// Only the post-checkpoint winner is replayed...
		if e2.Stats().RecoveredWinners != 1 {
			t.Fatalf("winners = %d, want 1 (checkpoint should bound the scan)", e2.Stats().RecoveredWinners)
		}
		// ...but the full state is correct.
		for i := 0; i < 10; i++ {
			if got := e2.Get(fmt.Sprintf("k%d", i)); got != int64(i) {
				t.Fatalf("k%d = %d", i, got)
			}
		}
		if e2.Get("after") != 42 {
			t.Fatalf("after = %d", e2.Get("after"))
		}
	})
}

func TestAutomaticCheckpointEvery(t *testing.T) {
	log := newTestLog()
	e := openEngine(t, log, NewStableStore(), Options{CheckpointEvery: 3})
	for i := 0; i < 7; i++ {
		txn := e.Begin()
		txn.Set("k", int64(i))
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if ck := e.Stats().Checkpoints; ck != 2 {
		t.Fatalf("checkpoints = %d, want 2", ck)
	}
}

func TestSplitModeSavesLogVolume(t *testing.T) {
	// The same workload in both modes: split writes materially fewer
	// log bytes when transactions commit (undo components never reach
	// the log).
	run := func(opts Options) uint64 {
		log := newTestLog()
		e, err := Open(log, NewStableStore(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			txn := e.Begin()
			for j := 0; j < 5; j++ {
				txn.Set(fmt.Sprintf("k%d", j), int64(i+j))
			}
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		return e.Stats().LogBytes
	}
	combined := run(Options{})
	split := run(Options{Split: true})
	if split >= combined {
		t.Fatalf("split logged %d bytes, combined %d: no savings", split, combined)
	}
}

func TestSplitStatsAccounting(t *testing.T) {
	log := newTestLog()
	e := openEngine(t, log, NewStableStore(), Options{Split: true})
	txn := e.Begin()
	txn.Set("a", 1)
	txn.Set("b", 2)
	txn.Commit()
	s := e.SplitStats()
	if s.UndoCached != 2 || s.UndoDropped != 2 || s.UndoLogged != 0 {
		t.Fatalf("split stats: %+v", s)
	}
	// A stolen page logs its undo.
	t2 := e.Begin()
	t2.Set("a", 9)
	e.FlushKey("a")
	s = e.SplitStats()
	if s.UndoLogged != 1 {
		t.Fatalf("after steal: %+v", s)
	}
	t2.Abort()
}

func TestET1TransactionsAndInvariant(t *testing.T) {
	modes(t, func(t *testing.T, opts Options) {
		log := newTestLog()
		e := openEngine(t, log, NewStableStore(), opts)
		scale := workload.ET1Scale{Branches: 3, Tellers: 30, Accounts: 300}
		gen := workload.NewET1(scale, 11)
		for i := 0; i < 100; i++ {
			if _, err := ApplyET1(e, gen.Next()); err != nil {
				t.Fatal(err)
			}
		}
		if err := BankInvariant(e, scale); err != nil {
			t.Fatal(err)
		}
		if got := e.Get("history/count"); got != 100 {
			t.Fatalf("history/count = %d", got)
		}
		// Seven log records per transaction (6 updates + 1 commit).
		if recs := e.Stats().LogRecords; recs != 700 {
			t.Fatalf("log records = %d, want 700", recs)
		}
		// One force per transaction.
		if log.forces != 100 {
			t.Fatalf("forces = %d, want 100", log.forces)
		}
	})
}

func TestET1SurvivesCrash(t *testing.T) {
	log := newTestLog()
	stable := NewStableStore()
	e := openEngine(t, log, stable, Options{})
	gen := workload.NewET1(workload.ET1Scale{Branches: 2, Tellers: 20, Accounts: 200}, 3)
	for i := 0; i < 50; i++ {
		if _, err := ApplyET1(e, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	log.crash()
	e2 := openEngine(t, log, stable, Options{})
	if err := BankInvariant(e2, workload.ET1Scale{}); err != nil {
		t.Fatal(err)
	}
	if got := e2.Get("history/count"); got != 50 {
		t.Fatalf("history/count = %d after recovery", got)
	}
}

func TestConcurrentET1(t *testing.T) {
	log := newTestLog()
	e := openEngine(t, log, NewStableStore(), Options{LockTimeout: 5 * time.Second})
	scale := workload.ET1Scale{Branches: 4, Tellers: 40, Accounts: 400}
	const workers = 4
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := workload.NewET1(scale, seed)
			for i := 0; i < perWorker; i++ {
				if _, err := ApplyET1(e, gen.Next()); err != nil {
					errs <- err
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := BankInvariant(e, scale); err != nil {
		t.Fatal(err)
	}
	if got := e.Get("history/count"); got != workers*perWorker {
		t.Fatalf("history/count = %d", got)
	}
}

func TestLongRunningWorkstationTransactions(t *testing.T) {
	log := newTestLog()
	e := openEngine(t, log, NewStableStore(), Options{Split: true})
	gen := workload.NewLongTxn(50, 5)
	for round := 0; round < 5; round++ {
		txn := e.Begin()
		var savepoints []int
		for _, op := range gen.Next(100) {
			switch op.Kind {
			case "update":
				if _, err := txn.Add(op.Key, op.Delta); err != nil {
					t.Fatal(err)
				}
			case "savepoint":
				savepoints = append(savepoints, txn.Savepoint())
			case "rollback":
				if err := txn.RollbackTo(savepoints[op.Target]); err != nil {
					t.Fatal(err)
				}
				savepoints = savepoints[:op.Target]
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	// Recovering twice (a crash during recovery's aftermath) yields the
	// same state: the procedure is restartable.
	log := newTestLog()
	stable := NewStableStore()
	e := openEngine(t, log, stable, Options{})
	txn := e.Begin()
	txn.Set("x", 123)
	txn.Commit()
	log.crash()

	openEngine(t, log, stable, Options{})
	snap1 := stable.Snapshot()
	openEngine(t, log, stable, Options{})
	snap2 := stable.Snapshot()
	if len(snap1) != len(snap2) {
		t.Fatal("recovery not idempotent")
	}
	for k, v := range snap1 {
		if snap2[k] != v {
			t.Fatalf("key %q: %d vs %d", k, v, snap2[k])
		}
	}
}

func BenchmarkET1Combined(b *testing.B) {
	benchET1(b, Options{})
}

func BenchmarkET1Split(b *testing.B) {
	benchET1(b, Options{Split: true})
}

func benchET1(b *testing.B, opts Options) {
	log := newTestLog()
	e, err := Open(log, NewStableStore(), opts)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewET1(workload.DefaultScale(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApplyET1(e, gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// truncLog is a testLog that also supports prefix truncation.
type truncLog struct {
	testLog
	truncatedAt []record.LSN
}

func (l *truncLog) TruncatePrefix(before record.LSN) error {
	l.truncatedAt = append(l.truncatedAt, before)
	return nil
}

func TestCheckpointTruncatesLogWhenEnabled(t *testing.T) {
	log := &truncLog{}
	e := openEngine(t, log, NewStableStore(), Options{TruncateOnCheckpoint: true})
	for i := 0; i < 5; i++ {
		txn := e.Begin()
		txn.Set("k", int64(i))
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(log.truncatedAt) != 1 {
		t.Fatalf("truncations = %v, want exactly one", log.truncatedAt)
	}
	// The truncation point is the checkpoint record itself: everything
	// before it is unnecessary for node recovery.
	if got := log.truncatedAt[0]; got != log.EndOfLog() {
		t.Fatalf("truncated at %d, checkpoint record is %d", got, log.EndOfLog())
	}
}

func TestCheckpointNoTruncationByDefault(t *testing.T) {
	log := &truncLog{}
	e := openEngine(t, log, NewStableStore(), Options{})
	txn := e.Begin()
	txn.Set("k", 1)
	txn.Commit()
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(log.truncatedAt) != 0 {
		t.Fatalf("unexpected truncations: %v", log.truncatedAt)
	}
}

func TestCheckpointTruncationOnPlainLogIsNoop(t *testing.T) {
	// A log without the capability is left alone.
	log := newTestLog()
	e := openEngine(t, log, NewStableStore(), Options{TruncateOnCheckpoint: true})
	txn := e.Begin()
	txn.Set("k", 1)
	txn.Commit()
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestMediaRecoveryFromDump exercises the Section 5.3 dump function:
// the stable store is dumped to a file, more transactions run (with a
// checkpoint newer than the dump), and then the "media" is destroyed.
// Restoring the dump and replaying the whole log (FullReplay ignores
// the too-new checkpoint) reconstructs every committed transaction.
func TestMediaRecoveryFromDump(t *testing.T) {
	dir := t.TempDir()
	log := newTestLog()
	stable := NewStableStore()
	e := openEngine(t, log, stable, Options{})
	for i := 0; i < 10; i++ {
		txn := e.Begin()
		txn.Set(fmt.Sprintf("k%d", i), int64(i))
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Periodic dump: flush everything and save the stable store.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	dumpPath := dir + "/dump.json"
	if err := stable.SaveFile(dumpPath); err != nil {
		t.Fatal(err)
	}
	// Life continues: more commits and another checkpoint, both newer
	// than the dump.
	for i := 10; i < 20; i++ {
		txn := e.Begin()
		txn.Set(fmt.Sprintf("k%d", i), int64(i))
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	txn := e.Begin()
	txn.Set("k5", 555)
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// Media failure: the stable store is destroyed. Restore the dump.
	restored, err := LoadStableStore(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(log, restored, Options{FullReplay: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		want := int64(i)
		if i == 5 {
			want = 555
		}
		if got := e2.Get(fmt.Sprintf("k%d", i)); got != want {
			t.Fatalf("k%d = %d after media recovery, want %d", i, got, want)
		}
	}

	// Sanity: a normal (checkpoint-bounded) recovery over the stale
	// dump would be wrong — it must only be used with FullReplay.
	restored2, err := LoadStableStore(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := Open(log, restored2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e3.Get("k15"); got == 15 {
		t.Skip("checkpoint-bounded recovery accidentally correct; scenario needs adjusting")
	}
}
