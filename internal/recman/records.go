// Package recman is the client-side recovery manager substrate the
// paper assumes: a write-ahead-logging transaction engine in the style
// of TABS/Camelot, running over any recovery log — the replicated log
// of internal/core or the local duplexed-disk baseline of
// internal/locallog. It provides strict two-phase locking, savepoints
// (the workstation workload of Section 2), steal-capable page
// cleaning, sharp checkpoints, crash recovery, and the log record
// splitting/caching optimization of Section 5.2.
package recman

import (
	"encoding/binary"
	"errors"
	"fmt"

	"distlog/internal/record"
)

// Log is what the engine requires from a recovery log. It is satisfied
// by *core.ReplicatedLog and *locallog.Log.
type Log interface {
	WriteLog(data []byte) (record.LSN, error)
	Force() error
	ReadRecord(lsn record.LSN) (record.Record, error)
	EndOfLog() record.LSN
}

// Engine log record kinds (encoded in the data of replicated-log
// records).
const (
	opUpdate     = 0x01 // combined redo+undo: txn, key, oldVal, newVal
	opRedo       = 0x02 // split redo component: txn, key, newVal
	opUndo       = 0x03 // split undo component: txn, key, oldVal
	opCommit     = 0x04 // txn
	opAbort      = 0x05 // txn
	opCheckpoint = 0x06 // sharp checkpoint marker
)

// ErrBadLogRecord is returned when an engine log record fails to
// decode.
var ErrBadLogRecord = errors.New("recman: malformed engine log record")

// logRec is one decoded engine log record.
type logRec struct {
	op     byte
	txn    uint64
	key    string
	oldVal int64
	newVal int64
	note   []byte
}

func (r *logRec) encode() []byte {
	buf := make([]byte, 0, 32+len(r.key)+len(r.note))
	buf = append(buf, r.op)
	buf = binary.BigEndian.AppendUint64(buf, r.txn)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.key)))
	buf = append(buf, r.key...)
	switch r.op {
	case opUpdate:
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.oldVal))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.newVal))
	case opRedo:
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.newVal))
	case opUndo:
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.oldVal))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.note)))
	buf = append(buf, r.note...)
	return buf
}

func decodeLogRec(data []byte) (*logRec, error) {
	if len(data) < 11 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadLogRecord, len(data))
	}
	r := &logRec{op: data[0], txn: binary.BigEndian.Uint64(data[1:9])}
	kl := int(binary.BigEndian.Uint16(data[9:11]))
	off := 11
	if len(data) < off+kl {
		return nil, fmt.Errorf("%w: truncated key", ErrBadLogRecord)
	}
	r.key = string(data[off : off+kl])
	off += kl
	need := func(n int) error {
		if len(data) < off+n {
			return fmt.Errorf("%w: truncated values", ErrBadLogRecord)
		}
		return nil
	}
	switch r.op {
	case opUpdate:
		if err := need(16); err != nil {
			return nil, err
		}
		r.oldVal = int64(binary.BigEndian.Uint64(data[off:]))
		r.newVal = int64(binary.BigEndian.Uint64(data[off+8:]))
		off += 16
	case opRedo:
		if err := need(8); err != nil {
			return nil, err
		}
		r.newVal = int64(binary.BigEndian.Uint64(data[off:]))
		off += 8
	case opUndo:
		if err := need(8); err != nil {
			return nil, err
		}
		r.oldVal = int64(binary.BigEndian.Uint64(data[off:]))
		off += 8
	case opCommit, opAbort, opCheckpoint:
	default:
		return nil, fmt.Errorf("%w: unknown op 0x%02x", ErrBadLogRecord, r.op)
	}
	if err := need(2); err != nil {
		return nil, err
	}
	nl := int(binary.BigEndian.Uint16(data[off:]))
	off += 2
	if err := need(nl); err != nil {
		return nil, err
	}
	if nl > 0 {
		r.note = append([]byte(nil), data[off:off+nl]...)
	}
	return r, nil
}
