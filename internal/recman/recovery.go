package recman

import (
	"fmt"

	"distlog/internal/core"
	"distlog/internal/record"
)

// cursorLog is the optional log capability the recovery scan prefers:
// a streaming cursor whose fetch engine pipelines the whole pass in
// O(records-per-packet) round trips instead of one round trip per
// record. *core.ReplicatedLog and *locallog.Log implement it.
type cursorLog interface {
	OpenCursor(from record.LSN, dir core.Direction) (core.Cursor, error)
}

// recover rebuilds the stable store's committed state from the log.
//
// Combined mode uses classic value-logging recovery: starting from the
// last sharp checkpoint, apply every update in log order (winners and
// losers — losers' effects may have been stolen into the stable store)
// and then apply losers' undo values in reverse order. Strict 2PL
// makes per-key writes totally ordered, so the result is exactly the
// committed state.
//
// Split mode logs undo components only for stolen pages, so instead:
// apply winners' redo components in log order, then apply losers'
// logged undo components in reverse order — but only where no later
// winner overwrote the key (the undo of an unstolen loser update was
// never logged and is not needed, because the stable store never saw
// the loser's value).
func (e *Engine) recover() error {
	if e.streams != nil {
		// K > 1 streams: parallel scan, dependency-ordered merged replay
		// (streams.go). The single-stream path below stays untouched.
		return e.recoverStreams()
	}
	end := e.log.EndOfLog()
	type upd struct {
		lsn record.LSN
		rec *logRec
	}
	var updates []upd
	winners := make(map[uint64]bool)
	aborted := make(map[uint64]bool)
	maxTxn := uint64(0)
	start := record.LSN(1)

	// process consumes one replicated-log record of the single forward
	// pass; the collection restarts at each checkpoint.
	process := func(rec record.Record) error {
		if !rec.Present {
			return nil // crash-recovery marker in the replicated log
		}
		r, err := decodeLogRec(rec.Data)
		if err != nil {
			return fmt.Errorf("recman: recovery decode of LSN %d: %w", rec.LSN, err)
		}
		if r.txn > maxTxn {
			maxTxn = r.txn
		}
		switch r.op {
		case opCheckpoint:
			if e.opts.FullReplay {
				// Media recovery: the stable store was restored from a
				// dump possibly older than this checkpoint, so the cut
				// cannot be trusted; keep replaying everything.
				return nil
			}
			// Sharp checkpoint: stable store was committed-and-clean at
			// this point; everything earlier is already reflected.
			updates = updates[:0]
			clear(winners)
			clear(aborted)
		case opUpdate, opRedo, opUndo:
			updates = append(updates, upd{lsn: rec.LSN, rec: r})
		case opCommit:
			winners[r.txn] = true
		case opAbort:
			// The rollback completed before the crash. In combined mode
			// the compensations were logged (CLRs), so the transaction
			// must not be undone again; in split mode its logged undo
			// components still participate (guarded by later winner
			// writes).
			aborted[r.txn] = true
		}
		return nil
	}

	if cl, ok := e.log.(cursorLog); ok && end >= start {
		// Streaming pass: one cursor, prefetched and packed in
		// multi-record packets by the log's fetch engine.
		cur, err := cl.OpenCursor(start, core.Forward)
		if err != nil {
			return fmt.Errorf("recman: recovery scan open: %w", err)
		}
		for lsn := start; lsn <= end; lsn++ {
			rec, err := cur.Next()
			if err != nil {
				cur.Close()
				return fmt.Errorf("recman: recovery scan at LSN %d: %w", lsn, err)
			}
			if err := process(rec); err != nil {
				cur.Close()
				return err
			}
		}
		cur.Close()
	} else {
		for lsn := start; lsn <= end; lsn++ {
			rec, err := e.log.ReadRecord(lsn)
			if err != nil {
				return fmt.Errorf("recman: recovery read of LSN %d: %w", lsn, err)
			}
			if err := process(rec); err != nil {
				return err
			}
		}
	}

	if e.split == nil {
		// Redo everything in order...
		for _, u := range updates {
			if u.rec.op == opUpdate {
				e.stable.Set(u.rec.key, u.rec.newVal)
			}
		}
		// ...then undo in-flight losers in reverse. Transactions that
		// finished aborting logged compensations, which the redo pass
		// already replayed.
		losers := 0
		seenLoser := make(map[uint64]bool)
		for i := len(updates) - 1; i >= 0; i-- {
			u := updates[i]
			if u.rec.op != opUpdate || winners[u.rec.txn] || aborted[u.rec.txn] {
				continue
			}
			if !seenLoser[u.rec.txn] {
				seenLoser[u.rec.txn] = true
				losers++
			}
			e.stable.Set(u.rec.key, u.rec.oldVal)
		}
		e.stats.RecoveredWinners = len(winners)
		e.stats.RecoveredLosers = losers
	} else {
		// Winners' redo components in order, tracking the LSN of the
		// last winner write per key.
		lastWinnerWrite := make(map[string]record.LSN)
		for _, u := range updates {
			if u.rec.op == opRedo && winners[u.rec.txn] {
				e.stable.Set(u.rec.key, u.rec.newVal)
				lastWinnerWrite[u.rec.key] = u.lsn
			}
		}
		// Losers' logged undo components in reverse, guarded by the
		// last winner write.
		losers := 0
		seenLoser := make(map[uint64]bool)
		for i := len(updates) - 1; i >= 0; i-- {
			u := updates[i]
			if u.rec.op != opUndo || winners[u.rec.txn] {
				continue
			}
			if !seenLoser[u.rec.txn] {
				seenLoser[u.rec.txn] = true
				losers++
			}
			if u.lsn > lastWinnerWrite[u.rec.key] {
				e.stable.Set(u.rec.key, u.rec.oldVal)
			}
		}
		e.stats.RecoveredWinners = len(winners)
		e.stats.RecoveredLosers = losers
	}
	e.nextTxn = maxTxn
	return nil
}
