package recman

import (
	"fmt"
	"testing"
	"time"

	"distlog/internal/core"
	"distlog/internal/record"
	"distlog/internal/server"
	"distlog/internal/storage"
	"distlog/internal/transport"
	"distlog/internal/workload"
)

// perRecordOnly hides OpenCursor from the engine, forcing recovery down
// the one-ReadRecord-per-LSN compatibility path.
type perRecordOnly struct{ Log }

// openReplicated starts a 3-server memnet cluster and opens a
// replicated log over it.
func openReplicated(t *testing.T, id record.ClientID) *core.ReplicatedLog {
	t.Helper()
	net := transport.NewNetwork(7)
	names := []string{"r1", "r2", "r3"}
	for _, name := range names {
		srv := server.New(server.Config{
			Name:     name,
			Store:    storage.NewMemStore(),
			Endpoint: net.Endpoint(name),
			Epochs:   server.NewMemEpochHost(),
		})
		srv.Start()
		t.Cleanup(srv.Stop)
	}
	l, err := core.Open(core.Config{
		ClientID:    id,
		Servers:     names,
		N:           2,
		Endpoint:    net.Endpoint(fmt.Sprintf("client-%d", id)),
		CallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestRecoveryEquivalenceCursorVsPerRecord seeds an ET1 history —
// committed transactions, a completed abort, and in-flight losers with
// stolen pages — on a replicated log, then recovers it twice from
// identical stable-store snapshots: once through the streaming cursor
// scan and once through per-record ReadRecord calls. The recovered
// databases and winner/loser accounting must be identical.
func TestRecoveryEquivalenceCursorVsPerRecord(t *testing.T) {
	modes(t, func(t *testing.T, opts Options) {
		l := openReplicated(t, 1)
		stable := NewStableStore()
		e := openEngine(t, l, stable, opts)

		scale := workload.ET1Scale{Branches: 2, Tellers: 4, Accounts: 40}
		gen := workload.NewET1(scale, 3)
		for i := 0; i < 25; i++ {
			if _, err := ApplyET1(e, gen.Next()); err != nil {
				t.Fatal(err)
			}
		}
		// A transaction that aborted cleanly before the crash.
		ab := e.Begin()
		if _, err := ab.Add("account-1", 500); err != nil {
			t.Fatal(err)
		}
		if err := ab.Abort(); err != nil {
			t.Fatal(err)
		}
		// In-flight losers whose pages are stolen into the stable store:
		// exactly the state recovery's undo pass exists for.
		loser1 := e.Begin()
		if _, err := loser1.Add("account-2", 700); err != nil {
			t.Fatal(err)
		}
		loser2 := e.Begin()
		if _, err := loser2.Add("teller-1", 900); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"account-2", "teller-1"} {
			if err := e.FlushKey(key); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Force(); err != nil {
			t.Fatal(err)
		}
		// Crash: the engine is abandoned with loser1/loser2 in flight.
		dirty := stable.Snapshot()

		restore := func() *StableStore {
			s := NewStableStore()
			for k, v := range dirty {
				s.Set(k, v)
			}
			return s
		}

		viaCursor := restore()
		e1 := openEngine(t, l, viaCursor, opts)
		viaRecord := restore()
		e2 := openEngine(t, perRecordOnly{l}, viaRecord, opts)

		if w1, w2 := e1.Stats().RecoveredWinners, e2.Stats().RecoveredWinners; w1 != w2 {
			t.Fatalf("winners: cursor %d, per-record %d", w1, w2)
		}
		if l1, l2 := e1.Stats().RecoveredLosers, e2.Stats().RecoveredLosers; l1 != l2 {
			t.Fatalf("losers: cursor %d, per-record %d", l1, l2)
		}
		s1, s2 := viaCursor.Snapshot(), viaRecord.Snapshot()
		if len(s1) != len(s2) {
			t.Fatalf("stable stores diverge: %d vs %d keys", len(s1), len(s2))
		}
		for k, v := range s1 {
			if s2[k] != v {
				t.Fatalf("stable stores diverge at %q: cursor %d, per-record %d", k, v, s2[k])
			}
		}
		// Loser effects must actually be rolled back in both.
		if e1.Stats().RecoveredLosers == 0 {
			t.Fatal("seeded history produced no losers")
		}
		// Sanity: the streamed pass really used the cursor path (the
		// replicated log records cursor activity).
		if l.Stats().CursorStreams == 0 {
			t.Fatal("cursor recovery did not open any read stream")
		}
	})
}
