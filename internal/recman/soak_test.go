package recman

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"distlog/internal/core"
	"distlog/internal/record"
	"distlog/internal/retention"
	"distlog/internal/server"
	"distlog/internal/storage"
	"distlog/internal/transport"
	"distlog/internal/workload"
)

// openSegReplicated starts a 3-server memnet cluster over segmented
// stores with a cold archive tier (in small rotating volumes, so
// retirement happens within the test) and opens a replicated log over
// it.
func openSegReplicated(t *testing.T, id record.ClientID, segBytes int64) (*core.ReplicatedLog, []*storage.SegStore, []*retention.Archive) {
	t.Helper()
	net := transport.NewNetwork(7)
	dir := t.TempDir()
	names := []string{"r1", "r2", "r3"}
	var stores []*storage.SegStore
	var archives []*retention.Archive
	for _, name := range names {
		arch, err := retention.OpenArchive(filepath.Join(dir, name, "archive"), retention.ArchiveOptions{VolumeBytes: 2048})
		if err != nil {
			t.Fatal(err)
		}
		st, err := storage.OpenSegStore(filepath.Join(dir, name, "segs"), storage.SegOptions{
			SegmentBytes: segBytes,
			Archive:      arch,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close(); arch.Close() })
		stores = append(stores, st)
		archives = append(archives, arch)
		srv := server.New(server.Config{
			Name:     name,
			Store:    st,
			Endpoint: net.Endpoint(name),
			Epochs:   server.NewMemEpochHost(),
		})
		srv.Start()
		t.Cleanup(srv.Stop)
	}
	l, err := core.Open(core.Config{
		ClientID:    id,
		Servers:     names,
		N:           2,
		Endpoint:    net.Endpoint(fmt.Sprintf("client-%d", id)),
		CallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, stores, archives
}

// countVolumeFiles counts the vol-*.log files in an archive directory.
func countVolumeFiles(t *testing.T, dir string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if strings.HasPrefix(de.Name(), "vol-") && strings.HasSuffix(de.Name(), ".log") {
			n++
		}
	}
	return n
}

// TestSoakET1WeekDiskPlateau is the log-space-management soak of
// Section 5.3: an ET1 transaction stream with periodic sharp
// checkpoints runs for a simulated week over segmented stores with
// background compactors, and the *total* disk footprint — hot segments
// plus the cold archive tier — must plateau: reclamation keeps pace
// with the log stream, and volume retirement keeps pace with the
// truncation floors, while the checkpoints keep the recovery replay
// window bounded.
//
// The default run is a miniature week sized for CI; `make soak`
// (DISTLOG_SOAK=1) runs the full-scale version.
func TestSoakET1WeekDiskPlateau(t *testing.T) {
	days, txnsPerDay := 7, 60
	if os.Getenv("DISTLOG_SOAK") != "" {
		txnsPerDay = 2000
	}

	l, stores, archives := openSegReplicated(t, 1, 4096)

	// One background compactor per store, ticking fast so reclamation
	// (and archive retirement) interleaves with the workload the way
	// the daemon's would.
	for i, st := range stores {
		comp := retention.NewCompactor(retention.CompactorConfig{
			Store:    st,
			Interval: time.Millisecond,
			Retire:   archives[i],
		})
		t.Cleanup(comp.Stop)
	}

	stable := NewStableStore()
	eng, err := Open(l, stable, Options{
		CheckpointEvery:      40,
		TruncateOnCheckpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	hotBytes := func() (hot int64) {
		for _, st := range stores {
			u := st.Usage()
			hot += u.LiveBytes + u.ReclaimableBytes
		}
		return hot
	}
	totalBytes := func() (total int64) {
		total = hotBytes()
		for _, a := range archives {
			total += a.Bytes()
		}
		return total
	}

	gen := workload.NewET1(workload.ET1Scale{Branches: 2, Tellers: 4, Accounts: 100}, 99)
	var dayEnd []int64
	for day := 0; day < days; day++ {
		for i := 0; i < txnsPerDay; i++ {
			if _, err := ApplyET1(eng, gen.Next()); err != nil {
				t.Fatalf("day %d txn %d: %v", day, i, err)
			}
		}
		// Day boundary: an explicit checkpoint (the nightly one), then
		// let the compactors drain what it freed — both the hot-segment
		// reclamation and the archive volume retirement it unlocks.
		if err := eng.Checkpoint(); err != nil {
			t.Fatalf("day %d checkpoint: %v", day, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			before := totalBytes()
			time.Sleep(5 * time.Millisecond)
			if totalBytes() == before || time.Now().After(deadline) {
				break
			}
		}
		dayEnd = append(dayEnd, totalBytes())
		t.Logf("day %d: total=%dB hot=%dB", day, dayEnd[day], hotBytes())
	}

	// Plateau: the total footprint — hot segments AND the cold archive
	// tier — at the end of the week must not have grown past a small
	// multiple of its day-0 value. Before volume retirement the archive
	// grew without bound and only the hot bytes could be gated; now a
	// full volume below every truncation floor is deleted wholesale, so
	// the whole disk is bounded.
	if dayEnd[days-1] > 3*dayEnd[0] {
		t.Fatalf("total disk footprint grew across the week: day0=%dB day%d=%dB (no plateau)",
			dayEnd[0], days-1, dayEnd[days-1])
	}
	// And reclamation really happened: the log volume written dwarfs
	// what remains on disk.
	written := int64(eng.Stats().LogBytes)
	if written < 5*dayEnd[days-1] {
		t.Fatalf("workload too small to demonstrate reclamation: wrote %dB, total %dB", written, dayEnd[days-1])
	}
	// Retirement really happened too: volumes were unlinked, and what
	// the directory still holds is exactly what the archive accounts
	// for — nothing lingers after its boundary passed it.
	var retired uint64
	for _, a := range archives {
		retired += a.Retired()
		onDisk := countVolumeFiles(t, a.Dir())
		if onDisk != a.Volumes() {
			t.Fatalf("archive %s: %d vol-*.log files on disk, accounts for %d", a.Dir(), onDisk, a.Volumes())
		}
	}
	if retired == 0 {
		t.Fatal("no archive volume was retired across the week")
	}

	// Cursor continuity: a forward scan from the truncation floor must
	// return exactly the live suffix — every LSN from the floor to the
	// end, in order, whether served from hot segments or the archive,
	// with nothing resurfacing from retired volumes.
	cur, err := l.OpenCursor(l.Truncated(), core.Forward)
	if err != nil {
		t.Fatalf("opening cursor at floor %d: %v", l.Truncated(), err)
	}
	defer cur.Close()
	want := l.Truncated()
	for {
		rec, err := cur.Next()
		if errors.Is(err, core.ErrBeyondEnd) {
			break
		}
		if err != nil {
			t.Fatalf("cursor scan at LSN %d: %v", want, err)
		}
		if rec.LSN != want {
			t.Fatalf("cursor scan: got LSN %d, want %d", rec.LSN, want)
		}
		want++
	}
	if want != l.EndOfLog()+1 {
		t.Fatalf("cursor scan stopped at %d, end of log is %d", want, l.EndOfLog())
	}

	// Checkpoint-bounded recovery: the truncation point tracks the end
	// of the log, so a restart replays a bounded tail, not the week.
	end, floor := l.EndOfLog(), l.Truncated()
	if floor == 0 || end-floor > record.LSN(10*40+50) {
		t.Fatalf("replay window not bounded by checkpoints: end=%d floor=%d (window %d)", end, floor, end-floor)
	}

	// The recovered engine must come up from the checkpoint and commit.
	eng2, err := Open(l, stable, Options{TruncateOnCheckpoint: true})
	if err != nil {
		t.Fatalf("post-week recovery: %v", err)
	}
	if _, err := ApplyET1(eng2, gen.Next()); err != nil {
		t.Fatalf("post-recovery transaction: %v", err)
	}
}
