package recman

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"distlog/internal/core"
	"distlog/internal/record"
	"distlog/internal/retention"
	"distlog/internal/server"
	"distlog/internal/storage"
	"distlog/internal/transport"
	"distlog/internal/workload"
)

// openSegReplicated starts a 3-server memnet cluster over segmented
// stores with a cold archive tier and opens a replicated log over it.
func openSegReplicated(t *testing.T, id record.ClientID, segBytes int64) (*core.ReplicatedLog, []*storage.SegStore) {
	t.Helper()
	net := transport.NewNetwork(7)
	dir := t.TempDir()
	names := []string{"r1", "r2", "r3"}
	var stores []*storage.SegStore
	for _, name := range names {
		arch, err := retention.OpenArchive(filepath.Join(dir, name, "archive"))
		if err != nil {
			t.Fatal(err)
		}
		st, err := storage.OpenSegStore(filepath.Join(dir, name, "segs"), storage.SegOptions{
			SegmentBytes: segBytes,
			Archive:      arch,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close(); arch.Close() })
		stores = append(stores, st)
		srv := server.New(server.Config{
			Name:     name,
			Store:    st,
			Endpoint: net.Endpoint(name),
			Epochs:   server.NewMemEpochHost(),
		})
		srv.Start()
		t.Cleanup(srv.Stop)
	}
	l, err := core.Open(core.Config{
		ClientID:    id,
		Servers:     names,
		N:           2,
		Endpoint:    net.Endpoint(fmt.Sprintf("client-%d", id)),
		CallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, stores
}

// TestSoakET1WeekDiskPlateau is the log-space-management soak of
// Section 5.3: an ET1 transaction stream with periodic sharp
// checkpoints runs for a simulated week over segmented stores with
// background compactors, and the online (hot-segment) disk footprint
// must plateau — reclamation keeps pace with the log stream — while
// the checkpoints keep the recovery replay window bounded.
//
// The default run is a miniature week sized for CI; `make soak`
// (DISTLOG_SOAK=1) runs the full-scale version.
func TestSoakET1WeekDiskPlateau(t *testing.T) {
	days, txnsPerDay := 7, 60
	if os.Getenv("DISTLOG_SOAK") != "" {
		txnsPerDay = 2000
	}

	l, stores := openSegReplicated(t, 1, 4096)

	// One background compactor per store, ticking fast so reclamation
	// interleaves with the workload the way the daemon's would.
	for _, st := range stores {
		comp := retention.NewCompactor(retention.CompactorConfig{
			Store:    st,
			Interval: time.Millisecond,
		})
		t.Cleanup(comp.Stop)
	}

	stable := NewStableStore()
	eng, err := Open(l, stable, Options{
		CheckpointEvery:      40,
		TruncateOnCheckpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	hotBytes := func() (hot int64) {
		for _, st := range stores {
			u := st.Usage()
			hot += u.LiveBytes + u.ReclaimableBytes
		}
		return hot
	}

	gen := workload.NewET1(workload.ET1Scale{Branches: 2, Tellers: 4, Accounts: 100}, 99)
	var dayEnd []int64
	for day := 0; day < days; day++ {
		for i := 0; i < txnsPerDay; i++ {
			if _, err := ApplyET1(eng, gen.Next()); err != nil {
				t.Fatalf("day %d txn %d: %v", day, i, err)
			}
		}
		// Day boundary: an explicit checkpoint (the nightly one), then
		// let the compactors drain what it freed.
		if err := eng.Checkpoint(); err != nil {
			t.Fatalf("day %d checkpoint: %v", day, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			before := hotBytes()
			time.Sleep(5 * time.Millisecond)
			if hotBytes() == before || time.Now().After(deadline) {
				break
			}
		}
		dayEnd = append(dayEnd, hotBytes())
		t.Logf("day %d: hot=%dB", day, dayEnd[day])
	}

	// Plateau: the hot footprint at the end of the week must not have
	// grown past a small multiple of its day-0 value. (The archive tier
	// grows by design — it is the spooled write-once media of Section
	// 5.3 — so only online segment bytes are bounded.)
	if dayEnd[days-1] > 3*dayEnd[0] {
		t.Fatalf("hot disk footprint grew across the week: day0=%dB day%d=%dB (no plateau)",
			dayEnd[0], days-1, dayEnd[days-1])
	}
	// And reclamation really happened: the log volume written dwarfs
	// what remains online.
	written := int64(eng.Stats().LogBytes)
	if written < 5*dayEnd[days-1] {
		t.Fatalf("workload too small to demonstrate reclamation: wrote %dB, hot %dB", written, dayEnd[days-1])
	}

	// Checkpoint-bounded recovery: the truncation point tracks the end
	// of the log, so a restart replays a bounded tail, not the week.
	end, floor := l.EndOfLog(), l.Truncated()
	if floor == 0 || end-floor > record.LSN(10*40+50) {
		t.Fatalf("replay window not bounded by checkpoints: end=%d floor=%d (window %d)", end, floor, end-floor)
	}

	// The recovered engine must come up from the checkpoint and commit.
	eng2, err := Open(l, stable, Options{TruncateOnCheckpoint: true})
	if err != nil {
		t.Fatalf("post-week recovery: %v", err)
	}
	if _, err := ApplyET1(eng2, gen.Next()); err != nil {
		t.Fatalf("post-recovery transaction: %v", err)
	}
}
