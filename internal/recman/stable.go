package recman

import (
	"encoding/json"
	"os"
	"sync"
)

// StableStore models the database's non-volatile storage (the "disk
// version" of every page). It survives engine crashes: the harness (or
// application) keeps the object — or a file behind it — and hands it
// to the recovering engine, exactly as a disk would persist.
type StableStore struct {
	mu   sync.Mutex
	vals map[string]int64
}

// NewStableStore returns an empty stable store.
func NewStableStore() *StableStore {
	return &StableStore{vals: make(map[string]int64)}
}

// Get returns the stored value for key (zero when absent).
func (s *StableStore) Get(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[key]
}

// Set durably stores the value for key.
func (s *StableStore) Set(key string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[key] = v
}

// Len returns the number of stored keys.
func (s *StableStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// Snapshot returns a copy of the whole store.
func (s *StableStore) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.vals))
	for k, v := range s.vals {
		out[k] = v
	}
	return out
}

// SaveFile writes the store to a JSON file (for the command-line
// examples, whose "disk" is a real file).
func (s *StableStore) SaveFile(path string) error {
	data, err := json.Marshal(s.Snapshot())
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadStableStore reads a store saved by SaveFile; a missing file
// yields an empty store.
func LoadStableStore(path string) (*StableStore, error) {
	s := NewStableStore()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &s.vals); err != nil {
		return nil, err
	}
	return s, nil
}
