package recman

import (
	"errors"
	"fmt"

	"distlog/internal/core"
	"distlog/internal/record"
)

// streamedLog is the optional log capability behind parallel
// multi-stream logging; *core.ReplicatedLog implements it. When the log
// was opened with K > 1 streams the engine spreads its transactions
// across them — a transaction's update and ender records all go to one
// stream (id mod K), so K committers force K independent send windows
// instead of serializing on one — and recovery replays the K streams in
// parallel through the merged dependency-ordered cursor.
type streamedLog interface {
	Streams() int
	Stream(i int) *core.Stream
	OpenMergedCursor() (*core.MergedCursor, error)
}

// initStreams detects the multi-stream capability. Called once from
// Open before recovery.
func (e *Engine) initStreams() {
	sl, ok := e.log.(streamedLog)
	if !ok || sl.Streams() <= 1 {
		return
	}
	e.streams = make([]*core.Stream, sl.Streams())
	for i := range e.streams {
		e.streams[i] = sl.Stream(i)
	}
}

// txnStream returns the stream a transaction logs on.
func (e *Engine) txnStream(id uint64) int {
	if e.streams == nil {
		return 0
	}
	return int(id % uint64(len(e.streams)))
}

// appendTxnLog writes one engine record to the transaction's stream.
func (e *Engine) appendTxnLog(t *Txn, r *logRec) (record.LSN, error) {
	if e.streams == nil {
		return e.appendLog(r)
	}
	return e.appendVia(e.streams[t.stream].WriteLog, r)
}

// appendTxnEnder writes a transaction's commit or abort record. On a
// multi-stream log the ender is a commit-class record: it carries the
// dependency vector over the sibling streams, which is what lets
// dependency-ordered recovery replay this transaction's block after
// everything it could have observed.
func (e *Engine) appendTxnEnder(t *Txn, r *logRec) (record.LSN, error) {
	if e.streams == nil {
		return e.appendLog(r)
	}
	return e.appendVia(e.streams[t.stream].WriteCommit, r)
}

// forceTxn forces the transaction's own stream: every record the
// transaction wrote lives there, so its durability needs nothing from
// the siblings.
func (e *Engine) forceTxn(t *Txn) error {
	if e.streams == nil {
		return e.log.Force()
	}
	return e.streams[t.stream].Force()
}

// readTxnRecord reads back one of the transaction's own update records
// (combined-mode abort).
func (e *Engine) readTxnRecord(t *Txn, lsn record.LSN) (record.Record, error) {
	if e.streams == nil {
		return e.log.ReadRecord(lsn)
	}
	return e.streams[t.stream].ReadRecord(lsn)
}

// forceAll forces every stream. Page cleaning needs it: the WAL rule
// requires the undo information of whatever value is about to be
// written durable first, and on a multi-stream log that information
// lives on the stream of whichever transaction wrote the value — any
// of them.
func (e *Engine) forceAll() error {
	if e.streams == nil {
		return e.log.Force()
	}
	for _, s := range e.streams {
		if err := s.Force(); err != nil {
			return err
		}
	}
	return nil
}

// checkpointStreams writes the engine checkpoint to every stream. The
// engine is quiesced, so the K markers form a consistent cut: no
// transaction's records straddle its stream's marker. Each stream's
// marker advances that stream's truncation point when enabled.
func (e *Engine) checkpointStreams() error {
	data := (&logRec{op: opCheckpoint}).encode()
	for i, s := range e.streams {
		if e.opts.TruncateOnCheckpoint {
			if _, err := s.Checkpoint(data); err != nil {
				return fmt.Errorf("recman: checkpoint stream %d: %w", i, err)
			}
		} else {
			if _, err := s.WriteLog(data); err != nil {
				return fmt.Errorf("recman: checkpoint stream %d: %w", i, err)
			}
			if err := s.Force(); err != nil {
				return fmt.Errorf("recman: checkpoint stream %d: %w", i, err)
			}
		}
		e.mu.Lock()
		e.stats.LogRecords++
		e.stats.LogBytes += uint64(len(data))
		e.mu.Unlock()
	}
	return nil
}

// recoverStreams rebuilds the committed state from a K-stream log.
//
// The merged cursor yields all K streams as one dependency-ordered
// sequence; each stream's records arrive through its own prefetching
// cursor, so the K scans proceed in parallel on the wire. Raw update
// records carry no dependency vectors — only the enders do — so the
// merged order of two updates from different streams is not, by itself,
// meaningful. Recovery therefore applies transactions as blocks: a
// transaction's updates are applied at its *ender's* merged position.
// Under strict 2PL two transactions that touched the same key are
// lock-ordered, the later one read the key after the earlier one's
// ender was appended, and its own ender's dependency vector places it
// after the earlier ender in the merge — so ender order extends every
// per-key conflict order, which is exactly what value-logging replay
// needs. Transactions with no ender (in-flight at the crash) are
// applied after all ended blocks and then undone in reverse, as in
// single-stream recovery; strict 2PL guarantees their undo values are
// the latest committed values, so their position among themselves is
// immaterial.
func (e *Engine) recoverStreams() error {
	sl := e.log.(streamedLog)
	mc, err := sl.OpenMergedCursor()
	if err != nil {
		return fmt.Errorf("recman: merged recovery scan open: %w", err)
	}
	defer mc.Close()

	type ev struct {
		pos    int
		stream int
		rec    *logRec
	}
	var events []ev
	ckptPos := make([]int, len(e.streams))
	for i := range ckptPos {
		ckptPos[i] = -1
	}
	maxTxn := uint64(0)
	pos := 0
	for {
		sr, err := mc.Next()
		if errors.Is(err, core.ErrBeyondEnd) {
			break
		}
		if err != nil {
			return fmt.Errorf("recman: merged recovery scan: %w", err)
		}
		p := pos
		pos++
		if !sr.Present {
			continue // crash-recovery marker in the replicated log
		}
		r, err := decodeLogRec(sr.Data)
		if err != nil {
			return fmt.Errorf("recman: recovery decode of stream %d LSN %d: %w", sr.Stream, sr.LSN, err)
		}
		if r.txn > maxTxn {
			maxTxn = r.txn
		}
		if r.op == opCheckpoint {
			if !e.opts.FullReplay {
				// Sharp per-stream cut: everything earlier on this stream
				// is already reflected in the stable store.
				ckptPos[sr.Stream] = p
			}
			continue
		}
		events = append(events, ev{pos: p, stream: sr.Stream, rec: r})
	}

	// Drop everything before each stream's last checkpoint marker.
	// Within a stream the merge preserves LSN order, so position against
	// the marker is position against the cut; the engine quiesces before
	// checkpointing, so no transaction straddles it.
	kept := events[:0]
	for _, v := range events {
		if v.pos > ckptPos[v.stream] {
			kept = append(kept, v)
		}
	}

	// Group by transaction; remember each ender's merged position.
	type txnInfo struct {
		updates   []*logRec
		enderPos  int
		committed bool
	}
	txns := make(map[uint64]*txnInfo)
	info := func(id uint64) *txnInfo {
		ti := txns[id]
		if ti == nil {
			ti = &txnInfo{enderPos: -1}
			txns[id] = ti
		}
		return ti
	}
	var enderOrder []uint64
	for _, v := range kept {
		switch v.rec.op {
		case opUpdate, opRedo, opUndo:
			info(v.rec.txn).updates = append(info(v.rec.txn).updates, v.rec)
		case opCommit, opAbort:
			ti := info(v.rec.txn)
			if ti.enderPos < 0 {
				enderOrder = append(enderOrder, v.rec.txn)
			}
			ti.enderPos = v.pos
			ti.committed = v.rec.op == opCommit
		}
	}

	winners := 0
	for _, ti := range txns {
		if ti.committed {
			winners++
		}
	}

	if e.split == nil {
		// Combined value logging: ended transactions' update blocks in
		// ender order (commits and completed aborts alike — an aborted
		// block nets out to its compensations)...
		for _, id := range enderOrder {
			for _, r := range txns[id].updates {
				if r.op == opUpdate {
					e.stable.Set(r.key, r.newVal)
				}
			}
		}
		// ...then in-flight losers: redo their stolen-capable updates,
		// then undo them in reverse.
		var inflight []ev
		for _, v := range kept {
			if v.rec.op == opUpdate && txns[v.rec.txn].enderPos < 0 {
				inflight = append(inflight, v)
			}
		}
		losers := make(map[uint64]bool)
		for _, v := range inflight {
			losers[v.rec.txn] = true
			e.stable.Set(v.rec.key, v.rec.newVal)
		}
		for i := len(inflight) - 1; i >= 0; i-- {
			e.stable.Set(inflight[i].rec.key, inflight[i].rec.oldVal)
		}
		e.stats.RecoveredWinners = winners
		e.stats.RecoveredLosers = len(losers)
	} else {
		// Split: winners' redo blocks at ender positions, tracking the
		// ender position as the key's last winner write...
		lastWinnerWrite := make(map[string]int)
		for _, id := range enderOrder {
			ti := txns[id]
			if !ti.committed {
				continue
			}
			for _, r := range ti.updates {
				if r.op == opRedo {
					e.stable.Set(r.key, r.newVal)
					lastWinnerWrite[r.key] = ti.enderPos
				}
			}
		}
		// ...then non-winners' logged undo components in reverse merged
		// order, where no winner's ender came later.
		losers := make(map[uint64]bool)
		for i := len(kept) - 1; i >= 0; i-- {
			v := kept[i]
			if v.rec.op != opUndo {
				continue
			}
			if ti := txns[v.rec.txn]; ti.committed {
				continue
			}
			losers[v.rec.txn] = true
			if lw, ok := lastWinnerWrite[v.rec.key]; !ok || v.pos > lw {
				e.stable.Set(v.rec.key, v.rec.oldVal)
			}
		}
		e.stats.RecoveredWinners = winners
		e.stats.RecoveredLosers = len(losers)
	}
	e.nextTxn = maxTxn
	return nil
}
