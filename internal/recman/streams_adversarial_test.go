package recman

import (
	"fmt"
	"testing"
	"time"

	"distlog/internal/core"
	"distlog/internal/faultpoint"
	"distlog/internal/record"
	"distlog/internal/server"
	"distlog/internal/storage"
	"distlog/internal/transport"
	"distlog/internal/workload"
)

// TestMultiStreamRecoveryEquivalence is the adversarial multi-stream
// check: the identical deterministic transaction history — committed
// ET1 transactions, a completed abort, and in-flight losers with stolen
// pages — runs once on a single-stream log and once spread over K=4
// streams, both over a lossy, duplicating, reordering network. Both
// engines then crash without a clean shutdown and recover under the
// same faults; the K=4 recovery additionally loses one of its write-set
// holders mid-merge (armed on the recman.merge.before-apply point), so
// the dependency-ordered replay must fail over to the surviving copies.
// The two recovered stable stores must match byte for byte.
func TestMultiStreamRecoveryEquivalence(t *testing.T) {
	modes(t, func(t *testing.T, opts Options) {
		run := func(streams int, killHolder bool) map[string]int64 {
			net := transport.NewNetwork(11)
			names := []string{"m1", "m2", "m3", "m4"}
			servers := make(map[string]*server.Server)
			for _, name := range names {
				srv := server.New(server.Config{
					Name:     name,
					Store:    storage.NewMemStore(),
					Endpoint: net.Endpoint(name),
					Epochs:   server.NewMemEpochHost(),
				})
				srv.Start()
				servers[name] = srv
				t.Cleanup(srv.Stop)
			}
			// Lossy, duplicating, reordering — but not partitioned: the
			// client protocol must retry through it.
			net.SetFaults(transport.Faults{
				DropProb: 0.03,
				DupProb:  0.03,
				MaxDelay: 2 * time.Millisecond,
			})
			open := func() *core.ReplicatedLog {
				l, err := core.Open(core.Config{
					ClientID:    1,
					Servers:     names,
					N:           2,
					Streams:     streams,
					Endpoint:    net.Endpoint("client-1"),
					CallTimeout: 100 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				return l
			}

			l := open()
			stable := NewStableStore()
			e := openEngine(t, l, stable, opts)

			// The deterministic history: same generator seed and count in
			// both runs.
			scale := workload.ET1Scale{Branches: 2, Tellers: 4, Accounts: 40}
			gen := workload.NewET1(scale, 9)
			for i := 0; i < 30; i++ {
				if _, err := ApplyET1(e, gen.Next()); err != nil {
					t.Fatal(err)
				}
			}
			ab := e.Begin()
			if _, err := ab.Add("account-1", 500); err != nil {
				t.Fatal(err)
			}
			if err := ab.Abort(); err != nil {
				t.Fatal(err)
			}
			// In-flight losers whose pages are stolen into the stable
			// store: the state the undo side of merged replay exists for.
			loser1 := e.Begin()
			if _, err := loser1.Add("account-2", 700); err != nil {
				t.Fatal(err)
			}
			loser2 := e.Begin()
			if _, err := loser2.Add("teller-1", 900); err != nil {
				t.Fatal(err)
			}
			for _, key := range []string{"account-2", "teller-1"} {
				if err := e.FlushKey(key); err != nil {
					t.Fatal(err)
				}
			}
			// Crash: no checkpoint, no engine shutdown — the node just
			// dies with loser1/loser2 in flight.
			dirty := stable.Snapshot()
			l.Close()

			restored := NewStableStore()
			for k, v := range dirty {
				restored.Set(k, v)
			}
			l2 := open()
			t.Cleanup(func() { l2.Close() })
			if killHolder {
				// The 5th merged yield stops one server of the write set:
				// every stream loses one of its two record copies
				// mid-scan and the cursors must fail over.
				victim := l2.WriteSet()[0]
				faultpoint.Arm(core.FPMergeBeforeApply, 5, func() {
					servers[victim].Stop()
				})
				defer faultpoint.Disarm(core.FPMergeBeforeApply)
			}
			e2 := openEngine(t, l2, restored, opts)
			if killHolder && !faultpoint.Fired(core.FPMergeBeforeApply) {
				t.Fatal("recovery never reached the merge point")
			}
			if e2.Stats().RecoveredWinners == 0 {
				t.Fatal("recovery replayed no winners")
			}
			if e2.Stats().RecoveredLosers == 0 {
				t.Fatal("seeded history produced no losers")
			}
			return restored.Snapshot()
		}

		want := run(1, false)
		got := run(4, true)
		if len(got) != len(want) {
			t.Fatalf("recovered stores diverge: %d keys multi-stream, %d single", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("recovered stores diverge at %q: multi-stream %d, single %d", k, got[k], v)
			}
		}
	})
}

// TestMultiStreamEngineSpreadsTransactions pins the stream assignment:
// with K streams every stream carries log records, and a transaction's
// records never span streams (its commit durability forces one stream).
func TestMultiStreamEngineSpreadsTransactions(t *testing.T) {
	net := transport.NewNetwork(5)
	names := []string{"p1", "p2", "p3"}
	for _, name := range names {
		srv := server.New(server.Config{
			Name:     name,
			Store:    storage.NewMemStore(),
			Endpoint: net.Endpoint(name),
			Epochs:   server.NewMemEpochHost(),
		})
		srv.Start()
		t.Cleanup(srv.Stop)
	}
	l, err := core.Open(core.Config{
		ClientID:    7,
		Servers:     names,
		N:           2,
		Streams:     4,
		Endpoint:    net.Endpoint("client-7"),
		CallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	e := openEngine(t, l, NewStableStore(), Options{})

	base := make([]record.LSN, l.Streams())
	for i := range base {
		base[i] = l.Stream(i).EndOfLog()
	}
	for i := 0; i < 16; i++ {
		txn := e.Begin()
		if err := txn.Set(fmt.Sprintf("k%d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < l.Streams(); i++ {
		if grew := l.Stream(i).EndOfLog() - base[i]; grew == 0 {
			t.Fatalf("stream %d carried no records for 16 round-robin transactions", i)
		}
	}
}
