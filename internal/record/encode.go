package record

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary encodings shared by the wire protocol and the on-disk log
// stream. All integers are big-endian. A record is encoded as
//
//	LSN    uint64
//	Epoch  uint64
//	Flags  uint8   (bit 0: present; bit 1: dependency vector)
//	Len    uint32  (length of Data; always 0 when not present)
//	Data   Len bytes
//	Deps   uint16 count, then count × (Stream uint32, High uint64)
//	       — only when flags bit 1 is set
//
// and an interval as three uint64s (Epoch, Low, High). Records
// without a dependency vector encode exactly as they always have;
// frames that carry dep-vectored records are sent under a bumped wire
// protocol version so decoders that predate bit 1 reject the frame
// wholesale instead of misparsing the trailing vector (see
// internal/wire).

const (
	recordHeaderSize = 8 + 8 + 1 + 4
	streamDepSize    = 4 + 8
	// IntervalEncodedSize is the fixed encoded size of an Interval.
	IntervalEncodedSize = 24

	flagPresent = 1 << 0
	flagDeps    = 1 << 1
)

// ErrTruncated is returned when a buffer ends inside an encoded value.
var ErrTruncated = errors.New("record: truncated encoding")

// MaxDataSize bounds a single record's data. Larger writes must be
// segmented by the client before logging.
const MaxDataSize = 1 << 24

// EncodedSize returns the encoded length of the record.
func (r Record) EncodedSize() int {
	n := recordHeaderSize
	if r.Present {
		n += len(r.Data)
	}
	if len(r.Deps) > 0 {
		n += 2 + len(r.Deps)*streamDepSize
	}
	return n
}

// AppendEncode appends the record's encoding to buf and returns the
// extended slice.
func (r Record) AppendEncode(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.LSN))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Epoch))
	var flags byte
	if r.Present {
		flags |= flagPresent
	}
	if len(r.Deps) > 0 {
		flags |= flagDeps
	}
	buf = append(buf, flags)
	if r.Present {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Data)))
		buf = append(buf, r.Data...)
	} else {
		buf = binary.BigEndian.AppendUint32(buf, 0)
	}
	if len(r.Deps) > 0 {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Deps)))
		for _, d := range r.Deps {
			buf = binary.BigEndian.AppendUint32(buf, d.Stream)
			buf = binary.BigEndian.AppendUint64(buf, uint64(d.High))
		}
	}
	return buf
}

// DecodeRecord decodes one record from the front of buf, returning the
// record and the number of bytes consumed. The record's Data is copied
// out of buf, so the buffer may be reused afterwards.
func DecodeRecord(buf []byte) (Record, int, error) {
	r, total, err := DecodeRecordAlias(buf)
	if err == nil && len(r.Data) > 0 {
		r.Data = append([]byte(nil), r.Data...)
	}
	return r, total, err
}

// DecodeRecordAlias decodes like DecodeRecord but the record's Data
// aliases buf (zero-copy). The caller must not reuse buf while the
// record is live, or must Clone records it retains.
func DecodeRecordAlias(buf []byte) (Record, int, error) {
	if len(buf) < recordHeaderSize {
		return Record{}, 0, ErrTruncated
	}
	var r Record
	r.LSN = LSN(binary.BigEndian.Uint64(buf[0:8]))
	r.Epoch = Epoch(binary.BigEndian.Uint64(buf[8:16]))
	flags := buf[16]
	r.Present = flags&flagPresent != 0
	n := binary.BigEndian.Uint32(buf[17:21])
	if n > MaxDataSize {
		return Record{}, 0, fmt.Errorf("record: data length %d exceeds limit", n)
	}
	total := recordHeaderSize + int(n)
	if len(buf) < total {
		return Record{}, 0, ErrTruncated
	}
	if n > 0 {
		r.Data = buf[recordHeaderSize:total:total]
	}
	if flags&flagDeps != 0 {
		if len(buf) < total+2 {
			return Record{}, 0, ErrTruncated
		}
		cnt := int(binary.BigEndian.Uint16(buf[total : total+2]))
		total += 2
		if len(buf) < total+cnt*streamDepSize {
			return Record{}, 0, ErrTruncated
		}
		r.Deps = make([]StreamDep, cnt)
		for i := 0; i < cnt; i++ {
			r.Deps[i].Stream = binary.BigEndian.Uint32(buf[total : total+4])
			r.Deps[i].High = LSN(binary.BigEndian.Uint64(buf[total+4 : total+12]))
			total += streamDepSize
		}
	}
	return r, total, nil
}

// AppendEncode appends the interval's encoding to buf.
func (iv Interval) AppendEncode(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(iv.Epoch))
	buf = binary.BigEndian.AppendUint64(buf, uint64(iv.Low))
	return binary.BigEndian.AppendUint64(buf, uint64(iv.High))
}

// DecodeInterval decodes one interval from the front of buf.
func DecodeInterval(buf []byte) (Interval, int, error) {
	if len(buf) < IntervalEncodedSize {
		return Interval{}, 0, ErrTruncated
	}
	return Interval{
		Epoch: Epoch(binary.BigEndian.Uint64(buf[0:8])),
		Low:   LSN(binary.BigEndian.Uint64(buf[8:16])),
		High:  LSN(binary.BigEndian.Uint64(buf[16:24])),
	}, IntervalEncodedSize, nil
}

// EncodeIntervals encodes a length-prefixed interval list.
func EncodeIntervals(buf []byte, ivs []Interval) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ivs)))
	for _, iv := range ivs {
		buf = iv.AppendEncode(buf)
	}
	return buf
}

// DecodeIntervals decodes a length-prefixed interval list.
func DecodeIntervals(buf []byte) ([]Interval, int, error) {
	if len(buf) < 4 {
		return nil, 0, ErrTruncated
	}
	n := int(binary.BigEndian.Uint32(buf))
	off := 4
	if n > (len(buf)-off)/IntervalEncodedSize {
		return nil, 0, ErrTruncated
	}
	ivs := make([]Interval, 0, n)
	for i := 0; i < n; i++ {
		iv, used, err := DecodeInterval(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		ivs = append(ivs, iv)
		off += used
	}
	return ivs, off, nil
}

// EncodeRecords encodes a length-prefixed record list.
func EncodeRecords(buf []byte, recs []Record) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(recs)))
	for _, r := range recs {
		buf = r.AppendEncode(buf)
	}
	return buf
}

// DecodeRecords decodes a length-prefixed record list. Record data is
// copied out of buf.
func DecodeRecords(buf []byte) ([]Record, int, error) {
	return decodeRecords(buf, false)
}

// DecodeRecordsAlias decodes like DecodeRecords but the records' Data
// alias buf (zero-copy); see DecodeRecordAlias for the ownership rule.
func DecodeRecordsAlias(buf []byte) ([]Record, int, error) {
	return decodeRecords(buf, true)
}

func decodeRecords(buf []byte, alias bool) ([]Record, int, error) {
	if len(buf) < 4 {
		return nil, 0, ErrTruncated
	}
	n := int(binary.BigEndian.Uint32(buf))
	off := 4
	if n < 0 || n > len(buf) { // each record needs at least one byte of header
		return nil, 0, ErrTruncated
	}
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		var r Record
		var used int
		var err error
		if alias {
			r, used, err = DecodeRecordAlias(buf[off:])
		} else {
			r, used, err = DecodeRecord(buf[off:])
		}
		if err != nil {
			return nil, 0, err
		}
		recs = append(recs, r)
		off += used
	}
	return recs, off, nil
}
