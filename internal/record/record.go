// Package record defines the shared vocabulary of the distributed
// logging system: log sequence numbers, epochs, log records, and the
// interval lists that log servers report to restarting clients.
//
// The definitions follow Section 3.1 of Daniels, Spector & Thompson,
// "Distributed Logging for Transaction Processing" (SIGMOD 1987):
// a record is uniquely identified by an <LSN, Epoch> pair, successive
// records on a log server have non-decreasing LSNs and non-decreasing
// epoch numbers, and servers group records into sequences (intervals)
// that share an epoch and have consecutive LSNs.
package record

import (
	"errors"
	"fmt"
	"sort"
)

// LSN is a log sequence number. LSNs identify records in a replicated
// log and are assigned by the client in strictly increasing order,
// starting at 1. LSN 0 is reserved and means "no record".
type LSN uint64

// Epoch numbers are non-decreasing integers issued by the replicated
// identifier generator. All records written between two client
// restarts carry the same epoch. Epoch 0 is reserved.
type Epoch uint64

// ClientID identifies the single transaction-processing node that owns
// a replicated log. Log servers store portions of many clients' logs.
type ClientID uint64

// Record is a log record as stored on a log server. In addition to the
// client's log data and the LSN, server-side records carry the epoch
// number and the present flag (Section 3.1.1). If Present is false the
// record is a placeholder written by client recovery and carries no
// data.
type Record struct {
	LSN     LSN
	Epoch   Epoch
	Present bool
	Data    []byte
	// Deps is the Taurus-style dependency vector stamped on
	// commit-class records of a multi-stream log: for each other
	// stream, the highest LSN that stream had appended when this
	// record was created. Recovery replays streams in parallel and
	// orders records by these vectors instead of a total order.
	// Nil for ordinary records; records with deps use a
	// version-gated wire framing (see internal/wire).
	Deps []StreamDep
}

// StreamDep is one entry of a dependency vector: everything on Stream
// up to and including High must be applied before the record carrying
// the vector.
type StreamDep struct {
	Stream uint32
	High   LSN
}

// Key identifies a record uniquely on a server.
type Key struct {
	LSN   LSN
	Epoch Epoch
}

// Key returns the record's unique <LSN, Epoch> identifier.
func (r Record) Key() Key { return Key{r.LSN, r.Epoch} }

// Clone returns a deep copy of the record. Stores hand out clones so
// callers cannot alias buffered log data.
func (r Record) Clone() Record {
	c := r
	if r.Data != nil {
		c.Data = make([]byte, len(r.Data))
		copy(c.Data, r.Data)
	}
	if r.Deps != nil {
		c.Deps = make([]StreamDep, len(r.Deps))
		copy(c.Deps, r.Deps)
	}
	return c
}

func (r Record) String() string {
	p := "yes"
	if !r.Present {
		p = "no"
	}
	return fmt.Sprintf("<%d,%d> present=%s len=%d", r.LSN, r.Epoch, p, len(r.Data))
}

// Interval describes one consecutive sequence of records stored on a
// log server: all records share Epoch and cover the LSNs Low..High
// inclusive. Interval lists are exchanged at client initialization.
type Interval struct {
	Epoch Epoch
	Low   LSN
	High  LSN
}

// Contains reports whether the interval covers the given LSN.
func (iv Interval) Contains(lsn LSN) bool { return iv.Low <= lsn && lsn <= iv.High }

// Len returns the number of LSNs covered by the interval.
func (iv Interval) Len() uint64 { return uint64(iv.High) - uint64(iv.Low) + 1 }

func (iv Interval) String() string {
	return fmt.Sprintf("(<%d,%d>..<%d,%d>)", iv.Low, iv.Epoch, iv.High, iv.Epoch)
}

// Validation errors for server-side append sequencing.
var (
	// ErrLSNRegression is returned when an appended record's LSN is
	// lower than the last LSN stored for the client.
	ErrLSNRegression = errors.New("record: LSN lower than last stored LSN")
	// ErrEpochRegression is returned when an appended record's epoch is
	// lower than the last epoch stored for the client.
	ErrEpochRegression = errors.New("record: epoch lower than last stored epoch")
	// ErrDuplicate is returned when a record with the same <LSN, Epoch>
	// already exists.
	ErrDuplicate = errors.New("record: duplicate <LSN, epoch> pair")
	// ErrZero is returned for the reserved zero LSN or epoch.
	ErrZero = errors.New("record: zero LSN or epoch is reserved")
)

// ValidateAppend checks the server-side sequencing rules of Section
// 3.1.1 for appending rec after a record with identifiers lastLSN and
// lastEpoch (both zero when the client has no records yet). It returns
// nil when the append is legal.
//
// The rules: LSNs and epochs are non-decreasing across successive
// records, and equal LSNs must carry a strictly higher epoch (the same
// <LSN, Epoch> pair may not be written twice).
func ValidateAppend(lastLSN LSN, lastEpoch Epoch, rec Record) error {
	if rec.LSN == 0 || rec.Epoch == 0 {
		return ErrZero
	}
	if lastLSN == 0 && lastEpoch == 0 {
		return nil
	}
	if rec.LSN < lastLSN {
		return fmt.Errorf("%w: %d after %d", ErrLSNRegression, rec.LSN, lastLSN)
	}
	if rec.Epoch < lastEpoch {
		return fmt.Errorf("%w: %d after %d", ErrEpochRegression, rec.Epoch, lastEpoch)
	}
	if rec.LSN == lastLSN && rec.Epoch == lastEpoch {
		return fmt.Errorf("%w: <%d,%d>", ErrDuplicate, rec.LSN, rec.Epoch)
	}
	return nil
}

// ExtendIntervals appends rec's identifiers to an interval list that is
// maintained incrementally as records are appended, returning the
// updated list. A record extends the last interval when it has the same
// epoch and an LSN exactly one past the interval's High; otherwise it
// opens a new interval. The caller is responsible for having validated
// the append.
func ExtendIntervals(ivs []Interval, rec Record) []Interval {
	n := len(ivs)
	if n > 0 {
		last := &ivs[n-1]
		if rec.Epoch == last.Epoch && rec.LSN == last.High+1 {
			last.High = rec.LSN
			return ivs
		}
	}
	return append(ivs, Interval{Epoch: rec.Epoch, Low: rec.LSN, High: rec.LSN})
}

// Holder names a server that stores some interval of a client's log.
// The replication algorithm merges holders from M-N+1 servers so that
// every ReadLog can be directed at a single server.
type Holder struct {
	Server   string
	Interval Interval
}

// MergedList is the client's cached view of where log records live,
// produced by merging the interval lists returned by at least M-N+1
// log servers. For each LSN only entries with the highest epoch are
// kept (Section 3.1.2): a record <LSN, e> supersedes <LSN, e'> for all
// e' < e.
type MergedList struct {
	// entries are non-overlapping in LSN space and sorted by Low.
	entries []mergedEntry
}

type mergedEntry struct {
	epoch   Epoch
	low     LSN
	high    LSN
	servers []string
}

// Merge builds a MergedList from per-server interval lists. The map
// key is the server name.
func Merge(lists map[string][]Interval) *MergedList {
	// Collect every (epoch, low, high, server) tuple, then sweep LSN
	// space keeping, for each LSN, only the holders at the maximum
	// epoch covering it.
	type seg struct {
		iv     Interval
		server string
	}
	var segs []seg
	for server, ivs := range lists {
		for _, iv := range ivs {
			if iv.Low == 0 || iv.High < iv.Low {
				continue
			}
			segs = append(segs, seg{iv, server})
		}
	}
	// Boundary sweep: gather all interval endpoints.
	bounds := make(map[LSN]struct{})
	for _, s := range segs {
		bounds[s.iv.Low] = struct{}{}
		bounds[s.iv.High+1] = struct{}{}
	}
	pts := make([]LSN, 0, len(bounds))
	for b := range bounds {
		pts = append(pts, b)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })

	ml := &MergedList{}
	for i := 0; i+1 <= len(pts)-1; i++ {
		low, next := pts[i], pts[i+1]
		high := next - 1
		// Find max epoch covering [low, high] (uniform within the
		// elementary segment by construction).
		var maxEpoch Epoch
		for _, s := range segs {
			if s.iv.Low <= low && high <= s.iv.High && s.iv.Epoch > maxEpoch {
				maxEpoch = s.iv.Epoch
			}
		}
		if maxEpoch == 0 {
			continue
		}
		var servers []string
		for _, s := range segs {
			if s.iv.Low <= low && high <= s.iv.High && s.iv.Epoch == maxEpoch {
				servers = append(servers, s.server)
			}
		}
		sort.Strings(servers)
		ml.appendEntry(mergedEntry{epoch: maxEpoch, low: low, high: high, servers: servers})
	}
	return ml
}

func (m *MergedList) appendEntry(e mergedEntry) {
	n := len(m.entries)
	if n > 0 {
		last := &m.entries[n-1]
		if last.epoch == e.epoch && last.high+1 == e.low && equalStrings(last.servers, e.servers) {
			last.high = e.high
			return
		}
	}
	m.entries = append(m.entries, e)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// High returns the highest LSN present in the merged list, or 0 when
// the list is empty. EndOfLog operations return this value.
func (m *MergedList) High() LSN {
	if len(m.entries) == 0 {
		return 0
	}
	return m.entries[len(m.entries)-1].high
}

// EpochAt returns the epoch of the winning entry covering lsn, or 0.
func (m *MergedList) EpochAt(lsn LSN) Epoch {
	if e := m.find(lsn); e != nil {
		return e.epoch
	}
	return 0
}

// Servers returns the servers known to hold the winning (highest
// epoch) copy of lsn. The returned slice must not be modified.
func (m *MergedList) Servers(lsn LSN) []string {
	if e := m.find(lsn); e != nil {
		return e.servers
	}
	return nil
}

// Covered reports whether any server holds lsn in the merged view.
func (m *MergedList) Covered(lsn LSN) bool { return m.find(lsn) != nil }

// Segment returns the full extent of the winning entry covering lsn
// along with its holder set, or ok == false when no server holds lsn.
// Every LSN in the returned interval has the same holders and epoch, so
// range readers can fetch the whole span from one server choice. The
// returned servers slice must not be modified.
func (m *MergedList) Segment(lsn LSN) (Interval, []string, bool) {
	if e := m.find(lsn); e != nil {
		return Interval{Epoch: e.epoch, Low: e.low, High: e.high}, e.servers, true
	}
	return Interval{}, nil, false
}

func (m *MergedList) find(lsn LSN) *mergedEntry {
	lo, hi := 0, len(m.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		e := &m.entries[mid]
		switch {
		case lsn < e.low:
			hi = mid
		case lsn > e.high:
			lo = mid + 1
		default:
			return e
		}
	}
	return nil
}

// Gaps returns the LSN ranges in [1, High()] not covered by any entry.
// A non-empty result indicates that too few interval lists were merged
// (fewer than M-N+1) or a partially-written record at the tail.
func (m *MergedList) Gaps() []Interval {
	var gaps []Interval
	next := LSN(1)
	for _, e := range m.entries {
		if e.low > next {
			gaps = append(gaps, Interval{Low: next, High: e.low - 1})
		}
		if e.high+1 > next {
			next = e.high + 1
		}
	}
	return gaps
}

// Entries returns the merged view as (interval, servers) holders, for
// diagnostics and tests.
func (m *MergedList) Entries() []Holder {
	var hs []Holder
	for _, e := range m.entries {
		for _, s := range e.servers {
			hs = append(hs, Holder{Server: s, Interval: Interval{Epoch: e.epoch, Low: e.low, High: e.high}})
		}
	}
	return hs
}

// NumEntries returns the number of coalesced merged entries.
func (m *MergedList) NumEntries() int { return len(m.entries) }
