package record

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValidateAppendFirstRecord(t *testing.T) {
	if err := ValidateAppend(0, 0, Record{LSN: 1, Epoch: 1, Present: true}); err != nil {
		t.Fatalf("first append rejected: %v", err)
	}
}

func TestValidateAppendZeroReserved(t *testing.T) {
	if err := ValidateAppend(0, 0, Record{LSN: 0, Epoch: 1}); !errors.Is(err, ErrZero) {
		t.Errorf("zero LSN: got %v, want ErrZero", err)
	}
	if err := ValidateAppend(0, 0, Record{LSN: 1, Epoch: 0}); !errors.Is(err, ErrZero) {
		t.Errorf("zero epoch: got %v, want ErrZero", err)
	}
}

func TestValidateAppendRules(t *testing.T) {
	cases := []struct {
		name      string
		lastLSN   LSN
		lastEpoch Epoch
		lsn       LSN
		epoch     Epoch
		wantErr   error
	}{
		{"consecutive same epoch", 5, 3, 6, 3, nil},
		{"gap same epoch ok", 5, 3, 9, 3, nil},
		{"same LSN higher epoch ok", 5, 3, 5, 4, nil},
		{"lower LSN rejected", 5, 3, 4, 3, ErrLSNRegression},
		{"lower LSN higher epoch rejected", 5, 3, 4, 4, ErrLSNRegression},
		{"lower epoch rejected", 5, 3, 6, 2, ErrEpochRegression},
		{"duplicate pair rejected", 5, 3, 5, 3, ErrDuplicate},
		{"epoch jump ok", 5, 3, 5, 9, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateAppend(c.lastLSN, c.lastEpoch, Record{LSN: c.lsn, Epoch: c.epoch, Present: true})
			if c.wantErr == nil && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if c.wantErr != nil && !errors.Is(err, c.wantErr) {
				t.Fatalf("got %v, want %v", err, c.wantErr)
			}
		})
	}
}

func TestExtendIntervals(t *testing.T) {
	var ivs []Interval
	ivs = ExtendIntervals(ivs, Record{LSN: 1, Epoch: 1})
	ivs = ExtendIntervals(ivs, Record{LSN: 2, Epoch: 1})
	ivs = ExtendIntervals(ivs, Record{LSN: 3, Epoch: 1})
	ivs = ExtendIntervals(ivs, Record{LSN: 3, Epoch: 3}) // same LSN, new epoch: new interval
	ivs = ExtendIntervals(ivs, Record{LSN: 4, Epoch: 3})
	ivs = ExtendIntervals(ivs, Record{LSN: 9, Epoch: 3}) // gap: new interval
	want := []Interval{
		{Epoch: 1, Low: 1, High: 3},
		{Epoch: 3, Low: 3, High: 4},
		{Epoch: 3, Low: 9, High: 9},
	}
	if !reflect.DeepEqual(ivs, want) {
		t.Fatalf("intervals = %v, want %v", ivs, want)
	}
}

// TestMergeFigure31 merges the interval lists of the three servers in
// Figure 3.1 of the paper and checks that the replicated log consists
// of the records the paper states: (<1,1>..<2,1>), (<3,3>), and
// (<5,3>..<9,3>), with record 4 marked not-present (still covered in
// the merged list; present-flag handling is the reader's concern).
func TestMergeFigure31(t *testing.T) {
	lists := map[string][]Interval{
		"s1": {{Epoch: 1, Low: 1, High: 3}, {Epoch: 3, Low: 3, High: 9}},
		"s2": {{Epoch: 1, Low: 1, High: 3}, {Epoch: 3, Low: 6, High: 7}},
		"s3": {{Epoch: 3, Low: 3, High: 5}, {Epoch: 3, Low: 8, High: 9}},
	}
	m := Merge(lists)
	if got := m.High(); got != 9 {
		t.Fatalf("High() = %d, want 9", got)
	}
	// LSNs 1..2 belong to epoch 1 (servers 1 and 2).
	for lsn := LSN(1); lsn <= 2; lsn++ {
		if e := m.EpochAt(lsn); e != 1 {
			t.Errorf("EpochAt(%d) = %d, want 1", lsn, e)
		}
		if got := m.Servers(lsn); !reflect.DeepEqual(got, []string{"s1", "s2"}) {
			t.Errorf("Servers(%d) = %v, want [s1 s2]", lsn, got)
		}
	}
	// LSN 3 is superseded by epoch 3 (servers 1 and 3).
	if e := m.EpochAt(3); e != 3 {
		t.Errorf("EpochAt(3) = %d, want 3", e)
	}
	if got := m.Servers(3); !reflect.DeepEqual(got, []string{"s1", "s3"}) {
		t.Errorf("Servers(3) = %v, want [s1 s3]", got)
	}
	// Every LSN 1..9 is covered; there are no gaps.
	if gaps := m.Gaps(); len(gaps) != 0 {
		t.Errorf("Gaps() = %v, want none", gaps)
	}
	for lsn := LSN(1); lsn <= 9; lsn++ {
		if !m.Covered(lsn) {
			t.Errorf("LSN %d not covered", lsn)
		}
		if len(m.Servers(lsn)) < 2 {
			t.Errorf("LSN %d held by %v, want >=2 servers (N=2)", lsn, m.Servers(lsn))
		}
	}
	if m.Covered(10) {
		t.Error("LSN 10 should not be covered")
	}
}

// TestMergeFigure32PartialWrite models Figure 3.2: record 10 was
// written only to server 3 before the client crashed. Merging the
// lists of servers 1 and 2 (a legal M-N+1 subset for M=3, N=2) does
// not see record 10; merging server 3's list does.
func TestMergeFigure32PartialWrite(t *testing.T) {
	s1 := []Interval{{Epoch: 1, Low: 1, High: 3}, {Epoch: 3, Low: 3, High: 9}}
	s2 := []Interval{{Epoch: 1, Low: 1, High: 3}, {Epoch: 3, Low: 6, High: 7}}
	s3 := []Interval{{Epoch: 3, Low: 3, High: 5}, {Epoch: 3, Low: 8, High: 10}}

	without := Merge(map[string][]Interval{"s1": s1, "s2": s2})
	if got := without.High(); got != 9 {
		t.Fatalf("High without server 3 = %d, want 9", got)
	}
	with := Merge(map[string][]Interval{"s1": s1, "s2": s2, "s3": s3})
	if got := with.High(); got != 10 {
		t.Fatalf("High with server 3 = %d, want 10", got)
	}
	if got := with.Servers(10); !reflect.DeepEqual(got, []string{"s3"}) {
		t.Fatalf("Servers(10) = %v, want [s3]", got)
	}
}

// TestMergeFigure33AfterRecovery models Figure 3.3: after recovery
// with servers 1 and 2, record 9 is re-copied at epoch 4 and record 10
// is written not-present at epoch 4. Epoch 4 entries supersede server
// 3's stale epoch-3 copies of records 9 and 10.
func TestMergeFigure33AfterRecovery(t *testing.T) {
	lists := map[string][]Interval{
		"s1": {{Epoch: 1, Low: 1, High: 3}, {Epoch: 3, Low: 3, High: 9}, {Epoch: 4, Low: 9, High: 10}},
		"s2": {{Epoch: 1, Low: 1, High: 3}, {Epoch: 3, Low: 6, High: 7}, {Epoch: 4, Low: 9, High: 10}},
		"s3": {{Epoch: 3, Low: 3, High: 5}, {Epoch: 3, Low: 8, High: 10}},
	}
	m := Merge(lists)
	if e := m.EpochAt(9); e != 4 {
		t.Errorf("EpochAt(9) = %d, want 4 (recovered copy wins)", e)
	}
	if e := m.EpochAt(10); e != 4 {
		t.Errorf("EpochAt(10) = %d, want 4 (not-present marker wins)", e)
	}
	if got := m.Servers(10); !reflect.DeepEqual(got, []string{"s1", "s2"}) {
		t.Errorf("Servers(10) = %v, want [s1 s2]", got)
	}
	// The stale partially-written epoch-3 copy on server 3 must not be
	// consulted for LSN 10.
	for _, s := range m.Servers(10) {
		if s == "s3" {
			t.Error("server 3's stale copy of LSN 10 survived the merge")
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge(nil)
	if m.High() != 0 || m.Covered(1) || m.NumEntries() != 0 {
		t.Fatalf("empty merge not empty: high=%d", m.High())
	}
	m = Merge(map[string][]Interval{"s1": nil})
	if m.High() != 0 {
		t.Fatalf("merge of empty list: high=%d", m.High())
	}
}

func TestMergeGaps(t *testing.T) {
	m := Merge(map[string][]Interval{
		"s1": {{Epoch: 1, Low: 3, High: 4}, {Epoch: 1, Low: 8, High: 9}},
	})
	want := []Interval{{Low: 1, High: 2}, {Low: 5, High: 7}}
	if got := m.Gaps(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Gaps() = %v, want %v", got, want)
	}
}

func TestMergeCoalescesAdjacent(t *testing.T) {
	// Two abutting intervals from the same server at the same epoch
	// should coalesce into one merged entry.
	m := Merge(map[string][]Interval{
		"s1": {{Epoch: 2, Low: 1, High: 5}},
		"s2": {{Epoch: 2, Low: 1, High: 5}},
	})
	if m.NumEntries() != 1 {
		t.Fatalf("NumEntries = %d, want 1 (entries %v)", m.NumEntries(), m.Entries())
	}
}

// TestMergeHighestEpochWinsProperty: for random interval layouts, every
// covered LSN's reported epoch equals the maximum epoch over all
// intervals covering it.
func TestMergeHighestEpochWinsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		lists := make(map[string][]Interval)
		nServers := 1 + rng.Intn(4)
		for s := 0; s < nServers; s++ {
			name := string(rune('a' + s))
			var ivs []Interval
			lsn := LSN(1 + rng.Intn(3))
			epoch := Epoch(1 + rng.Intn(2))
			for len(ivs) < rng.Intn(4)+1 {
				length := LSN(1 + rng.Intn(5))
				ivs = append(ivs, Interval{Epoch: epoch, Low: lsn, High: lsn + length - 1})
				lsn += length + LSN(rng.Intn(3))
				epoch += Epoch(rng.Intn(2))
			}
			lists[name] = ivs
		}
		m := Merge(lists)
		for lsn := LSN(1); lsn <= m.High()+2; lsn++ {
			var want Epoch
			covering := map[string]bool{}
			for s, ivs := range lists {
				for _, iv := range ivs {
					if iv.Contains(lsn) && iv.Epoch > want {
						want = iv.Epoch
					}
				}
				_ = s
			}
			for s, ivs := range lists {
				for _, iv := range ivs {
					if iv.Contains(lsn) && iv.Epoch == want {
						covering[s] = true
					}
				}
			}
			if got := m.EpochAt(lsn); got != want {
				t.Fatalf("trial %d: EpochAt(%d) = %d, want %d (lists %v)", trial, lsn, got, want, lists)
			}
			if want != 0 {
				got := m.Servers(lsn)
				if len(got) != len(covering) {
					t.Fatalf("trial %d: Servers(%d) = %v, want servers %v", trial, lsn, got, covering)
				}
				for _, s := range got {
					if !covering[s] {
						t.Fatalf("trial %d: Servers(%d) includes %q, not a max-epoch holder", trial, lsn, s)
					}
				}
			}
		}
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	f := func(lsn uint64, epoch uint64, present bool, data []byte) bool {
		if lsn == 0 {
			lsn = 1
		}
		if epoch == 0 {
			epoch = 1
		}
		r := Record{LSN: LSN(lsn), Epoch: Epoch(epoch), Present: present, Data: data}
		if !present {
			r.Data = nil
		}
		buf := r.AppendEncode(nil)
		if len(buf) != r.EncodedSize() {
			t.Logf("encoded size mismatch: %d != %d", len(buf), r.EncodedSize())
			return false
		}
		got, n, err := DecodeRecord(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if got.LSN != r.LSN || got.Epoch != r.Epoch || got.Present != r.Present {
			return false
		}
		if len(got.Data) != len(r.Data) {
			return false
		}
		for i := range got.Data {
			if got.Data[i] != r.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRecordTruncated(t *testing.T) {
	r := Record{LSN: 7, Epoch: 2, Present: true, Data: []byte("hello world")}
	buf := r.AppendEncode(nil)
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeRecord(buf[:i]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", i)
		}
	}
}

func TestIntervalsEncodeDecodeRoundTrip(t *testing.T) {
	ivs := []Interval{
		{Epoch: 1, Low: 1, High: 3},
		{Epoch: 3, Low: 3, High: 9},
		{Epoch: 4, Low: 9, High: 10},
	}
	buf := EncodeIntervals(nil, ivs)
	got, n, err := DecodeIntervals(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got, ivs) {
		t.Fatalf("got %v, want %v", got, ivs)
	}
}

func TestDecodeIntervalsBogusCount(t *testing.T) {
	// A huge declared count with a short buffer must fail cleanly, not
	// allocate or panic.
	buf := []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}
	if _, _, err := DecodeIntervals(buf); err == nil {
		t.Fatal("decode of bogus count succeeded")
	}
}

func TestRecordsEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{LSN: 1, Epoch: 1, Present: true, Data: []byte("a")},
		{LSN: 2, Epoch: 1, Present: false},
		{LSN: 3, Epoch: 2, Present: true, Data: make([]byte, 300)},
	}
	buf := EncodeRecords(nil, recs)
	got, n, err := DecodeRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].LSN != recs[i].LSN || got[i].Epoch != recs[i].Epoch || got[i].Present != recs[i].Present {
			t.Errorf("record %d: got %v, want %v", i, got[i], recs[i])
		}
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{LSN: 1, Epoch: 1, Present: true, Data: []byte{1, 2, 3}}
	c := r.Clone()
	c.Data[0] = 99
	if r.Data[0] != 1 {
		t.Fatal("Clone aliases the original data")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Epoch: 2, Low: 5, High: 9}
	if !iv.Contains(5) || !iv.Contains(9) || iv.Contains(4) || iv.Contains(10) {
		t.Error("Contains boundaries wrong")
	}
	if iv.Len() != 5 {
		t.Errorf("Len = %d, want 5", iv.Len())
	}
}
