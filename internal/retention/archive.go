// Package retention is the log space management subsystem of Section
// 5.3: a write-once archive tier that cold log records migrate into
// (built on the Section 4.3 append-forest in its persistent, one-node-
// per-append representation), and a background compactor that drives
// storage.SegStore reclamation while pacing itself off the force-path
// latency so space management never blows the commit path's tail.
package retention

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"distlog/internal/appendforest"
	"distlog/internal/faultpoint"
	"distlog/internal/record"
)

// Archive implements storage.ArchiveTier over a directory:
//
//	vol-<base>.log     the records themselves, framed and checksummed,
//	                   cut into fixed-capacity volumes ("optical
//	                   platters"): the active volume seals on overflow
//	                   and a successor opens at base = prev base+size
//	MANIFEST           retirement boundary + per-client truncation
//	                   floors, replaced atomically
//	forest-<id>.af     per-client persistent append-forest nodes,
//	                   keyed by LSN, payload = absolute stream offset
//	                   (base+offset-in-file, so the offset itself names
//	                   the volume a lookup must route to)
//	overlay.log        fix-ups for LSNs re-archived at a higher epoch
//	                   (forest keys are write-once and strictly
//	                   increasing, so a revisit appends here instead)
//
// Volumes are append-only and sealed volumes are immutable, matching
// the write-once optical volumes the paper spools old log generations
// to — but a *full* platter whose every record has passed below every
// client's truncation floor is retired wholesale (Section 5.3):
// RetireOnce advances the manifest boundary past it and unlinks the
// file. All methods are safe for concurrent use.
type Archive struct {
	mu   sync.Mutex
	dir  string
	opts ArchiveOptions

	vols     []*volume // base-ascending; the last is the active tail
	boundary int64     // stream offset below which volumes were retired

	forests map[record.ClientID]*clientForest
	overlay *os.File
	// overlays maps re-archived LSNs to their newest frame; consulted
	// before the forest on lookup.
	overlays   map[overlayKey]overlayRef
	overlayLen int64

	// floors are the freshest per-client truncation points reported via
	// Truncate; durable is the subset already persisted in the manifest.
	// Retirement decisions use only durable floors: a floor that dies
	// with the process must not have authorized deleting bytes.
	floors      map[record.ClientID]record.LSN
	durable     map[record.ClientID]record.LSN
	floorsDirty bool

	// high is each client's highest archived LSN, rebuilt from volume
	// scans on open: a client whose floor has passed it has nothing
	// readable left in the archive.
	high map[record.ClientID]record.LSN

	nodeBytes int64
	retired   uint64
	closed    bool
}

// ArchiveOptions configures OpenArchive.
type ArchiveOptions struct {
	// VolumeBytes is the capacity at which the active volume seals and
	// a fresh one opens. Zero means 64 MiB. A single frame larger than
	// the capacity still fits: it gets a fresh volume to itself.
	VolumeBytes int64
}

func (o *ArchiveOptions) fillDefaults() {
	if o.VolumeBytes <= 0 {
		o.VolumeBytes = 64 << 20
	}
}

// volume is one on-disk piece of the archive stream. Offsets handed to
// the forests are absolute stream offsets: base + offset-in-file, so
// the index never changes when volumes are retired.
type volume struct {
	base   int64
	size   int64
	f      *os.File
	path   string
	sealed bool
	// maxLSN is the highest LSN each client has framed on this volume:
	// the volume is retirable once every entry is below that client's
	// durable floor.
	maxLSN map[record.ClientID]record.LSN
}

func (v *volume) end() int64 { return v.base + v.size }

type clientForest struct {
	store  *appendforest.FileNodeStore
	forest *appendforest.PersistentForest
}

type overlayKey struct {
	client record.ClientID
	lsn    record.LSN
}

type overlayRef struct {
	epoch record.Epoch
	off   int64
}

const (
	archiveLegacyName   = "archive.log"
	archiveOverlayName  = "overlay.log"
	archiveManifestName = "MANIFEST"

	archiveManifestMagic = 0xA6C41F0E

	// data frame: payload length u32 | client u64 | record | crc32 of
	// the payload (client + record).
	dataFrameOverhead = 4 + 4

	// overlay frame: client u64 | lsn u64 | epoch u64 | offset u64 |
	// crc32.
	overlayFrameSize = 8*4 + 4
)

func forestName(c record.ClientID) string {
	return fmt.Sprintf("forest-%020d.af", uint64(c))
}

func volName(base int64) string {
	return fmt.Sprintf("vol-%020d.log", base)
}

func parseVolBase(name string) (int64, bool) {
	if !strings.HasPrefix(name, "vol-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	base, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "vol-"), ".log"), 10, 64)
	if err != nil || base < 0 {
		return 0, false
	}
	return base, true
}

// OpenArchive opens (creating if needed) an archive directory. Torn
// tails in the active volume and the overlay log — a crash mid-append
// — are discarded: a frame not fully written was never referenced by
// a forest node or acknowledged by Sync. Stray volumes below the
// manifest's retirement boundary (a crash between the boundary advance
// and the unlink) are deleted. A pre-volume archive.log is adopted as
// the first volume.
func OpenArchive(dir string, opts ArchiveOptions) (*Archive, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	boundary, floors, err := readArchiveManifest(filepath.Join(dir, archiveManifestName))
	if err != nil {
		return nil, err
	}
	a := &Archive{
		dir:      dir,
		opts:     opts,
		boundary: boundary,
		forests:  make(map[record.ClientID]*clientForest),
		overlays: make(map[overlayKey]overlayRef),
		floors:   floors,
		durable:  make(map[record.ClientID]record.LSN, len(floors)),
		high:     make(map[record.ClientID]record.LSN),
	}
	for c, f := range floors {
		a.durable[c] = f
	}
	if err := a.migrateLegacyLocked(); err != nil {
		return nil, err
	}

	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []int64
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".tmp") {
			// A crash mid-replace (manifest, overlay, or forest rewrite)
			// left its staging file behind; the rename never happened.
			os.Remove(filepath.Join(dir, de.Name()))
			continue
		}
		base, ok := parseVolBase(de.Name())
		if !ok {
			continue
		}
		if base < a.boundary {
			// Retired before the crash removed the file; its bytes must
			// never be read again.
			if err := os.Remove(filepath.Join(dir, de.Name())); err != nil {
				return nil, err
			}
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })

	next := a.boundary
	for i, base := range bases {
		if base != next {
			a.closeFiles()
			return nil, fmt.Errorf("retention: volume gap in %s: want base %d, have %d", dir, next, base)
		}
		last := i == len(bases)-1
		v, err := a.openVolume(base, last)
		if err != nil {
			a.closeFiles()
			return nil, err
		}
		v.sealed = !last
		a.vols = append(a.vols, v)
		next = v.end()
	}
	if len(a.vols) == 0 {
		v, err := a.createVolume(a.boundary)
		if err != nil {
			a.closeFiles()
			return nil, err
		}
		a.vols = append(a.vols, v)
	}

	for _, de := range des {
		var id uint64
		if n, _ := fmt.Sscanf(de.Name(), "forest-%d.af", &id); n != 1 {
			continue
		}
		if err := a.openForest(record.ClientID(id)); err != nil {
			a.closeFiles()
			return nil, err
		}
	}

	overlay, err := os.OpenFile(filepath.Join(dir, archiveOverlayName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		a.closeFiles()
		return nil, err
	}
	a.overlay = overlay
	if err := a.loadOverlay(); err != nil {
		a.closeFiles()
		return nil, err
	}
	return a, nil
}

// migrateLegacyLocked adopts a pre-volume archive.log as the first
// volume. Legacy archives have no manifest, so the boundary is zero.
func (a *Archive) migrateLegacyLocked() error {
	legacy := filepath.Join(a.dir, archiveLegacyName)
	if _, err := os.Stat(legacy); errors.Is(err, os.ErrNotExist) {
		return nil
	} else if err != nil {
		return err
	}
	if err := os.Rename(legacy, filepath.Join(a.dir, volName(a.boundary))); err != nil {
		return err
	}
	syncDirRetention(a.dir)
	return nil
}

func (a *Archive) createVolume(base int64) (*volume, error) {
	path := filepath.Join(a.dir, volName(base))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &volume{base: base, f: f, path: path, maxLSN: make(map[record.ClientID]record.LSN)}, nil
}

// openVolume opens an existing volume and scans its frames, rebuilding
// its per-client high-water marks. Only the last (active) volume may
// carry a torn tail; it is truncated away. A bad frame inside a sealed
// volume is corruption.
func (a *Archive) openVolume(base int64, last bool) (*volume, error) {
	v, err := a.createVolume(base)
	if err != nil {
		return nil, err
	}
	info, err := v.f.Stat()
	if err != nil {
		v.f.Close()
		return nil, err
	}
	buf := make([]byte, info.Size())
	if len(buf) > 0 {
		if _, err := v.f.ReadAt(buf, 0); err != nil {
			v.f.Close()
			return nil, err
		}
	}
	off := int64(0)
	for off < int64(len(buf)) {
		fr, n, err := decodeDataFrame(buf[off:])
		if err != nil {
			if !last {
				v.f.Close()
				return nil, fmt.Errorf("retention: sealed volume %s corrupt at %d: %v", v.path, off, err)
			}
			break
		}
		if v.maxLSN[fr.c] < fr.rec.LSN {
			v.maxLSN[fr.c] = fr.rec.LSN
		}
		if a.high[fr.c] < fr.rec.LSN {
			a.high[fr.c] = fr.rec.LSN
		}
		off += int64(n)
	}
	if err := v.f.Truncate(off); err != nil {
		v.f.Close()
		return nil, err
	}
	v.size = off
	return v, nil
}

func (a *Archive) openForest(c record.ClientID) error {
	if a.forests[c] != nil {
		return nil
	}
	store, err := appendforest.OpenFileNodeStore(filepath.Join(a.dir, forestName(c)))
	if err != nil {
		return err
	}
	forest, err := appendforest.OpenPersistent(store)
	if err != nil {
		store.Close()
		return err
	}
	a.forests[c] = &clientForest{store: store, forest: forest}
	a.nodeBytes += forest.Len() * appendforest.NodeSize
	return nil
}

func (a *Archive) loadOverlay() error {
	info, err := a.overlay.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	buf := make([]byte, size)
	if size > 0 {
		if _, err := a.overlay.ReadAt(buf, 0); err != nil {
			return err
		}
	}
	off := int64(0)
	for off+overlayFrameSize <= size {
		fr := buf[off : off+overlayFrameSize]
		if crc32.ChecksumIEEE(fr[:overlayFrameSize-4]) != binary.BigEndian.Uint32(fr[overlayFrameSize-4:]) {
			break
		}
		k := overlayKey{
			client: record.ClientID(binary.BigEndian.Uint64(fr[0:])),
			lsn:    record.LSN(binary.BigEndian.Uint64(fr[8:])),
		}
		ref := overlayRef{
			epoch: record.Epoch(binary.BigEndian.Uint64(fr[16:])),
			off:   int64(binary.BigEndian.Uint64(fr[24:])),
		}
		if old, ok := a.overlays[k]; !ok || ref.epoch >= old.epoch {
			a.overlays[k] = ref
		}
		off += overlayFrameSize
	}
	a.overlayLen = off
	return a.overlay.Truncate(off)
}

func encodeDataFrame(buf []byte, c record.ClientID, rec record.Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.BigEndian.AppendUint64(buf, uint64(c))
	buf = rec.AppendEncode(buf)
	payload := buf[start+4:]
	binary.BigEndian.PutUint32(buf[start:], uint32(len(payload)))
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

func decodeDataFrame(buf []byte) (struct {
	c   record.ClientID
	rec record.Record
}, int, error) {
	var out struct {
		c   record.ClientID
		rec record.Record
	}
	if len(buf) < dataFrameOverhead+8 {
		return out, 0, errors.New("retention: truncated data frame")
	}
	plen := int(binary.BigEndian.Uint32(buf))
	total := 4 + plen + 4
	if plen < 8 || len(buf) < total {
		return out, 0, errors.New("retention: truncated data frame")
	}
	payload := buf[4 : 4+plen]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(buf[4+plen:]) {
		return out, 0, errors.New("retention: data frame checksum mismatch")
	}
	out.c = record.ClientID(binary.BigEndian.Uint64(payload))
	rec, n, err := record.DecodeRecord(payload[8:])
	if err != nil {
		return out, 0, err
	}
	if n != plen-8 {
		return out, 0, errors.New("retention: data frame length mismatch")
	}
	out.rec = rec
	return out, total, nil
}

// Archive implements storage.ArchiveTier: store one record. Idempotent
// — an (LSN, epoch) already archived is a no-op, and a higher epoch
// for an archived LSN supersedes the older copy via the overlay. A
// record already below its client's truncation floor is dropped: it
// could never be read back, and keeping it out lets its volume retire.
func (a *Archive) Archive(c record.ClientID, rec record.Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrClosed
	}
	if rec.LSN < a.floors[c] {
		return nil
	}
	existing, ok, err := a.lookupLocked(c, rec.LSN)
	if err != nil {
		return err
	}
	if ok && existing.Epoch >= rec.Epoch {
		return nil
	}
	frame := encodeDataFrame(nil, c, rec)
	act := a.vols[len(a.vols)-1]
	if act.size > 0 && act.size+int64(len(frame)) > a.opts.VolumeBytes {
		if err := a.rotateLocked(); err != nil {
			return err
		}
		act = a.vols[len(a.vols)-1]
	}
	off := act.base + act.size
	if _, err := act.f.WriteAt(frame, act.size); err != nil {
		return err
	}
	act.size += int64(len(frame))
	if act.maxLSN[c] < rec.LSN {
		act.maxLSN[c] = rec.LSN
	}
	if a.high[c] < rec.LSN {
		a.high[c] = rec.LSN
	}

	if err := a.openForest(c); err != nil {
		return err
	}
	cf := a.forests[c]
	if err := cf.forest.Append(uint64(rec.LSN), off); err == nil {
		a.nodeBytes += appendforest.NodeSize
		return nil
	} else if !errors.Is(err, appendforest.ErrKeyOrder) {
		return err
	}
	// The LSN revisits a forest position (a recovery copy at a higher
	// epoch): the forest is write-once, so the fix-up goes to the
	// overlay log.
	var fr [overlayFrameSize]byte
	binary.BigEndian.PutUint64(fr[0:], uint64(c))
	binary.BigEndian.PutUint64(fr[8:], uint64(rec.LSN))
	binary.BigEndian.PutUint64(fr[16:], uint64(rec.Epoch))
	binary.BigEndian.PutUint64(fr[24:], uint64(off))
	binary.BigEndian.PutUint32(fr[overlayFrameSize-4:], crc32.ChecksumIEEE(fr[:overlayFrameSize-4]))
	if _, err := a.overlay.WriteAt(fr[:], a.overlayLen); err != nil {
		return err
	}
	a.overlayLen += overlayFrameSize
	a.overlays[overlayKey{c, rec.LSN}] = overlayRef{epoch: rec.Epoch, off: off}
	return nil
}

// rotateLocked seals the active volume and opens its successor. A
// crash after the seal but before the successor exists is benign: the
// reopened volume becomes the active one again and the next
// overflowing append re-runs the rotation.
func (a *Archive) rotateLocked() error {
	act := a.vols[len(a.vols)-1]
	if !act.sealed {
		if err := act.f.Sync(); err != nil {
			return err
		}
		act.sealed = true
	}
	if err := faultpoint.HitErr(FPVolumeSeal); err != nil {
		return err
	}
	nv, err := a.createVolume(act.end())
	if err != nil {
		return err
	}
	a.vols = append(a.vols, nv)
	syncDirRetention(a.dir)
	return nil
}

// Sync implements storage.ArchiveTier: make all preceding Archive
// calls durable. Pending truncation floors ride along: a floor is
// retirement-grade only once it has hit the manifest.
func (a *Archive) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrClosed
	}
	if err := a.vols[len(a.vols)-1].f.Sync(); err != nil {
		return err
	}
	for _, cf := range a.forests {
		if err := cf.store.Sync(); err != nil {
			return err
		}
	}
	if err := a.overlay.Sync(); err != nil {
		return err
	}
	if a.floorsDirty {
		return a.writeManifestLocked()
	}
	return nil
}

// Truncate implements storage.ArchiveTier: record that the client has
// truncated its log below before. Reads clamp at the floor
// immediately; retirement waits until the floor is durable (the next
// Sync or RetireOnce persists it).
func (a *Archive) Truncate(c record.ClientID, before record.LSN) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrClosed
	}
	if before > a.floors[c] {
		a.floors[c] = before
		a.floorsDirty = true
	}
	return nil
}

// Lookup implements storage.ArchiveTier: the archived record with the
// highest epoch for the LSN. LSNs below the client's truncation floor
// are gone — they must not resurface from the cold tier even if their
// frames still exist on not-yet-retired volumes.
func (a *Archive) Lookup(c record.ClientID, lsn record.LSN) (record.Record, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return record.Record{}, false, ErrClosed
	}
	return a.lookupLocked(c, lsn)
}

func (a *Archive) lookupLocked(c record.ClientID, lsn record.LSN) (record.Record, bool, error) {
	if lsn < a.floors[c] {
		return record.Record{}, false, nil
	}
	if ref, ok := a.overlays[overlayKey{c, lsn}]; ok {
		rec, err := a.readFrame(ref.off, c, lsn)
		return rec, err == nil, err
	}
	cf := a.forests[c]
	if cf == nil {
		return record.Record{}, false, nil
	}
	off, ok, err := cf.forest.Lookup(uint64(lsn))
	if err != nil || !ok {
		return record.Record{}, false, err
	}
	rec, err := a.readFrame(off, c, lsn)
	return rec, err == nil, err
}

// readFrame reads the frame at an absolute stream offset, routing to
// the volume that holds it.
func (a *Archive) readFrame(off int64, c record.ClientID, lsn record.LSN) (record.Record, error) {
	if off < a.boundary {
		return record.Record{}, fmt.Errorf("retention: frame at %d for (%d,%d) is below the retirement boundary %d", off, c, lsn, a.boundary)
	}
	i := sort.Search(len(a.vols), func(i int) bool { return a.vols[i].end() > off })
	if i == len(a.vols) || off < a.vols[i].base {
		return record.Record{}, fmt.Errorf("retention: frame offset %d outside every volume", off)
	}
	v := a.vols[i]
	rel := off - v.base
	var hdr [4]byte
	if _, err := v.f.ReadAt(hdr[:], rel); err != nil {
		return record.Record{}, err
	}
	plen := int(binary.BigEndian.Uint32(hdr[:]))
	buf := make([]byte, 4+plen+4)
	if _, err := v.f.ReadAt(buf, rel); err != nil {
		return record.Record{}, err
	}
	fr, _, err := decodeDataFrame(buf)
	if err != nil {
		return record.Record{}, err
	}
	if fr.c != c || fr.rec.LSN != lsn {
		return record.Record{}, fmt.Errorf("retention: frame at %d holds (%d,%d), want (%d,%d)", off, fr.c, fr.rec.LSN, c, lsn)
	}
	return fr.rec, nil
}

// RetireOnce performs at most one unit of archive housekeeping and
// reports whether it did anything: persist pending truncation floors,
// retire the oldest sealed volume whose every record is below its
// client's durable floor, drop a forest whose whole keyspace has been
// truncated, or compact dead overlay entries. Driven by the Compactor
// loop between reclamation passes.
func (a *Archive) RetireOnce() (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return false, ErrClosed
	}
	if a.floorsDirty {
		if err := a.writeManifestLocked(); err != nil {
			return false, err
		}
	}
	if len(a.vols) > 1 {
		v := a.vols[0]
		if v.sealed && a.retirableLocked(v) {
			if a.boundary < v.end() {
				// The boundary advance must be durable before the bytes
				// disappear: reopen must know never to look for them.
				a.boundary = v.end()
				if err := a.writeManifestLocked(); err != nil {
					a.boundary = v.base
					return false, err
				}
			}
			if err := faultpoint.HitErr(FPVolumeRetire); err != nil {
				return false, err
			}
			v.f.Close()
			if err := os.Remove(v.path); err != nil && !errors.Is(err, os.ErrNotExist) {
				return false, err
			}
			a.vols = a.vols[1:]
			a.retired++
			return true, nil
		}
	}
	for c, cf := range a.forests {
		n := cf.forest.Len()
		if n == 0 {
			continue
		}
		floor := a.durable[c]
		if floor > record.LSN(cf.forest.MaxKey()) {
			// Every key in this forest is below the client's durable floor:
			// the index retires with its volumes. A later Archive call for
			// the client recreates it empty.
			a.nodeBytes -= n * appendforest.NodeSize
			cf.store.Close()
			if err := os.Remove(filepath.Join(a.dir, forestName(c))); err != nil && !errors.Is(err, os.ErrNotExist) {
				return false, err
			}
			delete(a.forests, c)
			return true, nil
		}
		// Keys are strictly increasing, so the dead nodes are a prefix.
		// Once they are the majority, rewrite the forest without them —
		// otherwise the index of a long-lived client grows without bound
		// even as its volumes retire.
		var dead int64
		if err := cf.forest.Scan(func(key uint64, _ int64) error {
			if record.LSN(key) >= floor {
				return errStopScan
			}
			dead++
			return nil
		}); err != nil && !errors.Is(err, errStopScan) {
			return false, err
		}
		if dead*2 > n {
			if err := a.compactForestLocked(c); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	for k := range a.overlays {
		if k.lsn < a.durable[k.client] {
			if err := a.compactOverlayLocked(); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	return false, nil
}

// errStopScan is the sentinel a forest scan returns to stop at the
// first live key (the dead prefix has been measured).
var errStopScan = errors.New("retention: stop scan")

// compactForestLocked rewrites a client's forest node log without the
// keys below the client's durable floor (a strictly-increasing-key
// forest stays valid under a prefix cut: the surviving appends replay
// in the same order). The rewrite is crash-safe: the new log is built
// beside the old one and renamed over it; a crash leaves either file
// whole, and a stray .tmp is removed on open.
func (a *Archive) compactForestLocked(c record.ClientID) error {
	cf := a.forests[c]
	floor := a.durable[c]
	path := filepath.Join(a.dir, forestName(c))
	tmp := path + ".tmp"
	os.Remove(tmp)
	store, err := appendforest.OpenFileNodeStore(tmp)
	if err != nil {
		return err
	}
	nf, err := appendforest.OpenPersistent(store)
	if err != nil {
		store.Close()
		os.Remove(tmp)
		return err
	}
	err = cf.forest.Scan(func(key uint64, payload int64) error {
		if record.LSN(key) < floor {
			return nil
		}
		return nf.Append(key, payload)
	})
	if err == nil {
		err = store.Sync()
	}
	if err != nil {
		store.Close()
		os.Remove(tmp)
		return err
	}
	if err := store.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDirRetention(a.dir)
	store2, err := appendforest.OpenFileNodeStore(path)
	if err != nil {
		return err
	}
	forest2, err := appendforest.OpenPersistent(store2)
	if err != nil {
		store2.Close()
		return err
	}
	a.nodeBytes += (forest2.Len() - cf.forest.Len()) * appendforest.NodeSize
	cf.store.Close()
	a.forests[c] = &clientForest{store: store2, forest: forest2}
	return nil
}

// retirableLocked reports whether every record on the volume is below
// its client's durable truncation floor.
func (a *Archive) retirableLocked(v *volume) bool {
	for c, max := range v.maxLSN {
		if a.durable[c] <= max {
			return false
		}
	}
	return true
}

// compactOverlayLocked rewrites the overlay log without entries below
// their client's durable floor.
func (a *Archive) compactOverlayLocked() error {
	type entry struct {
		k   overlayKey
		ref overlayRef
	}
	var live []entry
	for k, ref := range a.overlays {
		if k.lsn >= a.durable[k.client] {
			live = append(live, entry{k, ref})
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].k.client != live[j].k.client {
			return live[i].k.client < live[j].k.client
		}
		return live[i].k.lsn < live[j].k.lsn
	})
	buf := make([]byte, 0, len(live)*overlayFrameSize)
	for _, e := range live {
		var fr [overlayFrameSize]byte
		binary.BigEndian.PutUint64(fr[0:], uint64(e.k.client))
		binary.BigEndian.PutUint64(fr[8:], uint64(e.k.lsn))
		binary.BigEndian.PutUint64(fr[16:], uint64(e.ref.epoch))
		binary.BigEndian.PutUint64(fr[24:], uint64(e.ref.off))
		binary.BigEndian.PutUint32(fr[overlayFrameSize-4:], crc32.ChecksumIEEE(fr[:overlayFrameSize-4]))
		buf = append(buf, fr[:]...)
	}
	path := filepath.Join(a.dir, archiveOverlayName)
	tmp := path + ".tmp"
	if err := writeFileSyncRetention(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDirRetention(a.dir)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	a.overlay.Close()
	a.overlay = f
	a.overlayLen = int64(len(buf))
	for k := range a.overlays {
		if k.lsn < a.durable[k.client] {
			delete(a.overlays, k)
		}
	}
	return nil
}

// writeManifestLocked durably replaces the manifest (tmp + fsync +
// rename + directory sync) with the current boundary and floors, which
// become the durable ones retirement may rely on.
func (a *Archive) writeManifestLocked() error {
	clients := make([]record.ClientID, 0, len(a.floors))
	for c := range a.floors {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	buf := binary.BigEndian.AppendUint32(nil, archiveManifestMagic)
	buf = append(buf, 1)
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.boundary))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(clients)))
	for _, c := range clients {
		buf = binary.BigEndian.AppendUint64(buf, uint64(c))
		buf = binary.BigEndian.AppendUint64(buf, uint64(a.floors[c]))
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	path := filepath.Join(a.dir, archiveManifestName)
	tmp := path + ".tmp"
	if err := writeFileSyncRetention(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDirRetention(a.dir)
	for c, f := range a.floors {
		a.durable[c] = f
	}
	a.floorsDirty = false
	return nil
}

// readArchiveManifest reads the manifest at path; a missing file
// yields the empty state (a brand-new or pre-volume archive).
func readArchiveManifest(path string) (int64, map[record.ClientID]record.LSN, error) {
	floors := make(map[record.ClientID]record.LSN)
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, floors, nil
	}
	if err != nil {
		return 0, nil, err
	}
	if len(buf) < 4+1+8+4+4 {
		return 0, nil, fmt.Errorf("retention: manifest %s too short", path)
	}
	body, sum := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, fmt.Errorf("retention: manifest %s checksum mismatch", path)
	}
	if binary.BigEndian.Uint32(body) != archiveManifestMagic {
		return 0, nil, fmt.Errorf("retention: manifest %s bad magic", path)
	}
	if body[4] != 1 {
		return 0, nil, fmt.Errorf("retention: manifest %s unknown version %d", path, body[4])
	}
	boundary := int64(binary.BigEndian.Uint64(body[5:]))
	n := int(binary.BigEndian.Uint32(body[13:]))
	if len(body) != 17+n*16 {
		return 0, nil, fmt.Errorf("retention: manifest %s truncated", path)
	}
	off := 17
	for i := 0; i < n; i++ {
		c := record.ClientID(binary.BigEndian.Uint64(body[off:]))
		floors[c] = record.LSN(binary.BigEndian.Uint64(body[off+8:]))
		off += 16
	}
	return boundary, floors, nil
}

// Bytes implements storage.ArchiveTier: the archive's stored size
// (volumes + forest nodes + overlay).
func (a *Archive) Bytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, v := range a.vols {
		n += v.size
	}
	return n + a.nodeBytes + a.overlayLen
}

// ReclaimableBytes is what a retirement pass could free right now:
// the oldest-first run of sealed volumes whose records are all below
// the freshest floors, plus index files wholly below the floor. Feeds
// the storage.disk.archive_reclaimable gauge and the rebalancer's
// headroom placement.
func (a *Archive) ReclaimableBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, v := range a.vols[:len(a.vols)-1] {
		if !v.sealed {
			break
		}
		dead := true
		for c, max := range v.maxLSN {
			if a.floors[c] <= max {
				dead = false
				break
			}
		}
		if !dead {
			// Retirement is oldest-first: a pinned volume pins its
			// successors too.
			break
		}
		n += v.size
	}
	for c, cf := range a.forests {
		if cf.forest.Len() > 0 && a.floors[c] > record.LSN(cf.forest.MaxKey()) {
			n += cf.forest.Len() * appendforest.NodeSize
		}
	}
	return n
}

// Clients lists the clients with readable archived records: a client
// whose truncation floor has passed everything it archived no longer
// appears.
func (a *Archive) Clients() []record.ClientID {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]record.ClientID, 0, len(a.forests))
	for c := range a.forests {
		if a.floors[c] > a.high[c] {
			continue
		}
		out = append(out, c)
	}
	return out
}

// Floor returns the freshest truncation floor known for the client.
func (a *Archive) Floor(c record.ClientID) record.LSN {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.floors[c]
}

// Dir returns the archive's directory.
func (a *Archive) Dir() string { return a.dir }

// Boundary returns the retirement boundary: the absolute stream offset
// below which volumes have been deleted.
func (a *Archive) Boundary() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.boundary
}

// Volumes returns how many volumes are on disk; Retired how many have
// been deleted over the archive's lifetime (this process).
func (a *Archive) Volumes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.vols)
}

// Retired returns how many volumes RetireOnce has unlinked.
func (a *Archive) Retired() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retired
}

func (a *Archive) closeFiles() {
	for _, v := range a.vols {
		v.f.Close()
	}
	for _, cf := range a.forests {
		cf.store.Close()
	}
	if a.overlay != nil {
		a.overlay.Close()
	}
}

// Close releases the archive's files.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	var errs []error
	for _, v := range a.vols {
		errs = append(errs, v.f.Close())
	}
	for _, cf := range a.forests {
		errs = append(errs, cf.store.Close())
	}
	if a.overlay != nil {
		errs = append(errs, a.overlay.Close())
	}
	return errors.Join(errs...)
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("retention: archive is closed")

// writeFileSyncRetention writes data to path and fsyncs it before
// closing.
func writeFileSyncRetention(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDirRetention fsyncs a directory so a just-created or just-
// renamed file's entry is durable. Errors are ignored: some platforms
// refuse directory fsync, and recovery tolerates a lost tail.
func syncDirRetention(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
