// Package retention is the log space management subsystem of Section
// 5.3: a write-once archive tier that cold log records migrate into
// (built on the Section 4.3 append-forest in its persistent, one-node-
// per-append representation), and a background compactor that drives
// storage.SegStore reclamation while pacing itself off the force-path
// latency so space management never blows the commit path's tail.
package retention

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"distlog/internal/appendforest"
	"distlog/internal/record"
)

// Archive implements storage.ArchiveTier over a directory:
//
//	archive.log        the records themselves, framed and checksummed
//	forest-<id>.af     per-client persistent append-forest nodes,
//	                   keyed by LSN, payload = frame offset in archive.log
//	overlay.log        fix-ups for LSNs re-archived at a higher epoch
//	                   (forest keys are write-once and strictly
//	                   increasing, so a revisit appends here instead)
//
// Everything is append-only: nothing in the directory is ever
// overwritten, matching the write-once optical volumes the paper
// spools old log generations to. All methods are safe for concurrent
// use.
type Archive struct {
	mu      sync.Mutex
	dir     string
	data    *os.File
	dataLen int64
	forests map[record.ClientID]*clientForest
	overlay *os.File
	// overlays maps re-archived LSNs to their newest frame; consulted
	// before the forest on lookup.
	overlays  map[overlayKey]overlayRef
	nodeBytes int64
	closed    bool
}

type clientForest struct {
	store  *appendforest.FileNodeStore
	forest *appendforest.PersistentForest
}

type overlayKey struct {
	client record.ClientID
	lsn    record.LSN
}

type overlayRef struct {
	epoch record.Epoch
	off   int64
}

const (
	archiveDataName    = "archive.log"
	archiveOverlayName = "overlay.log"

	// data frame: payload length u32 | client u64 | record | crc32 of
	// the payload (client + record).
	dataFrameOverhead = 4 + 4

	// overlay frame: client u64 | lsn u64 | epoch u64 | offset u64 |
	// crc32.
	overlayFrameSize = 8*4 + 4
)

func forestName(c record.ClientID) string {
	return fmt.Sprintf("forest-%020d.af", uint64(c))
}

// OpenArchive opens (creating if needed) an archive directory. Torn
// tails in the data and overlay logs — a crash mid-append — are
// discarded: a frame not fully written was never referenced by a
// forest node or acknowledged by Sync.
func OpenArchive(dir string) (*Archive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	a := &Archive{
		dir:      dir,
		forests:  make(map[record.ClientID]*clientForest),
		overlays: make(map[overlayKey]overlayRef),
	}
	data, err := os.OpenFile(filepath.Join(dir, archiveDataName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	a.data = data
	if a.dataLen, err = scanDataLog(data); err != nil {
		data.Close()
		return nil, err
	}
	if err := data.Truncate(a.dataLen); err != nil {
		data.Close()
		return nil, err
	}

	des, err := os.ReadDir(dir)
	if err != nil {
		a.Close()
		return nil, err
	}
	for _, de := range des {
		var id uint64
		if n, _ := fmt.Sscanf(de.Name(), "forest-%d.af", &id); n != 1 {
			continue
		}
		if err := a.openForest(record.ClientID(id)); err != nil {
			a.Close()
			return nil, err
		}
	}

	overlay, err := os.OpenFile(filepath.Join(dir, archiveOverlayName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		a.Close()
		return nil, err
	}
	a.overlay = overlay
	if err := a.loadOverlay(); err != nil {
		a.Close()
		return nil, err
	}
	return a, nil
}

// scanDataLog walks the frames and returns the offset of the first
// invalid one (the valid length).
func scanDataLog(f *os.File) (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := info.Size()
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			return 0, err
		}
	}
	off := int64(0)
	for off < size {
		if _, n, err := decodeDataFrame(buf[off:]); err != nil {
			break
		} else {
			off += int64(n)
		}
	}
	return off, nil
}

func (a *Archive) openForest(c record.ClientID) error {
	if a.forests[c] != nil {
		return nil
	}
	store, err := appendforest.OpenFileNodeStore(filepath.Join(a.dir, forestName(c)))
	if err != nil {
		return err
	}
	forest, err := appendforest.OpenPersistent(store)
	if err != nil {
		store.Close()
		return err
	}
	a.forests[c] = &clientForest{store: store, forest: forest}
	a.nodeBytes += forest.Len() * appendforest.NodeSize
	return nil
}

func (a *Archive) loadOverlay() error {
	info, err := a.overlay.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	buf := make([]byte, size)
	if size > 0 {
		if _, err := a.overlay.ReadAt(buf, 0); err != nil {
			return err
		}
	}
	off := int64(0)
	for off+overlayFrameSize <= size {
		fr := buf[off : off+overlayFrameSize]
		if crc32.ChecksumIEEE(fr[:overlayFrameSize-4]) != binary.BigEndian.Uint32(fr[overlayFrameSize-4:]) {
			break
		}
		k := overlayKey{
			client: record.ClientID(binary.BigEndian.Uint64(fr[0:])),
			lsn:    record.LSN(binary.BigEndian.Uint64(fr[8:])),
		}
		ref := overlayRef{
			epoch: record.Epoch(binary.BigEndian.Uint64(fr[16:])),
			off:   int64(binary.BigEndian.Uint64(fr[24:])),
		}
		if old, ok := a.overlays[k]; !ok || ref.epoch >= old.epoch {
			a.overlays[k] = ref
		}
		off += overlayFrameSize
	}
	return a.overlay.Truncate(off)
}

func encodeDataFrame(buf []byte, c record.ClientID, rec record.Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.BigEndian.AppendUint64(buf, uint64(c))
	buf = rec.AppendEncode(buf)
	payload := buf[start+4:]
	binary.BigEndian.PutUint32(buf[start:], uint32(len(payload)))
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

func decodeDataFrame(buf []byte) (struct {
	c   record.ClientID
	rec record.Record
}, int, error) {
	var out struct {
		c   record.ClientID
		rec record.Record
	}
	if len(buf) < dataFrameOverhead+8 {
		return out, 0, errors.New("retention: truncated data frame")
	}
	plen := int(binary.BigEndian.Uint32(buf))
	total := 4 + plen + 4
	if plen < 8 || len(buf) < total {
		return out, 0, errors.New("retention: truncated data frame")
	}
	payload := buf[4 : 4+plen]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(buf[4+plen:]) {
		return out, 0, errors.New("retention: data frame checksum mismatch")
	}
	out.c = record.ClientID(binary.BigEndian.Uint64(payload))
	rec, n, err := record.DecodeRecord(payload[8:])
	if err != nil {
		return out, 0, err
	}
	if n != plen-8 {
		return out, 0, errors.New("retention: data frame length mismatch")
	}
	out.rec = rec
	return out, total, nil
}

// Archive implements storage.ArchiveTier: store one record. Idempotent
// — an (LSN, epoch) already archived is a no-op, and a higher epoch
// for an archived LSN supersedes the older copy via the overlay.
func (a *Archive) Archive(c record.ClientID, rec record.Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrClosed
	}
	existing, ok, err := a.lookupLocked(c, rec.LSN)
	if err != nil {
		return err
	}
	if ok && existing.Epoch >= rec.Epoch {
		return nil
	}
	frame := encodeDataFrame(nil, c, rec)
	off := a.dataLen
	if _, err := a.data.WriteAt(frame, off); err != nil {
		return err
	}
	a.dataLen += int64(len(frame))

	if err := a.openForest(c); err != nil {
		return err
	}
	cf := a.forests[c]
	if err := cf.forest.Append(uint64(rec.LSN), off); err == nil {
		a.nodeBytes += appendforest.NodeSize
		return nil
	} else if !errors.Is(err, appendforest.ErrKeyOrder) {
		return err
	}
	// The LSN revisits a forest position (a recovery copy at a higher
	// epoch): the forest is write-once, so the fix-up goes to the
	// overlay log.
	var fr [overlayFrameSize]byte
	binary.BigEndian.PutUint64(fr[0:], uint64(c))
	binary.BigEndian.PutUint64(fr[8:], uint64(rec.LSN))
	binary.BigEndian.PutUint64(fr[16:], uint64(rec.Epoch))
	binary.BigEndian.PutUint64(fr[24:], uint64(off))
	binary.BigEndian.PutUint32(fr[overlayFrameSize-4:], crc32.ChecksumIEEE(fr[:overlayFrameSize-4]))
	oinfo, err := a.overlay.Stat()
	if err != nil {
		return err
	}
	if _, err := a.overlay.WriteAt(fr[:], oinfo.Size()); err != nil {
		return err
	}
	a.overlays[overlayKey{c, rec.LSN}] = overlayRef{epoch: rec.Epoch, off: off}
	return nil
}

// Sync implements storage.ArchiveTier: make all preceding Archive
// calls durable.
func (a *Archive) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrClosed
	}
	if err := a.data.Sync(); err != nil {
		return err
	}
	for _, cf := range a.forests {
		if err := cf.store.Sync(); err != nil {
			return err
		}
	}
	return a.overlay.Sync()
}

// Lookup implements storage.ArchiveTier: the archived record with the
// highest epoch for the LSN.
func (a *Archive) Lookup(c record.ClientID, lsn record.LSN) (record.Record, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return record.Record{}, false, ErrClosed
	}
	return a.lookupLocked(c, lsn)
}

func (a *Archive) lookupLocked(c record.ClientID, lsn record.LSN) (record.Record, bool, error) {
	if ref, ok := a.overlays[overlayKey{c, lsn}]; ok {
		rec, err := a.readFrame(ref.off, c, lsn)
		return rec, err == nil, err
	}
	cf := a.forests[c]
	if cf == nil {
		return record.Record{}, false, nil
	}
	off, ok, err := cf.forest.Lookup(uint64(lsn))
	if err != nil || !ok {
		return record.Record{}, false, err
	}
	rec, err := a.readFrame(off, c, lsn)
	return rec, err == nil, err
}

func (a *Archive) readFrame(off int64, c record.ClientID, lsn record.LSN) (record.Record, error) {
	var hdr [4]byte
	if _, err := a.data.ReadAt(hdr[:], off); err != nil {
		return record.Record{}, err
	}
	plen := int(binary.BigEndian.Uint32(hdr[:]))
	buf := make([]byte, 4+plen+4)
	if _, err := a.data.ReadAt(buf, off); err != nil {
		return record.Record{}, err
	}
	fr, _, err := decodeDataFrame(buf)
	if err != nil {
		return record.Record{}, err
	}
	if fr.c != c || fr.rec.LSN != lsn {
		return record.Record{}, fmt.Errorf("retention: frame at %d holds (%d,%d), want (%d,%d)", off, fr.c, fr.rec.LSN, c, lsn)
	}
	return fr.rec, nil
}

// Bytes implements storage.ArchiveTier: the archive's stored size
// (data log + forest nodes + overlay).
func (a *Archive) Bytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dataLen + a.nodeBytes + int64(len(a.overlays))*overlayFrameSize
}

// Clients lists the clients with archived records.
func (a *Archive) Clients() []record.ClientID {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]record.ClientID, 0, len(a.forests))
	for c := range a.forests {
		out = append(out, c)
	}
	return out
}

// Close releases the archive's files.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	var errs []error
	if a.data != nil {
		errs = append(errs, a.data.Close())
	}
	for _, cf := range a.forests {
		errs = append(errs, cf.store.Close())
	}
	if a.overlay != nil {
		errs = append(errs, a.overlay.Close())
	}
	return errors.Join(errs...)
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("retention: archive is closed")
