package retention

import (
	"sync"
	"time"

	"distlog/internal/telemetry"
)

// Compactable is the store surface the compactor drives (implemented
// by storage.SegStore).
type Compactable interface {
	// CompactOnce reclaims at most one segment, reporting whether it
	// did.
	CompactOnce() (bool, error)
}

// CompactorConfig configures a background Compactor.
type CompactorConfig struct {
	// Store is the segmented store to reclaim space from.
	Store Compactable
	// Interval is the pause between compaction attempts (default 1s).
	Interval time.Duration
	// ForceHist, when set, paces compaction off the force path: before
	// each attempt the compactor snapshots the histogram, diffs it
	// against the previous tick, and backs off when the interval p99
	// exceeds ForceP99Budget. Typically the storage force-latency
	// histogram (storage.<backend>.force_latency_ns).
	ForceHist *telemetry.Histogram
	// ForceP99Budget is the interval force p99 (in the histogram's
	// unit, nanoseconds for the storage instruments) above which
	// compaction yields to the foreground. Zero disables pacing.
	ForceP99Budget uint64
	// Backoff is how long a paced-out compactor waits before looking
	// again (default 4×Interval).
	Backoff time.Duration
	// OnError, when set, observes compaction errors (the loop keeps
	// running: a failed pass retries idempotently on the next tick).
	OnError func(error)
}

// Compactor runs segment compaction in the background, yielding to the
// force path whenever the foreground latency budget is threatened
// (Section 5.3: space management must never interfere with logging).
type Compactor struct {
	cfg  CompactorConfig
	stop chan struct{}
	done chan struct{}
	once sync.Once

	mu        sync.Mutex
	prev      telemetry.HistogramSnapshot
	reclaimed uint64
	deferred  uint64
}

// NewCompactor starts a compactor; Stop shuts it down.
func NewCompactor(cfg CompactorConfig) *Compactor {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 4 * cfg.Interval
	}
	c := &Compactor{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	if cfg.ForceHist != nil {
		c.prev = cfg.ForceHist.Snapshot()
	}
	go c.run()
	return c
}

func (c *Compactor) run() {
	defer close(c.done)
	timer := time.NewTimer(c.cfg.Interval)
	defer timer.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-timer.C:
		}
		timer.Reset(c.step())
	}
}

// step runs one compaction attempt (or defers it) and returns the
// delay until the next.
func (c *Compactor) step() time.Duration {
	if !c.admit() {
		c.mu.Lock()
		c.deferred++
		c.mu.Unlock()
		return c.cfg.Backoff
	}
	ok, err := c.cfg.Store.CompactOnce()
	if err != nil {
		if c.cfg.OnError != nil {
			c.cfg.OnError(err)
		}
		return c.cfg.Backoff
	}
	if ok {
		c.mu.Lock()
		c.reclaimed++
		c.mu.Unlock()
		// More to do: keep going at full tick rate.
		return c.cfg.Interval
	}
	return c.cfg.Interval
}

// admit decides whether the force path can afford a compaction pass
// right now: the p99 of force latencies observed since the previous
// tick must be inside the budget.
func (c *Compactor) admit() bool {
	if c.cfg.ForceHist == nil || c.cfg.ForceP99Budget == 0 {
		return true
	}
	snap := c.cfg.ForceHist.Snapshot()
	c.mu.Lock()
	delta := snap.Sub(c.prev)
	c.prev = snap
	c.mu.Unlock()
	if delta.Count == 0 {
		// Idle force path: compact freely.
		return true
	}
	return delta.Quantile(0.99) <= c.cfg.ForceP99Budget
}

// Stats reports how many segments the compactor reclaimed and how many
// passes pacing deferred.
func (c *Compactor) Stats() (reclaimed, deferred uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reclaimed, c.deferred
}

// Stop shuts the compactor down and waits for the in-flight pass.
func (c *Compactor) Stop() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}
