package retention

import (
	"sync"
	"time"

	"distlog/internal/telemetry"
)

// Compactable is the store surface the compactor drives (implemented
// by storage.SegStore).
type Compactable interface {
	// CompactOnce reclaims at most one segment, reporting whether it
	// did.
	CompactOnce() (bool, error)
}

// Retirable is the archive surface the compactor drives once the hot
// tier is drained (implemented by Archive): one unit of cold-tier
// housekeeping — persist floors, retire a dead volume, drop a dead
// index.
type Retirable interface {
	RetireOnce() (bool, error)
}

// CompactorConfig configures a background Compactor.
type CompactorConfig struct {
	// Store is the segmented store to reclaim space from.
	Store Compactable
	// Retire, when set, is the archive whose retirement pass runs on
	// ticks where the store had nothing left to compact — cold-tier
	// housekeeping rides the same pacing as hot-tier reclamation.
	Retire Retirable
	// Interval is the pause between compaction attempts (default 1s).
	Interval time.Duration
	// ForceHist, when set, paces compaction off the force path: before
	// each attempt the compactor snapshots the histogram, diffs it
	// against the previous tick, and backs off when the interval p99
	// exceeds ForceP99Budget. Typically the storage force-latency
	// histogram (storage.<backend>.force_latency_ns).
	ForceHist *telemetry.Histogram
	// ForceP99Budget is the interval force p99 (in the histogram's
	// unit, nanoseconds for the storage instruments) above which
	// compaction yields to the foreground. Zero disables pacing.
	ForceP99Budget uint64
	// Backoff is how long a paced-out compactor waits before looking
	// again (default 4×Interval). Consecutive deferred passes double
	// the wait up to MaxBackoff; the first admitted pass resets it.
	Backoff time.Duration
	// MaxBackoff caps the escalation (default 8×Backoff).
	MaxBackoff time.Duration
	// OnError, when set, observes compaction errors (the loop keeps
	// running: a failed pass retries idempotently on the next tick).
	OnError func(error)
}

// Compactor runs segment compaction in the background, yielding to the
// force path whenever the foreground latency budget is threatened
// (Section 5.3: space management must never interfere with logging).
type Compactor struct {
	cfg  CompactorConfig
	stop chan struct{}
	done chan struct{}
	once sync.Once

	mu        sync.Mutex
	prev      telemetry.HistogramSnapshot
	backoff   time.Duration // current deferral wait; escalates, resets on admit
	reclaimed uint64
	retired   uint64
	deferred  uint64
}

// CompactorStats counts the compactor's lifetime activity.
type CompactorStats struct {
	// Reclaimed is how many segments compaction folded away.
	Reclaimed uint64
	// Retired is how many archive housekeeping units ran (volume
	// retirements, floor persists, index drops).
	Retired uint64
	// Deferred is how many passes pacing pushed back.
	Deferred uint64
}

// newCompactorState builds a Compactor without starting its loop —
// the unit-testable admit/backoff state machine.
func newCompactorState(cfg CompactorConfig) *Compactor {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 4 * cfg.Interval
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 8 * cfg.Backoff
	}
	c := &Compactor{cfg: cfg, backoff: cfg.Backoff, stop: make(chan struct{}), done: make(chan struct{})}
	if cfg.ForceHist != nil {
		c.prev = cfg.ForceHist.Snapshot()
	}
	return c
}

// NewCompactor starts a compactor; Stop shuts it down.
func NewCompactor(cfg CompactorConfig) *Compactor {
	c := newCompactorState(cfg)
	go c.run()
	return c
}

func (c *Compactor) run() {
	defer close(c.done)
	timer := time.NewTimer(c.cfg.Interval)
	defer timer.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-timer.C:
		}
		timer.Reset(c.step())
	}
}

// step runs one compaction attempt (or defers it) and returns the
// delay until the next.
func (c *Compactor) step() time.Duration {
	if !c.admit() {
		c.mu.Lock()
		c.deferred++
		d := c.backoff
		// The force path is hot: stretch consecutive deferrals so a
		// sustained burst is probed less and less often.
		if c.backoff < c.cfg.MaxBackoff {
			c.backoff *= 2
			if c.backoff > c.cfg.MaxBackoff {
				c.backoff = c.cfg.MaxBackoff
			}
		}
		c.mu.Unlock()
		return d
	}
	// Back under budget: reset the escalation, so the next deferral —
	// however long the last hot streak was — starts from the base
	// backoff instead of the stretched one.
	c.mu.Lock()
	c.backoff = c.cfg.Backoff
	c.mu.Unlock()
	ok, err := c.cfg.Store.CompactOnce()
	if err != nil {
		if c.cfg.OnError != nil {
			c.cfg.OnError(err)
		}
		return c.cfg.Backoff
	}
	if ok {
		c.mu.Lock()
		c.reclaimed++
		c.mu.Unlock()
		// More to do: keep going at full tick rate.
		return c.cfg.Interval
	}
	if c.cfg.Retire != nil {
		rok, rerr := c.cfg.Retire.RetireOnce()
		if rerr != nil {
			if c.cfg.OnError != nil {
				c.cfg.OnError(rerr)
			}
			return c.cfg.Backoff
		}
		if rok {
			c.mu.Lock()
			c.retired++
			c.mu.Unlock()
		}
	}
	return c.cfg.Interval
}

// admit decides whether the force path can afford a compaction pass
// right now: the p99 of force latencies observed since the previous
// tick must be inside the budget.
func (c *Compactor) admit() bool {
	if c.cfg.ForceHist == nil || c.cfg.ForceP99Budget == 0 {
		return true
	}
	snap := c.cfg.ForceHist.Snapshot()
	c.mu.Lock()
	delta := snap.Sub(c.prev)
	c.prev = snap
	c.mu.Unlock()
	if delta.Count == 0 {
		// Idle force path: compact freely.
		return true
	}
	return delta.Quantile(0.99) <= c.cfg.ForceP99Budget
}

// Stats reports the compactor's lifetime activity.
func (c *Compactor) Stats() CompactorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CompactorStats{Reclaimed: c.reclaimed, Retired: c.retired, Deferred: c.deferred}
}

// Stop shuts the compactor down and waits for the in-flight pass.
func (c *Compactor) Stop() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}
