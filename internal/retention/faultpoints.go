package retention

import "distlog/internal/faultpoint"

// Crash points on the archive lifecycle path, swept by the segmented
// crashaudit mode.
const (
	// FPVolumeSeal fires after the active archive volume is synced and
	// sealed, before its successor is created: a crash here reopens the
	// full volume as the active one, and the next overflowing append
	// re-runs the rotation.
	FPVolumeSeal = "retention.volume.seal"
	// FPVolumeRetire fires after the retirement boundary is durably
	// advanced past a fully-truncated volume, before the volume file is
	// unlinked: a crash here leaves a stray volume below the boundary,
	// which OpenArchive deletes.
	FPVolumeRetire = "retention.volume.retire"
)

var _ = faultpoint.Register(FPVolumeSeal, FPVolumeRetire)
