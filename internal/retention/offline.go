package retention

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"distlog/internal/appendforest"
	"distlog/internal/record"
)

// VerifyIssue is one consistency violation found by VerifyArchiveDir.
type VerifyIssue struct {
	File   string
	Detail string
}

func (i VerifyIssue) String() string { return i.File + ": " + i.Detail }

// VerifyReport summarizes an offline walk of an archive directory.
// Issues are violations of the archive's invariants; torn tails on the
// active volume or overlay and stray volumes below the boundary are
// legal crash leftovers (open discards them) and are counted, not
// flagged.
type VerifyReport struct {
	Dir      string
	Boundary int64
	Floors   map[record.ClientID]record.LSN

	Volumes       int
	SealedVolumes int
	StrayVolumes  int
	Frames        int
	VolumeBytes   int64
	TornTailBytes int64

	ForestFiles    int
	ForestNodes    int64
	OverlayEntries int

	Issues []VerifyIssue
}

type frameInfo struct {
	client record.ClientID
	lsn    record.LSN
	epoch  record.Epoch
}

// VerifyArchiveDir walks an archive directory offline — without
// opening it as an Archive — checking frame checksums, volume chain
// continuity, and that every forest and overlay entry resolves to a
// matching frame (or lies retired below both the boundary and its
// client's floor). It never mutates the directory.
func VerifyArchiveDir(dir string) (*VerifyReport, error) {
	boundary, floors, err := readArchiveManifest(filepath.Join(dir, archiveManifestName))
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{Dir: dir, Boundary: boundary, Floors: floors}
	issue := func(file, format string, args ...any) {
		rep.Issues = append(rep.Issues, VerifyIssue{File: file, Detail: fmt.Sprintf(format, args...)})
	}

	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []int64
	for _, de := range des {
		base, ok := parseVolBase(de.Name())
		if !ok {
			continue
		}
		if base < boundary {
			rep.StrayVolumes++
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })

	// Walk every frame, building the offset map forest and overlay
	// entries must resolve through.
	frames := make(map[int64]frameInfo)
	next := boundary
	for i, base := range bases {
		name := volName(base)
		rep.Volumes++
		last := i == len(bases)-1
		if !last {
			rep.SealedVolumes++
		}
		if base != next {
			issue(name, "volume chain gap: want base %d", next)
		}
		buf, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		off := int64(0)
		for off < int64(len(buf)) {
			fr, n, err := decodeDataFrame(buf[off:])
			if err != nil {
				if last {
					rep.TornTailBytes += int64(len(buf)) - off
				} else {
					issue(name, "bad frame at %d in sealed volume: %v", off, err)
				}
				break
			}
			frames[base+off] = frameInfo{client: fr.c, lsn: fr.rec.LSN, epoch: fr.rec.Epoch}
			rep.Frames++
			off += int64(n)
		}
		rep.VolumeBytes += off
		next = base + off
	}

	for _, de := range des {
		var id uint64
		if n, _ := fmt.Sscanf(de.Name(), "forest-%d.af", &id); n != 1 {
			continue
		}
		c := record.ClientID(id)
		rep.ForestFiles++
		store, err := appendforest.OpenFileNodeStore(filepath.Join(dir, de.Name()))
		if err != nil {
			issue(de.Name(), "open: %v", err)
			continue
		}
		forest, err := appendforest.OpenPersistent(store)
		if err != nil {
			store.Close()
			issue(de.Name(), "replay: %v", err)
			continue
		}
		rep.ForestNodes += forest.Len()
		err = forest.Scan(func(key uint64, off int64) error {
			lsn := record.LSN(key)
			if off < boundary {
				// The frame retired; legal only if the LSN can never be
				// read again.
				if lsn >= floors[c] {
					issue(de.Name(), "key %d points at retired offset %d but is at or above the floor %d", key, off, floors[c])
				}
				return nil
			}
			fi, ok := frames[off]
			if !ok {
				issue(de.Name(), "key %d points at offset %d where no frame starts", key, off)
				return nil
			}
			if fi.client != c || fi.lsn != lsn {
				issue(de.Name(), "key %d points at frame (%d,%d) at offset %d", key, fi.client, fi.lsn, off)
			}
			return nil
		})
		store.Close()
		if err != nil {
			issue(de.Name(), "scan: %v", err)
		}
	}

	obuf, err := os.ReadFile(filepath.Join(dir, archiveOverlayName))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	off := int64(0)
	for off+overlayFrameSize <= int64(len(obuf)) {
		fr := obuf[off : off+overlayFrameSize]
		if crc32.ChecksumIEEE(fr[:overlayFrameSize-4]) != binary.BigEndian.Uint32(fr[overlayFrameSize-4:]) {
			rep.TornTailBytes += int64(len(obuf)) - off
			break
		}
		c := record.ClientID(binary.BigEndian.Uint64(fr[0:]))
		lsn := record.LSN(binary.BigEndian.Uint64(fr[8:]))
		ref := int64(binary.BigEndian.Uint64(fr[24:]))
		rep.OverlayEntries++
		if ref < boundary {
			if lsn >= floors[c] {
				issue(archiveOverlayName, "entry (%d,%d) points at retired offset %d but is at or above the floor %d", c, lsn, ref, floors[c])
			}
		} else if fi, ok := frames[ref]; !ok {
			issue(archiveOverlayName, "entry (%d,%d) points at offset %d where no frame starts", c, lsn, ref)
		} else if fi.client != c || fi.lsn != lsn {
			issue(archiveOverlayName, "entry (%d,%d) points at frame (%d,%d)", c, lsn, fi.client, fi.lsn)
		}
		off += overlayFrameSize
	}
	return rep, nil
}

// Render writes the report in logctl's human format.
func (r *VerifyReport) Render(w io.Writer) {
	fmt.Fprintf(w, "archive:         %s\n", r.Dir)
	fmt.Fprintf(w, "boundary:        %d\n", r.Boundary)
	fmt.Fprintf(w, "volumes:         %d (%d sealed, %d stray, %d bytes)\n", r.Volumes, r.SealedVolumes, r.StrayVolumes, r.VolumeBytes)
	fmt.Fprintf(w, "frames:          %d\n", r.Frames)
	fmt.Fprintf(w, "forests:         %d files, %d nodes\n", r.ForestFiles, r.ForestNodes)
	fmt.Fprintf(w, "overlay entries: %d\n", r.OverlayEntries)
	if r.TornTailBytes > 0 {
		fmt.Fprintf(w, "torn tail bytes: %d (discarded on next open)\n", r.TornTailBytes)
	}
	clients := make([]record.ClientID, 0, len(r.Floors))
	for c := range r.Floors {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	for _, c := range clients {
		fmt.Fprintf(w, "floor client %d:  %d\n", c, r.Floors[c])
	}
	if len(r.Issues) == 0 {
		fmt.Fprintf(w, "ok\n")
		return
	}
	for _, i := range r.Issues {
		fmt.Fprintf(w, "ISSUE %s\n", i)
	}
}

// ExportArchiveDir dumps the frames of one volume (by base offset) or,
// with base < 0, of every volume, oldest first — an offline record
// dump that needs no running server.
func ExportArchiveDir(w io.Writer, dir string, base int64) error {
	des, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var bases []int64
	for _, de := range des {
		b, ok := parseVolBase(de.Name())
		if !ok {
			continue
		}
		if base >= 0 && b != base {
			continue
		}
		bases = append(bases, b)
	}
	if len(bases) == 0 {
		if base >= 0 {
			return fmt.Errorf("retention: no volume with base %d in %s", base, dir)
		}
		return fmt.Errorf("retention: no volumes in %s", dir)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, b := range bases {
		name := volName(b)
		buf, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s (%d bytes)\n", name, len(buf))
		off := int64(0)
		for off < int64(len(buf)) {
			fr, n, err := decodeDataFrame(buf[off:])
			if err != nil {
				fmt.Fprintf(w, "  off %d: torn tail (%d bytes)\n", b+off, int64(len(buf))-off)
				break
			}
			fmt.Fprintf(w, "  off %d: client %d lsn %d epoch %d present %t data %q\n",
				b+off, fr.c, fr.rec.LSN, fr.rec.Epoch, fr.rec.Present, fr.rec.Data)
			off += int64(n)
		}
	}
	return nil
}
