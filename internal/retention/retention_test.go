package retention

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"distlog/internal/record"
	"distlog/internal/storage"
	"distlog/internal/telemetry"
)

var _ storage.ArchiveTier = (*Archive)(nil)

func rec(lsn record.LSN, epoch record.Epoch, data string) record.Record {
	return record.Record{LSN: lsn, Epoch: epoch, Present: true, Data: []byte(data)}
}

func TestArchiveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenArchive(dir, ArchiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const c = record.ClientID(7)
	for i := 1; i <= 100; i++ {
		if err := a.Archive(c, rec(record.LSN(i), 1, fmt.Sprintf("archived-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	check := func(a *Archive) {
		t.Helper()
		for i := 1; i <= 100; i++ {
			got, ok, err := a.Lookup(c, record.LSN(i))
			if err != nil || !ok {
				t.Fatalf("Lookup(%d) = %v, %v", i, ok, err)
			}
			if string(got.Data) != fmt.Sprintf("archived-%03d", i) {
				t.Fatalf("Lookup(%d) = %q", i, got.Data)
			}
		}
		if _, ok, _ := a.Lookup(c, 101); ok {
			t.Fatal("Lookup(101) found a record never archived")
		}
		if _, ok, _ := a.Lookup(record.ClientID(99), 1); ok {
			t.Fatal("Lookup found a record for an unknown client")
		}
	}
	check(a)
	if a.Bytes() == 0 {
		t.Fatal("Bytes() = 0 after archiving")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the forest recovers by scanning its node log.
	a, err = OpenArchive(dir, ArchiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	check(a)
}

func TestArchiveIdempotentAndEpochSupersede(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenArchive(dir, ArchiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const c = record.ClientID(2)
	for i := 1; i <= 10; i++ {
		if err := a.Archive(c, rec(record.LSN(i), 1, fmt.Sprintf("v1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := a.Bytes()
	// Re-archiving the same records (a compaction retried after a
	// crash) must not grow the archive.
	for i := 1; i <= 10; i++ {
		if err := a.Archive(c, rec(record.LSN(i), 1, fmt.Sprintf("v1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if a.Bytes() != sizeBefore {
		t.Fatalf("idempotent re-archive grew the archive: %d -> %d", sizeBefore, a.Bytes())
	}
	// A recovery copy at a higher epoch supersedes, via the overlay
	// (the write-once forest cannot be edited).
	if err := a.Archive(c, rec(5, 3, "v3-5")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := a.Lookup(c, 5)
	if err != nil || !ok || string(got.Data) != "v3-5" || got.Epoch != 3 {
		t.Fatalf("Lookup(5) = %v, %v, %v", got, ok, err)
	}
	// A stale lower epoch arriving later is ignored.
	if err := a.Archive(c, rec(5, 2, "v2-5")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = a.Lookup(c, 5)
	if got.Epoch != 3 {
		t.Fatalf("stale epoch resurfaced: %v", got)
	}
	// The overlay survives reopen.
	a.Sync()
	a.Close()
	a, err = OpenArchive(dir, ArchiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	got, ok, err = a.Lookup(c, 5)
	if err != nil || !ok || string(got.Data) != "v3-5" {
		t.Fatalf("after reopen Lookup(5) = %v, %v, %v", got, ok, err)
	}
}

func TestArchiveTornTailsDiscarded(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenArchive(dir, ArchiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const c = record.ClientID(4)
	for i := 1; i <= 5; i++ {
		if err := a.Archive(c, rec(record.LSN(i), 1, "x")); err != nil {
			t.Fatal(err)
		}
	}
	a.Sync()
	a.Close()

	// Tear bytes off the data log: the last frame becomes invalid, but
	// earlier frames (and the forest nodes pointing at them) survive.
	// The forest node for the torn frame was written too, so reopening
	// must not serve it — tear the node file's tail as well, as a crash
	// mid-archive would leave it.
	dataPath := filepath.Join(dir, volName(0))
	info, err := os.Stat(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(dataPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	forestPath := filepath.Join(dir, forestName(c))
	finfo, err := os.Stat(forestPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(forestPath, finfo.Size()-3); err != nil {
		t.Fatal(err)
	}

	a, err = OpenArchive(dir, ArchiveOptions{})
	if err != nil {
		t.Fatalf("reopen with torn tails: %v", err)
	}
	defer a.Close()
	for i := 1; i <= 4; i++ {
		if _, ok, err := a.Lookup(c, record.LSN(i)); !ok || err != nil {
			t.Fatalf("Lookup(%d) = %v, %v after torn-tail recovery", i, ok, err)
		}
	}
	// Record 5 is gone; re-archiving it (the compaction retry) works.
	if _, ok, _ := a.Lookup(c, 5); ok {
		t.Fatal("torn record still served")
	}
	if err := a.Archive(c, rec(5, 1, "x")); err != nil {
		t.Fatalf("re-archive after torn tail: %v", err)
	}
	if _, ok, _ := a.Lookup(c, 5); !ok {
		t.Fatal("re-archived record not served")
	}
}

// fakeStore counts CompactOnce calls.
type fakeStore struct {
	mu    sync.Mutex
	calls int
	left  int
}

func (f *fakeStore) CompactOnce() (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.left > 0 {
		f.left--
		return true, nil
	}
	return false, nil
}

func (f *fakeStore) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func TestCompactorDrainsStore(t *testing.T) {
	fs := &fakeStore{left: 5}
	c := NewCompactor(CompactorConfig{Store: fs, Interval: time.Millisecond})
	defer c.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if st.Reclaimed >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor reclaimed %d of 5 segments", st.Reclaimed)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCompactorPacedByForceLatency(t *testing.T) {
	hist := telemetry.NewRegistry().Histogram("force")
	fs := &fakeStore{left: 1 << 30}
	c := NewCompactor(CompactorConfig{
		Store:          fs,
		Interval:       time.Millisecond,
		Backoff:        2 * time.Millisecond,
		ForceHist:      hist,
		ForceP99Budget: 1000,
	})
	defer c.Stop()

	// Feed the histogram with over-budget force latencies: the
	// compactor must stop passing work to the store.
	stopFeed := make(chan struct{})
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		for {
			select {
			case <-stopFeed:
				return
			default:
				hist.Observe(100000)
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	// Let the pacer see the hot histogram for a few ticks.
	time.Sleep(20 * time.Millisecond)
	before := fs.count()
	time.Sleep(50 * time.Millisecond)
	paced := fs.count() - before
	deferred := c.Stats().Deferred
	if deferred == 0 {
		t.Fatalf("no pass was deferred under an over-budget force path (passes in window: %d)", paced)
	}

	// Quiet force path: compaction resumes at full rate.
	close(stopFeed)
	feedWG.Wait()
	// One more snapshot cycle flushes the last hot delta.
	time.Sleep(20 * time.Millisecond)
	before = fs.count()
	time.Sleep(50 * time.Millisecond)
	quiet := fs.count() - before
	if quiet <= paced {
		t.Fatalf("compaction did not speed up when the force path went quiet: %d paced vs %d quiet", paced, quiet)
	}
}
