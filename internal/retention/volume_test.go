package retention

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"distlog/internal/record"
	"distlog/internal/telemetry"
)

// countVolFiles counts the vol-*.log files in an archive directory.
func countVolFiles(t *testing.T, dir string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if strings.HasPrefix(de.Name(), "vol-") && strings.HasSuffix(de.Name(), ".log") {
			n++
		}
	}
	return n
}

// TestArchiveFloorClampsReads is the regression test for archived
// records falling below a client's truncation floor: they must vanish
// from Lookup and Clients immediately — even though their frames still
// sit on not-yet-retired volumes — and stay vanished across a reopen
// once the floor is durable.
func TestArchiveFloorClampsReads(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenArchive(dir, ArchiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const c = record.ClientID(3)
	for i := 1; i <= 20; i++ {
		if err := a.Archive(c, rec(record.LSN(i), 1, fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Truncate(c, 11); err != nil {
		t.Fatal(err)
	}
	// The clamp is immediate, not deferred to the next Sync.
	if _, ok, err := a.Lookup(c, 5); ok || err != nil {
		t.Fatalf("Lookup(5) below the floor = %v, %v; want gone", ok, err)
	}
	if _, ok, err := a.Lookup(c, 11); !ok || err != nil {
		t.Fatalf("Lookup(11) at the floor = %v, %v; want served", ok, err)
	}
	if got := a.Clients(); len(got) != 1 || got[0] != c {
		t.Fatalf("Clients() = %v with records above the floor", got)
	}
	// A floor past everything archived removes the client entirely.
	if err := a.Truncate(c, 21); err != nil {
		t.Fatal(err)
	}
	if got := a.Clients(); len(got) != 0 {
		t.Fatalf("Clients() = %v after the floor passed the whole archive", got)
	}
	if _, ok, _ := a.Lookup(c, 15); ok {
		t.Fatal("Lookup(15) served a record below the advanced floor")
	}
	// Sync persists the floor in the manifest; the clamp must survive a
	// reopen even though every frame is still on disk.
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a, err = OpenArchive(dir, ArchiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, ok, _ := a.Lookup(c, 5); ok {
		t.Fatal("reopen resurfaced a record below the durable floor")
	}
	if got := a.Clients(); len(got) != 0 {
		t.Fatalf("reopen Clients() = %v below the durable floor", got)
	}
	if a.Floor(c) != 21 {
		t.Fatalf("reopen Floor() = %d, want 21", a.Floor(c))
	}
}

// TestArchiveVolumeRotationAndRetire drives the full volume lifecycle:
// tiny volumes rotate under load, a truncation-floor advance makes the
// old ones retirable, RetireOnce unlinks them wholesale behind a
// durable boundary, and both the survivors and the boundary persist
// across a reopen.
func TestArchiveVolumeRotationAndRetire(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenArchive(dir, ArchiveOptions{VolumeBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const c = record.ClientID(9)
	for i := 1; i <= 40; i++ {
		if err := a.Archive(c, rec(record.LSN(i), 1, fmt.Sprintf("volume-record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if a.Volumes() < 4 {
		t.Fatalf("only %d volumes after 40 records at 128-byte capacity; rotation broken", a.Volumes())
	}
	for i := 1; i <= 40; i++ {
		if _, ok, err := a.Lookup(c, record.LSN(i)); !ok || err != nil {
			t.Fatalf("Lookup(%d) across volumes = %v, %v", i, ok, err)
		}
	}
	before := a.Bytes()

	// Advance the floor and drain the retirement pass: dead volumes are
	// unlinked, the dead forest prefix is compacted away, and the
	// directory holds exactly what the archive accounts for.
	if err := a.Truncate(c, 31); err != nil {
		t.Fatal(err)
	}
	for {
		ok, err := a.RetireOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if a.Retired() == 0 {
		t.Fatal("no volume retired although every record on the old ones is below the floor")
	}
	if a.Boundary() == 0 {
		t.Fatal("retirement did not advance the boundary")
	}
	if got := countVolFiles(t, dir); got != a.Volumes() {
		t.Fatalf("%d vol-*.log files on disk, archive accounts for %d", got, a.Volumes())
	}
	if a.Bytes() >= before {
		t.Fatalf("retirement did not shrink the archive: %d -> %d bytes", before, a.Bytes())
	}
	for i := 31; i <= 40; i++ {
		if _, ok, err := a.Lookup(c, record.LSN(i)); !ok || err != nil {
			t.Fatalf("Lookup(%d) after retirement = %v, %v", i, ok, err)
		}
	}
	if _, ok, _ := a.Lookup(c, 5); ok {
		t.Fatal("a retired record resurfaced")
	}

	// The offline verifier agrees with the live state.
	rep, err := VerifyArchiveDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) > 0 {
		t.Fatalf("verify after retirement: %v", rep.Issues)
	}

	boundary := a.Boundary()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a, err = OpenArchive(dir, ArchiveOptions{VolumeBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Boundary() != boundary {
		t.Fatalf("boundary %d not durable, reopened as %d", boundary, a.Boundary())
	}
	for i := 31; i <= 40; i++ {
		if _, ok, err := a.Lookup(c, record.LSN(i)); !ok || err != nil {
			t.Fatalf("reopen Lookup(%d) = %v, %v", i, ok, err)
		}
	}
}

// TestArchiveStrayVolumeRemovedOnOpen simulates a crash between the
// boundary advance and the unlink: a volume below the durable boundary
// must be deleted — never read — on the next open.
func TestArchiveStrayVolumeRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenArchive(dir, ArchiveOptions{VolumeBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const c = record.ClientID(5)
	for i := 1; i <= 40; i++ {
		if err := a.Archive(c, rec(record.LSN(i), 1, fmt.Sprintf("stray-record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Truncate(c, 31); err != nil {
		t.Fatal(err)
	}
	for {
		ok, err := a.RetireOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	boundary := a.Boundary()
	if boundary == 0 {
		t.Fatal("setup: nothing retired")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect a file below the boundary, as the crash would leave it.
	stray := volName(0)
	if err := os.WriteFile(dir+"/"+stray, []byte("dead bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err = OpenArchive(dir, ArchiveOptions{VolumeBytes: 128})
	if err != nil {
		t.Fatalf("reopen with a stray retired volume: %v", err)
	}
	defer a.Close()
	if _, err := os.Stat(dir + "/" + stray); !os.IsNotExist(err) {
		t.Fatal("stray volume below the boundary survived reopen")
	}
	for i := 31; i <= 40; i++ {
		if _, ok, err := a.Lookup(c, record.LSN(i)); !ok || err != nil {
			t.Fatalf("Lookup(%d) = %v, %v after stray cleanup", i, ok, err)
		}
	}
}

// TestCompactorBackoffResetsAfterAdmit is the regression test for the
// pacing state machine: a long deferred streak escalates the backoff,
// and one admitted pass must reset it to the base — the next deferral
// starts the escalation over instead of inheriting the stretched wait.
func TestCompactorBackoffResetsAfterAdmit(t *testing.T) {
	hist := telemetry.NewRegistry().Histogram("force")
	fs := &fakeStore{left: 1 << 30}
	c := newCompactorState(CompactorConfig{
		Store:          fs,
		Interval:       time.Millisecond,
		Backoff:        40 * time.Millisecond,
		MaxBackoff:     320 * time.Millisecond,
		ForceHist:      hist,
		ForceP99Budget: 1000,
	})

	// A hot force path defers every pass, doubling the wait up to the
	// cap.
	hot := func() { hist.Observe(100000) }
	wantWaits := []time.Duration{40, 80, 160, 320, 320, 320}
	for i, want := range wantWaits {
		hot()
		if got := c.step(); got != want*time.Millisecond {
			t.Fatalf("deferral %d: step() = %v, want %v", i, got, want*time.Millisecond)
		}
	}
	if c.Stats().Deferred != uint64(len(wantWaits)) {
		t.Fatalf("Deferred = %d, want %d", c.Stats().Deferred, len(wantWaits))
	}

	// A quiet interval admits the pass and compacts.
	if got := c.step(); got != time.Millisecond {
		t.Fatalf("admitted step() = %v, want the interval", got)
	}
	if c.Stats().Reclaimed != 1 {
		t.Fatalf("Reclaimed = %d after the admitted pass", c.Stats().Reclaimed)
	}

	// The very next deferral must start from the base backoff again —
	// before the fix it resumed at the 320ms cap.
	hot()
	if got := c.step(); got != 40*time.Millisecond {
		t.Fatalf("post-recovery deferral: step() = %v, want the base 40ms", got)
	}
}

// fakeRetirable counts RetireOnce calls and reports work for the
// first `left` of them.
type fakeRetirable struct {
	left int
}

func (f *fakeRetirable) RetireOnce() (bool, error) {
	if f.left > 0 {
		f.left--
		return true, nil
	}
	return false, nil
}

// TestCompactorDrivesRetirement: once the hot tier has nothing left to
// compact, the compactor's ticks run the archive's retirement pass.
func TestCompactorDrivesRetirement(t *testing.T) {
	fr := &fakeRetirable{left: 3}
	c := NewCompactor(CompactorConfig{
		Store:    &fakeStore{},
		Retire:   fr,
		Interval: time.Millisecond,
	})
	defer c.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Retired < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("compactor drove %d of 3 retirement units", c.Stats().Retired)
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkArchiveLookupAcrossVolumes measures cold-tier point reads
// when the stream is cut into many volumes and every lookup must route
// through the forest to the right file.
func BenchmarkArchiveLookupAcrossVolumes(b *testing.B) {
	dir := b.TempDir()
	a, err := OpenArchive(dir, ArchiveOptions{VolumeBytes: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	const c = record.ClientID(1)
	const n = 10000
	for i := 1; i <= n; i++ {
		if err := a.Archive(c, rec(record.LSN(i), 1, fmt.Sprintf("bench-record-%06d", i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := a.Sync(); err != nil {
		b.Fatal(err)
	}
	b.Logf("volumes: %d", a.Volumes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsn := record.LSN(1 + (i*7919)%n)
		if _, ok, err := a.Lookup(c, lsn); !ok || err != nil {
			b.Fatalf("Lookup(%d) = %v, %v", lsn, ok, err)
		}
	}
}
