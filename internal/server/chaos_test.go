package server_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"distlog/internal/core"
	"distlog/internal/record"
	"distlog/internal/server"
	"distlog/internal/sim"
	"distlog/internal/storage"
	"distlog/internal/transport"
)

// TestMultiClientChaos runs several full-protocol clients concurrently
// against a cluster of pipelined servers over a lossy, duplicating,
// reordering memnet, then heals the network and audits every client
// with the Section 3.1 checker: acknowledged records durable and
// correct, the doubtful window bounded by δ. This is the concurrency
// soak for the per-session write pipeline — sessions, group-force
// rounds, NACK/retry, and failover all interleave across clients.
func TestMultiClientChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	const (
		servers = 3
		clients = 4
		rounds  = 24
		delta   = 4
	)
	net := transport.NewNetwork(42)

	var names []string
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("ls%d", i+1)
		names = append(names, name)
		srv := server.New(server.Config{
			Name:     name,
			Store:    storage.NewMemStore(),
			Endpoint: net.Endpoint(name),
			Epochs:   server.NewMemEpochHost(),
		})
		srv.Start()
		t.Cleanup(srv.Stop)
	}

	net.SetFaults(transport.Faults{DropProb: 0.05, DupProb: 0.05, MaxDelay: 2 * time.Millisecond})

	type tail struct {
		l   *core.ReplicatedLog
		chk *sim.CrashChecker
	}
	results := make([]tail, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chk := sim.NewCrashChecker(delta)
			l, err := core.Open(core.Config{
				ClientID:    record.ClientID(30 + i),
				Servers:     append([]string(nil), names...),
				N:           2,
				Delta:       delta,
				Endpoint:    net.Endpoint(fmt.Sprintf("chaos-cli-%d", i)),
				CallTimeout: 30 * time.Millisecond,
				Retries:     3,
				FlushBatch:  2,
			})
			if err != nil {
				errs[i] = fmt.Errorf("open: %w", err)
				return
			}
			n := 0
			for r := 0; r < rounds; r++ {
				for k := 0; k < 1+r%3; k++ {
					n++
					data := []byte(fmt.Sprintf("c%d-%d", i, n))
					if lsn, err := l.WriteLog(data); err == nil {
						chk.Wrote(lsn, data)
					}
				}
				if r%2 == 1 {
					if err := l.Force(); err == nil {
						chk.Forced()
					}
				}
			}
			results[i] = tail{l: l, chk: chk}
		}(i)
	}
	wg.Wait()
	net.SetFaults(transport.Faults{})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Healed-network audit on the live incarnation, then a clean
	// crash/reopen cycle: what each client was acked must survive.
	for i, res := range results {
		if err := res.chk.Audit(res.l); err != nil {
			res.l.Close()
			t.Fatalf("client %d live audit: %v", i, err)
		}
		res.l.Close()
		res.chk.Crashed()
		l2, err := core.Open(core.Config{
			ClientID:    record.ClientID(30 + i),
			Servers:     append([]string(nil), names...),
			N:           2,
			Delta:       delta,
			Endpoint:    net.Endpoint(fmt.Sprintf("chaos-cli-%d", i)),
			CallTimeout: 30 * time.Millisecond,
			Retries:     3,
		})
		if err != nil {
			t.Fatalf("client %d reopen: %v", i, err)
		}
		err = res.chk.Audit(l2)
		l2.Close()
		if err != nil {
			t.Fatalf("client %d recovery audit: %v", i, err)
		}
	}
}
