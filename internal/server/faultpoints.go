package server

import "distlog/internal/faultpoint"

// Crash points of the server's write and install paths. The crashaudit
// harness kills a server at each of them (by closing its endpoint, so
// no acknowledgment escapes) and checks that clients recover: an ack
// lost before or after the store force must never lose an acknowledged
// record, and an install interrupted before commit must be redone or
// superseded by the next client incarnation.
const (
	// FPWriteBeforeForce interrupts a ForceLog after the records were
	// appended but before the store force: on a volatile staging buffer
	// the records may be lost with the node.
	FPWriteBeforeForce = "server.write.before-force"
	// FPWriteAfterForce interrupts a ForceLog after the store force but
	// before the NewHighLSN acknowledgment: the data is stable, the ack
	// is lost.
	FPWriteAfterForce = "server.write.after-force"
	// FPInstallBeforeCommit interrupts InstallCopies before the store
	// commits the staged records: the staged copies must die with the
	// incarnation that staged them.
	FPInstallBeforeCommit = "server.install.before-commit"
	// FPWorkerBeforeForce interrupts a session worker as it dequeues a
	// ForceLog, before any of the message is applied: the pipelined
	// server may crash with the message accepted into a queue but
	// nothing appended or forced.
	FPWorkerBeforeForce = "server.worker.before-force"
	// FPForceBetweenCoalesced interrupts the group-force handoff: the
	// in-flight store force completed (and its round's clients may
	// already be acked) but the successor round — covering later
	// appends — never starts.
	FPForceBetweenCoalesced = "server.force.between-coalesced"
	// FPReadBeforeStore interrupts (or, armed with a delay, slows) the
	// synchronous read path before it touches the store — the hook the
	// slow-reader isolation tests use, and a crash point for a server
	// dying mid-read during a client's recovery.
	FPReadBeforeStore = "server.read.before-store"
	// FPStreamBetweenPackets interrupts a streaming range read before
	// each reply chunk is sent: a server dying partway through a
	// multi-packet stream leaves the client with a prefix of the range
	// and no done flag, forcing a mid-stream failover.
	FPStreamBetweenPackets = "server.stream.between-packets"
	// FPAckerBeforeForce interrupts the session acker as it picks up an
	// appended-but-unforced high-water mark, before the background force
	// runs: streamed records are in the store (possibly volatile), no
	// force covers them, and no ack has been generated.
	FPAckerBeforeForce = "server.acker.before-force"
)

var _ = faultpoint.Register(
	FPWriteBeforeForce,
	FPWriteAfterForce,
	FPInstallBeforeCommit,
	FPWorkerBeforeForce,
	FPForceBetweenCoalesced,
	FPReadBeforeStore,
	FPStreamBetweenPackets,
	FPAckerBeforeForce,
)
