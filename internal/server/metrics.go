package server

import (
	"distlog/internal/telemetry"
)

// Server metric names.
const (
	mPacketsReceived = "server.packets_received"
	mPacketsDropped  = "server.packets_dropped"
	mRecordsAppended = "server.records_appended"
	mForces          = "server.forces"
	mAcksSent        = "server.acks_sent"
	mNacksSent       = "server.nacks_sent"
	mReadsServed     = "server.reads_served"
	mStreamsServed   = "server.streams_served"
	mStreamPackets   = "server.stream_packets"
	mSheds           = "server.sheds"
	mBusySent        = "server.busy_sent"
	mSessions        = "server.sessions"
	mSessionsEvicted = "server.sessions_evicted"
	mQueueSheds      = "server.queue_sheds"
	mForceRounds     = "server.force.rounds"
	mForcesCoalesced = "server.force.coalesced"
	mForceLatency    = "server.force.latency_ns"
	mAppendToForce   = "server.append_to_force_ns"
)

// serverMetrics is the server's single source of activity counters;
// the legacy Stats() API is a snapshot view over it. When no Registry
// is configured a private one is installed so Stats() keeps working.
type serverMetrics struct {
	node  string
	trace *telemetry.Trace

	packetsReceived *telemetry.Counter
	packetsDropped  *telemetry.Counter
	recordsAppended *telemetry.Counter
	forces          *telemetry.Counter
	acksSent        *telemetry.Counter
	nacksSent       *telemetry.Counter
	readsServed     *telemetry.Counter
	streamsServed   *telemetry.Counter
	streamPackets   *telemetry.Counter
	sheds           *telemetry.Counter
	busySent        *telemetry.Counter
	sessionsEvicted *telemetry.Counter
	queueSheds      *telemetry.Counter
	forceRounds     *telemetry.Counter
	forcesCoalesced *telemetry.Counter

	sessions *telemetry.Gauge

	// forceLatency is the store Force() call alone; appendToForce is
	// the span from the first unforced append to the force completing —
	// the server-side half of a client's force round trip.
	forceLatency  *telemetry.Histogram
	appendToForce *telemetry.Histogram
}

func newServerMetrics(reg *telemetry.Registry, node string) *serverMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &serverMetrics{
		node:            node,
		trace:           reg.Trace(),
		packetsReceived: reg.Counter(mPacketsReceived),
		packetsDropped:  reg.Counter(mPacketsDropped),
		recordsAppended: reg.Counter(mRecordsAppended),
		forces:          reg.Counter(mForces),
		acksSent:        reg.Counter(mAcksSent),
		nacksSent:       reg.Counter(mNacksSent),
		readsServed:     reg.Counter(mReadsServed),
		streamsServed:   reg.Counter(mStreamsServed),
		streamPackets:   reg.Counter(mStreamPackets),
		sheds:           reg.Counter(mSheds),
		busySent:        reg.Counter(mBusySent),
		sessionsEvicted: reg.Counter(mSessionsEvicted),
		queueSheds:      reg.Counter(mQueueSheds),
		forceRounds:     reg.Counter(mForceRounds),
		forcesCoalesced: reg.Counter(mForcesCoalesced),
		sessions:        reg.Gauge(mSessions),
		forceLatency:    reg.Histogram(mForceLatency),
		appendToForce:   reg.Histogram(mAppendToForce),
	}
}

func (m *serverMetrics) stats() Stats {
	return Stats{
		PacketsReceived:  m.packetsReceived.Value(),
		PacketsDropped:   m.packetsDropped.Value(),
		RecordsWritten:   m.recordsAppended.Value(),
		Forces:           m.forces.Value(),
		AcksSent:         m.acksSent.Value(),
		MissingIntervals: m.nacksSent.Value(),
		ReadsServed:      m.readsServed.Value(),
		StreamsServed:    m.streamsServed.Value(),
		StreamPackets:    m.streamPackets.Value(),
		Shed:             m.sheds.Value(),
		BusySent:         m.busySent.Value(),
		Sessions:         m.sessions.Value(),
		Evicted:          m.sessionsEvicted.Value(),
		QueueSheds:       m.queueSheds.Value(),
		ForceRounds:      m.forceRounds.Value(),
		ForcesCoalesced:  m.forcesCoalesced.Value(),
	}
}
