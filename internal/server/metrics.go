package server

import (
	"distlog/internal/telemetry"
)

// Server metric names.
const (
	mPacketsReceived = "server.packets_received"
	mPacketsDropped  = "server.packets_dropped"
	mRecordsAppended = "server.records_appended"
	mForces          = "server.forces"
	mAcksSent        = "server.acks_sent"
	mNacksSent       = "server.nacks_sent"
	mReadsServed     = "server.reads_served"
	mStreamsServed   = "server.streams_served"
	mStreamPackets   = "server.stream_packets"
	mSheds           = "server.sheds"
	mBusySent        = "server.busy_sent"
	mRedirectsSent   = "server.redirects_sent"
	mSessions        = "server.sessions"
	// mSessionsNode prefixes the per-node session gauge: a process
	// sharing one Registry across several servers (the cluster façade)
	// gets "server.sessions.<node>" per server alongside the aggregate —
	// the per-server load signal the load-assignment controller consumes.
	mSessionsNode    = "server.sessions."
	mSessionsEvicted = "server.sessions_evicted"
	mQueueSheds      = "server.queue_sheds"
	mTruncatePoints  = "server.truncate_points"
	mForceRounds     = "server.force.rounds"
	mForcesCoalesced = "server.force.coalesced"
	mForceLatency    = "server.force.latency_ns"
	mAppendToForce   = "server.append_to_force_ns"
)

// serverMetrics is the server's single source of activity counters;
// the legacy Stats() API is a snapshot view over it. When no Registry
// is configured a private one is installed so Stats() keeps working —
// but the latency histograms stay nil in that case: Stats() never
// reads them, so observing into a registry nobody can reach would buy
// two time.Now calls per force for nothing (measurable on the hot
// acker path at 16 concurrent sessions; Observe is nil-safe).
type serverMetrics struct {
	node  string
	trace *telemetry.Trace

	packetsReceived *telemetry.Counter
	packetsDropped  *telemetry.Counter
	recordsAppended *telemetry.Counter
	forces          *telemetry.Counter
	acksSent        *telemetry.Counter
	nacksSent       *telemetry.Counter
	readsServed     *telemetry.Counter
	streamsServed   *telemetry.Counter
	streamPackets   *telemetry.Counter
	sheds           *telemetry.Counter
	busySent        *telemetry.Counter
	redirectsSent   *telemetry.Counter
	sessionsEvicted *telemetry.Counter
	queueSheds      *telemetry.Counter
	truncatePoints  *telemetry.Counter
	forceRounds     *telemetry.Counter
	forcesCoalesced *telemetry.Counter

	sessions     *telemetry.Gauge
	nodeSessions *telemetry.Gauge // this server's sessions alone (mSessionsNode + node)

	// forceLatency is the store Force() call alone; appendToForce is
	// the span from the first unforced append to the force completing —
	// the server-side half of a client's force round trip.
	forceLatency  *telemetry.Histogram
	appendToForce *telemetry.Histogram
}

func newServerMetrics(reg *telemetry.Registry, node string) *serverMetrics {
	armed := reg != nil
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &serverMetrics{
		node:            node,
		trace:           reg.Trace(),
		packetsReceived: reg.Counter(mPacketsReceived),
		packetsDropped:  reg.Counter(mPacketsDropped),
		recordsAppended: reg.Counter(mRecordsAppended),
		forces:          reg.Counter(mForces),
		acksSent:        reg.Counter(mAcksSent),
		nacksSent:       reg.Counter(mNacksSent),
		readsServed:     reg.Counter(mReadsServed),
		streamsServed:   reg.Counter(mStreamsServed),
		streamPackets:   reg.Counter(mStreamPackets),
		sheds:           reg.Counter(mSheds),
		busySent:        reg.Counter(mBusySent),
		redirectsSent:   reg.Counter(mRedirectsSent),
		sessionsEvicted: reg.Counter(mSessionsEvicted),
		queueSheds:      reg.Counter(mQueueSheds),
		truncatePoints:  reg.Counter(mTruncatePoints),
		forceRounds:     reg.Counter(mForceRounds),
		forcesCoalesced: reg.Counter(mForcesCoalesced),
		sessions:        reg.Gauge(mSessions),
		nodeSessions:    reg.Gauge(mSessionsNode + node),
	}
	if armed {
		m.forceLatency = reg.Histogram(mForceLatency)
		m.appendToForce = reg.Histogram(mAppendToForce)
	}
	return m
}

func (m *serverMetrics) stats() Stats {
	return Stats{
		PacketsReceived:  m.packetsReceived.Value(),
		PacketsDropped:   m.packetsDropped.Value(),
		RecordsWritten:   m.recordsAppended.Value(),
		Forces:           m.forces.Value(),
		AcksSent:         m.acksSent.Value(),
		MissingIntervals: m.nacksSent.Value(),
		ReadsServed:      m.readsServed.Value(),
		StreamsServed:    m.streamsServed.Value(),
		StreamPackets:    m.streamPackets.Value(),
		Shed:             m.sheds.Value(),
		BusySent:         m.busySent.Value(),
		RedirectsSent:    m.redirectsSent.Value(),
		Sessions:         m.sessions.Value(),
		Evicted:          m.sessionsEvicted.Value(),
		QueueSheds:       m.queueSheds.Value(),
		ForceRounds:      m.forceRounds.Value(),
		ForcesCoalesced:  m.forcesCoalesced.Value(),
	}
}
