package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distlog/internal/faultpoint"
	"distlog/internal/record"
	"distlog/internal/storage"
	"distlog/internal/transport"
	"distlog/internal/wire"
)

// clientConn is a second (third, ...) raw-protocol client against the
// rig's server, for multi-session tests.
type clientConn struct {
	ep   transport.Endpoint
	peer *wire.Peer
}

func (r *rig) connect(t *testing.T, addr string, id record.ClientID, connID uint64) *clientConn {
	t.Helper()
	ep := r.net.Endpoint(addr)
	c := &clientConn{ep: ep, peer: wire.NewPeer(ep, "srv", id, connID, 0, time.Millisecond)}
	seq, err := c.peer.Send(wire.TSyn, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	pkt := c.recv(t)
	if pkt.Type != wire.TSynAck || pkt.RespTo != seq {
		t.Fatalf("expected SynAck to %d, got %+v", seq, pkt)
	}
	c.peer.SetEstablished()
	if _, err := c.peer.Send(wire.TAck, pkt.Seq, nil); err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *clientConn) recv(t *testing.T) *wire.Packet {
	t.Helper()
	raw, err := c.ep.Recv(2 * time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	pkt, err := wire.Decode(raw.Data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &pkt
}

func (c *clientConn) force(t *testing.T, epoch record.Epoch, lsn record.LSN, n int) {
	t.Helper()
	var recs []record.Record
	for i := 0; i < n; i++ {
		recs = append(recs, record.Record{LSN: lsn + record.LSN(i), Epoch: epoch, Present: true, Data: []byte("d")})
	}
	p := wire.RecordsPayload{Epoch: epoch, Records: recs}
	if _, err := c.peer.Send(wire.TForceLog, 0, p.Encode()); err != nil {
		t.Fatal(err)
	}
}

// TestSessionChurnReconnectBounded is the session-leak regression: a
// client that reconnects from a fresh UDP source port each incarnation
// (new address, new ConnID) must not leave its abandoned sessions in
// the map forever. The seed server kept every one.
func TestSessionChurnReconnectBounded(t *testing.T) {
	r := newRig(t)
	const churn = 40
	for i := 0; i < churn; i++ {
		addr := fmt.Sprintf("cli-churn-%d", i)
		c := r.connect(t, addr, 7, uint64(1000+i))
		c.force(t, 1, 1, 1)
		if pkt := c.recv(t); pkt.Type != wire.TNewHighLSN {
			t.Fatalf("incarnation %d: expected NewHighLSN, got %v", i, pkt.Type)
		}
	}
	st := r.srv.Stats()
	if st.Sessions != 1 {
		t.Fatalf("after %d reconnects, %d live sessions (want 1: each incarnation supersedes the last)", churn, st.Sessions)
	}
	if st.Evicted < churn-1 {
		t.Fatalf("evicted = %d, want >= %d", st.Evicted, churn-1)
	}
}

// TestSessionDualEndpointKept: the same incarnation (equal ConnID)
// speaking from two addresses is a dual-endpoint client, not a leak —
// both sessions stay. A later incarnation then supersedes both.
func TestSessionDualEndpointKept(t *testing.T) {
	r := newRig(t)
	r.connect(t, "cli-a", 7, 2000)
	r.connect(t, "cli-b", 7, 2000)
	if st := r.srv.Stats(); st.Sessions != 2 || st.Evicted != 0 {
		t.Fatalf("dual endpoint: sessions=%d evicted=%d, want 2 and 0", st.Sessions, st.Evicted)
	}
	r.connect(t, "cli-c", 7, 2001)
	if st := r.srv.Stats(); st.Sessions != 1 || st.Evicted != 2 {
		t.Fatalf("after supersede: sessions=%d evicted=%d, want 1 and 2", st.Sessions, st.Evicted)
	}
}

// TestSessionIdleEviction: the janitor reclaims sessions whose client
// vanished without a closing handshake (UDP has none).
func TestSessionIdleEviction(t *testing.T) {
	r := newRig(t, func(c *Config) { c.SessionIdle = 25 * time.Millisecond })
	r.handshake()
	if st := r.srv.Stats(); st.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1", st.Sessions)
	}
	deadline := time.Now().Add(2 * time.Second)
	for r.srv.Stats().Sessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle session never evicted; stats = %+v", r.srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The address is not banned — a new handshake builds a new session.
	r.peer = wire.NewPeer(r.ep, "srv", 7, 1001, 0, time.Millisecond)
	r.handshake()
	if st := r.srv.Stats(); st.Sessions != 1 {
		t.Fatalf("re-handshake after eviction: sessions = %d, want 1", st.Sessions)
	}
}

// TestSlowReaderDoesNotBlockForce is the isolation regression the
// pipeline exists for: one client stuck in a slow synchronous read
// must not delay another client's ForceLog acknowledgment. The seed
// server ran every handler inline on the receive loop, so the force
// below waited out the whole read delay.
func TestSlowReaderDoesNotBlockForce(t *testing.T) {
	const readDelay = 600 * time.Millisecond
	r := newRig(t)
	reader := r.connect(t, "cli-reader", 7, 3000)
	writer := r.connect(t, "cli-writer", 8, 3001)

	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Arm(FPReadBeforeStore, 1, func() { time.Sleep(readDelay) })

	// The reader's worker parks in the delayed read path.
	lp := wire.LSNPayload{LSN: 1}
	if _, err := reader.peer.Send(wire.TReadForwardReq, 0, lp.Encode()); err != nil {
		t.Fatal(err)
	}
	// Give the read time to be dequeued so the delay is actually in
	// progress when the force arrives.
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	writer.force(t, 1, 1, 1)
	if pkt := writer.recv(t); pkt.Type != wire.TNewHighLSN {
		t.Fatalf("expected NewHighLSN, got %v", pkt.Type)
	}
	if elapsed := time.Since(start); elapsed > readDelay/2 {
		t.Fatalf("force ack took %v behind a %v read: the slow reader stalled another session", elapsed, readDelay)
	}
	// The reader's own call still completes (with NotStored — nothing
	// is logged at LSN 1 for client 7's store view before its write).
	reader.recv(t)
}

// countingStore wraps a Store, slowing Force and counting the calls
// that reach the underlying store.
type countingStore struct {
	storage.Store
	delay  time.Duration
	forces atomic.Int64
}

func (c *countingStore) Force() error {
	c.forces.Add(1)
	time.Sleep(c.delay)
	return c.Store.Force()
}

// TestConcurrentForcesCoalesce: many sessions forcing at once share
// underlying store forces (server-side group force), and every one of
// them still gets its NewHighLSN — the acked ⇒ durable invariant under
// coalescing.
func TestConcurrentForcesCoalesce(t *testing.T) {
	cs := &countingStore{Store: storage.NewMemStore(), delay: 2 * time.Millisecond}
	r := newRig(t, func(c *Config) { c.Store = cs })

	const clients = 8
	const forcesEach = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.connect(t, fmt.Sprintf("cli-fc-%d", i), record.ClientID(20+i), uint64(4000+i))
			for f := 0; f < forcesEach; f++ {
				c.force(t, 1, record.LSN(1+f), 1)
				for {
					pkt := c.recv(t)
					if pkt.Type == wire.TNewHighLSN {
						break
					}
					if pkt.Type == wire.TErrResp {
						errs <- fmt.Errorf("client %d force %d: %s", i, f, pkt.Payload)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(clients * forcesEach)
	rounds := cs.forces.Load()
	if rounds == 0 {
		t.Fatal("no store forces ran")
	}
	if rounds >= total {
		t.Fatalf("no coalescing: %d store forces for %d acked ForceLogs", rounds, total)
	}
	st := r.srv.Stats()
	if st.ForceRounds != uint64(rounds) {
		t.Fatalf("Stats.ForceRounds = %d, store saw %d", st.ForceRounds, rounds)
	}
	if st.Forces != uint64(total) {
		t.Fatalf("Stats.Forces = %d, want %d (every ForceLog acked)", st.Forces, total)
	}
	t.Logf("%d acked forces over %d store rounds (%d coalesced joiners)", total, rounds, st.ForcesCoalesced)
}

// hugeIntervalStore fakes a pathological interval list, far beyond
// what one reply packet can carry.
type hugeIntervalStore struct {
	storage.Store
	n int
}

func (h *hugeIntervalStore) Intervals(record.ClientID) []record.Interval {
	ivs := make([]record.Interval, h.n)
	for i := range ivs {
		ivs[i] = record.Interval{Epoch: 1, Low: record.LSN(2*i + 1), High: record.LSN(2*i + 1)}
	}
	return ivs
}

// TestIntervalListOversizedList: trimming an oversized interval list
// must be computed from the fixed encoding width, not by re-encoding
// the whole payload once per dropped interval — the seed's O(n²) loop
// took tens of seconds over this list and times the recv out.
func TestIntervalListOversizedList(t *testing.T) {
	const huge = 50_000
	hs := &hugeIntervalStore{Store: storage.NewMemStore(), n: huge}
	r := newRig(t, func(c *Config) { c.Store = hs })
	r.handshake()

	seq, err := r.peer.Send(wire.TIntervalListReq, 0, (&wire.IntervalListPayload{}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	pkt := r.recv() // 2s deadline: the quadratic trim blows it
	if pkt.Type != wire.TIntervalListResp || pkt.RespTo != seq {
		t.Fatalf("resp = %+v", pkt)
	}
	p, err := wire.DecodeIntervalListPayload(pkt.Payload)
	if err != nil {
		t.Fatal(err)
	}
	want := maxIntervalsPerPacket()
	if len(p.Intervals) != want {
		t.Fatalf("got %d intervals, want the %d most recent", len(p.Intervals), want)
	}
	// The reply keeps the tail — the most recent intervals, the ones
	// initialization needs.
	last := p.Intervals[len(p.Intervals)-1]
	if wantHigh := record.LSN(2*(huge-1) + 1); last.High != wantHigh {
		t.Fatalf("last interval High = %d, want %d (most recent)", last.High, wantHigh)
	}
	if len((&wire.IntervalListPayload{Intervals: p.Intervals}).Encode()) > wire.MaxPayload {
		t.Fatal("trimmed reply still exceeds MaxPayload")
	}
}

// TestQueueOverflowSheds: a session whose worker is stuck only backs
// up — and sheds — its own bounded queue.
func TestQueueOverflowSheds(t *testing.T) {
	r := newRig(t, func(c *Config) { c.QueueDepth = 4 })
	r.handshake()

	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Arm(FPReadBeforeStore, 1, func() { time.Sleep(300 * time.Millisecond) })

	lp := wire.LSNPayload{LSN: 1}
	if _, err := r.peer.Send(wire.TReadForwardReq, 0, lp.Encode()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the worker park in the read

	// Flood well past the queue depth while the worker sleeps.
	for i := 0; i < 20; i++ {
		p := wire.RecordsPayload{Epoch: 1, Records: []record.Record{{LSN: record.LSN(i + 1), Epoch: 1, Present: true, Data: []byte("x")}}}
		if _, err := r.peer.Send(wire.TWriteLog, 0, p.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for r.srv.Stats().QueueSheds == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never shed; stats = %+v", r.srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
