// Package server implements a log server node: the network-facing half
// of the design in Section 4. A server owns a storage.Store, speaks the
// wire protocol of Section 4.2 with any number of clients, detects
// gaps in each client's write stream (MissingInterval), acknowledges
// forces (NewHighLSN), answers the synchronous calls (IntervalList,
// ReadLogForward/Backward, CopyLog, InstallCopies), hosts an epoch
// generator state representative (Appendix I), and sheds load by
// ignoring write messages when overloaded.
//
// Internally the server is a write pipeline: the receive loop only
// decodes and dispatches; each session owns a worker goroutine with a
// bounded queue, so a client stuck in a slow synchronous read cannot
// delay another client's ForceLog acknowledgment. Concurrent forces
// from different sessions coalesce into shared rounds (group force)
// via a storage.ForceGroup.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distlog/internal/faultpoint"
	"distlog/internal/idgen"
	"distlog/internal/record"
	"distlog/internal/storage"
	"distlog/internal/telemetry"
	"distlog/internal/transport"
	"distlog/internal/wire"
)

// EpochHost supplies the epoch-generator state representative the
// server hosts for each client (Appendix I: "representatives of a
// replicated identifier generator's state will normally be implemented
// on log server nodes").
type EpochHost interface {
	Rep(c record.ClientID) idgen.Representative
}

// MemEpochHost keeps representatives in memory.
type MemEpochHost struct {
	mu   sync.Mutex
	reps map[record.ClientID]*idgen.MemRep
}

// NewMemEpochHost returns an empty in-memory epoch host.
func NewMemEpochHost() *MemEpochHost {
	return &MemEpochHost{reps: make(map[record.ClientID]*idgen.MemRep)}
}

// Rep implements EpochHost.
func (h *MemEpochHost) Rep(c record.ClientID) idgen.Representative {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.reps[c]
	if r == nil {
		r = idgen.NewMemRep()
		h.reps[c] = r
	}
	return r
}

// Pipeline defaults.
const (
	// DefaultQueueDepth bounds each session's pending-message queue.
	DefaultQueueDepth = 64
	// DefaultSessionIdle is how long a session may sit idle before the
	// janitor evicts it.
	DefaultSessionIdle = 2 * time.Minute
)

// Config configures a Server.
type Config struct {
	// Name is the server's network address (the endpoint it listens
	// on was bound to it).
	Name string
	// Store holds the log data.
	Store storage.Store
	// Endpoint is the server's network attachment.
	Endpoint transport.Endpoint
	// Epochs hosts generator state representatives. Nil disables the
	// epoch operations (clients must use other representatives).
	Epochs EpochHost
	// Overloaded, when non-nil and returning true, makes the server
	// silently ignore WriteLog and ForceLog messages ("they are free to
	// ignore ForceLog and WriteLog messages if they become too heavily
	// loaded. Clients will simply assume that the server has failed and
	// will take their logging elsewhere.").
	Overloaded func() bool
	// Window and OverAllocPause tune the flow-control parameters.
	Window         uint64
	OverAllocPause time.Duration
	// QueueDepth bounds each session's pending-message queue. A full
	// queue sheds further messages for that session — the Section 4.2
	// license to ignore messages under load, applied per client, so one
	// slow or flooding client backs up only its own queue. Zero means
	// DefaultQueueDepth.
	QueueDepth int
	// SessionIdle is how long a session may sit idle before the server
	// evicts it, reclaiming its worker and queue. Zero means
	// DefaultSessionIdle; negative disables idle eviction.
	SessionIdle time.Duration
	// Telemetry receives the server's metrics (and, if the registry has
	// tracing enabled, its LSN-lifecycle events). Nil directs metrics to
	// a private registry so Stats() keeps working.
	Telemetry *telemetry.Registry
}

// Stats is a snapshot of server activity — a view over the telemetry
// counters (see metrics.go).
type Stats struct {
	PacketsReceived  uint64
	PacketsDropped   uint64 // undecodable or stale
	RecordsWritten   uint64
	Forces           uint64
	AcksSent         uint64
	MissingIntervals uint64
	ReadsServed      uint64
	// StreamsServed counts ReadStream requests answered with at least
	// one chunk; StreamPackets counts the chunks.
	StreamsServed uint64
	StreamPackets uint64
	Shed          uint64
	// BusySent counts Busy congestion NACKs sent to shed writers
	// (rate-limited, so at most one per session per millisecond of
	// shedding).
	BusySent uint64
	// RedirectsSent counts drain hints sent while leaving; Leaving
	// reports whether the server is currently draining (see Leave).
	RedirectsSent uint64
	Leaving       bool
	// Sessions is the current live session count; Evicted counts
	// sessions removed by supersession or idleness. QueueSheds counts
	// messages dropped because a session's queue was full. ForceRounds
	// and ForcesCoalesced describe group-force behaviour: underlying
	// store forces run, and callers that shared another caller's round.
	Sessions        int64
	Evicted         uint64
	QueueSheds      uint64
	ForceRounds     uint64
	ForcesCoalesced uint64
}

// Server is a log server node.
type Server struct {
	cfg Config

	mu sync.Mutex
	// sessions is keyed by (client network address, ClientID): the
	// streams of a multi-stream client share one endpoint (one address)
	// but carry distinct derived ClientIDs, and each stream gets its own
	// session — its own expected-next position, send window peer, and
	// acker marks.
	sessions map[sessionKey]*session
	stopped  bool

	wg       sync.WaitGroup // receive loop
	workerWG sync.WaitGroup // session workers + janitor
	quit     chan struct{}  // closed on shutdown; stops the janitor
	m        *serverMetrics

	// fg coalesces concurrent Store.Force calls from different session
	// workers into shared rounds (server-side group force).
	fg *storage.ForceGroup

	// leaving marks an administrative drain (see Leave): writes draw a
	// Redirect hint instead of being appended, reads and the epoch
	// operations keep working so clients can migrate off and still
	// recover records this server holds.
	leaving atomic.Bool

	// firstUnforced is when the oldest not-yet-forced record was
	// appended, as UnixNano (zero when everything is forced). Session
	// workers append and force concurrently, so it is atomic: CAS from
	// zero on append, Swap to zero when a force completes.
	firstUnforced atomic.Int64
}

// work is one dispatched packet: the decoded message plus the raw
// datagram it aliases, released when the handler finishes with it.
type work struct {
	raw transport.Packet
	pkt wire.Packet
}

// sessionKey identifies one session: the client's network address plus
// its (possibly stream-derived) ClientID.
type sessionKey struct {
	addr   string
	client record.ClientID
}

// session is the per-client connection state. Its fields past the
// queue are owned by the session's worker goroutine except where noted;
// the receive loop only enqueues (and the peer is internally
// synchronized).
type session struct {
	addr     string
	peer     *wire.Peer
	clientID record.ClientID

	queue      chan work
	quit       chan struct{}
	stopOnce   sync.Once
	lastActive atomic.Int64 // UnixNano of the last packet dispatched

	// expectedNext is the next LSN the server expects in this client's
	// write stream; 0 until the first write of the connection arrives.
	// Gap detection (MissingInterval) compares against it. Worker-owned.
	expectedNext record.LSN

	// Streaming-ack state shared between the worker (producer) and the
	// session's acker goroutine (consumer). appendedHigh is the highest
	// LSN appended to the store for this client's stream; stableHigh the
	// highest LSN covered by a completed force and acknowledged;
	// forceReq records an explicit client force request (ForceLog /
	// ForcePoint) and reack a full-overlap retransmission whose original
	// ack was evidently lost. ackEpoch stamps trace events with the
	// epoch of the latest write.
	appendedHigh atomic.Uint64
	stableHigh   atomic.Uint64
	forceReq     atomic.Bool
	reack        atomic.Bool
	ackEpoch     atomic.Uint64
	kick         chan struct{} // 1-buffered acker wakeup
	lastBusy     atomic.Int64  // UnixNano of the last TBusy sent (rate limit)
	lastRedirect atomic.Int64  // UnixNano of the last TRedirect sent (rate limit)
}

// stop signals the session's worker and acker to exit; idempotent.
func (sess *session) stop() {
	sess.stopOnce.Do(func() { close(sess.quit) })
}

// kickAcker wakes the session's acker without blocking; a pending kick
// already covers this wakeup.
func (sess *session) kickAcker() {
	select {
	case sess.kick <- struct{}{}:
	default:
	}
}

// New creates a server; call Start to begin serving.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.SessionIdle == 0 {
		cfg.SessionIdle = DefaultSessionIdle
	}
	s := &Server{
		cfg:      cfg,
		sessions: make(map[sessionKey]*session),
		quit:     make(chan struct{}),
		m:        newServerMetrics(cfg.Telemetry, cfg.Name),
	}
	s.fg = storage.NewForceGroup(cfg.Store.Force)
	s.fg.Rounds = s.m.forceRounds
	s.fg.Coalesced = s.m.forcesCoalesced
	s.fg.Handoff = func() { faultpoint.Hit(FPForceBetweenCoalesced) }
	return s
}

// Start launches the receive loop (and, unless disabled, the idle
// janitor).
func (s *Server) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.loop()
	}()
	if s.cfg.SessionIdle > 0 {
		s.workerWG.Add(1)
		go s.janitor()
	}
}

// Stop closes the endpoint and waits for the receive loop, all session
// workers, and the janitor to exit. The store is not closed; it belongs
// to the caller (which may restart a server over it, modelling a node
// reboot).
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		s.workerWG.Wait()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	s.cfg.Endpoint.Close()
	s.wg.Wait() // the loop's shutdown stops sessions and the janitor
	s.workerWG.Wait()
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	st := s.m.stats()
	st.Leaving = s.leaving.Load()
	return st
}

// Leave begins an administrative drain: the server stops accepting
// writes — each write draws a TRedirect hint telling the client to
// migrate its write set — while reads, interval lists, and the epoch
// representative keep answering, so departing clients can still obtain
// fresh epochs and read the records this server holds. Every live
// session is notified immediately; the server stays up until the
// operator observes its clients gone (Stats().Sessions, or the
// per-node session gauge) and calls Stop.
func (s *Server) Leave() {
	if s.leaving.Swap(true) {
		return // already draining
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		s.sendRedirect(sess)
	}
}

// Leaving reports whether the server is draining.
func (s *Server) Leaving() bool {
	return s.leaving.Load()
}

func (s *Server) loop() {
	defer s.shutdown()
	for {
		raw, err := s.cfg.Endpoint.Recv(0)
		if err != nil {
			return // endpoint closed
		}
		s.m.packetsReceived.Add(1)
		pkt, err := wire.Decode(raw.Data)
		if err != nil {
			// Corrupt packet: the end-to-end check rejects it; the
			// sender's own recovery (retry, NACK) handles the loss.
			s.m.packetsDropped.Add(1)
			raw.Release()
			continue
		}
		s.dispatch(raw, pkt)
	}
}

// shutdown quiesces the pipeline after the receive loop exits (Stop,
// or the endpoint closed under it — how tests model a node crash):
// every session worker is told to quit, and the janitor with them.
func (s *Server) shutdown() {
	s.mu.Lock()
	s.stopped = true
	for _, sess := range s.sessions {
		sess.stop()
	}
	s.sessions = make(map[sessionKey]*session)
	s.m.sessions.Set(0)
	s.m.nodeSessions.Set(0)
	s.mu.Unlock()
	close(s.quit)
}

// dispatch routes one decoded packet. Syn is handled inline (it is
// session lifecycle, and answering it before later packets of the same
// client are processed preserves the handshake ordering); everything
// else goes to the owning session's queue. The decoded packet aliases
// raw's buffer, which is released once the handler — or the shed path —
// is done with it.
func (s *Server) dispatch(raw transport.Packet, pkt wire.Packet) {
	if pkt.Type == wire.TSyn {
		s.handleSyn(raw.From, &pkt)
		raw.Release()
		return
	}

	s.mu.Lock()
	sess := s.sessions[sessionKey{raw.From, pkt.ClientID}]
	s.mu.Unlock()

	if sess == nil || pkt.ConnID != sess.peer.ConnID {
		// Unknown connection or stale incarnation: ask the client to
		// handshake. The stateless reset echoes the offending ConnID so
		// the client can tell which incarnation was rejected, and builds
		// no per-connection state — stray or scanning packets cost one
		// pooled frame each.
		s.m.packetsDropped.Add(1)
		wire.SendRst(s.cfg.Endpoint, raw.From, pkt.ClientID, pkt.ConnID, pkt.Seq)
		raw.Release()
		return
	}
	sess.lastActive.Store(time.Now().UnixNano())
	select {
	case sess.queue <- work{raw: raw, pkt: pkt}:
	default:
		// This session's queue is full: shed. The client's own timeout
		// and retry machinery recovers, exactly as for a lost datagram;
		// other sessions' queues are unaffected. Shed writes additionally
		// draw a Busy NACK so a streaming client backs its window off now
		// instead of waiting out a force timeout.
		s.m.queueSheds.Add(1)
		s.m.trace.Emit(telemetry.EvShed, s.m.node, 0, 0, 0)
		switch pkt.Type {
		case wire.TWriteLog, wire.TForceLog, wire.TForcePoint:
			s.sendBusy(sess)
		}
		raw.Release()
	}
}

// handleSyn creates, refreshes, or supersedes a session. It runs on
// the receive loop: session lifecycle must serialize with dispatch,
// and a SynAck must not be overtaken by the handling of the same
// client's earlier queued packets.
func (s *Server) handleSyn(from string, pkt *wire.Packet) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	key := sessionKey{from, pkt.ClientID}
	sess := s.sessions[key]
	if sess != nil && pkt.ConnID == sess.peer.ConnID {
		// Retransmitted or network-duplicated Syn of the live
		// incarnation: answer it, but keep the session. Resetting
		// here would zero the stream position, and the next write
		// would silently adopt the client's current LSN — forgetting
		// a gap the server was tracking and acknowledging records it
		// never stored.
		sess.lastActive.Store(time.Now().UnixNano())
		s.mu.Unlock()
		sess.peer.Observe(pkt)
		sess.peer.Send(wire.TSynAck, pkt.Seq, nil)
		return
	}
	if sess != nil && pkt.ConnID < sess.peer.ConnID {
		// A delayed duplicate Syn from an incarnation this session has
		// already superseded (ConnIDs grow monotonically within a
		// client). Evicting the live session for it would resurrect the
		// dead incarnation and reset the live one's stream position —
		// e.g. a client re-anchoring on a server during a migration,
		// whose old Syn was still in flight. Reset the stale sender and
		// leave the live session untouched.
		s.mu.Unlock()
		s.m.packetsDropped.Add(1)
		wire.SendRst(s.cfg.Endpoint, from, pkt.ClientID, pkt.ConnID, pkt.Seq)
		return
	}
	// New connection (or a new incarnation of the client): evict what
	// it supersedes — the old session at this address, and any session
	// for the same client at another address with a strictly older
	// ConnID (the client rebound its socket; ConnIDs derive from
	// epochs, so older means an earlier incarnation — this is the leak
	// a reconnecting client's abandoned source ports used to leave
	// behind). An equal ConnID at a different address is the client's
	// other leg of a dual endpoint: keep it. Stream position is
	// re-learned from the first write; log data itself lives in the
	// store and is unaffected.
	if sess != nil {
		s.evictLocked(sess)
	}
	for k, old := range s.sessions {
		if k.addr != from && old.clientID == pkt.ClientID && old.peer.ConnID < pkt.ConnID {
			s.evictLocked(old)
		}
	}
	sess = &session{
		addr:     from,
		peer:     wire.NewPeer(s.cfg.Endpoint, from, pkt.ClientID, pkt.ConnID, s.cfg.Window, pauseOf(s.cfg)),
		clientID: pkt.ClientID,
		queue:    make(chan work, s.cfg.QueueDepth),
		quit:     make(chan struct{}),
		kick:     make(chan struct{}, 1),
	}
	sess.lastActive.Store(time.Now().UnixNano())
	sess.peer.SetEstablished()
	s.sessions[key] = sess
	s.m.sessions.Set(int64(len(s.sessions)))
	s.m.nodeSessions.Set(int64(len(s.sessions)))
	s.workerWG.Add(2)
	go s.worker(sess)
	go s.acker(sess)
	s.mu.Unlock()
	sess.peer.Observe(pkt)
	sess.peer.Send(wire.TSynAck, pkt.Seq, nil)
}

// evictLocked removes a session and stops its worker. Callers hold
// s.mu and refresh the sessions gauge afterwards.
func (s *Server) evictLocked(sess *session) {
	delete(s.sessions, sessionKey{sess.addr, sess.clientID})
	sess.stop()
	s.m.sessionsEvicted.Add(1)
}

// janitor evicts sessions idle longer than SessionIdle, bounding the
// session map (and its goroutines) against clients that vanish without
// a closing handshake — UDP has none.
func (s *Server) janitor() {
	defer s.workerWG.Done()
	tick := s.cfg.SessionIdle / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			cutoff := time.Now().Add(-s.cfg.SessionIdle).UnixNano()
			s.mu.Lock()
			for _, sess := range s.sessions {
				if sess.lastActive.Load() < cutoff {
					s.evictLocked(sess)
				}
			}
			s.m.sessions.Set(int64(len(s.sessions)))
			s.m.nodeSessions.Set(int64(len(s.sessions)))
			s.mu.Unlock()
		}
	}
}

// worker drains one session's queue. A single consumer per session
// preserves each client's stream order; separate workers keep one
// client's slow synchronous read out of every other client's force
// path.
func (s *Server) worker(sess *session) {
	defer s.workerWG.Done()
	for {
		select {
		case <-sess.quit:
			// Drain, releasing buffers: dispatch may already have
			// enqueued packets this worker will never handle.
			for {
				select {
				case w := <-sess.queue:
					w.raw.Release()
				default:
					return
				}
			}
		case w := <-sess.queue:
			if w.pkt.Type == wire.TForceLog || w.pkt.Type == wire.TForcePoint {
				faultpoint.Hit(FPWorkerBeforeForce)
			}
			s.process(sess, &w.pkt)
			w.raw.Release()
		}
	}
}

// process handles one packet on the session's worker.
func (s *Server) process(sess *session, pkt *wire.Packet) {
	if !sess.peer.Observe(pkt) {
		s.m.packetsDropped.Add(1)
		return
	}

	switch pkt.Type {
	case wire.TAck:
		// Final leg of the handshake; nothing further to do.
	case wire.TWriteLog:
		s.handleWrite(sess, pkt, false)
	case wire.TForceLog:
		s.handleWrite(sess, pkt, true)
	case wire.TForcePoint:
		s.handleForcePoint(sess, pkt)
	case wire.TTruncatePoint:
		s.handleTruncatePoint(sess, pkt)
	case wire.TNewInterval:
		s.handleNewInterval(sess, pkt)
	case wire.TIntervalListReq:
		s.handleIntervalList(sess, pkt)
	case wire.TReadForwardReq:
		s.handleRead(sess, pkt, true)
	case wire.TReadBackwardReq:
		s.handleRead(sess, pkt, false)
	case wire.TReadStreamReq:
		s.handleReadStream(sess, pkt)
	case wire.TCopyLogReq:
		s.handleCopyLog(sess, pkt)
	case wire.TInstallCopiesReq:
		s.handleInstallCopies(sess, pkt)
	case wire.TEpochReadReq:
		s.handleEpochRead(sess, pkt)
	case wire.TEpochWriteReq:
		s.handleEpochWrite(sess, pkt)
	case wire.TTruncateReq:
		s.handleTruncate(sess, pkt)
	default:
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, fmt.Sprintf("unexpected packet type %s", pkt.Type))
	}
}

func pauseOf(cfg Config) time.Duration { return cfg.OverAllocPause }

// handleWrite applies a WriteLog or ForceLog message: gap detection,
// idempotent skip of retransmitted records, store appends, and (for
// forces) the NewHighLSN acknowledgment.
func (s *Server) handleWrite(sess *session, pkt *wire.Packet, force bool) {
	if s.leaving.Load() {
		// Draining: refuse the write with a redirect hint so the client
		// migrates. Not a Busy — backing off and retrying here can never
		// succeed.
		s.sendRedirect(sess)
		return
	}
	if s.cfg.Overloaded != nil && s.cfg.Overloaded() {
		// Shed load: ignore the message ("they are free to ignore
		// ForceLog and WriteLog messages if they become too heavily
		// loaded"), but tell the streaming client with a Busy NACK so
		// its send window halves instead of retry-storming.
		s.m.sheds.Add(1)
		s.m.trace.Emit(telemetry.EvShed, s.m.node, 0, 0, 0)
		s.sendBusy(sess)
		return
	}
	p, err := wire.DecodeRecordsPayload(pkt.Payload)
	if err != nil || len(p.Records) == 0 {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad records payload")
		return
	}
	first := p.Records[0].LSN

	if sess.expectedNext == 0 {
		// First write of this connection: resume from the store's
		// position, not the packet's. Blindly adopting the packet's
		// first LSN would let a message that arrived ahead of (or
		// instead of) its lost predecessors skip them silently — the
		// server would go on to acknowledge a NewHighLSN covering
		// records it never stored. A jump past the stored position is
		// a gap like any other: NACK it, and the client resends the
		// records (still buffered — that is what δ guarantees) or
		// explicitly starts a new interval.
		if last, _ := s.cfg.Store.LastKey(sess.clientID); last == 0 || first <= last+1 {
			sess.expectedNext = first
		} else {
			sess.expectedNext = last + 1
		}
	}
	if first > sess.expectedNext {
		// Lost message(s): NACK promptly with the missing interval and
		// ignore these records — the client resends from the gap or
		// starts a new interval.
		s.m.nacksSent.Add(1)
		s.m.trace.Emit(telemetry.EvNack, s.m.node,
			uint64(sess.expectedNext), uint64(p.Epoch), uint64(first-sess.expectedNext))
		mi := wire.IntervalPayload{Low: sess.expectedNext, High: first - 1}
		sess.peer.Send(wire.TMissingInterval, 0, mi.Encode())
		return
	}

	appended := 0
	for _, rec := range p.Records {
		if rec.LSN < sess.expectedNext {
			continue // retransmission overlap: already stored
		}
		if rec.LSN > sess.expectedNext {
			// Non-contiguous records inside one message: the client
			// never sends this; reject defensively.
			sess.peer.SendErr(pkt.Seq, wire.CodeSequencing, "records within a message must be consecutive")
			return
		}
		err := s.cfg.Store.Append(sess.clientID, rec)
		switch {
		case err == nil:
			s.m.recordsAppended.Add(1)
			appended++
		case errors.Is(err, record.ErrDuplicate), errors.Is(err, record.ErrLSNRegression):
			// A replay after a server restart: the store already holds
			// the record; advancing past it is the idempotent outcome.
		default:
			sess.peer.SendErr(pkt.Seq, wire.CodeSequencing, err.Error())
			return
		}
		sess.expectedNext = rec.LSN + 1
	}
	if appended > 0 {
		if s.m.appendToForce != nil {
			s.firstUnforced.CompareAndSwap(0, time.Now().UnixNano())
		}
		s.m.trace.Emit(telemetry.EvAppend, s.m.node,
			uint64(sess.expectedNext-1), uint64(p.Epoch), uint64(appended))
	}
	sess.ackEpoch.Store(uint64(p.Epoch))
	// Publish the appended high-water mark to the acker. The store
	// appends above happen-before this release store, so a force the
	// acker starts after loading it covers every record up to the mark.
	if h := uint64(sess.expectedNext - 1); h > sess.appendedHigh.Load() {
		sess.appendedHigh.Store(h)
	}

	if force {
		faultpoint.Hit(FPWriteBeforeForce)
		sess.forceReq.Store(true)
	} else if appended == 0 {
		// A full-overlap retransmission of a streamed write means the
		// client missed our cumulative ack: have the acker repeat it.
		sess.reack.Store(true)
	}
	// The acker forces in the background — coalescing across sessions —
	// and sends the cumulative NewHighLSN. Appends without a force flag
	// kick it too: continuously advancing stability is what lets the
	// streaming client release records (and cross force points) without
	// a round trip per force.
	sess.kickAcker()
}

// handleForcePoint applies a ForcePoint message — the streaming
// client's "force through this LSN and acknowledge" for records that
// already left under WriteLog cover. A force point at or beyond what
// this server has appended means the covering records were lost in
// flight: NACK the gap so the client retransmits.
func (s *Server) handleForcePoint(sess *session, pkt *wire.Packet) {
	if s.leaving.Load() {
		s.sendRedirect(sess)
		return
	}
	if s.cfg.Overloaded != nil && s.cfg.Overloaded() {
		s.m.sheds.Add(1)
		s.m.trace.Emit(telemetry.EvShed, s.m.node, 0, 0, 0)
		s.sendBusy(sess)
		return
	}
	p, err := wire.DecodeLSNPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad force point payload")
		return
	}
	if sess.expectedNext == 0 {
		// First message of this connection: resume from the store's
		// position, as handleWrite does.
		last, _ := s.cfg.Store.LastKey(sess.clientID)
		sess.expectedNext = last + 1
		if h := uint64(last); h > sess.appendedHigh.Load() {
			sess.appendedHigh.Store(h)
		}
	}
	if p.LSN >= sess.expectedNext {
		s.m.nacksSent.Add(1)
		s.m.trace.Emit(telemetry.EvNack, s.m.node,
			uint64(sess.expectedNext), sess.ackEpoch.Load(), uint64(p.LSN-sess.expectedNext+1))
		mi := wire.IntervalPayload{Low: sess.expectedNext, High: p.LSN}
		sess.peer.Send(wire.TMissingInterval, 0, mi.Encode())
		return
	}
	faultpoint.Hit(FPWriteBeforeForce)
	sess.forceReq.Store(true)
	sess.kickAcker()
}

// acker is the per-session stability engine of the streaming write
// protocol: it runs this session's forces in the background —
// coalescing with other sessions through the server's ForceGroup — and
// sends the cumulative NewHighLSN acknowledgement. Moving the force
// off the worker keeps appends flowing while the store syncs, which is
// what lets a client stream continuously. The acked ⇒ durable
// invariant holds because stableHigh only advances to a mark loaded
// *before* a force that completed after it: every record at or below
// the mark was in the store when that force began (the ForceGroup
// started-after guarantee, plus the worker's publish ordering).
func (s *Server) acker(sess *session) {
	defer s.workerWG.Done()
	for {
		select {
		case <-sess.quit:
			return
		case <-sess.kick:
		}
		for {
			h := sess.appendedHigh.Load()
			force := sess.forceReq.Swap(false)
			reack := sess.reack.Swap(false)
			if h <= sess.stableHigh.Load() && !force {
				if !reack {
					break
				}
				// Lost-ack retransmission with nothing new to force:
				// repeat the cumulative ack as it stands.
				s.m.acksSent.Add(1)
				sess.peer.SendWriteAck(0, record.LSN(sess.stableHigh.Load()), record.LSN(h))
				continue
			}
			faultpoint.Hit(FPAckerBeforeForce)
			// Timestamps feed the latency histograms only; without a
			// registry they are dead weight on the hottest server loop.
			var forceStart time.Time
			if s.m.forceLatency != nil {
				forceStart = time.Now()
			}
			if err := s.fg.Force(); err != nil {
				// The store cannot force, so no truthful ack is possible.
				// Surface the failure rather than going silent; the client
				// times out and takes its logging elsewhere.
				sess.peer.SendErr(0, wire.CodeUnknown, err.Error())
				break
			}
			faultpoint.Hit(FPWriteAfterForce)
			s.m.forces.Add(1)
			if s.m.forceLatency != nil {
				s.m.forceLatency.Observe(uint64(time.Since(forceStart)))
			}
			if s.m.appendToForce != nil {
				if t := s.firstUnforced.Swap(0); t != 0 {
					s.m.appendToForce.Observe(uint64(time.Now().UnixNano() - t))
				}
			}
			if h > sess.stableHigh.Load() {
				sess.stableHigh.Store(h)
			}
			epoch := sess.ackEpoch.Load()
			s.m.trace.Emit(telemetry.EvForce, s.m.node, h, epoch, 0)
			// Emit before the packet leaves (like the client's flush): the
			// client may complete its round — and emit EvStable — the
			// moment the ack is delivered, and the trace guarantees
			// ack < stable.
			s.m.acksSent.Add(1)
			s.m.trace.Emit(telemetry.EvAck, s.m.node, h, epoch, 0)
			sess.peer.SendWriteAck(0, record.LSN(h), record.LSN(sess.appendedHigh.Load()))
		}
	}
}

// sendBusy tells the client the server is shedding its writes so its
// send window backs off now instead of after a force timeout.
// Rate-limited: one Busy per session per millisecond covers a whole
// burst of sheds. Safe from both the receive loop and workers.
func (s *Server) sendBusy(sess *session) {
	now := time.Now().UnixNano()
	last := sess.lastBusy.Load()
	if now-last < int64(time.Millisecond) || !sess.lastBusy.CompareAndSwap(last, now) {
		return
	}
	s.m.busySent.Add(1)
	sess.peer.Send(wire.TBusy, 0, nil)
}

// sendRedirect tells the client this server is draining and its writes
// should go elsewhere. Rate-limited like Busy — a streaming client can
// have a whole window in flight when the drain begins. Safe from both
// the receive loop and workers.
func (s *Server) sendRedirect(sess *session) {
	now := time.Now().UnixNano()
	last := sess.lastRedirect.Load()
	if now-last < int64(time.Millisecond) || !sess.lastRedirect.CompareAndSwap(last, now) {
		return
	}
	s.m.redirectsSent.Add(1)
	p := wire.RedirectPayload{AppendedHigh: record.LSN(sess.appendedHigh.Load())}
	sess.peer.Send(wire.TRedirect, 0, p.Encode())
}

func (s *Server) handleNewInterval(sess *session, pkt *wire.Packet) {
	p, err := wire.DecodeNewIntervalPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad NewInterval payload")
		return
	}
	// The client tells us to ignore the missing records and accept a
	// stream restarting at StartingLSN (they were written to other
	// servers).
	sess.expectedNext = p.StartingLSN
}

func (s *Server) handleIntervalList(sess *session, pkt *wire.Packet) {
	ivs := s.cfg.Store.Intervals(sess.clientID)
	// Interval lists are short by design ("an essential assumption of
	// the replicated logging algorithm is that interval lists are
	// short"); if a pathological list outgrows a packet, send the most
	// recent intervals, which are the ones initialization needs. The
	// encoding is fixed-width (a count header plus IntervalEncodedSize
	// per entry), so the fit is computed directly rather than by
	// re-encoding ever-shorter lists.
	if max := maxIntervalsPerPacket(); len(ivs) > max {
		ivs = ivs[len(ivs)-max:]
	}
	resp := wire.IntervalListPayload{Intervals: ivs}
	sess.peer.Send(wire.TIntervalListResp, pkt.Seq, resp.Encode())
}

// maxIntervalsPerPacket is how many intervals an IntervalListResp
// payload can carry: the fixed 4-byte count header leaves room for
// (MaxPayload-4)/IntervalEncodedSize entries.
func maxIntervalsPerPacket() int {
	return (wire.MaxPayload - 4) / record.IntervalEncodedSize
}

// handleRead serves ReadLogForward / ReadLogBackward: starting at the
// requested LSN, it packs as many consecutive stored records as fit in
// one reply packet, ascending or descending.
func (s *Server) handleRead(sess *session, pkt *wire.Packet, forward bool) {
	req, err := wire.DecodeLSNPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad read payload")
		return
	}
	faultpoint.Hit(FPReadBeforeStore)
	first, err := s.cfg.Store.Read(sess.clientID, req.LSN)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeNotStored, fmt.Sprintf("LSN %d not stored", req.LSN))
		return
	}
	recs := []record.Record{first}
	if wire.FitRecords(recs) == 0 {
		// The record exists but cannot fit even alone in a reply
		// packet. Answering CodeNotStored here would lie — the client
		// would conclude this server holds nothing at the LSN and could
		// fail a recovery that the data on this server should satisfy.
		sess.peer.SendErr(pkt.Seq, wire.CodeTooLarge,
			fmt.Sprintf("LSN %d record too large for one reply packet", req.LSN))
		return
	}
	lsn := req.LSN
	for {
		if forward {
			lsn++
		} else {
			if lsn == 1 {
				break
			}
			lsn--
		}
		rec, err := s.cfg.Store.Read(sess.clientID, lsn)
		if err != nil {
			break
		}
		recs = append(recs, rec)
		if n := wire.FitRecords(recs); n < len(recs) {
			recs = recs[:n]
			break
		}
	}
	s.m.readsServed.Add(uint64(len(recs)))
	respType := wire.TReadForwardResp
	if !forward {
		respType = wire.TReadBackwardResp
	}
	sess.peer.SendRecords(respType, pkt.Seq, 0, recs)
}

// Streaming read reply bounds.
const (
	// DefaultStreamPackets is how many TReadStreamData chunks one
	// ReadStream request may produce when the request leaves MaxPackets
	// zero.
	DefaultStreamPackets = 4
	// maxStreamPackets caps a single request's reply regardless of what
	// it asks for, bounding the work one datagram can demand.
	maxStreamPackets = 32
)

// handleReadStream serves a ReadStream request: consecutive stored
// records from From toward To, packed into up to MaxPackets streaming
// reply chunks. The final chunk carries the done flag; it is set early
// when the server runs off the end of what it holds (a holder-set
// boundary the client resolves by re-requesting elsewhere) or when the
// packet budget runs out (the client re-requests from its advanced
// position).
func (s *Server) handleReadStream(sess *session, pkt *wire.Packet) {
	req, err := wire.DecodeReadStreamPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad read stream payload")
		return
	}
	forward := req.Dir == wire.StreamForward
	if req.Dir > wire.StreamBackward || req.From == 0 || req.To == 0 ||
		(forward && req.To < req.From) || (!forward && req.To > req.From) {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad read stream bounds")
		return
	}
	budget := int(req.MaxPackets)
	if budget <= 0 {
		budget = DefaultStreamPackets
	} else if budget > maxStreamPackets {
		budget = maxStreamPackets
	}

	faultpoint.Hit(FPReadBeforeStore)
	first, err := s.cfg.Store.Read(sess.clientID, req.From)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeNotStored, fmt.Sprintf("LSN %d not stored", req.From))
		return
	}
	recs := []record.Record{first}
	if wire.FitStreamRecords(recs) == 0 {
		// Same rule as handleRead: the record exists, so CodeNotStored
		// would wrongly mark this server a non-holder.
		sess.peer.SendErr(pkt.Seq, wire.CodeTooLarge,
			fmt.Sprintf("LSN %d record too large for one reply packet", req.From))
		return
	}
	s.m.streamsServed.Add(1)

	lsn := req.From // last record accepted into the stream
	var index uint16
	sent := 0
	exhausted := false
	for {
		// Extend the current chunk until the packet fills or the range
		// ends at the bound, the store's holdings, or LSN 1.
		for !exhausted {
			if lsn == req.To || (!forward && lsn == 1) {
				exhausted = true
				break
			}
			next := lsn + 1
			if !forward {
				next = lsn - 1
			}
			rec, err := s.cfg.Store.Read(sess.clientID, next)
			if err != nil {
				exhausted = true
				break
			}
			recs = append(recs, rec)
			if n := wire.FitStreamRecords(recs); n < len(recs) {
				recs = recs[:n]
				break // chunk full; next re-read for the following chunk
			}
			lsn = next
		}
		budget--
		done := exhausted || budget == 0 ||
			len(recs) == 0 // oversized mid-stream record: stop, let the re-request hit CodeTooLarge
		faultpoint.Hit(FPStreamBetweenPackets)
		if _, err := sess.peer.SendStreamChunk(pkt.Seq, index, done, 0, recs); err != nil {
			return
		}
		sent += len(recs)
		s.m.streamPackets.Add(1)
		if done {
			break
		}
		index++
		recs = recs[:0]
	}
	s.m.readsServed.Add(uint64(sent))
}

func (s *Server) handleCopyLog(sess *session, pkt *wire.Packet) {
	p, err := wire.DecodeRecordsPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad CopyLog payload")
		return
	}
	for _, rec := range p.Records {
		if err := s.cfg.Store.StageCopy(sess.clientID, rec); err != nil {
			sess.peer.SendErr(pkt.Seq, wire.CodeSequencing, err.Error())
			return
		}
	}
	sess.peer.Send(wire.TCopyLogResp, pkt.Seq, nil)
}

func (s *Server) handleInstallCopies(sess *session, pkt *wire.Packet) {
	p, err := wire.DecodeInstallPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad InstallCopies payload")
		return
	}
	faultpoint.Hit(FPInstallBeforeCommit)
	err = s.cfg.Store.InstallCopies(sess.clientID, p.Epoch)
	if err != nil && !errors.Is(err, storage.ErrNoStagedCopies) {
		// ErrNoStagedCopies means a retransmitted install whose first
		// arrival already committed: acknowledge idempotently.
		sess.peer.SendErr(pkt.Seq, wire.CodeSequencing, err.Error())
		return
	}
	// Installed records may rewind the client's stream position; the
	// next write stream will re-anchor.
	sess.expectedNext = 0
	sess.peer.Send(wire.TInstallCopiesResp, pkt.Seq, nil)
}

// handleTruncatePoint applies the asynchronous truncation report: the
// checkpointing client's fire-and-forget version of TTruncateReq. No
// reply and no error surface — a lost or failed report only delays
// reclamation until the next checkpoint's report.
func (s *Server) handleTruncatePoint(sess *session, pkt *wire.Packet) {
	p, err := wire.DecodeLSNPayload(pkt.Payload)
	if err != nil {
		return
	}
	if err := s.cfg.Store.Truncate(sess.clientID, p.LSN); err == nil {
		s.m.truncatePoints.Add(1)
	}
}

// handleTruncate serves the Section 5.3 space-management call: the
// client declares records below an LSN unnecessary for its recovery
// (it has checkpointed or dumped) and the server discards them.
func (s *Server) handleTruncate(sess *session, pkt *wire.Packet) {
	p, err := wire.DecodeLSNPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad truncate payload")
		return
	}
	err = s.cfg.Store.Truncate(sess.clientID, p.LSN)
	if err != nil && !errors.Is(err, storage.ErrNotStored) {
		sess.peer.SendErr(pkt.Seq, wire.CodeUnknown, err.Error())
		return
	}
	// Truncating a client with no records is an idempotent no-op.
	sess.peer.Send(wire.TTruncateResp, pkt.Seq, nil)
}

func (s *Server) handleEpochRead(sess *session, pkt *wire.Packet) {
	if s.cfg.Epochs == nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "server hosts no epoch representative")
		return
	}
	v, err := s.cfg.Epochs.Rep(sess.clientID).ReadState()
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeUnknown, err.Error())
		return
	}
	resp := wire.EpochValuePayload{Value: v}
	sess.peer.Send(wire.TEpochReadResp, pkt.Seq, resp.Encode())
}

func (s *Server) handleEpochWrite(sess *session, pkt *wire.Packet) {
	if s.cfg.Epochs == nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "server hosts no epoch representative")
		return
	}
	p, err := wire.DecodeEpochValuePayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad epoch value")
		return
	}
	if err := s.cfg.Epochs.Rep(sess.clientID).WriteState(p.Value); err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeUnknown, err.Error())
		return
	}
	sess.peer.Send(wire.TEpochWriteResp, pkt.Seq, nil)
}
