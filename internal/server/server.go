// Package server implements a log server node: the network-facing half
// of the design in Section 4. A server owns a storage.Store, speaks the
// wire protocol of Section 4.2 with any number of clients, detects
// gaps in each client's write stream (MissingInterval), acknowledges
// forces (NewHighLSN), answers the synchronous calls (IntervalList,
// ReadLogForward/Backward, CopyLog, InstallCopies), hosts an epoch
// generator state representative (Appendix I), and sheds load by
// ignoring write messages when overloaded.
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"distlog/internal/faultpoint"
	"distlog/internal/idgen"
	"distlog/internal/record"
	"distlog/internal/storage"
	"distlog/internal/telemetry"
	"distlog/internal/transport"
	"distlog/internal/wire"
)

// EpochHost supplies the epoch-generator state representative the
// server hosts for each client (Appendix I: "representatives of a
// replicated identifier generator's state will normally be implemented
// on log server nodes").
type EpochHost interface {
	Rep(c record.ClientID) idgen.Representative
}

// MemEpochHost keeps representatives in memory.
type MemEpochHost struct {
	mu   sync.Mutex
	reps map[record.ClientID]*idgen.MemRep
}

// NewMemEpochHost returns an empty in-memory epoch host.
func NewMemEpochHost() *MemEpochHost {
	return &MemEpochHost{reps: make(map[record.ClientID]*idgen.MemRep)}
}

// Rep implements EpochHost.
func (h *MemEpochHost) Rep(c record.ClientID) idgen.Representative {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.reps[c]
	if r == nil {
		r = idgen.NewMemRep()
		h.reps[c] = r
	}
	return r
}

// Config configures a Server.
type Config struct {
	// Name is the server's network address (the endpoint it listens
	// on was bound to it).
	Name string
	// Store holds the log data.
	Store storage.Store
	// Endpoint is the server's network attachment.
	Endpoint transport.Endpoint
	// Epochs hosts generator state representatives. Nil disables the
	// epoch operations (clients must use other representatives).
	Epochs EpochHost
	// Overloaded, when non-nil and returning true, makes the server
	// silently ignore WriteLog and ForceLog messages ("they are free to
	// ignore ForceLog and WriteLog messages if they become too heavily
	// loaded. Clients will simply assume that the server has failed and
	// will take their logging elsewhere.").
	Overloaded func() bool
	// Window and OverAllocPause tune the flow-control parameters.
	Window         uint64
	OverAllocPause time.Duration
	// Telemetry receives the server's metrics (and, if the registry has
	// tracing enabled, its LSN-lifecycle events). Nil directs metrics to
	// a private registry so Stats() keeps working.
	Telemetry *telemetry.Registry
}

// Stats is a snapshot of server activity — a view over the telemetry
// counters (see metrics.go).
type Stats struct {
	PacketsReceived  uint64
	PacketsDropped   uint64 // undecodable or stale
	RecordsWritten   uint64
	Forces           uint64
	AcksSent         uint64
	MissingIntervals uint64
	ReadsServed      uint64
	Shed             uint64
}

// Server is a log server node.
type Server struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session // keyed by client network address
	stopped  bool

	wg sync.WaitGroup
	m  *serverMetrics
	// firstUnforced is when the oldest not-yet-forced record was
	// appended (zero when everything is forced). Handlers run inline in
	// the single receive loop, so no synchronization is needed.
	firstUnforced time.Time
}

// session is the per-client connection state.
type session struct {
	peer     *wire.Peer
	clientID record.ClientID
	// expectedNext is the next LSN the server expects in this client's
	// write stream; 0 until the first write of the connection arrives.
	// Gap detection (MissingInterval) compares against it.
	expectedNext record.LSN
	handshaken   bool
}

// New creates a server; call Start to begin serving.
func New(cfg Config) *Server {
	return &Server{
		cfg:      cfg,
		sessions: make(map[string]*session),
		m:        newServerMetrics(cfg.Telemetry, cfg.Name),
	}
}

// Start launches the receive loop.
func (s *Server) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.loop()
	}()
}

// Stop closes the endpoint and waits for the receive loop to exit. The
// store is not closed; it belongs to the caller (which may restart a
// server over it, modelling a node reboot).
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	s.cfg.Endpoint.Close()
	s.wg.Wait()
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return s.m.stats()
}

func (s *Server) loop() {
	for {
		raw, err := s.cfg.Endpoint.Recv(0)
		if err != nil {
			return // endpoint closed
		}
		s.m.packetsReceived.Add(1)
		pkt, err := wire.Decode(raw.Data)
		if err != nil {
			// Corrupt packet: the end-to-end check rejects it; the
			// sender's own recovery (retry, NACK) handles the loss.
			s.m.packetsDropped.Add(1)
			continue
		}
		s.handle(raw.From, &pkt)
	}
}

// handle dispatches one packet. The server is single-threaded by
// design (Section 4.1 sizes one CPU for the whole service); handlers
// run inline.
func (s *Server) handle(from string, pkt *wire.Packet) {
	s.mu.Lock()
	sess := s.sessions[from]

	if pkt.Type == wire.TSyn {
		if sess != nil && pkt.ConnID == sess.peer.ConnID {
			// Retransmitted or network-duplicated Syn of the live
			// incarnation: answer it, but keep the session. Resetting
			// here would zero the stream position, and the next write
			// would silently adopt the client's current LSN — forgetting
			// a gap the server was tracking and acknowledging records it
			// never stored.
			s.mu.Unlock()
			sess.peer.Observe(pkt)
			sess.peer.Send(wire.TSynAck, pkt.Seq, nil)
			return
		}
		// New connection (or a new incarnation of the client): reset
		// session state. Stream position is re-learned from the first
		// write; log data itself lives in the store and is unaffected.
		sess = &session{
			peer:       wire.NewPeer(s.cfg.Endpoint, from, pkt.ClientID, pkt.ConnID, s.cfg.Window, pauseOf(s.cfg)),
			clientID:   pkt.ClientID,
			handshaken: true,
		}
		sess.peer.SetEstablished()
		s.sessions[from] = sess
		s.m.sessions.Set(int64(len(s.sessions)))
		s.mu.Unlock()
		sess.peer.Observe(pkt)
		sess.peer.Send(wire.TSynAck, pkt.Seq, nil)
		return
	}
	s.mu.Unlock()

	if sess == nil || pkt.ConnID != sess.peer.ConnID {
		// Unknown connection or stale incarnation: ask the client to
		// handshake. The stateless reset echoes the offending ConnID so
		// the client can tell which incarnation was rejected, and builds
		// no per-connection state — stray or scanning packets cost one
		// pooled frame each.
		s.m.packetsDropped.Add(1)
		wire.SendRst(s.cfg.Endpoint, from, pkt.ClientID, pkt.ConnID, pkt.Seq)
		return
	}
	if !sess.peer.Observe(pkt) {
		s.m.packetsDropped.Add(1)
		return
	}

	switch pkt.Type {
	case wire.TAck:
		// Final leg of the handshake; nothing further to do.
	case wire.TWriteLog:
		s.handleWrite(sess, pkt, false)
	case wire.TForceLog:
		s.handleWrite(sess, pkt, true)
	case wire.TNewInterval:
		s.handleNewInterval(sess, pkt)
	case wire.TIntervalListReq:
		s.handleIntervalList(sess, pkt)
	case wire.TReadForwardReq:
		s.handleRead(sess, pkt, true)
	case wire.TReadBackwardReq:
		s.handleRead(sess, pkt, false)
	case wire.TCopyLogReq:
		s.handleCopyLog(sess, pkt)
	case wire.TInstallCopiesReq:
		s.handleInstallCopies(sess, pkt)
	case wire.TEpochReadReq:
		s.handleEpochRead(sess, pkt)
	case wire.TEpochWriteReq:
		s.handleEpochWrite(sess, pkt)
	case wire.TTruncateReq:
		s.handleTruncate(sess, pkt)
	default:
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, fmt.Sprintf("unexpected packet type %s", pkt.Type))
	}
}

func pauseOf(cfg Config) time.Duration { return cfg.OverAllocPause }

// handleWrite applies a WriteLog or ForceLog message: gap detection,
// idempotent skip of retransmitted records, store appends, and (for
// forces) the NewHighLSN acknowledgment.
func (s *Server) handleWrite(sess *session, pkt *wire.Packet, force bool) {
	if s.cfg.Overloaded != nil && s.cfg.Overloaded() {
		// Shed load: ignore the message entirely. The client times out
		// and takes its logging elsewhere.
		s.m.sheds.Add(1)
		s.m.trace.Emit(telemetry.EvShed, s.m.node, 0, 0, 0)
		return
	}
	p, err := wire.DecodeRecordsPayload(pkt.Payload)
	if err != nil || len(p.Records) == 0 {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad records payload")
		return
	}
	first := p.Records[0].LSN

	if sess.expectedNext == 0 {
		// First write of this connection: resume from the store's
		// position, not the packet's. Blindly adopting the packet's
		// first LSN would let a message that arrived ahead of (or
		// instead of) its lost predecessors skip them silently — the
		// server would go on to acknowledge a NewHighLSN covering
		// records it never stored. A jump past the stored position is
		// a gap like any other: NACK it, and the client resends the
		// records (still buffered — that is what δ guarantees) or
		// explicitly starts a new interval.
		if last, _ := s.cfg.Store.LastKey(sess.clientID); last == 0 || first <= last+1 {
			sess.expectedNext = first
		} else {
			sess.expectedNext = last + 1
		}
	}
	if first > sess.expectedNext {
		// Lost message(s): NACK promptly with the missing interval and
		// ignore these records — the client resends from the gap or
		// starts a new interval.
		s.m.nacksSent.Add(1)
		s.m.trace.Emit(telemetry.EvNack, s.m.node,
			uint64(sess.expectedNext), uint64(p.Epoch), uint64(first-sess.expectedNext))
		mi := wire.IntervalPayload{Low: sess.expectedNext, High: first - 1}
		sess.peer.Send(wire.TMissingInterval, 0, mi.Encode())
		return
	}

	appended := 0
	for _, rec := range p.Records {
		if rec.LSN < sess.expectedNext {
			continue // retransmission overlap: already stored
		}
		if rec.LSN > sess.expectedNext {
			// Non-contiguous records inside one message: the client
			// never sends this; reject defensively.
			sess.peer.SendErr(pkt.Seq, wire.CodeSequencing, "records within a message must be consecutive")
			return
		}
		err := s.cfg.Store.Append(sess.clientID, rec)
		switch {
		case err == nil:
			s.m.recordsAppended.Add(1)
			appended++
		case errors.Is(err, record.ErrDuplicate), errors.Is(err, record.ErrLSNRegression):
			// A replay after a server restart: the store already holds
			// the record; advancing past it is the idempotent outcome.
		default:
			sess.peer.SendErr(pkt.Seq, wire.CodeSequencing, err.Error())
			return
		}
		sess.expectedNext = rec.LSN + 1
	}
	if appended > 0 {
		if s.firstUnforced.IsZero() {
			s.firstUnforced = time.Now()
		}
		s.m.trace.Emit(telemetry.EvAppend, s.m.node,
			uint64(sess.expectedNext-1), uint64(p.Epoch), uint64(appended))
	}

	if force {
		faultpoint.Hit(FPWriteBeforeForce)
		forceStart := time.Now()
		if err := s.cfg.Store.Force(); err != nil {
			sess.peer.SendErr(pkt.Seq, wire.CodeUnknown, err.Error())
			return
		}
		faultpoint.Hit(FPWriteAfterForce)
		s.m.forces.Add(1)
		s.m.forceLatency.Observe(uint64(time.Since(forceStart)))
		if !s.firstUnforced.IsZero() {
			s.m.appendToForce.Observe(uint64(time.Since(s.firstUnforced)))
			s.firstUnforced = time.Time{}
		}
		s.m.trace.Emit(telemetry.EvForce, s.m.node,
			uint64(sess.expectedNext-1), uint64(p.Epoch), 0)
		// Emit before the packet leaves (like the client's flush): the
		// client may complete its round — and emit EvStable — the moment
		// the ack is delivered, and the trace guarantees ack < stable.
		s.m.acksSent.Add(1)
		s.m.trace.Emit(telemetry.EvAck, s.m.node,
			uint64(sess.expectedNext-1), uint64(p.Epoch), 0)
		sess.peer.SendLSN(wire.TNewHighLSN, 0, sess.expectedNext-1)
	}
}

func (s *Server) handleNewInterval(sess *session, pkt *wire.Packet) {
	p, err := wire.DecodeNewIntervalPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad NewInterval payload")
		return
	}
	// The client tells us to ignore the missing records and accept a
	// stream restarting at StartingLSN (they were written to other
	// servers).
	sess.expectedNext = p.StartingLSN
}

func (s *Server) handleIntervalList(sess *session, pkt *wire.Packet) {
	ivs := s.cfg.Store.Intervals(sess.clientID)
	// Interval lists are short by design ("an essential assumption of
	// the replicated logging algorithm is that interval lists are
	// short"); if a pathological list outgrows a packet, send the most
	// recent intervals, which are the ones initialization needs.
	resp := wire.IntervalListPayload{Intervals: ivs}
	for len(resp.Encode()) > wire.MaxPayload && len(resp.Intervals) > 1 {
		resp.Intervals = resp.Intervals[1:]
	}
	sess.peer.Send(wire.TIntervalListResp, pkt.Seq, resp.Encode())
}

// handleRead serves ReadLogForward / ReadLogBackward: starting at the
// requested LSN, it packs as many consecutive stored records as fit in
// one reply packet, ascending or descending.
func (s *Server) handleRead(sess *session, pkt *wire.Packet, forward bool) {
	req, err := wire.DecodeLSNPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad read payload")
		return
	}
	first, err := s.cfg.Store.Read(sess.clientID, req.LSN)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeNotStored, fmt.Sprintf("LSN %d not stored", req.LSN))
		return
	}
	recs := []record.Record{first}
	if wire.FitRecords(recs) == 0 {
		// The record exists but cannot fit even alone in a reply
		// packet. Answering CodeNotStored here would lie — the client
		// would conclude this server holds nothing at the LSN and could
		// fail a recovery that the data on this server should satisfy.
		sess.peer.SendErr(pkt.Seq, wire.CodeTooLarge,
			fmt.Sprintf("LSN %d record too large for one reply packet", req.LSN))
		return
	}
	lsn := req.LSN
	for {
		if forward {
			lsn++
		} else {
			if lsn == 1 {
				break
			}
			lsn--
		}
		rec, err := s.cfg.Store.Read(sess.clientID, lsn)
		if err != nil {
			break
		}
		recs = append(recs, rec)
		if n := wire.FitRecords(recs); n < len(recs) {
			recs = recs[:n]
			break
		}
	}
	s.m.readsServed.Add(uint64(len(recs)))
	respType := wire.TReadForwardResp
	if !forward {
		respType = wire.TReadBackwardResp
	}
	sess.peer.SendRecords(respType, pkt.Seq, 0, recs)
}

func (s *Server) handleCopyLog(sess *session, pkt *wire.Packet) {
	p, err := wire.DecodeRecordsPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad CopyLog payload")
		return
	}
	for _, rec := range p.Records {
		if err := s.cfg.Store.StageCopy(sess.clientID, rec); err != nil {
			sess.peer.SendErr(pkt.Seq, wire.CodeSequencing, err.Error())
			return
		}
	}
	sess.peer.Send(wire.TCopyLogResp, pkt.Seq, nil)
}

func (s *Server) handleInstallCopies(sess *session, pkt *wire.Packet) {
	p, err := wire.DecodeInstallPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad InstallCopies payload")
		return
	}
	faultpoint.Hit(FPInstallBeforeCommit)
	err = s.cfg.Store.InstallCopies(sess.clientID, p.Epoch)
	if err != nil && !errors.Is(err, storage.ErrNoStagedCopies) {
		// ErrNoStagedCopies means a retransmitted install whose first
		// arrival already committed: acknowledge idempotently.
		sess.peer.SendErr(pkt.Seq, wire.CodeSequencing, err.Error())
		return
	}
	// Installed records may rewind the client's stream position; the
	// next write stream will re-anchor.
	sess.expectedNext = 0
	sess.peer.Send(wire.TInstallCopiesResp, pkt.Seq, nil)
}

// handleTruncate serves the Section 5.3 space-management call: the
// client declares records below an LSN unnecessary for its recovery
// (it has checkpointed or dumped) and the server discards them.
func (s *Server) handleTruncate(sess *session, pkt *wire.Packet) {
	p, err := wire.DecodeLSNPayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad truncate payload")
		return
	}
	err = s.cfg.Store.Truncate(sess.clientID, p.LSN)
	if err != nil && !errors.Is(err, storage.ErrNotStored) {
		sess.peer.SendErr(pkt.Seq, wire.CodeUnknown, err.Error())
		return
	}
	// Truncating a client with no records is an idempotent no-op.
	sess.peer.Send(wire.TTruncateResp, pkt.Seq, nil)
}

func (s *Server) handleEpochRead(sess *session, pkt *wire.Packet) {
	if s.cfg.Epochs == nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "server hosts no epoch representative")
		return
	}
	v, err := s.cfg.Epochs.Rep(sess.clientID).ReadState()
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeUnknown, err.Error())
		return
	}
	resp := wire.EpochValuePayload{Value: v}
	sess.peer.Send(wire.TEpochReadResp, pkt.Seq, resp.Encode())
}

func (s *Server) handleEpochWrite(sess *session, pkt *wire.Packet) {
	if s.cfg.Epochs == nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "server hosts no epoch representative")
		return
	}
	p, err := wire.DecodeEpochValuePayload(pkt.Payload)
	if err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeBadRequest, "bad epoch value")
		return
	}
	if err := s.cfg.Epochs.Rep(sess.clientID).WriteState(p.Value); err != nil {
		sess.peer.SendErr(pkt.Seq, wire.CodeUnknown, err.Error())
		return
	}
	sess.peer.Send(wire.TEpochWriteResp, pkt.Seq, nil)
}
