package server

import (
	"testing"
	"time"

	"distlog/internal/record"
	"distlog/internal/storage"
	"distlog/internal/transport"
	"distlog/internal/wire"
)

// rig drives a server with raw protocol packets, checking conformance
// to the Figure 4.1 interface without the client library in the way.
type rig struct {
	t     *testing.T
	net   *transport.Network
	srv   *Server
	store storage.Store
	ep    transport.Endpoint // the "client" endpoint
	peer  *wire.Peer
}

func newRig(t *testing.T, mutate ...func(*Config)) *rig {
	t.Helper()
	net := transport.NewNetwork(5)
	store := storage.NewMemStore()
	cfg := Config{
		Name:     "srv",
		Store:    store,
		Endpoint: net.Endpoint("srv"),
		Epochs:   NewMemEpochHost(),
	}
	for _, m := range mutate {
		m(&cfg)
	}
	srv := New(cfg)
	srv.Start()
	t.Cleanup(srv.Stop)

	ep := net.Endpoint("cli")
	r := &rig{t: t, net: net, srv: srv, store: store, ep: ep}
	r.peer = wire.NewPeer(ep, "srv", 7, 1000, 0, time.Millisecond)
	return r
}

// recv waits for the next decodable packet.
func (r *rig) recv() *wire.Packet {
	r.t.Helper()
	raw, err := r.ep.Recv(2 * time.Second)
	if err != nil {
		r.t.Fatalf("recv: %v", err)
	}
	pkt, err := wire.Decode(raw.Data)
	if err != nil {
		r.t.Fatalf("decode: %v", err)
	}
	return &pkt
}

// handshake completes the three-way handshake.
func (r *rig) handshake() {
	r.t.Helper()
	seq, err := r.peer.Send(wire.TSyn, 0, nil)
	if err != nil {
		r.t.Fatal(err)
	}
	pkt := r.recv()
	if pkt.Type != wire.TSynAck || pkt.RespTo != seq {
		r.t.Fatalf("expected SynAck to %d, got %+v", seq, pkt)
	}
	r.peer.SetEstablished()
	if _, err := r.peer.Send(wire.TAck, pkt.Seq, nil); err != nil {
		r.t.Fatal(err)
	}
}

// force sends a ForceLog with consecutive records starting at lsn.
func (r *rig) force(epoch record.Epoch, lsn record.LSN, n int) {
	r.t.Helper()
	var recs []record.Record
	for i := 0; i < n; i++ {
		recs = append(recs, record.Record{LSN: lsn + record.LSN(i), Epoch: epoch, Present: true, Data: []byte("d")})
	}
	p := wire.RecordsPayload{Epoch: epoch, Records: recs}
	if _, err := r.peer.Send(wire.TForceLog, 0, p.Encode()); err != nil {
		r.t.Fatal(err)
	}
}

func TestServerHandshake(t *testing.T) {
	r := newRig(t)
	r.handshake()
}

func TestServerRstForUnknownConnection(t *testing.T) {
	r := newRig(t)
	// Data before any Syn: server answers Rst.
	r.peer.SetEstablished() // locally pretend, to bypass the client-side gate
	p := wire.RecordsPayload{Epoch: 1, Records: []record.Record{{LSN: 1, Epoch: 1, Present: true}}}
	if _, err := r.peer.Send(wire.TForceLog, 0, p.Encode()); err != nil {
		t.Fatal(err)
	}
	if pkt := r.recv(); pkt.Type != wire.TRst {
		t.Fatalf("expected Rst, got %v", pkt.Type)
	}
}

func TestServerForceAcksNewHighLSN(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 7)
	pkt := r.recv()
	if pkt.Type != wire.TNewHighLSN {
		t.Fatalf("expected NewHighLSN, got %v", pkt.Type)
	}
	ack, err := wire.DecodeWriteAckPayload(pkt.Payload)
	if err != nil || ack.Stable != 7 {
		t.Fatalf("ack = %+v, %v", ack, err)
	}
	// Records are in the store.
	for lsn := record.LSN(1); lsn <= 7; lsn++ {
		if _, err := r.store.Read(7, lsn); err != nil {
			t.Fatalf("store.Read(%d): %v", lsn, err)
		}
	}
}

func TestServerDetectsGapAndNacks(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 3) // LSNs 1..3
	if pkt := r.recv(); pkt.Type != wire.TNewHighLSN {
		t.Fatalf("expected ack, got %v", pkt.Type)
	}
	// Jump to LSN 6: records 4..5 are missing.
	r.force(1, 6, 2)
	pkt := r.recv()
	if pkt.Type != wire.TMissingInterval {
		t.Fatalf("expected MissingInterval, got %v", pkt.Type)
	}
	mi, err := wire.DecodeIntervalPayload(pkt.Payload)
	if err != nil || mi.Low != 4 || mi.High != 5 {
		t.Fatalf("missing = %+v, %v", mi, err)
	}
	// The out-of-order records were not applied.
	if _, err := r.store.Read(7, 6); err == nil {
		t.Fatal("record 6 applied despite the gap")
	}
	// Client resends from the gap: all five arrive, ack advances to 7.
	r.force(1, 4, 4)
	pkt = r.recv()
	ack, err := wire.DecodeWriteAckPayload(pkt.Payload)
	if pkt.Type != wire.TNewHighLSN || err != nil || ack.Stable != 7 {
		t.Fatalf("after resend: %v %+v %v", pkt.Type, ack, err)
	}
	if s := r.srv.Stats(); s.MissingIntervals != 1 {
		t.Fatalf("MissingIntervals = %d", s.MissingIntervals)
	}
}

func TestServerNewIntervalSkipsGap(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 3)
	r.recv() // ack
	// Client switches to this server at LSN 10 (records 4..9 live
	// elsewhere): NewInterval tells the server to accept the jump.
	ni := wire.NewIntervalPayload{Epoch: 1, StartingLSN: 10}
	if _, err := r.peer.Send(wire.TNewInterval, 0, ni.Encode()); err != nil {
		t.Fatal(err)
	}
	r.force(1, 10, 2)
	pkt := r.recv()
	ack, err := wire.DecodeWriteAckPayload(pkt.Payload)
	if pkt.Type != wire.TNewHighLSN || err != nil || ack.Stable != 11 {
		t.Fatalf("after NewInterval: %v %+v %v", pkt.Type, ack, err)
	}
	// Interval list shows the two sequences.
	ivs := r.store.Intervals(7)
	if len(ivs) != 2 || ivs[0].High != 3 || ivs[1].Low != 10 {
		t.Fatalf("intervals = %v", ivs)
	}
}

func TestServerRetransmissionIdempotent(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 5)
	r.recv()
	// Full overlap resend (lost-ack recovery): server must re-ack, not
	// duplicate.
	r.force(1, 1, 5)
	pkt := r.recv()
	ack, err := wire.DecodeWriteAckPayload(pkt.Payload)
	if pkt.Type != wire.TNewHighLSN || err != nil || ack.Stable != 5 {
		t.Fatalf("re-ack: %v %+v %v", pkt.Type, ack, err)
	}
	ivs := r.store.Intervals(7)
	if len(ivs) != 1 || ivs[0].Low != 1 || ivs[0].High != 5 {
		t.Fatalf("intervals after resend = %v", ivs)
	}
	// Partial overlap.
	r.force(1, 3, 5) // 3..7; 3..5 already stored
	pkt = r.recv()
	ack, _ = wire.DecodeWriteAckPayload(pkt.Payload)
	if ack.Stable != 7 {
		t.Fatalf("ack after partial overlap = %d", ack.Stable)
	}
}

func TestServerIntervalListCall(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 4)
	r.recv()
	seq, err := r.peer.Send(wire.TIntervalListReq, 0, (&wire.IntervalListPayload{}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	pkt := r.recv()
	if pkt.Type != wire.TIntervalListResp || pkt.RespTo != seq {
		t.Fatalf("resp = %+v", pkt)
	}
	p, err := wire.DecodeIntervalListPayload(pkt.Payload)
	if err != nil || len(p.Intervals) != 1 || p.Intervals[0].High != 4 {
		t.Fatalf("intervals = %+v, %v", p, err)
	}
}

func TestServerReadForwardPacksRecords(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 10)
	r.recv()
	seq, _ := r.peer.Send(wire.TReadForwardReq, 0, (&wire.LSNPayload{LSN: 4}).Encode())
	pkt := r.recv()
	if pkt.Type != wire.TReadForwardResp || pkt.RespTo != seq {
		t.Fatalf("resp = %+v", pkt)
	}
	p, err := wire.DecodeRecordsPayload(pkt.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Records) < 2 || p.Records[0].LSN != 4 || p.Records[1].LSN != 5 {
		t.Fatalf("records = %v", p.Records)
	}
}

func TestServerReadBackward(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 10)
	r.recv()
	seq, _ := r.peer.Send(wire.TReadBackwardReq, 0, (&wire.LSNPayload{LSN: 5}).Encode())
	pkt := r.recv()
	if pkt.Type != wire.TReadBackwardResp || pkt.RespTo != seq {
		t.Fatalf("resp = %+v", pkt)
	}
	p, err := wire.DecodeRecordsPayload(pkt.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if p.Records[0].LSN != 5 || p.Records[1].LSN != 4 {
		t.Fatalf("records = %v", p.Records)
	}
	if last := p.Records[len(p.Records)-1]; last.LSN != 1 {
		t.Fatalf("backward read should stop at LSN 1, got %d", last.LSN)
	}
}

func TestServerReadNotStored(t *testing.T) {
	r := newRig(t)
	r.handshake()
	seq, _ := r.peer.Send(wire.TReadForwardReq, 0, (&wire.LSNPayload{LSN: 99}).Encode())
	pkt := r.recv()
	if pkt.Type != wire.TErrResp || pkt.RespTo != seq {
		t.Fatalf("resp = %+v", pkt)
	}
	p, err := wire.DecodeErrPayload(pkt.Payload)
	if err != nil || p.Code != wire.CodeNotStored {
		t.Fatalf("err payload = %+v, %v", p, err)
	}
}

func TestServerCopyLogAndInstall(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(3, 1, 9)
	r.recv()
	// Stage record 9 at epoch 4 plus a not-present marker 10.
	copies := wire.RecordsPayload{Epoch: 4, Records: []record.Record{
		{LSN: 9, Epoch: 4, Present: true, Data: []byte("copy")},
		{LSN: 10, Epoch: 4, Present: false},
	}}
	seq, _ := r.peer.Send(wire.TCopyLogReq, 0, copies.Encode())
	if pkt := r.recv(); pkt.Type != wire.TCopyLogResp || pkt.RespTo != seq {
		t.Fatalf("CopyLog resp = %+v", pkt)
	}
	seq, _ = r.peer.Send(wire.TInstallCopiesReq, 0, (&wire.InstallPayload{Epoch: 4}).Encode())
	if pkt := r.recv(); pkt.Type != wire.TInstallCopiesResp || pkt.RespTo != seq {
		t.Fatalf("InstallCopies resp = %+v", pkt)
	}
	rec, err := r.store.Read(7, 9)
	if err != nil || rec.Epoch != 4 || string(rec.Data) != "copy" {
		t.Fatalf("record 9 = %v, %v", rec, err)
	}
	// Retried install acks idempotently.
	seq, _ = r.peer.Send(wire.TInstallCopiesReq, 0, (&wire.InstallPayload{Epoch: 4}).Encode())
	if pkt := r.recv(); pkt.Type != wire.TInstallCopiesResp || pkt.RespTo != seq {
		t.Fatalf("retried InstallCopies resp = %+v", pkt)
	}
}

func TestServerEpochReadWrite(t *testing.T) {
	r := newRig(t)
	r.handshake()
	seq, _ := r.peer.Send(wire.TEpochReadReq, 0, (&wire.EpochValuePayload{}).Encode())
	pkt := r.recv()
	p, err := wire.DecodeEpochValuePayload(pkt.Payload)
	if pkt.Type != wire.TEpochReadResp || err != nil || p.Value != 0 {
		t.Fatalf("fresh epoch read: %+v, %v", pkt, err)
	}
	seq, _ = r.peer.Send(wire.TEpochWriteReq, 0, (&wire.EpochValuePayload{Value: 9}).Encode())
	if pkt := r.recv(); pkt.Type != wire.TEpochWriteResp || pkt.RespTo != seq {
		t.Fatalf("epoch write resp = %+v", pkt)
	}
	_, _ = r.peer.Send(wire.TEpochReadReq, 0, (&wire.EpochValuePayload{}).Encode())
	pkt = r.recv()
	p, _ = wire.DecodeEpochValuePayload(pkt.Payload)
	if p.Value != 9 {
		t.Fatalf("epoch after write = %d", p.Value)
	}
}

func TestServerLoadShedding(t *testing.T) {
	overloaded := true
	r := newRig(t, func(cfg *Config) {
		cfg.Overloaded = func() bool { return overloaded }
	})
	r.handshake()
	r.force(1, 1, 3)
	// No ack arrives — the message was shed — but a Busy congestion
	// NACK tells the streaming client to back its window off.
	if pkt := r.recv(); pkt.Type != wire.TBusy {
		t.Fatalf("expected Busy, got %v", pkt.Type)
	}
	if raw, err := r.ep.Recv(100 * time.Millisecond); err == nil {
		pkt, _ := wire.Decode(raw.Data)
		t.Fatalf("expected silence after Busy, got %v", pkt.Type)
	}
	if s := r.srv.Stats(); s.Shed != 1 || s.BusySent != 1 {
		t.Fatalf("Shed = %d, BusySent = %d", s.Shed, s.BusySent)
	}
	// Reads are still served ("servers should make every effort to
	// reply to IntervalList and read calls").
	seq, _ := r.peer.Send(wire.TIntervalListReq, 0, (&wire.IntervalListPayload{}).Encode())
	if pkt := r.recv(); pkt.Type != wire.TIntervalListResp || pkt.RespTo != seq {
		t.Fatalf("IntervalList during overload = %+v", pkt)
	}
	// Load subsides: writes flow again.
	overloaded = false
	r.force(1, 1, 3)
	if pkt := r.recv(); pkt.Type != wire.TNewHighLSN {
		t.Fatalf("after overload: %v", pkt.Type)
	}
}

func TestServerDuplicatePacketDropped(t *testing.T) {
	r := newRig(t)
	r.handshake()
	// Build one ForceLog packet and deliver it twice (duplicated by the
	// network). The second copy must be ignored by sequence-number
	// duplicate detection.
	recs := []record.Record{{LSN: 1, Epoch: 1, Present: true, Data: []byte("once")}}
	p := wire.RecordsPayload{Epoch: 1, Records: recs}
	pkt := &wire.Packet{
		Type: wire.TForceLog, ConnID: 1000, Seq: 50, Alloc: 5000,
		ClientID: 7, Payload: p.Encode(),
	}
	data, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Match the rig peer's ConnID.
	pkt.ConnID = r.peer.ConnID
	data, _ = pkt.Encode()
	r.ep.Send("srv", data)
	r.ep.Send("srv", data) // duplicate
	// One ack for the first; the duplicate is silent.
	if pkt := r.recv(); pkt.Type != wire.TNewHighLSN {
		t.Fatalf("first: %v", pkt.Type)
	}
	if raw, err := r.ep.Recv(100 * time.Millisecond); err == nil {
		dup, _ := wire.Decode(raw.Data)
		t.Fatalf("duplicate produced %v", dup.Type)
	}
	if s := r.srv.Stats(); s.PacketsDropped == 0 {
		t.Fatal("duplicate not counted as dropped")
	}
}

func TestServerNewIncarnationResetsStream(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 3)
	r.recv()
	// The client crashes and reconnects with a new ConnID, and its
	// first write jumps to LSN 9. The server must not silently adopt
	// the new position — a first message past its stored high (3) is
	// indistinguishable from one whose predecessors were lost in
	// flight, and adopting it would let the server acknowledge records
	// it never stored. The jump is a gap like any other: NACK it.
	r.peer = wire.NewPeer(r.ep, "srv", 7, r.peer.ConnID+1, 0, time.Millisecond)
	r.handshake()
	r.force(2, 9, 2)
	pkt := r.recv()
	mi, err := wire.DecodeIntervalPayload(pkt.Payload)
	if pkt.Type != wire.TMissingInterval || err != nil || mi.Low != 4 || mi.High != 8 {
		t.Fatalf("gap after reconnect: %v %+v %v", pkt.Type, mi, err)
	}
	// An explicit NewInterval re-anchors the stream (the missing
	// records live on other servers); the resent force is then
	// accepted and acknowledged.
	ni := wire.NewIntervalPayload{Epoch: 2, StartingLSN: 9}
	if _, err := r.peer.Send(wire.TNewInterval, 0, ni.Encode()); err != nil {
		t.Fatal(err)
	}
	r.force(2, 9, 2)
	pkt = r.recv()
	ack, err := wire.DecodeWriteAckPayload(pkt.Payload)
	if pkt.Type != wire.TNewHighLSN || err != nil || ack.Stable != 10 {
		t.Fatalf("re-anchored ack: %v %+v %v", pkt.Type, ack, err)
	}
}

func TestServerDuplicateSynKeepsSession(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 3)
	if pkt := r.recv(); pkt.Type != wire.TNewHighLSN {
		t.Fatalf("expected ack, got %v", pkt.Type)
	}
	// The client re-anchors the stream at LSN 9 (the skipped records
	// live on other servers).
	ni := wire.NewIntervalPayload{Epoch: 1, StartingLSN: 9}
	if _, err := r.peer.Send(wire.TNewInterval, 0, ni.Encode()); err != nil {
		t.Fatal(err)
	}
	// A duplicated Syn of the live connection arrives before the next
	// write — a retransmission or a network copy, same ConnID. The
	// server must answer it without resetting the session: a reset
	// would forget the NewInterval anchor and bounce the next write.
	if _, err := r.peer.Send(wire.TSyn, 0, nil); err != nil {
		t.Fatal(err)
	}
	if pkt := r.recv(); pkt.Type != wire.TSynAck {
		t.Fatalf("duplicate Syn: expected SynAck, got %v", pkt.Type)
	}
	r.force(1, 9, 2)
	pkt := r.recv()
	ack, err := wire.DecodeWriteAckPayload(pkt.Payload)
	if pkt.Type != wire.TNewHighLSN || err != nil || ack.Stable != 10 {
		t.Fatalf("write after duplicate Syn: %v %+v %v", pkt.Type, ack, err)
	}
}

func TestServerStaleSynRejectedKeepsLiveSession(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 3)
	if pkt := r.recv(); pkt.Type != wire.TNewHighLSN {
		t.Fatalf("expected ack, got %v", pkt.Type)
	}
	// The client re-dials with a higher ConnID (dial ConnIDs are
	// monotonic) and re-anchors its stream.
	stale := r.peer
	r.peer = wire.NewPeer(r.ep, "srv", 7, stale.ConnID+1, 0, time.Millisecond)
	r.handshake()
	ni := wire.NewIntervalPayload{Epoch: 1, StartingLSN: 9}
	if _, err := r.peer.Send(wire.TNewInterval, 0, ni.Encode()); err != nil {
		t.Fatal(err)
	}
	// A delayed Syn from the PREVIOUS incarnation arrives late. The
	// server must not supersede the live, higher-ConnID session with the
	// stale incarnation: doing so would forget the NewInterval anchor
	// and strand the live stream. It answers the stale ConnID with Rst
	// and keeps the session.
	if _, err := stale.Send(wire.TSyn, 0, nil); err != nil {
		t.Fatal(err)
	}
	pkt := r.recv()
	if pkt.Type != wire.TRst || pkt.ConnID != stale.ConnID {
		t.Fatalf("stale Syn: expected Rst to ConnID %d, got %v (ConnID %d)", stale.ConnID, pkt.Type, pkt.ConnID)
	}
	// The live session still holds the anchor: the next write is acked.
	r.force(1, 9, 2)
	pkt = r.recv()
	ack, err := wire.DecodeWriteAckPayload(pkt.Payload)
	if pkt.Type != wire.TNewHighLSN || err != nil || ack.Stable != 10 {
		t.Fatalf("write after stale Syn: %v %+v %v", pkt.Type, ack, err)
	}
}

func TestServerJanitorEvictionThenReconnect(t *testing.T) {
	// The migration-era reconnect interplay: the janitor evicts an idle
	// session mid-life, the client re-dials with a higher ConnID and
	// re-anchors, and a duplicated Syn of the NEW connection must keep
	// that session — the duplicate-Syn reset regression would forget the
	// fresh anchor exactly when a migrating client depends on it.
	r := newRig(t, func(cfg *Config) { cfg.SessionIdle = 50 * time.Millisecond })
	r.handshake()
	r.force(1, 1, 3)
	if pkt := r.recv(); pkt.Type != wire.TNewHighLSN {
		t.Fatalf("expected ack, got %v", pkt.Type)
	}
	// Idle past the horizon: the janitor reclaims the session.
	deadline := time.Now().Add(2 * time.Second)
	for r.srv.Stats().Evicted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("janitor never evicted the idle session")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Re-dial as the client would: higher ConnID, fresh handshake,
	// NewInterval anchor where the stream resumes.
	r.peer = wire.NewPeer(r.ep, "srv", 7, r.peer.ConnID+1, 0, time.Millisecond)
	r.handshake()
	ni := wire.NewIntervalPayload{Epoch: 1, StartingLSN: 4}
	if _, err := r.peer.Send(wire.TNewInterval, 0, ni.Encode()); err != nil {
		t.Fatal(err)
	}
	r.force(1, 4, 2)
	pkt := r.recv()
	ack, err := wire.DecodeWriteAckPayload(pkt.Payload)
	if pkt.Type != wire.TNewHighLSN || err != nil || ack.Stable != 5 {
		t.Fatalf("write after reconnect: %v %+v %v", pkt.Type, ack, err)
	}
	// A duplicated Syn of the live connection must not reset it.
	if _, err := r.peer.Send(wire.TSyn, 0, nil); err != nil {
		t.Fatal(err)
	}
	if pkt := r.recv(); pkt.Type != wire.TSynAck {
		t.Fatalf("duplicate Syn after reconnect: expected SynAck, got %v", pkt.Type)
	}
	r.force(1, 6, 2)
	pkt = r.recv()
	ack, err = wire.DecodeWriteAckPayload(pkt.Payload)
	if pkt.Type != wire.TNewHighLSN || err != nil || ack.Stable != 7 {
		t.Fatalf("write after duplicate Syn: %v %+v %v", pkt.Type, ack, err)
	}
}

func TestServerLeaveRedirectsWritesServesReads(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 3)
	if pkt := r.recv(); pkt.Type != wire.TNewHighLSN {
		t.Fatalf("expected ack, got %v", pkt.Type)
	}
	r.srv.Leave()
	if !r.srv.Leaving() {
		t.Fatal("Leaving() false after Leave")
	}
	// Writes now draw a Redirect carrying the appended high-water mark,
	// not an ack; the records are NOT appended.
	r.force(1, 4, 2)
	pkt := r.recv()
	if pkt.Type != wire.TRedirect {
		t.Fatalf("write while leaving: expected Redirect, got %v", pkt.Type)
	}
	rp, err := wire.DecodeRedirectPayload(pkt.Payload)
	if err != nil || rp.AppendedHigh != 3 {
		t.Fatalf("redirect payload = %+v, %v", rp, err)
	}
	if _, err := r.store.Read(7, 4); err == nil {
		t.Fatal("record appended while leaving")
	}
	// Reads and interval lists keep working so departing clients can
	// still recover and stream off this server.
	if _, err := r.peer.Send(wire.TReadForwardReq, 0, (&wire.LSNPayload{LSN: 2}).Encode()); err != nil {
		t.Fatal(err)
	}
	pkt = r.recv()
	if pkt.Type != wire.TReadForwardResp {
		t.Fatalf("read while leaving: expected ReadForwardResp, got %v", pkt.Type)
	}
	if s := r.srv.Stats(); s.RedirectsSent == 0 || !s.Leaving {
		t.Fatalf("stats = %+v, want RedirectsSent>0 and Leaving", s)
	}
}

func TestServerReconnectResumesFromStore(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 3)
	if pkt := r.recv(); pkt.Type != wire.TNewHighLSN {
		t.Fatalf("expected ack, got %v", pkt.Type)
	}
	// The connection is torn down (say the server restarted and Rst the
	// old incarnation) and the client reconnects mid-stream. Records
	// 4..5 were in flight when the connection died; the first message
	// the server sees starts at 6. It must resume from its stored
	// position and NACK the gap, not adopt the packet's.
	r.peer = wire.NewPeer(r.ep, "srv", 7, r.peer.ConnID+1, 0, time.Millisecond)
	r.handshake()
	r.force(1, 6, 2)
	pkt := r.recv()
	mi, err := wire.DecodeIntervalPayload(pkt.Payload)
	if pkt.Type != wire.TMissingInterval || err != nil || mi.Low != 4 || mi.High != 5 {
		t.Fatalf("gap after reconnect: %v %+v %v", pkt.Type, mi, err)
	}
	// The records are within δ, so the client still buffers them: a
	// plain resend from the gap heals the stream with no NewInterval.
	r.force(1, 4, 4)
	pkt = r.recv()
	ack, err := wire.DecodeWriteAckPayload(pkt.Payload)
	if pkt.Type != wire.TNewHighLSN || err != nil || ack.Stable != 7 {
		t.Fatalf("resend from gap: %v %+v %v", pkt.Type, ack, err)
	}
	for lsn := record.LSN(1); lsn <= 7; lsn++ {
		if _, err := r.store.Read(7, lsn); err != nil {
			t.Fatalf("store.Read(%d): %v", lsn, err)
		}
	}
}

func TestServerCorruptPacketIgnored(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.ep.Send("srv", []byte{1, 2, 3, 4, 5})
	r.force(1, 1, 1)
	if pkt := r.recv(); pkt.Type != wire.TNewHighLSN {
		t.Fatalf("after garbage: %v", pkt.Type)
	}
	if s := r.srv.Stats(); s.PacketsDropped == 0 {
		t.Fatal("garbage not counted")
	}
}

func TestServerTruncateCall(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 10)
	r.recv()
	seq, _ := r.peer.Send(wire.TTruncateReq, 0, (&wire.LSNPayload{LSN: 6}).Encode())
	pkt := r.recv()
	if pkt.Type != wire.TTruncateResp || pkt.RespTo != seq {
		t.Fatalf("resp = %+v", pkt)
	}
	ivs := r.store.Intervals(7)
	if len(ivs) != 1 || ivs[0].Low != 6 {
		t.Fatalf("intervals after truncate = %v", ivs)
	}
	// Truncating a client with no records acks idempotently.
	r2 := newRig(t)
	r2.handshake()
	seq, _ = r2.peer.Send(wire.TTruncateReq, 0, (&wire.LSNPayload{LSN: 6}).Encode())
	if pkt := r2.recv(); pkt.Type != wire.TTruncateResp || pkt.RespTo != seq {
		t.Fatalf("no-record truncate resp = %+v", pkt)
	}
}

func TestServerRejectsBadPayloads(t *testing.T) {
	r := newRig(t)
	r.handshake()
	// Malformed payloads for every call type must produce ErrResp with
	// CodeBadRequest rather than a crash or silence.
	calls := []struct {
		name string
		typ  wire.Type
	}{
		{"write", wire.TWriteLog},
		{"force", wire.TForceLog},
		{"newinterval", wire.TNewInterval},
		{"readfwd", wire.TReadForwardReq},
		{"readbwd", wire.TReadBackwardReq},
		{"copylog", wire.TCopyLogReq},
		{"install", wire.TInstallCopiesReq},
		{"epochwrite", wire.TEpochWriteReq},
		{"truncate", wire.TTruncateReq},
	}
	for _, c := range calls {
		t.Run(c.name, func(t *testing.T) {
			seq, err := r.peer.Send(c.typ, 0, []byte{0xde, 0xad})
			if err != nil {
				t.Fatal(err)
			}
			pkt := r.recv()
			if pkt.Type != wire.TErrResp {
				t.Fatalf("%s: got %v, want ErrResp", c.name, pkt.Type)
			}
			if pkt.RespTo != seq && c.typ.IsRequest() {
				t.Fatalf("%s: RespTo %d, want %d", c.name, pkt.RespTo, seq)
			}
			ep, err := wire.DecodeErrPayload(pkt.Payload)
			if err != nil || ep.Code != wire.CodeBadRequest {
				t.Fatalf("%s: err payload %+v, %v", c.name, ep, err)
			}
		})
	}
}

func TestServerEmptyWritePayloadRejected(t *testing.T) {
	r := newRig(t)
	r.handshake()
	p := wire.RecordsPayload{Epoch: 1, Records: nil}
	seq, _ := r.peer.Send(wire.TForceLog, 0, p.Encode())
	pkt := r.recv()
	if pkt.Type != wire.TErrResp || pkt.RespTo != seq {
		t.Fatalf("resp = %+v", pkt)
	}
}

func TestServerNonConsecutiveRecordsInMessageRejected(t *testing.T) {
	r := newRig(t)
	r.handshake()
	p := wire.RecordsPayload{Epoch: 1, Records: []record.Record{
		{LSN: 1, Epoch: 1, Present: true, Data: []byte("a")},
		{LSN: 3, Epoch: 1, Present: true, Data: []byte("gap")},
	}}
	r.peer.Send(wire.TForceLog, 0, p.Encode())
	pkt := r.recv()
	if pkt.Type != wire.TErrResp {
		t.Fatalf("resp = %v, want ErrResp (records must be consecutive)", pkt.Type)
	}
	ep, _ := wire.DecodeErrPayload(pkt.Payload)
	if ep.Code != wire.CodeSequencing {
		t.Fatalf("code = %d", ep.Code)
	}
}

func TestServerEpochOpsWithoutHost(t *testing.T) {
	r := newRig(t, func(cfg *Config) { cfg.Epochs = nil })
	r.handshake()
	seq, _ := r.peer.Send(wire.TEpochReadReq, 0, (&wire.EpochValuePayload{}).Encode())
	pkt := r.recv()
	if pkt.Type != wire.TErrResp || pkt.RespTo != seq {
		t.Fatalf("resp = %+v", pkt)
	}
}

func TestServerStatsSnapshot(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 3)
	r.recv()
	s := r.srv.Stats()
	if s.PacketsReceived == 0 || s.RecordsWritten != 3 || s.Forces != 1 || s.AcksSent != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestServerStopIdempotent(t *testing.T) {
	r := newRig(t)
	r.srv.Stop()
	r.srv.Stop() // second stop is a no-op
}

// write sends a WriteLog (no force flag) with consecutive records.
func (r *rig) write(epoch record.Epoch, lsn record.LSN, n int) {
	r.t.Helper()
	var recs []record.Record
	for i := 0; i < n; i++ {
		recs = append(recs, record.Record{LSN: lsn + record.LSN(i), Epoch: epoch, Present: true, Data: []byte("d")})
	}
	p := wire.RecordsPayload{Epoch: epoch, Records: recs}
	if _, err := r.peer.Send(wire.TWriteLog, 0, p.Encode()); err != nil {
		r.t.Fatal(err)
	}
}

// recvStable drains acks until the cumulative stable LSN reaches want,
// failing on anything that is not a NewHighLSN.
func (r *rig) recvStable(want record.LSN) *wire.WriteAckPayload {
	r.t.Helper()
	for {
		pkt := r.recv()
		if pkt.Type != wire.TNewHighLSN {
			r.t.Fatalf("expected NewHighLSN, got %v", pkt.Type)
		}
		ack, err := wire.DecodeWriteAckPayload(pkt.Payload)
		if err != nil {
			r.t.Fatalf("ack decode: %v", err)
		}
		if ack.Stable >= want {
			return ack
		}
	}
}

// TestServerStreamedWriteAcked: a WriteLog with no force flag still
// draws a cumulative stability ack — the acker forces in the background
// so a streaming client's window advances without a force round trip.
func TestServerStreamedWriteAcked(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.write(1, 1, 5)
	ack := r.recvStable(5)
	if ack.Appended < 5 {
		t.Fatalf("ack = %+v, want appended >= 5", ack)
	}
	for lsn := record.LSN(1); lsn <= 5; lsn++ {
		if _, err := r.store.Read(7, lsn); err != nil {
			t.Fatalf("store.Read(%d): %v", lsn, err)
		}
	}
}

// TestServerForcePointAcks: a ForcePoint covering already-streamed
// records forces and acks without the records being resent.
func TestServerForcePointAcks(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.write(1, 1, 4)
	r.recvStable(4)
	if _, err := r.peer.SendLSN(wire.TForcePoint, 0, 4); err != nil {
		t.Fatal(err)
	}
	ack := r.recvStable(4)
	if ack.Stable < 4 {
		t.Fatalf("force point ack = %+v", ack)
	}
}

// TestServerForcePointBeyondAppendedNacks: a force point past what the
// server holds means the covering WriteLogs were lost — the server must
// NACK the gap, never ack records it does not store.
func TestServerForcePointBeyondAppendedNacks(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.write(1, 1, 3)
	r.recvStable(3)
	if _, err := r.peer.SendLSN(wire.TForcePoint, 0, 7); err != nil {
		t.Fatal(err)
	}
	pkt := r.recv()
	if pkt.Type != wire.TMissingInterval {
		t.Fatalf("expected MissingInterval, got %v", pkt.Type)
	}
	mi, err := wire.DecodeIntervalPayload(pkt.Payload)
	if err != nil || mi.Low != 4 || mi.High != 7 {
		t.Fatalf("missing = %+v, %v", mi, err)
	}
}

// TestServerForcePointFreshSessionAnchorsFromStore: a force point as
// the first message of a connection resumes from the store's position,
// exactly like a first write — covering a client that reconnects and
// forces before sending anything new.
func TestServerForcePointFreshSessionAnchorsFromStore(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.force(1, 1, 3)
	r.recvStable(3)
	// Reconnect with a new incarnation; first message is a force point
	// at the stored high.
	r.peer = wire.NewPeer(r.ep, "srv", 7, r.peer.ConnID+1, 0, time.Millisecond)
	r.handshake()
	if _, err := r.peer.SendLSN(wire.TForcePoint, 0, 3); err != nil {
		t.Fatal(err)
	}
	r.recvStable(3)
	// A force point past the stored high is NACKed from the store anchor.
	if _, err := r.peer.SendLSN(wire.TForcePoint, 0, 5); err != nil {
		t.Fatal(err)
	}
	pkt := r.recv()
	mi, err := wire.DecodeIntervalPayload(pkt.Payload)
	if pkt.Type != wire.TMissingInterval || err != nil || mi.Low != 4 || mi.High != 5 {
		t.Fatalf("fresh-session gap: %v %+v %v", pkt.Type, mi, err)
	}
}

// TestServerWriteRetransmissionReacked: a full-overlap WriteLog
// retransmission (the client evidently missed the cumulative ack)
// draws a repeat ack rather than silence — without it, a client whose
// tail ack was lost would stall its send window until the next force.
func TestServerWriteRetransmissionReacked(t *testing.T) {
	r := newRig(t)
	r.handshake()
	r.write(1, 1, 3)
	r.recvStable(3)
	r.write(1, 1, 3) // retransmission: nothing new appends
	ack := r.recvStable(3)
	if ack.Appended != 3 {
		t.Fatalf("re-ack = %+v", ack)
	}
}

// TestServerReadTooLargeRecordDistinctError pins the handleRead fix:
// a record that exists but cannot fit a single reply packet must not
// be reported as CodeNotStored (which would tell the client this
// server holds nothing at the LSN), but with the distinct
// CodeTooLarge.
func TestServerReadTooLargeRecordDistinctError(t *testing.T) {
	r := newRig(t)
	r.handshake()
	// Inject the oversized record directly into the store: the network
	// write path cannot produce one today (it arrives under the same
	// packet framing), but a replayed stream from a backend with a
	// larger write MTU can.
	huge := record.Record{LSN: 1, Epoch: 1, Present: true, Data: make([]byte, wire.MaxPayload)}
	if err := r.store.Append(7, huge); err != nil {
		t.Fatal(err)
	}

	for _, typ := range []wire.Type{wire.TReadForwardReq, wire.TReadBackwardReq} {
		seq, _ := r.peer.Send(typ, 0, (&wire.LSNPayload{LSN: 1}).Encode())
		pkt := r.recv()
		if pkt.Type != wire.TErrResp || pkt.RespTo != seq {
			t.Fatalf("%s resp = %+v", typ, pkt)
		}
		p, err := wire.DecodeErrPayload(pkt.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if p.Code != wire.CodeTooLarge {
			t.Fatalf("%s code = %d, want CodeTooLarge", typ, p.Code)
		}
	}

	// A genuinely absent LSN still answers CodeNotStored.
	seq, _ := r.peer.Send(wire.TReadForwardReq, 0, (&wire.LSNPayload{LSN: 2}).Encode())
	pkt := r.recv()
	p, err := wire.DecodeErrPayload(pkt.Payload)
	if err != nil || pkt.RespTo != seq || p.Code != wire.CodeNotStored {
		t.Fatalf("absent LSN: %+v, %v", p, err)
	}
}
