package sim

import (
	"fmt"

	"distlog/internal/record"
)

// CrashChecker audits the Section 3.1 guarantees across client crashes
// and recoveries. A crash-injection harness feeds it the workload it
// drives (Wrote / Forced / Crashed) and, after each recovery, hands it
// the recovered log to Audit. The checker knows nothing about the
// client's internals: it judges the log purely through the LogReader
// surface, so it can never be fooled by the very state a crash was
// supposed to destroy.
//
// Invariants checked:
//
//   - Durability: every record whose Force returned success reads back
//     present with its original data, in every later incarnation.
//   - δ-window: a record more than δ positions below the end of the
//     crashed incarnation's log had necessarily completed an implicit
//     force round (WriteLog bounds outstanding records by δ), so it
//     too must survive with its data.
//   - Doubtful stability: a record inside the crash-time δ window may
//     resolve either way — present with the original data, or not
//     present — but the first answer observed after recovery is the
//     answer forever (Section 3.1.2's "doubtful" records are settled,
//     not re-litigated, by later recoveries).
//   - Epochs: every incarnation's epoch is strictly greater than its
//     predecessor's.
//   - End of log: never regresses below the highest LSN ever returned
//     by WriteLog (recovery appends δ not-present markers; it must not
//     shorten the log).
type CrashChecker struct {
	delta int

	acked    map[record.LSN]string // force-acknowledged: durable forever
	wrote    map[record.LSN]string // written by the live incarnation, not yet forced
	doubtful map[record.LSN]string // in the δ window at some crash; either outcome legal
	pinned   map[record.LSN]pinnedOutcome
	// reclaimable holds records the client released via a truncation-
	// point advance (checkpoint): space management may discard them, so
	// they need not survive — but if one is still served, it must carry
	// the original data.
	reclaimable map[record.LSN]string
	truncatedAt record.LSN

	maxWritten record.LSN
	lastEpoch  record.Epoch
	// epochMustAdvance is set at every crash: the next audited
	// incarnation must present a strictly greater epoch. Re-audits of
	// the same incarnation may repeat it.
	epochMustAdvance bool
	crashes          int
}

type pinnedOutcome struct {
	present bool
	data    string
}

// LogReader is the slice of the replicated-log client the checker
// audits through.
type LogReader interface {
	Epoch() record.Epoch
	EndOfLog() record.LSN
	ReadRecord(lsn record.LSN) (record.Record, error)
}

// NewCrashChecker returns a checker for a log opened with the given δ.
func NewCrashChecker(delta int) *CrashChecker {
	return &CrashChecker{
		delta:            delta,
		acked:            make(map[record.LSN]string),
		wrote:            make(map[record.LSN]string),
		doubtful:         make(map[record.LSN]string),
		pinned:           make(map[record.LSN]pinnedOutcome),
		reclaimable:      make(map[record.LSN]string),
		epochMustAdvance: true,
	}
}

// Wrote records a successful WriteLog.
func (c *CrashChecker) Wrote(lsn record.LSN, data []byte) {
	c.wrote[lsn] = string(data)
	if lsn > c.maxWritten {
		c.maxWritten = lsn
	}
}

// Forced records a successful Force: every record written so far is
// now stable on N servers.
func (c *CrashChecker) Forced() {
	for lsn, data := range c.wrote {
		c.acked[lsn] = data
		delete(c.wrote, lsn)
	}
}

// Crashed records that the client incarnation died. Unforced records
// within δ of the end of the log become doubtful; anything older has
// necessarily completed an implicit force round (WriteLog never leaves
// more than δ records outstanding) and is promoted to acked — if the
// δ bound were violated, the next Audit reports the loss.
func (c *CrashChecker) Crashed() {
	c.crashes++
	c.epochMustAdvance = true
	cutoff := record.LSN(0)
	if c.maxWritten > record.LSN(c.delta) {
		cutoff = c.maxWritten - record.LSN(c.delta)
	}
	for lsn, data := range c.wrote {
		if lsn <= cutoff {
			c.acked[lsn] = data
		} else {
			c.doubtful[lsn] = data
		}
		delete(c.wrote, lsn)
	}
}

// Truncated records that the client advanced its truncation point to
// before (it checkpointed): records below are no longer required for
// its recovery, and space management may reclaim them. The durability
// demand on them is relaxed — a read may answer not-present or fail —
// but stale data must never resurface, so a record still served must
// carry its original bytes. Doubtful records below the point lose
// their pins: truncation legitimately settles them as not-present.
func (c *CrashChecker) Truncated(before record.LSN) {
	if before <= c.truncatedAt {
		return
	}
	c.truncatedAt = before
	for lsn, data := range c.acked {
		if lsn < before {
			c.reclaimable[lsn] = data
			delete(c.acked, lsn)
		}
	}
	for lsn := range c.doubtful {
		if lsn < before {
			delete(c.doubtful, lsn)
			delete(c.pinned, lsn)
		}
	}
}

// Crashes returns how many crashes the checker has been told about.
func (c *CrashChecker) Crashes() int { return c.crashes }

// Doubtful returns how many records are currently in doubt.
func (c *CrashChecker) Doubtful() int { return len(c.doubtful) }

// Audit verifies every invariant against a freshly opened (recovered)
// incarnation. The network should be healthy while it runs: a read
// failure is reported as a violation, not retried.
func (c *CrashChecker) Audit(l LogReader) error {
	epoch := l.Epoch()
	if c.epochMustAdvance {
		if epoch <= c.lastEpoch {
			return fmt.Errorf("crashcheck: epoch %d not above predecessor's %d", epoch, c.lastEpoch)
		}
	} else if epoch < c.lastEpoch {
		return fmt.Errorf("crashcheck: epoch regressed from %d to %d within one incarnation", c.lastEpoch, epoch)
	}
	c.lastEpoch = epoch
	c.epochMustAdvance = false

	if eol := l.EndOfLog(); eol < c.maxWritten {
		return fmt.Errorf("crashcheck: end of log %d regressed below max written LSN %d", eol, c.maxWritten)
	}

	for lsn, want := range c.acked {
		rec, err := l.ReadRecord(lsn)
		if err != nil {
			return fmt.Errorf("crashcheck: acked LSN %d unreadable: %w", lsn, err)
		}
		if !rec.Present {
			return fmt.Errorf("crashcheck: acked LSN %d lost (reads not-present)", lsn)
		}
		if string(rec.Data) != want {
			return fmt.Errorf("crashcheck: acked LSN %d data %q, want %q", lsn, rec.Data, want)
		}
	}

	for lsn, want := range c.reclaimable {
		rec, err := l.ReadRecord(lsn)
		if err != nil {
			continue // reclaimed: unreadable is a legal outcome
		}
		if rec.Present && string(rec.Data) != want {
			return fmt.Errorf("crashcheck: reclaimed LSN %d resurfaced with data %q, want %q or not-present", lsn, rec.Data, want)
		}
	}

	for lsn, want := range c.doubtful {
		rec, err := l.ReadRecord(lsn)
		if err != nil {
			return fmt.Errorf("crashcheck: doubtful LSN %d unreadable: %w", lsn, err)
		}
		if rec.Present && string(rec.Data) != want {
			return fmt.Errorf("crashcheck: doubtful LSN %d present with data %q, want %q or not-present", lsn, rec.Data, want)
		}
		got := pinnedOutcome{present: rec.Present, data: string(rec.Data)}
		if pin, ok := c.pinned[lsn]; ok {
			if pin != got {
				return fmt.Errorf("crashcheck: doubtful LSN %d flip-flopped: first observed present=%v, now present=%v", lsn, pin.present, got.present)
			}
		} else {
			c.pinned[lsn] = got
		}
	}
	return nil
}
