// Package sim provides a small discrete-event simulation kernel used
// by the capacity analysis (Section 4.1) and the device timing models.
// Time is virtual: events execute in timestamp order on a single
// goroutine and the clock jumps between events.
package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-break so same-time events run FIFO
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
}

// New returns an empty simulator at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn to run at the absolute virtual time at. Times in the
// past run at the current time.
func (s *Sim) At(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Step runs the next event, returning false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then sets
// the clock to deadline.
func (s *Sim) RunUntil(deadline time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.queue) }

// Resource is a single FIFO server (a CPU, a disk arm, a network
// link). Work items occupy it for a service time; utilization and
// queueing statistics are accumulated for the capacity reports.
type Resource struct {
	sim  *Sim
	name string

	busyUntil time.Duration
	busyTime  time.Duration

	served    uint64
	totalWait time.Duration
	maxQueue  int
	queueLen  int
}

// NewResource creates a FIFO resource attached to the simulator.
func (s *Sim) NewResource(name string) *Resource {
	return &Resource{sim: s, name: name}
}

// Use schedules service of the given duration, calling done (which may
// be nil) when the service completes. Requests are served FIFO: a
// request arriving while the resource is busy waits.
func (r *Resource) Use(service time.Duration, done func()) {
	now := r.sim.Now()
	start := now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.totalWait += start - now
	r.busyUntil = start + service
	r.busyTime += service
	r.served++
	r.queueLen++
	if r.queueLen > r.maxQueue {
		r.maxQueue = r.queueLen
	}
	end := r.busyUntil
	r.sim.At(end, func() {
		r.queueLen--
		if done != nil {
			done()
		}
	})
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Utilization returns busy time divided by elapsed time over the
// window [0, now].
func (r *Resource) Utilization() float64 {
	if r.sim.Now() == 0 {
		return 0
	}
	busy := r.busyTime
	// Exclude service scheduled beyond the current clock (in-progress
	// work at the measurement instant).
	if r.busyUntil > r.sim.Now() {
		busy -= r.busyUntil - r.sim.Now()
	}
	return float64(busy) / float64(r.sim.Now())
}

// Served returns the number of service completions started.
func (r *Resource) Served() uint64 { return r.served }

// MeanWait returns the average queueing delay experienced by requests.
func (r *Resource) MeanWait() time.Duration {
	if r.served == 0 {
		return 0
	}
	return r.totalWait / time.Duration(r.served)
}

// MaxQueue returns the maximum number of requests simultaneously
// queued or in service.
func (r *Resource) MaxQueue() int { return r.maxQueue }
