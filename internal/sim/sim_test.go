package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Millisecond, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if s.Now() != 4*time.Millisecond {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestPastEventRunsNow(t *testing.T) {
	s := New()
	s.At(time.Second, func() {
		s.At(0, func() {}) // in the past; must not rewind the clock
	})
	s.Run()
	if s.Now() != time.Second {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	ran := 0
	s.At(time.Second, func() { ran++ })
	s.At(3*time.Second, func() { ran++ })
	s.RunUntil(2 * time.Second)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

func TestResourceFIFOAndUtilization(t *testing.T) {
	s := New()
	r := s.NewResource("disk")
	var done []int
	// Three 10ms jobs arriving together: finish at 10, 20, 30ms.
	for i := 0; i < 3; i++ {
		i := i
		r.Use(10*time.Millisecond, func() { done = append(done, i) })
	}
	s.Run()
	if len(done) != 3 || done[0] != 0 || done[2] != 2 {
		t.Fatalf("done = %v", done)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v", s.Now())
	}
	if u := r.Utilization(); u < 0.999 || u > 1.001 {
		t.Fatalf("Utilization = %f, want 1.0", u)
	}
	if r.Served() != 3 {
		t.Fatalf("Served = %d", r.Served())
	}
	// Mean wait: 0 + 10 + 20 = 30 / 3 = 10ms.
	if w := r.MeanWait(); w != 10*time.Millisecond {
		t.Fatalf("MeanWait = %v", w)
	}
	if r.MaxQueue() != 3 {
		t.Fatalf("MaxQueue = %d", r.MaxQueue())
	}
}

func TestResourceIdleTime(t *testing.T) {
	s := New()
	r := s.NewResource("cpu")
	r.Use(10*time.Millisecond, nil)
	s.After(90*time.Millisecond, func() {}) // stretch the clock to 100ms... arrives at 90
	s.Run()
	s.RunUntil(100 * time.Millisecond)
	if u := r.Utilization(); u < 0.099 || u > 0.101 {
		t.Fatalf("Utilization = %f, want 0.10", u)
	}
}

func TestResourceArrivalsSpread(t *testing.T) {
	s := New()
	r := s.NewResource("link")
	// Job at t=0 (5ms) and job at t=3ms (5ms): second waits 2ms.
	r.Use(5*time.Millisecond, nil)
	s.After(3*time.Millisecond, func() {
		r.Use(5*time.Millisecond, nil)
	})
	s.Run()
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v, want 10ms", s.Now())
	}
	wantMean := time.Millisecond // (0 + 2ms)/2
	if w := r.MeanWait(); w != wantMean {
		t.Fatalf("MeanWait = %v, want %v", w, wantMean)
	}
}

func BenchmarkSimThroughput(b *testing.B) {
	s := New()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	s.After(0, tick)
	s.Run()
}
