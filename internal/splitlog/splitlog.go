// Package splitlog implements the log record splitting and caching
// optimization of Section 5.2: log records often contain independent
// redo and undo components; the redo component must be stable before
// commit, but the undo component is needed only before the pages it
// covers are cleaned (written to non-volatile storage). Splitting lets
// the client stream redo components with the rest of the log while
// caching undo components in virtual memory. Undo components are
// logged only when their page is about to be cleaned under an
// uncommitted transaction; transactions that commit first never log
// them at all. Aborts are served from the cache, avoiding log-server
// reads entirely.
package splitlog

import (
	"sync"

	"distlog/internal/record"
)

// Appender is the slice of the recovery log the cache needs: the
// ability to append an undo component.
type Appender interface {
	WriteLog(data []byte) (record.LSN, error)
}

// Stats reports the savings splitting achieved.
type Stats struct {
	// UndoCached counts undo components entered into the cache.
	UndoCached uint64
	// UndoBytesCached is their total size.
	UndoBytesCached uint64
	// UndoLogged counts undo components that had to be written to the
	// log because their page was cleaned first.
	UndoLogged uint64
	// UndoBytesLogged is their total size.
	UndoBytesLogged uint64
	// UndoDropped counts components discarded at commit — pure savings.
	UndoDropped uint64
	// UndoBytesSaved is the log volume avoided (bytes of dropped,
	// never-logged components).
	UndoBytesSaved uint64
	// AbortsServed counts aborts answered from the cache.
	AbortsServed uint64
}

type entry struct {
	txn    uint64
	key    string
	data   []byte
	logged bool
}

// Cache holds undo components for live transactions.
type Cache struct {
	mu  sync.Mutex
	log Appender
	// perTxn preserves insertion order so aborts can undo in reverse.
	perTxn map[uint64][]*entry
	perKey map[string][]*entry
	stats  Stats
}

// New returns an empty cache writing spilled components to log.
func New(log Appender) *Cache {
	return &Cache{
		log:    log,
		perTxn: make(map[uint64][]*entry),
		perKey: make(map[string][]*entry),
	}
}

// Put caches the undo component for one update by txn against key.
func (c *Cache) Put(txn uint64, key string, undo []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &entry{txn: txn, key: key, data: append([]byte(nil), undo...)}
	c.perTxn[txn] = append(c.perTxn[txn], e)
	c.perKey[key] = append(c.perKey[key], e)
	c.stats.UndoCached++
	c.stats.UndoBytesCached += uint64(len(undo))
}

// BeforeClean must be called before the page holding key is written to
// non-volatile storage: every cached, not-yet-logged undo component
// referencing the key is appended to the log first (the WAL rule for
// undo information).
func (c *Cache) BeforeClean(key string) error {
	c.mu.Lock()
	pending := make([]*entry, 0, len(c.perKey[key]))
	for _, e := range c.perKey[key] {
		if !e.logged {
			pending = append(pending, e)
		}
	}
	c.mu.Unlock()
	for _, e := range pending {
		if _, err := c.log.WriteLog(e.data); err != nil {
			return err
		}
		c.mu.Lock()
		e.logged = true
		c.stats.UndoLogged++
		c.stats.UndoBytesLogged += uint64(len(e.data))
		c.mu.Unlock()
	}
	return nil
}

// OnCommit discards txn's cached components: those never logged are
// pure log-volume savings.
func (c *Cache) OnCommit(txn uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.perTxn[txn] {
		if !e.logged {
			c.stats.UndoDropped++
			c.stats.UndoBytesSaved += uint64(len(e.data))
		}
		c.removeFromKeyLocked(e)
	}
	delete(c.perTxn, txn)
}

// TakeForAbort removes and returns txn's undo components in reverse
// order (most recent first) for local rollback — no log-server read
// required.
func (c *Cache) TakeForAbort(txn uint64) [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := c.perTxn[txn]
	if entries == nil {
		return nil
	}
	delete(c.perTxn, txn)
	out := make([][]byte, 0, len(entries))
	for i := len(entries) - 1; i >= 0; i-- {
		out = append(out, entries[i].data)
		c.removeFromKeyLocked(entries[i])
	}
	c.stats.AbortsServed++
	return out
}

func (c *Cache) removeFromKeyLocked(e *entry) {
	list := c.perKey[e.key]
	for i, x := range list {
		if x == e {
			c.perKey[e.key] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(c.perKey[e.key]) == 0 {
		delete(c.perKey, e.key)
	}
}

// Live returns the number of cached components (tests).
func (c *Cache) Live() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, es := range c.perTxn {
		n += len(es)
	}
	return n
}

// Stats returns a snapshot of the savings counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
