package splitlog

import (
	"sync"
	"testing"

	"distlog/internal/record"
)

// appendLog records appended undo components.
type appendLog struct {
	mu   sync.Mutex
	data [][]byte
}

func (l *appendLog) WriteLog(p []byte) (record.LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.data = append(l.data, append([]byte(nil), p...))
	return record.LSN(len(l.data)), nil
}

func (l *appendLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.data)
}

func TestCommitDropsUndoWithoutLogging(t *testing.T) {
	log := &appendLog{}
	c := New(log)
	c.Put(1, "pageA", []byte("undo-a"))
	c.Put(1, "pageB", []byte("undo-b"))
	if c.Live() != 2 {
		t.Fatalf("Live = %d", c.Live())
	}
	c.OnCommit(1)
	if c.Live() != 0 {
		t.Fatalf("Live after commit = %d", c.Live())
	}
	if log.count() != 0 {
		t.Fatalf("%d undo components logged, want 0", log.count())
	}
	s := c.Stats()
	if s.UndoDropped != 2 || s.UndoBytesSaved != 12 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBeforeCleanLogsPendingUndo(t *testing.T) {
	log := &appendLog{}
	c := New(log)
	c.Put(1, "pageA", []byte("undo-1a"))
	c.Put(2, "pageA", []byte("undo-2a"))
	c.Put(1, "pageB", []byte("undo-1b"))
	if err := c.BeforeClean("pageA"); err != nil {
		t.Fatal(err)
	}
	if log.count() != 2 {
		t.Fatalf("logged %d, want 2 (both txns touch pageA)", log.count())
	}
	// Cleaning again logs nothing new.
	if err := c.BeforeClean("pageA"); err != nil {
		t.Fatal(err)
	}
	if log.count() != 2 {
		t.Fatalf("re-clean logged extra components: %d", log.count())
	}
	// pageB's component is still pending.
	if err := c.BeforeClean("pageB"); err != nil {
		t.Fatal(err)
	}
	if log.count() != 3 {
		t.Fatalf("logged %d, want 3", log.count())
	}
	s := c.Stats()
	if s.UndoLogged != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCommitAfterCleanCountsNoSavings(t *testing.T) {
	log := &appendLog{}
	c := New(log)
	c.Put(1, "pageA", []byte("undo"))
	c.BeforeClean("pageA")
	c.OnCommit(1)
	s := c.Stats()
	if s.UndoDropped != 0 || s.UndoBytesSaved != 0 {
		t.Fatalf("logged component counted as saved: %+v", s)
	}
}

func TestAbortServedFromCacheInReverseOrder(t *testing.T) {
	log := &appendLog{}
	c := New(log)
	c.Put(5, "a", []byte("first"))
	c.Put(5, "b", []byte("second"))
	c.Put(5, "c", []byte("third"))
	undos := c.TakeForAbort(5)
	if len(undos) != 3 {
		t.Fatalf("undos = %d", len(undos))
	}
	if string(undos[0]) != "third" || string(undos[2]) != "first" {
		t.Fatalf("order = %q,%q,%q", undos[0], undos[1], undos[2])
	}
	if c.Live() != 0 {
		t.Fatalf("Live = %d", c.Live())
	}
	if s := c.Stats(); s.AbortsServed != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// A second take returns nothing.
	if undos := c.TakeForAbort(5); undos != nil {
		t.Fatalf("second take = %v", undos)
	}
}

func TestTxnIsolationInCache(t *testing.T) {
	log := &appendLog{}
	c := New(log)
	c.Put(1, "a", []byte("t1"))
	c.Put(2, "a", []byte("t2"))
	c.OnCommit(1)
	undos := c.TakeForAbort(2)
	if len(undos) != 1 || string(undos[0]) != "t2" {
		t.Fatalf("undos = %v", undos)
	}
}

func TestPutCopiesData(t *testing.T) {
	log := &appendLog{}
	c := New(log)
	buf := []byte("mutable")
	c.Put(1, "a", buf)
	buf[0] = 'X'
	undos := c.TakeForAbort(1)
	if string(undos[0]) != "mutable" {
		t.Fatal("cache aliases caller's buffer")
	}
}

func TestConcurrentUse(t *testing.T) {
	log := &appendLog{}
	c := New(log)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(txn uint64) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Put(txn, "shared", []byte("u"))
			}
			if txn%2 == 0 {
				c.OnCommit(txn)
			} else {
				c.TakeForAbort(txn)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if c.Live() != 0 {
		t.Fatalf("Live = %d", c.Live())
	}
}
