package storage

import (
	"sync"
	"sync/atomic"

	"distlog/internal/telemetry"
)

// ForceGroup coalesces concurrent Force calls into shared rounds —
// server-side group force. Section 4.1 sizes a log server for 50
// clients × 10 TPS and NVRAM makes every force a memory-speed no-op;
// a FileStore has no NVRAM, so without coalescing 50 concurrent
// ForceLog handlers would queue 50 fsyncs back to back. A ForceGroup
// runs at most one underlying Force at a time: the first caller leads
// a round immediately, and every caller that arrives while that round
// is in flight joins one shared successor round, led by the first
// joiner when the in-flight fsync completes.
//
// The invariant the server's acknowledgments depend on: Force returns
// nil only after an underlying Force that STARTED after the call was
// made has completed. Records appended before the call are therefore
// covered by the round the caller observes — an acked NewHighLSN
// implies a completed Force covering it.
type ForceGroup struct {
	force func() error

	// Rounds counts underlying forces run; Coalesced counts callers
	// that shared a round led by another caller. Nil counters no-op.
	Rounds    *telemetry.Counter
	Coalesced *telemetry.Counter

	// Handoff, when non-nil, runs on a successor leader between the
	// completion of the in-flight force and the start of its own —
	// the server arms its crash-between-coalesced-forces faultpoint
	// here.
	Handoff func()

	mu   sync.Mutex
	cur  *forceRound // in flight (or just completed, pending handoff)
	next *forceRound // waiting for cur; its first joiner leads it
	pool sync.Pool   // spent *forceRound, so steady-state rounds don't allocate
}

// forceRound is one shared underlying Force. Rounds are pooled: refs
// counts the goroutines still holding the round (leader + waiters, and
// the successor leader waiting on it), and the last one out returns it.
// Refs are only taken under g.mu while the round is provably live (in
// flight, or published as g.next), so a pooled round is never revived.
type forceRound struct {
	wg   sync.WaitGroup // leader holds it up until err is published
	err  error
	refs atomic.Int32
}

// NewForceGroup returns a coalescer over force (typically a
// Store.Force method value).
func NewForceGroup(force func() error) *ForceGroup {
	return &ForceGroup{force: force}
}

// Force makes all records appended before the call stable, sharing
// the underlying Force with concurrent callers where possible. Every
// member of a round observes the round's error.
func (g *ForceGroup) Force() error {
	g.mu.Lock()
	cur := g.cur
	if cur == nil {
		// Idle: lead a round immediately.
		r := g.getRound()
		g.cur = r
		g.mu.Unlock()
		return g.run(r)
	}
	// A force is in flight; join (or open) the successor round.
	r := g.next
	if r == nil {
		r = g.getRound()
		g.next = r
		cur.refs.Add(1) // hold cur across the wait below
		g.mu.Unlock()
		// First joiner leads the successor once the in-flight force
		// completes.
		cur.wg.Wait()
		g.putRound(cur)
		if g.Handoff != nil {
			g.Handoff()
		}
		g.mu.Lock()
		g.cur = r
		if g.next == r {
			g.next = nil
		}
		g.mu.Unlock()
		return g.run(r)
	}
	g.Coalesced.Add(1)
	r.refs.Add(1)
	g.mu.Unlock()
	r.wg.Wait()
	err := r.err
	g.putRound(r)
	return err
}

// run executes the round's underlying force and releases its members.
func (g *ForceGroup) run(r *forceRound) error {
	g.Rounds.Add(1)
	err := g.force()
	r.err = err
	g.mu.Lock()
	if g.next == nil {
		// No successor queued: the group goes idle. (With a successor
		// queued, its leader performs the g.cur swap after waking, and
		// late arrivals meanwhile join the successor — never a
		// completed round. A take-ref on cur only happens with no
		// successor queued, which implies cur is still in flight, so a
		// completed round's refcount can only fall.)
		g.cur = nil
	}
	g.mu.Unlock()
	r.wg.Done()
	g.putRound(r)
	return err
}

func (g *ForceGroup) getRound() *forceRound {
	r, _ := g.pool.Get().(*forceRound)
	if r == nil {
		r = new(forceRound)
	}
	r.wg.Add(1)
	r.refs.Store(1)
	return r
}

// putRound drops the caller's reference; the last holder recycles the
// round. Waiters read r.err before calling this.
func (g *ForceGroup) putRound(r *forceRound) {
	if r.refs.Add(-1) == 0 {
		r.err = nil
		g.pool.Put(r)
	}
}
