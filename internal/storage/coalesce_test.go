package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distlog/internal/telemetry"
)

// TestForceGroupCoalesces drives many concurrent Force calls through a
// gated underlying force and checks single-flight behaviour: far fewer
// underlying rounds than callers, and — the acked ⇒ durable invariant —
// every caller returns only after a round that started after its call.
func TestForceGroupCoalesces(t *testing.T) {
	var inFlight, rounds atomic.Int64
	g := NewForceGroup(func() error {
		if inFlight.Add(1) != 1 {
			t.Error("two underlying forces in flight")
		}
		rounds.Add(1)
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	reg := telemetry.NewRegistry()
	g.Rounds = reg.Counter("rounds")
	g.Coalesced = reg.Counter("coalesced")

	const callers = 32
	var wg sync.WaitGroup
	type obs struct{ before, after int64 }
	results := make([]obs, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			before := rounds.Load()
			if err := g.Force(); err != nil {
				t.Errorf("Force: %v", err)
			}
			results[i] = obs{before: before, after: rounds.Load()}
		}(i)
	}
	wg.Wait()

	n := rounds.Load()
	if n >= callers {
		t.Fatalf("no coalescing: %d rounds for %d callers", n, callers)
	}
	if n == 0 {
		t.Fatal("no rounds ran")
	}
	// Every caller must have observed at least one round start at or
	// after its call (the round that covered it cannot have started
	// before the caller arrived and still cover its appends; a started
	// count that never advanced would mean the caller rode a stale
	// round).
	for i, r := range results {
		if r.after <= r.before {
			t.Fatalf("caller %d returned without a new round (before=%d after=%d)", i, r.before, r.after)
		}
	}
	if got := g.Rounds.Value(); got != uint64(n) {
		t.Fatalf("Rounds counter = %d, want %d", got, n)
	}
	if got := g.Coalesced.Value(); got == 0 {
		t.Fatal("Coalesced counter stayed 0 despite shared rounds")
	}
}

// TestForceGroupSerialNoOverhead checks the uncontended path: each
// serial call leads its own round immediately.
func TestForceGroupSerialNoOverhead(t *testing.T) {
	var rounds int
	g := NewForceGroup(func() error { rounds++; return nil })
	for i := 0; i < 5; i++ {
		if err := g.Force(); err != nil {
			t.Fatal(err)
		}
	}
	if rounds != 5 {
		t.Fatalf("rounds = %d, want 5 (serial calls must not coalesce)", rounds)
	}
}

// TestForceGroupErrorSharing: every member of a failing round observes
// the round's error; a later round recovers.
func TestForceGroupErrorSharing(t *testing.T) {
	injected := errors.New("fsync failed")
	var fail atomic.Bool
	block := make(chan struct{})
	g := NewForceGroup(func() error {
		<-block
		if fail.Load() {
			return injected
		}
		return nil
	})

	// Feed the gate until the test ends.
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		for {
			select {
			case block <- struct{}{}:
			case <-quit:
				return
			}
		}
	}()

	fail.Store(true)
	const callers = 8
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() { errs <- g.Force() }()
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; !errors.Is(err, injected) {
			t.Fatalf("caller %d: err = %v, want injected", i, err)
		}
	}
	fail.Store(false)
	if err := g.Force(); err != nil {
		t.Fatalf("recovered round: %v", err)
	}
}

// TestForceGroupHandoff: the Handoff hook runs between two coalesced
// rounds — after the in-flight force completes, before the successor
// starts.
func TestForceGroupHandoff(t *testing.T) {
	release := make(chan struct{})
	var rounds atomic.Int64
	g := NewForceGroup(func() error {
		if rounds.Add(1) == 1 {
			<-release
		}
		return nil
	})
	var handoffs atomic.Int64
	var atHandoff int64
	g.Handoff = func() {
		handoffs.Add(1)
		atHandoff = rounds.Load()
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); g.Force() }() // leads round 1
	time.Sleep(5 * time.Millisecond)
	go func() { defer wg.Done(); g.Force() }() // queues as successor leader
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()

	if handoffs.Load() != 1 {
		t.Fatalf("handoffs = %d, want 1", handoffs.Load())
	}
	if atHandoff != 1 {
		t.Fatalf("handoff observed %d completed rounds, want 1 (between the two forces)", atHandoff)
	}
}
