package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"distlog/internal/disk"
	"distlog/internal/nvram"
	"distlog/internal/record"
)

// diskRig owns the devices so a store can be crashed and reopened.
type diskRig struct {
	d  *disk.Disk
	nv *nvram.NVRAM
}

func newDiskRig(t *testing.T, trackSize int) *diskRig {
	t.Helper()
	g := disk.DefaultGeometry()
	g.TrackSize = trackSize
	d, err := disk.New(g)
	if err != nil {
		t.Fatal(err)
	}
	return &diskRig{d: d, nv: nvram.New(4 * trackSize)}
}

func (r *diskRig) open(t *testing.T) *DiskStore {
	t.Helper()
	s, err := NewDiskStore(r.d, r.nv)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// crash simulates a power failure and restart of the server node.
func (r *diskRig) crash(s *DiskStore) {
	s.Close()
	r.nv.Crash()
	r.nv.Restart()
}

func TestDiskStorePowerFailureRecovery(t *testing.T) {
	rig := newDiskRig(t, 512)
	s := rig.open(t)
	const c = record.ClientID(42)
	// Write enough that several tracks are drained and a tail remains
	// staged in NVRAM.
	for i := record.LSN(1); i <= 100; i++ {
		if err := s.Append(c, rec(i, 1, fmt.Sprintf("payload-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Force(); err != nil {
		t.Fatal(err)
	}
	if rig.d.Stats().TrackWrites == 0 {
		t.Fatal("expected some tracks drained")
	}
	rig.crash(s)

	s2 := rig.open(t)
	defer s2.Close()
	for i := record.LSN(1); i <= 100; i++ {
		got, err := s2.Read(c, i)
		if err != nil {
			t.Fatalf("Read(%d) after crash: %v", i, err)
		}
		if string(got.Data) != fmt.Sprintf("payload-%04d", i) {
			t.Fatalf("Read(%d) = %q", i, got.Data)
		}
	}
	ivs := s2.Intervals(c)
	if len(ivs) != 1 || ivs[0] != (record.Interval{Epoch: 1, Low: 1, High: 100}) {
		t.Fatalf("Intervals = %v", ivs)
	}
	// The store continues accepting appends after recovery.
	if err := s2.Append(c, rec(101, 1, "after")); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreTornTrackRecovery(t *testing.T) {
	rig := newDiskRig(t, 512)
	s := rig.open(t)
	const c = record.ClientID(1)
	for i := record.LSN(1); i <= 60; i++ {
		if err := s.Append(c, rec(i, 1, "abcdefghijklmnopqrstuvwxyz")); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the most recently written track: power failed during its
	// write. The NVRAM still stages those bytes because the store only
	// drains after a successful track write... the torn track here is
	// the *next* write: emulate by tearing the last written track AND
	// verifying recovery refuses to lose data it still holds.
	writes := rig.d.Stats().TrackWrites
	if writes < 2 {
		t.Fatalf("need >= 2 track writes, got %d", writes)
	}
	s.Close()
	rig.nv.Crash()
	rig.nv.Restart()
	// Note: tearing a successfully drained track would lose data in any
	// design (the stable copy was destroyed after the buffer released
	// it); the paper's model is that a torn track is one whose write
	// was interrupted, i.e. whose bytes are still in the buffer. We
	// verify that case: re-stage the last track's bytes, tear the
	// track, and recover.
	last := int(writes) - 1
	data, _, err := rig.d.ReadTrack(last)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the pre-drain NVRAM state: the torn track's bytes
	// followed by whatever is staged now.
	tail := rig.nv.Drain(-1)
	if err := rig.nv.Append(data); err != nil {
		t.Fatal(err)
	}
	if err := rig.nv.Append(tail); err != nil {
		t.Fatal(err)
	}
	rig.d.Crash(last)

	s2 := rig.open(t)
	defer s2.Close()
	for i := record.LSN(1); i <= 60; i++ {
		if _, err := s2.Read(c, i); err != nil {
			t.Fatalf("Read(%d) after torn-track recovery: %v", i, err)
		}
	}
	// Appending drains again, healing the torn track.
	for i := record.LSN(61); i <= 120; i++ {
		if err := s2.Append(c, rec(i, 1, "abcdefghijklmnopqrstuvwxyz")); err != nil {
			t.Fatal(err)
		}
	}
	for i := record.LSN(1); i <= 120; i++ {
		if _, err := s2.Read(c, i); err != nil {
			t.Fatalf("Read(%d) after heal: %v", i, err)
		}
	}
}

func TestDiskStoreStagedCopiesWithoutInstallDiscarded(t *testing.T) {
	rig := newDiskRig(t, 512)
	s := rig.open(t)
	const c = record.ClientID(1)
	for i := record.LSN(1); i <= 5; i++ {
		if err := s.Append(c, rec(i, 1, "x")); err != nil {
			t.Fatal(err)
		}
	}
	// Stage copies but crash before InstallCopies: the copies must not
	// appear in the log after recovery (the client recovery procedure
	// is restartable; uninstalled copies are dead).
	if err := s.StageCopy(c, rec(5, 2, "copy")); err != nil {
		t.Fatal(err)
	}
	if err := s.StageCopy(c, notPresent(6, 2)); err != nil {
		t.Fatal(err)
	}
	rig.crash(s)

	s2 := rig.open(t)
	defer s2.Close()
	got, err := s2.Read(c, 5)
	if err != nil || got.Epoch != 1 {
		t.Fatalf("Read(5) = %v, %v; staged copy leaked", got, err)
	}
	if _, err := s2.Read(c, 6); !errors.Is(err, ErrNotStored) {
		t.Fatalf("Read(6): %v; uninstalled marker leaked", err)
	}
	// The new client recovery can restage and install at a higher epoch.
	if err := s2.StageCopy(c, rec(5, 3, "copy2")); err != nil {
		t.Fatal(err)
	}
	if err := s2.StageCopy(c, notPresent(6, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s2.InstallCopies(c, 3); err != nil {
		t.Fatal(err)
	}
	got, err = s2.Read(c, 5)
	if err != nil || got.Epoch != 3 {
		t.Fatalf("Read(5) after reinstall = %v, %v", got, err)
	}
}

func TestDiskStoreInstallSurvivesCrash(t *testing.T) {
	rig := newDiskRig(t, 512)
	s := rig.open(t)
	const c = record.ClientID(1)
	for i := record.LSN(1); i <= 5; i++ {
		if err := s.Append(c, rec(i, 1, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.StageCopy(c, rec(5, 2, "copy")); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallCopies(c, 2); err != nil {
		t.Fatal(err)
	}
	rig.crash(s)

	s2 := rig.open(t)
	defer s2.Close()
	got, err := s2.Read(c, 5)
	if err != nil || got.Epoch != 2 || string(got.Data) != "copy" {
		t.Fatalf("Read(5) = %v, %v", got, err)
	}
}

func TestDiskStoreCheckpointRoundTrip(t *testing.T) {
	rig := newDiskRig(t, 512)
	s := rig.open(t)
	const c = record.ClientID(9)
	for i := record.LSN(1); i <= 10; i++ {
		if err := s.Append(c, rec(i, 1, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := record.LSN(11); i <= 20; i++ {
		if err := s.Append(c, rec(i, 1, "x")); err != nil {
			t.Fatal(err)
		}
	}
	rig.crash(s)
	s2 := rig.open(t)
	defer s2.Close()
	ivs := s2.Intervals(c)
	if len(ivs) != 1 || ivs[0].High != 20 {
		t.Fatalf("Intervals after checkpointed recovery = %v", ivs)
	}
}

func TestDiskStoreNVRAMTooSmall(t *testing.T) {
	g := disk.DefaultGeometry()
	d, err := disk.New(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiskStore(d, nvram.New(g.TrackSize)); err == nil {
		t.Fatal("NVRAM smaller than two tracks accepted")
	}
}

func TestFileStoreRestartRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	const c = record.ClientID(3)
	for i := record.LSN(1); i <= 40; i++ {
		if err := s.Append(c, rec(i, 2, fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Force(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := record.LSN(1); i <= 40; i++ {
		got, err := s2.Read(c, i)
		if err != nil || string(got.Data) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("Read(%d) = %v, %v", i, got, err)
		}
	}
	lsn, epoch := s2.LastKey(c)
	if lsn != 40 || epoch != 2 {
		t.Fatalf("LastKey = %d,%d", lsn, epoch)
	}
}

func TestFileStoreTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	const c = record.ClientID(1)
	for i := record.LSN(1); i <= 10; i++ {
		if err := s.Append(c, rec(i, 1, "solid")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a crash mid-append: append half a frame of garbage.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{kindRecord, 0, 0, 0, 50, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := record.LSN(1); i <= 10; i++ {
		if _, err := s2.Read(c, i); err != nil {
			t.Fatalf("Read(%d): %v", i, err)
		}
	}
	// The torn bytes are gone; new appends land cleanly and survive
	// another reopen.
	if err := s2.Append(c, rec(11, 1, "fresh")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	got, err := s3.Read(c, 11)
	if err != nil || string(got.Data) != "fresh" {
		t.Fatalf("Read(11) = %v, %v", got, err)
	}
}

func TestFileStoreUninstalledCopiesDiscardedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	const c = record.ClientID(1)
	if err := s.Append(c, rec(1, 1, "x")); err != nil {
		t.Fatal(err)
	}
	if err := s.StageCopy(c, rec(1, 2, "copy")); err != nil {
		t.Fatal(err)
	}
	s.Close() // no InstallCopies

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Read(c, 1)
	if err != nil || got.Epoch != 1 {
		t.Fatalf("Read(1) = %v, %v", got, err)
	}
}

func TestDiskStoreManyTracksAndClients(t *testing.T) {
	rig := newDiskRig(t, 1024)
	s := rig.open(t)
	clients := []record.ClientID{1, 2, 3, 4, 5}
	const perClient = 200
	for i := record.LSN(1); i <= perClient; i++ {
		for _, c := range clients {
			if err := s.Append(c, rec(i, 1, fmt.Sprintf("c%d-lsn%d-0123456789", c, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	rig.crash(s)
	s2 := rig.open(t)
	defer s2.Close()
	for _, c := range clients {
		ivs := s2.Intervals(c)
		if len(ivs) != 1 || ivs[0].High != perClient {
			t.Fatalf("client %d intervals = %v", c, ivs)
		}
		for _, i := range []record.LSN{1, perClient / 2, perClient} {
			got, err := s2.Read(c, i)
			if err != nil || string(got.Data) != fmt.Sprintf("c%d-lsn%d-0123456789", c, i) {
				t.Fatalf("Read(c=%d, %d) = %v, %v", c, i, got, err)
			}
		}
	}
}

func BenchmarkDiskStoreAppendForce(b *testing.B) {
	g := disk.DefaultGeometry()
	newStore := func() *DiskStore {
		d, err := disk.New(g)
		if err != nil {
			b.Fatal(err)
		}
		s, err := NewDiskStore(d, nvram.New(4*g.TrackSize))
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	s := newStore()
	defer func() { s.Close() }()
	data := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := record.Record{LSN: record.LSN(i + 1), Epoch: 1, Present: true, Data: data}
		err := s.Append(1, r)
		if errors.Is(err, ErrDiskFull) {
			// Long benchmark runs outlast the modelled platter: swap in
			// a fresh volume and keep appending.
			s.Close()
			s = newStore()
			err = s.Append(1, r)
		}
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Force(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileStoreAppendForce(b *testing.B) {
	s, err := OpenFileStore(filepath.Join(b.TempDir(), "log"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	data := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := record.Record{LSN: record.LSN(i + 1), Epoch: 1, Present: true, Data: data}
		if err := s.Append(1, r); err != nil {
			b.Fatal(err)
		}
		if err := s.Force(); err != nil {
			b.Fatal(err)
		}
	}
}
