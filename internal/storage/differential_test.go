package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"distlog/internal/disk"
	"distlog/internal/nvram"
	"distlog/internal/record"
)

// TestDifferentialBackends drives the memory, simulated-disk, and file
// backends with the same random operation sequence and requires every
// observable — append outcomes, reads, interval lists, last keys — to
// agree exactly. The memory store is simple enough to review by eye;
// agreement transfers that confidence to the device-backed stores.
func TestDifferentialBackends(t *testing.T) {
	for _, seed := range []int64{3, 17, 2026} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			differentialRun(t, seed, 600)
		})
	}
}

func differentialRun(t *testing.T, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))

	g := disk.DefaultGeometry()
	g.TrackSize = 512
	d, err := disk.New(g)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDiskStore(d, nvram.New(4*g.TrackSize))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileStore(filepath.Join(t.TempDir(), "log"))
	if err != nil {
		t.Fatal(err)
	}
	stores := map[string]Store{"mem": NewMemStore(), "disk": ds, "file": fs}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()

	// Per-client generator state so appends are mostly legal with
	// occasional deliberate violations.
	clients := []record.ClientID{1, 2, 3}
	nextLSN := map[record.ClientID]record.LSN{}
	epoch := map[record.ClientID]record.Epoch{}
	maxSeen := map[record.ClientID]record.LSN{}
	for _, c := range clients {
		nextLSN[c] = 1
		epoch[c] = 1
	}

	apply := func(op string, fn func(s Store) (string, error)) {
		t.Helper()
		var wantOut string
		var wantErr error
		first := true
		for _, name := range []string{"mem", "disk", "file"} {
			out, err := fn(stores[name])
			if first {
				wantOut, wantErr, first = out, err, false
				continue
			}
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("%s: %s error mismatch: mem=%v, %s=%v", op, name, wantErr, name, err)
			}
			if out != wantOut {
				t.Fatalf("%s: %s output %q, mem said %q", op, name, out, wantOut)
			}
		}
	}

	for step := 0; step < steps; step++ {
		c := clients[rng.Intn(len(clients))]
		switch r := rng.Float64(); {
		case r < 0.50: // append (sometimes illegal)
			rec := record.Record{
				LSN:     nextLSN[c],
				Epoch:   epoch[c],
				Present: rng.Float64() > 0.05,
				Data:    []byte(fmt.Sprintf("s%d-c%d-%d", seed, c, step)),
			}
			if !rec.Present {
				rec.Data = nil
			}
			switch bad := rng.Float64(); {
			case bad < 0.05 && nextLSN[c] > 2:
				rec.LSN = nextLSN[c] - 2 // regression: must be rejected everywhere
			case bad < 0.10:
				rec.LSN = nextLSN[c] + record.LSN(rng.Intn(3)) + 1 // gap: legal
			}
			apply("append", func(s Store) (string, error) {
				err := s.Append(c, rec)
				return fmt.Sprintf("%v", err == nil), err
			})
			if rec.LSN >= nextLSN[c] {
				nextLSN[c] = rec.LSN + 1
				if rec.LSN > maxSeen[c] {
					maxSeen[c] = rec.LSN
				}
			}
		case r < 0.70: // read a random LSN (stored or not)
			probe := record.LSN(rng.Intn(int(maxSeen[c]) + 3))
			apply("read", func(s Store) (string, error) {
				rec, err := s.Read(c, probe)
				if errors.Is(err, ErrNotStored) {
					return "not-stored", nil
				}
				if err != nil {
					return "", err
				}
				return rec.String() + string(rec.Data), nil
			})
		case r < 0.80: // interval list
			apply("intervals", func(s Store) (string, error) {
				return fmt.Sprintf("%v", s.Intervals(c)), nil
			})
		case r < 0.85: // last key
			apply("lastkey", func(s Store) (string, error) {
				lsn, ep := s.LastKey(c)
				return fmt.Sprintf("%d/%d", lsn, ep), nil
			})
		case r < 0.92: // stage + install a recovery copy at a new epoch
			if maxSeen[c] == 0 {
				continue
			}
			epoch[c]++
			target := maxSeen[c]
			cp := record.Record{LSN: target, Epoch: epoch[c], Present: true, Data: []byte("copied")}
			marker := record.Record{LSN: target + 1, Epoch: epoch[c], Present: false}
			apply("stage+install", func(s Store) (string, error) {
				if err := s.StageCopy(c, cp); err != nil {
					return "", err
				}
				if err := s.StageCopy(c, marker); err != nil {
					return "", err
				}
				return "", s.InstallCopies(c, epoch[c])
			})
			if target+1 > maxSeen[c] {
				maxSeen[c] = target + 1
			}
			if target+1 >= nextLSN[c] {
				nextLSN[c] = target + 2
			}
		case r < 0.97: // force
			apply("force", func(s Store) (string, error) { return "", s.Force() })
		default: // truncate
			if maxSeen[c] < 4 {
				continue
			}
			cut := record.LSN(rng.Intn(int(maxSeen[c]))) + 1
			apply("truncate", func(s Store) (string, error) { return "", s.Truncate(c, cut) })
		}
	}

	// Final full sweep: every LSN of every client agrees across
	// backends.
	for _, c := range clients {
		for lsn := record.LSN(1); lsn <= maxSeen[c]+1; lsn++ {
			lsn := lsn
			apply("sweep", func(s Store) (string, error) {
				rec, err := s.Read(c, lsn)
				if errors.Is(err, ErrNotStored) {
					return "not-stored", nil
				}
				if err != nil {
					return "", err
				}
				return rec.String() + string(rec.Data), nil
			})
		}
	}
}
