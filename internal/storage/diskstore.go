package storage

import (
	"errors"
	"fmt"
	"sync"

	"distlog/internal/disk"
	"distlog/internal/faultpoint"
	"distlog/internal/nvram"
	"distlog/internal/record"
)

// DiskStore is the log server storage design of Sections 4.1 and 4.3:
// records from all clients are interleaved into one append-only stream
// staged in battery-backed NVRAM and drained to the disk a full track
// at a time. A log force therefore completes at memory speed, the disk
// is written strictly sequentially (no seeks), and everything appended
// survives a power failure: committed tracks are on the platter and
// the open tail is in the NVRAM.
//
// Interval lists and the per-client append-forest indexes are
// volatile; after a crash NewDiskStore rebuilds them by scanning the
// stream (the paper checkpoints interval lists to bound this scan; we
// write the same checkpoint entries and always replay the full stream,
// which at simulation scale is cheap).
type DiskStore struct {
	mu sync.Mutex

	d  *disk.Disk
	nv *nvram.NVRAM

	trackSize int
	nextTrack int   // first track not yet durably written
	streamLen int64 // absolute offset of the next appended byte

	clients map[record.ClientID]*clientIndex
	stage   *stage
	closed  bool

	scratch []byte // reusable encode buffer
}

// ErrDiskFull is returned when the stream has consumed every track.
var ErrDiskFull = errors.New("storage: log disk is full")

// ErrEntryTooLarge is returned when one framed entry exceeds the NVRAM
// staging capacity.
var ErrEntryTooLarge = errors.New("storage: entry exceeds NVRAM staging capacity")

// NewDiskStore opens a store over the given devices, recovering any
// existing stream: it reads tracks sequentially until the first
// unwritten (or torn) track, appends the NVRAM's surviving staged
// bytes, and replays the combined stream to rebuild the volatile
// indexes. The NVRAM staging buffer must hold at least two tracks.
func NewDiskStore(d *disk.Disk, nv *nvram.NVRAM) (*DiskStore, error) {
	ts := d.Geometry().TrackSize
	if nv.Size() < 2*ts {
		return nil, fmt.Errorf("storage: NVRAM of %d bytes cannot stage two %d-byte tracks", nv.Size(), ts)
	}
	s := &DiskStore{d: d, nv: nv, trackSize: ts}

	// Gather the durable prefix.
	var stream []byte
	for t := 0; t < d.Geometry().NumTracks(); t++ {
		data, _, err := d.ReadTrack(t)
		if errors.Is(err, disk.ErrTornWrite) {
			// The write of this track was interrupted by the power
			// failure; its contents are still staged in NVRAM (the
			// store drains only after a successful track write), so
			// recovery resumes from here.
			break
		}
		if err != nil {
			return nil, err
		}
		if data == nil {
			break
		}
		s.nextTrack++
		stream = append(stream, data...)
	}
	stream = append(stream, nv.Staged()...)

	rs := newReplayState()
	off := int64(0)
	for off < int64(len(stream)) {
		e, n, err := decodeFrame(stream[off:])
		if err != nil {
			return nil, fmt.Errorf("storage: replay at offset %d: %w", off, err)
		}
		if n == 0 {
			break
		}
		if err := rs.apply(e, off); err != nil {
			return nil, fmt.Errorf("storage: replay at offset %d: %w", off, err)
		}
		off += int64(n)
	}
	s.streamLen = off
	s.clients = rs.clients
	s.stage = rs.stage
	return s, nil
}

// appendEntry stages one framed entry and drains full tracks, all
// under s.mu. It returns the entry's absolute offset.
func (s *DiskStore) appendEntry(entry []byte) (int64, error) {
	if len(entry) > s.nv.Size() {
		return 0, fmt.Errorf("%w: %d > %d", ErrEntryTooLarge, len(entry), s.nv.Size())
	}
	for s.nv.Len()+len(entry) > s.nv.Size() {
		if err := s.drainTrack(); err != nil {
			return 0, err
		}
	}
	loc := s.streamLen
	if err := s.nv.Append(entry); err != nil {
		return 0, err
	}
	s.streamLen += int64(len(entry))
	// Drain eagerly so reads mostly hit the disk path and the buffer
	// stays shallow.
	for s.nv.Len() >= s.trackSize {
		if err := s.drainTrack(); err != nil {
			return 0, err
		}
	}
	return loc, nil
}

// drainTrack writes the oldest full track of staged bytes to the disk.
// The bytes are removed from the NVRAM only after the track write
// succeeds, so a power failure that tears the in-flight track loses
// nothing.
func (s *DiskStore) drainTrack() error {
	if s.nv.Len() < s.trackSize {
		return nil
	}
	if s.nextTrack >= s.d.Geometry().NumTracks() {
		return ErrDiskFull
	}
	staged := s.nv.Staged()
	if _, err := s.d.WriteTrack(s.nextTrack, staged[:s.trackSize]); err != nil {
		return err
	}
	s.nv.Drain(s.trackSize)
	s.nextTrack++
	return nil
}

func (s *DiskStore) client(c record.ClientID) *clientIndex {
	ci := s.clients[c]
	if ci == nil {
		ci = newClientIndex()
		s.clients[c] = ci
	}
	return ci
}

// Append implements Store.
func (s *DiskStore) Append(c record.ClientID, rec record.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	ci := s.client(c)
	if err := record.ValidateAppend(ci.lastLSN, ci.lastEpoch, rec); err != nil {
		return err
	}
	s.scratch = encodeRecordEntry(s.scratch[:0], kindRecord, c, rec)
	loc, err := s.appendEntry(s.scratch)
	if err != nil {
		return err
	}
	ci.index(rec, loc)
	return nil
}

// Force implements Store. The NVRAM staging buffer is non-volatile, so
// appended data is already stable; Force is a memory-speed no-op —
// exactly the property the paper's buffer exists to provide.
func (s *DiskStore) Force() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	faultpoint.Hit(FPForce)
	return nil
}

// Read implements Store.
func (s *DiskStore) Read(c record.ClientID, lsn record.LSN) (record.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return record.Record{}, ErrClosed
	}
	ci := s.clients[c]
	if ci == nil {
		return record.Record{}, ErrNotStored
	}
	ref, ok := ci.lookup(lsn)
	if !ok {
		return record.Record{}, ErrNotStored
	}
	e, err := s.fetchEntry(ref.loc)
	if err != nil {
		return record.Record{}, err
	}
	return e.rec, nil
}

// fetchEntry decodes the stream entry at the absolute offset.
func (s *DiskStore) fetchEntry(loc int64) (streamEntry, error) {
	header, err := s.fetch(loc, frameOverhead)
	if err != nil {
		return streamEntry{}, err
	}
	plen := int(uint32(header[1])<<24 | uint32(header[2])<<16 | uint32(header[3])<<8 | uint32(header[4]))
	frame, err := s.fetch(loc, frameOverhead+plen)
	if err != nil {
		return streamEntry{}, err
	}
	e, _, err := decodeFrame(frame)
	return e, err
}

// fetch gathers n stream bytes starting at absolute offset loc from
// the durable tracks and, for the tail, the NVRAM staging buffer.
func (s *DiskStore) fetch(loc int64, n int) ([]byte, error) {
	if loc+int64(n) > s.streamLen {
		return nil, fmt.Errorf("storage: fetch [%d,%d) beyond stream end %d", loc, loc+int64(n), s.streamLen)
	}
	out := make([]byte, 0, n)
	diskEnd := int64(s.nextTrack) * int64(s.trackSize)
	for int64(len(out)) < int64(n) {
		pos := loc + int64(len(out))
		if pos < diskEnd {
			track := int(pos / int64(s.trackSize))
			within := int(pos % int64(s.trackSize))
			data, _, err := s.d.ReadTrack(track)
			if err != nil {
				return nil, err
			}
			take := len(data) - within
			if rem := n - len(out); take > rem {
				take = rem
			}
			out = append(out, data[within:within+take]...)
			continue
		}
		staged := s.nv.Staged()
		within := int(pos - diskEnd)
		take := n - len(out)
		if within+take > len(staged) {
			return nil, fmt.Errorf("storage: fetch tail [%d,%d) beyond staged %d", within, within+take, len(staged))
		}
		out = append(out, staged[within:within+take]...)
	}
	return out, nil
}

// Intervals implements Store.
func (s *DiskStore) Intervals(c record.ClientID) []record.Interval {
	s.mu.Lock()
	defer s.mu.Unlock()
	ci := s.clients[c]
	if ci == nil {
		return nil
	}
	out := make([]record.Interval, len(ci.intervals))
	copy(out, ci.intervals)
	return out
}

// LastKey implements Store.
func (s *DiskStore) LastKey(c record.ClientID) (record.LSN, record.Epoch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ci := s.clients[c]
	if ci == nil {
		return 0, 0
	}
	return ci.lastLSN, ci.lastEpoch
}

// Clients implements Store.
func (s *DiskStore) Clients() []record.ClientID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedClients(s.clients)
}

// StageCopy implements Store. The staged record is written to the
// stream immediately (durably), but becomes part of the client's log
// only when the InstallCopies commit marker follows it.
func (s *DiskStore) StageCopy(c record.ClientID, rec record.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.scratch = encodeRecordEntry(s.scratch[:0], kindStagedCopy, c, rec)
	loc, err := s.appendEntry(s.scratch)
	if err != nil {
		return err
	}
	return s.stage.add(c, rec, loc)
}

// InstallCopies implements Store. Writing the single commit marker is
// what makes the installation atomic: replay after a crash installs
// the staged records if and only if the marker made it to stable
// storage.
func (s *DiskStore) InstallCopies(c record.ClientID, epoch record.Epoch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	staged := s.stage.take(c, epoch)
	if len(staged) == 0 {
		return ErrNoStagedCopies
	}
	s.scratch = encodeInstallEntry(s.scratch[:0], c, epoch)
	if _, err := s.appendEntry(s.scratch); err != nil {
		return err
	}
	ci := s.client(c)
	for _, sr := range staged {
		if err := faultpoint.HitErr(FPInstallPartial); err != nil {
			return err
		}
		if err := ci.addInstalled(sr.rec, sr.loc); err != nil {
			return err
		}
	}
	return nil
}

// Truncate implements Store. The truncation point is itself written to
// the stream so it survives power failures. Disk space is not
// physically reclaimed (the stream is append-only by design); freeing
// tracks is the province of spooling to offline storage, which the
// daemon deployment performs with FileStore.Compact.
func (s *DiskStore) Truncate(c record.ClientID, before record.LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	ci := s.clients[c]
	if ci == nil {
		return ErrNotStored
	}
	s.scratch = encodeTruncateEntry(s.scratch[:0], c, before)
	if _, err := s.appendEntry(s.scratch); err != nil {
		return err
	}
	ci.truncate(before)
	return nil
}

// Checkpoint writes the interval lists of every client into the stream
// (Section 4.3: "interval lists are checkpointed to non-volatile
// storage periodically ... to a known location on a reusable disk or
// to a write once disk along with the log data stream"; we use the
// in-stream form).
func (s *DiskStore) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	lists := make(map[record.ClientID][]record.Interval, len(s.clients))
	for c, ci := range s.clients {
		ivs := make([]record.Interval, len(ci.intervals))
		copy(ivs, ci.intervals)
		lists[c] = ivs
	}
	s.scratch = encodeCheckpointEntry(s.scratch[:0], lists)
	_, err := s.appendEntry(s.scratch)
	return err
}

// StreamLen returns the total stream length in bytes (durable +
// staged).
func (s *DiskStore) StreamLen() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streamLen
}

// Close implements Store. The devices are left as-is (they belong to
// the caller, which may restart a store over them).
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
