package storage

import "distlog/internal/faultpoint"

// Fault points of the storage layer, shared by all backends.
const (
	// FPForce is hit by every Store.Force before it makes appended
	// records stable.
	FPForce = "storage.force"
	// FPInstallPartial is hit (via HitErr) once per staged record as
	// InstallCopies applies the batch; arming it with an error tears
	// the install inside one server — some copies indexed, the rest
	// abandoned — which the next client recovery must converge over.
	FPInstallPartial = "storage.install.partial"

	// FPSegmentSeal is hit by the segmented store just after the active
	// segment was synced and sealed but before the next segment accepts
	// the append that overflowed it — a crash here leaves a full sealed
	// segment and nothing after it.
	FPSegmentSeal = "retention.segment.seal"
	// FPArchivePublish is hit (via HitErr) by segment compaction after
	// the live records of the victim segment were written and synced to
	// the archive tier but before the manifest advances the replay
	// boundary — a crash here leaves the records in both tiers, and the
	// retried compaction must re-archive idempotently.
	FPArchivePublish = "retention.archive.publish"
	// FPSegmentDelete is hit (via HitErr) by segment compaction after
	// the manifest advanced past the victim segment but before its file
	// was removed — a crash here leaves a stray segment below the
	// boundary that the next open (or compaction pass) must discard
	// without replaying it.
	FPSegmentDelete = "retention.segment.delete"
)

var _ = faultpoint.Register(FPForce, FPInstallPartial,
	FPSegmentSeal, FPArchivePublish, FPSegmentDelete)
