package storage

import "distlog/internal/faultpoint"

// Fault points of the storage layer, shared by all backends.
const (
	// FPForce is hit by every Store.Force before it makes appended
	// records stable.
	FPForce = "storage.force"
	// FPInstallPartial is hit (via HitErr) once per staged record as
	// InstallCopies applies the batch; arming it with an error tears
	// the install inside one server — some copies indexed, the rest
	// abandoned — which the next client recovery must converge over.
	FPInstallPartial = "storage.install.partial"
)

var _ = faultpoint.Register(FPForce, FPInstallPartial)
