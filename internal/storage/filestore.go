package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"distlog/internal/faultpoint"
	"distlog/internal/record"
)

// FileStore appends the interleaved log stream to an ordinary file.
// Force is fsync. It is the backend used by the standalone log server
// daemon, where real durability (rather than a modelled device) is
// wanted. On open, the file is scanned to rebuild the volatile
// indexes; a torn frame at the tail (from a crash mid-write) is
// truncated away, which is safe because a frame is made stable — and
// therefore acknowledged — only by a completed Force.
type FileStore struct {
	mu sync.Mutex

	f         *os.File
	streamLen int64 // durable+buffered length; file offset of next append
	dirty     bool
	appendGen uint64 // bumped per appendEntry; Force clears dirty only if unchanged

	clients map[record.ClientID]*clientIndex
	stage   *stage
	closed  bool

	scratch []byte
}

// OpenFileStore opens (creating if needed) the store file at path and
// replays its contents.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &FileStore{f: f}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *FileStore) recover() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return err
	}
	rs := newReplayState()
	off := int64(0)
	for off < int64(len(data)) {
		e, n, err := decodeFrame(data[off:])
		if err != nil || n == 0 {
			// Torn tail from a crash mid-append: drop it. Everything
			// before it decoded cleanly and anything after it was
			// never acknowledged.
			break
		}
		if err := rs.apply(e, off); err != nil {
			return fmt.Errorf("storage: file replay at offset %d: %w", off, err)
		}
		off += int64(n)
	}
	if off < int64(len(data)) {
		if err := s.f.Truncate(off); err != nil {
			return err
		}
	}
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	s.streamLen = off
	s.clients = rs.clients
	s.stage = rs.stage
	return nil
}

func (s *FileStore) appendEntry(entry []byte) (int64, error) {
	loc := s.streamLen
	if _, err := s.f.WriteAt(entry, loc); err != nil {
		return 0, err
	}
	s.streamLen += int64(len(entry))
	s.dirty = true
	s.appendGen++
	return loc, nil
}

func (s *FileStore) client(c record.ClientID) *clientIndex {
	ci := s.clients[c]
	if ci == nil {
		ci = newClientIndex()
		s.clients[c] = ci
	}
	return ci
}

// Append implements Store.
func (s *FileStore) Append(c record.ClientID, rec record.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	ci := s.client(c)
	if err := record.ValidateAppend(ci.lastLSN, ci.lastEpoch, rec); err != nil {
		return err
	}
	s.scratch = encodeRecordEntry(s.scratch[:0], kindRecord, c, rec)
	loc, err := s.appendEntry(s.scratch)
	if err != nil {
		return err
	}
	ci.index(rec, loc)
	return nil
}

// Force implements Store: fsync. The mutex is released for the fsync
// itself — appends go straight to the OS in appendEntry, so everything
// appended before this call is covered, and holding the lock across
// the device wait would stall concurrent appenders for the whole fsync
// (defeating server-side force coalescing, whose joiners must be able
// to append and reach the force group while a round is in flight).
// Appends racing the fsync may or may not be covered; the generation
// check leaves the store dirty for them, so their own Force still
// syncs.
func (s *FileStore) Force() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	faultpoint.Hit(FPForce)
	if !s.dirty {
		s.mu.Unlock()
		return nil
	}
	gen := s.appendGen
	f := s.f
	s.mu.Unlock()
	err := f.Sync()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if s.closed {
			return ErrClosed // Close raced the fsync; it synced on the way out
		}
		return err
	}
	if s.appendGen == gen && s.f == f {
		s.dirty = false
	}
	return nil
}

// Read implements Store.
func (s *FileStore) Read(c record.ClientID, lsn record.LSN) (record.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return record.Record{}, ErrClosed
	}
	ci := s.clients[c]
	if ci == nil {
		return record.Record{}, ErrNotStored
	}
	ref, ok := ci.lookup(lsn)
	if !ok {
		return record.Record{}, ErrNotStored
	}
	e, err := s.fetchEntry(ref.loc)
	if err != nil {
		return record.Record{}, err
	}
	return e.rec, nil
}

func (s *FileStore) fetchEntry(loc int64) (streamEntry, error) {
	var header [frameOverhead]byte
	if _, err := s.f.ReadAt(header[:], loc); err != nil {
		return streamEntry{}, err
	}
	plen := int(binary.BigEndian.Uint32(header[1:5]))
	frame := make([]byte, frameOverhead+plen)
	if _, err := s.f.ReadAt(frame, loc); err != nil {
		return streamEntry{}, err
	}
	e, _, err := decodeFrame(frame)
	return e, err
}

// Intervals implements Store.
func (s *FileStore) Intervals(c record.ClientID) []record.Interval {
	s.mu.Lock()
	defer s.mu.Unlock()
	ci := s.clients[c]
	if ci == nil {
		return nil
	}
	out := make([]record.Interval, len(ci.intervals))
	copy(out, ci.intervals)
	return out
}

// LastKey implements Store.
func (s *FileStore) LastKey(c record.ClientID) (record.LSN, record.Epoch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ci := s.clients[c]
	if ci == nil {
		return 0, 0
	}
	return ci.lastLSN, ci.lastEpoch
}

// Clients implements Store.
func (s *FileStore) Clients() []record.ClientID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedClients(s.clients)
}

// StageCopy implements Store.
func (s *FileStore) StageCopy(c record.ClientID, rec record.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.scratch = encodeRecordEntry(s.scratch[:0], kindStagedCopy, c, rec)
	loc, err := s.appendEntry(s.scratch)
	if err != nil {
		return err
	}
	return s.stage.add(c, rec, loc)
}

// InstallCopies implements Store. The commit marker is forced before
// the install is acknowledged, making the installation atomic across
// crashes.
func (s *FileStore) InstallCopies(c record.ClientID, epoch record.Epoch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	staged := s.stage.take(c, epoch)
	if len(staged) == 0 {
		return ErrNoStagedCopies
	}
	s.scratch = encodeInstallEntry(s.scratch[:0], c, epoch)
	if _, err := s.appendEntry(s.scratch); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.dirty = false
	ci := s.client(c)
	for _, sr := range staged {
		if err := faultpoint.HitErr(FPInstallPartial); err != nil {
			return err
		}
		if err := ci.addInstalled(sr.rec, sr.loc); err != nil {
			return err
		}
	}
	return nil
}

// Truncate implements Store. The truncation point is appended to the
// stream (durably, once forced); Compact reclaims the file space.
func (s *FileStore) Truncate(c record.ClientID, before record.LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	ci := s.clients[c]
	if ci == nil {
		return ErrNotStored
	}
	s.scratch = encodeTruncateEntry(s.scratch[:0], c, before)
	if _, err := s.appendEntry(s.scratch); err != nil {
		return err
	}
	ci.truncate(before)
	return nil
}

// Compact rewrites the store file without entries that truncation made
// dead, reclaiming the space (the Section 5.3 "spool the old log away"
// function; here the old prefix is simply dropped — callers wanting an
// archive copy the file first). The store stays open and usable.
func (s *FileStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Read the live stream and keep: records at or above their client's
	// truncation point, staged copies and install markers likewise, the
	// latest truncation point per client, and nothing else (checkpoints
	// are regenerated).
	data := make([]byte, s.streamLen)
	if _, err := s.f.ReadAt(data, 0); err != nil {
		return err
	}
	floor := make(map[record.ClientID]record.LSN, len(s.clients))
	for c, ci := range s.clients {
		floor[c] = ci.truncated
	}
	var out []byte
	off := int64(0)
	for off < int64(len(data)) {
		e, n, err := decodeFrame(data[off:])
		if err != nil || n == 0 {
			break
		}
		keep := false
		switch e.kind {
		case kindRecord, kindStagedCopy:
			keep = e.rec.LSN >= floor[e.client]
		case kindInstall:
			keep = true
		}
		if keep {
			out = append(out, data[off:off+int64(n)]...)
		}
		off += int64(n)
	}
	// Re-assert the truncation points after the surviving records so
	// replay clips exactly as the live index does.
	for c, before := range floor {
		if before > 0 {
			out = encodeTruncateEntry(out, c, before)
		}
	}
	// Write the compacted stream beside the live file and swap.
	tmpPath := s.f.Name() + ".compact"
	if err := os.WriteFile(tmpPath, out, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, s.f.Name()); err != nil {
		os.Remove(tmpPath)
		return err
	}
	f, err := os.OpenFile(s.f.Name(), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	s.f.Close()
	s.f = f
	s.dirty = true
	return s.reindex()
}

// reindex rebuilds the volatile indexes from the (already open) file.
// Caller holds s.mu.
func (s *FileStore) reindex() error {
	data, err := io.ReadAll(io.NewSectionReader(s.f, 0, 1<<62))
	if err != nil {
		return err
	}
	rs := newReplayState()
	off := int64(0)
	for off < int64(len(data)) {
		e, n, err := decodeFrame(data[off:])
		if err != nil || n == 0 {
			break
		}
		if err := rs.apply(e, off); err != nil {
			return err
		}
		off += int64(n)
	}
	s.streamLen = off
	s.clients = rs.clients
	s.stage = rs.stage
	return nil
}

// Checkpoint writes the interval lists of every client into the
// stream.
func (s *FileStore) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	lists := make(map[record.ClientID][]record.Interval, len(s.clients))
	for c, ci := range s.clients {
		ivs := make([]record.Interval, len(ci.intervals))
		copy(ivs, ci.intervals)
		lists[c] = ivs
	}
	s.scratch = encodeCheckpointEntry(s.scratch[:0], lists)
	_, err := s.appendEntry(s.scratch)
	return err
}

// Close implements Store, syncing and closing the file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var errs []error
	if err := s.f.Sync(); err != nil {
		errs = append(errs, err)
	}
	if err := s.f.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
