package storage

import (
	"time"

	"distlog/internal/record"
	"distlog/internal/telemetry"
)

// instrumentedStore wraps a Store and counts its activity in a
// telemetry registry. The Store interface is untouched: servers (and
// anything else holding a Store) wrap at construction time with
// Instrument and remain oblivious.
type instrumentedStore struct {
	Store

	appends       *telemetry.Counter
	bytesAppended *telemetry.Counter
	forces        *telemetry.Counter
	truncates     *telemetry.Counter
	forceLatency  *telemetry.Histogram
}

// Instrument wraps store so its appends, forces, and truncations are
// counted under "storage.<backend>." metric families (e.g. backend
// "file" yields storage.file.forces). A nil registry returns the store
// unwrapped.
func Instrument(store Store, reg *telemetry.Registry, backend string) Store {
	if reg == nil {
		return store
	}
	prefix := "storage." + backend + "."
	return &instrumentedStore{
		Store:         store,
		appends:       reg.Counter(prefix + "appends"),
		bytesAppended: reg.Counter(prefix + "bytes_appended"),
		forces:        reg.Counter(prefix + "forces"),
		truncates:     reg.Counter(prefix + "truncates"),
		forceLatency:  reg.Histogram(prefix + "force_latency_ns"),
	}
}

func (s *instrumentedStore) Append(c record.ClientID, rec record.Record) error {
	err := s.Store.Append(c, rec)
	if err == nil {
		s.appends.Add(1)
		s.bytesAppended.Add(uint64(len(rec.Data)))
	}
	return err
}

func (s *instrumentedStore) Force() error {
	start := time.Now()
	err := s.Store.Force()
	if err == nil {
		s.forces.Add(1)
		s.forceLatency.Observe(uint64(time.Since(start)))
	}
	return err
}

func (s *instrumentedStore) Truncate(c record.ClientID, before record.LSN) error {
	err := s.Store.Truncate(c, before)
	if err == nil {
		s.truncates.Add(1)
	}
	return err
}
