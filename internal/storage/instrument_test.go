package storage

import (
	"testing"

	"distlog/internal/record"
	"distlog/internal/telemetry"
)

func TestInstrumentCounts(t *testing.T) {
	reg := telemetry.NewRegistry()
	store := Instrument(NewMemStore(), reg, "mem")

	for lsn := record.LSN(1); lsn <= 3; lsn++ {
		rec := record.Record{LSN: lsn, Epoch: 1, Present: true, Data: []byte("abcd")}
		if err := store.Append(7, rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := store.Force(); err != nil {
		t.Fatalf("force: %v", err)
	}
	if err := store.Truncate(7, 2); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	// A failed append must not count.
	dup := record.Record{LSN: 1, Epoch: 1, Present: true, Data: []byte("x")}
	if err := store.Append(7, dup); err == nil {
		t.Fatalf("duplicate append succeeded")
	}

	snap := reg.Snapshot()
	if got := snap.Counters["storage.mem.appends"]; got != 3 {
		t.Fatalf("appends = %d, want 3", got)
	}
	if got := snap.Counters["storage.mem.bytes_appended"]; got != 12 {
		t.Fatalf("bytes_appended = %d, want 12", got)
	}
	if got := snap.Counters["storage.mem.forces"]; got != 1 {
		t.Fatalf("forces = %d, want 1", got)
	}
	if got := snap.Counters["storage.mem.truncates"]; got != 1 {
		t.Fatalf("truncates = %d, want 1", got)
	}
	if h := snap.Histograms["storage.mem.force_latency_ns"]; h.Count != 1 {
		t.Fatalf("force latency count = %d, want 1", h.Count)
	}

	// The wrapped store still behaves as a Store.
	rec, err := store.Read(7, 3)
	if err != nil || rec.LSN != 3 {
		t.Fatalf("read through wrapper: %v %+v", err, rec)
	}
	if Instrument(NewMemStore(), nil, "mem") == nil {
		t.Fatalf("nil registry must return the store unwrapped")
	}
}
