package storage

import (
	"sync"

	"distlog/internal/faultpoint"
	"distlog/internal/record"
)

// MemStore keeps all log data in memory. It provides no durability —
// it models the paper's second-stage prototype, which stored log data
// in the server's virtual memory — and is the backend of choice for
// protocol tests and benchmarks that want to exclude device effects.
type MemStore struct {
	mu      sync.Mutex
	clients map[record.ClientID]*clientIndex
	records map[record.ClientID][]record.Record
	stage   *stage
	closed  bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		clients: make(map[record.ClientID]*clientIndex),
		records: make(map[record.ClientID][]record.Record),
		stage:   newStage(),
	}
}

func (m *MemStore) client(c record.ClientID) *clientIndex {
	ci := m.clients[c]
	if ci == nil {
		ci = newClientIndex()
		m.clients[c] = ci
	}
	return ci
}

// Append implements Store.
func (m *MemStore) Append(c record.ClientID, rec record.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	ci := m.client(c)
	loc := int64(len(m.records[c]))
	if err := ci.addNormal(rec, loc); err != nil {
		return err
	}
	m.records[c] = append(m.records[c], rec.Clone())
	return nil
}

// Force implements Store. Memory is already "stable" for this backend.
func (m *MemStore) Force() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	faultpoint.Hit(FPForce)
	return nil
}

// Read implements Store.
func (m *MemStore) Read(c record.ClientID, lsn record.LSN) (record.Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return record.Record{}, ErrClosed
	}
	ci := m.clients[c]
	if ci == nil {
		return record.Record{}, ErrNotStored
	}
	ref, ok := ci.lookup(lsn)
	if !ok {
		return record.Record{}, ErrNotStored
	}
	return m.records[c][ref.loc].Clone(), nil
}

// Intervals implements Store.
func (m *MemStore) Intervals(c record.ClientID) []record.Interval {
	m.mu.Lock()
	defer m.mu.Unlock()
	ci := m.clients[c]
	if ci == nil {
		return nil
	}
	out := make([]record.Interval, len(ci.intervals))
	copy(out, ci.intervals)
	return out
}

// LastKey implements Store.
func (m *MemStore) LastKey(c record.ClientID) (record.LSN, record.Epoch) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ci := m.clients[c]
	if ci == nil {
		return 0, 0
	}
	return ci.lastLSN, ci.lastEpoch
}

// Clients implements Store.
func (m *MemStore) Clients() []record.ClientID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedClients(m.clients)
}

// StageCopy implements Store.
func (m *MemStore) StageCopy(c record.ClientID, rec record.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return m.stage.add(c, rec, -1)
}

// InstallCopies implements Store.
func (m *MemStore) InstallCopies(c record.ClientID, epoch record.Epoch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	staged := m.stage.take(c, epoch)
	if len(staged) == 0 {
		return ErrNoStagedCopies
	}
	ci := m.client(c)
	for _, sr := range staged {
		if err := faultpoint.HitErr(FPInstallPartial); err != nil {
			return err
		}
		loc := int64(len(m.records[c]))
		if err := ci.addInstalled(sr.rec, loc); err != nil {
			return err
		}
		m.records[c] = append(m.records[c], sr.rec)
	}
	return nil
}

// Truncate implements Store. The memory store also frees the
// truncated records' storage.
func (m *MemStore) Truncate(c record.ClientID, before record.LSN) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	ci := m.clients[c]
	if ci == nil {
		return ErrNotStored
	}
	ci.truncate(before)
	// Release the record data (keep slots so locs stay valid).
	for i := range m.records[c] {
		if m.records[c][i].LSN < ci.truncated {
			m.records[c][i].Data = nil
		}
	}
	return nil
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
