package storage

import (
	"fmt"

	"distlog/internal/record"
)

// replayState rebuilds the volatile per-client indexes, the CopyLog
// staging areas, and the last checkpoint by scanning the stream after
// a restart.
type replayState struct {
	clients  map[record.ClientID]*clientIndex
	stage    *stage
	lastCkpt map[record.ClientID][]record.Interval
}

func newReplayState() *replayState {
	return &replayState{
		clients: make(map[record.ClientID]*clientIndex),
		stage:   newStage(),
	}
}

func (rs *replayState) client(c record.ClientID) *clientIndex {
	ci := rs.clients[c]
	if ci == nil {
		ci = newClientIndex()
		rs.clients[c] = ci
	}
	return ci
}

// apply replays one stream entry found at the given absolute offset.
func (rs *replayState) apply(e streamEntry, loc int64) error {
	switch e.kind {
	case kindRecord:
		return rs.client(e.client).addNormal(e.rec, loc)
	case kindStagedCopy:
		return rs.stage.add(e.client, e.rec, loc)
	case kindInstall:
		staged := rs.stage.take(e.client, e.epoch)
		if len(staged) == 0 {
			// The stage was consumed by an earlier marker (a retried
			// InstallCopies); the commit is idempotent.
			return nil
		}
		ci := rs.client(e.client)
		for _, sr := range staged {
			if err := ci.addInstalled(sr.rec, sr.loc); err != nil {
				return err
			}
		}
		return nil
	case kindTruncate:
		rs.client(e.client).truncate(e.before)
		return nil
	case kindCheckpoint:
		rs.lastCkpt = e.ckpt
		return nil
	case kindPad:
		return nil
	default:
		return fmt.Errorf("%w: unknown entry kind 0x%02x during replay", ErrBadFrame, e.kind)
	}
}
