package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"distlog/internal/faultpoint"
	"distlog/internal/record"
)

// SegStore is the log server's long-running durable backend (Section
// 5.3, log space management): the same interleaved stream FileStore
// appends to one file is cut into fixed-capacity segment files, so
// space can be returned to the filesystem a whole segment at a time.
// When an append would overflow the active segment, the segment is
// synced, sealed, and a new one opened; sealed segments are immutable.
//
// Reclamation works on the oldest sealed segment: records still live
// (at or above their client's truncation point) are migrated into the
// write-once ArchiveTier, the segment's effects are folded into a
// durable manifest that seeds replay (so recovery never needs the
// deleted bytes), and the segment file is deleted. The manifest plus
// the surviving segments always replay to exactly the state the full
// stream would have produced. Reads transparently span the tiers: the
// volatile index resolves an LSN to a byte offset, and offsets below
// the fold boundary are served from the archive.
type SegStore struct {
	mu sync.Mutex
	// compactMu serializes CompactOnce passes. It is never taken by the
	// foreground paths, so compaction's fsyncs (archive, manifest)
	// cannot stall an append or force.
	compactMu sync.Mutex

	dir  string
	opts SegOptions

	segs     []*segment // base-ascending; the last is the active tail
	boundary int64      // stream offset below which segments were folded away

	// baseMeta is the replay state at the boundary: what the manifest
	// serializes, and what folded segments are applied to. It advances
	// only during compaction; the live indexes below are always ahead
	// of (or equal to) it.
	baseMeta *replayState

	clients map[record.ClientID]*clientIndex
	stage   *stage

	dirty     bool
	appendGen uint64 // bumped per append; Force clears dirty only if unchanged
	closed    bool

	scratch []byte
}

// SegOptions configures OpenSegStore.
type SegOptions struct {
	// SegmentBytes is the capacity at which the active segment seals
	// and a fresh one opens. Zero means 64 MiB. A single entry larger
	// than the capacity still fits: it gets a fresh segment to itself.
	SegmentBytes int64
	// Archive, when non-nil, is the write-once cold tier compaction
	// migrates live records into. Without one, CompactOnce can only
	// reclaim segments whose records truncation has made fully dead.
	Archive ArchiveTier
}

func (o *SegOptions) fillDefaults() {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64 << 20
	}
}

// segment is one on-disk piece of the stream. Locations handed to the
// index are absolute stream offsets: base + offset-in-file, so the
// index never changes when segments are reclaimed.
type segment struct {
	base   int64
	size   int64
	f      *os.File
	path   string
	sealed bool
}

func (g *segment) end() int64 { return g.base + g.size }

const segManifestName = "MANIFEST"

func segFileName(base int64) string {
	return fmt.Sprintf("seg-%020d.log", base)
}

func parseSegBase(name string) (int64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	base, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log"), 10, 64)
	if err != nil || base < 0 {
		return 0, false
	}
	return base, true
}

// OpenSegStore opens (creating if needed) a segmented store in dir:
// the manifest is loaded, stray segments below its boundary (left by a
// crash between a manifest advance and the file removal) are deleted,
// and the surviving segments are replayed over the manifest state.
func OpenSegStore(dir string, opts SegOptions) (*SegStore, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man, err := loadManifest(filepath.Join(dir, segManifestName))
	if err != nil {
		return nil, err
	}
	s := &SegStore{dir: dir, opts: opts, boundary: man.boundary, baseMeta: man.seed()}
	live := man.seed()

	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []int64
	for _, de := range names {
		base, ok := parseSegBase(de.Name())
		if !ok {
			continue
		}
		if base < man.boundary {
			// Folded into the manifest before the crash; its bytes must
			// not replay again.
			if err := os.Remove(filepath.Join(dir, de.Name())); err != nil {
				return nil, err
			}
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })

	next := man.boundary
	for i, base := range bases {
		if base != next {
			return nil, fmt.Errorf("storage: segment gap in %s: want base %d, have %d", dir, next, base)
		}
		g, err := s.openSegment(base)
		if err != nil {
			s.closeFiles()
			return nil, err
		}
		last := i == len(bases)-1
		if err := s.replaySegment(live, g, last); err != nil {
			s.closeFiles()
			return nil, err
		}
		g.sealed = !last
		s.segs = append(s.segs, g)
		next = g.end()
	}
	if len(s.segs) == 0 {
		g, err := s.createSegment(man.boundary)
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, g)
	}
	s.clients = live.clients
	s.stage = live.stage
	if s.opts.Archive != nil {
		// Re-assert the replayed truncation floors on the cold tier, so
		// an archive that lost its in-memory floors to the crash clamps
		// reads again before anything is looked up.
		for c, ci := range s.clients {
			if ci.truncated > 0 {
				if err := s.opts.Archive.Truncate(c, ci.truncated); err != nil {
					s.closeFiles()
					return nil, err
				}
			}
		}
	}
	return s, nil
}

func (s *SegStore) openSegment(base int64) (*segment, error) {
	path := filepath.Join(s.dir, segFileName(base))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &segment{base: base, size: info.Size(), f: f, path: path}, nil
}

func (s *SegStore) createSegment(base int64) (*segment, error) {
	path := filepath.Join(s.dir, segFileName(base))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	syncDir(s.dir)
	return &segment{base: base, f: f, path: path}, nil
}

// replaySegment applies one segment's frames to the replay state. Only
// the final (active) segment may carry a torn tail frame — it is
// truncated away, exactly as FileStore recovers. A torn frame in a
// sealed segment is corruption: seals sync before the next segment
// accepts a byte, so a crash can never tear anything but the tail.
func (s *SegStore) replaySegment(rs *replayState, g *segment, last bool) error {
	data := make([]byte, g.size)
	if g.size > 0 {
		if _, err := g.f.ReadAt(data, 0); err != nil {
			return err
		}
	}
	off := int64(0)
	for off < g.size {
		e, n, err := decodeFrame(data[off:])
		if err != nil || n == 0 {
			if !last {
				return fmt.Errorf("storage: corrupt frame in sealed segment %s at %d: %v", g.path, off, err)
			}
			break
		}
		if err := rs.apply(e, g.base+off); err != nil {
			return fmt.Errorf("storage: segment replay %s at %d: %w", g.path, off, err)
		}
		off += int64(n)
	}
	if off < g.size {
		if err := g.f.Truncate(off); err != nil {
			return err
		}
		g.size = off
	}
	return nil
}

func (s *SegStore) closeFiles() {
	for _, g := range s.segs {
		g.f.Close()
	}
}

func (s *SegStore) active() *segment { return s.segs[len(s.segs)-1] }

func (s *SegStore) client(c record.ClientID) *clientIndex {
	ci := s.clients[c]
	if ci == nil {
		ci = newClientIndex()
		s.clients[c] = ci
	}
	return ci
}

// sealActiveLocked syncs and seals the active segment and opens a
// fresh one after it. Caller holds s.mu.
func (s *SegStore) sealActiveLocked() error {
	a := s.active()
	if err := a.f.Sync(); err != nil {
		return err
	}
	a.sealed = true
	faultpoint.Hit(FPSegmentSeal)
	g, err := s.createSegment(a.end())
	if err != nil {
		return err
	}
	s.segs = append(s.segs, g)
	return nil
}

func (s *SegStore) appendEntry(entry []byte) (int64, error) {
	a := s.active()
	if a.size > 0 && a.size+int64(len(entry)) > s.opts.SegmentBytes {
		if err := s.sealActiveLocked(); err != nil {
			return 0, err
		}
		a = s.active()
	}
	loc := a.base + a.size
	if _, err := a.f.WriteAt(entry, a.size); err != nil {
		return 0, err
	}
	a.size += int64(len(entry))
	s.dirty = true
	s.appendGen++
	return loc, nil
}

// Append implements Store.
func (s *SegStore) Append(c record.ClientID, rec record.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	ci := s.client(c)
	if err := record.ValidateAppend(ci.lastLSN, ci.lastEpoch, rec); err != nil {
		return err
	}
	s.scratch = encodeRecordEntry(s.scratch[:0], kindRecord, c, rec)
	loc, err := s.appendEntry(s.scratch)
	if err != nil {
		return err
	}
	ci.index(rec, loc)
	return nil
}

// Force implements Store: fsync the active segment (sealed segments
// were synced when they sealed). The mutex is released for the fsync
// itself, with the same generation guard FileStore uses, so concurrent
// appenders can join a server-side force group while the device waits.
func (s *SegStore) Force() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	faultpoint.Hit(FPForce)
	if !s.dirty {
		s.mu.Unlock()
		return nil
	}
	gen := s.appendGen
	f := s.active().f
	s.mu.Unlock()
	err := f.Sync()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if s.closed {
			return ErrClosed
		}
		return err
	}
	if s.appendGen == gen && s.active().f == f {
		s.dirty = false
	}
	return nil
}

// Read implements Store. Offsets below the fold boundary belong to
// reclaimed segments; their records were migrated to the archive tier
// before the segment was deleted, so the read is served from there.
func (s *SegStore) Read(c record.ClientID, lsn record.LSN) (record.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return record.Record{}, ErrClosed
	}
	ci := s.clients[c]
	if ci == nil {
		return record.Record{}, ErrNotStored
	}
	ref, ok := ci.lookup(lsn)
	if !ok {
		// After a reopen the volatile index only covers the surviving
		// segments; records folded away live in the archive, which is
		// authoritative for anything not truncated.
		if s.opts.Archive != nil && lsn >= ci.truncated {
			rec, found, err := s.opts.Archive.Lookup(c, lsn)
			if err != nil {
				return record.Record{}, err
			}
			if found {
				return rec, nil
			}
		}
		return record.Record{}, ErrNotStored
	}
	if ref.loc < s.boundary {
		return s.readArchived(c, lsn)
	}
	e, err := s.fetchEntry(ref.loc)
	if err != nil {
		return record.Record{}, err
	}
	return e.rec, nil
}

func (s *SegStore) readArchived(c record.ClientID, lsn record.LSN) (record.Record, error) {
	if s.opts.Archive == nil {
		return record.Record{}, fmt.Errorf("storage: LSN %d archived but no archive tier configured", lsn)
	}
	rec, ok, err := s.opts.Archive.Lookup(c, lsn)
	if err != nil {
		return record.Record{}, err
	}
	if !ok {
		return record.Record{}, fmt.Errorf("storage: LSN %d below fold boundary but missing from archive", lsn)
	}
	return rec, nil
}

// fetchEntry reads and decodes the frame at the absolute offset.
// Caller holds s.mu.
func (s *SegStore) fetchEntry(loc int64) (streamEntry, error) {
	i := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].end() > loc })
	if i == len(s.segs) || s.segs[i].base > loc {
		return streamEntry{}, fmt.Errorf("storage: offset %d not in any live segment", loc)
	}
	g := s.segs[i]
	off := loc - g.base
	var header [frameOverhead]byte
	if _, err := g.f.ReadAt(header[:], off); err != nil {
		return streamEntry{}, err
	}
	plen := int(binary.BigEndian.Uint32(header[1:5]))
	frame := make([]byte, frameOverhead+plen)
	if _, err := g.f.ReadAt(frame, off); err != nil {
		return streamEntry{}, err
	}
	e, _, err := decodeFrame(frame)
	return e, err
}

// Intervals implements Store.
func (s *SegStore) Intervals(c record.ClientID) []record.Interval {
	s.mu.Lock()
	defer s.mu.Unlock()
	ci := s.clients[c]
	if ci == nil {
		return nil
	}
	out := make([]record.Interval, len(ci.intervals))
	copy(out, ci.intervals)
	return out
}

// LastKey implements Store.
func (s *SegStore) LastKey(c record.ClientID) (record.LSN, record.Epoch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ci := s.clients[c]
	if ci == nil {
		return 0, 0
	}
	return ci.lastLSN, ci.lastEpoch
}

// Clients implements Store.
func (s *SegStore) Clients() []record.ClientID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedClients(s.clients)
}

// StageCopy implements Store.
func (s *SegStore) StageCopy(c record.ClientID, rec record.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.scratch = encodeRecordEntry(s.scratch[:0], kindStagedCopy, c, rec)
	loc, err := s.appendEntry(s.scratch)
	if err != nil {
		return err
	}
	return s.stage.add(c, rec, loc)
}

// InstallCopies implements Store. As in FileStore, the commit marker
// is synced before the install is acknowledged.
func (s *SegStore) InstallCopies(c record.ClientID, epoch record.Epoch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	staged := s.stage.take(c, epoch)
	if len(staged) == 0 {
		return ErrNoStagedCopies
	}
	s.scratch = encodeInstallEntry(s.scratch[:0], c, epoch)
	if _, err := s.appendEntry(s.scratch); err != nil {
		return err
	}
	if err := s.active().f.Sync(); err != nil {
		return err
	}
	s.dirty = false
	ci := s.client(c)
	for _, sr := range staged {
		if err := faultpoint.HitErr(FPInstallPartial); err != nil {
			return err
		}
		if err := ci.addInstalled(sr.rec, sr.loc); err != nil {
			return err
		}
	}
	return nil
}

// DiscardStage drops every staging area for the client. A pending
// stage pins the segments its copies were written to (CompactOnce
// skips them); when a client restart abandons a recovery attempt, the
// server can discard its stage so compaction is released. The discard
// is volatile — replay after a crash re-stages the copies, and the
// install marker they were waiting for never arrives, so they stay
// un-indexed exactly as before.
func (s *SegStore) DiscardStage(c record.ClientID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stage.discard(c)
}

// Truncate implements Store. The truncation point is appended to the
// stream; CompactOnce reclaims whole segments it kills.
func (s *SegStore) Truncate(c record.ClientID, before record.LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	ci := s.clients[c]
	if ci == nil {
		return ErrNotStored
	}
	s.scratch = encodeTruncateEntry(s.scratch[:0], c, before)
	if _, err := s.appendEntry(s.scratch); err != nil {
		return err
	}
	ci.truncate(before)
	if s.opts.Archive != nil {
		// The cold tier clamps its reads at the same floor and uses it
		// to retire dead volumes. The call only updates memory; the
		// archive persists floors on its own sync/retire cadence.
		if err := s.opts.Archive.Truncate(c, before); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint writes the interval lists of every client into the
// stream, bounding how far a replay must scan to reconstruct them.
func (s *SegStore) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	lists := make(map[record.ClientID][]record.Interval, len(s.clients))
	for c, ci := range s.clients {
		ivs := make([]record.Interval, len(ci.intervals))
		copy(ivs, ci.intervals)
		lists[c] = ivs
	}
	s.scratch = encodeCheckpointEntry(s.scratch[:0], lists)
	_, err := s.appendEntry(s.scratch)
	return err
}

// archiveItem is one live record CompactOnce migrates to the cold
// tier.
type archiveItem struct {
	c   record.ClientID
	rec record.Record
}

// CompactOnce reclaims the oldest sealed segment, if any: its live
// records are migrated into the archive tier, its effects are folded
// into the manifest (advancing the replay boundary), and the file is
// deleted. It reports whether a segment was reclaimed. A segment
// referenced by pending staged copies is skipped — the stage resolves
// at the next InstallCopies or client restart, and compaction retries
// then.
//
// Crash ordering (audited by the retention.* faultpoints): archive
// write + sync, then manifest advance, then file removal. A crash
// after the archive sync re-archives idempotently on retry; a crash
// after the manifest advance leaves a stray file the next open
// deletes without replaying.
func (s *SegStore) CompactOnce() (bool, error) {
	// One compaction at a time: the victim choice, the boundary
	// advance, and the manifest write must not interleave with another
	// pass. Foreground appends and forces only ever take s.mu, which
	// this path holds briefly — never across an fsync.
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	if len(s.segs) < 2 {
		s.mu.Unlock()
		return false, nil
	}
	victim := s.segs[0]
	// Pending staged copies referencing the victim pin it: their
	// install must index data the segment still holds.
	for _, m := range s.stage.records {
		for _, sr := range m {
			if sr.loc >= victim.base && sr.loc < victim.end() {
				s.mu.Unlock()
				return false, nil
			}
		}
	}
	size := victim.size
	f := victim.f
	s.mu.Unlock()

	// The victim is sealed and immutable: read and decode it without
	// the lock.
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil {
			return false, err
		}
	}
	type segEntry struct {
		e   streamEntry
		loc int64
	}
	var entries []segEntry
	for off := int64(0); off < size; {
		e, n, err := decodeFrame(data[off:])
		if err != nil || n == 0 {
			return false, fmt.Errorf("storage: corrupt frame in sealed segment %s at %d: %v", victim.path, off, err)
		}
		entries = append(entries, segEntry{e: e, loc: victim.base + off})
		off += int64(n)
	}

	// Select the records the index still serves from this segment.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	var live []archiveItem
	for _, se := range entries {
		if se.e.kind != kindRecord && se.e.kind != kindStagedCopy {
			continue
		}
		ci := s.clients[se.e.client]
		if ci == nil {
			continue
		}
		if ref, ok := ci.lookup(se.e.rec.LSN); ok && ref.loc == se.loc {
			live = append(live, archiveItem{c: se.e.client, rec: se.e.rec})
		}
	}
	s.mu.Unlock()

	if len(live) > 0 {
		if s.opts.Archive == nil {
			// Nowhere to migrate live records: the segment must be kept.
			return false, nil
		}
		for _, it := range live {
			if err := s.opts.Archive.Archive(it.c, it.rec); err != nil {
				return false, err
			}
		}
		if err := s.opts.Archive.Sync(); err != nil {
			return false, err
		}
	}
	if err := faultpoint.HitErr(FPArchivePublish); err != nil {
		return false, err
	}

	// Fold the segment into the base state and advance the boundary.
	// From here on, reads of the victim's offsets go to the archive;
	// if the manifest write below fails, the in-memory state is merely
	// ahead of the durable manifest — the same as a crash before the
	// advance, which the next open replays correctly.
	s.mu.Lock()
	for _, se := range entries {
		if err := s.baseMeta.apply(se.e, se.loc); err != nil {
			s.mu.Unlock()
			return false, fmt.Errorf("storage: folding segment %s: %w", victim.path, err)
		}
	}
	s.boundary = victim.end()
	s.segs = s.segs[1:]
	buf := s.encodeManifestLocked()
	s.mu.Unlock()
	// The manifest fsync happens outside s.mu so compaction never
	// stalls a foreground force; compactMu orders concurrent writers.
	if err := s.writeManifestFile(buf); err != nil {
		return false, err
	}

	victim.f.Close()
	if err := faultpoint.HitErr(FPSegmentDelete); err != nil {
		return false, err
	}
	if err := os.Remove(victim.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return false, err
	}
	return true, nil
}

// Usage implements UsageReporter. ReclaimableBytes counts sealed
// segments — the space compaction can return to the online tier.
func (s *SegStore) Usage() Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	var u Usage
	for _, g := range s.segs {
		u.LiveBytes += g.size
		u.Segments++
		if g.sealed {
			u.SealedSegments++
			u.ReclaimableBytes += g.size
		}
	}
	if s.opts.Archive != nil {
		u.ArchivedBytes = s.opts.Archive.Bytes()
		if r, ok := s.opts.Archive.(interface{ ReclaimableBytes() int64 }); ok {
			u.ArchiveReclaimableBytes = r.ReclaimableBytes()
		}
	}
	return u
}

// Boundary returns the replay boundary: the stream offset below which
// segments have been folded into the manifest and their live records
// archived.
func (s *SegStore) Boundary() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.boundary
}

// Close implements Store, syncing and closing every segment.
func (s *SegStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var errs []error
	if err := s.active().f.Sync(); err != nil {
		errs = append(errs, err)
	}
	for _, g := range s.segs {
		if err := g.f.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// --- manifest ---------------------------------------------------------

// manifestState is the durable replay base: the per-client index
// scalars and interval lists at the fold boundary, plus the metadata
// of copies staged below the boundary but not yet installed there
// (their data, being live, was archived; an install marker replayed
// from a surviving segment indexes them by their old offsets, which
// the read path redirects to the archive).
type manifestState struct {
	boundary int64
	clients  []manifestClient
	staged   []manifestStaged
}

type manifestClient struct {
	id        record.ClientID
	truncated record.LSN
	lastLSN   record.LSN
	lastEpoch record.Epoch
	intervals []record.Interval
}

type manifestStaged struct {
	client  record.ClientID
	epoch   record.Epoch
	lsn     record.LSN
	present bool
	loc     int64
}

// seed builds a fresh replay state representing the manifest: each
// call returns independent instances, so the live index and the fold
// base can both start from it.
func (m *manifestState) seed() *replayState {
	rs := newReplayState()
	for _, mc := range m.clients {
		ci := newClientIndex()
		ci.truncated = mc.truncated
		ci.lastLSN = mc.lastLSN
		ci.lastEpoch = mc.lastEpoch
		ci.intervals = append([]record.Interval(nil), mc.intervals...)
		rs.clients[mc.id] = ci
	}
	for _, ms := range m.staged {
		rec := record.Record{LSN: ms.lsn, Epoch: ms.epoch, Present: ms.present}
		// Data stays behind: the record's bytes are in the archive, and
		// the index redirects reads of below-boundary offsets there.
		_ = rs.stage.add(ms.client, rec, ms.loc)
	}
	return rs
}

const manifestMagic = uint32(0xD15C5E63) // "disc-seg"

// encodeManifestLocked serializes baseMeta and the boundary to a
// temporary file and renames it over the manifest. Caller holds s.mu.
func (s *SegStore) encodeManifestLocked() []byte {
	buf := binary.BigEndian.AppendUint32(nil, manifestMagic)
	buf = append(buf, 1) // version
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.boundary))

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.baseMeta.clients)))
	for _, c := range sortedClients(s.baseMeta.clients) {
		ci := s.baseMeta.clients[c]
		buf = binary.BigEndian.AppendUint64(buf, uint64(c))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ci.truncated))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ci.lastLSN))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ci.lastEpoch))
		buf = record.EncodeIntervals(buf, ci.intervals)
	}

	var staged []manifestStaged
	for k, m := range s.baseMeta.stage.records {
		for lsn, sr := range m {
			staged = append(staged, manifestStaged{
				client: k.client, epoch: k.epoch, lsn: lsn,
				present: sr.rec.Present, loc: sr.loc,
			})
		}
	}
	sort.Slice(staged, func(i, j int) bool {
		if staged[i].client != staged[j].client {
			return staged[i].client < staged[j].client
		}
		if staged[i].epoch != staged[j].epoch {
			return staged[i].epoch < staged[j].epoch
		}
		return staged[i].lsn < staged[j].lsn
	})
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(staged)))
	for _, ms := range staged {
		buf = binary.BigEndian.AppendUint64(buf, uint64(ms.client))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ms.epoch))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ms.lsn))
		if ms.present {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(ms.loc))
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// writeManifestFile durably replaces the manifest (tmp + fsync +
// rename + directory sync).
func (s *SegStore) writeManifestFile(buf []byte) error {
	path := filepath.Join(s.dir, segManifestName)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(s.dir)
	return nil
}

// loadManifest reads the manifest at path; a missing file yields the
// empty state (a brand-new store).
func loadManifest(path string) (*manifestState, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &manifestState{}, nil
	}
	if err != nil {
		return nil, err
	}
	if len(buf) < 4+1+8+4+4+4 {
		return nil, fmt.Errorf("storage: manifest %s too short", path)
	}
	body, sum := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("storage: manifest %s checksum mismatch", path)
	}
	if binary.BigEndian.Uint32(body) != manifestMagic {
		return nil, fmt.Errorf("storage: manifest %s bad magic", path)
	}
	if body[4] != 1 {
		return nil, fmt.Errorf("storage: manifest %s unknown version %d", path, body[4])
	}
	m := &manifestState{boundary: int64(binary.BigEndian.Uint64(body[5:]))}
	off := 13
	short := fmt.Errorf("storage: manifest %s truncated", path)

	if len(body)-off < 4 {
		return nil, short
	}
	nc := int(binary.BigEndian.Uint32(body[off:]))
	off += 4
	for i := 0; i < nc; i++ {
		if len(body)-off < 32 {
			return nil, short
		}
		mc := manifestClient{
			id:        record.ClientID(binary.BigEndian.Uint64(body[off:])),
			truncated: record.LSN(binary.BigEndian.Uint64(body[off+8:])),
			lastLSN:   record.LSN(binary.BigEndian.Uint64(body[off+16:])),
			lastEpoch: record.Epoch(binary.BigEndian.Uint64(body[off+24:])),
		}
		off += 32
		ivs, used, err := record.DecodeIntervals(body[off:])
		if err != nil {
			return nil, fmt.Errorf("storage: manifest %s: %v", path, err)
		}
		off += used
		mc.intervals = ivs
		m.clients = append(m.clients, mc)
	}

	if len(body)-off < 4 {
		return nil, short
	}
	ns := int(binary.BigEndian.Uint32(body[off:]))
	off += 4
	for i := 0; i < ns; i++ {
		if len(body)-off < 33 {
			return nil, short
		}
		m.staged = append(m.staged, manifestStaged{
			client:  record.ClientID(binary.BigEndian.Uint64(body[off:])),
			epoch:   record.Epoch(binary.BigEndian.Uint64(body[off+8:])),
			lsn:     record.LSN(binary.BigEndian.Uint64(body[off+16:])),
			present: body[off+24] == 1,
			loc:     int64(binary.BigEndian.Uint64(body[off+25:])),
		})
		off += 33
	}
	return m, nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-created or just-renamed file's
// directory entry is durable. Errors are ignored: some platforms and
// filesystems refuse directory fsync, and the stream's own recovery
// tolerates a lost tail.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
